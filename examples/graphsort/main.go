// Graphsort reproduces the paper's Twitter scenario (§V, Figure 8): build
// a power-law graph, extract its degree sequence — a heavily duplicated
// key set — and sort it across a simulated cluster. The sorted result
// answers the graph questions the paper motivates: top-degree vertices
// (celebrities), degree ranks and range queries.
//
// Run: go run ./examples/graphsort
package main

import (
	"fmt"
	"log"

	"pgxsort"
	"pgxsort/internal/dist"
	"pgxsort/internal/graph"
	"pgxsort/internal/taskmgr"
)

func main() {
	// A 2^16-vertex, 1M-edge RMAT graph stands in for the Twitter graph.
	g := graph.TwitterLike(graph.RMATConfig{Scale: 16, EdgeFactor: 16, Seed: 7})
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices, g.NumEdges())

	// PGX.D statistics: partitioning quality and edge chunking.
	st := g.Partition(8)
	fmt.Printf("block partition on 8 machines: %d crossing edges, ghosts per machine %v\n",
		st.CrossingEdges, st.GhostNodes)

	// Degrees computed in parallel with the task manager's edge chunks.
	pool := taskmgr.NewPool(4)
	defer pool.Close()
	degrees := g.Degrees(pool)
	fmt.Printf("degree keys: duplicate ratio %.4f (power-law graphs share few distinct degrees)\n",
		dist.DuplicateRatio(degrees))

	// Sort the degree sequence; vertex ids ride along as origins.
	cluster, err := pgxsort.NewCluster[uint64](pgxsort.Options{Procs: 8, WorkersPerProc: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	res, err := cluster.SortSlice(degrees)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sorted %d degrees in %v, balance %.3f\n",
		res.Len(), res.Report.Total, res.Report.LoadImbalance())

	// Celebrities: each entry's origin index is its vertex id because the
	// input was one slice in vertex order (proc origin gives the shard).
	fmt.Println("top-5 degree vertices:")
	shard := func(proc, index int) int {
		// Reconstruct the global vertex id from (proc, local index).
		base := proc * len(degrees) / 8
		return base + index
	}
	for rank, e := range res.Top(5) {
		fmt.Printf("  #%d: vertex %d with out-degree %d\n",
			rank+1, shard(int(e.Proc), int(e.Index)), e.Key)
	}

	// Degree rank queries via distributed binary search.
	for _, d := range []uint64{0, 16, 100} {
		_, _, global, found := res.Search(d)
		fmt.Printf("first vertex with degree >= %d is at global rank %d (exact hit: %v)\n",
			d, global, found)
	}
	// Per-processor key ranges (paper Table III).
	fmt.Println("per-processor degree ranges:")
	for _, pr := range res.PartRanges() {
		fmt.Printf("  proc%d: %d entries, degrees %d..%d\n", pr.Proc, pr.Count, pr.Min, pr.Max)
	}
}
