// Duplicates demonstrates the paper's core contribution: the investigator
// (Figure 3) that keeps load balanced when the dataset contains many
// duplicated entries. It sorts the same right-skewed dataset twice — with
// and without the investigator — and prints the per-processor loads side
// by side (the live version of paper Table II).
//
// Run: go run ./examples/duplicates
package main

import (
	"fmt"
	"log"

	"pgxsort"
	"pgxsort/internal/dist"
)

const (
	procs   = 10
	perProc = 200_000
)

func main() {
	// Right-skewed keys quantized into 64 values: the modal value holds
	// ~44% of all keys, so several of the p-1 splitters are equal.
	parts := make([][]uint64, procs)
	for i := range parts {
		parts[i] = dist.Gen{
			Kind:   dist.RightSkewed,
			Seed:   uint64(i + 1),
			Domain: 64,
		}.Keys(perProc)
	}
	fmt.Printf("dataset: %d procs x %d keys, duplicate ratio %.4f\n",
		procs, perProc, dist.DuplicateRatio(parts[0]))

	withInv := run(parts, false)
	withoutInv := run(parts, true)

	fmt.Printf("\n%-8s %18s %18s\n", "proc", "investigator ON", "investigator OFF")
	for i := 0; i < procs; i++ {
		fmt.Printf("proc%-4d %17.3f%% %17.3f%%\n", i,
			pct(withInv.PerNode[i].PartSize, withInv.N),
			pct(withoutInv.PerNode[i].PartSize, withoutInv.N))
	}
	fmt.Printf("\nmax/avg imbalance: ON %.3f vs OFF %.3f\n",
		withInv.LoadImbalance(), withoutInv.LoadImbalance())
	fmt.Printf("total time:        ON %v vs OFF %v\n", withInv.Total, withoutInv.Total)
	fmt.Println("\nwith the investigator every processor holds ~10% (paper Table II);")
	fmt.Println("without it the duplicated splitters dump the modal value on one processor (Figure 3b)")
}

func run(parts [][]uint64, disable bool) *pgxsort.Report {
	res, err := pgxsort.SortDistributed(parts, pgxsort.Options{
		WorkersPerProc:      2,
		DisableInvestigator: disable,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Verify(parts); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	return &res.Report
}

func pct(part, total int) float64 {
	return 100 * float64(part) / float64(total)
}
