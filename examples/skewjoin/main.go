// Command skewjoin demonstrates a distributed sort-merge join over two
// skewed key+payload datasets, built on the record-sorting engine.
//
// The classic problem: joining on a skewed key with a naive hash
// partitioner sends every occurrence of a heavy-hitter key to one node,
// which then holds most of the work. Here both sides are instead sorted by
// the paper's sample sort — whose duplicate-splitter investigator splits
// heavy keys across processors — and then merge-joined in one pass over
// the two globally sorted record streams. Payloads (the non-key columns)
// ride the exchange with their keys, so the join never touches the
// original inputs again.
//
// The two sorts run concurrently on one cluster through the SortMany
// scheduler, so one side's exchange overlaps the other side's local sort.
//
// Output is verified byte-identical against a single-process hash join.
//
// Usage:
//
//	skewjoin [-n 200000] [-procs 8] [-workers 2] [-seed 42]
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"slices"
	"time"

	"pgxsort"
)

// skewLevel is one join workload: both sides draw keys right-skewed from
// a domain of the given width, so narrower domains mean heavier hitters
// (the modal key's share grows as the domain shrinks).
type skewLevel struct {
	name   string
	domain uint64
}

var skewLevels = []skewLevel{
	{"mild", 1 << 14},
	{"medium", 256},
	{"heavy", 16},
}

func main() {
	n := flag.Int("n", 200000, "rows per join side")
	procs := flag.Int("procs", 8, "simulated processors")
	workers := flag.Int("workers", 2, "workers per processor")
	seed := flag.Uint64("seed", 42, "generator seed")
	flag.Parse()

	for _, lvl := range skewLevels {
		res, err := runLevel(lvl, *n, *procs, *workers, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "skewjoin:", err)
			os.Exit(1)
		}
		status := "MISMATCH"
		if res.identical {
			status = "byte-identical to hash-join oracle"
		}
		fmt.Printf("%-6s domain=%-6d rows=%d joined=%d sort=%v join=%v  %s\n",
			lvl.name, lvl.domain, *n, res.rows, res.sortTime, res.joinTime, status)
		if !res.identical {
			os.Exit(1)
		}
	}
}

type levelResult struct {
	rows      int
	sortTime  time.Duration
	joinTime  time.Duration
	identical bool
}

func runLevel(lvl skewLevel, n, procs, workers int, seed uint64) (levelResult, error) {
	// The classic skew-join shape: a skewed fact side (r) joined against a
	// dimension side (s) with a bounded number of rows per key — so the
	// heavy hitters stress the sort's load balance, not the output size.
	rParts := buildFactSide(n, procs, lvl.domain, seed)
	sParts := buildDimSide(procs, lvl.domain, seed+1)

	c, err := pgxsort.NewRecordCluster[uint64](pgxsort.Options{
		Procs: procs, WorkersPerProc: workers,
	})
	if err != nil {
		return levelResult{}, err
	}
	defer c.Close()

	t0 := time.Now()
	rRecs, sRecs, err := sortBothSides(c, rParts, sParts)
	if err != nil {
		return levelResult{}, err
	}
	sortTime := time.Since(t0)

	t1 := time.Now()
	joined := mergeJoin(rRecs, sRecs)
	joinTime := time.Since(t1)

	oracle := hashJoin(flatten(rParts), flatten(sParts))
	return levelResult{
		rows:      bytes.Count(joined, []byte{'\n'}),
		sortTime:  sortTime,
		joinTime:  joinTime,
		identical: bytes.Equal(joined, oracle),
	}, nil
}

// buildFactSide generates the skewed side: n right-skewed keys
// block-distributed across procs processors, each record tagged with a
// payload naming its side and global row id — the "rest of the row" a
// real join carries.
func buildFactSide(n, procs int, domain, seed uint64) [][]pgxsort.Record[uint64] {
	return toParts(skewedKeys(n, domain, seed), procs, 'r')
}

// buildDimSide generates the dimension side: every key in [0, domain)
// exactly twice (so equal-key blocks still cross-product), in a shuffled
// input order.
func buildDimSide(procs int, domain, seed uint64) [][]pgxsort.Record[uint64] {
	keys := make([]uint64, 2*domain)
	for i := range keys {
		keys[i] = uint64(i) / 2
	}
	rng := splitmix(seed)
	for i := len(keys) - 1; i > 0; i-- {
		j := int(rng() % uint64(i+1))
		keys[i], keys[j] = keys[j], keys[i]
	}
	return toParts(keys, procs, 's')
}

// toParts block-distributes keys into per-processor record parts, each
// payload tagging the side and global row id.
func toParts(keys []uint64, procs int, tag byte) [][]pgxsort.Record[uint64] {
	n := len(keys)
	parts := make([][]pgxsort.Record[uint64], procs)
	for i := 0; i < procs; i++ {
		lo, hi := i*n/procs, (i+1)*n/procs
		part := make([]pgxsort.Record[uint64], hi-lo)
		for j := lo; j < hi; j++ {
			part[j-lo] = pgxsort.Record[uint64]{
				Key:     keys[j],
				Payload: []byte(fmt.Sprintf("%c%d", tag, j)),
			}
		}
		parts[i] = part
	}
	return parts
}

// splitmix returns a deterministic splitmix64 generator.
func splitmix(seed uint64) func() uint64 {
	state := seed*0x9e3779b97f4a7c15 + 1
	return func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

// skewedKeys draws n keys from a right-skewed distribution over [0,
// domain): a squared-uniform draw, so small keys dominate and the modal
// key's share grows as the domain narrows.
func skewedKeys(n int, domain, seed uint64) []uint64 {
	keys := make([]uint64, n)
	next := splitmix(seed)
	for i := range keys {
		u := float64(next()>>11) / (1 << 53)
		keys[i] = uint64(u * u * float64(domain))
	}
	return keys
}

// sortBothSides sorts the two record datasets concurrently through the
// SortMany scheduler (one cluster, both sides in flight) and returns each
// side's globally sorted entry stream (key + payload + origin).
func sortBothSides(c *pgxsort.Cluster[uint64], r, s [][]pgxsort.Record[uint64]) (
	rEnts, sEnts []pgxsort.Entry[uint64], err error) {
	results, err := c.SortManyRecordsWith(context.Background(),
		pgxsort.SortManyOpts{MaxInflight: 2}, r, s)
	if err != nil {
		return nil, nil, err
	}
	return flattenEntries(results[0]), flattenEntries(results[1]), nil
}

func flattenEntries(res *pgxsort.Result[uint64]) []pgxsort.Entry[uint64] {
	out := make([]pgxsort.Entry[uint64], 0, res.Len())
	for _, p := range res.Parts {
		out = append(out, p...)
	}
	return out
}

// mergeJoin runs the single-pass merge join over two sorted entry
// streams, emitting the cross product of every equal-key block. Each
// block is first canonicalized to origin order — (processor, index),
// which under block distribution is input order — so the row stream is
// deterministic regardless of how the merge interleaved equal keys.
func mergeJoin(r, s []pgxsort.Entry[uint64]) []byte {
	var out bytes.Buffer
	i, j := 0, 0
	for i < len(r) && j < len(s) {
		switch {
		case r[i].Key < s[j].Key:
			i++
		case s[j].Key < r[i].Key:
			j++
		default:
			k := r[i].Key
			i2 := i
			for i2 < len(r) && r[i2].Key == k {
				i2++
			}
			j2 := j
			for j2 < len(s) && s[j2].Key == k {
				j2++
			}
			ra, sb := byOrigin(r[i:i2]), byOrigin(s[j:j2])
			for _, a := range ra {
				for _, b := range sb {
					writeRow(&out, k, a.Payload, b.Payload)
				}
			}
			i, j = i2, j2
		}
	}
	return out.Bytes()
}

// byOrigin returns the block sorted by (origin processor, origin index).
func byOrigin(block []pgxsort.Entry[uint64]) []pgxsort.Entry[uint64] {
	out := append([]pgxsort.Entry[uint64](nil), block...)
	slices.SortFunc(out, func(a, b pgxsort.Entry[uint64]) int {
		if a.Proc != b.Proc {
			return int(a.Proc) - int(b.Proc)
		}
		return int(a.Index) - int(b.Index)
	})
	return out
}

// hashJoin is the single-process oracle: bucket both sides by key (input
// order preserved), then emit keys ascending with the same within-key
// ordering the merge join produces.
func hashJoin(r, s []pgxsort.Record[uint64]) []byte {
	rb := make(map[uint64][][]byte)
	for _, rec := range r {
		rb[rec.Key] = append(rb[rec.Key], rec.Payload)
	}
	sb := make(map[uint64][][]byte)
	for _, rec := range s {
		sb[rec.Key] = append(sb[rec.Key], rec.Payload)
	}
	keys := make([]uint64, 0, len(rb))
	for k := range rb {
		if _, ok := sb[k]; ok {
			keys = append(keys, k)
		}
	}
	slices.Sort(keys)
	var out bytes.Buffer
	for _, k := range keys {
		for _, rp := range rb[k] {
			for _, sp := range sb[k] {
				writeRow(&out, k, rp, sp)
			}
		}
	}
	return out.Bytes()
}

func writeRow(out *bytes.Buffer, k uint64, rp, sp []byte) {
	fmt.Fprintf(out, "%d\t%s\t%s\n", k, rp, sp)
}

func flatten(parts [][]pgxsort.Record[uint64]) []pgxsort.Record[uint64] {
	var out []pgxsort.Record[uint64]
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
