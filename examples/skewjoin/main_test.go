package main

import (
	"bytes"
	"fmt"
	"testing"

	"pgxsort"
)

// The acceptance criterion: at every skew level, the distributed
// sort-merge join at p=8 produces byte-identical output to the
// single-process hash-join oracle.
func TestSkewJoinMatchesOracleAllLevels(t *testing.T) {
	for _, lvl := range skewLevels {
		t.Run(lvl.name, func(t *testing.T) {
			res, err := runLevel(lvl, 40000, 8, 2, 7)
			if err != nil {
				t.Fatal(err)
			}
			if !res.identical {
				t.Fatal("join output differs from the hash-join oracle")
			}
			// Every fact row matches exactly two dimension rows.
			if res.rows != 2*40000 {
				t.Fatalf("joined %d rows, want %d", res.rows, 2*40000)
			}
		})
	}
}

// Two consecutive runs must produce the same bytes (determinism of the
// record path end to end, including equal-key handling).
func TestSkewJoinDeterministic(t *testing.T) {
	lvl := skewLevels[2] // heavy
	out := make([][]byte, 2)
	for i := range out {
		rParts := buildFactSide(20000, 8, lvl.domain, 3)
		sParts := buildDimSide(8, lvl.domain, 4)
		c, err := pgxsort.NewRecordCluster[uint64](pgxsort.Options{Procs: 8, WorkersPerProc: 2})
		if err != nil {
			t.Fatal(err)
		}
		r, s, err := sortBothSides(c, rParts, sParts)
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = mergeJoin(r, s)
	}
	if !bytes.Equal(out[0], out[1]) {
		t.Fatal("two identical runs produced different join bytes")
	}
}

// The duplicate-splitter investigator is what keeps the heavy-hitter side
// balanced: with it disabled, the modal key's whole block lands on one
// processor.
func TestInvestigatorBalancesHeavyHitters(t *testing.T) {
	parts := buildFactSide(40000, 8, 16, 11)
	imbalance := func(disable bool) float64 {
		c, err := pgxsort.NewRecordCluster[uint64](pgxsort.Options{
			Procs: 8, WorkersPerProc: 2, DisableInvestigator: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		res, err := c.SortRecords(parts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.LoadImbalance()
	}
	on, off := imbalance(false), imbalance(true)
	t.Logf("imbalance: investigator on %.3f, off %.3f", on, off)
	if off <= 1.5 {
		t.Fatalf("heavy-hitter dataset not skewed enough: off-imbalance %.3f", off)
	}
	if on >= off {
		t.Fatalf("investigator did not improve balance: on %.3f >= off %.3f", on, off)
	}
}

// mergeJoin against a hand-checked case, exercising cross products and
// non-matching keys on both sides.
func TestMergeJoinSmall(t *testing.T) {
	mk := func(side byte, keys ...uint64) []pgxsort.Record[uint64] {
		recs := make([]pgxsort.Record[uint64], len(keys))
		for i, k := range keys {
			recs[i] = pgxsort.Record[uint64]{Key: k, Payload: []byte(fmt.Sprintf("%c%d", side, i))}
		}
		return recs
	}
	r := mk('r', 5, 1, 1, 9) // input order; r1,r2 share key 1
	s := mk('s', 1, 7, 1, 5) // s0,s2 share key 1

	c, err := pgxsort.NewRecordCluster[uint64](pgxsort.Options{Procs: 2, WorkersPerProc: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rE, sE, err := sortBothSides(c,
		[][]pgxsort.Record[uint64]{r[:2], r[2:]},
		[][]pgxsort.Record[uint64]{s[:2], s[2:]})
	if err != nil {
		t.Fatal(err)
	}
	got := string(mergeJoin(rE, sE))
	want := "1\tr1\ts0\n1\tr1\ts2\n1\tr2\ts0\n1\tr2\ts2\n5\tr0\ts3\n"
	if got != want {
		t.Fatalf("mergeJoin:\ngot  %q\nwant %q", got, want)
	}
	if oracle := string(hashJoin(r, s)); got != oracle {
		t.Fatalf("mergeJoin disagrees with oracle:\ngot    %q\noracle %q", got, oracle)
	}
}
