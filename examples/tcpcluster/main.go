// Tcpcluster demonstrates the hardened TCP transport two ways.
//
// Single-process (no flags): runs the full engine over in-process
// channels and over real TCP loopback sockets — every data chunk
// serialized, framed, written to a socket and decoded on the other side —
// and compares the two transports' wire traffic and timing.
//
//	go run ./examples/tcpcluster
//
// Multi-host (-node/-listen/-peers): each invocation hosts ONE transport
// node of a real cluster and runs a transport-level distributed sample
// sort against its peers: local sort, sampling to node 0, splitter
// broadcast, range partitioning and the all-to-all entry exchange, all
// over the hardened mesh (reconnect, deadlines, backpressure). Start one
// process per host; dialing retries with backoff, so start order does
// not matter:
//
//	hostA$ go run ./examples/tcpcluster -node 0 -listen :7401 -peers hostA:7401,hostB:7402
//	hostB$ go run ./examples/tcpcluster -node 1 -listen :7402 -peers hostA:7401,hostB:7402
//
// Every process prints its final key range, verifies global order with
// its neighbours, and reports the transport-health counters (reconnects,
// retransmits, send stall). See docs/OPERATIONS.md for the walkthrough.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"pgxsort"
	"pgxsort/internal/comm"
	"pgxsort/internal/dist"
	"pgxsort/internal/transport"
)

func main() {
	var (
		node   = flag.Int("node", -1, "this process's node id (multi-host mode); -1 runs the single-process comparison")
		listen = flag.String("listen", "", "listen address for this node (multi-host mode), e.g. :7401")
		peers  = flag.String("peers", "", "comma-separated dial addresses of ALL nodes, in node order")
		n      = flag.Int("n", 500_000, "keys per node (multi-host) / total keys (single-process)")
		seed   = flag.Uint64("seed", 5, "generator seed")
	)
	flag.Parse()
	if *node < 0 {
		singleProcess(*n, *seed)
		return
	}
	if err := clusterNode(*node, *listen, transport.SplitAddrs(*peers), *n, *seed); err != nil {
		log.Fatal(err)
	}
}

// singleProcess is the original demo: the full engine on both transports.
func singleProcess(n int, seed uint64) {
	keys := dist.Gen{Kind: dist.Uniform, Seed: seed}.Keys(n)

	for _, tr := range []string{pgxsort.TransportChan, pgxsort.TransportTCP} {
		cluster, err := pgxsort.NewCluster[uint64](pgxsort.Options{
			Procs:          4,
			WorkersPerProc: 2,
			Transport:      tr,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := cluster.SortSlice(keys)
		if err != nil {
			log.Fatal(err)
		}
		rep := res.Report
		fmt.Printf("%-4s transport: total %-12v exchange %-12v %5d msgs, %8d bytes\n",
			tr, rep.Total, rep.Steps[pgxsort.StepExchange], rep.MsgsSent, rep.BytesSent)
		cluster.Close()
	}
	fmt.Println("\nboth transports move identical logical bytes; TCP pays serialization")
	fmt.Println("and kernel crossings — the gap PGX.D's RDMA transport avoids (§III)")
}

// clusterNode hosts one node of a multi-process mesh and runs a
// transport-level sample sort with its peers.
func clusterNode(self int, listen string, peerList []string, perNode int, seed uint64) error {
	p := len(peerList)
	if p < 2 {
		return fmt.Errorf("multi-host mode needs -peers with at least two addresses")
	}
	if self >= p {
		return fmt.Errorf("-node %d out of range for %d peers", self, p)
	}
	if listen == "" {
		return fmt.Errorf("multi-host mode needs -listen")
	}
	cfg := pgxsort.TransportConfig{
		Listen:     make([]string, p),
		Peers:      peerList,
		LocalNodes: []int{self},
		// Give slow-starting peers a generous dial budget.
		DialAttempts: 60,
	}
	cfg.Listen[self] = listen

	fmt.Printf("node %d/%d: listening on %s, dialing %v\n", self, p, listen, peerList)
	netw, err := transport.NewTCPWithConfig[uint64](p, comm.U64Codec{}, cfg)
	if err != nil {
		return err
	}
	defer netw.Close()
	ep := netw.Endpoint(self)
	fmt.Printf("node %d: mesh established\n", self)

	// Messages from different peers are not ordered relative to each
	// other: a fast peer's range metadata can overtake the splitter
	// broadcast. Early arrivals are stashed and replayed in order.
	var stash []comm.Message[uint64]
	next := func() (comm.Message[uint64], bool) {
		if len(stash) > 0 {
			m := stash[0]
			stash = stash[1:]
			return m, true
		}
		return ep.Recv()
	}
	recvKind := func(kind comm.Kind) (comm.Message[uint64], error) {
		for i, m := range stash {
			if m.Kind == kind {
				stash = append(stash[:i], stash[i+1:]...)
				return m, nil
			}
		}
		for {
			m, ok := ep.Recv()
			if !ok {
				return m, fmt.Errorf("node %d: network closed waiting for %v", self, kind)
			}
			if m.Kind == kind {
				return m, nil
			}
			stash = append(stash, m)
		}
	}

	// Deterministic local shard, locally sorted (paper step 1).
	keys := dist.Gen{Kind: dist.Uniform, Seed: seed + uint64(self)}.Keys(perNode)
	start := time.Now()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	// Steps 2-3: regular samples to node 0; node 0 picks and broadcasts
	// the p-1 splitters.
	const samplesPerNode = 256
	samples := make([]uint64, 0, samplesPerNode)
	for i := 0; i < samplesPerNode && len(keys) > 0; i++ {
		samples = append(samples, keys[i*len(keys)/samplesPerNode])
	}
	var splitters []uint64
	if self == 0 {
		all := append([]uint64(nil), samples...)
		for i := 0; i < p-1; i++ {
			m, err := recvKind(comm.KSamples)
			if err != nil {
				return err
			}
			all = append(all, m.Keys...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for i := 1; i < p; i++ {
			splitters = append(splitters, all[i*len(all)/p])
		}
		for dst := 1; dst < p; dst++ {
			if err := ep.Send(dst, comm.Message[uint64]{Kind: comm.KSplitters, Keys: splitters}); err != nil {
				return err
			}
		}
	} else {
		if err := ep.Send(0, comm.Message[uint64]{Kind: comm.KSamples, Keys: samples}); err != nil {
			return err
		}
		m, err := recvKind(comm.KSplitters)
		if err != nil {
			return err
		}
		splitters = m.Keys
	}

	// Step 4: partition the sorted shard by splitters (binary search).
	bounds := make([]int, p+1)
	bounds[p] = len(keys)
	for i, sp := range splitters {
		bounds[i+1] = sort.Search(len(keys), func(j int) bool { return keys[j] > sp })
	}
	counts := make([]int64, p)
	for dst := 0; dst < p; dst++ {
		counts[dst] = int64(bounds[dst+1] - bounds[dst])
	}
	for dst := 0; dst < p; dst++ {
		if dst == self {
			continue
		}
		if err := ep.Send(dst, comm.Message[uint64]{Kind: comm.KRangeMeta, Ints: counts}); err != nil {
			return err
		}
	}

	// Step 5: all-to-all exchange. Sends run concurrently with receives,
	// the transport's bounded windows provide the backpressure.
	sendErr := make(chan error, 1)
	go func() {
		for dst := 0; dst < p; dst++ {
			if dst == self {
				continue
			}
			lo, hi := bounds[dst], bounds[dst+1]
			const chunk = 16 * 1024
			for at := lo; at < hi; at += chunk {
				end := min(at+chunk, hi)
				ents := make([]comm.Entry[uint64], end-at)
				for i, k := range keys[at:end] {
					ents[i] = comm.Entry[uint64]{Key: k, Proc: uint32(self), Index: uint32(at + i)}
				}
				if err := ep.Send(dst, comm.Message[uint64]{Kind: comm.KData, Entries: ents}); err != nil {
					sendErr <- err
					return
				}
			}
		}
		sendErr <- nil
	}()

	mine := append([]uint64(nil), keys[bounds[self]:bounds[self+1]]...)
	expect := make(map[int]int64, p)
	metaLeft := p - 1
	var leftBoundary *uint64 // neighbour boundary may arrive mid-exchange
	for metaLeft > 0 || pendingData(expect) {
		m, ok := next()
		if !ok {
			return fmt.Errorf("node %d: network closed mid-exchange", self)
		}
		switch m.Kind {
		case comm.KRangeMeta:
			expect[m.Src] += m.Ints[self]
			metaLeft--
		case comm.KData:
			for _, e := range m.Entries {
				mine = append(mine, e.Key)
			}
			expect[m.Src] -= int64(len(m.Entries))
			if m.Release != nil {
				m.Release()
			}
		case comm.KControl:
			b := uint64(m.Ints[0])
			leftBoundary = &b
		default:
			return fmt.Errorf("node %d: unexpected %v mid-exchange", self, m.Kind)
		}
	}
	if err := <-sendErr; err != nil {
		return err
	}

	// Step 6: merge (sort the received runs) and verify with neighbours:
	// my smallest key must not undercut my left neighbour's largest. The
	// boundary chain flows left to right — receive before sending, so an
	// empty node forwards its left neighbour's boundary instead of a
	// bogus zero that would make the next node's check vacuous.
	sort.Slice(mine, func(i, j int) bool { return mine[i] < mine[j] })
	var lo, hi uint64
	if len(mine) > 0 {
		lo, hi = mine[0], mine[len(mine)-1]
	}
	if self > 0 {
		if leftBoundary == nil {
			m, err := recvKind(comm.KControl)
			if err != nil {
				return err
			}
			b := uint64(m.Ints[0])
			leftBoundary = &b
		}
		if len(mine) > 0 && lo < *leftBoundary {
			return fmt.Errorf("node %d: GLOBAL ORDER VIOLATED: my min %d < left neighbour max %d", self, lo, *leftBoundary)
		}
	}
	if self+1 < p {
		boundary := hi
		if len(mine) == 0 && leftBoundary != nil {
			boundary = *leftBoundary
		}
		if err := ep.Send(self+1, comm.Message[uint64]{Kind: comm.KControl, Ints: []int64{int64(boundary)}}); err != nil {
			return err
		}
	}

	st := ep.Stats()
	fmt.Printf("node %d: sorted %d entries in %v, range [%d, %d]\n",
		self, len(mine), time.Since(start).Round(time.Millisecond), lo, hi)
	fmt.Printf("node %d: wire: %s; health: %d reconnects, %d frames resent, %v send stall\n",
		self, st, st.Reconnects(), st.FramesResent(), st.SendStall().Round(time.Millisecond))
	fmt.Printf("node %d: global order verified against neighbours ✓\n", self)
	return nil
}

// pendingData reports whether any source still owes entries (announced
// via range metadata but not yet received).
func pendingData(expect map[int]int64) bool {
	for _, v := range expect {
		if v != 0 {
			return true
		}
	}
	return false
}
