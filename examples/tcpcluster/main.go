// Tcpcluster runs the full pipeline over real TCP loopback sockets
// instead of in-process channels: every data chunk is serialized with the
// key codec, framed, written to a socket and decoded on the other side —
// the closest single-machine analogue to the paper's InfiniBand cluster.
// It prints the traffic actually measured on the wire and compares the
// two transports.
//
// Run: go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"

	"pgxsort"
	"pgxsort/internal/dist"
)

func main() {
	keys := dist.Gen{Kind: dist.Uniform, Seed: 5}.Keys(500_000)

	for _, tr := range []string{pgxsort.TransportChan, pgxsort.TransportTCP} {
		cluster, err := pgxsort.NewCluster[uint64](pgxsort.Options{
			Procs:          4,
			WorkersPerProc: 2,
			Transport:      tr,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := cluster.SortSlice(keys)
		if err != nil {
			log.Fatal(err)
		}
		rep := res.Report
		fmt.Printf("%-4s transport: total %-12v exchange %-12v %5d msgs, %8d bytes\n",
			tr, rep.Total, rep.Steps[pgxsort.StepExchange], rep.MsgsSent, rep.BytesSent)
		cluster.Close()
	}
	fmt.Println("\nboth transports move identical logical bytes; TCP pays serialization")
	fmt.Println("and kernel crossings — the gap PGX.D's RDMA transport avoids (§III)")
}
