// Rankquery demonstrates the query-side API the paper motivates (§III):
// answering rank and top-value questions over distributed data. It
// compares the distributed top-k fast path (each processor ships only k
// candidates) against a full sort, then summarizes the distribution with
// quantiles and rank lookups.
//
// Run: go run ./examples/rankquery
package main

import (
	"fmt"
	"log"
	"time"

	"pgxsort"
	"pgxsort/internal/dist"
)

func main() {
	const n = 2_000_000
	keys := dist.Gen{Kind: dist.Exponential, Seed: 3}.Keys(n)
	opts := pgxsort.Options{Procs: 8, WorkersPerProc: 2}

	// Fast path: distributed top-k without sorting.
	top, err := pgxsort.TopK(keys, 10, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-10 via distributed selection: %v (moved only %d bytes)\n",
		top.Duration, top.BytesSent)
	for i, e := range top.Entries[:3] {
		fmt.Printf("  #%d: key %d (origin proc %d, index %d)\n", i+1, e.Key, e.Proc, e.Index)
	}

	// Full sort for rank queries and quantiles.
	cluster, err := pgxsort.NewCluster[uint64](opts)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	res, err := cluster.SortSlice(keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full sort: %v — top-k was %.1fx faster and moved %.4f%% of the data bytes\n",
		res.Report.Total,
		float64(res.Report.Total)/float64(max(int64(top.Duration), 1)),
		100*float64(top.BytesSent)/float64(res.Report.DataBytes))

	// Cross-check the fast path against the sorted truth.
	for i, e := range res.Top(10) {
		if top.Entries[i].Key != e.Key {
			log.Fatalf("top-k mismatch at %d: %d != %d", i, top.Entries[i].Key, e.Key)
		}
	}
	fmt.Println("top-k agrees with the full sort")

	// Distribution summary: deciles.
	qs, err := res.Quantiles(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deciles: %v\n", qs)

	// Rank lookups via distributed binary search.
	elapsed := time.Now()
	for _, probe := range []uint64{0, qs[5], qs[9]} {
		_, _, rank, _ := res.Search(probe)
		fmt.Printf("rank of key %d: %d of %d (%.1f%%)\n",
			probe, rank, res.Len(), 100*float64(rank)/float64(res.Len()))
	}
	fmt.Printf("3 rank lookups in %v\n", time.Since(elapsed))
}
