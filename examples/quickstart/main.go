// Quickstart: sort a slice across a simulated PGX.D cluster and inspect
// the result with the paper's user-facing API (search, top-k, origins).
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pgxsort"
	"pgxsort/internal/dist"
)

func main() {
	// One million keys from a normal distribution.
	keys := dist.Gen{Kind: dist.Normal, Seed: 42}.Keys(1_000_000)

	// One-shot sort on 8 simulated processors with 4 workers each.
	sorted, report, err := pgxsort.Sort(keys, pgxsort.Options{
		Procs:          8,
		WorkersPerProc: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sorted %d keys in %v\n", len(sorted), report.Total)
	fmt.Printf("min=%d max=%d\n", sorted[0], sorted[len(sorted)-1])
	fmt.Printf("load balance (max/avg): %.3f\n", report.LoadImbalance())
	fmt.Printf("per-step times:\n")
	for s := pgxsort.Step(0); s < pgxsort.NumSteps; s++ {
		fmt.Printf("  %-12s %v\n", s, report.Steps[s])
	}

	// The full Result API needs distributed input; reuse a cluster.
	cluster, err := pgxsort.NewCluster[uint64](pgxsort.Options{Procs: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	res, err := cluster.SortSlice(keys[:10_000])
	if err != nil {
		log.Fatal(err)
	}
	// Distributed binary search.
	probe := res.Keys()[5_000]
	proc, local, global, found := res.Search(probe)
	fmt.Printf("Search(%d): proc=%d local=%d global=%d found=%v\n",
		probe, proc, local, global, found)
	// Top-k with provenance: where did the largest keys start out?
	for _, e := range res.Top(3) {
		fmt.Printf("top key %d came from processor %d, index %d\n",
			e.Key, e.Proc, e.Index)
	}
}
