// Multisort exercises two more of the paper's API claims (§III-IV): the
// library "is generic and works with any data type and is able to sort
// different data simultaneously". It sorts three uint64 datasets over one
// cluster through the pipelined SortMany scheduler — dataset d+1's local
// sort overlaps dataset d's exchange — prints the per-dataset stage
// spans so the overlap is visible, then sorts int64 and float64 keys on
// typed clusters.
//
// Run: go run ./examples/multisort
package main

import (
	"context"
	"fmt"
	"log"

	"pgxsort"
	"pgxsort/internal/dist"
)

func main() {
	cluster, err := pgxsort.NewCluster[uint64](pgxsort.Options{Procs: 6, WorkersPerProc: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Three datasets with different distributions, pipelined over the
	// same cluster: their messages interleave on the same simulated
	// network, but at most two are in flight and only one occupies a
	// communication stage at a time.
	kinds := []dist.Kind{dist.Uniform, dist.Normal, dist.Exponential}
	datasets := make([][][]uint64, len(kinds))
	for d, kind := range kinds {
		parts := make([][]uint64, 6)
		for i := range parts {
			parts[i] = dist.Gen{Kind: kind, Seed: uint64(100*d + i)}.Keys(150_000)
		}
		datasets[d] = parts
	}
	results, err := cluster.SortManyWith(context.Background(),
		pgxsort.SortManyOpts{MaxInflight: 2}, datasets...)
	if err != nil {
		log.Fatal(err)
	}
	for d, res := range results {
		if err := res.Verify(datasets[d]); err != nil {
			log.Fatalf("dataset %d: %v", d, err)
		}
		fmt.Printf("dataset %-12s: %7d keys sorted, balance %.3f, %d data bytes moved\n",
			kinds[d], res.Len(), res.Report.LoadImbalance(), res.Report.DataBytes)
	}
	// The stage spans are offsets from the SortMany call: overlap between
	// one dataset's exchange and another's local-sort/merge is the
	// pipeline working.
	for d, res := range results {
		tr := res.Report.Sched
		fmt.Printf("dataset %d admitted after %8v:", d, tr.AdmitWait.Round(10e3))
		for st := pgxsort.SchedStage(0); st < pgxsort.NumSchedStages; st++ {
			fmt.Printf("  %s [%v..%v]", st, tr.StageStart[st].Round(10e3), tr.StageEnd[st].Round(10e3))
		}
		fmt.Println()
	}

	// Generic keys: signed integers.
	ints, err := pgxsort.NewCluster[int64](pgxsort.Options{Procs: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer ints.Close()
	ri, err := ints.SortSlice([]int64{42, -7, 0, -100, 9000, -7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("int64 sorted:   %v\n", ri.Keys())

	// Generic keys: floats (IEEE order for non-negative values).
	floats, err := pgxsort.NewCluster[float64](pgxsort.Options{Procs: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer floats.Close()
	rf, err := floats.SortSlice([]float64{3.14, 0.5, 2.71, 0.001, 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("float64 sorted: %v\n", rf.Keys())
}
