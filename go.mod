module pgxsort

go 1.23
