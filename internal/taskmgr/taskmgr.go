// Package taskmgr is the analogue of PGX.D's task manager (§III): each
// simulated processor owns a fixed set of worker threads (goroutines) that
// pull tasks from a per-step task list. Parallel steps enqueue a list of
// tasks; workers grab and execute them until the list drains, which is how
// the engine parallelizes local sorting, merging rounds and chunked sends
// without spawning unbounded goroutines.
package taskmgr

import (
	"sync"
	"sync/atomic"
)

// Pool is a fixed-size worker pool. The zero value is not usable; create
// pools with NewPool.
type Pool struct {
	workers   int
	tasks     chan func()
	wg        sync.WaitGroup // workers
	closed    atomic.Bool
	executed  atomic.Int64
	closeOnce sync.Once
}

// NewPool starts a pool with the given number of worker goroutines
// (clamped to at least 1). Workers live until Close.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		workers: workers,
		tasks:   make(chan func(), 4*workers),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for task := range p.tasks {
				task()
				p.executed.Add(1)
			}
		}()
	}
	return p
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// Executed reports how many tasks have completed since the pool started.
func (p *Pool) Executed() int64 { return p.executed.Load() }

// Submit enqueues a task for asynchronous execution. It must not be
// called after Close. The done callback pattern is intentionally absent:
// use RunAll or ParallelFor for structured parallel steps.
func (p *Pool) Submit(task func()) {
	p.tasks <- task
}

// RunAll executes the tasks of one parallel step on the pool and blocks
// until every task has finished, mirroring the task-list-per-step model.
func (p *Pool) RunAll(tasks ...func()) {
	if len(tasks) == 0 {
		return
	}
	if len(tasks) == 1 {
		// No point bouncing a single task through the queue.
		tasks[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(tasks))
	for _, t := range tasks {
		t := t
		p.tasks <- func() {
			defer wg.Done()
			t()
		}
	}
	wg.Wait()
}

// ParallelFor splits [0, n) into one contiguous chunk per worker (PGX.D's
// edge-chunking strategy applied to index ranges) and runs fn(lo, hi) for
// each non-empty chunk, blocking until all complete.
func (p *Pool) ParallelFor(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := p.workers
	if chunks > n {
		chunks = n
	}
	tasks := make([]func(), 0, chunks)
	for c := 0; c < chunks; c++ {
		lo := c * n / chunks
		hi := (c + 1) * n / chunks
		if lo == hi {
			continue
		}
		tasks = append(tasks, func() { fn(lo, hi) })
	}
	p.RunAll(tasks...)
}

// Close stops the workers after draining already-submitted tasks.
// It is idempotent.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		p.closed.Store(true)
		close(p.tasks)
		p.wg.Wait()
	})
}
