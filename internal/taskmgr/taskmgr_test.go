package taskmgr

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunAllExecutesEverything(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var count atomic.Int64
	tasks := make([]func(), 100)
	for i := range tasks {
		tasks[i] = func() { count.Add(1) }
	}
	p.RunAll(tasks...)
	if count.Load() != 100 {
		t.Fatalf("executed %d tasks, want 100", count.Load())
	}
}

func TestRunAllEmptyAndSingle(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.RunAll() // must not hang
	ran := false
	p.RunAll(func() { ran = true })
	if !ran {
		t.Fatal("single task not run")
	}
}

func TestParallelForCoversRange(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{0, 1, 3, 4, 5, 100, 1001} {
		covered := make([]atomic.Int32, max(n, 1))
		p.ParallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
		})
		for i := 0; i < n; i++ {
			if covered[i].Load() != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, covered[i].Load())
			}
		}
	}
}

func TestParallelForChunkCount(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var chunks atomic.Int32
	p.ParallelFor(1000, func(lo, hi int) { chunks.Add(1) })
	if got := chunks.Load(); got != 4 {
		t.Fatalf("got %d chunks, want 4 (one per worker)", got)
	}
	// Fewer items than workers: one chunk per item.
	chunks.Store(0)
	p.ParallelFor(2, func(lo, hi int) {
		chunks.Add(1)
		if hi-lo != 1 {
			t.Errorf("chunk [%d,%d) should be a single item", lo, hi)
		}
	})
	if got := chunks.Load(); got != 2 {
		t.Fatalf("got %d chunks, want 2", got)
	}
}

func TestSubmitAsync(t *testing.T) {
	p := NewPool(2)
	var wg sync.WaitGroup
	var count atomic.Int64
	wg.Add(50)
	for i := 0; i < 50; i++ {
		p.Submit(func() {
			count.Add(1)
			wg.Done()
		})
	}
	wg.Wait()
	if count.Load() != 50 {
		t.Fatalf("executed %d, want 50", count.Load())
	}
	p.Close()
	if p.Executed() != 50 {
		t.Fatalf("Executed() = %d, want 50", p.Executed())
	}
}

func TestPoolParallelism(t *testing.T) {
	// With w workers, w tasks that rendezvous must all run concurrently.
	const w = 4
	p := NewPool(w)
	defer p.Close()
	var barrier sync.WaitGroup
	barrier.Add(w)
	tasks := make([]func(), w)
	for i := range tasks {
		tasks[i] = func() {
			barrier.Done()
			barrier.Wait() // deadlocks unless all w run at once
		}
	}
	done := make(chan struct{})
	go func() {
		p.RunAll(tasks...)
		close(done)
	}()
	<-done
}

func TestWorkersClamped(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() != 1 {
		t.Fatalf("Workers() = %d, want 1", p.Workers())
	}
}

func TestCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // must not panic
}

func TestNestedRunAll(t *testing.T) {
	// RunAll from within a task must not deadlock even when all workers
	// are busy, because RunAll only waits on completion, and queued tasks
	// are picked up as workers finish.
	p := NewPool(2)
	defer p.Close()
	var count atomic.Int64
	outer := make([]func(), 2)
	for i := range outer {
		outer[i] = func() { count.Add(1) }
	}
	p.RunAll(func() { count.Add(1) }, func() { count.Add(1) })
	p.RunAll(outer...)
	if count.Load() != 4 {
		t.Fatalf("count = %d, want 4", count.Load())
	}
}
