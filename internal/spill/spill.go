// Package spill implements the out-of-core run tier: sorted runs of
// entries written to append-only block files and streamed back through
// lsort.Cursor readers, so the merge path can consume runs that never
// fit in RAM exactly like resident slabs.
//
// File layout (all integers little-endian):
//
//	header:  magic "PGXSPIL1" | version u16 | flags u16 | reserved u32
//	blocks:  per block, the stored bytes — comm.EncodeEntries output,
//	         flate-compressed when that shrinks it, raw otherwise
//	index:   per block: offset u64 | storedLen u32 | rawLen u32 |
//	         count u32 | crc32c u32 | flags u32
//	trailer: indexOff u64 | blockCount u32 | totalEntries u64 |
//	         indexCRC u32 | magic "PGXSPIX1"
//
// Each block checksums its stored bytes with CRC32-Castagnoli, so a
// flipped bit surfaces as ErrCorrupt before decompression ever runs; the
// index carries its own checksum and the trailer is found at a fixed
// offset from the end, so truncation and bad index offsets are caught at
// open time. Corruption is a data problem, never a panic: every
// validation failure wraps ErrCorrupt, which the engine classifies
// FailDataDependent.
package spill

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"pgxsort/internal/comm"
	"pgxsort/internal/failpoint"
)

const (
	magic      = "PGXSPIL1"
	indexMagic = "PGXSPIX1"
	version    = 1

	headerSize     = 16
	indexEntrySize = 28
	trailerSize    = 32

	// DefaultBlockBytes is the target raw (pre-compression) size of one
	// block: big enough to amortize flate and syscall overhead, small
	// enough that one decoded block per active reader stays far below
	// any sane memory budget.
	DefaultBlockBytes = 128 << 10

	// blockCompressed marks a block whose stored bytes are
	// flate-compressed; absent, the stored bytes are the raw encoding
	// (the store-raw fallback for incompressible data).
	blockCompressed = 1 << 0
)

// Failpoint sites covering spill I/O, wired into the soak storm like
// every other stage. Both downgrade panics to errors (HitNoPanic): they
// fire on writer flush paths and reader prefetch goroutines where an
// unwind would leak file handles.
const (
	FpWriteBlock = "spill/write-block"
	FpReadBlock  = "spill/read-block"
)

// ErrCorrupt is the sentinel wrapped by every structural validation
// failure — bad magic, checksum mismatch, truncated file, index offsets
// out of bounds. It marks the failure as a property of the data on disk
// (FailDataDependent), not of the mesh or the run attempt.
var ErrCorrupt = errors.New("spill: corrupt run file")

// castagnoli is the CRC32-C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// blockMeta is one index entry: where a block's stored bytes live and
// how to open them.
type blockMeta struct {
	offset    uint64
	storedLen uint32
	rawLen    uint32
	count     uint32
	crc       uint32
	flags     uint32
}

// Writer appends one sorted run to a block file. Entries are encoded
// immediately on Append (payloads may alias transient message slabs, so
// nothing entry-shaped is retained), buffered until the raw encoding
// reaches BlockBytes, then compressed and flushed as one block. Callers
// must Append entries in run order; the file records order, it does not
// sort. Not safe for concurrent use.
type Writer[K any] struct {
	path  string
	f     *os.File
	bw    *bufio.Writer
	codec comm.Codec[K]

	blockBytes int
	pending    []byte // raw encoding of the open block
	pendCount  uint32
	comp       bytes.Buffer
	fw         *flate.Writer

	off     uint64
	index   []blockMeta
	entries uint64
	failed  error
}

// NewWriter creates path (truncating any previous file) and writes the
// header. blockBytes <= 0 selects DefaultBlockBytes.
func NewWriter[K any](path string, c comm.Codec[K], blockBytes int) (*Writer[K], error) {
	if blockBytes <= 0 {
		blockBytes = DefaultBlockBytes
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("spill: create run file: %w", err)
	}
	w := &Writer[K]{
		path:       path,
		f:          f,
		bw:         bufio.NewWriterSize(f, 1<<16),
		codec:      c,
		blockBytes: blockBytes,
		off:        headerSize,
	}
	var hdr [headerSize]byte
	copy(hdr[:8], magic)
	binary.LittleEndian.PutUint16(hdr[8:], version)
	if _, err := w.bw.Write(hdr[:]); err != nil {
		w.Abort()
		return nil, fmt.Errorf("spill: write header: %w", err)
	}
	return w, nil
}

// Append encodes entries onto the open block, flushing completed blocks
// as the target size fills. The entries (and their payloads) are fully
// copied before Append returns.
func (w *Writer[K]) Append(entries []comm.Entry[K]) error {
	if w.failed != nil {
		return w.failed
	}
	for len(entries) > 0 {
		est := comm.EntryWireEstimate(entries, w.codec)
		if est < 1 {
			est = 1
		}
		room := w.blockBytes - len(w.pending)
		step := room / est
		if step < 1 {
			step = 1
		}
		if step > len(entries) {
			step = len(entries)
		}
		w.pending = comm.EncodeEntries(w.pending, entries[:step], w.codec)
		w.pendCount += uint32(step)
		entries = entries[step:]
		if len(w.pending) >= w.blockBytes {
			if err := w.flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// flush compresses and writes the open block and records its index
// entry. The store-raw fallback keeps incompressible blocks at their
// raw size plus nothing.
func (w *Writer[K]) flush() error {
	if w.pendCount == 0 {
		return nil
	}
	if err := failpoint.HitNoPanic(FpWriteBlock); err != nil {
		return w.fail(err)
	}
	stored := w.pending
	var flags uint32
	w.comp.Reset()
	if w.fw == nil {
		w.fw, _ = flate.NewWriter(&w.comp, flate.BestSpeed)
	} else {
		w.fw.Reset(&w.comp)
	}
	if _, err := w.fw.Write(w.pending); err == nil && w.fw.Close() == nil &&
		w.comp.Len() < len(w.pending) {
		stored = w.comp.Bytes()
		flags |= blockCompressed
	}
	if _, err := w.bw.Write(stored); err != nil {
		return w.fail(fmt.Errorf("spill: write block: %w", err))
	}
	w.index = append(w.index, blockMeta{
		offset:    w.off,
		storedLen: uint32(len(stored)),
		rawLen:    uint32(len(w.pending)),
		count:     w.pendCount,
		crc:       crc32.Checksum(stored, castagnoli),
		flags:     flags,
	})
	w.off += uint64(len(stored))
	w.entries += uint64(w.pendCount)
	w.pending = w.pending[:0]
	w.pendCount = 0
	return nil
}

// Finish flushes the open block, writes the index and trailer, and
// closes the file. After Finish the run is complete on disk and
// BytesWritten/Entries report its final totals.
func (w *Writer[K]) Finish() error {
	if w.failed != nil {
		return w.failed
	}
	if err := w.flush(); err != nil {
		return err
	}
	idx := make([]byte, 0, len(w.index)*indexEntrySize)
	for _, m := range w.index {
		idx = binary.LittleEndian.AppendUint64(idx, m.offset)
		idx = binary.LittleEndian.AppendUint32(idx, m.storedLen)
		idx = binary.LittleEndian.AppendUint32(idx, m.rawLen)
		idx = binary.LittleEndian.AppendUint32(idx, m.count)
		idx = binary.LittleEndian.AppendUint32(idx, m.crc)
		idx = binary.LittleEndian.AppendUint32(idx, m.flags)
	}
	if _, err := w.bw.Write(idx); err != nil {
		return w.fail(fmt.Errorf("spill: write index: %w", err))
	}
	var tr [trailerSize]byte
	binary.LittleEndian.PutUint64(tr[0:], w.off)
	binary.LittleEndian.PutUint32(tr[8:], uint32(len(w.index)))
	binary.LittleEndian.PutUint64(tr[12:], w.entries)
	binary.LittleEndian.PutUint32(tr[20:], crc32.Checksum(idx, castagnoli))
	copy(tr[24:], indexMagic)
	if _, err := w.bw.Write(tr[:]); err != nil {
		return w.fail(fmt.Errorf("spill: write trailer: %w", err))
	}
	if err := w.bw.Flush(); err != nil {
		return w.fail(fmt.Errorf("spill: flush run file: %w", err))
	}
	w.off += uint64(len(idx)) + trailerSize
	err := w.f.Close()
	w.f = nil
	if err != nil {
		w.failed = fmt.Errorf("spill: close run file: %w", err)
		return w.failed
	}
	return nil
}

// fail records the first error, closes the file and removes the partial
// run; subsequent calls keep returning the original error.
func (w *Writer[K]) fail(err error) error {
	if w.failed == nil {
		w.failed = err
		w.Abort()
	}
	return w.failed
}

// Abort closes and removes the run file. Safe to call after Finish (the
// completed file is removed) or after a failure (idempotent).
func (w *Writer[K]) Abort() {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	os.Remove(w.path)
	if w.failed == nil {
		w.failed = errors.New("spill: writer aborted")
	}
}

// Path returns the run file path.
func (w *Writer[K]) Path() string { return w.path }

// BytesWritten reports the total bytes of the run file written so far,
// header and (after Finish) index/trailer included — the writer-side
// half of the Report's SpillBytes column.
func (w *Writer[K]) BytesWritten() int64 { return int64(w.off) }

// Entries reports how many entries have been flushed into blocks.
func (w *Writer[K]) Entries() uint64 { return w.entries }
