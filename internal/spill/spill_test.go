package spill

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pgxsort/internal/alloc"
	"pgxsort/internal/comm"
	"pgxsort/internal/dist"
	"pgxsort/internal/failpoint"
)

// writeRun spills entries through a Writer with the given block size and
// returns the file path.
func writeRun[K any](t *testing.T, entries []comm.Entry[K], c comm.Codec[K], blockBytes int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.spill")
	w, err := NewWriter(path, c, blockBytes)
	if err != nil {
		t.Fatal(err)
	}
	// Append in uneven batches to exercise block splitting.
	for len(entries) > 0 {
		n := 1 + len(entries)/3
		if n > len(entries) {
			n = len(entries)
		}
		if err := w.Append(entries[:n]); err != nil {
			t.Fatal(err)
		}
		entries = entries[n:]
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return path
}

// readAll drains a RunReader into one slice.
func readAll[K any](t *testing.T, r *RunReader[K]) []comm.Entry[K] {
	t.Helper()
	var out []comm.Entry[K]
	for {
		batch, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 {
			return out
		}
		// Batches are recycled on the following Next: deep-copy.
		for _, e := range batch {
			e.Payload = append([]byte(nil), e.Payload...)
			out = append(out, e)
		}
	}
}

func u64Entries(n int, seed uint64) []comm.Entry[uint64] {
	g := dist.Gen{Kind: dist.FewDistinct, Seed: seed}
	keys := g.Keys(n)
	entries := make([]comm.Entry[uint64], n)
	for i, k := range keys {
		entries[i] = comm.Entry[uint64]{Key: k, Proc: uint32(i % 7), Index: uint32(i)}
	}
	return entries
}

func checkIdentical[K comparable](t *testing.T, got, want []comm.Entry[K]) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key || got[i].Proc != want[i].Proc || got[i].Index != want[i].Index {
			t.Fatalf("entry %d: got %+v want %+v", i, got[i], want[i])
		}
		if string(got[i].Payload) != string(want[i].Payload) {
			t.Fatalf("entry %d payload: got %q want %q", i, got[i].Payload, want[i].Payload)
		}
	}
}

// TestRoundTripU64: a multi-block uint64 run comes back byte-identical,
// with Count and the byte counters consistent.
func TestRoundTripU64(t *testing.T) {
	want := u64Entries(20000, 5)
	path := writeRun(t, want, comm.U64Codec{}, 4096)
	r, err := NewRunReader(path, comm.U64Codec{}, ReaderOpts[uint64]{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Count() != uint64(len(want)) {
		t.Fatalf("Count = %d, want %d", r.Count(), len(want))
	}
	if len(r.index) < 4 {
		t.Fatalf("expected a multi-block file, got %d blocks", len(r.index))
	}
	checkIdentical(t, readAll(t, r), want)
	if r.BytesRead() <= 0 {
		t.Fatalf("BytesRead = %d", r.BytesRead())
	}
}

// TestRoundTripCompression: FewDistinct keys compress; the file must be
// much smaller than the raw encoding, and random payloads must take the
// store-raw fallback without corrupting anything.
func TestRoundTripCompression(t *testing.T) {
	want := u64Entries(50000, 9)
	path := writeRun(t, want, comm.U64Codec{}, 0)
	st, _ := os.Stat(path)
	raw := int64(len(want) * 16)
	if st.Size() >= raw/2 {
		t.Fatalf("compressible run: file %d bytes vs %d raw", st.Size(), raw)
	}
	r, err := NewRunReader(path, comm.U64Codec{}, ReaderOpts[uint64]{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	checkIdentical(t, readAll(t, r), want)
}

// TestRoundTripRecords: payload-carrying records survive the spill with
// payload bytes intact, through the store-raw fallback (random payloads
// do not compress).
func TestRoundTripRecords(t *testing.T) {
	c := comm.NewRecordCodec[uint64](comm.U64Codec{})
	g := dist.Gen{Kind: dist.Uniform, Seed: 11}
	keys := g.Keys(3000)
	pays := g.Payloads(3000, 48)
	want := make([]comm.Entry[uint64], len(keys))
	for i, k := range keys {
		want[i] = comm.Entry[uint64]{Key: k, Proc: 2, Index: uint32(i), Payload: pays[i]}
	}
	path := writeRun(t, want, c, 8192)
	r, err := NewRunReader(path, c, ReaderOpts[uint64]{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	checkIdentical(t, readAll(t, r), want)
}

// TestRoundTripStrings: the variable-width codec round-trips.
func TestRoundTripStrings(t *testing.T) {
	g := dist.Gen{Kind: dist.RightSkewed, Seed: 13}
	keys := g.Strings(5000, "k")
	want := make([]comm.Entry[string], len(keys))
	for i, k := range keys {
		want[i] = comm.Entry[string]{Key: k, Proc: 1, Index: uint32(i)}
	}
	path := writeRun(t, want, comm.StringCodec{}, 2048)
	r, err := NewRunReader(path, comm.StringCodec{}, ReaderOpts[string]{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	checkIdentical(t, readAll(t, r), want)
}

// TestEmptyRun: a run with zero entries is a valid file.
func TestEmptyRun(t *testing.T) {
	path := writeRun(t, nil, comm.U64Codec{}, 0)
	r, err := NewRunReader(path, comm.U64Codec{}, ReaderOpts[uint64]{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Count() != 0 {
		t.Fatalf("Count = %d", r.Count())
	}
	if got := readAll(t, r); len(got) != 0 {
		t.Fatalf("read %d entries from empty run", len(got))
	}
}

// TestSlabBalance: with a pool and tracker wired in, every decoded batch
// slab must come back — including when the reader is closed mid-stream
// with a batch outstanding and another parked in the decode-ahead
// channel.
func TestSlabBalance(t *testing.T) {
	want := u64Entries(30000, 17)
	path := writeRun(t, want, comm.U64Codec{}, 2048)
	pool := &alloc.SlabPool[comm.Entry[uint64]]{}
	tracker := &alloc.Tracker{}
	opts := ReaderOpts[uint64]{Pool: pool, Tracker: tracker, EntryBytes: 16}

	// Full drain.
	r, err := NewRunReader(path, comm.U64Codec{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, r)
	r.Close()
	if live := tracker.Live(); live != 0 {
		t.Fatalf("after drain: %d bytes live", live)
	}

	// Abandon mid-stream at various depths.
	for _, steps := range []int{0, 1, 2, 5} {
		r, err := NewRunReader(path, comm.U64Codec{}, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			if _, err := r.Next(); err != nil {
				t.Fatal(err)
			}
		}
		r.Close()
		if live := tracker.Live(); live != 0 {
			t.Fatalf("after %d steps: %d bytes live", steps, live)
		}
	}
}

// corrupt writes a mutated copy of the file and returns its path.
func corrupt(t *testing.T, path string, mutate func([]byte) []byte) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "corrupt.spill")
	if err := os.WriteFile(out, mutate(append([]byte(nil), b...)), 0o644); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCorruptionBattery: truncations, flipped bytes and bad index
// offsets must every one surface ErrCorrupt — never a panic, never
// silently wrong bytes.
func TestCorruptionBattery(t *testing.T) {
	want := u64Entries(20000, 23)
	path := writeRun(t, want, comm.U64Codec{}, 2048)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	size := len(full)

	mutations := map[string]func([]byte) []byte{
		"empty":             func(b []byte) []byte { return nil },
		"header-only":       func(b []byte) []byte { return b[:headerSize] },
		"trunc-mid-blocks":  func(b []byte) []byte { return b[:size/2] },
		"trunc-last-byte":   func(b []byte) []byte { return b[:size-1] },
		"bad-magic":         func(b []byte) []byte { b[0] ^= 0xff; return b },
		"bad-version":       func(b []byte) []byte { b[8] ^= 0xff; return b },
		"bad-trailer-magic": func(b []byte) []byte { b[size-1] ^= 0xff; return b },
		"bad-index-off":     func(b []byte) []byte { b[size-trailerSize] ^= 0x04; return b },
		"bad-index-bytes": func(b []byte) []byte {
			// Flip inside the first index entry's offset field.
			idxOff := size - trailerSize - 1
			b[idxOff] ^= 0x01
			return b
		},
		"bad-entry-count": func(b []byte) []byte {
			// totalEntries lives at trailer offset 12.
			b[size-trailerSize+12] ^= 0x01
			return b
		},
	}
	// Flip one byte in every block region of the file body.
	for off := headerSize; off < size-trailerSize; off += 1777 {
		off := off
		mutations[fmt.Sprintf("flip-%d", off)] = func(b []byte) []byte { b[off] ^= 0x10; return b }
	}

	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			p := corrupt(t, path, mutate)
			r, err := NewRunReader(p, comm.U64Codec{}, ReaderOpts[uint64]{})
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("open error %v does not wrap ErrCorrupt", err)
				}
				return
			}
			defer r.Close()
			got, readErr := drainOrErr(r)
			if readErr == nil {
				// The flipped byte may sit in slack the format never
				// reads (e.g. bufio padding is impossible, but CRC slack
				// is not) — then the data must still be right.
				checkIdentical(t, got, want)
				return
			}
			if !errors.Is(readErr, ErrCorrupt) {
				t.Fatalf("read error %v does not wrap ErrCorrupt", readErr)
			}
		})
	}
}

// drainOrErr reads until EOF or error, returning both.
func drainOrErr(r *RunReader[uint64]) ([]comm.Entry[uint64], error) {
	var out []comm.Entry[uint64]
	for {
		batch, err := r.Next()
		if err != nil {
			return out, err
		}
		if len(batch) == 0 {
			return out, nil
		}
		out = append(out, batch...)
	}
}

// TestWriterFailpoint: an injected write failure surfaces as an error
// (not a panic), poisons the writer, and removes the partial file.
func TestWriterFailpoint(t *testing.T) {
	failpoint.Reset()
	defer failpoint.Reset()
	failpoint.Set(FpWriteBlock, failpoint.Schedule{Mode: failpoint.ModeError, Nth: 1})

	path := filepath.Join(t.TempDir(), "run.spill")
	w, err := NewWriter(path, comm.U64Codec{}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	appendErr := w.Append(u64Entries(5000, 3))
	if appendErr == nil {
		appendErr = w.Finish()
	}
	if !errors.Is(appendErr, failpoint.ErrInjected) {
		t.Fatalf("err = %v, want injected", appendErr)
	}
	if err := w.Append(u64Entries(10, 3)); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("poisoned writer returned %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("partial file not removed: %v", err)
	}
}

// TestReaderFailpoint: an injected read failure surfaces through Next
// and the reader still closes cleanly with balanced slabs.
func TestReaderFailpoint(t *testing.T) {
	failpoint.Reset()
	defer failpoint.Reset()
	want := u64Entries(20000, 29)
	path := writeRun(t, want, comm.U64Codec{}, 2048)

	failpoint.Set(FpReadBlock, failpoint.Schedule{Mode: failpoint.ModeError, Nth: 3})
	tracker := &alloc.Tracker{}
	r, err := NewRunReader(path, comm.U64Codec{}, ReaderOpts[uint64]{Tracker: tracker, EntryBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	_, readErr := drainOrErr(r)
	if !errors.Is(readErr, failpoint.ErrInjected) {
		t.Fatalf("err = %v, want injected", readErr)
	}
	r.Close()
	if live := tracker.Live(); live != 0 {
		t.Fatalf("%d bytes live after failed read", live)
	}
}

// TestAbortRemovesFile: Abort is the cleanup path for discarded runs.
func TestAbortRemovesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.spill")
	w, err := NewWriter(path, comm.U64Codec{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(u64Entries(100, 1)); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("file survives Abort: %v", err)
	}
}
