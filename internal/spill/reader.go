package spill

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"

	"pgxsort/internal/alloc"
	"pgxsort/internal/comm"
	"pgxsort/internal/failpoint"
)

// ReaderOpts configures how a RunReader allocates decoded batches.
type ReaderOpts[K any] struct {
	// Pool supplies the slab behind each decoded batch; nil allocates
	// plainly. Recycled slabs are the block cache: with a pool shared
	// across readers, at most readers×2 slabs (live batch + decode-ahead)
	// circulate regardless of run size.
	Pool *alloc.SlabPool[comm.Entry[K]]
	// Tracker, when set, accounts decoded-batch bytes (EntryBytes per
	// entry) as Alloc on decode and Free on recycle, so slab-balance
	// tests can assert Live()==0 after Close.
	Tracker    *alloc.Tracker
	EntryBytes int64
}

// decoded is one block's worth of entries in flight from the prefetch
// goroutine to the consumer.
type decoded[K any] struct {
	entries []comm.Entry[K]
	err     error
}

// RunReader streams one spilled run back as an lsort.Cursor: Next yields
// one decoded block per call, while a prefetch goroutine keeps exactly
// one further block decoded ahead. The previous batch's slab is recycled
// on the following Next, so a merge over k spilled runs holds at most 2k
// block slabs however large the runs are.
type RunReader[K any] struct {
	f     *os.File
	codec comm.Codec[K]
	opts  ReaderOpts[K]
	index []blockMeta
	total uint64

	ch   chan decoded[K]
	stop chan struct{}
	prev []comm.Entry[K] // batch handed out by the last Next
	done bool

	// Section bounds (NewRunReaderSection): skip entries dropped from the
	// first kept block, limit entries emitted in total. limited gates the
	// trimming so whole-run readers pay nothing.
	limited bool
	skip    int
	limit   uint64

	bytesRead atomic.Int64
}

// NewRunReader opens a finished run file and validates its structure:
// magics, version, trailer placement, index checksum, and that block
// offsets tile [header, indexOff) exactly in order. Any mismatch is
// ErrCorrupt. On success the decode-ahead goroutine starts immediately.
func NewRunReader[K any](path string, c comm.Codec[K], opts ReaderOpts[K]) (*RunReader[K], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("spill: open run file: %w", err)
	}
	r := &RunReader[K]{f: f, codec: c, opts: opts}
	if err := r.loadIndex(); err != nil {
		f.Close()
		return nil, err
	}
	r.ch = make(chan decoded[K], 1)
	r.stop = make(chan struct{})
	go r.prefetch(r.stop)
	return r, nil
}

// NewRunReaderSection opens entries [offset, offset+limit) of a finished
// run file as their own cursor. Blocks wholly outside the section are
// never read or decoded — the index's per-block counts locate the first
// and last overlapping block — so p section readers over one spooled
// input file scan p disjoint byte ranges. Bounds are clamped to the run;
// Count reports the section's entry count.
func NewRunReaderSection[K any](path string, c comm.Codec[K], opts ReaderOpts[K], offset, limit uint64) (*RunReader[K], error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("spill: open run file: %w", err)
	}
	r := &RunReader[K]{f: f, codec: c, opts: opts}
	if err := r.loadIndex(); err != nil {
		f.Close()
		return nil, err
	}
	if offset > r.total {
		offset = r.total
	}
	if limit > r.total-offset {
		limit = r.total - offset
	}
	// Walk the index to the first block containing offset, then to the
	// first block past offset+limit.
	first, cum := 0, uint64(0)
	for first < len(r.index) && cum+uint64(r.index[first].count) <= offset {
		cum += uint64(r.index[first].count)
		first++
	}
	end, reach := first, cum
	for end < len(r.index) && reach < offset+limit {
		reach += uint64(r.index[end].count)
		end++
	}
	r.index = r.index[first:end]
	r.limited = true
	r.skip = int(offset - cum)
	r.limit = limit
	r.total = limit
	r.ch = make(chan decoded[K], 1)
	r.stop = make(chan struct{})
	go r.prefetch(r.stop)
	return r, nil
}

// loadIndex reads and validates trailer + index.
func (r *RunReader[K]) loadIndex() error {
	st, err := r.f.Stat()
	if err != nil {
		return fmt.Errorf("spill: stat run file: %w", err)
	}
	size := st.Size()
	if size < headerSize+trailerSize {
		return corruptf("file %d bytes, shorter than header+trailer", size)
	}
	var hdr [headerSize]byte
	if _, err := r.f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("spill: read header: %w", err)
	}
	if string(hdr[:8]) != magic {
		return corruptf("bad magic %q", hdr[:8])
	}
	if v := binary.LittleEndian.Uint16(hdr[8:]); v != version {
		return corruptf("unsupported version %d", v)
	}
	var tr [trailerSize]byte
	if _, err := r.f.ReadAt(tr[:], size-trailerSize); err != nil {
		return fmt.Errorf("spill: read trailer: %w", err)
	}
	if string(tr[24:32]) != indexMagic {
		return corruptf("bad trailer magic %q (truncated file?)", tr[24:32])
	}
	indexOff := binary.LittleEndian.Uint64(tr[0:])
	blocks := binary.LittleEndian.Uint32(tr[8:])
	r.total = binary.LittleEndian.Uint64(tr[12:])
	wantCRC := binary.LittleEndian.Uint32(tr[20:])
	idxLen := int64(blocks) * indexEntrySize
	if indexOff < headerSize || int64(indexOff)+idxLen != size-trailerSize {
		return corruptf("index at %d (+%d) does not abut trailer in %d-byte file", indexOff, idxLen, size)
	}
	idx := make([]byte, idxLen)
	if _, err := io.ReadFull(io.NewSectionReader(r.f, int64(indexOff), idxLen), idx); err != nil {
		return fmt.Errorf("spill: read index: %w", err)
	}
	if got := crc32.Checksum(idx, castagnoli); got != wantCRC {
		return corruptf("index checksum %08x, want %08x", got, wantCRC)
	}
	r.index = make([]blockMeta, blocks)
	next, entries := uint64(headerSize), uint64(0)
	for i := range r.index {
		m := &r.index[i]
		m.offset = binary.LittleEndian.Uint64(idx[i*indexEntrySize:])
		m.storedLen = binary.LittleEndian.Uint32(idx[i*indexEntrySize+8:])
		m.rawLen = binary.LittleEndian.Uint32(idx[i*indexEntrySize+12:])
		m.count = binary.LittleEndian.Uint32(idx[i*indexEntrySize+16:])
		m.crc = binary.LittleEndian.Uint32(idx[i*indexEntrySize+20:])
		m.flags = binary.LittleEndian.Uint32(idx[i*indexEntrySize+24:])
		if m.offset != next || m.offset+uint64(m.storedLen) > indexOff {
			return corruptf("block %d at offset %d (want %d, %d stored bytes, index at %d)",
				i, m.offset, next, m.storedLen, indexOff)
		}
		next = m.offset + uint64(m.storedLen)
		entries += uint64(m.count)
	}
	if next != indexOff {
		return corruptf("blocks end at %d, index starts at %d", next, indexOff)
	}
	if entries != r.total {
		return corruptf("index counts %d entries, trailer says %d", entries, r.total)
	}
	return nil
}

// prefetch decodes blocks in order, staying exactly one decoded block
// ahead of the consumer (the channel has capacity 1). Buffers for stored
// and raw bytes are reused across blocks; entry slabs come from the pool
// and travel to the consumer, who recycles them via Next/Close.
func (r *RunReader[K]) prefetch(stop <-chan struct{}) {
	defer close(r.ch)
	var stored, raw []byte
	var fr io.ReadCloser
	br := bytes.NewReader(nil)
	emitted := uint64(0)
	for i := range r.index {
		batch, err := r.readBlock(&r.index[i], &stored, &raw, &fr, br)
		if err != nil {
			select {
			case r.ch <- decoded[K]{err: err}:
			case <-stop:
			}
			return
		}
		if r.limited {
			lo := 0
			if i == 0 {
				lo = r.skip
			}
			hi := len(batch)
			if remain := r.limit - emitted; uint64(hi-lo) > remain {
				hi = lo + int(remain)
			}
			batch = r.trimBatch(batch, lo, hi)
			emitted += uint64(len(batch))
			if len(batch) == 0 {
				// An empty batch would read as end-of-run; only possible
				// for a zero-length section, which has no blocks anyway.
				r.recycle(batch)
				return
			}
		}
		select {
		case r.ch <- decoded[K]{entries: batch}:
		case <-stop:
			r.recycle(batch)
			return
		}
	}
}

// trimBatch narrows a decoded block to its section overlap. The trimmed
// entries move to a fresh slab so slab recycling and tracker accounting
// keep seeing whole allocations; at most two blocks per section (first
// and last) pay the copy.
func (r *RunReader[K]) trimBatch(batch []comm.Entry[K], lo, hi int) []comm.Entry[K] {
	if lo == 0 && hi == len(batch) {
		return batch
	}
	fresh := r.opts.Pool.Get(hi - lo)
	if fresh == nil { // nil pool, zero-length trim
		fresh = make([]comm.Entry[K], hi-lo)
	}
	copy(fresh, batch[lo:hi])
	if r.opts.Tracker != nil {
		r.opts.Tracker.Alloc(int64(len(fresh)) * r.opts.EntryBytes)
	}
	r.recycle(batch)
	return fresh
}

// readBlock fetches, verifies and decodes one block. stored/raw/fr/br
// are the prefetch loop's reusable buffers and inflater.
func (r *RunReader[K]) readBlock(m *blockMeta, stored, raw *[]byte, fr *io.ReadCloser, br *bytes.Reader) ([]comm.Entry[K], error) {
	if err := failpoint.HitNoPanic(FpReadBlock); err != nil {
		return nil, err
	}
	if cap(*stored) < int(m.storedLen) {
		*stored = make([]byte, m.storedLen)
	}
	buf := (*stored)[:m.storedLen]
	if _, err := r.f.ReadAt(buf, int64(m.offset)); err != nil {
		return nil, fmt.Errorf("spill: read block: %w", err)
	}
	r.bytesRead.Add(int64(m.storedLen))
	if got := crc32.Checksum(buf, castagnoli); got != m.crc {
		return nil, corruptf("block at %d: checksum %08x, want %08x", m.offset, got, m.crc)
	}
	data := buf
	if m.flags&blockCompressed != 0 {
		if cap(*raw) < int(m.rawLen) {
			*raw = make([]byte, m.rawLen)
		}
		data = (*raw)[:m.rawLen]
		br.Reset(buf)
		if *fr == nil {
			*fr = flate.NewReader(br)
		} else if err := (*fr).(flate.Resetter).Reset(br, nil); err != nil {
			return nil, corruptf("block at %d: %v", m.offset, err)
		}
		if _, err := io.ReadFull(*fr, data); err != nil {
			return nil, corruptf("block at %d: inflate: %v", m.offset, err)
		}
	} else if uint32(len(data)) != m.rawLen {
		return nil, corruptf("block at %d: raw block stores %d bytes, index says %d", m.offset, len(data), m.rawLen)
	}
	entries, rest, err := comm.DecodeEntriesSlab(data, int(m.count), r.codec, r.opts.Pool)
	if err != nil {
		return nil, corruptf("block at %d: %v", m.offset, err)
	}
	if len(rest) != 0 {
		r.recycle(entries)
		return nil, corruptf("block at %d: %d trailing bytes after %d entries", m.offset, len(rest), m.count)
	}
	if r.opts.Tracker != nil {
		r.opts.Tracker.Alloc(int64(len(entries)) * r.opts.EntryBytes)
	}
	return entries, nil
}

// recycle returns a decoded batch's slab and settles its accounting.
func (r *RunReader[K]) recycle(batch []comm.Entry[K]) {
	if batch == nil {
		return
	}
	if r.opts.Tracker != nil {
		r.opts.Tracker.Free(int64(len(batch)) * r.opts.EntryBytes)
	}
	r.opts.Pool.Put(batch)
}

// Next implements lsort.Cursor: it recycles the previously returned
// batch and hands out the next decoded block; a zero-length batch means
// the run is exhausted. The returned slice is only valid until the next
// Next or Close.
func (r *RunReader[K]) Next() ([]comm.Entry[K], error) {
	r.recycle(r.prev)
	r.prev = nil
	if r.done {
		return nil, nil
	}
	d, ok := <-r.ch
	if !ok {
		r.done = true
		return nil, nil
	}
	if d.err != nil {
		r.done = true
		return nil, d.err
	}
	r.prev = d.entries
	return d.entries, nil
}

// Count reports the total entries in the run (from the trailer).
func (r *RunReader[K]) Count() uint64 { return r.total }

// BytesRead reports stored block bytes fetched so far — the reader-side
// half of the Report's SpillReads column. Safe to call concurrently.
func (r *RunReader[K]) BytesRead() int64 { return r.bytesRead.Load() }

// Close stops the prefetch goroutine, recycles outstanding slabs and
// closes the file. Safe after errors and safe to call once Next has
// drained the run.
func (r *RunReader[K]) Close() error {
	if r.stop != nil {
		close(r.stop)
		r.stop = nil
		// Drain anything the prefetcher had already parked in the
		// channel so its slab goes back to the pool.
		for d := range r.ch {
			r.recycle(d.entries)
		}
	}
	r.recycle(r.prev)
	r.prev = nil
	r.done = true
	if r.f != nil {
		err := r.f.Close()
		r.f = nil
		return err
	}
	return nil
}
