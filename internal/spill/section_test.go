package spill

import (
	"testing"

	"pgxsort/internal/alloc"
	"pgxsort/internal/comm"
)

// TestRunReaderSection slices one run file at every tricky boundary and
// checks each section is exactly the corresponding subslice, with slab
// accounting balanced to zero.
func TestRunReaderSection(t *testing.T) {
	const n = 2000
	entries := make([]comm.Entry[uint64], n)
	for i := range entries {
		entries[i] = comm.Entry[uint64]{Key: uint64(i) * 3, Proc: 1, Index: uint32(i)}
	}
	// Small blocks so sections straddle many block boundaries.
	path := writeRun(t, entries, comm.U64Codec{}, 256)

	sections := []struct{ off, limit uint64 }{
		{0, n},     // whole run
		{0, 1},     // first entry only
		{n - 1, 1}, // last entry only
		{7, 500},   // mid-block start, mid-block end
		{0, n / 2}, // first half
		{n / 2, n}, // second half, limit clamped
		{n, 5},     // past the end: empty
		{500, 0},   // zero-length
		{123, 1},   // single mid-run entry
	}
	pool := &alloc.SlabPool[comm.Entry[uint64]]{}
	var tracker alloc.Tracker
	eb := int64(40)
	for _, s := range sections {
		r, err := NewRunReaderSection(path, comm.U64Codec{},
			ReaderOpts[uint64]{Pool: pool, Tracker: &tracker, EntryBytes: eb}, s.off, s.limit)
		if err != nil {
			t.Fatalf("section [%d,+%d): %v", s.off, s.limit, err)
		}
		got := readAll(t, r)
		lo := min(s.off, n)
		hi := min(s.off+s.limit, n)
		want := entries[lo:hi]
		if uint64(len(got)) != uint64(len(want)) || r.Count() != uint64(len(want)) {
			t.Fatalf("section [%d,+%d): %d entries (Count %d), want %d",
				s.off, s.limit, len(got), r.Count(), len(want))
		}
		for i := range want {
			if got[i].Key != want[i].Key || got[i].Index != want[i].Index {
				t.Fatalf("section [%d,+%d) entry %d: got key %d idx %d, want key %d idx %d",
					s.off, s.limit, i, got[i].Key, got[i].Index, want[i].Key, want[i].Index)
			}
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		if live := tracker.Live(); live != 0 {
			t.Fatalf("section [%d,+%d): %d tracked bytes live after Close", s.off, s.limit, live)
		}
	}
}

// TestRunReaderSectionTiling reads a run as p disjoint sections and
// checks their concatenation reproduces the whole run — the contract the
// spooled sort's per-node section readers rely on.
func TestRunReaderSectionTiling(t *testing.T) {
	const n = 1777
	entries := make([]comm.Entry[uint64], n)
	for i := range entries {
		entries[i] = comm.Entry[uint64]{Key: uint64(i * 7)}
	}
	path := writeRun(t, entries, comm.U64Codec{}, 300)
	for _, p := range []int{1, 2, 3, 8} {
		var all []comm.Entry[uint64]
		for i := 0; i < p; i++ {
			lo := uint64(i * n / p)
			hi := uint64((i + 1) * n / p)
			r, err := NewRunReaderSection(path, comm.U64Codec{}, ReaderOpts[uint64]{}, lo, hi-lo)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, readAll(t, r)...)
			r.Close()
		}
		if len(all) != n {
			t.Fatalf("p=%d: tiled sections yield %d entries, want %d", p, len(all), n)
		}
		for i := range all {
			if all[i].Key != entries[i].Key {
				t.Fatalf("p=%d: entry %d key %d, want %d", p, i, all[i].Key, entries[i].Key)
			}
		}
	}
}
