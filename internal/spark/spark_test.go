package spark

import (
	"testing"
	"testing/quick"

	"pgxsort/internal/comm"
	"pgxsort/internal/dist"
)

func newCtx(t testing.TB, parts int) *Context {
	t.Helper()
	sc := NewContext(Config{Partitions: parts, TotalCores: 4, Seed: 1})
	t.Cleanup(sc.Close)
	return sc
}

func TestSortByKeyAllDistributions(t *testing.T) {
	for _, kind := range dist.Kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			sc := newCtx(t, 4)
			data := dist.Gen{Kind: kind, Seed: 11}.Keys(20000)
			in := Parallelize(sc, data)
			out, rep := SortByKey(in, comm.U64Codec{})
			if err := Verify(in, out); err != nil {
				t.Fatal(err)
			}
			if rep.N != 20000 {
				t.Errorf("report N = %d", rep.N)
			}
		})
	}
}

func TestSortByKeyEmpty(t *testing.T) {
	sc := newCtx(t, 4)
	in := Parallelize(sc, []uint64{})
	out, _ := SortByKey(in, comm.U64Codec{})
	if err := Verify(in, out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("sorted empty input has %d elements", out.Len())
	}
}

func TestSortByKeyTiny(t *testing.T) {
	sc := newCtx(t, 4)
	in := Parallelize(sc, []uint64{3, 1, 2})
	out, _ := SortByKey(in, comm.U64Codec{})
	if err := Verify(in, out); err != nil {
		t.Fatal(err)
	}
	var flat []uint64
	for _, p := range out.Parts() {
		flat = append(flat, p...)
	}
	for i, want := range []uint64{1, 2, 3} {
		if flat[i] != want {
			t.Fatalf("flat = %v", flat)
		}
	}
}

func TestFromParts(t *testing.T) {
	sc := newCtx(t, 2)
	if _, err := FromParts(sc, [][]uint64{{1}}); err == nil {
		t.Fatal("FromParts accepted wrong part count")
	}
	rdd, err := FromParts(sc, [][]uint64{{3, 1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := SortByKey(rdd, comm.U64Codec{})
	if err := Verify(rdd, out); err != nil {
		t.Fatal(err)
	}
}

func TestReportStages(t *testing.T) {
	sc := newCtx(t, 4)
	data := dist.Gen{Kind: dist.Uniform, Seed: 3}.Keys(50000)
	in := Parallelize(sc, data)
	_, rep := SortByKey(in, comm.U64Codec{})
	if rep.SampleStage <= 0 || rep.MapStage <= 0 || rep.ReduceStage <= 0 {
		t.Errorf("stage durations missing: %+v", rep)
	}
	if rep.Total < rep.SampleStage {
		t.Error("total smaller than a stage")
	}
	if rep.ShuffleBytes != int64(len(data))*16 {
		t.Errorf("shuffle bytes = %d, want %d (16 per key-value record)",
			rep.ShuffleBytes, len(data)*16)
	}
	if rep.SampledKeys == 0 {
		t.Error("no samples collected")
	}
	if rep.TempPeakBytes == 0 {
		t.Error("shuffle block memory not tracked")
	}
	sum := 0
	for _, s := range rep.PartSizes {
		sum += s
	}
	if sum != rep.N {
		t.Errorf("part sizes sum %d != %d", sum, rep.N)
	}
	if rep.LoadImbalance() < 1 {
		t.Errorf("imbalance = %v < 1", rep.LoadImbalance())
	}
}

func TestUniformBalance(t *testing.T) {
	sc := newCtx(t, 8)
	data := dist.Gen{Kind: dist.Uniform, Seed: 9}.Keys(200000)
	in := Parallelize(sc, data)
	_, rep := SortByKey(in, comm.U64Codec{})
	if imb := rep.LoadImbalance(); imb > 1.5 {
		t.Errorf("uniform imbalance = %.3f, want <= 1.5", imb)
	}
}

// Spark's range partitioner has no investigator: on heavily duplicated
// inputs the output partitions are skewed. This is the behaviour the paper
// exploits in its comparison.
func TestDuplicateSkewImbalance(t *testing.T) {
	sc := newCtx(t, 8)
	data := dist.Gen{Kind: dist.RightSkewed, Seed: 5, Domain: 64}.Keys(100000)
	in := Parallelize(sc, data)
	out, rep := SortByKey(in, comm.U64Codec{})
	if err := Verify(in, out); err != nil {
		t.Fatal(err)
	}
	if imb := rep.LoadImbalance(); imb < 1.5 {
		t.Errorf("imbalance on duplicate-heavy input = %.3f, expected noticeable skew", imb)
	}
}

func TestPartitionFor(t *testing.T) {
	bounds := []uint64{10, 20, 30}
	cases := []struct {
		k    uint64
		want int
	}{
		{0, 0}, {10, 0}, {11, 1}, {20, 1}, {25, 2}, {30, 2}, {31, 3}, {99, 3},
	}
	for _, c := range cases {
		if got := partitionFor(c.k, bounds); got != c.want {
			t.Errorf("partitionFor(%d) = %d, want %d", c.k, got, c.want)
		}
	}
	if got := partitionFor(uint64(5), nil); got != 0 {
		t.Errorf("no bounds should map to partition 0, got %d", got)
	}
}

func TestReservoir(t *testing.T) {
	data := make([]uint64, 1000)
	for i := range data {
		data[i] = uint64(i)
	}
	s := reservoir(data, 100, 42)
	if len(s) != 100 {
		t.Fatalf("sample size = %d", len(s))
	}
	seen := map[uint64]bool{}
	for _, v := range s {
		if v >= 1000 {
			t.Fatalf("sample value %d not from input", v)
		}
		seen[v] = true
	}
	if len(seen) < 90 {
		t.Errorf("sample has only %d distinct values; replacement bug?", len(seen))
	}
	// Sample mean should be near the population mean (499.5).
	var sum float64
	for _, v := range s {
		sum += float64(v)
	}
	mean := sum / 100
	if mean < 350 || mean > 650 {
		t.Errorf("sample mean %.1f implausible for uniform draw", mean)
	}
	if got := reservoir(data, 0, 1); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := reservoir(data[:5], 10, 1); len(got) != 5 {
		t.Errorf("k>n should clamp, got %d", len(got))
	}
}

func TestVerifyCatchesBadOutput(t *testing.T) {
	sc := newCtx(t, 2)
	in, err := FromParts(sc, [][]uint64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := FromParts(sc, [][]uint64{{2, 1}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if Verify(in, bad) == nil {
		t.Error("Verify missed unsorted partition")
	}
	bad2, _ := FromParts(sc, [][]uint64{{1, 2}, {3, 5}})
	if Verify(in, bad2) == nil {
		t.Error("Verify missed changed key")
	}
	bad3, _ := FromParts(sc, [][]uint64{{1}, {3}})
	if Verify(in, bad3) == nil {
		t.Error("Verify missed missing keys")
	}
}

func TestPropertySortByKey(t *testing.T) {
	sc := newCtx(t, 3)
	f := func(data []uint64) bool {
		in := Parallelize(sc, data)
		out, _ := SortByKey(in, comm.U64Codec{})
		return Verify(in, out) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
