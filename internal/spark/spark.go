// Package spark is the comparison baseline: a miniature bulk-synchronous
// RDD engine whose sortByKey reproduces the structure of Spark 1.6.1's
// implementation, the system the paper benchmarks against (§II, §V).
//
// The stages and costs mirror real Spark rather than injecting artificial
// delays:
//
//   - sample stage: an extra full pass over the *unsorted* input with
//     reservoir sampling per partition, collected at the driver;
//   - driver: range bounds from the sorted sample pool;
//   - map stage: every element is routed with a binary search and
//     *serialized* into per-reducer shuffle blocks (Spark always
//     serializes shuffle data, even in memory);
//   - stage barrier: no reducer starts before every mapper finishes
//     (the bulk-synchronous model the paper contrasts with PGX.D's
//     relaxed barriers);
//   - reduce stage: each reducer fetches and deserializes its blocks,
//     then TimSorts the concatenation (Spark sorts on the reduce side
//     with TimSort; there are no presorted runs to merge).
//
// The engine runs its tasks on a shared executor pool sized like the
// PGX.D engine's worker pool so CPU parallelism is comparable.
package spark

import (
	"cmp"
	"fmt"
	"sync"
	"time"

	"pgxsort/internal/alloc"
	"pgxsort/internal/comm"
	"pgxsort/internal/dist"
	"pgxsort/internal/lsort"
	"pgxsort/internal/sample"
	"pgxsort/internal/taskmgr"
)

// Config sizes the simulated cluster.
type Config struct {
	// Partitions is the RDD partition count (the paper's "processors").
	Partitions int
	// TotalCores is the number of executor cores shared by all tasks,
	// comparable to Procs*WorkersPerProc of the PGX.D engine. Default
	// 2*Partitions.
	TotalCores int
	// Seed drives reservoir sampling.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	if c.TotalCores <= 0 {
		c.TotalCores = 2 * c.Partitions
	}
	return c
}

// Context owns the executor pool and shuffle machinery.
type Context struct {
	cfg     Config
	pool    *taskmgr.Pool
	tracker alloc.Tracker
}

// NewContext starts a simulated Spark context.
func NewContext(cfg Config) *Context {
	cfg = cfg.withDefaults()
	return &Context{cfg: cfg, pool: taskmgr.NewPool(cfg.TotalCores)}
}

// Close stops the executors.
func (sc *Context) Close() { sc.pool.Close() }

// Config returns the resolved configuration.
func (sc *Context) Config() Config { return sc.cfg }

// RDD is a partitioned dataset.
type RDD[K cmp.Ordered] struct {
	sc    *Context
	parts [][]K
}

// Parallelize block-distributes data into the configured partition count.
func Parallelize[K cmp.Ordered](sc *Context, data []K) *RDD[K] {
	p := sc.cfg.Partitions
	parts := make([][]K, p)
	for i := 0; i < p; i++ {
		lo := i * len(data) / p
		hi := (i + 1) * len(data) / p
		parts[i] = data[lo:hi]
	}
	return &RDD[K]{sc: sc, parts: parts}
}

// FromParts wraps per-partition data already in place.
func FromParts[K cmp.Ordered](sc *Context, parts [][]K) (*RDD[K], error) {
	if len(parts) != sc.cfg.Partitions {
		return nil, fmt.Errorf("spark: got %d parts for %d partitions", len(parts), sc.cfg.Partitions)
	}
	return &RDD[K]{sc: sc, parts: parts}, nil
}

// Parts exposes the partition slices.
func (r *RDD[K]) Parts() [][]K { return r.parts }

// Len returns the total element count.
func (r *RDD[K]) Len() int {
	n := 0
	for _, p := range r.parts {
		n += len(p)
	}
	return n
}

// Report describes one sortByKey run.
type Report struct {
	Partitions   int
	Cores        int
	N            int
	SampleStage  time.Duration
	MapStage     time.Duration
	ReduceStage  time.Duration
	Total        time.Duration
	ShuffleBytes int64
	SampledKeys  int
	PartSizes    []int
	// TempPeakBytes tracks shuffle block memory (serialized blocks are
	// Spark's in-memory shuffle files).
	TempPeakBytes int64
}

// LoadImbalance returns max/avg output partition size.
func (r *Report) LoadImbalance() float64 {
	if r.N == 0 || len(r.PartSizes) == 0 {
		return 1
	}
	maxPart := 0
	for _, s := range r.PartSizes {
		if s > maxPart {
			maxPart = s
		}
	}
	return float64(maxPart) / (float64(r.N) / float64(len(r.PartSizes)))
}

// Spark 1.6 RangePartitioner constants (rangePartition.scala): sampleSize
// = min(20*partitions, 1e6), oversampled 3x per partition.
const (
	samplePointsPerPartitionHint = 20
	maxSampleSize                = 1_000_000
	oversample                   = 3
)

// SortByKey sorts the RDD globally, returning a new range-partitioned RDD
// whose partition i holds keys <= partition i+1's, plus the stage report.
func SortByKey[K cmp.Ordered](r *RDD[K], codec comm.Codec[K]) (*RDD[K], *Report) {
	sc := r.sc
	p := sc.cfg.Partitions
	rep := &Report{Partitions: p, Cores: sc.cfg.TotalCores, N: r.Len()}
	start := time.Now()

	// ---- Stage 1: sample (extra pass over unsorted data) ----
	t0 := time.Now()
	sampleSize := samplePointsPerPartitionHint * p
	if sampleSize > maxSampleSize {
		sampleSize = maxSampleSize
	}
	perPartition := (oversample*sampleSize + p - 1) / p
	sampled := make([][]K, p)
	tasks := make([]func(), p)
	for i := 0; i < p; i++ {
		i := i
		tasks[i] = func() {
			sampled[i] = reservoir(r.parts[i], perPartition, sc.cfg.Seed+uint64(i))
		}
	}
	sc.pool.RunAll(tasks...) // stage barrier
	// Driver: collect and sort the sample pool, pick p-1 bounds.
	var pool []K
	for _, s := range sampled {
		pool = append(pool, s...)
	}
	rep.SampledKeys = len(pool)
	lsort.TimSort(pool, func(a, b K) bool { return a < b })
	bounds := sample.SplittersFromSorted(pool, p)
	rep.SampleStage = time.Since(t0)

	// ---- Stage 2: map + shuffle write (serialize into blocks) ----
	// sortByKey operates on key-value pairs: like the PGX.D engine's
	// entries (key + 8-byte provenance), every shuffled record carries
	// its key and an 8-byte value (origin partition and position), so
	// the two systems move the same bytes per record.
	t0 = time.Now()
	// blocks[mapper][reducer] is a serialized shuffle block.
	blocks := make([][][]byte, p)
	blockLens := make([][]int, p)
	for i := 0; i < p; i++ {
		i := i
		tasks[i] = func() {
			bufs := make([][]byte, p)
			lens := make([]int, p)
			one := make([]comm.Entry[K], 1)
			for pos, k := range r.parts[i] {
				dst := partitionFor(k, bounds)
				one[0] = comm.Entry[K]{Key: k, Proc: uint32(i), Index: uint32(pos)}
				bufs[dst] = comm.EncodeEntries(bufs[dst], one, codec)
				lens[dst]++
			}
			var total int64
			for _, b := range bufs {
				total += int64(len(b))
			}
			sc.tracker.Alloc(total)
			blocks[i] = bufs
			blockLens[i] = lens
		}
	}
	sc.pool.RunAll(tasks...) // stage barrier: all shuffle files written
	rep.MapStage = time.Since(t0)

	// ---- Stage 3: reduce = shuffle read + TimSort ----
	t0 = time.Now()
	out := make([][]K, p)
	var shuffleBytes int64
	var mu sync.Mutex
	for j := 0; j < p; j++ {
		j := j
		tasks[j] = func() {
			n := 0
			for i := 0; i < p; i++ {
				n += blockLens[i][j]
			}
			merged := make([]comm.Entry[K], 0, n)
			var fetched int64
			for i := 0; i < p; i++ {
				entries, _, err := comm.DecodeEntries(blocks[i][j], blockLens[i][j], codec)
				if err != nil {
					panic(fmt.Sprintf("spark: corrupt shuffle block %d->%d: %v", i, j, err))
				}
				fetched += int64(len(blocks[i][j]))
				merged = append(merged, entries...)
			}
			lsort.TimSort(merged, func(a, b comm.Entry[K]) bool { return a.Key < b.Key })
			keys := make([]K, len(merged))
			for idx, e := range merged {
				keys[idx] = e.Key
			}
			out[j] = keys
			mu.Lock()
			shuffleBytes += fetched
			mu.Unlock()
		}
	}
	sc.pool.RunAll(tasks...)
	// Blocks are released after the stage, like shuffle cleanup.
	var blockTotal int64
	for i := range blocks {
		for j := range blocks[i] {
			blockTotal += int64(len(blocks[i][j]))
		}
	}
	sc.tracker.Free(blockTotal)
	rep.ReduceStage = time.Since(t0)

	rep.ShuffleBytes = shuffleBytes
	rep.Total = time.Since(start)
	rep.TempPeakBytes = sc.tracker.Peak()
	rep.PartSizes = make([]int, p)
	for j, o := range out {
		rep.PartSizes[j] = len(o)
	}
	return &RDD[K]{sc: sc, parts: out}, rep
}

// partitionFor routes a key: the number of bounds strictly below key,
// giving partition j the keys in (bounds[j-1], bounds[j]].
func partitionFor[K cmp.Ordered](k K, bounds []K) int {
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bounds[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// reservoir draws a uniform sample of up to k elements (algorithm R).
func reservoir[K cmp.Ordered](data []K, k int, seed uint64) []K {
	if k <= 0 || len(data) == 0 {
		return nil
	}
	if k > len(data) {
		k = len(data)
	}
	out := make([]K, k)
	copy(out, data[:k])
	rng := dist.NewRNG(seed)
	for i := k; i < len(data); i++ {
		j := rng.Uint64n(uint64(i + 1))
		if j < uint64(k) {
			out[j] = data[i]
		}
	}
	return out
}

// Verify checks that the sorted RDD is globally ordered and a permutation
// of the input (multiset equality).
func Verify[K cmp.Ordered](in, out *RDD[K]) error {
	if in.Len() != out.Len() {
		return fmt.Errorf("spark: length changed: %d -> %d", in.Len(), out.Len())
	}
	counts := make(map[K]int, in.Len())
	for _, part := range in.parts {
		for _, k := range part {
			counts[k]++
		}
	}
	var prev K
	havePrev := false
	for pi, part := range out.parts {
		for i, k := range part {
			if i > 0 && part[i-1] > k {
				return fmt.Errorf("spark: partition %d unsorted at %d", pi, i)
			}
			if havePrev && prev > k {
				return fmt.Errorf("spark: global order violated entering partition %d", pi)
			}
			counts[k]--
			if counts[k] < 0 {
				return fmt.Errorf("spark: output has extra key %v", k)
			}
		}
		if len(part) > 0 {
			prev = part[len(part)-1]
			havePrev = true
		}
	}
	return nil
}
