package comm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	for k := KSamples; k <= KControl; k++ {
		if s := k.String(); s == "" || s[0] == 'K' {
			t.Errorf("Kind(%d).String() = %q", k, s)
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestWireBytes(t *testing.T) {
	m := Message[uint64]{
		Entries: make([]Entry[uint64], 3),
		Keys:    make([]uint64, 2),
		Ints:    make([]int64, 5),
	}
	// 3*(8+8) + 2*8 + 5*8 = 48 + 16 + 40 = 104.
	if got := m.WireBytes(U64Codec{}); got != 104 {
		t.Fatalf("WireBytes = %d, want 104", got)
	}
	empty := Message[uint64]{}
	if got := empty.WireBytes(U64Codec{}); got != 0 {
		t.Fatalf("empty WireBytes = %d", got)
	}
}

func TestEntryRoundTrip(t *testing.T) {
	in := []Entry[uint64]{
		{Key: 0, Proc: 0, Index: 0},
		{Key: math.MaxUint64, Proc: math.MaxUint32, Index: math.MaxUint32},
		{Key: 12345, Proc: 7, Index: 99},
	}
	buf := EncodeEntries(nil, in, U64Codec{})
	if len(buf) != len(in)*16 {
		t.Fatalf("encoded %d bytes, want %d", len(buf), len(in)*16)
	}
	out, rest, err := DecodeEntries(buf, len(in), U64Codec{})
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v, %d leftover", err, len(rest))
	}
	for i := range in {
		if out[i].Key != in[i].Key || out[i].Proc != in[i].Proc || out[i].Index != in[i].Index {
			t.Fatalf("entry %d: %+v != %+v", i, out[i], in[i])
		}
	}
}

func TestKeyRoundTripAllCodecs(t *testing.T) {
	t.Run("u64", func(t *testing.T) {
		in := []uint64{0, 1, math.MaxUint64}
		buf := EncodeKeys(nil, in, U64Codec{})
		out, _, err := DecodeKeys(buf, len(in), U64Codec{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatal("u64 round trip failed")
			}
		}
	})
	t.Run("i64", func(t *testing.T) {
		in := []int64{math.MinInt64, -1, 0, math.MaxInt64}
		buf := EncodeKeys(nil, in, I64Codec{})
		out, _, err := DecodeKeys(buf, len(in), I64Codec{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatal("i64 round trip failed")
			}
		}
	})
	t.Run("f64", func(t *testing.T) {
		in := []float64{0, -1.5, math.Inf(1), math.SmallestNonzeroFloat64}
		buf := EncodeKeys(nil, in, F64Codec{})
		out, _, err := DecodeKeys(buf, len(in), F64Codec{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatal("f64 round trip failed")
			}
		}
	})
	t.Run("u32", func(t *testing.T) {
		in := []uint32{0, 7, math.MaxUint32}
		buf := EncodeKeys(nil, in, U32Codec{})
		if len(buf) != 12 {
			t.Fatalf("u32 encoding = %d bytes", len(buf))
		}
		out, _, err := DecodeKeys(buf, len(in), U32Codec{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatal("u32 round trip failed")
			}
		}
	})
}

func TestIntsRoundTrip(t *testing.T) {
	in := []int64{math.MinInt64, -7, 0, 42, math.MaxInt64}
	buf := EncodeInts(nil, in)
	out, rest, err := DecodeInts(buf, len(in))
	if err != nil || len(rest) != 0 {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatal("ints round trip failed")
		}
	}
}

func TestDecodeShortBuffers(t *testing.T) {
	if _, _, err := DecodeEntries[uint64]([]byte{1, 2}, 1, U64Codec{}); err == nil {
		t.Error("short entry buffer accepted")
	}
	if _, _, err := DecodeKeys[uint64]([]byte{1}, 1, U64Codec{}); err == nil {
		t.Error("short key buffer accepted")
	}
	if _, _, err := DecodeInts([]byte{1}, 1); err == nil {
		t.Error("short int buffer accepted")
	}
}

func TestEncodeAppendsToExisting(t *testing.T) {
	buf := []byte{0xAA}
	buf = EncodeKeys(buf, []uint64{5}, U64Codec{})
	if len(buf) != 9 || buf[0] != 0xAA {
		t.Fatalf("append corrupted prefix: %v", buf)
	}
	out, rest, err := DecodeKeys(buf[1:], 1, U64Codec{})
	if err != nil || out[0] != 5 || len(rest) != 0 {
		t.Fatalf("decode after append: %v %v %d", out, err, len(rest))
	}
}

func TestMixedPayloadSequentialDecode(t *testing.T) {
	entries := []Entry[uint64]{{Key: 1, Proc: 2, Index: 3}}
	keys := []uint64{9, 8}
	ints := []int64{-1}
	buf := EncodeEntries(nil, entries, U64Codec{})
	buf = EncodeKeys(buf, keys, U64Codec{})
	buf = EncodeInts(buf, ints)

	e, rest, err := DecodeEntries(buf, 1, U64Codec{})
	if err != nil || e[0].Key != 1 || e[0].Proc != 2 || e[0].Index != 3 {
		t.Fatal("entries leg failed")
	}
	k, rest, err := DecodeKeys(rest, 2, U64Codec{})
	if err != nil || k[0] != 9 || k[1] != 8 {
		t.Fatal("keys leg failed")
	}
	i, rest, err := DecodeInts(rest, 1)
	if err != nil || i[0] != -1 || len(rest) != 0 {
		t.Fatal("ints leg failed")
	}
}

func TestPropertyEntriesRoundTrip(t *testing.T) {
	f := func(keys []uint64, procs []uint32) bool {
		n := min(len(keys), len(procs))
		in := make([]Entry[uint64], n)
		for i := 0; i < n; i++ {
			in[i] = Entry[uint64]{Key: keys[i], Proc: procs[i], Index: uint32(i)}
		}
		buf := EncodeEntries(nil, in, U64Codec{})
		out, rest, err := DecodeEntries(buf, n, U64Codec{})
		if err != nil || len(rest) != 0 {
			return false
		}
		for i := range in {
			if out[i].Key != in[i].Key || out[i].Proc != in[i].Proc || out[i].Index != in[i].Index {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
