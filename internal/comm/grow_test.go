package comm

import (
	"testing"

	"pgxsort/internal/alloc"
)

// TestEncodeEntriesExactSizing: encoding one message into an empty
// destination must allocate exactly the payload, not grow's doubled
// capacity.
func TestEncodeEntriesExactSizing(t *testing.T) {
	entries := make([]Entry[uint64], 100)
	for i := range entries {
		entries[i] = Entry[uint64]{Key: uint64(i), Proc: 1, Index: uint32(i)}
	}
	c := U64Codec{}
	out := EncodeEntries(nil, entries, c)
	need := len(entries) * (c.KeySize() + originBytes)
	if len(out) != need {
		t.Fatalf("len = %d, want %d", len(out), need)
	}
	if cap(out) != need {
		t.Fatalf("cap = %d, want exactly %d (no doubling)", cap(out), need)
	}

	// Appending to existing data must still amortize (strictly more
	// capacity than the immediate need).
	out2 := EncodeEntries(out, entries, c)
	if len(out2) != 2*need {
		t.Fatalf("appended len = %d, want %d", len(out2), 2*need)
	}
	if cap(out2) < 2*need {
		t.Fatalf("appended cap = %d too small", cap(out2))
	}
}

// TestDecodeEntriesSlabReuses: decoding through a pool must reuse a
// recycled slab and round-trip the entries exactly.
func TestDecodeEntriesSlabReuses(t *testing.T) {
	entries := make([]Entry[uint64], 64)
	for i := range entries {
		entries[i] = Entry[uint64]{Key: uint64(i) * 3, Proc: 2, Index: uint32(i)}
	}
	c := U64Codec{}
	wire := EncodeEntries(nil, entries, c)

	var pool alloc.SlabPool[Entry[uint64]]
	seed := pool.Get(64)
	base := &seed[0]
	pool.Put(seed)

	got, rest, err := DecodeEntriesSlab(wire, len(entries), c, &pool)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
	if &got[0] != base {
		t.Fatal("decode did not reuse the pooled slab")
	}
	for i := range entries {
		if got[i].Key != entries[i].Key || got[i].Proc != entries[i].Proc || got[i].Index != entries[i].Index {
			t.Fatalf("entry %d mismatch: %v vs %v", i, got[i], entries[i])
		}
	}
}
