package comm

import (
	"bytes"
	"errors"
	"sort"
	"strings"
	"testing"
)

// String keys must survive the wire bit-exactly, including the cases a
// fixed-width codec cannot represent: empty keys, non-ASCII bytes,
// embedded NULs, and keys far longer than the 8-byte norm prefix.
func TestStringCodecRoundTrip(t *testing.T) {
	c := StringCodec{}
	keys := []string{
		"",
		"a",
		"exactly8",
		"longer-than-eight-bytes",
		strings.Repeat("p", 100) + "tail",
		"züricher-straße",
		"日本語のキー",
		"nul\x00inside",
		"\xff\xfe\x00\x01",
	}
	var buf []byte
	for _, k := range keys {
		buf = c.AppendKey(buf, k)
	}
	rest := buf
	for i, want := range keys {
		before := len(rest)
		var got string
		var err error
		got, rest, err = c.ReadKey(rest)
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("key %d: %q != %q", i, got, want)
		}
		if n := before - len(rest); n != c.KeyBytes(want) {
			t.Fatalf("key %d: consumed %d bytes, KeyBytes says %d", i, n, c.KeyBytes(want))
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left unconsumed", len(rest))
	}
}

func TestStringCodecReadKeyTruncated(t *testing.T) {
	c := StringCodec{}
	full := c.AppendKey(nil, "hello-world")
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := c.ReadKey(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestStringCodecFixedEntryPointsPanic(t *testing.T) {
	c := StringCodec{}
	for name, fn := range map[string]func(){
		"PutKey": func() { c.PutKey(make([]byte, 16), "x") },
		"Key":    func() { c.Key(make([]byte, 16)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on a variable-width codec did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// Norm must be monotone w.r.t. the key order (k1 < k2 => Norm(k1) <=
// Norm(k2)) and differ only when the first 8 bytes differ.
func TestStringNormMonotone(t *testing.T) {
	c := StringCodec{}
	keys := []string{
		"", "a", "ab", "abcdefgh", "abcdefghi", "abcdefgh\x00", "abcdefghz",
		"b", "prefix-18-bytes-xx", "prefix-18-bytes-xy", "\xff", "\xff\xff",
	}
	sort.Strings(keys)
	for i := 1; i < len(keys); i++ {
		n1, n2 := c.Norm(keys[i-1]), c.Norm(keys[i])
		if n1 > n2 {
			t.Fatalf("Norm not monotone: %q -> %x, %q -> %x", keys[i-1], n1, keys[i], n2)
		}
	}
	// Shared 8-byte prefixes collapse onto one norm — the collision the
	// engine's fallback pass exists for.
	if c.Norm("prefix-18-bytes-xx") != c.Norm("prefix-18-bytes-xy") {
		t.Fatal("keys sharing an 8-byte prefix should share a norm")
	}
	if c.Norm("abcdefgh") != c.Norm("abcdefghzzz") {
		t.Fatal("key equal to another's 8-byte prefix should share its norm")
	}
	// Within 8 bytes, distinct keys get distinct norms.
	if c.Norm("abc") == c.Norm("abd") || c.Norm("a") == c.Norm("ab") {
		t.Fatal("short distinct keys should have distinct norms")
	}
	var inexact interface{ NormInexact() bool } = c
	if !inexact.NormInexact() {
		t.Fatal("StringCodec must report an inexact norm")
	}
}

// Entries with string keys round-trip through the wire encoding, payloads
// included, and a single key near the frame cap still fits exactly.
func TestStringEntriesWireAndFrameCap(t *testing.T) {
	c := StringCodec{}
	entries := []Entry[string]{
		{Key: "", Proc: 1, Index: 2},
		{Key: "with-a-longer-key-than-the-norm", Proc: 3, Index: 4},
		{Key: "中文", Proc: 5, Index: 6},
	}
	buf := EncodeEntries(nil, entries, c)
	if len(buf) != EntriesWireBytes(entries, c) {
		t.Fatalf("encoded %d bytes, EntriesWireBytes says %d", len(buf), EntriesWireBytes(entries, c))
	}
	got, rest, err := DecodeEntries[string](buf, len(entries), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d undecoded bytes", len(rest))
	}
	for i := range entries {
		if got[i].Key != entries[i].Key || got[i].Proc != entries[i].Proc || got[i].Index != entries[i].Index {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], entries[i])
		}
	}

	// A maximum-length key: one entry whose wire size lands exactly on a
	// small frame cap passes CheckFrame; one byte more trips it.
	const maxFrame = 1 << 12
	keyLen := maxFrame - originBytes - 4 // u32 length prefix
	fit := []Entry[string]{{Key: strings.Repeat("k", keyLen)}}
	if n := EntriesWireBytes(fit, c); n != maxFrame {
		t.Fatalf("wire size %d, want exactly %d", n, maxFrame)
	}
	if err := CheckFrame(EntriesWireBytes(fit, c), maxFrame); err != nil {
		t.Fatalf("frame-filling key rejected: %v", err)
	}
	over := []Entry[string]{{Key: strings.Repeat("k", keyLen+1)}}
	if err := CheckFrame(EntriesWireBytes(over, c), maxFrame); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized key not rejected: %v", err)
	}
	// The encoded bytes of the frame-filling key still decode.
	buf = EncodeEntries(nil, fit, c)
	back, _, err := DecodeEntries[string](buf, 1, c)
	if err != nil || back[0].Key != fit[0].Key {
		t.Fatalf("max-frame key did not round-trip: %v", err)
	}
}

// Record-codec-wrapped string entries carry payloads on the wire.
func TestStringRecordCodecPayloadRoundTrip(t *testing.T) {
	rc := NewRecordCodec[string](StringCodec{})
	entries := []Entry[string]{
		{Key: "k1", Proc: 0, Index: 0, Payload: []byte("p-one")},
		{Key: "", Proc: 1, Index: 1, Payload: nil},
		{Key: "k3", Proc: 2, Index: 2, Payload: bytes.Repeat([]byte{0xab}, 300)},
	}
	buf := EncodeEntries(nil, entries, rc)
	got, _, err := DecodeEntries[string](buf, len(entries), rc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range entries {
		if got[i].Key != entries[i].Key || !bytes.Equal(got[i].Payload, entries[i].Payload) {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], entries[i])
		}
	}
}

// Keys (the splitter broadcasts) round-trip for variable-width codecs.
func TestStringKeysWire(t *testing.T) {
	c := StringCodec{}
	keys := []string{"", "splitter-a", "splitter-b-with-more-bytes", "日本"}
	buf := EncodeKeys(nil, keys, c)
	if len(buf) != KeysWireBytes(keys, c) {
		t.Fatalf("encoded %d bytes, KeysWireBytes says %d", len(buf), KeysWireBytes(keys, c))
	}
	got, rest, err := DecodeKeys[string](buf, len(keys), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d undecoded bytes", len(rest))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("key %d: %q != %q", i, got[i], keys[i])
		}
	}
}
