package comm

import (
	"errors"
	"fmt"
)

// DefaultMaxFrameBytes is the default cap on one framed message's payload
// (entries + keys + ints in wire form). The engine's data manager chunks
// exchange traffic into BufferBytes-sized requests (256KB by default), so
// a frame anywhere near this cap means a corrupt header or a
// misconfigured sender — both sides of the wire enforce it.
const DefaultMaxFrameBytes = 64 << 20

// ErrFrameTooLarge reports a frame whose payload exceeds the configured
// maximum. Senders surface it from Send before any bytes move; receivers
// treat it as a protocol violation and drop the connection rather than
// trust the header to size an allocation.
var ErrFrameTooLarge = errors.New("comm: frame exceeds maximum size")

// CheckFrame validates a payload size against a maximum (0 means
// DefaultMaxFrameBytes). The returned error wraps ErrFrameTooLarge.
func CheckFrame(payloadBytes, maxBytes int) error {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxFrameBytes
	}
	if payloadBytes < 0 || payloadBytes > maxBytes {
		return fmt.Errorf("%w: %d bytes > %d", ErrFrameTooLarge, payloadBytes, maxBytes)
	}
	return nil
}
