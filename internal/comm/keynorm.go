package comm

import "math"

// KeyNormalizer is the seam that opens the engine's non-comparison fast
// path: a codec that also implements it advertises an order-preserving
// bijection from its key type onto uint64, so the local sort can run a
// byte-radix sort over normalized keys instead of paying a comparison
// closure per element pair.
//
// Norm must be strictly monotone in the key order the engine should
// produce: a < b (in the engine's output order) iff Norm(a) < Norm(b).
// For float64 this pins a total order over the values `<` leaves
// unordered (NaN): the IEEE-754 total order, see F64Codec.Norm.
type KeyNormalizer[K any] interface {
	// Norm maps a key to its order-preserving uint64 image.
	Norm(k K) uint64
	// NormBits is how many low bits of Norm's image are significant
	// (64 for 64-bit keys, 32 for uint32); radix passes above it are
	// skipped wholesale.
	NormBits() int
}

// InexactNormalizer marks a KeyNormalizer whose Norm is monotone but not
// injective: a < b implies Norm(a) <= Norm(b), and equal norms do NOT
// imply equal keys (e.g. StringCodec's 8-byte prefix). The engine still
// runs the radix fast path over such norms, but switches every comparator
// to a two-level compare (norm first, real key order on ties) and runs a
// comparison fallback pass over equal-norm runs after each radix sort.
type InexactNormalizer interface {
	// NormInexact reports that equal norms may hide unequal keys.
	NormInexact() bool
}

// Norm for uint64 keys is the identity.
func (U64Codec) Norm(k uint64) uint64 { return k }

// NormBits reports the full 64-bit image.
func (U64Codec) NormBits() int { return 64 }

// Norm for int64 keys flips the sign bit, mapping two's complement onto
// the unsigned order: MinInt64 -> 0, -1 -> 2^63-1, 0 -> 2^63.
func (I64Codec) Norm(k int64) uint64 { return uint64(k) ^ (1 << 63) }

// NormBits reports the full 64-bit image.
func (I64Codec) NormBits() int { return 64 }

// Norm for float64 keys is the IEEE-754 total-order transform: negative
// values have every bit flipped (reversing their descending bit order),
// non-negative values have the sign bit set. The image orders
// -NaN < -Inf < ... < -0 < +0 < ... < +Inf < +NaN, which is exactly the
// total order the radix path produces for float keys — pinning the values
// `<` cannot order (NaN) and separating -0 from +0 deterministically.
func (F64Codec) Norm(k float64) uint64 {
	bits := math.Float64bits(k)
	if bits>>63 == 1 {
		return ^bits
	}
	return bits | (1 << 63)
}

// NormBits reports the full 64-bit image.
func (F64Codec) NormBits() int { return 64 }

// Norm for uint32 keys widens to uint64.
func (U32Codec) Norm(k uint32) uint64 { return uint64(k) }

// NormBits reports the 32-bit image: the radix path runs half the passes.
func (U32Codec) NormBits() int { return 32 }

// NormFor returns the built-in order-preserving normalization for K, or
// ok=false when K has none (the engine then stays on the comparison
// path). A codec implementing KeyNormalizer takes precedence over this
// table — see core.NewEngine.
func NormFor[K any]() (norm func(K) uint64, bits int, ok bool) {
	var k K
	switch any(k).(type) {
	case uint64:
		f := any(U64Codec{}).(KeyNormalizer[K])
		return f.Norm, f.NormBits(), true
	case int64:
		f := any(I64Codec{}).(KeyNormalizer[K])
		return f.Norm, f.NormBits(), true
	case float64:
		f := any(F64Codec{}).(KeyNormalizer[K])
		return f.Norm, f.NormBits(), true
	case uint32:
		f := any(U32Codec{}).(KeyNormalizer[K])
		return f.Norm, f.NormBits(), true
	default:
		return nil, 0, false
	}
}
