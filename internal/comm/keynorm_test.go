package comm

import (
	"math"
	"sort"
	"testing"
)

// checkMonotone verifies norm preserves the order of an ascending slice.
func checkMonotone[K any](t *testing.T, sorted []K, norm func(K) uint64) {
	t.Helper()
	for i := 1; i < len(sorted); i++ {
		if norm(sorted[i-1]) >= norm(sorted[i]) {
			t.Fatalf("norm not strictly monotone at %d: norm(%v)=%#x >= norm(%v)=%#x",
				i, sorted[i-1], norm(sorted[i-1]), sorted[i], norm(sorted[i]))
		}
	}
}

func TestU64Norm(t *testing.T) {
	vals := []uint64{0, 1, 2, 1 << 20, 1 << 63, math.MaxUint64 - 1, math.MaxUint64}
	checkMonotone(t, vals, U64Codec{}.Norm)
	if (U64Codec{}).Norm(42) != 42 {
		t.Fatal("uint64 norm must be the identity")
	}
}

func TestU32Norm(t *testing.T) {
	vals := []uint32{0, 1, 1 << 16, math.MaxUint32 - 1, math.MaxUint32}
	checkMonotone(t, vals, U32Codec{}.Norm)
	if bits := (U32Codec{}).NormBits(); bits != 32 {
		t.Fatalf("uint32 NormBits = %d, want 32", bits)
	}
}

func TestI64Norm(t *testing.T) {
	vals := []int64{math.MinInt64, math.MinInt64 + 1, -1 << 40, -2, -1, 0, 1, 1 << 40, math.MaxInt64}
	checkMonotone(t, vals, I64Codec{}.Norm)
	if (I64Codec{}).Norm(math.MinInt64) != 0 {
		t.Fatal("MinInt64 must map to 0")
	}
	if (I64Codec{}).Norm(math.MaxInt64) != math.MaxUint64 {
		t.Fatal("MaxInt64 must map to MaxUint64")
	}
}

// TestF64NormTotalOrder pins the IEEE-754 total order the radix path
// produces for float keys: -NaN < -Inf < finite negatives < -0 < +0 <
// finite positives < +Inf < +NaN.
func TestF64NormTotalOrder(t *testing.T) {
	negNaN := math.Float64frombits(math.Float64bits(math.NaN()) | (1 << 63))
	vals := []float64{
		negNaN,
		math.Inf(-1),
		-math.MaxFloat64,
		-1,
		-math.SmallestNonzeroFloat64,
		math.Copysign(0, -1),
		0,
		math.SmallestNonzeroFloat64,
		1,
		math.MaxFloat64,
		math.Inf(1),
		math.NaN(),
	}
	checkMonotone(t, vals, F64Codec{}.Norm)
}

// TestF64NormMatchesLess checks the norm agrees with < wherever < itself
// defines an order (no NaN involved).
func TestF64NormMatchesLess(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -3.5, -1, -0.1, math.Copysign(0, -1), 0, 0.1, 1, 3.5, 1e300, math.Inf(1)}
	norm := F64Codec{}.Norm
	for i, a := range vals {
		for j, b := range vals {
			nl := norm(a) < norm(b)
			// -0 and +0 are equal under < but strictly ordered by the norm.
			l := a < b || (i < j && a == b)
			if nl != l {
				t.Fatalf("norm order (%v) disagrees with < for (%v, %v)", nl, a, b)
			}
		}
	}
}

func TestNormForKnownTypes(t *testing.T) {
	if norm, bits, ok := NormFor[uint64](); !ok || bits != 64 || norm(7) != 7 {
		t.Fatal("NormFor[uint64] wrong")
	}
	if _, bits, ok := NormFor[uint32](); !ok || bits != 32 {
		t.Fatal("NormFor[uint32] wrong")
	}
	if norm, _, ok := NormFor[int64](); !ok || norm(-1) >= norm(0) {
		t.Fatal("NormFor[int64] wrong")
	}
	if norm, _, ok := NormFor[float64](); !ok || norm(-1.5) >= norm(1.5) {
		t.Fatal("NormFor[float64] wrong")
	}
	if _, _, ok := NormFor[string](); ok {
		t.Fatal("NormFor[string] must report no norm")
	}
}

// TestNormSortMatchesNative cross-checks on random-ish data: sorting by
// norm equals sorting natively for each integer codec type.
func TestNormSortMatchesNative(t *testing.T) {
	x := uint64(0x9e3779b97f4a7c15)
	var u64s []uint64
	for i := 0; i < 500; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		u64s = append(u64s, x)
	}
	byNorm := append([]uint64(nil), u64s...)
	native := append([]uint64(nil), u64s...)
	norm := U64Codec{}.Norm
	sort.Slice(byNorm, func(i, j int) bool { return norm(byNorm[i]) < norm(byNorm[j]) })
	sort.Slice(native, func(i, j int) bool { return native[i] < native[j] })
	for i := range native {
		if byNorm[i] != native[i] {
			t.Fatalf("order diverges at %d", i)
		}
	}

	i64s := make([]int64, len(u64s))
	for i, v := range u64s {
		i64s[i] = int64(v)
	}
	byNormI := append([]int64(nil), i64s...)
	nativeI := append([]int64(nil), i64s...)
	normI := I64Codec{}.Norm
	sort.Slice(byNormI, func(i, j int) bool { return normI(byNormI[i]) < normI(byNormI[j]) })
	sort.Slice(nativeI, func(i, j int) bool { return nativeI[i] < nativeI[j] })
	for i := range nativeI {
		if byNormI[i] != nativeI[i] {
			t.Fatalf("int64 order diverges at %d", i)
		}
	}
}
