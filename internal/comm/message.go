// Package comm defines the message model, key codecs and traffic counters
// shared by the transports and the distributed engines. It plays the role
// of PGX.D's communication manager: a thin, low-overhead layer that moves
// framed messages between processors and accounts every byte, so the
// Figure 9 communication-overhead experiments can be measured rather than
// estimated.
package comm

import "fmt"

// Kind tags the purpose of a message within the sorting pipeline.
type Kind uint8

const (
	// KSamples carries regular samples from a processor to the master
	// (step 2).
	KSamples Kind = iota + 1
	// KSplitters carries the master's p-1 final splitters (step 3).
	KSplitters
	// KRangeMeta carries a processor's per-destination send counts
	// (step 4->5 metadata broadcast).
	KRangeMeta
	// KData carries a chunk of sorted entries during the all-to-all
	// exchange (step 5).
	KData
	// KControl carries engine-internal control signals (e.g. barrier
	// tokens used by the synchronous-exchange ablation).
	KControl
)

// String returns a short human-readable tag for the kind.
func (k Kind) String() string {
	switch k {
	case KSamples:
		return "samples"
	case KSplitters:
		return "splitters"
	case KRangeMeta:
		return "rangemeta"
	case KData:
		return "data"
	case KControl:
		return "control"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Entry is one record moving through the distributed sort: a key plus its
// origin (the processor and local index it started at). The paper's API
// exposes exactly this provenance: "finding information regards to the
// previous processors and the previous indexes of the new received data
// entry" (§IV-C).
//
// Payload is an opaque value riding with the key — nil for plain key
// sorts, the record body for SortRecords. It never influences the sort
// order; it travels by reference on the in-process transport and is
// serialized length-prefixed on TCP when the engine's codec carries
// payloads (see RecordCodec).
type Entry[K any] struct {
	Key     K
	Payload []byte // opaque record body; nil for key-only sorts
	Proc    uint32 // originating processor
	Index   uint32 // index within the originating processor's input
}

// Record is one key+payload input row for the record-sorting APIs. The
// engine sorts records by key exactly as it sorts bare keys — the payload
// is carried through local sort, exchange assembly and merge untouched.
type Record[K any] struct {
	Key     K
	Payload []byte
}

// Message flags: pipeline signals that ride the existing framing (one
// header byte) rather than needing messages of their own.
const (
	// FlagRunComplete marks the final KData chunk of one source's run in
	// the all-to-all exchange. The receiver can already derive completion
	// from the range metadata counts; the flag is an independent
	// per-source signal layered on the framing, so a count/framing
	// mismatch surfaces as a protocol error instead of silent corruption,
	// and streaming mergers get an explicit end-of-run marker.
	FlagRunComplete uint8 = 1 << 0
)

// Message is the unit of communication between processors. A message
// carries either sorted entries (KSamples, KData), raw keys (KSplitters),
// or integer metadata (KRangeMeta, KControl).
//
// SortID multiplexes several concurrent sorts over one network, which is
// how the library sorts "multiple different data simultaneously".
type Message[K any] struct {
	Src, Dst int
	Kind     Kind
	Flags    uint8 // Flag* bits; zero for most messages
	SortID   int32
	Entries  []Entry[K] // KData payloads
	Keys     []K        // KSamples / KSplitters payloads
	Ints     []int64    // KRangeMeta / KControl payloads

	// Release, when non-nil, returns the Entries slab to the pool it was
	// decoded into (set by the TCP transport's read loop). The consumer
	// calls it after copying the entries out; leaving it uncalled is safe
	// (the slab is simply garbage collected). The in-process transport
	// never sets it: its Entries alias the sender's buffers.
	Release func()
}

// WireBytes returns the message's exact wire size under codec c, used
// both to size TCP frames and for traffic accounting. It is
// transport-independent: the in-process transport moves slices without
// serializing, but for Figure 9 both transports must report identical
// traffic for identical workloads — variable-width keys and record
// payloads included.
func (m *Message[K]) WireBytes(c Codec[K]) int {
	return EntriesWireBytes(m.Entries, c) + KeysWireBytes(m.Keys, c) + len(m.Ints)*8
}

// originBytes is the wire size of an Entry's provenance (proc + index).
const originBytes = 8
