package comm

import (
	"encoding/binary"
	"fmt"
	"math"

	"pgxsort/internal/alloc"
)

// Codec serializes keys of type K into fixed-width wire form. The TCP
// transport needs one; the in-process transport moves typed slices and
// only uses KeySize for traffic accounting.
type Codec[K any] interface {
	// KeySize is the fixed wire size of one key in bytes.
	KeySize() int
	// PutKey writes k into b, which has at least KeySize bytes.
	PutKey(b []byte, k K)
	// Key reads a key from b, which has at least KeySize bytes.
	Key(b []byte) K
}

// U64Codec serializes uint64 keys little-endian.
type U64Codec struct{}

func (U64Codec) KeySize() int              { return 8 }
func (U64Codec) PutKey(b []byte, k uint64) { binary.LittleEndian.PutUint64(b, k) }
func (U64Codec) Key(b []byte) uint64       { return binary.LittleEndian.Uint64(b) }

// I64Codec serializes int64 keys little-endian (two's complement).
type I64Codec struct{}

func (I64Codec) KeySize() int             { return 8 }
func (I64Codec) PutKey(b []byte, k int64) { binary.LittleEndian.PutUint64(b, uint64(k)) }
func (I64Codec) Key(b []byte) int64       { return int64(binary.LittleEndian.Uint64(b)) }

// F64Codec serializes float64 keys via their IEEE-754 bits.
type F64Codec struct{}

func (F64Codec) KeySize() int { return 8 }
func (F64Codec) PutKey(b []byte, k float64) {
	binary.LittleEndian.PutUint64(b, math.Float64bits(k))
}
func (F64Codec) Key(b []byte) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }

// U32Codec serializes uint32 keys little-endian.
type U32Codec struct{}

func (U32Codec) KeySize() int              { return 4 }
func (U32Codec) PutKey(b []byte, k uint32) { binary.LittleEndian.PutUint32(b, k) }
func (U32Codec) Key(b []byte) uint32       { return binary.LittleEndian.Uint32(b) }

// EncodeEntries appends the wire form of entries to dst and returns the
// extended slice. Layout per entry: key (c.KeySize bytes), proc (uint32),
// index (uint32). The destination is sized exactly once from
// len(entries): encoding a message into an empty dst allocates precisely
// the payload, never grow's doubled capacity.
func EncodeEntries[K any](dst []byte, entries []Entry[K], c Codec[K]) []byte {
	ks := c.KeySize()
	need := len(entries) * (ks + originBytes)
	dst = grow(dst, need)
	off := len(dst) - need
	for _, e := range entries {
		c.PutKey(dst[off:], e.Key)
		off += ks
		binary.LittleEndian.PutUint32(dst[off:], e.Proc)
		binary.LittleEndian.PutUint32(dst[off+4:], e.Index)
		off += originBytes
	}
	return dst
}

// DecodeEntries parses n entries from b (as written by EncodeEntries) and
// returns the remaining bytes.
func DecodeEntries[K any](b []byte, n int, c Codec[K]) ([]Entry[K], []byte, error) {
	return DecodeEntriesSlab(b, n, c, nil)
}

// DecodeEntriesSlab is DecodeEntries decoding into a slab from pool
// (which may be nil). The TCP transport's read loops pass their network's
// pool so every received chunk reuses a recycled slab; the consumer
// returns it through Message.Release once the entries are copied out.
func DecodeEntriesSlab[K any](b []byte, n int, c Codec[K], pool *alloc.SlabPool[Entry[K]]) ([]Entry[K], []byte, error) {
	ks := c.KeySize()
	need := n * (ks + originBytes)
	if len(b) < need {
		return nil, b, fmt.Errorf("comm: short entry payload: have %d bytes, need %d", len(b), need)
	}
	entries := pool.Get(n) // a nil pool falls back to plain allocation
	off := 0
	for i := 0; i < n; i++ {
		entries[i].Key = c.Key(b[off:])
		off += ks
		entries[i].Proc = binary.LittleEndian.Uint32(b[off:])
		entries[i].Index = binary.LittleEndian.Uint32(b[off+4:])
		off += originBytes
	}
	return entries, b[need:], nil
}

// EncodeKeys appends the wire form of keys to dst.
func EncodeKeys[K any](dst []byte, keys []K, c Codec[K]) []byte {
	ks := c.KeySize()
	need := len(keys) * ks
	dst = grow(dst, need)
	off := len(dst) - need
	for _, k := range keys {
		c.PutKey(dst[off:], k)
		off += ks
	}
	return dst
}

// DecodeKeys parses n keys from b and returns the remaining bytes.
func DecodeKeys[K any](b []byte, n int, c Codec[K]) ([]K, []byte, error) {
	ks := c.KeySize()
	need := n * ks
	if len(b) < need {
		return nil, b, fmt.Errorf("comm: short key payload: have %d bytes, need %d", len(b), need)
	}
	keys := make([]K, n)
	for i := 0; i < n; i++ {
		keys[i] = c.Key(b[i*ks:])
	}
	return keys, b[need:], nil
}

// EncodeInts appends int64 metadata values to dst.
func EncodeInts(dst []byte, ints []int64) []byte {
	need := len(ints) * 8
	dst = grow(dst, need)
	off := len(dst) - need
	for _, v := range ints {
		binary.LittleEndian.PutUint64(dst[off:], uint64(v))
		off += 8
	}
	return dst
}

// DecodeInts parses n int64 values from b and returns the remaining bytes.
func DecodeInts(b []byte, n int) ([]int64, []byte, error) {
	need := n * 8
	if len(b) < need {
		return nil, b, fmt.Errorf("comm: short int payload: have %d bytes, need %d", len(b), need)
	}
	ints := make([]int64, n)
	for i := 0; i < n; i++ {
		ints[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return ints, b[need:], nil
}

// grow extends b by n zero bytes, reallocating if needed. Growing from
// empty sizes the allocation exactly — the transport encodes one message
// per buffer and knows the full payload up front — while appending to
// existing data keeps doubling so incremental encoders (e.g. the Spark
// baseline's shuffle blocks) stay amortized O(n).
func grow(b []byte, n int) []byte {
	l := len(b)
	if cap(b)-l < n {
		newCap := l + n
		if l > 0 {
			newCap *= 2
		}
		nb := make([]byte, l+n, newCap)
		copy(nb, b)
		return nb
	}
	return b[:l+n]
}
