package comm

import (
	"encoding/binary"
	"fmt"
	"math"

	"pgxsort/internal/alloc"
)

// Codec serializes keys of type K into wire form. The TCP transport needs
// one; the in-process transport moves typed slices and only uses KeySize
// for sampling/chunking estimates. Fixed-width key types implement just
// this interface; variable-width types (strings) additionally implement
// VarCodec, and then KeySize is only a nominal per-key estimate.
type Codec[K any] interface {
	// KeySize is the fixed wire size of one key in bytes — or, for a
	// codec that also implements VarCodec, a nominal per-key estimate
	// used to size samples and chunk the exchange.
	KeySize() int
	// PutKey writes k into b, which has at least KeySize bytes.
	PutKey(b []byte, k K)
	// Key reads a key from b, which has at least KeySize bytes.
	Key(b []byte) K
}

// VarCodec is the variable-width extension of Codec: keys serialize to
// KeyBytes(k) bytes (framing included) instead of a fixed KeySize. The
// encode/decode helpers below prefer this interface whenever the codec
// implements it; PutKey/Key are then never called.
type VarCodec[K any] interface {
	Codec[K]
	// KeyBytes is the exact wire size of k, any length prefix included.
	KeyBytes(k K) int
	// AppendKey appends k's wire form to dst.
	AppendKey(dst []byte, k K) []byte
	// ReadKey parses one key and returns the remaining bytes.
	ReadKey(b []byte) (k K, rest []byte, err error)
}

// PayloadCarrier marks a codec whose entries serialize an opaque payload
// after the origin fields (see RecordCodec). Engines sorting records need
// one, or payloads would silently drop on the TCP transport.
type PayloadCarrier interface {
	CarriesPayload() bool
}

// keyCodecOf unwraps a payload-carrying codec to its key codec and
// reports whether entry payloads ride the wire.
func keyCodecOf[K any](c Codec[K]) (Codec[K], bool) {
	if rc, ok := c.(interface{ KeyCodec() Codec[K] }); ok {
		if pc, ok := c.(PayloadCarrier); ok && pc.CarriesPayload() {
			return rc.KeyCodec(), true
		}
		return rc.KeyCodec(), false
	}
	return c, false
}

// U64Codec serializes uint64 keys little-endian.
type U64Codec struct{}

func (U64Codec) KeySize() int              { return 8 }
func (U64Codec) PutKey(b []byte, k uint64) { binary.LittleEndian.PutUint64(b, k) }
func (U64Codec) Key(b []byte) uint64       { return binary.LittleEndian.Uint64(b) }

// I64Codec serializes int64 keys little-endian (two's complement).
type I64Codec struct{}

func (I64Codec) KeySize() int             { return 8 }
func (I64Codec) PutKey(b []byte, k int64) { binary.LittleEndian.PutUint64(b, uint64(k)) }
func (I64Codec) Key(b []byte) int64       { return int64(binary.LittleEndian.Uint64(b)) }

// F64Codec serializes float64 keys via their IEEE-754 bits.
type F64Codec struct{}

func (F64Codec) KeySize() int { return 8 }
func (F64Codec) PutKey(b []byte, k float64) {
	binary.LittleEndian.PutUint64(b, math.Float64bits(k))
}
func (F64Codec) Key(b []byte) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }

// U32Codec serializes uint32 keys little-endian.
type U32Codec struct{}

func (U32Codec) KeySize() int              { return 4 }
func (U32Codec) PutKey(b []byte, k uint32) { binary.LittleEndian.PutUint32(b, k) }
func (U32Codec) Key(b []byte) uint32       { return binary.LittleEndian.Uint32(b) }

// EntriesWireBytes returns the exact wire size of entries under codec c:
// fixed or variable-width keys, plus the origin fields, plus a 4-byte
// length prefix and the payload bytes per entry when c carries payloads.
func EntriesWireBytes[K any](entries []Entry[K], c Codec[K]) int {
	kc, withPay := keyCodecOf(c)
	total := 0
	if vc, ok := kc.(VarCodec[K]); ok {
		for i := range entries {
			total += vc.KeyBytes(entries[i].Key)
		}
	} else {
		total = len(entries) * kc.KeySize()
	}
	total += len(entries) * originBytes
	if withPay {
		for i := range entries {
			total += payloadLenBytes + len(entries[i].Payload)
		}
	}
	return total
}

// KeysWireBytes returns the exact wire size of bare keys under codec c.
func KeysWireBytes[K any](keys []K, c Codec[K]) int {
	kc, _ := keyCodecOf(c)
	if vc, ok := kc.(VarCodec[K]); ok {
		total := 0
		for _, k := range keys {
			total += vc.KeyBytes(k)
		}
		return total
	}
	return len(keys) * kc.KeySize()
}

// EntryWireEstimate returns the average per-entry wire size (origin
// excluded) over a bounded prefix of entries — the data manager's
// chunking estimate for variable-width keys and payload-carrying codecs.
// Fixed-width key-only codecs return KeySize exactly.
func EntryWireEstimate[K any](entries []Entry[K], c Codec[K]) int {
	kc, withPay := keyCodecOf(c)
	vc, isVar := kc.(VarCodec[K])
	if !isVar && !withPay {
		return kc.KeySize()
	}
	sample := len(entries)
	if sample > 64 {
		sample = 64
	}
	if sample == 0 {
		return kc.KeySize()
	}
	total := 0
	for i := 0; i < sample; i++ {
		if isVar {
			total += vc.KeyBytes(entries[i].Key)
		} else {
			total += kc.KeySize()
		}
		if withPay {
			total += payloadLenBytes + len(entries[i].Payload)
		}
	}
	est := total / sample
	if est < 1 {
		est = 1
	}
	return est
}

// EncodeEntries appends the wire form of entries to dst and returns the
// extended slice. Layout per entry: key (fixed KeySize bytes, or the
// VarCodec framing), proc (uint32), index (uint32), and — when the codec
// carries payloads — payload length (uint32) followed by the payload
// bytes. The destination is sized exactly once from EntriesWireBytes:
// encoding a message into an empty dst allocates precisely the payload,
// never grow's doubled capacity.
func EncodeEntries[K any](dst []byte, entries []Entry[K], c Codec[K]) []byte {
	kc, withPay := keyCodecOf(c)
	vc, isVar := kc.(VarCodec[K])
	if !isVar && !withPay {
		// Fixed-width key-only fast path: one bounds computation, direct
		// offset writes.
		ks := kc.KeySize()
		need := len(entries) * (ks + originBytes)
		dst = grow(dst, need)
		off := len(dst) - need
		for i := range entries {
			e := &entries[i]
			kc.PutKey(dst[off:], e.Key)
			off += ks
			binary.LittleEndian.PutUint32(dst[off:], e.Proc)
			binary.LittleEndian.PutUint32(dst[off+4:], e.Index)
			off += originBytes
		}
		return dst
	}
	need := EntriesWireBytes(entries, c)
	dst = grow(dst, need)
	dst = dst[:len(dst)-need] // grow reserved capacity; append fills it
	var tmp [originBytes]byte
	for i := range entries {
		e := &entries[i]
		if isVar {
			dst = vc.AppendKey(dst, e.Key)
		} else {
			off := len(dst)
			dst = dst[:off+kc.KeySize()]
			kc.PutKey(dst[off:], e.Key)
		}
		binary.LittleEndian.PutUint32(tmp[:], e.Proc)
		binary.LittleEndian.PutUint32(tmp[4:], e.Index)
		dst = append(dst, tmp[:]...)
		if withPay {
			binary.LittleEndian.PutUint32(tmp[:4], uint32(len(e.Payload)))
			dst = append(dst, tmp[:4]...)
			dst = append(dst, e.Payload...)
		}
	}
	return dst
}

// DecodeEntries parses n entries from b (as written by EncodeEntries) and
// returns the remaining bytes.
func DecodeEntries[K any](b []byte, n int, c Codec[K]) ([]Entry[K], []byte, error) {
	return DecodeEntriesSlab(b, n, c, nil)
}

// DecodeEntriesSlab is DecodeEntries decoding into a slab from pool
// (which may be nil). The TCP transport's read loops pass their network's
// pool so every received chunk reuses a recycled slab; the consumer
// returns it through Message.Release once the entries are copied out.
// Decoded payloads never alias b: they are copied into one exactly-sized
// block per call, since the transport reuses its frame buffer while the
// decoded entries (and their payloads) outlive it.
func DecodeEntriesSlab[K any](b []byte, n int, c Codec[K], pool *alloc.SlabPool[Entry[K]]) ([]Entry[K], []byte, error) {
	kc, withPay := keyCodecOf(c)
	vc, isVar := kc.(VarCodec[K])
	if !isVar && !withPay {
		ks := kc.KeySize()
		need := n * (ks + originBytes)
		if len(b) < need {
			return nil, b, fmt.Errorf("comm: short entry payload: have %d bytes, need %d", len(b), need)
		}
		entries := pool.Get(n) // a nil pool falls back to plain allocation
		off := 0
		for i := 0; i < n; i++ {
			entries[i].Key = kc.Key(b[off:])
			entries[i].Payload = nil
			off += ks
			entries[i].Proc = binary.LittleEndian.Uint32(b[off:])
			entries[i].Index = binary.LittleEndian.Uint32(b[off+4:])
			off += originBytes
		}
		return entries, b[need:], nil
	}
	entries := pool.Get(n)
	rest := b
	totalPay := 0
	for i := 0; i < n; i++ {
		var err error
		if isVar {
			entries[i].Key, rest, err = vc.ReadKey(rest)
			if err != nil {
				return nil, b, err
			}
		} else {
			if len(rest) < kc.KeySize() {
				return nil, b, fmt.Errorf("comm: short entry payload at entry %d", i)
			}
			entries[i].Key = kc.Key(rest)
			rest = rest[kc.KeySize():]
		}
		if len(rest) < originBytes {
			return nil, b, fmt.Errorf("comm: short entry origin at entry %d", i)
		}
		entries[i].Proc = binary.LittleEndian.Uint32(rest)
		entries[i].Index = binary.LittleEndian.Uint32(rest[4:])
		rest = rest[originBytes:]
		entries[i].Payload = nil
		if withPay {
			if len(rest) < payloadLenBytes {
				return nil, b, fmt.Errorf("comm: short payload length at entry %d", i)
			}
			plen := int(binary.LittleEndian.Uint32(rest))
			rest = rest[payloadLenBytes:]
			if plen < 0 || len(rest) < plen {
				return nil, b, fmt.Errorf("comm: short payload at entry %d: have %d bytes, need %d", i, len(rest), plen)
			}
			if plen > 0 {
				// Temporarily alias the frame buffer; the fix-up below
				// copies every payload into one exactly-sized block.
				entries[i].Payload = rest[:plen:plen]
				totalPay += plen
			}
			rest = rest[plen:]
		}
	}
	if totalPay > 0 {
		block := make([]byte, totalPay)
		pos := 0
		for i := 0; i < n; i++ {
			p := entries[i].Payload
			if len(p) == 0 {
				continue
			}
			copy(block[pos:], p)
			entries[i].Payload = block[pos : pos+len(p) : pos+len(p)]
			pos += len(p)
		}
	}
	return entries, rest, nil
}

// EncodeKeys appends the wire form of keys to dst.
func EncodeKeys[K any](dst []byte, keys []K, c Codec[K]) []byte {
	kc, _ := keyCodecOf(c)
	if vc, ok := kc.(VarCodec[K]); ok {
		need := KeysWireBytes(keys, c)
		dst = grow(dst, need)
		dst = dst[:len(dst)-need]
		for _, k := range keys {
			dst = vc.AppendKey(dst, k)
		}
		return dst
	}
	ks := kc.KeySize()
	need := len(keys) * ks
	dst = grow(dst, need)
	off := len(dst) - need
	for _, k := range keys {
		kc.PutKey(dst[off:], k)
		off += ks
	}
	return dst
}

// DecodeKeys parses n keys from b and returns the remaining bytes.
func DecodeKeys[K any](b []byte, n int, c Codec[K]) ([]K, []byte, error) {
	kc, _ := keyCodecOf(c)
	if vc, ok := kc.(VarCodec[K]); ok {
		keys := make([]K, n)
		rest := b
		for i := 0; i < n; i++ {
			var err error
			keys[i], rest, err = vc.ReadKey(rest)
			if err != nil {
				return nil, b, err
			}
		}
		return keys, rest, nil
	}
	ks := kc.KeySize()
	need := n * ks
	if len(b) < need {
		return nil, b, fmt.Errorf("comm: short key payload: have %d bytes, need %d", len(b), need)
	}
	keys := make([]K, n)
	for i := 0; i < n; i++ {
		keys[i] = kc.Key(b[i*ks:])
	}
	return keys, b[need:], nil
}

// payloadLenBytes is the wire size of one entry's payload length prefix.
const payloadLenBytes = 4

// EncodeInts appends int64 metadata values to dst.
func EncodeInts(dst []byte, ints []int64) []byte {
	need := len(ints) * 8
	dst = grow(dst, need)
	off := len(dst) - need
	for _, v := range ints {
		binary.LittleEndian.PutUint64(dst[off:], uint64(v))
		off += 8
	}
	return dst
}

// DecodeInts parses n int64 values from b and returns the remaining bytes.
func DecodeInts(b []byte, n int) ([]int64, []byte, error) {
	need := n * 8
	if len(b) < need {
		return nil, b, fmt.Errorf("comm: short int payload: have %d bytes, need %d", len(b), need)
	}
	ints := make([]int64, n)
	for i := 0; i < n; i++ {
		ints[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return ints, b[need:], nil
}

// grow extends b by n zero bytes, reallocating if needed. Growing from
// empty sizes the allocation exactly — the transport encodes one message
// per buffer and knows the full payload up front — while appending to
// existing data keeps doubling so incremental encoders (e.g. the Spark
// baseline's shuffle blocks) stay amortized O(n).
func grow(b []byte, n int) []byte {
	l := len(b)
	if cap(b)-l < n {
		newCap := l + n
		if l > 0 {
			newCap *= 2
		}
		nb := make([]byte, l+n, newCap)
		copy(nb, b)
		return nb
	}
	return b[:l+n]
}
