package comm

import (
	"encoding/binary"
	"fmt"
)

// StringCodec serializes string keys length-prefixed (uint32 little-endian
// length, then the raw bytes — arbitrary binary, not just ASCII). It is
// the library's first variable-width codec: KeySize is only a nominal
// estimate for sampling and chunking, and the wire helpers use the
// VarCodec methods instead.
//
// StringCodec also implements KeyNormalizer with an *inexact* norm: the
// first 8 bytes of the string, big-endian, zero-padded on the right.
// Lexicographic byte order agrees with numeric order on that image, so
// the radix local-sort path applies; strings sharing an 8-byte prefix
// collapse to one norm value and are disambiguated by the engine's
// comparison fallback pass (NormInexact returns true).
type StringCodec struct{}

// stringNominalSize is the sampling/chunking estimate for string keys:
// the 4-byte length prefix plus a guessed dozen bytes of content.
const stringNominalSize = 16

// KeySize is a nominal per-key estimate (StringCodec is variable-width).
func (StringCodec) KeySize() int { return stringNominalSize }

// PutKey is unreachable: the wire helpers always use the VarCodec methods
// for variable-width codecs.
func (StringCodec) PutKey(b []byte, k string) {
	panic("comm: StringCodec.PutKey called; use AppendKey (variable-width codec)")
}

// Key is unreachable; see PutKey.
func (StringCodec) Key(b []byte) string {
	panic("comm: StringCodec.Key called; use ReadKey (variable-width codec)")
}

// KeyBytes is the exact wire size of k: 4-byte length prefix plus bytes.
func (StringCodec) KeyBytes(k string) int { return 4 + len(k) }

// AppendKey appends k's wire form to dst.
func (StringCodec) AppendKey(dst []byte, k string) []byte {
	var lp [4]byte
	binary.LittleEndian.PutUint32(lp[:], uint32(len(k)))
	dst = append(dst, lp[:]...)
	return append(dst, k...)
}

// ReadKey parses one length-prefixed string and returns the remaining
// bytes. The returned string copies out of b (the transport reuses its
// frame buffers).
func (StringCodec) ReadKey(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", b, fmt.Errorf("comm: short string key: have %d bytes, need length prefix", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n < 0 || len(b)-4 < n {
		return "", b, fmt.Errorf("comm: short string key: have %d bytes, need %d", len(b)-4, n)
	}
	return string(b[4 : 4+n]), b[4+n:], nil
}

// Norm maps a string to its first 8 bytes, big-endian, zero-padded —
// monotone in lexicographic order but not injective (see NormInexact).
func (StringCodec) Norm(k string) uint64 {
	var v uint64
	n := len(k)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		v |= uint64(k[i]) << (56 - 8*i)
	}
	return v
}

// NormBits reports the full 64-bit image (8 prefix bytes).
func (StringCodec) NormBits() int { return 64 }

// NormInexact reports that distinct strings can share a norm (equal
// 8-byte prefixes); the engine must break norm ties with real compares.
func (StringCodec) NormInexact() bool { return true }

// RecordCodec wraps a key codec so entries carry an opaque []byte payload
// on the wire: each entry serializes its payload length-prefixed after
// the origin fields. Build one around any key codec to sort key+payload
// records over the TCP transport:
//
//	comm.NewRecordCodec[uint64](comm.U64Codec{})
//
// RecordCodec deliberately does NOT forward the key codec's optional
// interfaces (KeyNormalizer, VarCodec) — the wire helpers and the engine
// unwrap via KeyCodec() and consult the inner codec directly, so a
// RecordCodec around StringCodec still gets variable-width keys and the
// radix fast path.
type RecordCodec[K any] struct {
	key Codec[K]
}

// NewRecordCodec wraps key so entries under the returned codec carry
// payloads on the wire.
func NewRecordCodec[K any](key Codec[K]) RecordCodec[K] {
	if key == nil {
		panic("comm: NewRecordCodec with nil key codec")
	}
	if _, ok := key.(PayloadCarrier); ok {
		panic("comm: NewRecordCodec around a payload-carrying codec")
	}
	return RecordCodec[K]{key: key}
}

// KeySize delegates to the key codec's (possibly nominal) size.
func (c RecordCodec[K]) KeySize() int { return c.key.KeySize() }

// PutKey delegates to the key codec.
func (c RecordCodec[K]) PutKey(b []byte, k K) { c.key.PutKey(b, k) }

// Key delegates to the key codec.
func (c RecordCodec[K]) Key(b []byte) K { return c.key.Key(b) }

// KeyCodec exposes the wrapped key codec for unwrapping (keyCodecOf, the
// engine's norm discovery).
func (c RecordCodec[K]) KeyCodec() Codec[K] { return c.key }

// CarriesPayload marks entries under this codec as payload-carrying.
func (RecordCodec[K]) CarriesPayload() bool { return true }
