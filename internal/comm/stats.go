package comm

import (
	"fmt"
	"sync/atomic"
)

// Stats counts traffic through one endpoint. All methods are safe for
// concurrent use; the zero value is ready.
type Stats struct {
	bytesSent atomic.Int64
	bytesRecv atomic.Int64
	msgsSent  atomic.Int64
	msgsRecv  atomic.Int64
	// Per-kind byte counters, indexed by Kind (small fixed range).
	kindBytesSent [KControl + 1]atomic.Int64
}

// CountSend records an outgoing message of the given kind and size.
func (s *Stats) CountSend(kind Kind, bytes int) {
	if s == nil {
		return
	}
	s.bytesSent.Add(int64(bytes))
	s.msgsSent.Add(1)
	if int(kind) < len(s.kindBytesSent) {
		s.kindBytesSent[kind].Add(int64(bytes))
	}
}

// CountRecv records an incoming message of the given size.
func (s *Stats) CountRecv(bytes int) {
	if s == nil {
		return
	}
	s.bytesRecv.Add(int64(bytes))
	s.msgsRecv.Add(1)
}

// BytesSent reports total payload bytes sent.
func (s *Stats) BytesSent() int64 { return s.bytesSent.Load() }

// BytesRecv reports total payload bytes received.
func (s *Stats) BytesRecv() int64 { return s.bytesRecv.Load() }

// MsgsSent reports the number of messages sent.
func (s *Stats) MsgsSent() int64 { return s.msgsSent.Load() }

// MsgsRecv reports the number of messages received.
func (s *Stats) MsgsRecv() int64 { return s.msgsRecv.Load() }

// KindBytesSent reports payload bytes sent with the given kind tag.
func (s *Stats) KindBytesSent(kind Kind) int64 {
	if int(kind) >= len(s.kindBytesSent) {
		return 0
	}
	return s.kindBytesSent[kind].Load()
}

// Add accumulates other into s (used to total per-node stats).
func (s *Stats) Add(other *Stats) {
	if other == nil {
		return
	}
	s.bytesSent.Add(other.bytesSent.Load())
	s.bytesRecv.Add(other.bytesRecv.Load())
	s.msgsSent.Add(other.msgsSent.Load())
	s.msgsRecv.Add(other.msgsRecv.Load())
	for k := range s.kindBytesSent {
		s.kindBytesSent[k].Add(other.kindBytesSent[k].Load())
	}
}

// String summarizes the counters.
func (s *Stats) String() string {
	return fmt.Sprintf("sent %d msgs / %d B, recv %d msgs / %d B",
		s.MsgsSent(), s.BytesSent(), s.MsgsRecv(), s.BytesRecv())
}
