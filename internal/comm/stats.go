package comm

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Stats counts traffic through one endpoint. All methods are safe for
// concurrent use; the zero value is ready.
type Stats struct {
	bytesSent atomic.Int64
	bytesRecv atomic.Int64
	msgsSent  atomic.Int64
	msgsRecv  atomic.Int64
	// Per-kind byte counters, indexed by Kind (small fixed range).
	kindBytesSent [KControl + 1]atomic.Int64

	// Transport-health counters (all zero on the in-process transport):
	// time Send spent blocked on a full per-peer window, connections
	// re-established after a failure, and frames retransmitted across
	// reconnects.
	stallNanos atomic.Int64
	reconnects atomic.Int64
	resent     atomic.Int64
}

// CountSend records an outgoing message of the given kind and size.
func (s *Stats) CountSend(kind Kind, bytes int) {
	if s == nil {
		return
	}
	s.bytesSent.Add(int64(bytes))
	s.msgsSent.Add(1)
	if int(kind) < len(s.kindBytesSent) {
		s.kindBytesSent[kind].Add(int64(bytes))
	}
}

// CountRecv records an incoming message of the given size.
func (s *Stats) CountRecv(bytes int) {
	if s == nil {
		return
	}
	s.bytesRecv.Add(int64(bytes))
	s.msgsRecv.Add(1)
}

// BytesSent reports total payload bytes sent.
func (s *Stats) BytesSent() int64 { return s.bytesSent.Load() }

// BytesRecv reports total payload bytes received.
func (s *Stats) BytesRecv() int64 { return s.bytesRecv.Load() }

// MsgsSent reports the number of messages sent.
func (s *Stats) MsgsSent() int64 { return s.msgsSent.Load() }

// MsgsRecv reports the number of messages received.
func (s *Stats) MsgsRecv() int64 { return s.msgsRecv.Load() }

// KindBytesSent reports payload bytes sent with the given kind tag.
func (s *Stats) KindBytesSent(kind Kind) int64 {
	if int(kind) >= len(s.kindBytesSent) {
		return 0
	}
	return s.kindBytesSent[kind].Load()
}

// CountStall records time a sender spent blocked on backpressure.
func (s *Stats) CountStall(d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	s.stallNanos.Add(int64(d))
}

// CountReconnect records one re-established connection.
func (s *Stats) CountReconnect() {
	if s == nil {
		return
	}
	s.reconnects.Add(1)
}

// CountResent records frames retransmitted after a reconnect.
func (s *Stats) CountResent(frames int) {
	if s == nil || frames <= 0 {
		return
	}
	s.resent.Add(int64(frames))
}

// SendStall reports the total time Send spent blocked on full per-peer
// windows (slow-peer backpressure).
func (s *Stats) SendStall() time.Duration { return time.Duration(s.stallNanos.Load()) }

// Reconnects reports how many times this endpoint's outbound links
// re-established a connection after a failure.
func (s *Stats) Reconnects() int64 { return s.reconnects.Load() }

// FramesResent reports how many frames were retransmitted across
// reconnects.
func (s *Stats) FramesResent() int64 { return s.resent.Load() }

// Add accumulates other into s (used to total per-node stats).
func (s *Stats) Add(other *Stats) {
	if other == nil {
		return
	}
	s.bytesSent.Add(other.bytesSent.Load())
	s.bytesRecv.Add(other.bytesRecv.Load())
	s.msgsSent.Add(other.msgsSent.Load())
	s.msgsRecv.Add(other.msgsRecv.Load())
	for k := range s.kindBytesSent {
		s.kindBytesSent[k].Add(other.kindBytesSent[k].Load())
	}
	s.stallNanos.Add(other.stallNanos.Load())
	s.reconnects.Add(other.reconnects.Load())
	s.resent.Add(other.resent.Load())
}

// String summarizes the counters.
func (s *Stats) String() string {
	return fmt.Sprintf("sent %d msgs / %d B, recv %d msgs / %d B",
		s.MsgsSent(), s.BytesSent(), s.MsgsRecv(), s.BytesRecv())
}
