// Package baselines implements the two related-work distributed sorting
// algorithms the paper discusses (§II): Batcher's bitonic sort, whose
// compare-split steps exchange each processor's *entire* local array every
// round (the communication overhead the paper criticizes), and partitioned
// parallel radix sort, whose balance depends on the key-bit distribution.
// Both run over the same transport as the PGX.D engine so their traffic is
// measured the same way.
package baselines

import (
	"cmp"
	"fmt"
	"sync"
	"time"

	"pgxsort/internal/comm"
	"pgxsort/internal/lsort"
	"pgxsort/internal/transport"
)

// Report summarizes one baseline run.
type Report struct {
	Procs     int
	N         int
	Total     time.Duration
	BytesSent int64
	MsgsSent  int64
	PartSizes []int
}

// BitonicSort sorts parts (one slice per processor) with a distributed
// bitonic network: local sort, then for each stage k and distance j a
// compare-split with partner id XOR j, where the lower-id side of an
// ascending pair keeps the smaller half of the merged data. Every
// compare-split ships the whole local array, which is the algorithm's
// defining communication cost.
//
// Like the classic algorithm (and unlike sample sort), bitonic requires a
// power-of-two processor count and *equal* local sizes — the block
// compare-split theorem does not hold for unequal blocks. Violations are
// rejected, which is itself one of the paper's §II criticisms of the
// approach.
func BitonicSort[K cmp.Ordered](parts [][]K, codec comm.Codec[K], transportKind string) ([][]K, *Report, error) {
	p := len(parts)
	if p == 0 || p&(p-1) != 0 {
		return nil, nil, fmt.Errorf("baselines: bitonic needs a power-of-two processor count, got %d", p)
	}
	for i := 1; i < p; i++ {
		if len(parts[i]) != len(parts[0]) {
			return nil, nil, fmt.Errorf("baselines: bitonic needs equal local sizes, got %d and %d",
				len(parts[0]), len(parts[i]))
		}
	}
	net, err := transport.New(transportKind, p, codec)
	if err != nil {
		return nil, nil, err
	}
	defer net.Close()

	rep := &Report{Procs: p, PartSizes: make([]int, p)}
	for _, part := range parts {
		rep.N += len(part)
	}
	out := make([][]K, p)
	errs := make([]error, p)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = bitonicNode(net.Endpoint(i), parts[i], p)
		}(i)
	}
	wg.Wait()
	rep.Total = time.Since(start)
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("baselines: node %d: %w", i, err)
		}
		rep.PartSizes[i] = len(out[i])
	}
	for i := 0; i < p; i++ {
		rep.BytesSent += net.Endpoint(i).Stats().BytesSent()
		rep.MsgsSent += net.Endpoint(i).Stats().MsgsSent()
	}
	return out, rep, nil
}

func bitonicNode[K cmp.Ordered](ep transport.Endpoint[K], local []K, p int) ([]K, error) {
	id := ep.ID()
	mine := append([]K(nil), local...)
	less := func(a, b K) bool { return a < b }
	lsort.Quicksort(mine, less)

	// Steps are not globally synchronized: a next-step partner may send
	// before this node finishes its current exchange, so receives are
	// selective, with early arrivals parked per source. A node blocks on
	// the reply for its current step before advancing, so at most one
	// message per source is ever pending.
	pending := make(map[int][]K, p)
	recvFrom := func(src int) ([]K, error) {
		if keys, ok := pending[src]; ok {
			delete(pending, src)
			return keys, nil
		}
		for {
			m, ok := ep.Recv()
			if !ok {
				return nil, fmt.Errorf("network closed mid-exchange")
			}
			if m.Src == src {
				return m.Keys, nil
			}
			if _, dup := pending[m.Src]; dup {
				return nil, fmt.Errorf("two outstanding messages from %d", m.Src)
			}
			pending[m.Src] = m.Keys
		}
	}

	for k := 2; k <= p; k <<= 1 {
		for j := k >> 1; j >= 1; j >>= 1 {
			partner := id ^ j
			ascending := id&k == 0
			keepLow := (id < partner) == ascending

			if err := ep.Send(partner, comm.Message[K]{Kind: comm.KData, Keys: mine}); err != nil {
				return nil, err
			}
			theirs, err := recvFrom(partner)
			if err != nil {
				return nil, err
			}
			mine = compareSplit(mine, theirs, keepLow, less)
		}
	}
	return mine, nil
}

// compareSplit merges two sorted arrays and keeps len(mine) elements from
// the low or high end — one half of Batcher's compare-exchange generalized
// to blocks.
func compareSplit[K cmp.Ordered](mine, theirs []K, keepLow bool, less func(a, b K) bool) []K {
	keep := len(mine)
	out := make([]K, keep)
	if keepLow {
		i, j := 0, 0
		for n := 0; n < keep; n++ {
			if j >= len(theirs) || (i < len(mine) && !less(theirs[j], mine[i])) {
				out[n] = mine[i]
				i++
			} else {
				out[n] = theirs[j]
				j++
			}
		}
	} else {
		i, j := len(mine)-1, len(theirs)-1
		for n := keep - 1; n >= 0; n-- {
			if j < 0 || (i >= 0 && !less(mine[i], theirs[j])) {
				out[n] = mine[i]
				i--
			} else {
				out[n] = theirs[j]
				j--
			}
		}
	}
	return out
}
