package baselines

import (
	"fmt"
	"sync"
	"time"

	"pgxsort/internal/comm"
	"pgxsort/internal/transport"
)

// radixBucketBits is the width of the most-significant digit used for the
// distribution step: 256 buckets are assigned to processors in contiguous
// runs so that processor order equals key order.
const radixBucketBits = 8

// radixDigitBits is the LSD digit width of the local counting-sort passes.
const radixDigitBits = 8

// RadixSort sorts uint64 parts with partitioned parallel radix sort
// (§II related work): every processor histograms the top 8 bits of its
// keys, the master aggregates the histograms and assigns contiguous bucket
// ranges to processors targeting equal loads, keys are exchanged
// all-to-all by bucket owner, and each processor finishes with a local LSD
// radix sort.
//
// The known weakness the paper cites is visible by construction: bucket
// boundaries cannot split a single over-full bucket (e.g. duplicate-heavy
// or low-entropy keys), so skewed inputs produce load imbalance.
func RadixSort(parts [][]uint64, transportKind string) ([][]uint64, *Report, error) {
	p := len(parts)
	if p == 0 {
		return nil, nil, fmt.Errorf("baselines: radix needs at least one processor")
	}
	net, err := transport.New[uint64](transportKind, p, comm.U64Codec{})
	if err != nil {
		return nil, nil, err
	}
	defer net.Close()

	rep := &Report{Procs: p, PartSizes: make([]int, p)}
	for _, part := range parts {
		rep.N += len(part)
	}
	out := make([][]uint64, p)
	errs := make([]error, p)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = radixNode(net.Endpoint(i), parts[i], p)
		}(i)
	}
	wg.Wait()
	rep.Total = time.Since(start)
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("baselines: node %d: %w", i, err)
		}
		rep.PartSizes[i] = len(out[i])
	}
	for i := 0; i < p; i++ {
		rep.BytesSent += net.Endpoint(i).Stats().BytesSent()
		rep.MsgsSent += net.Endpoint(i).Stats().MsgsSent()
	}
	return out, rep, nil
}

func radixNode(ep transport.Endpoint[uint64], local []uint64, p int) ([]uint64, error) {
	const buckets = 1 << radixBucketBits
	id := ep.ID()
	bucketOf := func(k uint64) int { return int(k >> (64 - radixBucketBits)) }

	// Phase 1: local histogram of the top digit, gathered at node 0.
	hist := make([]int64, buckets)
	for _, k := range local {
		hist[bucketOf(k)]++
	}
	var owners []int64 // owners[b] = processor owning bucket b
	if id == 0 {
		totals := make([]int64, buckets)
		copy(totals, hist)
		for i := 0; i < p-1; i++ {
			m, ok := ep.Recv()
			if !ok {
				return nil, fmt.Errorf("network closed gathering histograms")
			}
			if m.Kind != comm.KRangeMeta {
				return nil, fmt.Errorf("expected histogram, got %v", m.Kind)
			}
			for b, c := range m.Ints {
				totals[b] += c
			}
		}
		owners = assignBuckets(totals, p)
		for dst := 1; dst < p; dst++ {
			if err := ep.Send(dst, comm.Message[uint64]{Kind: comm.KControl, Ints: owners}); err != nil {
				return nil, err
			}
		}
	} else {
		if err := ep.Send(0, comm.Message[uint64]{Kind: comm.KRangeMeta, Ints: hist}); err != nil {
			return nil, err
		}
		m, ok := ep.Recv()
		if !ok {
			return nil, fmt.Errorf("network closed awaiting bucket owners")
		}
		if m.Kind != comm.KControl {
			return nil, fmt.Errorf("expected bucket owners, got %v", m.Kind)
		}
		owners = m.Ints
	}

	// Phase 2: scatter keys to bucket owners; send sizes first so each
	// receiver knows when it has everything.
	outbound := make([][]uint64, p)
	for _, k := range local {
		dst := int(owners[bucketOf(k)])
		outbound[dst] = append(outbound[dst], k)
	}
	sizes := make([]int64, p)
	for d := range outbound {
		sizes[d] = int64(len(outbound[d]))
	}
	for dst := 0; dst < p; dst++ {
		if dst == id {
			continue
		}
		if err := ep.Send(dst, comm.Message[uint64]{Kind: comm.KRangeMeta, Ints: sizes}); err != nil {
			return nil, err
		}
		if len(outbound[dst]) > 0 {
			if err := ep.Send(dst, comm.Message[uint64]{Kind: comm.KData, Keys: outbound[dst]}); err != nil {
				return nil, err
			}
		}
	}
	mine := append([]uint64(nil), outbound[id]...)
	expect := 0
	metaSeen := 0
	received := 0
	for metaSeen < p-1 || received < expect {
		m, ok := ep.Recv()
		if !ok {
			return nil, fmt.Errorf("network closed during scatter")
		}
		switch m.Kind {
		case comm.KRangeMeta:
			metaSeen++
			expect += int(m.Ints[id])
		case comm.KData:
			mine = append(mine, m.Keys...)
			received += len(m.Keys)
		default:
			return nil, fmt.Errorf("unexpected %v during scatter", m.Kind)
		}
	}

	// Phase 3: local LSD radix sort.
	radixSortLocal(mine)
	return mine, nil
}

// assignBuckets walks the aggregated histogram and assigns contiguous
// bucket runs to processors, closing a processor's run once it reaches the
// ideal share. Single over-full buckets cannot be split.
func assignBuckets(totals []int64, p int) []int64 {
	owners := make([]int64, len(totals))
	var grand int64
	for _, c := range totals {
		grand += c
	}
	ideal := (grand + int64(p) - 1) / int64(p)
	if ideal == 0 {
		ideal = 1
	}
	proc := int64(0)
	var acc int64
	for b, c := range totals {
		owners[b] = proc
		acc += c
		if acc >= ideal && proc < int64(p-1) {
			proc++
			acc = 0
		}
	}
	return owners
}

// radixSortLocal is an in-place-output LSD radix sort with 8-bit digits.
func radixSortLocal(keys []uint64) {
	if len(keys) < 2 {
		return
	}
	const digits = 64 / radixDigitBits
	const radix = 1 << radixDigitBits
	buf := make([]uint64, len(keys))
	src, dst := keys, buf
	for d := 0; d < digits; d++ {
		shift := uint(d * radixDigitBits)
		var counts [radix]int
		for _, k := range src {
			counts[(k>>shift)&(radix-1)]++
		}
		// Skip passes where all keys share the digit.
		if counts[src[0]>>shift&(radix-1)] == len(src) {
			continue
		}
		pos := 0
		var starts [radix]int
		for v := 0; v < radix; v++ {
			starts[v] = pos
			pos += counts[v]
		}
		for _, k := range src {
			v := (k >> shift) & (radix - 1)
			dst[starts[v]] = k
			starts[v]++
		}
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

// VerifySorted checks global sortedness and size preservation for a
// baseline's output against its input.
func VerifySorted(in, out [][]uint64) error {
	nIn, nOut := 0, 0
	for _, p := range in {
		nIn += len(p)
	}
	counts := make(map[uint64]int, nIn)
	for _, p := range in {
		for _, k := range p {
			counts[k]++
		}
	}
	var prev uint64
	havePrev := false
	for pi, part := range out {
		nOut += len(part)
		for i, k := range part {
			if i > 0 && part[i-1] > k {
				return fmt.Errorf("baselines: part %d unsorted at %d", pi, i)
			}
			if havePrev && prev > k {
				return fmt.Errorf("baselines: global order violated entering part %d", pi)
			}
			counts[k]--
			if counts[k] < 0 {
				return fmt.Errorf("baselines: extra key %d in output", k)
			}
		}
		if len(part) > 0 {
			prev = part[len(part)-1]
			havePrev = true
		}
	}
	if nIn != nOut {
		return fmt.Errorf("baselines: length changed %d -> %d", nIn, nOut)
	}
	return nil
}
