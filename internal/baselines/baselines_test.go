package baselines

import (
	"sort"
	"testing"
	"testing/quick"

	"pgxsort/internal/comm"
	"pgxsort/internal/dist"
	"pgxsort/internal/transport"
)

func mkParts(kind dist.Kind, procs, perProc int, seed uint64) [][]uint64 {
	parts := make([][]uint64, procs)
	for i := range parts {
		parts[i] = dist.Gen{Kind: kind, Seed: seed + uint64(i)}.Keys(perProc)
	}
	return parts
}

func TestBitonicSortDistributions(t *testing.T) {
	for _, kind := range dist.Kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			parts := mkParts(kind, 8, 1000, 5)
			out, rep, err := BitonicSort(parts, comm.U64Codec{}, transport.KindChan)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifySorted(parts, out); err != nil {
				t.Fatal(err)
			}
			if rep.N != 8000 {
				t.Errorf("N = %d", rep.N)
			}
			// Bitonic keeps local sizes fixed.
			for i, p := range out {
				if len(p) != 1000 {
					t.Errorf("part %d resized to %d", i, len(p))
				}
			}
			// log2(8)=3 stages, 1+2+3 = 6 compare-splits per node, each
			// shipping the full local array.
			wantBytes := int64(8 * 6 * 1000 * 8)
			if rep.BytesSent != wantBytes {
				t.Errorf("bitonic traffic = %d, want %d (entire arrays every step)",
					rep.BytesSent, wantBytes)
			}
		})
	}
}

func TestBitonicRejectsUnequalParts(t *testing.T) {
	parts := [][]uint64{{9, 1, 5}, {2}, {7, 7, 7, 7}, {}}
	if _, _, err := BitonicSort(parts, comm.U64Codec{}, transport.KindChan); err == nil {
		t.Fatal("accepted unequal local sizes; block compare-split requires equal blocks")
	}
}

func TestBitonicDuplicateHeavy(t *testing.T) {
	parts := mkParts(dist.Constant, 4, 256, 3)
	out, _, err := BitonicSort(parts, comm.U64Codec{}, transport.KindChan)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySorted(parts, out); err != nil {
		t.Fatal(err)
	}
}

func TestBitonicRejectsNonPowerOfTwo(t *testing.T) {
	if _, _, err := BitonicSort(mkParts(dist.Uniform, 3, 10, 1), comm.U64Codec{}, transport.KindChan); err == nil {
		t.Fatal("accepted p=3")
	}
	if _, _, err := BitonicSort(nil, comm.U64Codec{}, transport.KindChan); err == nil {
		t.Fatal("accepted p=0")
	}
}

func TestBitonicOverTCP(t *testing.T) {
	parts := mkParts(dist.Normal, 4, 500, 9)
	out, _, err := BitonicSort(parts, comm.U64Codec{}, transport.KindTCP)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySorted(parts, out); err != nil {
		t.Fatal(err)
	}
}

func TestCompareSplit(t *testing.T) {
	mine := []uint64{1, 4, 9}
	theirs := []uint64{2, 3, 5, 10}
	low := compareSplit(mine, theirs, true, func(a, b uint64) bool { return a < b })
	want := []uint64{1, 2, 3}
	for i := range want {
		if low[i] != want[i] {
			t.Fatalf("low = %v, want %v", low, want)
		}
	}
	// Union sorted: {1,2,3,4,5,9,10}; the top len(mine)=3 are {5,9,10}.
	high := compareSplit(mine, theirs, false, func(a, b uint64) bool { return a < b })
	want = []uint64{5, 9, 10}
	for i := range want {
		if high[i] != want[i] {
			t.Fatalf("high = %v, want %v", high, want)
		}
	}
	// Both keeps have len(mine) elements and partition the union with the
	// partner's complementary keeps.
	if len(low) != len(mine) || len(high) != len(mine) {
		t.Fatalf("sizes: %d + %d, want %d each", len(low), len(high), len(mine))
	}
}

func TestRadixSortDistributions(t *testing.T) {
	for _, kind := range dist.Kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			// Spread uniform keys across the full 64-bit range so the
			// top-byte buckets are meaningful.
			parts := mkParts(kind, 6, 1500, 21)
			if kind == dist.Uniform {
				for _, p := range parts {
					for i := range p {
						p[i] <<= 43 // push the 20-bit domain into the top bits
					}
				}
			}
			out, rep, err := RadixSort(parts, transport.KindChan)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifySorted(parts, out); err != nil {
				t.Fatal(err)
			}
			if rep.N != 9000 {
				t.Errorf("N = %d", rep.N)
			}
		})
	}
}

func TestRadixSortSingleProc(t *testing.T) {
	parts := mkParts(dist.Exponential, 1, 2000, 3)
	out, _, err := RadixSort(parts, transport.KindChan)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySorted(parts, out); err != nil {
		t.Fatal(err)
	}
}

func TestRadixImbalanceOnLowEntropyKeys(t *testing.T) {
	// All keys share the top byte -> one bucket -> one processor gets
	// everything. This is the §II weakness the paper cites.
	parts := mkParts(dist.Uniform, 4, 1000, 8) // domain 2^20, top byte always 0
	out, rep, err := RadixSort(parts, transport.KindChan)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySorted(parts, out); err != nil {
		t.Fatal(err)
	}
	maxPart := 0
	for _, s := range rep.PartSizes {
		if s > maxPart {
			maxPart = s
		}
	}
	if maxPart != rep.N {
		t.Errorf("expected total imbalance (one bucket), max part = %d of %d", maxPart, rep.N)
	}
}

func TestRadixSortLocal(t *testing.T) {
	keys := dist.Gen{Kind: dist.Uniform, Seed: 77, Domain: 0}.Keys(10000)
	for i := range keys {
		keys[i] ^= keys[i] << 31 // mix all 64 bits
	}
	want := append([]uint64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	radixSortLocal(keys)
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("radixSortLocal mismatch at %d", i)
		}
	}
	radixSortLocal(nil)            // no panic
	radixSortLocal([]uint64{1})    // no panic
	radixSortLocal([]uint64{2, 1}) // minimal
	radixSortLocal([]uint64{5, 5}) // duplicates
}

func TestAssignBuckets(t *testing.T) {
	// 4 buckets, 2 procs, balanced totals -> first two buckets to 0.
	owners := assignBuckets([]int64{10, 10, 10, 10}, 2)
	want := []int64{0, 0, 1, 1}
	for i := range want {
		if owners[i] != want[i] {
			t.Fatalf("owners = %v, want %v", owners, want)
		}
	}
	// Monotone non-decreasing and within range for skewed totals.
	owners = assignBuckets([]int64{100, 0, 0, 1, 1, 1, 1, 1}, 3)
	for i := 1; i < len(owners); i++ {
		if owners[i] < owners[i-1] {
			t.Fatalf("owners not monotone: %v", owners)
		}
	}
	for _, o := range owners {
		if o < 0 || o >= 3 {
			t.Fatalf("owner out of range: %v", owners)
		}
	}
	// Empty histogram.
	owners = assignBuckets(make([]int64, 8), 4)
	for _, o := range owners {
		if o < 0 || o >= 4 {
			t.Fatalf("empty-histogram owners out of range: %v", owners)
		}
	}
}

func TestPropertyBitonicMatchesSort(t *testing.T) {
	f := func(data []uint64) bool {
		// Carve four equal blocks from the random input.
		per := len(data) / 4
		parts := make([][]uint64, 4)
		for i := range parts {
			parts[i] = data[i*per : (i+1)*per]
		}
		out, _, err := BitonicSort(parts, comm.U64Codec{}, transport.KindChan)
		if err != nil {
			return false
		}
		return VerifySorted(parts, out) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRadixMatchesSort(t *testing.T) {
	f := func(a, b, c []uint64) bool {
		parts := [][]uint64{a, b, c}
		out, _, err := RadixSort(parts, transport.KindChan)
		if err != nil {
			return false
		}
		return VerifySorted(parts, out) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
