package graph

import (
	"runtime"
	"sync"

	"pgxsort/internal/dist"
)

// RMATConfig parameterizes the recursive-matrix graph generator.
// The defaults produce a heavy-tailed, Twitter-like degree distribution:
// a few celebrity vertices with enormous degree and a long tail of
// low-degree vertices sharing few distinct degree values — the
// duplicate-heavy key distribution of the paper's Figure 8 dataset.
type RMATConfig struct {
	// Scale gives 2^Scale vertices.
	Scale int
	// EdgeFactor gives EdgeFactor * 2^Scale edges. Default 16.
	EdgeFactor int
	// A, B, C are the RMAT quadrant probabilities (D = 1-A-B-C).
	// Defaults are the Graph500 parameters 0.57/0.19/0.19.
	A, B, C float64
	// Seed makes generation deterministic.
	Seed uint64
}

func (c RMATConfig) withDefaults() RMATConfig {
	if c.Scale <= 0 {
		c.Scale = 16
	}
	if c.EdgeFactor <= 0 {
		c.EdgeFactor = 16
	}
	if c.A == 0 && c.B == 0 && c.C == 0 {
		c.A, c.B, c.C = 0.57, 0.19, 0.19
	}
	return c
}

// NumVertices returns 2^Scale.
func (c RMATConfig) NumVertices() int { return 1 << uint(c.withDefaults().Scale) }

// NumEdges returns EdgeFactor * 2^Scale.
func (c RMATConfig) NumEdges() int {
	c = c.withDefaults()
	return c.EdgeFactor << uint(c.Scale)
}

// RMAT generates the edge list in parallel, deterministically for a given
// seed: each fixed-size block of edges derives its own RNG stream.
func RMAT(cfg RMATConfig) []Edge {
	cfg = cfg.withDefaults()
	nEdges := cfg.NumEdges()
	edges := make([]Edge, nEdges)

	const block = 1 << 14
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	next := make(chan int, workers)
	go func() {
		for lo := 0; lo < nEdges; lo += block {
			next <- lo
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for lo := range next {
				hi := lo + block
				if hi > nEdges {
					hi = nEdges
				}
				rng := dist.NewRNG(cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(lo/block+1)))
				for i := lo; i < hi; i++ {
					edges[i] = rmatEdge(cfg, rng)
				}
			}
		}()
	}
	wg.Wait()
	return edges
}

// rmatEdge draws one edge by recursively descending the adjacency matrix.
func rmatEdge(cfg RMATConfig, rng *dist.RNG) Edge {
	var src, dst uint32
	for level := 0; level < cfg.Scale; level++ {
		r := rng.Float64()
		switch {
		case r < cfg.A:
			// top-left: no bits set
		case r < cfg.A+cfg.B:
			dst |= 1 << uint(level)
		case r < cfg.A+cfg.B+cfg.C:
			src |= 1 << uint(level)
		default:
			src |= 1 << uint(level)
			dst |= 1 << uint(level)
		}
	}
	return Edge{Src: src, Dst: dst}
}

// TwitterLike builds the CSR stand-in for the paper's Twitter dataset
// (41.6M vertices / 25GB in the paper; here scaled by cfg.Scale).
func TwitterLike(cfg RMATConfig) *CSR {
	cfg = cfg.withDefaults()
	edges := RMAT(cfg)
	g, err := FromEdges(cfg.NumVertices(), edges)
	if err != nil {
		// RMAT never emits out-of-range vertices; reaching this is a bug.
		panic(err)
	}
	return g
}
