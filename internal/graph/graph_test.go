package graph

import (
	"testing"

	"pgxsort/internal/dist"
	"pgxsort/internal/taskmgr"
)

func smallGraph(t *testing.T) *CSR {
	t.Helper()
	// 0 -> 1,2 ; 1 -> 2 ; 2 -> (none) ; 3 -> 0
	g, err := FromEdges(4, []Edge{{0, 1}, {0, 2}, {1, 2}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromEdges(t *testing.T) {
	g := smallGraph(t)
	if g.NumVertices != 4 || g.NumEdges() != 4 {
		t.Fatalf("size = %d vertices / %d edges", g.NumVertices, g.NumEdges())
	}
	wantDeg := []int{2, 1, 0, 1}
	for v, want := range wantDeg {
		if got := g.OutDegree(v); got != want {
			t.Errorf("deg(%d) = %d, want %d", v, got, want)
		}
	}
	n0 := g.Neighbors(0)
	if len(n0) != 2 || n0[0] != 1 || n0[1] != 2 {
		t.Errorf("neighbors(0) = %v", n0)
	}
	if len(g.Neighbors(2)) != 0 {
		t.Errorf("neighbors(2) = %v", g.Neighbors(2))
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestDegrees(t *testing.T) {
	g := smallGraph(t)
	pool := taskmgr.NewPool(2)
	defer pool.Close()
	for _, p := range []*taskmgr.Pool{nil, pool} {
		degs := g.Degrees(p)
		want := []uint64{2, 1, 0, 1}
		for v, w := range want {
			if degs[v] != w {
				t.Errorf("degrees = %v, want %v", degs, want)
			}
		}
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := smallGraph(t)
	h := g.DegreeHistogram()
	// degrees: 2,1,0,1 -> (0:1) (1:2) (2:1)
	want := []DegreeCount{{0, 1}, {1, 2}, {2, 1}}
	if len(h) != len(want) {
		t.Fatalf("histogram = %v", h)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("histogram = %v, want %v", h, want)
		}
	}
}

func TestRMATDeterministicAndSized(t *testing.T) {
	cfg := RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 42}
	a := RMAT(cfg)
	b := RMAT(cfg)
	if len(a) != cfg.NumEdges() || len(a) != 8*1024 {
		t.Fatalf("edge count = %d, want %d", len(a), cfg.NumEdges())
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("RMAT not deterministic at %d", i)
		}
	}
	c := RMAT(RMATConfig{Scale: 10, EdgeFactor: 8, Seed: 43})
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > len(a)/10 {
		t.Fatalf("different seeds produce %d/%d identical edges", same, len(a))
	}
	for _, e := range a {
		if int(e.Src) >= cfg.NumVertices() || int(e.Dst) >= cfg.NumVertices() {
			t.Fatalf("edge %v outside vertex range", e)
		}
	}
}

func TestTwitterLikeIsHeavyTailed(t *testing.T) {
	g := TwitterLike(RMATConfig{Scale: 14, EdgeFactor: 16, Seed: 7})
	degs := g.Degrees(nil)
	// Heavy tail: the max degree dwarfs the mean (16).
	var max uint64
	for _, d := range degs {
		if d > max {
			max = d
		}
	}
	if max < 200 {
		t.Errorf("max degree %d too small for a power-law graph", max)
	}
	// Duplicate-heavy keys: distinct degree values are a tiny fraction of
	// vertices — the Figure 8 sorting workload's defining property.
	if r := dist.DuplicateRatio(degs); r < 0.9 {
		t.Errorf("degree duplicate ratio %.3f, want >= 0.9", r)
	}
}

func TestPartitionStats(t *testing.T) {
	g := smallGraph(t)
	st := g.Partition(2)
	if st.Procs != 2 {
		t.Fatalf("procs = %d", st.Procs)
	}
	if st.VerticesPer[0]+st.VerticesPer[1] != 4 {
		t.Errorf("vertices per machine = %v", st.VerticesPer)
	}
	if st.EdgesPer[0]+st.EdgesPer[1] != 4 {
		t.Errorf("edges per machine = %v", st.EdgesPer)
	}
	// Machine 0 owns {0,1}, machine 1 owns {2,3}.
	// Crossing: 0->2 (cross), 1->2 (cross), 3->0 (cross) = 3.
	if st.CrossingEdges != 3 {
		t.Errorf("crossing edges = %d, want 3", st.CrossingEdges)
	}
	// Ghosts on machine 0: {2}; on machine 1: {0}.
	if st.GhostNodes[0] != 1 || st.GhostNodes[1] != 1 {
		t.Errorf("ghost nodes = %v, want [1 1]", st.GhostNodes)
	}
}

func TestEdgeChunksBalanceEdges(t *testing.T) {
	g := TwitterLike(RMATConfig{Scale: 12, EdgeFactor: 8, Seed: 3})
	const chunks = 8
	bounds := g.EdgeChunks(chunks)
	if len(bounds) != chunks+1 {
		t.Fatalf("bounds = %v", bounds)
	}
	if bounds[0] != 0 || bounds[chunks] != g.NumVertices {
		t.Fatalf("bounds do not cover the vertex range: %v", bounds)
	}
	total := g.NumEdges()
	ideal := total / chunks
	for c := 0; c < chunks; c++ {
		edges := int(g.Row[bounds[c+1]] - g.Row[bounds[c]])
		// Chunks may exceed ideal by at most one vertex's degree; allow a
		// generous bound for the single max-degree celebrity vertex.
		if edges > 3*ideal && edges > 1000 {
			t.Errorf("chunk %d has %d edges (ideal %d)", c, edges, ideal)
		}
	}
	// Monotone bounds.
	for c := 1; c <= chunks; c++ {
		if bounds[c] < bounds[c-1] {
			t.Fatalf("bounds not monotone: %v", bounds)
		}
	}
	// Contrast: equal-vertex chunks would put wildly uneven edge counts
	// in each chunk on a power-law graph; verify edge chunking is
	// strictly better than the naive split for the worst chunk.
	worstEdge, worstVertex := 0, 0
	for c := 0; c < chunks; c++ {
		e := int(g.Row[bounds[c+1]] - g.Row[bounds[c]])
		if e > worstEdge {
			worstEdge = e
		}
		vlo := c * g.NumVertices / chunks
		vhi := (c + 1) * g.NumVertices / chunks
		e = int(g.Row[vhi] - g.Row[vlo])
		if e > worstVertex {
			worstVertex = e
		}
	}
	if worstEdge > worstVertex {
		t.Errorf("edge chunking (worst %d) no better than vertex chunking (worst %d)",
			worstEdge, worstVertex)
	}
}

func TestEdgeChunksDegenerate(t *testing.T) {
	g := smallGraph(t)
	bounds := g.EdgeChunks(0)
	if len(bounds) != 2 || bounds[1] != 4 {
		t.Fatalf("bounds = %v", bounds)
	}
	empty, err := FromEdges(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	b2 := empty.EdgeChunks(4)
	if b2[4] != 1 {
		t.Fatalf("empty-graph bounds = %v", b2)
	}
}

func TestPartitionSingleMachine(t *testing.T) {
	g := smallGraph(t)
	st := g.Partition(0) // clamps to 1
	if st.CrossingEdges != 0 {
		t.Errorf("single machine has %d crossing edges", st.CrossingEdges)
	}
	if st.GhostNodes[0] != 0 {
		t.Errorf("single machine has ghosts: %v", st.GhostNodes)
	}
}
