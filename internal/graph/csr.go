// Package graph provides the graph substrate the paper's Twitter
// experiments run on: a CSR (Compressed Sparse Row) in-memory graph —
// the structure PGX.D's data manager stores graphs in (§III) — an RMAT
// power-law generator standing in for the proprietary 25GB Twitter
// dataset, degree extraction (the sort keys of Figure 8/Table III), and
// the partitioning statistics (crossing edges, ghost nodes, edge chunks)
// PGX.D's loader optimizes.
package graph

import (
	"fmt"
	"sort"

	"pgxsort/internal/taskmgr"
)

// Edge is a directed src -> dst pair.
type Edge struct {
	Src, Dst uint32
}

// CSR is a compressed sparse row adjacency structure: the neighbors of
// vertex v are Adj[Row[v]:Row[v+1]].
type CSR struct {
	NumVertices int
	Row         []int64  // len NumVertices+1
	Adj         []uint32 // len NumEdges
}

// NumEdges returns the edge count.
func (g *CSR) NumEdges() int { return len(g.Adj) }

// OutDegree returns vertex v's out-degree.
func (g *CSR) OutDegree(v int) int { return int(g.Row[v+1] - g.Row[v]) }

// Neighbors returns vertex v's adjacency slice (shared, do not modify).
func (g *CSR) Neighbors(v int) []uint32 { return g.Adj[g.Row[v]:g.Row[v+1]] }

// FromEdges builds a CSR from an edge list with a counting pass followed
// by a placement pass (the standard two-pass CSR build).
func FromEdges(numVertices int, edges []Edge) (*CSR, error) {
	g := &CSR{
		NumVertices: numVertices,
		Row:         make([]int64, numVertices+1),
		Adj:         make([]uint32, len(edges)),
	}
	for _, e := range edges {
		if int(e.Src) >= numVertices || int(e.Dst) >= numVertices {
			return nil, fmt.Errorf("graph: edge (%d,%d) outside vertex range %d", e.Src, e.Dst, numVertices)
		}
		g.Row[e.Src+1]++
	}
	for v := 0; v < numVertices; v++ {
		g.Row[v+1] += g.Row[v]
	}
	cursor := make([]int64, numVertices)
	copy(cursor, g.Row[:numVertices])
	for _, e := range edges {
		g.Adj[cursor[e.Src]] = e.Dst
		cursor[e.Src]++
	}
	return g, nil
}

// Degrees computes all out-degrees in parallel on the given pool,
// returning them as uint64 sort keys. This is the dataset sorted in the
// paper's Twitter experiments: degree data is heavily duplicated (most
// vertices in a power-law graph share low degrees), which is exactly the
// case the investigator targets.
func (g *CSR) Degrees(pool *taskmgr.Pool) []uint64 {
	out := make([]uint64, g.NumVertices)
	compute := func(lo, hi int) {
		for v := lo; v < hi; v++ {
			out[v] = uint64(g.Row[v+1] - g.Row[v])
		}
	}
	if pool == nil {
		compute(0, g.NumVertices)
	} else {
		pool.ParallelFor(g.NumVertices, compute)
	}
	return out
}

// DegreeHistogram returns sorted (degree, count) pairs.
func (g *CSR) DegreeHistogram() []DegreeCount {
	counts := map[int]int{}
	for v := 0; v < g.NumVertices; v++ {
		counts[g.OutDegree(v)]++
	}
	out := make([]DegreeCount, 0, len(counts))
	for d, c := range counts {
		out = append(out, DegreeCount{Degree: d, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Degree < out[j].Degree })
	return out
}

// DegreeCount is one histogram bucket.
type DegreeCount struct {
	Degree int
	Count  int
}

// PartitionStats describes a block partitioning of the vertex set across
// p machines, with the metrics PGX.D's loader optimizes: edges whose
// endpoints live on different machines (crossing edges) and the distinct
// remote vertices each machine must mirror (ghost nodes, §III).
type PartitionStats struct {
	Procs         int
	VerticesPer   []int
	EdgesPer      []int
	CrossingEdges int
	GhostNodes    []int
}

// Partition block-partitions vertices across p machines and reports the
// statistics.
func (g *CSR) Partition(p int) PartitionStats {
	if p < 1 {
		p = 1
	}
	st := PartitionStats{
		Procs:       p,
		VerticesPer: make([]int, p),
		EdgesPer:    make([]int, p),
		GhostNodes:  make([]int, p),
	}
	owner := func(v int) int { return v * p / g.NumVertices }
	if g.NumVertices == 0 {
		return st
	}
	for m := 0; m < p; m++ {
		lo := m * g.NumVertices / p
		hi := (m + 1) * g.NumVertices / p
		st.VerticesPer[m] = hi - lo
		ghosts := map[uint32]struct{}{}
		for v := lo; v < hi; v++ {
			st.EdgesPer[m] += g.OutDegree(v)
			for _, w := range g.Neighbors(v) {
				if owner(int(w)) != m {
					st.CrossingEdges++
					ghosts[w] = struct{}{}
				}
			}
		}
		st.GhostNodes[m] = len(ghosts)
	}
	return st
}

// EdgeChunks splits the vertex range into chunks of roughly equal *edge*
// counts (PGX.D's edge chunking strategy, §III): a machine's worker tasks
// each get a vertex interval with about the same number of edges, which
// balances per-task work on skewed-degree graphs where equal vertex
// intervals would not. It returns chunk boundaries (len chunks+1).
func (g *CSR) EdgeChunks(chunks int) []int {
	if chunks < 1 {
		chunks = 1
	}
	bounds := make([]int, chunks+1)
	total := int64(len(g.Adj))
	v := 0
	for c := 1; c < chunks; c++ {
		target := total * int64(c) / int64(chunks)
		for v < g.NumVertices && g.Row[v+1] < target {
			v++
		}
		bounds[c] = v
	}
	bounds[chunks] = g.NumVertices
	return bounds
}
