package dist

import "fmt"

// Kind selects one of the synthetic key distributions.
type Kind int

const (
	// Uniform draws keys uniformly from [0, Domain) (Figure 4a).
	Uniform Kind = iota
	// Normal draws keys from a clamped bell curve centered on Domain/2
	// with standard deviation Domain/8 (Figure 4b).
	Normal
	// RightSkewed concentrates ~44% of keys on the modal value 0 with a
	// long tail to the right (Figure 4c, "many duplicated data entries").
	RightSkewed
	// Exponential decays geometrically from the modal value 0; at
	// Domain 12 it is floor(Exp(1)) with P(0) ≈ 63% (Figure 4d).
	Exponential
	// Sorted is uniform data already in ascending order.
	Sorted
	// ReverseSorted is uniform data in descending order.
	ReverseSorted
	// FewDistinct draws uniformly from at most 16 distinct values spread
	// across the domain.
	FewDistinct
	// Constant repeats a single value: every splitter duplicates.
	Constant
)

// Kinds holds the paper's four Figure-4 distributions, in figure order.
var Kinds = []Kind{Uniform, Normal, RightSkewed, Exponential}

// AllKinds holds every distribution, the paper's four plus the
// adversarial extras, in declaration order.
var AllKinds = []Kind{
	Uniform, Normal, RightSkewed, Exponential,
	Sorted, ReverseSorted, FewDistinct, Constant,
}

var kindNames = map[Kind]string{
	Uniform:       "uniform",
	Normal:        "normal",
	RightSkewed:   "right-skewed",
	Exponential:   "exponential",
	Sorted:        "sorted",
	ReverseSorted: "reverse-sorted",
	FewDistinct:   "few-distinct",
	Constant:      "constant",
}

func (k Kind) String() string {
	if name, ok := kindNames[k]; ok {
		return name
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind maps a distribution name (as printed by Kind.String) back to
// its Kind.
func ParseKind(name string) (Kind, error) {
	for k, n := range kindNames {
		if n == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown distribution %q (want uniform, normal, right-skewed, exponential, sorted, reverse-sorted, few-distinct or constant)", name)
}
