package dist

import (
	"fmt"
	"strconv"
)

// KeyType names a key domain the generators can emit. The calibrated
// distributions always draw in uint64 space (so a given Kind/Seed/Domain
// has one canonical shape); the other key types are order-preserving
// images of those draws, which keeps the distribution shape — and the
// duplicate structure the investigator depends on — identical across key
// types.
type KeyType string

const (
	KeyUint64  KeyType = "uint64"
	KeyFloat64 KeyType = "float64"
	KeyString  KeyType = "string"
)

// KeyTypes lists every supported key domain, in declaration order.
var KeyTypes = []KeyType{KeyUint64, KeyFloat64, KeyString}

// ParseKeyType maps a key-type name to its KeyType.
func ParseKeyType(s string) (KeyType, error) {
	switch KeyType(s) {
	case KeyUint64, KeyFloat64, KeyString:
		return KeyType(s), nil
	}
	return "", fmt.Errorf("unknown key type %q (want uint64, float64 or string)", s)
}

// FloatKey maps a uint64 draw onto its order-preserving float64 image:
// the integer part is the draw itself and the fractional part is a
// deterministic hash of it, so distinct draws stay distinct and ordered
// while equal draws (duplicates) stay equal — and the keys are genuine
// non-integral floats, not uint64s in disguise.
func FloatKey(u uint64) float64 {
	// splitmix64 finalizer; the >>11 keeps the fraction exactly
	// representable (53 bits) and strictly below 1.
	h := u + 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(u) + float64(h>>11)/(1<<53)
}

// StringKey maps a uint64 draw onto its order-preserving string image
// under domain d: prefix + the draw zero-padded to the domain's decimal
// width, so lexicographic order over the strings equals numeric order
// over the draws. A prefix of 8 or more bytes collapses every key onto
// one radix norm (see comm.StringCodec), which is how callers force the
// prefix-collision fallback path.
func StringKey(prefix string, u, d uint64) string {
	if d == 0 {
		d = DefaultDomain
	}
	width := len(strconv.FormatUint(d-1, 10))
	return fmt.Sprintf("%s%0*d", prefix, width, u)
}

// FillFloats overwrites out with the distribution's float64 image.
func (g Gen) FillFloats(out []float64) {
	u := make([]uint64, len(out))
	g.Fill(u)
	for i, v := range u {
		out[i] = FloatKey(v)
	}
}

// Floats generates n float64 keys.
func (g Gen) Floats(n int) []float64 {
	out := make([]float64, n)
	g.FillFloats(out)
	return out
}

// FillStrings overwrites out with the distribution's string image; every
// key carries the given prefix (possibly empty).
func (g Gen) FillStrings(out []string, prefix string) {
	u := make([]uint64, len(out))
	g.Fill(u)
	d := g.Domain
	if d == 0 {
		d = DefaultDomain
	}
	for i, v := range u {
		out[i] = StringKey(prefix, v, d)
	}
}

// Strings generates n string keys with the given prefix.
func (g Gen) Strings(n int, prefix string) []string {
	out := make([]string, n)
	g.FillStrings(out, prefix)
	return out
}

// Payloads generates n deterministic opaque record bodies of size bytes
// each (nil payloads when size is 0). The payload stream is seeded
// independently of the key stream, so attaching payloads never perturbs
// the keys a Gen produces.
func (g Gen) Payloads(n, size int) [][]byte {
	out := make([][]byte, n)
	if size <= 0 {
		return out
	}
	rng := NewRNG(g.Seed ^ 0x9a1b2c3d4e5f6071)
	for i := range out {
		p := make([]byte, size)
		for j := 0; j+8 <= size; j += 8 {
			v := rng.Uint64()
			for k := 0; k < 8; k++ {
				p[j+k] = byte(v >> (8 * k))
			}
		}
		for j := size - size%8; j < size; j++ {
			p[j] = byte(rng.Uint64())
		}
		out[i] = p
	}
	return out
}
