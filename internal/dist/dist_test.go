package dist

import (
	"math"
	"strings"
	"testing"
)

var allKinds = []Kind{
	Uniform, Normal, RightSkewed, Exponential,
	Sorted, ReverseSorted, FewDistinct, Constant,
}

func TestKindsArePaperFour(t *testing.T) {
	want := []Kind{Uniform, Normal, RightSkewed, Exponential}
	if len(Kinds) != 4 {
		t.Fatalf("Kinds has %d entries, want 4 (Figure 4)", len(Kinds))
	}
	for i, k := range want {
		if Kinds[i] != k {
			t.Errorf("Kinds[%d] = %v, want %v", i, Kinds[i], k)
		}
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range allKinds {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Errorf("ParseKind(%q): %v", k.String(), err)
			continue
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("zipf"); err == nil {
		t.Error("ParseKind accepted an unknown name")
	}
	if !strings.HasPrefix(Kind(99).String(), "kind(") {
		t.Errorf("unknown kind String() = %q", Kind(99).String())
	}
}

// Same Gen -> identical keys, on every kind, and Keys agrees with Fill.
func TestDeterminism(t *testing.T) {
	for _, k := range allKinds {
		g := Gen{Kind: k, Seed: 12345, Domain: 1 << 16}
		a := g.Keys(5000)
		b := g.Keys(5000)
		c := make([]uint64, 5000)
		g.Fill(c)
		for i := range a {
			if a[i] != b[i] || a[i] != c[i] {
				t.Fatalf("%v: nondeterministic at %d: %d, %d, %d", k, i, a[i], b[i], c[i])
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := Gen{Kind: Uniform, Seed: 1}.Keys(100)
	b := Gen{Kind: Uniform, Seed: 2}.Keys(100)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 5 {
		t.Errorf("seeds 1 and 2 agree on %d/100 keys", same)
	}
}

func modalShare(keys []uint64, v uint64) float64 {
	n := 0
	for _, k := range keys {
		if k == v {
			n++
		}
	}
	return float64(n) / float64(len(keys))
}

// The calibrated shapes of the skewed kinds at their documented domains
// (internal/harness/config.go): these shares drive the investigator's
// 2/p splitter-duplication rule, so they are asserted tightly.
func TestRightSkewedModalShareAtDomain64(t *testing.T) {
	keys := Gen{Kind: RightSkewed, Seed: 7, Domain: 64}.Keys(200000)
	if s := modalShare(keys, 0); math.Abs(s-0.44) > 0.01 {
		t.Errorf("modal share = %.4f, want ~0.44", s)
	}
	// Each shoulder value [1,5] holds ~9.4% — one p=10 decile apiece.
	for v := uint64(1); v <= 5; v++ {
		if s := modalShare(keys, v); math.Abs(s-0.094) > 0.01 {
			t.Errorf("shoulder value %d share = %.4f, want ~0.094", v, s)
		}
	}
}

func TestExponentialModalShareAtDomain12(t *testing.T) {
	keys := Gen{Kind: Exponential, Seed: 7, Domain: 12}.Keys(200000)
	want := 1 - math.Exp(-1) // ≈ 0.632
	if s := modalShare(keys, 0); math.Abs(s-want) > 0.01 {
		t.Errorf("modal share = %.4f, want ~%.3f", s, want)
	}
	// Geometric decay: each value holds ~1/e of the previous one's share.
	s0, s1 := modalShare(keys, 0), modalShare(keys, 1)
	if ratio := s1 / s0; math.Abs(ratio-math.Exp(-1)) > 0.03 {
		t.Errorf("P(1)/P(0) = %.3f, want ~%.3f", ratio, math.Exp(-1))
	}
}

func TestDomainClamping(t *testing.T) {
	for _, k := range allKinds {
		for _, d := range []uint64{1, 2, 12, 64, 1000, DefaultDomain} {
			keys := Gen{Kind: k, Seed: 3, Domain: d}.Keys(2000)
			for i, key := range keys {
				if key >= d {
					t.Fatalf("%v domain %d: key[%d] = %d out of range", k, d, i, key)
				}
			}
		}
	}
}

func TestDefaultDomainApplied(t *testing.T) {
	keys := Gen{Kind: Uniform, Seed: 5}.Keys(10000)
	for _, k := range keys {
		if k >= DefaultDomain {
			t.Fatalf("key %d outside default domain", k)
		}
	}
}

func TestSortedKinds(t *testing.T) {
	asc := Gen{Kind: Sorted, Seed: 9}.Keys(5000)
	for i := 1; i < len(asc); i++ {
		if asc[i] < asc[i-1] {
			t.Fatal("Sorted kind is not ascending")
		}
	}
	desc := Gen{Kind: ReverseSorted, Seed: 9}.Keys(5000)
	for i := 1; i < len(desc); i++ {
		if desc[i] > desc[i-1] {
			t.Fatal("ReverseSorted kind is not descending")
		}
	}
}

func TestFewDistinctAndConstant(t *testing.T) {
	distinct := func(keys []uint64) int {
		seen := map[uint64]struct{}{}
		for _, k := range keys {
			seen[k] = struct{}{}
		}
		return len(seen)
	}
	few := Gen{Kind: FewDistinct, Seed: 1}.Keys(10000)
	if n := distinct(few); n > 16 {
		t.Errorf("FewDistinct produced %d distinct values, want <= 16", n)
	}
	con := Gen{Kind: Constant, Seed: 1}.Keys(1000)
	if n := distinct(con); n != 1 {
		t.Errorf("Constant produced %d distinct values", n)
	}
}

func TestDuplicateRatio(t *testing.T) {
	cases := []struct {
		keys []uint64
		want float64
	}{
		{nil, 0},
		{[]uint64{1, 2, 3, 4}, 0},
		{[]uint64{7, 7, 7, 7}, 0.75},
		{[]uint64{1, 1, 2, 2}, 0.5},
	}
	for _, c := range cases {
		if got := DuplicateRatio(c.keys); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("DuplicateRatio(%v) = %v, want %v", c.keys, got, c.want)
		}
	}
}

func TestHistogramBucketsSumToTotal(t *testing.T) {
	for _, k := range allKinds {
		keys := Gen{Kind: k, Seed: 2}.Keys(30000)
		h := NewHistogram(keys, DefaultDomain, 16)
		if len(h.Buckets) != 16 {
			t.Fatalf("%v: %d buckets", k, len(h.Buckets))
		}
		sum := 0
		for _, c := range h.Buckets {
			sum += c
		}
		if sum != h.Total || h.Total != len(keys) {
			t.Errorf("%v: buckets sum %d, Total %d, keys %d", k, sum, h.Total, len(keys))
		}
	}
}

func TestHistogramClampsOutOfDomainKeys(t *testing.T) {
	h := NewHistogram([]uint64{0, 5, 1 << 60}, 16, 4)
	if h.Buckets[3] != 1 {
		t.Errorf("out-of-domain key not clamped into last bucket: %v", h.Buckets)
	}
	if h.Total != 3 {
		t.Errorf("Total = %d", h.Total)
	}
}

func TestHistogramRender(t *testing.T) {
	keys := Gen{Kind: RightSkewed, Seed: 4, Domain: 64}.Keys(10000)
	out := NewHistogram(keys, 64, 8).Render(40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("render produced %d lines, want 8:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "#") {
		t.Errorf("modal bucket has no bar: %q", lines[0])
	}
	for _, l := range lines {
		if !strings.Contains(l, "%") {
			t.Errorf("line missing share: %q", l)
		}
	}
	// Degenerate inputs must not panic or divide by zero.
	empty := NewHistogram(nil, 0, 0)
	if got := empty.Render(0); got == "" {
		t.Error("empty histogram rendered nothing")
	}
}

func TestRNGStreamProperties(t *testing.T) {
	r := NewRNG(42)
	seenHi := false
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if f > 0.99 {
			seenHi = true
		}
	}
	if !seenHi {
		t.Error("Float64 never exceeded 0.99 in 1000 draws")
	}
	if NewRNG(7).Uint64() != NewRNG(7).Uint64() {
		t.Error("same seed produced different first values")
	}
	if got := NewRNG(1).Uint64n(0); got != 0 {
		t.Errorf("Uint64n(0) = %d", got)
	}
	for i := 0; i < 100; i++ {
		if v := r.Uint64n(10); v >= 10 {
			t.Fatalf("Uint64n(10) = %d", v)
		}
	}
}
