package dist

import (
	"fmt"
	"strings"
)

// DuplicateRatio reports the fraction of entries that are duplicates of
// an earlier entry: 1 - distinct/n. 0 means all keys are distinct; values
// near 1 mean few distinct values cover the dataset (the paper's
// "many duplicated data entries").
func DuplicateRatio(keys []uint64) float64 {
	if len(keys) == 0 {
		return 0
	}
	seen := make(map[uint64]struct{}, 1024)
	for _, k := range keys {
		seen[k] = struct{}{}
	}
	return 1 - float64(len(seen))/float64(len(keys))
}

// Histogram counts keys into equal-width buckets over [0, Domain); keys
// at or above Domain land in the last bucket.
type Histogram struct {
	Buckets []int  // per-bucket key counts
	Total   int    // sum of Buckets
	Domain  uint64 // value domain the bucket widths divide
	Width   uint64 // values per bucket
}

// NewHistogram buckets keys over [0, domain). buckets must be >= 1;
// domain 0 means DefaultDomain.
func NewHistogram(keys []uint64, domain uint64, buckets int) *Histogram {
	if domain == 0 {
		domain = DefaultDomain
	}
	if buckets < 1 {
		buckets = 1
	}
	width := domain / uint64(buckets)
	if domain%uint64(buckets) != 0 {
		width++ // ceil without overflowing domain+buckets-1
	}
	if width == 0 {
		width = 1
	}
	h := &Histogram{
		Buckets: make([]int, buckets),
		Domain:  domain,
		Width:   width,
	}
	for _, k := range keys {
		b := int(k / width)
		if b >= buckets {
			b = buckets - 1
		}
		h.Buckets[b]++
		h.Total++
	}
	return h
}

// Render draws one line per bucket: its value range, share of the keys
// and a bar scaled so the largest bucket spans width characters.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 1
	}
	maxCount := 0
	for _, c := range h.Buckets {
		if c > maxCount {
			maxCount = c
		}
	}
	var sb strings.Builder
	for b, c := range h.Buckets {
		lo := uint64(b) * h.Width
		hi := lo + h.Width
		if hi > h.Domain || hi < lo { // hi < lo: overflow near MaxUint64
			hi = h.Domain
		}
		share := 0.0
		if h.Total > 0 {
			share = 100 * float64(c) / float64(h.Total)
		}
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&sb, "[%12d, %12d) %6.2f%% %s\n",
			lo, hi, share, strings.Repeat("#", bar))
	}
	return sb.String()
}
