package dist

import "testing"

// FuzzGenFill checks the domain-clamping invariant for arbitrary
// (kind, seed, domain, n): every generated key must lie in [0, domain)
// — with domain 0 meaning DefaultDomain — and generation must be
// deterministic.
func FuzzGenFill(f *testing.F) {
	f.Add(uint8(0), uint64(1), uint64(0), uint16(100))
	f.Add(uint8(2), uint64(7), uint64(64), uint16(1000))
	f.Add(uint8(3), uint64(9), uint64(12), uint16(257))
	f.Add(uint8(7), uint64(0), uint64(1), uint16(3))
	f.Fuzz(func(t *testing.T, kind uint8, seed, domain uint64, n uint16) {
		g := Gen{Kind: Kind(kind % 8), Seed: seed, Domain: domain}
		limit := domain
		if limit == 0 {
			limit = DefaultDomain
		}
		keys := g.Keys(int(n))
		for i, k := range keys {
			if k >= limit {
				t.Fatalf("%v: key[%d] = %d outside domain %d", g.Kind, i, k, limit)
			}
		}
		again := g.Keys(int(n))
		for i := range keys {
			if keys[i] != again[i] {
				t.Fatalf("%v: nondeterministic at %d", g.Kind, i)
			}
		}
	})
}
