package dist

// RNG is a deterministic splitmix64 generator. It is repo-owned (rather
// than math/rand) so that a given seed produces the same byte stream on
// every Go version and platform; harness datasets and CLI-generated key
// files depend on that stability.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds produce
// uncorrelated streams; the same seed always produces the same stream.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a value uniformly distributed in [0, n). n = 0 yields 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.Uint64() % n
}

// Float64 returns a value uniformly distributed in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
