package dist

import (
	"sort"
	"testing"
)

func TestParseKeyType(t *testing.T) {
	for _, kt := range KeyTypes {
		got, err := ParseKeyType(string(kt))
		if err != nil || got != kt {
			t.Fatalf("ParseKeyType(%q) = %v, %v", kt, got, err)
		}
	}
	if _, err := ParseKeyType("int128"); err == nil {
		t.Fatal("unknown key type accepted")
	}
}

// The float64 and string images must preserve the order and the
// duplicate structure of the uint64 draws exactly: u < v iff image(u) <
// image(v), and u == v iff image(u) == image(v).
func TestKeyImagesOrderPreserving(t *testing.T) {
	g := Gen{Kind: RightSkewed, Seed: 5, Domain: 64}
	u := g.Keys(5000)
	f := make([]float64, len(u))
	s := make([]string, len(u))
	for i, v := range u {
		f[i] = FloatKey(v)
		s[i] = StringKey("px/", v, 64)
	}
	for i := 1; i < len(u); i++ {
		a, b := u[i-1], u[i]
		switch {
		case a < b:
			if !(f[i-1] < f[i]) || !(s[i-1] < s[i]) {
				t.Fatalf("order not preserved for %d < %d", a, b)
			}
		case a > b:
			if !(f[i-1] > f[i]) || !(s[i-1] > s[i]) {
				t.Fatalf("order not preserved for %d > %d", a, b)
			}
		default:
			if f[i-1] != f[i] || s[i-1] != s[i] {
				t.Fatalf("duplicates not preserved for %d", a)
			}
		}
	}
	if DuplicateRatio(u) == 0 {
		t.Fatal("test dataset should contain duplicates")
	}
}

// Sorting the string image lexicographically must equal sorting the
// draws numerically (the property the zero-padding establishes).
func TestStringKeyLexicographicOrder(t *testing.T) {
	g := Gen{Kind: Uniform, Seed: 9, Domain: 100000}
	u := g.Keys(2000)
	s := make([]string, len(u))
	for i, v := range u {
		s[i] = StringKey("k-", v, 100000)
	}
	sort.Slice(u, func(i, j int) bool { return u[i] < u[j] })
	sort.Strings(s)
	for i := range u {
		if want := StringKey("k-", u[i], 100000); s[i] != want {
			t.Fatalf("index %d: %q != %q", i, s[i], want)
		}
	}
}

// The typed Fill methods draw from the same stream as Fill, so a Gen's
// distribution shape is identical in every key domain.
func TestFillImagesMatchDraws(t *testing.T) {
	g := Gen{Kind: Normal, Seed: 17}
	u := g.Keys(500)
	f := g.Floats(500)
	s := g.Strings(500, "p")
	for i := range u {
		if f[i] != FloatKey(u[i]) {
			t.Fatalf("float %d diverged from the draw stream", i)
		}
		if s[i] != StringKey("p", u[i], DefaultDomain) {
			t.Fatalf("string %d diverged from the draw stream", i)
		}
	}
}

func TestPayloads(t *testing.T) {
	g := Gen{Seed: 3}
	a := g.Payloads(100, 33)
	b := g.Payloads(100, 33)
	for i := range a {
		if len(a[i]) != 33 {
			t.Fatalf("payload %d has %d bytes", i, len(a[i]))
		}
		if string(a[i]) != string(b[i]) {
			t.Fatalf("payload %d not deterministic", i)
		}
	}
	if string(a[0]) == string(a[1]) {
		t.Fatal("distinct payloads should differ")
	}
	for _, p := range g.Payloads(5, 0) {
		if p != nil {
			t.Fatal("size 0 should yield nil payloads")
		}
	}
	// Payloads must not perturb the key stream: keys drawn before and
	// after attaching payloads are identical.
	before := g.Keys(10)
	g.Payloads(100, 16)
	after := g.Keys(10)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("Payloads perturbed the key stream")
		}
	}
}
