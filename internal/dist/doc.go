// Package dist generates the synthetic key datasets of the paper's
// evaluation (§V, Figure 4) and the analytics used to describe them.
//
// The four figure-4 distributions — uniform, normal, right-skewed and
// exponential — are exposed through Kinds; four extra adversarial kinds
// (sorted, reverse-sorted, few-distinct, constant) exercise the local
// sorting primitives and the duplicate-splitter investigator.
//
// The distribution shapes are load-bearing, not cosmetic. The paper's
// investigator duplicates a splitter only when a single key value's share
// of the data exceeds 2/p, and then divides the value's run equally among
// the duplicated splitters' destinations (Figure 3c). The skewed
// generators are therefore calibrated at the domains the harness uses:
//
//   - RightSkewed at Domain 64 puts ~44% of all keys on the modal value 0
//     (it spans four of ten decile splitters, as in Table II), a ~47%
//     shoulder over the next five values (~9.4% each, one decile bucket
//     apiece) and a ~9% tail over the rest of the domain. Every p=10
//     bucket then lands within a few percent of the ideal 10% share when
//     the investigator is on, and ~44% piles onto one processor when it
//     is off.
//   - Exponential at Domain 12 is floor(Exp(1)) clamped to the domain:
//     P(0) = 1-1/e ≈ 63% of keys share the modal value. At other domains
//     the same shape is scaled so the decay spans the whole domain.
//
// All generators draw from the repo-owned splitmix64 RNG so datasets are
// byte-stable across Go versions and platforms.
package dist
