package dist

import (
	"math"
	"slices"
)

// DefaultDomain is the key domain used when Gen.Domain is zero: 2^20
// distinct values, the domain of the paper's Figure 4 datasets.
const DefaultDomain uint64 = 1 << 20

// Gen describes one deterministic dataset: a distribution shape, a seed
// and a value domain. The zero Domain means DefaultDomain. Two Gens with
// equal fields always produce identical keys.
type Gen struct {
	Kind   Kind
	Seed   uint64
	Domain uint64
}

// Keys generates n keys.
func (g Gen) Keys(n int) []uint64 {
	out := make([]uint64, n)
	g.Fill(out)
	return out
}

// Fill overwrites out with len(out) keys drawn from the distribution.
// Every key lies in [0, Domain).
func (g Gen) Fill(out []uint64) {
	d := g.Domain
	if d == 0 {
		d = DefaultDomain
	}
	rng := NewRNG(g.Seed)
	switch g.Kind {
	case Normal:
		fillNormal(out, rng, d)
	case RightSkewed:
		fillRightSkewed(out, rng, d)
	case Exponential:
		fillExponential(out, rng, d)
	case Sorted:
		fillUniform(out, rng, d)
		slices.Sort(out)
	case ReverseSorted:
		fillUniform(out, rng, d)
		slices.Sort(out)
		slices.Reverse(out)
	case FewDistinct:
		fillFewDistinct(out, rng, d)
	case Constant:
		for i := range out {
			out[i] = d / 2
		}
	default: // Uniform
		fillUniform(out, rng, d)
	}
}

func fillUniform(out []uint64, rng *RNG, d uint64) {
	for i := range out {
		out[i] = rng.Uint64n(d)
	}
}

// fillNormal sums twelve uniforms (Irwin-Hall) for an approximate
// standard normal; pure arithmetic keeps it byte-stable everywhere.
func fillNormal(out []uint64, rng *RNG, d uint64) {
	mean := float64(d) / 2
	sigma := float64(d) / 8
	for i := range out {
		var s float64
		for k := 0; k < 12; k++ {
			s += rng.Float64()
		}
		v := mean + (s-6)*sigma
		// Clamp in float space: converting an out-of-range float64 to
		// uint64 is architecture-dependent in Go, which would break
		// byte-determinism across platforms.
		if v < 0 {
			v = 0
		}
		x := d - 1
		if v < float64(d) {
			x = uint64(v)
			if x >= d {
				x = d - 1
			}
		}
		out[i] = x
	}
}

// fillRightSkewed is a three-part mixture calibrated against the
// investigator's 2/p duplication rule (see the package comment):
//
//   - 44% of keys on the modal value 0;
//   - 47% spread uniformly over the "shoulder" [1, a], where a scales
//     with the domain so that a = 5 at the documented Domain 64 (each
//     shoulder value then holds ~9.4% — one decile splitter apiece at
//     the paper's p=10);
//   - the remaining 9% spread uniformly over the tail (a, Domain).
func fillRightSkewed(out []uint64, rng *RNG, d uint64) {
	if d <= 1 {
		clear(out)
		return
	}
	a := 5 * d / 64
	if a < 1 {
		a = 1
	}
	if a > d-1 {
		a = d - 1
	}
	tail := d - 1 - a // number of values strictly above the shoulder
	for i := range out {
		u := rng.Float64()
		switch {
		case u < 0.44:
			out[i] = 0
		case u < 0.91 || tail == 0:
			out[i] = 1 + rng.Uint64n(a)
		default:
			out[i] = a + 1 + rng.Uint64n(tail)
		}
	}
}

// fillExponential draws floor(Exp(1) * Domain/12), clamped to the domain.
// At the documented Domain 12 this is floor(Exp(1)): P(0) = 1-1/e ≈ 63%
// of keys share the modal value. At larger domains the same exponential
// shape stretches to cover the whole domain.
func fillExponential(out []uint64, rng *RNG, d uint64) {
	scale := float64(d) / 12
	for i := range out {
		f := -math.Log(1-rng.Float64()) * scale
		// Clamp before converting (see fillNormal).
		v := d - 1
		if f < float64(d) {
			v = uint64(f)
			if v >= d {
				v = d - 1
			}
		}
		out[i] = v
	}
}

func fillFewDistinct(out []uint64, rng *RNG, d uint64) {
	k := uint64(16)
	if k > d {
		k = d
	}
	step := d / k
	for i := range out {
		out[i] = rng.Uint64n(k) * step
	}
}
