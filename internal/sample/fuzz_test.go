package sample

import (
	"encoding/binary"
	"sort"
	"testing"
)

// FuzzPartition hammers the investigator's range arithmetic with
// arbitrary sorted data and splitters: bounds must stay monotone, cover
// the input, and respect splitter semantics in every case.
func FuzzPartition(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{3}, true)
	f.Add([]byte{}, []byte{}, false)
	f.Fuzz(func(t *testing.T, dataRaw, splitRaw []byte, investigate bool) {
		data := make([]uint64, len(dataRaw)/8)
		for i := range data {
			data[i] = binary.LittleEndian.Uint64(dataRaw[i*8:])
		}
		sort.Slice(data, func(i, j int) bool { return data[i] < data[j] })
		splitters := make([]uint64, 0, len(splitRaw))
		for _, b := range splitRaw {
			if len(splitters) >= 24 {
				break
			}
			splitters = append(splitters, uint64(b))
		}
		sort.Slice(splitters, func(i, j int) bool { return splitters[i] < splitters[j] })

		r := Partition(data, splitters, lessU64, greaterU64, belowU64, investigate)
		if r.Bounds[0] != 0 || r.Bounds[len(r.Bounds)-1] != len(data) {
			t.Fatalf("bounds do not cover input: %v", r.Bounds)
		}
		if r.NumDests() != len(splitters)+1 {
			t.Fatalf("dest count %d, want %d", r.NumDests(), len(splitters)+1)
		}
		total := 0
		for d := 0; d < r.NumDests(); d++ {
			lo, hi := r.Range(d)
			if lo > hi {
				t.Fatalf("negative range at %d: %v", d, r.Bounds)
			}
			total += hi - lo
			// Everything in bucket d must be <= splitters[d], and nothing
			// in bucket d may sort strictly below splitters[d-1]: an
			// element below the previous splitter would break global
			// order against another processor's bucket d-1 contents.
			for i := lo; i < hi; i++ {
				if d < len(splitters) && data[i] > splitters[d] {
					t.Fatalf("bucket %d holds %d > splitter %d", d, data[i], splitters[d])
				}
				if d > 0 && data[i] < splitters[d-1] {
					t.Fatalf("bucket %d holds %d < previous splitter %d", d, data[i], splitters[d-1])
				}
			}
		}
		if total != len(data) {
			t.Fatalf("ranges cover %d of %d elements", total, len(data))
		}
	})
}
