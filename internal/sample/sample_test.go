package sample

import (
	"sort"
	"testing"
	"testing/quick"

	"pgxsort/internal/dist"
	"pgxsort/internal/lsort"
)

func lessU64(a, b uint64) bool    { return a < b }
func greaterU64(a, b uint64) bool { return a > b }
func belowU64(a, b uint64) bool   { return a < b }

func TestCount(t *testing.T) {
	cases := []struct {
		buffer, p, entry int
		factor           float64
		localN           int
		want             int
	}{
		// Paper's X with 8-byte entries and 10 procs: 256KB/(10*8) = 3276.
		{DefaultBufferBytes, 10, 8, 1, 1 << 20, 3276},
		// Factor 0.004 of that, floor'd: 13.
		{DefaultBufferBytes, 10, 8, 0.004, 1 << 20, 13},
		// Clamped to local size.
		{DefaultBufferBytes, 2, 8, 1, 100, 100},
		// Never below 1 sample.
		{DefaultBufferBytes, 1 << 20, 8, 0.0001, 50, 1},
		// Empty local data sends nothing.
		{DefaultBufferBytes, 4, 8, 1, 0, 0},
		// Degenerate p and entry sizes are clamped.
		{DefaultBufferBytes, 0, 0, 1, 10, 10},
	}
	for _, c := range cases {
		got := Count(c.buffer, c.p, c.entry, c.factor, c.localN)
		if got != c.want {
			t.Errorf("Count(%d,%d,%d,%v,%d) = %d, want %d",
				c.buffer, c.p, c.entry, c.factor, c.localN, got, c.want)
		}
	}
}

func TestRegular(t *testing.T) {
	sorted := make([]uint64, 100)
	for i := range sorted {
		sorted[i] = uint64(i)
	}
	s := Regular(sorted, 9)
	if len(s) != 9 {
		t.Fatalf("got %d samples, want 9", len(s))
	}
	// Regular positions: (i+1)*100/10 = 10,20,...,90.
	for i, v := range s {
		if v != uint64((i+1)*10) {
			t.Errorf("sample[%d] = %d, want %d", i, v, (i+1)*10)
		}
	}
	if !lsort.IsSorted(s, lessU64) {
		t.Error("samples not sorted")
	}
	if got := Regular(sorted, 0); got != nil {
		t.Error("zero samples should return nil")
	}
	if got := Regular([]uint64{}, 5); got != nil {
		t.Error("empty input should return nil")
	}
	if got := Regular(sorted[:3], 10); len(got) != 3 {
		t.Errorf("oversampling should clamp to n, got %d", len(got))
	}
}

func TestSplittersFromSorted(t *testing.T) {
	pool := make([]uint64, 1000)
	for i := range pool {
		pool[i] = uint64(i)
	}
	sp := SplittersFromSorted(pool, 4)
	if len(sp) != 3 {
		t.Fatalf("got %d splitters, want 3", len(sp))
	}
	want := []uint64{250, 500, 750}
	for i := range want {
		if sp[i] != want[i] {
			t.Errorf("splitter[%d] = %d, want %d", i, sp[i], want[i])
		}
	}
	if got := SplittersFromSorted(pool, 1); got != nil {
		t.Error("p=1 needs no splitters")
	}
	if got := SplittersFromSorted([]uint64{}, 4); got != nil {
		t.Error("no samples -> no splitters")
	}
}

func TestSelectSplitters(t *testing.T) {
	runs := [][]uint64{
		{10, 20, 30},
		{5, 15, 25},
		{12, 22, 32},
	}
	sp := SelectSplitters(runs, 3, lessU64)
	if len(sp) != 2 {
		t.Fatalf("got %d splitters, want 2", len(sp))
	}
	if !lsort.IsSorted(sp, lessU64) {
		t.Error("splitters not sorted")
	}
	// Merged pool: 5 10 12 15 20 22 25 30 32; positions 3 and 6 -> 15, 25.
	if sp[0] != 15 || sp[1] != 25 {
		t.Errorf("splitters = %v, want [15 25]", sp)
	}
}

func rangesCover(t *testing.T, r Ranges, n int) {
	t.Helper()
	if r.Bounds[0] != 0 {
		t.Fatalf("first bound = %d, want 0", r.Bounds[0])
	}
	if r.Bounds[len(r.Bounds)-1] != n {
		t.Fatalf("last bound = %d, want %d", r.Bounds[len(r.Bounds)-1], n)
	}
	for i := 1; i < len(r.Bounds); i++ {
		if r.Bounds[i] < r.Bounds[i-1] {
			t.Fatalf("bounds not monotone at %d: %v", i, r.Bounds)
		}
	}
}

func TestPartitionDistinctSplitters(t *testing.T) {
	data := make([]uint64, 100)
	for i := range data {
		data[i] = uint64(i)
	}
	splitters := []uint64{24, 49, 74}
	for _, inv := range []bool{false, true} {
		r := Partition(data, splitters, lessU64, greaterU64, belowU64, inv)
		rangesCover(t, r, 100)
		counts := r.Counts()
		want := []int{25, 25, 25, 25}
		for i := range want {
			if counts[i] != want[i] {
				t.Errorf("investigate=%v: counts = %v, want %v", inv, counts, want)
			}
		}
	}
}

func TestPartitionRespectsSplitterSemantics(t *testing.T) {
	// Keys equal to a distinct splitter go to that splitter's bucket.
	data := []uint64{1, 2, 2, 2, 3, 4}
	r := Partition(data, []uint64{2, 3}, lessU64, greaterU64, belowU64, true)
	counts := r.Counts()
	// Bucket 0: <=2 -> {1,2,2,2}; bucket 1: (2,3] -> {3}; bucket 2: {4}.
	if counts[0] != 4 || counts[1] != 1 || counts[2] != 1 {
		t.Errorf("counts = %v, want [4 1 1]", counts)
	}
}

func TestPartitionDuplicatedSplittersNaive(t *testing.T) {
	// All data equal to the duplicated splitter value: naive search sends
	// everything to the first destination (Figure 3b).
	data := make([]uint64, 80)
	for i := range data {
		data[i] = 42
	}
	splitters := []uint64{42, 42, 42} // p = 4
	r := Partition(data, splitters, lessU64, greaterU64, belowU64, false)
	rangesCover(t, r, 80)
	counts := r.Counts()
	if counts[0] != 80 || counts[1] != 0 || counts[2] != 0 || counts[3] != 0 {
		t.Errorf("naive counts = %v, want [80 0 0 0]", counts)
	}
}

func TestPartitionDuplicatedSplittersInvestigator(t *testing.T) {
	// Same input with the investigator: the range is divided equally
	// among the duplicated splitters' destinations (Figure 3c).
	data := make([]uint64, 80)
	for i := range data {
		data[i] = 42
	}
	splitters := []uint64{42, 42, 42}
	r := Partition(data, splitters, lessU64, greaterU64, belowU64, true)
	rangesCover(t, r, 80)
	counts := r.Counts()
	// Destinations 0,1,2 share the run equally (80/3 with integer
	// division); destination 3 gets the remainder above the splitter
	// value (nothing).
	want := []int{26, 27, 27, 0}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("investigator counts = %v, want %v", counts, want)
		}
	}
}

func TestPartitionMixedDuplicates(t *testing.T) {
	// Data: 10 ones, 40 fives, 10 nines. Splitters 5,5,9 (p=4).
	data := make([]uint64, 0, 60)
	for i := 0; i < 10; i++ {
		data = append(data, 1)
	}
	for i := 0; i < 40; i++ {
		data = append(data, 5)
	}
	for i := 0; i < 10; i++ {
		data = append(data, 9)
	}
	r := Partition(data, []uint64{5, 5, 9}, lessU64, greaterU64, belowU64, true)
	rangesCover(t, r, 60)
	counts := r.Counts()
	// Group {5,5}: the ones sort strictly below the duplicated value, so
	// they stay with the group's first destination (they must precede
	// every five globally); only the 40 fives divide equally -> 10+20, 20.
	// Distinct splitter 9: (5,9] -> 10. Last bucket: nothing above 9.
	want := []int{30, 20, 10, 0}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("counts = %v, want %v", counts, want)
		}
	}
}

func TestPartitionEmptyData(t *testing.T) {
	r := Partition([]uint64{}, []uint64{1, 2}, lessU64, greaterU64, belowU64, true)
	rangesCover(t, r, 0)
	for _, c := range r.Counts() {
		if c != 0 {
			t.Fatalf("counts on empty data = %v", r.Counts())
		}
	}
}

func TestPartitionNoSplitters(t *testing.T) {
	data := []uint64{3, 1, 2}
	r := Partition(data, nil, lessU64, greaterU64, belowU64, true)
	if r.NumDests() != 1 {
		t.Fatalf("p=1 should yield a single range")
	}
	if lo, hi := r.Range(0); lo != 0 || hi != 3 {
		t.Fatalf("single range = [%d,%d), want [0,3)", lo, hi)
	}
}

// The paper's Table II scenario: many processors, duplicate-heavy data,
// aggregated loads must be near-equal with the investigator and grossly
// unbalanced without it.
func TestInvestigatorBalancesSkewedData(t *testing.T) {
	const p = 10
	const perProc = 20000
	var locals [][]uint64
	var samplePool []uint64
	for proc := 0; proc < p; proc++ {
		keys := dist.Gen{Kind: dist.RightSkewed, Seed: uint64(100 + proc), Domain: 64}.Keys(perProc)
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		locals = append(locals, keys)
		samplePool = append(samplePool, Regular(keys, 3276)...)
	}
	sort.Slice(samplePool, func(i, j int) bool { return samplePool[i] < samplePool[j] })
	splitters := SplittersFromSorted(samplePool, p)

	gather := func(inv bool) (int, int) {
		var all []Ranges
		for _, l := range locals {
			all = append(all, Partition(l, splitters, lessU64, greaterU64, belowU64, inv))
		}
		return MaxMinCounts(all)
	}

	maxInv, minInv := gather(true)
	maxNaive, _ := gather(false)

	ideal := perProc
	if maxInv > ideal*115/100 {
		t.Errorf("investigator max load %d exceeds 1.15x ideal %d", maxInv, ideal)
	}
	if minInv < ideal*85/100 {
		t.Errorf("investigator min load %d below 0.85x ideal %d", minInv, ideal)
	}
	if maxNaive < 2*ideal {
		t.Errorf("naive partitioning should be grossly unbalanced on skewed data, max=%d ideal=%d",
			maxNaive, ideal)
	}
}

// Property: for arbitrary sorted data and sorted splitters, Partition
// produces monotone bounds covering the input, with and without the
// investigator, and the investigator never worsens the largest bucket.
func TestPropertyPartitionWellFormed(t *testing.T) {
	f := func(raw []uint64, sraw []uint64) bool {
		if len(sraw) > 16 {
			sraw = sraw[:16]
		}
		data := append([]uint64(nil), raw...)
		sort.Slice(data, func(i, j int) bool { return data[i] < data[j] })
		splitters := append([]uint64(nil), sraw...)
		sort.Slice(splitters, func(i, j int) bool { return splitters[i] < splitters[j] })
		for _, inv := range []bool{false, true} {
			r := Partition(data, splitters, lessU64, greaterU64, belowU64, inv)
			if r.Bounds[0] != 0 || r.Bounds[len(r.Bounds)-1] != len(data) {
				return false
			}
			for i := 1; i < len(r.Bounds); i++ {
				if r.Bounds[i] < r.Bounds[i-1] {
					return false
				}
			}
			// Range contents must respect splitter order: everything in
			// bucket d is <= splitters[d] (when d < p-1), and nothing in
			// bucket d sorts strictly below splitters[d-1] — the cross-
			// processor global-order invariant the investigator must keep
			// even when it divides duplicated-splitter groups.
			for d := 0; d < r.NumDests(); d++ {
				lo, hi := r.Range(d)
				for i := lo; i < hi; i++ {
					if d < r.NumDests()-1 && data[i] > splitters[d] {
						return false
					}
					if d > 0 && data[i] < splitters[d-1] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMinCounts(t *testing.T) {
	r1 := Ranges{Bounds: []int{0, 10, 30}} // loads 10, 20
	r2 := Ranges{Bounds: []int{0, 5, 10}}  // loads 5, 5
	maxC, minC := MaxMinCounts([]Ranges{r1, r2})
	if maxC != 25 || minC != 15 {
		t.Errorf("MaxMinCounts = (%d,%d), want (25,15)", maxC, minC)
	}
	if maxC, minC = MaxMinCounts(nil); maxC != 0 || minC != 0 {
		t.Error("empty input should report zeros")
	}
}
