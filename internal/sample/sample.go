// Package sample implements the sampling, splitter-selection and
// range-partitioning steps of the paper's distributed sample sort
// (steps 2-4 of §IV), including the buffer-sized sample count rule of
// §IV-B and the investigator of Figure 3 that keeps partitions balanced
// when splitters are duplicated.
package sample

import "pgxsort/internal/lsort"

// DefaultBufferBytes is PGX.D's read-buffer size: each processor sends
// exactly one buffer (256KB / p) of samples to the master (§IV-B).
const DefaultBufferBytes = 256 * 1024

// Count computes the number of samples a single processor sends to the
// master: factor * bufferBytes / (p * entrySize), the paper's X when
// factor == 1 (Figure 9 sweeps factor over 0.004..1.4). The count is
// clamped to [1, localN].
func Count(bufferBytes, p, entrySize int, factor float64, localN int) int {
	if localN <= 0 {
		return 0
	}
	if p < 1 {
		p = 1
	}
	if entrySize < 1 {
		entrySize = 1
	}
	c := int(factor * float64(bufferBytes) / float64(p*entrySize))
	if c < 1 {
		c = 1
	}
	if c > localN {
		c = localN
	}
	return c
}

// Regular picks s regularly spaced samples from sorted local data
// (positions (i+1)*n/(s+1), the classic regular-sampling rule from
// parallel sorting by regular sampling). The returned slice is sorted
// because the input is.
func Regular[E any](sorted []E, s int) []E {
	n := len(sorted)
	if n == 0 || s <= 0 {
		return nil
	}
	if s > n {
		s = n
	}
	out := make([]E, s)
	for i := 0; i < s; i++ {
		out[i] = sorted[(i+1)*n/(s+1)]
	}
	return out
}

// SelectSplitters merges the per-processor sample runs (each sorted) and
// picks p-1 final splitters at regular positions, exactly what the master
// does in step 3. The merge uses the balanced merging handler so the
// master-side cost matches the paper's implementation.
func SelectSplitters[E any](sampleRuns [][]E, p int, less func(a, b E) bool) []E {
	merged := lsort.MergeRuns(sampleRuns, less, false)
	return SplittersFromSorted(merged, p)
}

// SplittersFromSorted picks p-1 splitters at regular positions from an
// already sorted pool of samples. With fewer samples than p-1, samples are
// reused (duplicated splitters), which the investigator then handles.
func SplittersFromSorted[E any](sorted []E, p int) []E {
	if p <= 1 || len(sorted) == 0 {
		return nil
	}
	out := make([]E, p-1)
	n := len(sorted)
	for j := 1; j < p; j++ {
		idx := j * n / p
		if idx >= n {
			idx = n - 1
		}
		out[j-1] = sorted[idx]
	}
	return out
}
