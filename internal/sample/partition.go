package sample

import "pgxsort/internal/lsort"

// Ranges describes how one processor's sorted local data is cut into p
// contiguous ranges, one per destination processor: destination d receives
// data[Bounds[d]:Bounds[d+1]]. Because the local data is sorted and the
// ranges are contiguous and ordered, any such cut preserves global order.
type Ranges struct {
	Bounds []int // length p+1; Bounds[0]=0, Bounds[p]=len(data)
}

// Range returns the half-open local interval destined for processor d.
func (r Ranges) Range(d int) (lo, hi int) { return r.Bounds[d], r.Bounds[d+1] }

// Counts returns the number of elements destined for each processor.
func (r Ranges) Counts() []int {
	out := make([]int, len(r.Bounds)-1)
	for i := range out {
		out[i] = r.Bounds[i+1] - r.Bounds[i]
	}
	return out
}

// NumDests returns the number of destination processors.
func (r Ranges) NumDests() int { return len(r.Bounds) - 1 }

// Partition implements step 4 of the pipeline: binary search each splitter
// on the locally sorted data to find the range of data to send to each
// destination (Figure 3a).
//
// data holds locally sorted elements (e.g. entries carrying provenance)
// while splitters hold bare keys; lessSS orders splitters against each
// other, elemGreaterS reports whether an element's key is strictly greater
// than a splitter, and elemBelowS whether it is strictly smaller.
//
// When investigate is true the paper's investigator is applied (Figure 3c):
// binary search runs once per *distinct* splitter value, and the
// duplicates of that value are divided equally among the group's g
// destinations instead of all landing on the first one (Figure 3b).
// Elements strictly below the duplicated value stay with the group's first
// destination — they must sort before every duplicate, and on this
// processor only the first destination of the group precedes them. (An
// earlier version divided the whole range below the value, which let keys
// smaller than the duplicate land on a later destination than another
// processor's duplicates, breaking global order across processors.) This
// is what keeps the workload balanced on datasets with many duplicated
// entries without reordering them.
func Partition[E, S any](data []E, splitters []S, lessSS func(a, b S) bool, elemGreaterS func(e E, s S) bool, elemBelowS func(e E, s S) bool, investigate bool) Ranges {
	p := len(splitters) + 1
	bounds := make([]int, p+1)
	bounds[p] = len(data)
	eq := func(a, b S) bool { return !lessSS(a, b) && !lessSS(b, a) }

	j := 0
	prev := 0
	for j < p-1 {
		// Extend the group of splitters equal to splitters[j].
		group := j
		for group+1 < p-1 && eq(splitters[group+1], splitters[j]) {
			group++
		}
		g := group - j + 1
		// One binary search per distinct splitter value: the end of the
		// data destined for the whole group is the first element greater
		// than the splitter.
		hi := lsort.UpperBound(data, splitters[j], elemGreaterS)
		if hi < prev {
			hi = prev // splitters must be non-decreasing; guard anyway
		}
		if g == 1 || !investigate {
			// Naive assignment: everything up to hi goes to the first
			// destination of the group, later group members get nothing.
			bounds[j+1] = hi
			for t := 2; t <= g; t++ {
				bounds[j+t] = hi
			}
		} else {
			// Investigator: the duplicates of the splitter value — the
			// elements in [lo, hi) — divide equally among the group's g
			// destinations; the elements of [prev, lo), strictly below the
			// value, stay with the first destination they sort before the
			// duplicates on.
			lo := lsort.LowerBound(data, splitters[j], elemBelowS)
			if lo < prev {
				lo = prev
			}
			if lo > hi {
				lo = hi
			}
			span := hi - lo
			for t := 1; t <= g; t++ {
				bounds[j+t] = lo + t*span/g
			}
		}
		prev = bounds[group+1]
		j = group + 1
	}
	// Destination p-1 implicitly receives [prev, n).
	return Ranges{Bounds: bounds}
}

// MaxMinCounts reports the largest and smallest destination loads implied
// by summing each processor's ranges; used by the Figure 10 harness and by
// tests asserting investigator balance.
func MaxMinCounts(all []Ranges) (maxCount, minCount int) {
	if len(all) == 0 {
		return 0, 0
	}
	p := all[0].NumDests()
	totals := make([]int, p)
	for _, r := range all {
		for d := 0; d < p; d++ {
			lo, hi := r.Range(d)
			totals[d] += hi - lo
		}
	}
	maxCount, minCount = totals[0], totals[0]
	for _, t := range totals[1:] {
		if t > maxCount {
			maxCount = t
		}
		if t < minCount {
			minCount = t
		}
	}
	return maxCount, minCount
}
