package keyio

import (
	"encoding/binary"
	"errors"
	"io"
	"math"
)

// This file is the streaming half of the canonical encoding: incremental
// scanners that parse keys out of a byte window as it fills, and a
// StreamDecoder that drives them over an io.Reader. pgxsortd's ingress
// uses it to parse request bodies as they arrive instead of buffering
// whole datasets with io.ReadAll, so an upload's resident footprint is
// one read buffer, not the dataset.

// DefaultStreamBuf is the read granularity of a StreamDecoder: large
// enough to amortize syscalls, small enough that a stalled upload pins
// only kilobytes.
const DefaultStreamBuf = 64 << 10

// ErrTruncated reports a canonical key stream that ended mid-key (a
// partial 8-byte word, or a string record cut inside its length prefix
// or body).
var ErrTruncated = errors.New("keyio: truncated key stream")

// ScanFunc incrementally parses canonical key bytes: it appends every
// complete key b holds to dst and reports how many bytes it consumed.
// An incomplete trailing key is left unconsumed for the next call, so a
// scanner never needs more than one key of lookahead.
type ScanFunc[K any] func(b []byte, dst []K) ([]K, int)

// ScanUint64s is the ScanFunc for the canonical uint64 format
// (little-endian 8-byte words).
func ScanUint64s(b []byte, dst []uint64) ([]uint64, int) {
	n := len(b) / 8
	for i := 0; i < n; i++ {
		dst = append(dst, binary.LittleEndian.Uint64(b[8*i:]))
	}
	return dst, 8 * n
}

// ScanFloat64s is the ScanFunc for the canonical float64 format
// (little-endian IEEE-754 bit patterns, NaN and -0.0 preserved).
func ScanFloat64s(b []byte, dst []float64) ([]float64, int) {
	n := len(b) / 8
	for i := 0; i < n; i++ {
		dst = append(dst, math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return dst, 8 * n
}

// ScanStrings is the ScanFunc for the canonical string format
// (uint32-LE length prefix, then raw bytes). A record whose body has not
// fully arrived is left unconsumed.
func ScanStrings(b []byte, dst []string) ([]string, int) {
	off := 0
	for {
		if len(b)-off < 4 {
			return dst, off
		}
		n := int(binary.LittleEndian.Uint32(b[off:]))
		if len(b)-off-4 < n {
			return dst, off
		}
		dst = append(dst, string(b[off+4:off+4+n]))
		off += 4 + n
	}
}

// StreamDecoder pulls canonical key bytes from r and yields keys in
// batches, holding at most one read buffer (plus a partial trailing key)
// resident regardless of stream length.
type StreamDecoder[K any] struct {
	r    io.Reader
	scan ScanFunc[K]
	buf  []byte
	have int // unconsumed bytes at buf[:have]
	read int64
	eof  bool
}

// NewStreamDecoder builds a decoder over r using scan for the key
// domain. bufBytes sizes the read buffer (<= 0 means DefaultStreamBuf);
// the buffer grows only if a single key outgrows it (a long string
// record).
func NewStreamDecoder[K any](r io.Reader, scan ScanFunc[K], bufBytes int) *StreamDecoder[K] {
	if bufBytes <= 0 {
		bufBytes = DefaultStreamBuf
	}
	return &StreamDecoder[K]{r: r, scan: scan, buf: make([]byte, bufBytes)}
}

// Next reads from the stream until it completes at least one key,
// appending completed keys to dst. It returns the extended slice; the
// error is nil when keys were appended and more input may follow, io.EOF
// when the stream ended cleanly (possibly with final keys appended in
// the same call), ErrTruncated when it ended mid-key, or the reader's
// error verbatim.
func (d *StreamDecoder[K]) Next(dst []K) ([]K, error) {
	for {
		if d.eof {
			if d.have > 0 {
				return dst, ErrTruncated
			}
			return dst, io.EOF
		}
		if d.have == len(d.buf) {
			// The unconsumed tail fills the buffer: one key is larger
			// than the window. Double it so the scan can complete.
			d.buf = append(d.buf, make([]byte, len(d.buf))...)
		}
		n, err := d.r.Read(d.buf[d.have:])
		d.have += n
		d.read += int64(n)
		var consumed int
		dst, consumed = d.scan(d.buf[:d.have], dst)
		if consumed > 0 {
			d.have = copy(d.buf, d.buf[consumed:d.have])
		}
		switch {
		case errors.Is(err, io.EOF):
			d.eof = true
			if d.have > 0 {
				return dst, ErrTruncated
			}
			return dst, io.EOF
		case err != nil:
			return dst, err
		case consumed > 0:
			return dst, nil
		}
	}
}

// BytesRead reports the raw stream bytes consumed so far, including any
// unscanned tail.
func (d *StreamDecoder[K]) BytesRead() int64 { return d.read }
