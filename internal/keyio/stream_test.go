package keyio

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/iotest"
)

// drain pulls a decoder to EOF, collecting every key.
func drain[K any](t *testing.T, d *StreamDecoder[K]) []K {
	t.Helper()
	var out []K
	for {
		var err error
		out, err = d.Next(out)
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
	}
}

func TestStreamDecoderUint64(t *testing.T) {
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	raw := EncodeUint64s(keys)
	// One byte per Read exercises every partial-word carry path.
	d := NewStreamDecoder[uint64](iotest.OneByteReader(bytes.NewReader(raw)), ScanUint64s, 16)
	got := drain(t, d)
	if len(got) != len(keys) {
		t.Fatalf("decoded %d keys, want %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("key %d: got %d, want %d", i, got[i], keys[i])
		}
	}
	if d.BytesRead() != int64(len(raw)) {
		t.Fatalf("BytesRead %d, want %d", d.BytesRead(), len(raw))
	}
}

func TestStreamDecoderFloat64(t *testing.T) {
	keys := []float64{0, -0.0, 1.5, -2.25, 1e300}
	raw := EncodeFloat64s(keys)
	d := NewStreamDecoder[float64](bytes.NewReader(raw), ScanFloat64s, 0)
	got := drain(t, d)
	round := EncodeFloat64s(got)
	if !bytes.Equal(round, raw) {
		t.Fatal("float64 stream did not round-trip bit-exactly")
	}
}

func TestStreamDecoderStrings(t *testing.T) {
	keys := []string{"", "a", "bb", strings.Repeat("x", 300), "tail"}
	raw := EncodeStrings(keys)
	// A 16-byte buffer is smaller than the 300-byte record, forcing the
	// buffer-growth path.
	d := NewStreamDecoder[string](iotest.OneByteReader(bytes.NewReader(raw)), ScanStrings, 16)
	got := drain(t, d)
	if len(got) != len(keys) {
		t.Fatalf("decoded %d keys, want %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("key %d: got %q, want %q", i, got[i], keys[i])
		}
	}
}

func TestStreamDecoderTruncated(t *testing.T) {
	u64 := EncodeUint64s([]uint64{1, 2, 3})
	cases := map[string]struct {
		raw  []byte
		scan func(*testing.T, []byte) error
	}{
		"uint64 mid-word": {u64[:len(u64)-3], func(t *testing.T, raw []byte) error {
			d := NewStreamDecoder[uint64](bytes.NewReader(raw), ScanUint64s, 0)
			var err error
			var keys []uint64
			for err == nil {
				keys, err = d.Next(keys[:0])
			}
			return err
		}},
		"string mid-body": {EncodeStrings([]string{"abc", "defgh"})[:9], func(t *testing.T, raw []byte) error {
			d := NewStreamDecoder[string](bytes.NewReader(raw), ScanStrings, 0)
			var err error
			var keys []string
			for err == nil {
				keys, err = d.Next(keys[:0])
			}
			return err
		}},
	}
	for name, tc := range cases {
		if err := tc.scan(t, tc.raw); !errors.Is(err, ErrTruncated) {
			t.Fatalf("%s: got %v, want ErrTruncated", name, err)
		}
	}
}

func TestStreamDecoderReaderError(t *testing.T) {
	boom := errors.New("boom")
	raw := EncodeUint64s([]uint64{7, 8})
	r := io.MultiReader(bytes.NewReader(raw), iotest.ErrReader(boom))
	d := NewStreamDecoder[uint64](r, ScanUint64s, 0)
	var keys []uint64
	var err error
	for err == nil {
		keys, err = d.Next(keys)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the reader error", err)
	}
	if len(keys) != 2 {
		t.Fatalf("decoded %d keys before the error, want 2", len(keys))
	}
}
