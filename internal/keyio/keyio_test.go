package keyio

import (
	"bytes"
	"math"
	"testing"
)

func TestUint64RoundTrip(t *testing.T) {
	keys := []uint64{0, 1, math.MaxUint64, 42, 1 << 53}
	got, err := DecodeUint64s(EncodeUint64s(keys))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("got %d keys, want %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("key %d: got %d want %d", i, got[i], keys[i])
		}
	}
	if _, err := DecodeUint64s(make([]byte, 7)); err == nil {
		t.Error("decoding 7 bytes should fail")
	}
}

func TestFloat64RoundTripBitExact(t *testing.T) {
	keys := []float64{0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1), -1.5, 3.25}
	enc := EncodeFloat64s(keys)
	got, err := DecodeFloat64s(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if math.Float64bits(got[i]) != math.Float64bits(keys[i]) {
			t.Fatalf("key %d: bits %x != %x", i, math.Float64bits(got[i]), math.Float64bits(keys[i]))
		}
	}
	// -0.0 sorts strictly below +0.0 and NaN above +Inf in total order.
	if !F64TotalLess(math.Copysign(0, -1), 0) {
		t.Error("-0.0 should order below +0.0")
	}
	if !F64TotalLess(math.Inf(1), math.NaN()) {
		t.Error("+Inf should order below +NaN")
	}
}

func TestStringRoundTrip(t *testing.T) {
	keys := []string{"", "a", "héllo", "with\x00nul", string(bytes.Repeat([]byte{0xff}, 300))}
	got, err := DecodeStrings(EncodeStrings(keys))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("got %d keys, want %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("key %d mismatch", i)
		}
	}
	if got, err := DecodeStrings(nil); err != nil || len(got) != 0 {
		t.Errorf("empty input: got %v, %v", got, err)
	}
}

func TestStringDecodeTruncation(t *testing.T) {
	enc := EncodeStrings([]string{"hello"})
	if _, err := DecodeStrings(enc[:3]); err == nil {
		t.Error("truncated length prefix should fail")
	}
	if _, err := DecodeStrings(enc[:6]); err == nil {
		t.Error("truncated body should fail")
	}
}
