// Package keyio is the canonical byte encoding of key datasets, shared
// by the pgxsort CLI's key files and the pgxsortd service's request and
// response bodies. One format per key domain:
//
//	uint64  — little-endian 8-byte words (the historical key-file format)
//	float64 — little-endian IEEE-754 bit patterns (NaN and -0.0 included)
//	string  — length-prefixed records: uint32 LE length, then raw bytes
//
// Every format round-trips bit-exactly, and because both the CLI and the
// service encode through this package, a sort submitted over HTTP
// returns bytes identical to what `pgxsort sort` writes to disk for the
// same input.
package keyio

import (
	"encoding/binary"
	"fmt"
	"math"
)

// EncodeUint64s renders keys in the canonical uint64 format.
func EncodeUint64s(keys []uint64) []byte {
	out := make([]byte, 8*len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint64(out[8*i:], k)
	}
	return out
}

// DecodeUint64s parses the canonical uint64 format.
func DecodeUint64s(b []byte) ([]uint64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("keyio: %d bytes is not a multiple of 8", len(b))
	}
	keys := make([]uint64, len(b)/8)
	for i := range keys {
		keys[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return keys, nil
}

// EncodeFloat64s renders keys as little-endian IEEE-754 bit patterns.
func EncodeFloat64s(keys []float64) []byte {
	out := make([]byte, 8*len(keys))
	for i, k := range keys {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(k))
	}
	return out
}

// DecodeFloat64s parses the canonical float64 format bit-exactly.
func DecodeFloat64s(b []byte) ([]float64, error) {
	u, err := DecodeUint64s(b)
	if err != nil {
		return nil, err
	}
	keys := make([]float64, len(u))
	for i, v := range u {
		keys[i] = math.Float64frombits(v)
	}
	return keys, nil
}

// EncodeStrings renders keys as uint32-LE length-prefixed records.
func EncodeStrings(keys []string) []byte {
	n := 0
	for _, k := range keys {
		n += 4 + len(k)
	}
	out := make([]byte, 0, n)
	var lp [4]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint32(lp[:], uint32(len(k)))
		out = append(out, lp[:]...)
		out = append(out, k...)
	}
	return out
}

// DecodeStrings parses length-prefixed string records, rejecting
// truncated prefixes and truncated bodies.
func DecodeStrings(b []byte) ([]string, error) {
	var keys []string
	for off := 0; off < len(b); {
		if len(b)-off < 4 {
			return nil, fmt.Errorf("keyio: truncated length prefix at byte %d", off)
		}
		n := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if len(b)-off < n {
			return nil, fmt.Errorf("keyio: string record at byte %d wants %d bytes, %d remain", off-4, n, len(b)-off)
		}
		keys = append(keys, string(b[off:off+n]))
		off += n
	}
	return keys, nil
}

// F64Norm is the IEEE-754 total-order transform (identical to
// comm.F64Codec's normalization): the order the engine sorts float keys
// into, with NaN and -0.0 pinned deterministically.
func F64Norm(k float64) uint64 {
	bits := math.Float64bits(k)
	if bits>>63 == 1 {
		return ^bits
	}
	return bits | (1 << 63)
}

// F64TotalLess orders floats by the IEEE-754 total order — the order
// sorted float64 datasets come back in, NaNs included.
func F64TotalLess(a, b float64) bool { return F64Norm(a) < F64Norm(b) }
