package datamgr

import (
	"sync"
	"testing"

	"pgxsort/internal/alloc"
	"pgxsort/internal/comm"
)

func TestChunkLen(t *testing.T) {
	m := &Manager{BufferBytes: 256 * 1024}
	// 16-byte entries: 256KB buffer holds 16384.
	if got := m.ChunkLen(16); got != 16384 {
		t.Fatalf("ChunkLen(16) = %d, want 16384", got)
	}
	// Huge entries still move one at a time.
	if got := m.ChunkLen(1 << 30); got != 1 {
		t.Fatalf("ChunkLen(huge) = %d, want 1", got)
	}
	// Defaults apply for nil and zero-valued managers.
	var nilM *Manager
	if got := nilM.ChunkLen(16); got != DefaultBufferBytes/16 {
		t.Fatalf("nil manager ChunkLen = %d", got)
	}
	if got := (&Manager{}).ChunkLen(0); got != DefaultBufferBytes {
		t.Fatalf("zero entry size ChunkLen = %d", got)
	}
}

func TestChunksSplitsOnBufferSize(t *testing.T) {
	m := &Manager{BufferBytes: 64} // 4 entries of 16 bytes per chunk
	entries := make([]comm.Entry[uint64], 10)
	for i := range entries {
		entries[i].Key = uint64(i)
	}
	var sizes []int
	var seen []uint64
	var lasts []bool
	err := Chunks(m, entries, 8, func(chunk []comm.Entry[uint64], last bool) error {
		sizes = append(sizes, len(chunk))
		lasts = append(lasts, last)
		for _, e := range chunk {
			seen = append(seen, e.Key)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 4, 2}
	if len(sizes) != len(want) {
		t.Fatalf("chunk sizes = %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("chunk sizes = %v, want %v", sizes, want)
		}
	}
	for i, k := range seen {
		if k != uint64(i) {
			t.Fatalf("chunk order broken at %d", i)
		}
	}
	// Only the final chunk carries the run-complete marker.
	for i, last := range lasts {
		if want := i == len(lasts)-1; last != want {
			t.Fatalf("lasts = %v, final chunk alone must be last", lasts)
		}
	}
}

func TestChunksEmpty(t *testing.T) {
	m := &Manager{}
	called := false
	err := Chunks(m, nil, 8, func([]comm.Entry[uint64], bool) error {
		called = true
		return nil
	})
	if err != nil || called {
		t.Fatal("empty input should produce no chunks")
	}
}

func TestAssemblySingleSource(t *testing.T) {
	a := NewAssembly[uint64](nil, []int{3}, 16)
	chunk := []comm.Entry[uint64]{{Key: 1}, {Key: 2}, {Key: 3}}
	if err := a.Write(0, chunk); err != nil {
		t.Fatal(err)
	}
	select {
	case <-a.Done():
	default:
		t.Fatal("assembly not done after all entries written")
	}
	for i, e := range a.Entries() {
		if e.Key != uint64(i+1) {
			t.Fatalf("entries = %v", a.Entries())
		}
	}
}

func TestAssemblyOffsetsAndBounds(t *testing.T) {
	a := NewAssembly[uint64](nil, []int{2, 0, 3}, 16)
	bounds := a.Bounds()
	want := []int{0, 2, 2, 5}
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", bounds, want)
		}
	}
	// Source 2 writes before source 0; regions stay disjoint.
	if err := a.Write(2, []comm.Entry[uint64]{{Key: 30}, {Key: 31}, {Key: 32}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Write(0, []comm.Entry[uint64]{{Key: 10}, {Key: 11}}); err != nil {
		t.Fatal(err)
	}
	<-a.Done()
	got := a.Entries()
	wantKeys := []uint64{10, 11, 30, 31, 32}
	for i := range wantKeys {
		if got[i].Key != wantKeys[i] {
			t.Fatalf("assembled keys = %v, want %v", got, wantKeys)
		}
	}
}

func TestAssemblyIncrementalWrites(t *testing.T) {
	a := NewAssembly[uint64](nil, []int{4}, 16)
	a.Write(0, []comm.Entry[uint64]{{Key: 1}, {Key: 2}})
	select {
	case <-a.Done():
		t.Fatal("done too early")
	default:
	}
	a.Write(0, []comm.Entry[uint64]{{Key: 3}, {Key: 4}})
	<-a.Done()
	for i, e := range a.Entries() {
		if e.Key != uint64(i+1) {
			t.Fatalf("incremental assembly wrong at %d: %v", i, a.Entries())
		}
	}
}

func TestAssemblyConcurrentSources(t *testing.T) {
	const p = 8
	const per = 1000
	perSrc := make([]int, p)
	for i := range perSrc {
		perSrc[i] = per
	}
	a := NewAssembly[uint64](nil, perSrc, 16)
	var wg sync.WaitGroup
	for src := 0; src < p; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for lo := 0; lo < per; lo += 100 {
				chunk := make([]comm.Entry[uint64], 100)
				for i := range chunk {
					chunk[i] = comm.Entry[uint64]{Key: uint64(src*per + lo + i)}
				}
				if err := a.Write(src, chunk); err != nil {
					t.Errorf("write src %d: %v", src, err)
					return
				}
			}
		}(src)
	}
	wg.Wait()
	<-a.Done()
	for i, e := range a.Entries() {
		if e.Key != uint64(i) {
			t.Fatalf("assembled order wrong at %d: got %d", i, e.Key)
		}
	}
}

func TestAssemblyOverflowRejected(t *testing.T) {
	a := NewAssembly[uint64](nil, []int{2}, 16)
	if err := a.Write(0, make([]comm.Entry[uint64], 3)); err == nil {
		t.Fatal("overflow write accepted")
	}
	if err := a.Write(5, nil); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestAssemblyZeroExpected(t *testing.T) {
	a := NewAssembly[uint64](nil, []int{0, 0}, 16)
	select {
	case <-a.Done():
	default:
		t.Fatal("assembly with nothing expected should be done immediately")
	}
}

func TestAssemblyRunCompletionNotifies(t *testing.T) {
	// Sources: 0 expects 2 (completed across two writes), 1 expects 0
	// (complete at birth), 2 expects 1.
	a := NewAssembly[uint64](nil, []int{2, 0, 1}, 16)
	var fired []int
	a.OnRunComplete(func(src int) { fired = append(fired, src) })
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("registration fired %v, want just the zero-expect source 1", fired)
	}
	if !a.RunComplete(1) || a.RunComplete(0) || a.RunComplete(2) {
		t.Fatal("RunComplete state wrong after registration")
	}
	if err := a.Write(0, []comm.Entry[uint64]{{Key: 1}}); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 {
		t.Fatalf("partial write fired %v", fired)
	}
	if err := a.Write(2, []comm.Entry[uint64]{{Key: 9}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Write(0, []comm.Entry[uint64]{{Key: 2}}); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 0}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
	// Completed runs are readable through Run.
	if r := a.Run(0); len(r) != 2 || r[0].Key != 1 || r[1].Key != 2 {
		t.Fatalf("Run(0) = %v", r)
	}
	if r := a.Run(1); len(r) != 0 {
		t.Fatalf("Run(1) = %v, want empty", r)
	}
	<-a.Done()
}

func TestAssemblyLateRegistrationFiresCompleted(t *testing.T) {
	// Runs that completed before OnRunComplete was registered fire at
	// registration, exactly once each.
	a := NewAssembly[uint64](nil, []int{1, 1}, 16)
	if err := a.Write(1, []comm.Entry[uint64]{{Key: 5}}); err != nil {
		t.Fatal(err)
	}
	var fired []int
	a.OnRunComplete(func(src int) { fired = append(fired, src) })
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("late registration fired %v, want [1]", fired)
	}
	if err := a.Write(0, []comm.Entry[uint64]{{Key: 3}}); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[1] != 0 {
		t.Fatalf("fired = %v, want [1 0]", fired)
	}
}

func TestAssemblyTracksMemory(t *testing.T) {
	var tr alloc.Tracker
	m := &Manager{Tracker: &tr}
	a := NewAssembly[uint64](m, []int{10, 10}, 16)
	if tr.Live() != 320 {
		t.Fatalf("live = %d, want 320", tr.Live())
	}
	a.Release()
	if tr.Live() != 0 {
		t.Fatalf("live after release = %d, want 0", tr.Live())
	}
	if tr.Peak() != 320 {
		t.Fatalf("peak = %d, want 320", tr.Peak())
	}
	a.Release() // idempotent
	if tr.Live() != 0 {
		t.Fatal("double release corrupted tracker")
	}
}
