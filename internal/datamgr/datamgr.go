// Package datamgr is the analogue of PGX.D's data manager (§III): it owns
// the buffer-size policy that drives message chunking (the 256KB
// read/request buffer at the heart of the paper's sampling rule), and the
// receive-side assembly buffers that let a processor accept data chunks
// from every peer simultaneously by writing them at precomputed offsets
// (§IV-C).
package datamgr

import (
	"fmt"
	"sync"

	"pgxsort/internal/alloc"
	"pgxsort/internal/comm"
	"pgxsort/internal/failpoint"
)

// fpWrite is the failpoint site covering exchange assembly: it fires in
// Write, on the receiving node's goroutine, while peer chunks and the
// concurrent sender are in flight — the messiest spot to unwind from.
// Panic schedules are downgraded to errors here (HitNoPanic): an unwind
// past the exchange's concurrent sender would strand it.
const fpWrite = "datamgr/assembly-write"

// Manager holds one processor's buffer policy and memory tracker.
type Manager struct {
	// BufferBytes is the request/read buffer size; messages carrying more
	// than this many payload bytes are split. Defaults to
	// sample.DefaultBufferBytes (256KB) when zero.
	BufferBytes int
	// Tracker accounts temporary allocations (may be nil).
	Tracker *alloc.Tracker
}

// DefaultBufferBytes mirrors sample.DefaultBufferBytes without importing it.
const DefaultBufferBytes = 256 * 1024

func (m *Manager) bufferBytes() int {
	if m == nil || m.BufferBytes <= 0 {
		return DefaultBufferBytes
	}
	return m.BufferBytes
}

// ChunkLen returns how many entries of entryBytes each fit in one request
// buffer (at least 1).
func (m *Manager) ChunkLen(entryBytes int) int {
	if entryBytes < 1 {
		entryBytes = 1
	}
	n := m.bufferBytes() / entryBytes
	if n < 1 {
		n = 1
	}
	return n
}

// Chunks invokes fn for each buffer-sized chunk of entries, in order.
// It mirrors the request-buffer flush behaviour: a message goes out when
// the buffer fills or the remaining data ends (flush-on-complete). last is
// true on the final chunk, so senders can stamp a run-complete signal on
// it (comm.FlagRunComplete) for the receive-side streaming merger.
// Zero entries invoke fn not at all: an empty run has no final chunk, and
// receivers learn its completeness from the range metadata instead.
func Chunks[K any](m *Manager, entries []comm.Entry[K], keyBytes int, fn func(chunk []comm.Entry[K], last bool) error) error {
	if len(entries) == 0 {
		return nil
	}
	step := m.ChunkLen(keyBytes + 8)
	for lo := 0; lo < len(entries); lo += step {
		hi := lo + step
		if hi > len(entries) {
			hi = len(entries)
		}
		if err := fn(entries[lo:hi], hi == len(entries)); err != nil {
			return err
		}
	}
	return nil
}

// Assembly is a receive buffer for the all-to-all exchange. The range
// metadata broadcast tells the processor how many entries each source will
// send; Assembly precomputes one offset per source so chunks from
// different sources are written concurrently without coordination, and
// chunks from the same source (which arrive in FIFO order) advance a
// per-source cursor.
type Assembly[K any] struct {
	entries  []comm.Entry[K]
	offsets  []int // base offset per source
	cursor   []int // next write position per source (relative to base)
	expect   []int // entries expected per source
	gotMu    sync.Mutex
	missing  int
	signaled bool
	done     chan struct{}
	tracker  *alloc.Tracker
	size     int64

	// Run-completion notification state (all guarded by gotMu): runDone
	// marks sources whose region is fully written, notified marks sources
	// whose completion has been handed to onRun, and onRun is the handler
	// OnRunComplete registered. This is what lets a streaming merger start
	// consuming a peer's run while the rest of the exchange is still in
	// flight, instead of waiting on the whole-assembly Done barrier.
	runDone  []bool
	notified []bool
	onRun    func(src int)
}

// NewAssembly allocates an assembly buffer for perSrc[i] entries from each
// source i. entryBytes sizes the temporary-memory accounting.
func NewAssembly[K any](m *Manager, perSrc []int, entryBytes int) *Assembly[K] {
	return NewAssemblyBuf[K](m, perSrc, entryBytes, nil)
}

// NewAssemblyBuf is NewAssembly assembling into a caller-provided buffer
// (e.g. a recycled slab from an alloc.SlabPool) when its capacity covers
// the expected total; an undersized or nil buf falls back to a fresh
// allocation. The temporary-memory accounting is identical either way:
// the assembly is temporary while it is being filled and converts to
// resident result storage at Release, wherever the bytes came from.
func NewAssemblyBuf[K any](m *Manager, perSrc []int, entryBytes int, buf []comm.Entry[K]) *Assembly[K] {
	total := 0
	offsets := make([]int, len(perSrc)+1)
	for i, n := range perSrc {
		if n < 0 {
			panic(fmt.Sprintf("datamgr: negative expected count %d from source %d", n, i))
		}
		offsets[i] = total
		total += n
	}
	offsets[len(perSrc)] = total
	missing := 0
	for _, n := range perSrc {
		missing += n
	}
	if cap(buf) >= total {
		buf = buf[:total]
	} else {
		buf = make([]comm.Entry[K], total)
	}
	a := &Assembly[K]{
		entries:  buf,
		offsets:  offsets,
		cursor:   make([]int, len(perSrc)),
		expect:   append([]int(nil), perSrc...),
		missing:  missing,
		done:     make(chan struct{}),
		runDone:  make([]bool, len(perSrc)),
		notified: make([]bool, len(perSrc)),
	}
	for src, n := range perSrc {
		a.runDone[src] = n == 0 // nothing to wait for: complete at birth
	}
	if m != nil && m.Tracker != nil {
		a.tracker = m.Tracker
		a.size = int64(total) * int64(entryBytes)
		a.tracker.Alloc(a.size)
	}
	if missing == 0 {
		a.signaled = true
		close(a.done)
	}
	return a
}

// Write copies a chunk arriving from src into its region. Chunks from the
// same source must arrive in order (the transports guarantee per-pair
// FIFO); chunks from different sources may be written concurrently.
func (a *Assembly[K]) Write(src int, chunk []comm.Entry[K]) error {
	if err := failpoint.HitNoPanic(fpWrite); err != nil {
		return err
	}
	if src < 0 || src >= len(a.cursor) {
		return fmt.Errorf("datamgr: source %d out of range", src)
	}
	base := a.offsets[src]
	cur := a.cursor[src]
	if cur+len(chunk) > a.expect[src] {
		return fmt.Errorf("datamgr: source %d overflows its region: %d+%d > %d",
			src, cur, len(chunk), a.expect[src])
	}
	copy(a.entries[base+cur:], chunk)
	a.cursor[src] = cur + len(chunk)
	complete := a.cursor[src] == a.expect[src]

	a.gotMu.Lock()
	a.missing -= len(chunk)
	finished := a.missing == 0 && !a.signaled
	if finished {
		a.signaled = true
	}
	var notify func(src int)
	if complete {
		a.runDone[src] = true
		if a.onRun != nil && !a.notified[src] {
			a.notified[src] = true
			notify = a.onRun
		}
	}
	a.gotMu.Unlock()
	if notify != nil {
		notify(src)
	}
	if finished {
		close(a.done)
	}
	return nil
}

// OnRunComplete registers fn to be invoked exactly once per source as soon
// as that source's run is fully assembled. Sources that are already
// complete — including those expecting zero entries — fire immediately on
// the registering goroutine, in source order; later completions fire on
// the goroutine whose Write finished the run. Register before writing (the
// engine registers right after constructing the assembly); only one
// handler may be registered per assembly.
func (a *Assembly[K]) OnRunComplete(fn func(src int)) {
	a.gotMu.Lock()
	a.onRun = fn
	var fire []int
	for src := range a.expect {
		if a.runDone[src] && !a.notified[src] {
			a.notified[src] = true
			fire = append(fire, src)
		}
	}
	a.gotMu.Unlock()
	for _, src := range fire {
		fn(src)
	}
}

// RunComplete reports whether source src's region is fully written.
func (a *Assembly[K]) RunComplete(src int) bool {
	if src < 0 || src >= len(a.runDone) {
		return false
	}
	a.gotMu.Lock()
	defer a.gotMu.Unlock()
	return a.runDone[src]
}

// Run returns source src's region of the assembled buffer — a sorted run
// once RunComplete(src) is true.
func (a *Assembly[K]) Run(src int) []comm.Entry[K] {
	return a.entries[a.offsets[src]:a.offsets[src+1]]
}

// Done is closed once every expected entry has been written.
func (a *Assembly[K]) Done() <-chan struct{} { return a.done }

// Entries exposes the assembled buffer. Each source's region is a sorted
// run; Bounds gives the run boundaries for the final balanced merge.
func (a *Assembly[K]) Entries() []comm.Entry[K] { return a.entries }

// Bounds returns the per-source run boundaries within Entries, in the
// layout MergeAdjacentRuns expects.
func (a *Assembly[K]) Bounds() []int { return a.offsets }

// Release returns the assembly's temporary memory to the tracker.
// The entries buffer itself remains usable by the caller (it becomes the
// node's result storage, i.e. resident rather than temporary memory).
func (a *Assembly[K]) Release() {
	if a.tracker != nil {
		a.tracker.Free(a.size)
		a.tracker = nil
	}
}
