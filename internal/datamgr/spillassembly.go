package datamgr

import (
	"fmt"
	"path/filepath"
	"sync"

	"pgxsort/internal/comm"
	"pgxsort/internal/failpoint"
	"pgxsort/internal/spill"
)

// SpillAssembly is Assembly's out-of-core sibling: instead of landing
// peer chunks in one resident buffer at precomputed offsets, each
// source's run streams straight into its own spill.Writer block file.
// The contract is otherwise identical — per-source chunks arrive FIFO
// and append in order, different sources may write concurrently (each
// owns its writer), OnRunComplete fires the moment a source's expected
// count lands, and Done closes when everything has. The final merge then
// consumes spill.RunReader cursors instead of in-memory regions.
type SpillAssembly[K any] struct {
	codec   comm.Codec[K]
	writers []*spill.Writer[K] // nil for sources expecting zero entries
	expect  []int
	cursor  []int

	gotMu    sync.Mutex
	missing  int
	signaled bool
	done     chan struct{}
	runDone  []bool
	notified []bool
	onRun    func(src int)
	closed   bool
}

// NewSpillAssembly creates one run file per non-empty source under dir
// (dir must exist; files are named run-<src>.spill). Unlike NewAssembly
// there is no tracker accounting for the assembled entries — the entire
// point is that they are not resident.
func NewSpillAssembly[K any](m *Manager, perSrc []int, c comm.Codec[K], dir string) (*SpillAssembly[K], error) {
	a := &SpillAssembly[K]{
		codec:    c,
		writers:  make([]*spill.Writer[K], len(perSrc)),
		expect:   append([]int(nil), perSrc...),
		cursor:   make([]int, len(perSrc)),
		done:     make(chan struct{}),
		runDone:  make([]bool, len(perSrc)),
		notified: make([]bool, len(perSrc)),
	}
	for src, n := range perSrc {
		if n < 0 {
			a.Close()
			return nil, fmt.Errorf("datamgr: negative expected count %d from source %d", n, src)
		}
		a.missing += n
		a.runDone[src] = n == 0
		if n == 0 {
			continue
		}
		w, err := spill.NewWriter(filepath.Join(dir, fmt.Sprintf("run-%d.spill", src)), c, 0)
		if err != nil {
			a.Close()
			return nil, err
		}
		a.writers[src] = w
	}
	if a.missing == 0 {
		a.signaled = true
		close(a.done)
	}
	return a, nil
}

// Write appends a chunk arriving from src to its run file, finishing the
// file when the source's expected count lands. Same concurrency contract
// as Assembly.Write: per-source FIFO, cross-source concurrent.
func (a *SpillAssembly[K]) Write(src int, chunk []comm.Entry[K]) error {
	if err := failpoint.HitNoPanic(fpWrite); err != nil {
		return err
	}
	if src < 0 || src >= len(a.cursor) {
		return fmt.Errorf("datamgr: source %d out of range", src)
	}
	cur := a.cursor[src]
	if cur+len(chunk) > a.expect[src] {
		return fmt.Errorf("datamgr: source %d overflows its region: %d+%d > %d",
			src, cur, len(chunk), a.expect[src])
	}
	if a.writers[src] == nil {
		// A zero-count source has no run file; the only chunk that can
		// reach it is an empty one (a node's own empty range, say), and
		// its run was already marked done at construction.
		return nil
	}
	if err := a.writers[src].Append(chunk); err != nil {
		return err
	}
	a.cursor[src] = cur + len(chunk)
	complete := a.cursor[src] == a.expect[src]
	if complete {
		// Seal the run so readers can open it the moment the merge
		// wants it; a Finish failure surfaces like a write failure.
		if err := a.writers[src].Finish(); err != nil {
			return err
		}
	}

	a.gotMu.Lock()
	a.missing -= len(chunk)
	finished := a.missing == 0 && !a.signaled
	if finished {
		a.signaled = true
	}
	var notify func(src int)
	if complete {
		a.runDone[src] = true
		if a.onRun != nil && !a.notified[src] {
			a.notified[src] = true
			notify = a.onRun
		}
	}
	a.gotMu.Unlock()
	if notify != nil {
		notify(src)
	}
	if finished {
		close(a.done)
	}
	return nil
}

// OnRunComplete mirrors Assembly.OnRunComplete: fn fires exactly once
// per source as soon as its run file is sealed (immediately for sources
// expecting zero entries).
func (a *SpillAssembly[K]) OnRunComplete(fn func(src int)) {
	a.gotMu.Lock()
	a.onRun = fn
	var fire []int
	for src := range a.expect {
		if a.runDone[src] && !a.notified[src] {
			a.notified[src] = true
			fire = append(fire, src)
		}
	}
	a.gotMu.Unlock()
	for _, src := range fire {
		fn(src)
	}
}

// RunComplete reports whether source src's run file is sealed.
func (a *SpillAssembly[K]) RunComplete(src int) bool {
	if src < 0 || src >= len(a.runDone) {
		return false
	}
	a.gotMu.Lock()
	defer a.gotMu.Unlock()
	return a.runDone[src]
}

// Done is closed once every expected entry has been written.
func (a *SpillAssembly[K]) Done() <-chan struct{} { return a.done }

// Total reports the summed expected entry count across sources.
func (a *SpillAssembly[K]) Total() int {
	total := 0
	for _, n := range a.expect {
		total += n
	}
	return total
}

// SpillBytes reports the bytes written across all run files so far.
func (a *SpillAssembly[K]) SpillBytes() int64 {
	var total int64
	for _, w := range a.writers {
		if w != nil {
			total += w.BytesWritten()
		}
	}
	return total
}

// Readers opens a RunReader per source, in source order (nil for empty
// sources), each configured with the caller's slab pool and tracker.
// Callers own the readers and must Close every non-nil one.
func (a *SpillAssembly[K]) Readers(opts spill.ReaderOpts[K]) ([]*spill.RunReader[K], error) {
	readers := make([]*spill.RunReader[K], len(a.writers))
	for src, w := range a.writers {
		if w == nil {
			continue
		}
		r, err := spill.NewRunReader(w.Path(), a.codec, opts)
		if err != nil {
			for _, open := range readers {
				if open != nil {
					open.Close()
				}
			}
			return nil, err
		}
		readers[src] = r
	}
	return readers, nil
}

// Close removes every run file. Safe to call multiple times and at any
// point — unsealed writers abort, sealed ones just lose their file. Call
// after the merge has consumed the readers (or on any abort path).
func (a *SpillAssembly[K]) Close() {
	if a.closed {
		return
	}
	a.closed = true
	for _, w := range a.writers {
		if w != nil {
			w.Abort()
		}
	}
}
