package datamgr

import (
	"os"
	"sort"
	"sync"
	"testing"

	"pgxsort/internal/comm"
	"pgxsort/internal/spill"
)

// TestSpillAssemblyMatchesAssembly: the same chunk traffic lands in a
// resident Assembly and a SpillAssembly; every source's run must read
// back byte-identical, with completion notifications firing once each.
func TestSpillAssemblyMatchesAssembly(t *testing.T) {
	m := &Manager{}
	perSrc := []int{1000, 0, 2500, 7}
	resident := NewAssembly[uint64](m, perSrc, 16)
	spilled, err := NewSpillAssembly(m, perSrc, comm.U64Codec{}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer spilled.Close()

	var mu sync.Mutex
	completions := map[int]int{}
	spilled.OnRunComplete(func(src int) {
		mu.Lock()
		completions[src]++
		mu.Unlock()
	})

	var wg sync.WaitGroup
	for src, n := range perSrc {
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(src, n int) {
			defer wg.Done()
			sent := 0
			for sent < n {
				step := 300
				if step > n-sent {
					step = n - sent
				}
				chunk := make([]comm.Entry[uint64], step)
				for i := range chunk {
					chunk[i] = comm.Entry[uint64]{Key: uint64(sent + i), Proc: uint32(src), Index: uint32(sent + i)}
				}
				if err := resident.Write(src, chunk); err != nil {
					t.Error(err)
					return
				}
				if err := spilled.Write(src, chunk); err != nil {
					t.Error(err)
					return
				}
				sent += step
			}
		}(src, n)
	}
	wg.Wait()
	select {
	case <-spilled.Done():
	default:
		t.Fatal("spilled assembly not done after all writes")
	}
	if spilled.Total() != 3507 {
		t.Fatalf("Total = %d", spilled.Total())
	}
	if spilled.SpillBytes() <= 0 {
		t.Fatalf("SpillBytes = %d", spilled.SpillBytes())
	}

	mu.Lock()
	for src, n := range perSrc {
		want := 1
		if completions[src] != want {
			t.Fatalf("source %d completed %d times (expect %d, n=%d)", src, completions[src], want, n)
		}
	}
	mu.Unlock()

	readers, err := spilled.Readers(spill.ReaderOpts[uint64]{})
	if err != nil {
		t.Fatal(err)
	}
	for src, r := range readers {
		want := resident.Run(src)
		if r == nil {
			if len(want) != 0 {
				t.Fatalf("source %d: no reader for %d entries", src, len(want))
			}
			continue
		}
		var got []comm.Entry[uint64]
		for {
			batch, err := r.Next()
			if err != nil {
				t.Fatal(err)
			}
			if len(batch) == 0 {
				break
			}
			got = append(got, batch...)
		}
		r.Close()
		if len(got) != len(want) {
			t.Fatalf("source %d: %d entries, want %d", src, len(got), len(want))
		}
		for i := range want {
			if got[i].Key != want[i].Key || got[i].Proc != want[i].Proc || got[i].Index != want[i].Index {
				t.Fatalf("source %d entry %d: %+v != %+v", src, i, got[i], want[i])
			}
		}
	}
}

// TestSpillAssemblyOverflowAndClose: region overflow errors like the
// resident assembly, and Close removes every run file.
func TestSpillAssemblyOverflowAndClose(t *testing.T) {
	dir := t.TempDir()
	a, err := NewSpillAssembly(&Manager{}, []int{2}, comm.U64Codec{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Write(0, make([]comm.Entry[uint64], 3)); err == nil {
		t.Fatal("overflow write succeeded")
	}
	if err := a.Write(1, nil); err == nil {
		t.Fatal("out-of-range source succeeded")
	}
	a.Close()
	a.Close() // idempotent
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) != 0 {
		t.Fatalf("files survive Close: %v", names)
	}
}

// TestSpillAssemblyEmptySource: a source expecting zero entries has no
// run file, yet an empty chunk for it (a node writing its own empty
// range) must be a no-op, not a nil-writer panic, and Done must already
// account for it.
func TestSpillAssemblyEmptySource(t *testing.T) {
	a, err := NewSpillAssembly(&Manager{}, []int{0, 1}, comm.U64Codec{}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Write(0, nil); err != nil {
		t.Fatalf("empty chunk for zero-count source: %v", err)
	}
	if !a.RunComplete(0) {
		t.Fatal("zero-count source not complete at construction")
	}
	if err := a.Write(1, []comm.Entry[uint64]{{Key: 7}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-a.Done():
	default:
		t.Fatal("assembly not done after the only expected entry landed")
	}
}
