package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"pgxsort/internal/dist"
)

// resultCache deduplicates repeated sorts: identical (key type, record
// payload size, input bytes) triples map to the same content hash, and a
// hit returns the stored canonical sorted bytes without touching the
// engine. Entries are evicted least-recently-used once the stored bytes
// exceed the byte budget. A nil budget (Config.CacheBytes < 0) disables
// the cache entirely; every call is then a miss that never stores.
type resultCache struct {
	mu       sync.Mutex
	budget   int64
	maxEntry int64 // per-entry byte cap (budget/CacheEntryFrac)
	bytes    int64
	lru      *list.List // front = most recently used; values are *cacheEntry
	byKey    map[cacheKey]*list.Element

	hits, misses, evictions, skipped int64
}

type cacheKey [sha256.Size]byte

type cacheEntry struct {
	key    cacheKey
	sorted []byte
	n      int
}

func newResultCache(budget, entryFrac int64) *resultCache {
	c := &resultCache{budget: budget}
	if budget > 0 {
		c.lru = list.New()
		c.byKey = make(map[cacheKey]*list.Element)
		c.maxEntry = budget
		if entryFrac > 1 {
			c.maxEntry = budget / entryFrac
		}
	}
	return c
}

// hashJob derives the content address of one sort job. The scheme is
// versioned so a format change cannot alias old entries.
func hashJob(kt dist.KeyType, recbytes int, raw []byte) cacheKey {
	h := sha256.New()
	h.Write([]byte("pgxsortd/v1\x00"))
	h.Write([]byte(kt))
	h.Write([]byte{0})
	var rb [8]byte
	binary.LittleEndian.PutUint64(rb[:], uint64(recbytes))
	h.Write(rb[:])
	h.Write(raw)
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// get returns the cached sorted bytes for key, if present.
func (c *resultCache) get(key cacheKey) ([]byte, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byKey == nil {
		c.misses++
		return nil, 0, false
	}
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil, 0, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	e := el.Value.(*cacheEntry)
	return e.sorted, e.n, true
}

// put stores one result, evicting LRU entries past the byte budget.
// Results larger than the per-entry cap are not stored: one huge
// answer caching itself would evict the cache's whole working set for
// a single entry that is cheap to recompute relative to its size.
func (c *resultCache) put(key cacheKey, sorted []byte, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byKey == nil {
		return
	}
	if int64(len(sorted)) > c.maxEntry {
		c.skipped++
		return
	}
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(&cacheEntry{key: key, sorted: sorted, n: n})
	c.bytes += int64(len(sorted))
	for c.bytes > c.budget {
		el := c.lru.Back()
		e := el.Value.(*cacheEntry)
		c.lru.Remove(el)
		delete(c.byKey, e.key)
		c.bytes -= int64(len(e.sorted))
		c.evictions++
	}
}

// stats snapshots the cache counters for /metrics.
func (c *resultCache) stats() (hits, misses, evictions, skipped, bytes, entries, budget int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	entries = 0
	if c.lru != nil {
		entries = int64(c.lru.Len())
	}
	budget = c.budget
	if budget < 0 {
		budget = 0
	}
	return c.hits, c.misses, c.evictions, c.skipped, c.bytes, entries, budget
}
