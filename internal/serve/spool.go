package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"time"

	"pgxsort/internal/dist"
	"pgxsort/internal/keyio"
)

// The spool-tier failpoint sites. FpSpoolWrite fires before each batch
// append while an upload lands in its run file; FpSpoolRead fires before
// each batch read while the spooled sort re-reads it (threaded through
// core.SpooledInput.ReadSite). Both inject errors that core.Classify
// calls Transient, so the write is retried in place at the ingress (the
// batch is still resident) and the read is retried by the scheduler's
// normal attempt loop — the soak harness arms them to prove the healing
// path keeps bytes correct.
const (
	FpSpoolWrite = "serve/spool-write"
	FpSpoolRead  = "serve/spool-read"
)

// ingestResult is one streamed octet-stream body, landed either way:
// resident canonical bytes when it stayed under the spool threshold, or
// a spill-tier run file (resident nil) when it crossed it.
type ingestResult struct {
	resident []byte
	spool    string // run-file path; owned by the caller once returned
	n        int
}

// deadlineReader arms a fresh read deadline before every body read, so
// the timeout bounds inter-chunk stalls rather than whole-upload
// duration: a slow-but-moving client is fine, a stalled one gets 408.
// Transports that cannot set per-request read deadlines (HTTP/2 under
// some configurations, test recorders) disable themselves on the first
// failure and fall back to the server-wide timeouts.
type deadlineReader struct {
	r        io.Reader
	rc       *http.ResponseController
	timeout  time.Duration
	disabled bool
}

func (d *deadlineReader) Read(p []byte) (int, error) {
	if !d.disabled {
		if err := d.rc.SetReadDeadline(time.Now().Add(d.timeout)); err != nil {
			d.disabled = true
		}
	}
	return d.r.Read(p)
}

// countingWriter tracks whether any response bytes are on the wire —
// the line between "can still answer with an error status" and "the
// stream is the only honest signal left".
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// uploadError maps one streaming-ingress failure onto its HTTP status:
// MaxBytesReader trip 413, stalled client 408, spool disk full 507,
// stream cut mid-key 400.
func uploadError(err error, kt dist.KeyType) *apiError {
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		return &apiError{http.StatusRequestEntityTooLarge,
			fmt.Sprintf("body exceeds the %d-byte limit", mbe.Limit)}
	case errors.Is(err, os.ErrDeadlineExceeded):
		return &apiError{http.StatusRequestTimeout,
			"upload stalled past the read deadline"}
	case errors.Is(err, syscall.ENOSPC):
		return &apiError{http.StatusInsufficientStorage,
			"spool disk is full"}
	case errors.Is(err, keyio.ErrTruncated):
		return badRequest("body is not canonical %s data: %v", kt, err)
	}
	return badRequest("reading body: %v", err)
}

// spoolDir is where upload spools land: the engines' spill dir, so one
// disk budget covers both tiers, or the system temp dir.
func (s *Server) spoolDir() string {
	if s.cfg.SpillDir != "" {
		return s.cfg.SpillDir
	}
	return os.TempDir()
}

// ingestBinary streams one octet-stream body through the backend's
// incremental decoder. Record sorts (recbytes > 0) ride payload ballast
// through the resident engine, so only key-only uploads may spool.
func (s *Server) ingestBinary(w http.ResponseWriter, r *http.Request, b backend, recbytes int, id string) (*ingestResult, *apiError) {
	body := io.Reader(http.MaxBytesReader(w, r.Body, s.maxBody()))
	if s.cfg.UploadTimeout > 0 {
		body = &deadlineReader{r: body, rc: http.NewResponseController(w), timeout: s.cfg.UploadTimeout}
	}
	threshold := s.cfg.SpoolThreshold
	if threshold < 0 || recbytes > 0 {
		threshold = -1
	}
	path := filepath.Join(s.spoolDir(), "pgxsortd-upload-"+id+".spool")
	return b.ingest(body, path, threshold, uploadBlockBytes(s.cfg.MemoryBudget), s.cfg.MaxKeys, s.cfg.RetryAttempts)
}

// uploadBlockBytes sizes the upload spool's blocks to the engine memory
// budget, mirroring the engine's own run-file block sizing: the spooled
// sort's section readers keep two decoded blocks in flight per node, so
// budget-sized servers must not ingest into huge blocks.
func uploadBlockBytes(budget int64) int {
	if budget <= 0 {
		return 0 // spill.DefaultBlockBytes
	}
	bb := budget / 32
	if bb < 4<<10 {
		bb = 4 << 10
	}
	if bb > 128<<10 {
		bb = 128 << 10
	}
	return int(bb)
}
