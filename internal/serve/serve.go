// Package serve is the sorting-as-a-service layer: an HTTP front end
// over the core engine that turns the one-shot CLI pipeline into a
// resident, multi-tenant endpoint. It owns everything between the socket
// and the scheduler — admission (bounded queue, per-tenant inflight
// caps, per-job deadlines), a content-hash result cache with an LRU byte
// budget, metrics exposition and a job trace log — while the sorting
// itself stays in internal/core, reached through the PR 2 scheduler so
// concurrent HTTP jobs obey the same inflight and stage-serialization
// rules as a SortMany batch.
//
// The package map:
//
//	serve.go    — Config, Server lifecycle (New / Close / draining)
//	backend.go  — per-keytype engine + codec + canonical byte formats
//	admission.go— bounded queue and per-tenant semaphores
//	cache.go    — content-addressed LRU result cache
//	metrics.go  — counter aggregation and /metrics text exposition
//	jobs.go     — /debug/jobs ring buffer
//	handlers.go — the HTTP surface (documented in docs/API.md)
package serve

import (
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pgxsort/internal/core"
	"pgxsort/internal/dist"
	"pgxsort/internal/transport"
)

// Defaults for the zero Config fields.
const (
	DefaultTenantInflight   = 2
	DefaultQueueDepth       = 16
	DefaultCacheBytes       = 64 << 20
	DefaultJobTimeout       = 60 * time.Second
	DefaultMaxKeys          = 50_000_000
	DefaultRetryAfter       = 1 * time.Second
	DefaultRetryAttempts    = 3
	DefaultBreakerThreshold = 1
	DefaultBreakerCooldown  = 30 * time.Second
	DefaultSpoolThreshold   = 8 << 20
	DefaultUploadTimeout    = 30 * time.Second
	DefaultCacheEntryFrac   = 8
)

// Config shapes one pgxsortd server. The zero value serves all three key
// domains over the in-process transport with the documented defaults.
type Config struct {
	// Procs / Workers size each keytype's engine (see core.Options).
	Procs   int
	Workers int
	// BufferBytes is the engine buffer size (default 256KB, the paper's).
	BufferBytes int
	// Transport selects "chan" (default) or "tcp"; TCP shapes the mesh
	// for real clusters (see transport.Config). Explicit TCP addresses
	// bind one mesh, so they require exactly one enabled key type.
	Transport string
	TCP       transport.Config
	// Faults optionally wraps the engines' networks with the
	// fault-injection harness — the chaos tests' knob, nil in production.
	Faults *transport.FaultPlan
	// LocalSort / Merge force engine paths (default auto).
	LocalSort core.LocalSortMode
	Merge     core.MergeStrategy
	// MemoryBudget caps each engine node's temporary memory; beyond it
	// sorts spill block-file runs to SpillDir and stream them back
	// (core.Options.MemoryBudget; the pgxsortd -mem-budget flag). Zero
	// = unlimited (subject to PGXSORT_MEM_BUDGET), negative = explicitly
	// unlimited.
	MemoryBudget int64
	// SpillDir is where spilled runs live (empty = system temp dir).
	SpillDir string

	// MaxInflight is each engine scheduler's global admission cap: how
	// many sorts may be in flight at once across all tenants (default
	// core.DefaultMaxInflight).
	MaxInflight int
	// TenantInflight caps how many jobs one tenant may have admitted at
	// once; further jobs from that tenant wait (until their deadline)
	// while other tenants proceed. Default 2.
	TenantInflight int
	// QueueDepth bounds how many jobs may be in the building at once —
	// waiting plus running, across all tenants. A full queue answers
	// 429 with Retry-After instead of queueing unboundedly. Default 16.
	QueueDepth int
	// CacheBytes is the result cache's LRU byte budget: 0 means the
	// 64MB default, negative disables caching.
	CacheBytes int64
	// JobTimeout is the per-job deadline when a request names none;
	// an explicit deadline_ms longer than this is clamped to it.
	// Default 60s.
	JobTimeout time.Duration
	// MaxKeys rejects datasets larger than this with 413 (default 50M).
	MaxKeys int
	// RetryAfter is the Retry-After hint on 429/503 answers. Default 1s.
	RetryAfter time.Duration
	// KeyTypes lists the key domains to build engines for (default all
	// three: uint64, float64, string).
	KeyTypes []dist.KeyType

	// RetryAttempts is the per-job attempt cap the schedulers use for
	// transient engine failures (core.RetryPolicy.MaxAttempts).
	// Default 3; 1 disables retries.
	RetryAttempts int
	// BreakerThreshold is how many consecutive Fatal mesh failures open a
	// keytype's circuit breaker (default 1: the first dead link degrades
	// the service rather than failing a second job the same way).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before letting a
	// half-open probe back onto the mesh. Default 30s.
	BreakerCooldown time.Duration
	// FallbackKeys caps how large a dataset may take the degraded
	// single-node path when the breaker is open; bigger jobs fail with
	// the mesh error instead. 0 means MaxKeys (everything the daemon
	// accepts already fits in its memory); negative disables fallback.
	FallbackKeys int

	// SpoolThreshold is the octet-stream upload size (bytes) past which
	// the body stops accumulating in memory and lands in a spill-tier
	// run file instead; the job then takes the out-of-core spooled sort
	// and streams its answer chunked. 0 means 8MB (clamped to the
	// engine MemoryBudget when one is set, so a budgeted server never
	// buffers more than its budget before spooling); negative disables
	// spooling — every upload is resident, the pre-PR behaviour.
	SpoolThreshold int64
	// UploadTimeout is the per-read idle deadline on streamed uploads:
	// a client that stalls longer than this mid-body gets 408 instead
	// of holding a spool slot forever. Default 30s; negative disables.
	UploadTimeout time.Duration
	// GovernorBudget is the process-wide memory ledger's budget: jobs
	// whose estimated resident footprint would push the ledger past it
	// wait out as 429 (or 413 when a single job could never fit). 0
	// disables gating; the ledger still tracks and exports its gauges.
	GovernorBudget int64
	// CacheEntryFrac caps single result-cache entries at
	// CacheBytes/CacheEntryFrac: one huge result must not evict the
	// whole cache to store itself once. Default 8; 1 allows any entry
	// that fits the budget (the old behaviour).
	CacheEntryFrac int
}

func (c Config) withDefaults() Config {
	if c.MemoryBudget == 0 {
		// Resolve the env fallback here rather than leaving it to each
		// engine: the serve layer sizes upload spool blocks and clamps
		// the spool threshold off the budget, and an env-budgeted daemon
		// must not ingest uploads into unbudgeted 128KB blocks (the
		// engine's section readers hold decoded slabs per block, so big
		// blocks blow the accounted peak). Engines see the same value
		// either way.
		if b, err := core.ParseMemBudget(os.Getenv(core.MemBudgetEnv)); err == nil {
			c.MemoryBudget = b
		}
	}
	if c.TenantInflight <= 0 {
		c.TenantInflight = DefaultTenantInflight
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = DefaultCacheBytes
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = DefaultJobTimeout
	}
	if c.MaxKeys <= 0 {
		c.MaxKeys = DefaultMaxKeys
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = DefaultRetryAfter
	}
	if len(c.KeyTypes) == 0 {
		c.KeyTypes = append([]dist.KeyType(nil), dist.KeyTypes...)
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = DefaultRetryAttempts
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	if c.FallbackKeys == 0 {
		c.FallbackKeys = c.MaxKeys
	}
	if c.SpoolThreshold == 0 {
		c.SpoolThreshold = DefaultSpoolThreshold
		if c.MemoryBudget > 0 && c.MemoryBudget < c.SpoolThreshold {
			c.SpoolThreshold = c.MemoryBudget
		}
	}
	if c.UploadTimeout == 0 {
		c.UploadTimeout = DefaultUploadTimeout
	}
	if c.CacheEntryFrac <= 0 {
		c.CacheEntryFrac = DefaultCacheEntryFrac
	}
	return c
}

// Server is one resident pgxsortd instance: an engine (and scheduler)
// per enabled key domain behind a shared admission controller, cache,
// metrics aggregator and job log. Build with New, mount Handler (or the
// Server itself) on an http.Server, and Close to drain.
type Server struct {
	cfg      Config
	backends map[dist.KeyType]backend
	breakers map[dist.KeyType]*breaker
	adm      *admission
	cache    *resultCache
	met      *metrics
	jobs     *jobLog
	gov      *governor
	mux      *http.ServeMux

	draining  atomic.Bool
	jobsWG    sync.WaitGroup
	nextJob   atomic.Int64
	closeOnce sync.Once
	closeErr  error
}

// New builds the server and its engines. The engines connect their
// transports immediately (a TCP mesh dials its peers here), so a New
// that returns is ready to serve.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	explicitTCP := len(cfg.TCP.Listen) > 0 || len(cfg.TCP.Peers) > 0
	if explicitTCP && len(cfg.KeyTypes) != 1 {
		return nil, fmt.Errorf("serve: explicit TCP addresses bind one mesh; restrict KeyTypes to exactly one domain (have %d)", len(cfg.KeyTypes))
	}
	s := &Server{
		cfg:      cfg,
		backends: make(map[dist.KeyType]backend, len(cfg.KeyTypes)),
		breakers: make(map[dist.KeyType]*breaker, len(cfg.KeyTypes)),
		adm:      newAdmission(cfg.QueueDepth, cfg.TenantInflight),
		cache:    newResultCache(cfg.CacheBytes, int64(cfg.CacheEntryFrac)),
		met:      newMetrics(),
		jobs:     newJobLog(jobLogDepth),
		gov:      newGovernor(cfg.GovernorBudget),
	}
	seen := make(map[dist.KeyType]bool)
	for _, kt := range cfg.KeyTypes {
		if seen[kt] {
			return nil, fmt.Errorf("serve: duplicate key type %q", kt)
		}
		seen[kt] = true
		b, err := newBackend(kt, cfg)
		if err != nil {
			s.closeBackends()
			return nil, err
		}
		s.backends[kt] = b
		s.breakers[kt] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	s.mux = s.routes()
	return s, nil
}

// Handler returns the server's HTTP surface (see docs/API.md).
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP lets the Server itself be mounted as a handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Draining reports whether Close has begun: /readyz answers 503 and new
// jobs are refused while in-flight ones finish.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close drains the server: new jobs are refused (503 + Retry-After),
// in-flight jobs run to completion, then every engine shuts down. Safe
// to call more than once; later calls return the first close error.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		s.jobsWG.Wait()
		s.closeErr = s.closeBackends()
	})
	return s.closeErr
}

func (s *Server) closeBackends() error {
	var firstErr error
	for _, b := range s.backends {
		if err := b.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// backendFor resolves the key_type request field ("" means uint64).
func (s *Server) backendFor(keyType string) (backend, error) {
	kt := dist.KeyUint64
	if keyType != "" {
		var err error
		kt, err = dist.ParseKeyType(keyType)
		if err != nil {
			return nil, err
		}
	}
	b, ok := s.backends[kt]
	if !ok {
		return nil, fmt.Errorf("key type %q is not enabled on this server", kt)
	}
	return b, nil
}

// jobID mints the next job identifier.
func (s *Server) jobID() string {
	return fmt.Sprintf("j-%06d", s.nextJob.Add(1))
}

// Degraded reports whether any keytype's breaker is not closed: the
// service still answers sorts (on the single-node fallback) but the
// distributed mesh is suspect. /readyz surfaces this as a "degraded"
// body so operators see it without scraping /metrics.
func (s *Server) Degraded() bool {
	for _, br := range s.breakers {
		if st, _, _ := br.snapshot(); st != breakerClosed {
			return true
		}
	}
	return false
}

// retryPolicy maps the service config onto the schedulers' retry knobs.
func (c Config) retryPolicy() core.RetryPolicy {
	return core.RetryPolicy{MaxAttempts: c.RetryAttempts}
}

// engineOptions maps the service config onto one engine's options.
func (c Config) engineOptions() core.Options {
	return core.Options{
		Procs:          c.Procs,
		WorkersPerProc: c.Workers,
		BufferBytes:    c.BufferBytes,
		Transport:      c.Transport,
		TCP:            c.TCP,
		Faults:         c.Faults,
		LocalSort:      c.LocalSort,
		Merge:          c.Merge,
		MaxInflight:    c.MaxInflight,
		MemoryBudget:   c.MemoryBudget,
		SpillDir:       c.SpillDir,
	}
}
