package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pgxsort/internal/failpoint"
)

// TestBreakerStateMachine pins the breaker's transitions: a fatal streak
// opens it at the threshold, the cooldown admits exactly one half-open
// probe, a failed probe re-opens, a successful one closes and resets.
func TestBreakerStateMachine(t *testing.T) {
	br := newBreaker(2, 50*time.Millisecond)
	if br.route() != routeMesh {
		t.Fatal("fresh breaker must route to the mesh")
	}
	br.onFatal()
	if br.route() != routeMesh {
		t.Fatal("one fatal below the threshold must keep the mesh")
	}
	br.onFatal()
	if st, _, opens := br.snapshot(); st != breakerOpen || opens != 1 {
		t.Fatalf("after threshold: state %v opens %d, want open/1", st, opens)
	}
	if br.route() != routeFallback {
		t.Fatal("open breaker must route to the fallback")
	}
	time.Sleep(60 * time.Millisecond)
	if br.route() != routeProbe {
		t.Fatal("after the cooldown one request must probe")
	}
	if br.route() != routeFallback {
		t.Fatal("while a probe is in flight everyone else stays on the fallback")
	}
	br.onFatal() // the probe failed
	if st, _, _ := br.snapshot(); st != breakerOpen {
		t.Fatalf("failed probe left state %v, want open", st)
	}
	time.Sleep(60 * time.Millisecond)
	if br.route() != routeProbe {
		t.Fatal("second probe window never opened")
	}
	br.onSuccess()
	if st, consec, _ := br.snapshot(); st != breakerClosed || consec != 0 {
		t.Fatalf("successful probe left state %v streak %d, want closed/0", st, consec)
	}
	if br.route() != routeMesh {
		t.Fatal("closed breaker must route to the mesh again")
	}

	// A non-fatal probe failure proves nothing: back to open.
	br.onFatal()
	br.onFatal()
	time.Sleep(60 * time.Millisecond)
	if br.route() != routeProbe {
		t.Fatal("probe window after reopen never opened")
	}
	br.onOther()
	if st, _, _ := br.snapshot(); st != breakerOpen {
		t.Fatalf("inconclusive probe left state %v, want open", st)
	}
}

// TestTransientFailureRetriedOverHTTP drives the whole self-healing path
// end to end: a failpoint kills the first engine attempt, the scheduler
// retries, and the client sees a clean 200 — full service, not degraded
// — with the retry visible in /metrics.
func TestTransientFailureRetriedOverHTTP(t *testing.T) {
	failpoint.Reset()
	t.Cleanup(failpoint.Reset)
	_, ts := testServer(t, Config{})

	failpoint.Set("core/exchange", failpoint.Schedule{Mode: failpoint.ModeError})
	resp, body := postJSON(t, ts.URL+"/v1/sort", map[string]any{
		"dist":     map[string]any{"kind": "uniform", "n": 20000, "seed": 7},
		"no_cache": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s), want 200 after a retried transient failure", resp.StatusCode, body)
	}
	var sr sortResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sr.Degraded {
		t.Fatal("a retried transient failure must not mark the answer degraded")
	}
	if fired := failpoint.Fired("core/exchange"); fired != 1 {
		t.Fatalf("failpoint fired %d times, want 1", fired)
	}
	_, exposition := getBody(t, ts.URL+"/metrics")
	if v := metricValue(t, exposition, "pgxsortd_retries_total"); v < 1 {
		t.Fatalf("pgxsortd_retries_total = %v, want >= 1", v)
	}
	if v := metricValue(t, exposition, `pgxsortd_breaker_state{key_type="uint64"}`); v != 0 {
		t.Fatalf("breaker state %v after a transient failure, want 0 (closed)", v)
	}
}

// TestClientDisconnectAccountedAs499: a client that goes away while its
// job waits for a tenant slot is a client problem, not a server timeout
// — the job log and metrics must say 499, not 504.
func TestClientDisconnectAccountedAs499(t *testing.T) {
	failpoint.Reset()
	t.Cleanup(failpoint.Reset)
	_, ts := testServer(t, Config{TenantInflight: 1})

	// Job 1 holds tenant t1's only slot for a while: every exchange
	// failpoint hit sleeps, padding the engine run past the test's
	// cancellation window.
	failpoint.Set("core/exchange", failpoint.Schedule{
		Mode: failpoint.ModeDelay, Delay: 700 * time.Millisecond, Count: -1,
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, _ := postJSON(t, ts.URL+"/v1/sort", map[string]any{
			"tenant":   "t1",
			"dist":     map[string]any{"kind": "uniform", "n": 5000, "seed": 1},
			"no_cache": true,
		})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("slot-holding job: status %d, want 200", resp.StatusCode)
		}
	}()

	// Job 2, same tenant, blocks on the slot; its client disconnects.
	time.Sleep(150 * time.Millisecond)
	body, _ := json.Marshal(map[string]any{
		"tenant":   "t1",
		"dist":     map[string]any{"kind": "uniform", "n": 5000, "seed": 2},
		"no_cache": true,
	})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sort", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("cancelled request unexpectedly completed")
	}

	// The 499 lands once the handler goroutine notices; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, exposition := getBody(t, ts.URL+"/metrics")
		if strings.Contains(exposition, `pgxsortd_jobs_total{endpoint="sort",status="499"}`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no 499-status job appeared in /metrics after a client disconnect")
		}
		time.Sleep(20 * time.Millisecond)
	}
	<-done
}

// TestServeFailpointSites covers the service-layer injection points: an
// armed admission site refuses like a drain (503 + Retry-After), and an
// armed cache-put site silently skips the result-cache insert.
func TestServeFailpointSites(t *testing.T) {
	failpoint.Reset()
	t.Cleanup(failpoint.Reset)
	_, ts := testServer(t, Config{})

	failpoint.Set("serve/admission", failpoint.Schedule{Mode: failpoint.ModeError})
	resp, body := postJSON(t, ts.URL+"/v1/sort", map[string]any{
		"dist": map[string]any{"kind": "uniform", "n": 1000, "seed": 3},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("armed admission site: status %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("injected 503 lacks Retry-After")
	}

	// Cache-put skip: the first successful sort must NOT be stored, so
	// the identical second request is a miss; the second run's put goes
	// through, making the third a hit.
	failpoint.Set("serve/cache-put", failpoint.Schedule{Mode: failpoint.ModeError})
	job := map[string]any{"dist": map[string]any{"kind": "uniform", "n": 1000, "seed": 3}}
	cached := func(label string) bool {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/v1/sort", job)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d (%s)", label, resp.StatusCode, body)
		}
		var sr sortResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatalf("%s: decode: %v", label, err)
		}
		return sr.Cached
	}
	if cached("first") {
		t.Fatal("first sort reported cached")
	}
	if cached("second") {
		t.Fatal("second sort hit the cache although the put was injected away")
	}
	if !cached("third") {
		t.Fatal("third sort missed: the uninjected second run must have cached")
	}
}

// TestCacheEvictionUnderConcurrentWriters hammers the result cache from
// many goroutines and checks the LRU accounting invariants hold: stored
// bytes never exceed the budget, the byte gauge equals the sum of the
// surviving entries, and evictions actually happened.
func TestCacheEvictionUnderConcurrentWriters(t *testing.T) {
	const budget = 64 << 10
	c := newResultCache(budget, 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 400; i++ {
				size := 512 + rnd.Intn(4096)
				key := hashJob("uint64", 0, []byte(fmt.Sprintf("w%d-i%d", w, i%50)))
				if rnd.Intn(3) == 0 {
					c.get(key)
				} else {
					c.put(key, make([]byte, size), size/8)
				}
			}
		}(w)
	}
	wg.Wait()

	hits, misses, evictions, _, bytes, entries, _ := c.stats()
	if bytes > budget {
		t.Fatalf("cache holds %d bytes, budget %d", bytes, budget)
	}
	if evictions == 0 {
		t.Fatal("no evictions despite writing far past the budget")
	}
	// The byte gauge must equal the sum over surviving entries.
	c.mu.Lock()
	var sum int64
	for el := c.lru.Front(); el != nil; el = el.Next() {
		sum += int64(len(el.Value.(*cacheEntry).sorted))
	}
	if int64(c.lru.Len()) != entries {
		t.Errorf("lru holds %d entries, stats said %d", c.lru.Len(), entries)
	}
	c.mu.Unlock()
	if sum != bytes {
		t.Fatalf("byte gauge %d != %d bytes actually stored", bytes, sum)
	}
	t.Logf("hits=%d misses=%d evictions=%d bytes=%d entries=%d", hits, misses, evictions, bytes, entries)
}

// TestAdmissionFairnessAcrossTenants: with tenant A's inflight cap
// saturated, A's next job waits — but tenant B's jobs keep flowing
// through the shared queue instead of queueing behind A.
func TestAdmissionFairnessAcrossTenants(t *testing.T) {
	adm := newAdmission(8, 1)

	releaseA1, st := adm.begin(context.Background(), "A")
	if st != admitOK {
		t.Fatalf("A1: %v", st)
	}
	// A2 blocks on A's tenant slot.
	a2done := make(chan admissionStatus, 1)
	go func() {
		release, st := adm.begin(context.Background(), "A")
		if st == admitOK {
			release()
		}
		a2done <- st
	}()
	time.Sleep(50 * time.Millisecond) // let A2 reach the tenant semaphore

	// B sails through while A2 is parked.
	start := time.Now()
	releaseB, st := adm.begin(context.Background(), "B")
	if st != admitOK {
		t.Fatalf("B: %v", st)
	}
	if wait := time.Since(start); wait > 100*time.Millisecond {
		t.Fatalf("tenant B waited %v behind tenant A's backlog", wait)
	}
	releaseB()

	select {
	case <-a2done:
		t.Fatal("A2 admitted while A1 still held the tenant slot")
	default:
	}
	releaseA1()
	select {
	case st := <-a2done:
		if st != admitOK {
			t.Fatalf("A2 after release: %v", st)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("A2 never admitted after A1 released its slot")
	}

	// And a saturated queue still answers queue-full immediately.
	var rels []func()
	for {
		release, st := adm.begin(context.Background(), fmt.Sprintf("T%d", len(rels)))
		if st != admitOK {
			if st != admitQueueFull {
				t.Fatalf("saturating queue: %v", st)
			}
			break
		}
		rels = append(rels, release)
	}
	if len(rels) != 8 {
		t.Fatalf("queue admitted %d jobs, capacity 8", len(rels))
	}
	for _, r := range rels {
		r()
	}
}
