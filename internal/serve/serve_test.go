package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"pgxsort/internal/dist"
	"pgxsort/internal/keyio"
	"pgxsort/internal/transport"
)

// testServer starts one in-process service over httptest.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Procs == 0 {
		cfg.Procs = 4
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

func postBinary(t *testing.T, url string, raw []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, string(data)
}

func metricValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(strings.TrimPrefix(line, name+" "), "%g", &v); err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in exposition", name)
	return 0
}

func TestSortJSONRoundTrip(t *testing.T) {
	_, ts := testServer(t, Config{})
	keys := []any{uint64(9), "3", uint64(1 << 60), uint64(5), "18446744073709551615", uint64(2)}
	resp, body := postJSON(t, ts.URL+"/v1/sort", map[string]any{"keys": keys})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr sortResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if sr.Cached || sr.N != 6 || sr.JobID == "" {
		t.Fatalf("unexpected response meta: %+v", sr)
	}
	raw, err := base64.StdEncoding.DecodeString(sr.KeysB64)
	if err != nil {
		t.Fatalf("keys_b64: %v", err)
	}
	got, err := keyio.DecodeUint64s(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := []uint64{2, 3, 5, 9, 1 << 60, math.MaxUint64}
	if !slices.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if sr.Report == nil || sr.Report.LocalSortPath == "" {
		t.Fatalf("missing report summary: %+v", sr.Report)
	}
}

func TestRepeatedSortHitsCache(t *testing.T) {
	_, ts := testServer(t, Config{})
	raw := keyio.EncodeUint64s(dist.Gen{Kind: dist.RightSkewed, Seed: 7}.Keys(5000))
	resp1, body1 := postBinary(t, ts.URL+"/v1/sort?key_type=uint64", raw)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first submit: %d", resp1.StatusCode)
	}
	if h := resp1.Header.Get("X-Pgxsortd-Cache"); h != "miss" {
		t.Fatalf("first submit cache header %q, want miss", h)
	}
	resp2, body2 := postBinary(t, ts.URL+"/v1/sort?key_type=uint64", raw)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second submit: %d", resp2.StatusCode)
	}
	if h := resp2.Header.Get("X-Pgxsortd-Cache"); h != "hit" {
		t.Fatalf("second submit cache header %q, want hit", h)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("cache hit returned different bytes than the engine run")
	}
	_, exposition := getBody(t, ts.URL+"/metrics")
	if hits := metricValue(t, exposition, "pgxsortd_cache_hits_total"); hits != 1 {
		t.Fatalf("cache_hits_total = %g, want 1", hits)
	}
	// no_cache bypasses the cache in both directions.
	resp3, _ := postBinary(t, ts.URL+"/v1/sort?key_type=uint64&no_cache=true", raw)
	if h := resp3.Header.Get("X-Pgxsortd-Cache"); h != "miss" {
		t.Fatalf("no_cache submit cache header %q, want miss", h)
	}
}

func TestConcurrentClientsByteIdenticalToCLIPath(t *testing.T) {
	_, ts := testServer(t, Config{})
	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			kind := dist.AllKinds[c%len(dist.AllKinds)]
			keys := dist.Gen{Kind: kind, Seed: uint64(c + 1)}.Keys(8000)
			// The CLI path: read keys, sort locally, write canonical
			// bytes. The service must return the same bytes.
			sorted := slices.Clone(keys)
			slices.Sort(sorted)
			want := keyio.EncodeUint64s(sorted)

			resp, err := http.Post(ts.URL+fmt.Sprintf("/v1/sort?key_type=uint64&tenant=c%d&no_cache=true", c),
				"application/octet-stream", bytes.NewReader(keyio.EncodeUint64s(keys)))
			if err != nil {
				errs[c] = err
				return
			}
			defer resp.Body.Close()
			got, err := io.ReadAll(resp.Body)
			if err != nil {
				errs[c] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[c] = fmt.Errorf("status %d: %s", resp.StatusCode, got)
				return
			}
			if !bytes.Equal(got, want) {
				errs[c] = fmt.Errorf("client %d: response differs from CLI-path bytes (%d vs %d bytes)", c, len(got), len(want))
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", c, err)
		}
	}
}

func TestFloatAndStringDomains(t *testing.T) {
	_, ts := testServer(t, Config{})
	// Floats: non-finite values ride as strings; output follows the
	// IEEE-754 total order with NaN above +Inf.
	resp, body := postJSON(t, ts.URL+"/v1/sort", map[string]any{
		"key_type": "float64",
		"keys":     []any{"NaN", 1.5, "-Inf", -0.0, "+Inf", -2.25},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("float sort: %d: %s", resp.StatusCode, body)
	}
	var sr sortResponse
	json.Unmarshal(body, &sr)
	raw, _ := base64.StdEncoding.DecodeString(sr.KeysB64)
	fs, err := keyio.DecodeFloat64s(raw)
	if err != nil {
		t.Fatalf("decode floats: %v", err)
	}
	for i := 1; i < len(fs); i++ {
		if keyio.F64TotalLess(fs[i], fs[i-1]) {
			t.Fatalf("float output not in total order at %d: %v", i, fs)
		}
	}
	if len(fs) != 6 || !math.IsNaN(fs[5]) || !math.IsInf(fs[4], 1) {
		t.Fatalf("float order wrong: %v", fs)
	}

	resp, body = postJSON(t, ts.URL+"/v1/sort", map[string]any{
		"key_type": "string",
		"keys":     []any{"pear", "", "apple", "fig"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("string sort: %d: %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &sr)
	raw, _ = base64.StdEncoding.DecodeString(sr.KeysB64)
	ss, err := keyio.DecodeStrings(raw)
	if err != nil {
		t.Fatalf("decode strings: %v", err)
	}
	if !slices.Equal(ss, []string{"", "apple", "fig", "pear"}) {
		t.Fatalf("string order wrong: %v", ss)
	}
}

func TestDistGeneratedAndRecordSorts(t *testing.T) {
	_, ts := testServer(t, Config{})
	req := map[string]any{
		"dist":     map[string]any{"kind": "right-skewed", "n": 4000, "seed": 11},
		"recbytes": 32,
	}
	resp, body := postJSON(t, ts.URL+"/v1/sort", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dist sort: %d: %s", resp.StatusCode, body)
	}
	var sr sortResponse
	json.Unmarshal(body, &sr)
	raw, _ := base64.StdEncoding.DecodeString(sr.KeysB64)
	got, err := keyio.DecodeUint64s(raw)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := dist.Gen{Kind: dist.RightSkewed, Seed: 11}.Keys(4000)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Fatal("dist-generated record sort differs from local sort of the same generator")
	}
}

func TestTopKAndRank(t *testing.T) {
	_, ts := testServer(t, Config{})
	keys := dist.Gen{Kind: dist.Uniform, Seed: 3}.Keys(10000)
	b64 := base64.StdEncoding.EncodeToString(keyio.EncodeUint64s(keys))

	resp, body := postJSON(t, ts.URL+"/v1/topk", map[string]any{"keys_b64": b64, "k": 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk: %d: %s", resp.StatusCode, body)
	}
	var tr topkResponse
	json.Unmarshal(body, &tr)
	sorted := slices.Clone(keys)
	slices.Sort(sorted)
	for i := 0; i < 5; i++ {
		want := fmt.Sprintf("%d", sorted[len(sorted)-1-i])
		if tr.Entries[i].Key != want {
			t.Fatalf("topk[%d] = %s, want %s", i, tr.Entries[i].Key, want)
		}
	}
	if tr.BytesSent <= 0 || tr.BytesSent >= int64(8*len(keys)) {
		t.Fatalf("topk traffic %d should be positive and far below the dataset's %d bytes", tr.BytesSent, 8*len(keys))
	}

	resp, body = postJSON(t, ts.URL+"/v1/topk", map[string]any{"keys_b64": b64, "k": 3, "bottom": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bottomk: %d: %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &tr)
	if tr.Entries[0].Key != fmt.Sprintf("%d", sorted[0]) {
		t.Fatalf("bottomk[0] = %s, want %d", tr.Entries[0].Key, sorted[0])
	}

	target := sorted[7500]
	resp, body = postJSON(t, ts.URL+"/v1/rank", map[string]any{"keys_b64": b64, "key": fmt.Sprintf("%d", target)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rank: %d: %s", resp.StatusCode, body)
	}
	var rr rankResponse
	json.Unmarshal(body, &rr)
	wantRank, wantCount := 0, 0
	for _, k := range keys {
		if k < target {
			wantRank++
		} else if k == target {
			wantCount++
		}
	}
	if rr.Rank != wantRank || rr.Count != wantCount || rr.N != len(keys) {
		t.Fatalf("rank answer %+v, want rank=%d count=%d n=%d", rr, wantRank, wantCount, len(keys))
	}
}

// slowConfig makes every sort take hundreds of milliseconds by delaying
// every message send, so admission and deadline behavior is observable.
func slowConfig() Config {
	return Config{
		Procs:    4,
		Workers:  2,
		Faults:   &transport.FaultPlan{DelayEvery: 1, Delay: 20 * time.Millisecond},
		KeyTypes: []dist.KeyType{dist.KeyUint64},
	}
}

func TestOverloadAnswers429(t *testing.T) {
	cfg := slowConfig()
	cfg.MaxInflight = 1
	cfg.TenantInflight = 1
	cfg.QueueDepth = 2
	_, ts := testServer(t, cfg)

	const submits = 8
	statuses := make([]int, submits)
	retryAfter := make([]string, submits)
	var wg sync.WaitGroup
	for i := 0; i < submits; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw := keyio.EncodeUint64s(dist.Gen{Seed: uint64(i + 1)}.Keys(3000))
			resp, err := http.Post(ts.URL+fmt.Sprintf("/v1/sort?tenant=t%d&no_cache=true", i),
				"application/octet-stream", bytes.NewReader(raw))
			if err != nil {
				statuses[i] = -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	ok, rejected := 0, 0
	for i, st := range statuses {
		switch st {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
			if retryAfter[i] == "" {
				t.Error("429 without Retry-After header")
			}
		default:
			t.Errorf("submit %d: unexpected status %d", i, st)
		}
	}
	if ok == 0 {
		t.Error("no submit succeeded")
	}
	if rejected == 0 {
		t.Errorf("no submit was rejected with 429 (statuses %v); queue depth 2 with 8 concurrent submits must overload", statuses)
	}
	_, exposition := getBody(t, ts.URL+"/metrics")
	if v := metricValue(t, exposition, `pgxsortd_rejected_total{reason="queue_full"}`); v == 0 {
		t.Error("rejected_total{queue_full} is zero after 429s")
	}
}

func TestDeadlineCancelsRunningJob(t *testing.T) {
	cfg := slowConfig()
	_, ts := testServer(t, cfg)
	raw := keyio.EncodeUint64s(dist.Gen{Seed: 5}.Keys(20000))
	start := time.Now()
	resp, body := postBinary(t, ts.URL+"/v1/sort?deadline_ms=50&no_cache=true", raw)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline answer took %v; the job was not cancelled", elapsed)
	}
	// The engine survives the cancellation: a small follow-up sort
	// (generous deadline) completes.
	small := keyio.EncodeUint64s([]uint64{3, 1, 2})
	resp, body = postBinary(t, ts.URL+"/v1/sort", small)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel sort: %d (%s)", resp.StatusCode, body)
	}
	if got, _ := keyio.DecodeUint64s(body); !slices.Equal(got, []uint64{1, 2, 3}) {
		t.Fatalf("post-cancel sort wrong: %v", got)
	}
}

func TestGracefulDrain(t *testing.T) {
	srv, ts := testServer(t, Config{KeyTypes: []dist.KeyType{dist.KeyUint64}})
	if resp, body := getBody(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK || body != "ready\n" {
		t.Fatalf("readyz before drain: %d %q", resp.StatusCode, body)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	resp, body := getBody(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d %q", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining readyz without Retry-After")
	}
	// healthz keeps answering 200: the process is alive, just not ready.
	if resp, _ := getBody(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz during drain: %d", resp.StatusCode)
	}
	raw := keyio.EncodeUint64s([]uint64{2, 1})
	if resp, _ := postBinary(t, ts.URL+"/v1/sort", raw); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("sort during drain: %d, want 503", resp.StatusCode)
	}
}

func TestValidationErrors(t *testing.T) {
	_, ts := testServer(t, Config{MaxKeys: 100})
	cases := []struct {
		name   string
		body   map[string]any
		status int
	}{
		{"no dataset source", map[string]any{}, http.StatusBadRequest},
		{"two sources", map[string]any{"keys": []any{1}, "keys_b64": "AAAAAAAAAAA="}, http.StatusBadRequest},
		{"bad key type", map[string]any{"key_type": "int128", "keys": []any{1}}, http.StatusBadRequest},
		{"bad b64", map[string]any{"keys_b64": "!!!"}, http.StatusBadRequest},
		{"bad canonical bytes", map[string]any{"keys_b64": base64.StdEncoding.EncodeToString([]byte{1, 2, 3})}, http.StatusBadRequest},
		{"bad uint64 key", map[string]any{"keys": []any{"-4"}}, http.StatusBadRequest},
		{"unknown dist kind", map[string]any{"dist": map[string]any{"kind": "zipf", "n": 10}}, http.StatusBadRequest},
		{"oversized dist", map[string]any{"dist": map[string]any{"n": 101}}, http.StatusRequestEntityTooLarge},
		{"unknown field", map[string]any{"keyz": []any{1}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/sort", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d (%s), want %d", tc.name, resp.StatusCode, body, tc.status)
		}
	}
	// topk needs a positive k; rank needs a key.
	b64 := base64.StdEncoding.EncodeToString(keyio.EncodeUint64s([]uint64{1, 2}))
	if resp, _ := postJSON(t, ts.URL+"/v1/topk", map[string]any{"keys_b64": b64}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("topk without k: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/rank", map[string]any{"keys_b64": b64}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("rank without key: %d", resp.StatusCode)
	}
	// Method discipline: the mux answers GET /v1/sort with 405.
	if resp, err := http.Get(ts.URL + "/v1/sort"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/sort: %d, want 405", resp.StatusCode)
	}
}

func TestDebugJobsListsNewestFirst(t *testing.T) {
	_, ts := testServer(t, Config{})
	for i := 0; i < 3; i++ {
		raw := keyio.EncodeUint64s(dist.Gen{Seed: uint64(i + 1)}.Keys(100))
		if resp, _ := postBinary(t, ts.URL+"/v1/sort?tenant=probe&no_cache=true", raw); resp.StatusCode != http.StatusOK {
			t.Fatalf("sort %d: %d", i, resp.StatusCode)
		}
	}
	_, body := getBody(t, ts.URL+"/debug/jobs")
	var out struct {
		Jobs []jobRecord `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(out.Jobs) != 3 {
		t.Fatalf("%d jobs listed, want 3", len(out.Jobs))
	}
	if out.Jobs[0].ID <= out.Jobs[1].ID {
		t.Fatalf("jobs not newest-first: %s then %s", out.Jobs[0].ID, out.Jobs[1].ID)
	}
	if out.Jobs[0].Tenant != "probe" || out.Jobs[0].Status != http.StatusOK || out.Jobs[0].N != 100 {
		t.Fatalf("job record wrong: %+v", out.Jobs[0])
	}
	if len(out.Jobs[0].Stages) == 0 {
		t.Fatal("job record has no scheduler stage spans")
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := testServer(t, Config{})
	raw := keyio.EncodeUint64s(dist.Gen{Seed: 9}.Keys(2000))
	postBinary(t, ts.URL+"/v1/sort", raw)
	_, exposition := getBody(t, ts.URL+"/metrics")
	for _, name := range []string{
		"pgxsortd_up 1",
		`pgxsortd_jobs_total{endpoint="sort",status="200"} 1`,
		"pgxsortd_keys_sorted_total 2000",
		`pgxsortd_step_seconds_total{step="send/recv"}`,
		"pgxsortd_cache_misses_total 1",
		"pgxsortd_admission_queue_capacity 16",
	} {
		if !strings.Contains(exposition, name) {
			t.Errorf("exposition lacks %q", name)
		}
	}
	if v := metricValue(t, exposition, "pgxsortd_comm_bytes_total"); v <= 0 {
		t.Errorf("comm_bytes_total = %g, want > 0", v)
	}
}

func TestExplicitTCPRequiresOneKeyType(t *testing.T) {
	_, err := New(Config{
		Procs:     2,
		Transport: transport.KindTCP,
		TCP:       transport.Config{Listen: []string{"127.0.0.1:0", "127.0.0.1:0"}},
	})
	if err == nil || !strings.Contains(err.Error(), "exactly one") {
		t.Fatalf("expected the one-keytype error, got %v", err)
	}
}
