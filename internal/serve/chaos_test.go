package serve

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pgxsort/internal/dist"
	"pgxsort/internal/keyio"
	"pgxsort/internal/transport"
)

// killerProxy forwards TCP connections to a target until a byte budget
// is spent, then kills every connection and its own listener — from the
// mesh's point of view, the peer behind it drops off the network
// mid-exchange and never comes back (reconnects get ECONNREFUSED).
// Unlike transport.FaultPlan resets, which the hardened transport is
// designed to recover from, this produces an unrecoverable link failure.
type killerProxy struct {
	ln     net.Listener
	target string
	limit  int64

	forwarded atomic.Int64
	killed    atomic.Bool
	mu        sync.Mutex
	conns     []net.Conn
}

func startKillerProxy(t *testing.T, target string, limit int64) *killerProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	p := &killerProxy{ln: ln, target: target, limit: limit}
	go p.accept()
	t.Cleanup(p.kill)
	return p
}

func (p *killerProxy) addr() string { return p.ln.Addr().String() }

func (p *killerProxy) accept() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			c.Close()
			continue
		}
		p.mu.Lock()
		p.conns = append(p.conns, c, up)
		p.mu.Unlock()
		go p.pump(up, c, true) // toward the target: counted
		go p.pump(c, up, false)
	}
}

// pump copies one direction; the counted direction spends the budget.
func (p *killerProxy) pump(dst, src net.Conn, counted bool) {
	buf := make([]byte, 16<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			if counted && p.forwarded.Add(int64(n)) > p.limit {
				p.kill()
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// kill closes the listener and every proxied connection, once.
func (p *killerProxy) kill() {
	if !p.killed.CompareAndSwap(false, true) {
		return
	}
	p.ln.Close()
	p.mu.Lock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
	p.mu.Unlock()
}

// reservePorts grabs n distinct loopback ports by binding and releasing
// them (the usual test trick; the race window is negligible).
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestMidExchangeLinkLossDegradesToSingleNode proves the self-healing
// acceptance property for real network failure: when a peer's link dies
// mid-exchange and never recovers, the daemon still answers the job —
// the fatal mesh failure trips the circuit breaker, the job is rescued
// on the single-node fallback engine in the same request, and the result
// is byte-identical to what the healthy mesh (or the CLI) would produce.
// Afterwards the breaker is open, /readyz reports degraded, and the next
// job routes straight to the fallback without touching the dead mesh.
func TestMidExchangeLinkLossDegradesToSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test: real TCP mesh")
	}
	const procs = 3
	listen := reservePorts(t, procs)
	// Nodes 1 and 2 reach node 0 through the killer proxy; node 0's own
	// dials go direct. 64KB through the proxy is far past the handshake
	// and splitter traffic but well inside the ~300KB exchange, so the
	// kill lands mid-exchange.
	proxy := startKillerProxy(t, listen[0], 64<<10)
	peers := []string{proxy.addr(), listen[1], listen[2]}

	cfg := Config{
		Procs:     procs,
		Workers:   2,
		Transport: transport.KindTCP,
		TCP: transport.Config{
			Listen:         listen,
			Peers:          peers,
			ConnectTimeout: 2 * time.Second,
			RetryBase:      2 * time.Millisecond,
			RetryMax:       20 * time.Millisecond,
			DialAttempts:   2,
			WindowFrames:   8,
			DrainTimeout:   time.Second,
		},
		BufferBytes: 32 << 10,
		KeyTypes:    []dist.KeyType{dist.KeyUint64},
	}
	_, ts := testServer(t, cfg)

	keys := dist.Gen{Kind: dist.Uniform, Seed: 42}.Keys(60000)
	raw := keyio.EncodeUint64s(keys)
	want := append([]uint64(nil), keys...)
	slices.Sort(want)
	wantRaw := keyio.EncodeUint64s(want)

	post := func(label string) (*http.Response, []byte, time.Duration) {
		t.Helper()
		start := time.Now()
		resp, err := http.Post(ts.URL+"/v1/sort?deadline_ms=20000&no_cache=true",
			"application/octet-stream", bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s POST: %v", label, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, body, time.Since(start)
	}

	resp, body, elapsed := post("rescue")
	if !proxy.killed.Load() {
		t.Fatalf("proxy never tripped: only %d bytes forwarded — the kill must land mid-exchange", proxy.forwarded.Load())
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s), want 200 via the degraded fallback after mid-exchange link loss", resp.StatusCode, bytes.TrimSpace(body))
	}
	if resp.Header.Get("X-Pgxsortd-Degraded") != "true" {
		t.Fatal("rescued answer is not marked degraded")
	}
	if !bytes.Equal(body, wantRaw) {
		t.Fatalf("degraded result differs from the true sort (%d vs %d bytes)", len(body), len(wantRaw))
	}
	if elapsed > 25*time.Second {
		t.Fatalf("degraded answer took %v; the rescue must be bounded, not a transport hang", elapsed)
	}
	t.Logf("link loss rescued in-request in %v", elapsed)

	// The breaker is open now: readyz says degraded, metrics agree, and
	// the next job goes straight to the fallback — no mesh, still right.
	if resp, rbody := getBody(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK || !bytes.Contains([]byte(rbody), []byte("degraded")) {
		t.Errorf("readyz after link loss: %d %q, want 200 degraded", resp.StatusCode, rbody)
	}
	if _, exposition := getBody(t, ts.URL+"/metrics"); !bytes.Contains([]byte(exposition), []byte(`pgxsortd_breaker_state{key_type="uint64"} 1`)) {
		t.Error("metrics scrape lacks an open uint64 breaker")
	}
	resp, body, elapsed = post("breaker-open")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Pgxsortd-Degraded") != "true" {
		t.Fatalf("breaker-open job: status %d degraded=%q, want 200 degraded", resp.StatusCode, resp.Header.Get("X-Pgxsortd-Degraded"))
	}
	if !bytes.Equal(body, wantRaw) {
		t.Fatal("breaker-open result differs from the true sort")
	}
	if elapsed > 10*time.Second {
		t.Fatalf("breaker-open job took %v; an open breaker must skip the dead mesh entirely", elapsed)
	}

	// The server itself stays alive: liveness and metrics still answer.
	if resp, _ := getBody(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after link loss: %d", resp.StatusCode)
	}
	if _, exposition := getBody(t, ts.URL+"/metrics"); !bytes.Contains([]byte(exposition), []byte("pgxsortd_up 1")) {
		t.Error("metrics scrape after link loss lacks pgxsortd_up 1")
	}
}
