package serve

import (
	"sync"
	"time"
)

// breaker is a per-keytype circuit breaker over the distributed mesh.
// Fatal mesh failures (core.FailFatal — a peer link that redial could not
// resurrect) increment a consecutive-failure streak; at Threshold the
// breaker opens and sorts are routed to the single-node fallback engine
// instead of burning their deadline against a dead mesh. After Cooldown
// one request is let through as a half-open probe: success closes the
// breaker, another fatal failure re-opens it and restarts the clock.
//
// Only Fatal failures count. Transient failures are the scheduler's
// business (it retries them), and data-dependent ones would fail on the
// fallback too.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState
	consec   int   // consecutive fatal mesh failures
	opens    int64 // lifetime open transitions
	openedAt time.Time
}

type breakerState int

const (
	breakerClosed   breakerState = 0 // mesh healthy
	breakerOpen     breakerState = 1 // mesh presumed dead; fallback
	breakerHalfOpen breakerState = 2 // one probe in flight
)

func (st breakerState) String() string {
	switch st {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// routeDecision is breaker.route's verdict for one request.
type routeDecision int

const (
	routeMesh     routeDecision = iota // breaker closed: normal path
	routeProbe    routeDecision = iota // half-open: this request probes the mesh
	routeFallback                      // open: go straight to single-node
)

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// route decides where the next sort goes. At most one request holds the
// half-open probe at a time; the rest stay on the fallback until the
// probe reports back via onSuccess / onFatal / onOther.
func (b *breaker) route() routeDecision {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return routeMesh
	case breakerHalfOpen:
		return routeFallback
	default: // open
		if time.Since(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return routeProbe
		}
		return routeFallback
	}
}

// onSuccess reports a mesh sort that completed: the mesh works, so any
// state (including a half-open probe) collapses back to closed.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	b.state = breakerClosed
	b.consec = 0
	b.mu.Unlock()
}

// onFatal reports a mesh sort that died with a Fatal failure. A failed
// probe re-opens immediately; in closed state the streak must reach the
// threshold first.
func (b *breaker) onFatal() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec++
	if b.state == breakerHalfOpen || b.consec >= b.threshold {
		if b.state != breakerOpen {
			b.opens++
		}
		b.state = breakerOpen
		b.openedAt = time.Now()
	}
}

// onOther reports a mesh sort that failed for a non-fatal reason
// (deadline, cancel, data-dependent). It does not advance the streak,
// but a half-open probe that did not prove the mesh healthy goes back to
// open — without it the probe slot would leak and every request would
// route to the mesh again.
func (b *breaker) onOther() {
	b.mu.Lock()
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
		b.openedAt = time.Now()
	}
	b.mu.Unlock()
}

// snapshot reads the gauges for /metrics and /readyz.
func (b *breaker) snapshot() (state breakerState, consec int, opens int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.consec, b.opens
}
