package serve

import (
	"sync"
	"time"

	"pgxsort/internal/core"
	"pgxsort/internal/dist"
)

// jobLogDepth is how many finished jobs /debug/jobs remembers.
const jobLogDepth = 256

// jobRecord is one finished request as /debug/jobs reports it: identity,
// outcome and the scheduler trace condensed to per-stage spans. It is a
// plain JSON-marshalable snapshot — nothing in it aliases engine state.
type jobRecord struct {
	ID       string  `json:"id"`
	Tenant   string  `json:"tenant,omitempty"`
	Endpoint string  `json:"endpoint"`
	KeyType  string  `json:"key_type"`
	N        int     `json:"n"`
	Status   int     `json:"status"`
	Err      string  `json:"error,omitempty"`
	Cached   bool    `json:"cached,omitempty"`
	Elapsed  float64 `json:"elapsed_ms"`

	AdmitWaitMS float64     `json:"admit_wait_ms,omitempty"`
	Stages      []stageSpan `json:"stages,omitempty"`
}

// stageSpan is one scheduler stage of one job: offsets from the job's
// scheduler epoch, plus the serialized-gate wait where one exists.
type stageSpan struct {
	Stage    string  `json:"stage"`
	StartMS  float64 `json:"start_ms"`
	EndMS    float64 `json:"end_ms"`
	GateWait float64 `json:"gate_wait_ms,omitempty"`
}

// jobLog is a fixed-size ring of finished jobs, newest first on read.
type jobLog struct {
	mu   sync.Mutex
	ring []jobRecord
	next int
	size int
}

func newJobLog(depth int) *jobLog {
	return &jobLog{ring: make([]jobRecord, depth)}
}

func (l *jobLog) add(r jobRecord) {
	l.mu.Lock()
	l.ring[l.next] = r
	l.next = (l.next + 1) % len(l.ring)
	if l.size < len(l.ring) {
		l.size++
	}
	l.mu.Unlock()
}

// list returns the remembered jobs, newest first.
func (l *jobLog) list() []jobRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]jobRecord, 0, l.size)
	for i := 1; i <= l.size; i++ {
		out = append(out, l.ring[(l.next-i+len(l.ring))%len(l.ring)])
	}
	return out
}

// newJobRecord assembles the log entry for one finished request.
func newJobRecord(id, tenant, endpoint string, kt dist.KeyType, n, status int, err error, cached bool, elapsed time.Duration, rep *core.Report) jobRecord {
	r := jobRecord{
		ID:       id,
		Tenant:   tenant,
		Endpoint: endpoint,
		KeyType:  string(kt),
		N:        n,
		Status:   status,
		Cached:   cached,
		Elapsed:  ms(elapsed),
	}
	if err != nil {
		r.Err = err.Error()
	}
	if rep != nil && rep.Sched.Pipelined {
		r.AdmitWaitMS = ms(rep.Sched.AdmitWait)
		for st := core.SchedStage(0); st < core.NumSchedStages; st++ {
			r.Stages = append(r.Stages, stageSpan{
				Stage:    st.String(),
				StartMS:  ms(rep.Sched.StageStart[st]),
				EndMS:    ms(rep.Sched.StageEnd[st]),
				GateWait: ms(rep.Sched.StageWait[st]),
			})
		}
	}
	return r
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
