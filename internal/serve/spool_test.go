package serve

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"testing"
	"time"

	"pgxsort/internal/core"
	"pgxsort/internal/dist"
	"pgxsort/internal/keyio"
)

// TestSpooledBinarySort uploads a body many times the spool threshold
// and the engine memory budget: the job must spool, stream back chunked,
// and stay byte-identical to a resident sort of the same keys — with the
// tracker-accounted temp peak riding the trailer and staying far under
// the dataset size.
func TestSpooledBinarySort(t *testing.T) {
	spillDir := t.TempDir()
	_, ts := testServer(t, Config{
		SpoolThreshold: 16 << 10,
		MemoryBudget:   64 << 10,
		SpillDir:       spillDir,
	})

	const n = 200_000 // 1.6MB raw, 100x the spool threshold
	rng := dist.NewRNG(41)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64() % 50_000 // heavy ties
	}
	raw := keyio.EncodeUint64s(keys)

	resp, body := postBinary(t, ts.URL+"/v1/sort", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if h := resp.Header.Get("X-Pgxsortd-Spooled"); h != "true" {
		t.Fatalf("X-Pgxsortd-Spooled = %q, want true", h)
	}
	if h := resp.Header.Get("X-Pgxsortd-Cache"); h != "bypass" {
		t.Fatalf("X-Pgxsortd-Cache = %q, want bypass", h)
	}
	if h := resp.Header.Get("X-Pgxsortd-N"); h != strconv.Itoa(n) {
		t.Fatalf("X-Pgxsortd-N = %q, want %d", h, n)
	}

	sorted := slices.Clone(keys)
	slices.Sort(sorted)
	want := keyio.EncodeUint64s(sorted)
	if !slices.Equal(body, want) {
		t.Fatalf("spooled response diverges from resident sort (%d vs %d bytes)", len(body), len(want))
	}

	// The trailer carries the engine's measured temp peak: nonzero,
	// bounded by per-node budget times procs plus fixed slack (decoded
	// block slabs, merge batch), and strictly under the raw dataset —
	// the proof nothing stayed resident.
	peakStr := resp.Trailer.Get("X-Pgxsortd-Temp-Peak")
	peak, err := strconv.ParseInt(peakStr, 10, 64)
	if err != nil {
		t.Fatalf("X-Pgxsortd-Temp-Peak trailer %q: %v", peakStr, err)
	}
	ceiling := int64(2*4*(64<<10) + 1<<20) // 2 x procs x MemoryBudget + slack
	if peak <= 0 || peak > ceiling {
		t.Fatalf("temp peak %d, want in (0, %d]", peak, ceiling)
	}
	if peak >= int64(len(raw)) {
		t.Fatalf("temp peak %d not under the %d-byte upload — nothing was out of core", peak, len(raw))
	}

	// The upload spool and all engine scratch are gone.
	waitForEmptyDir(t, spillDir)

	_, exp := getBody(t, ts.URL+"/metrics")
	if v := metricValue(t, exp, "pgxsortd_spooled_jobs_total"); v < 1 {
		t.Fatalf("pgxsortd_spooled_jobs_total = %g, want >= 1", v)
	}
	if v := metricValue(t, exp, "pgxsortd_mem_peak_bytes"); int64(v) < peak {
		t.Fatalf("pgxsortd_mem_peak_bytes = %g, want >= trailer peak %d", v, peak)
	}
}

// TestSpooledBinarySortStrings covers the variable-width codec through
// the same spooled round trip.
func TestSpooledBinarySortStrings(t *testing.T) {
	spillDir := t.TempDir()
	_, ts := testServer(t, Config{
		SpoolThreshold: 8 << 10,
		MemoryBudget:   64 << 10,
		SpillDir:       spillDir,
		KeyTypes:       []dist.KeyType{dist.KeyString},
	})

	const n = 20_000
	rng := dist.NewRNG(43)
	keys := make([]string, n)
	alpha := "abcdefghijklmnop"
	for i := range keys {
		b := []byte("prefixxx____")
		for j := 8; j < len(b); j++ {
			b[j] = alpha[rng.Uint64()%16]
		}
		keys[i] = string(b)
	}
	raw := keyio.EncodeStrings(keys)

	resp, body := postBinary(t, ts.URL+"/v1/sort?key_type=string", raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if h := resp.Header.Get("X-Pgxsortd-Spooled"); h != "true" {
		t.Fatalf("X-Pgxsortd-Spooled = %q, want true", h)
	}
	sorted := slices.Clone(keys)
	slices.Sort(sorted)
	if want := keyio.EncodeStrings(sorted); !slices.Equal(body, want) {
		t.Fatalf("spooled string response diverges from resident sort")
	}
	waitForEmptyDir(t, spillDir)
}

// TestOversizedBodies413 checks both request shapes answer 413 — not
// 400 — when the body trips MaxBytesReader or the key-count limit.
func TestOversizedBodies413(t *testing.T) {
	_, ts := testServer(t, Config{MaxKeys: 8, KeyTypes: []dist.KeyType{dist.KeyUint64}})

	// JSON: a body past the byte limit dies inside MaxBytesReader while
	// the decoder is mid-stream; that is "too large", not "bad request".
	bigJSON := `{"keys_b64":"` + strings.Repeat("AAAA", 300_000) + `"}`
	resp, err := http.Post(ts.URL+"/v1/sort", "application/json", strings.NewReader(bigJSON))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized JSON body: status %d, want 413", resp.StatusCode)
	}

	// Binary: the streaming ingest counts keys as they decode and
	// refuses past MaxKeys without reading the rest.
	raw := keyio.EncodeUint64s(make([]uint64, 9))
	bresp, body := postBinary(t, ts.URL+"/v1/sort", raw)
	if bresp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized binary body: status %d: %s", bresp.StatusCode, body)
	}
}

// TestSlowClientUpload408 stalls an octet-stream upload mid-body past
// the per-read deadline: the server must answer 408 instead of holding
// the connection and its spool slot.
func TestSlowClientUpload408(t *testing.T) {
	_, ts := testServer(t, Config{
		UploadTimeout: 150 * time.Millisecond,
		KeyTypes:      []dist.KeyType{dist.KeyUint64},
	})

	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/sort HTTP/1.1\r\nHost: test\r\nContent-Type: application/octet-stream\r\nContent-Length: 800\r\n\r\n")
	conn.Write(make([]byte, 16)) // two keys, then silence

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	status, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("reading response line: %v", err)
	}
	if !strings.Contains(status, "408") {
		t.Fatalf("stalled upload answered %q, want 408", strings.TrimSpace(status))
	}
}

// TestSpoolDisconnectNoOrphans cuts the connection after the upload has
// crossed the spool threshold: the half-written run file must be aborted
// and removed, leaving the spill dir empty.
func TestSpoolDisconnectNoOrphans(t *testing.T) {
	spillDir := t.TempDir()
	_, ts := testServer(t, Config{
		SpoolThreshold: 4 << 10,
		SpillDir:       spillDir,
		KeyTypes:       []dist.KeyType{dist.KeyUint64},
	})

	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	fmt.Fprintf(conn, "POST /v1/sort HTTP/1.1\r\nHost: test\r\nContent-Type: application/octet-stream\r\nContent-Length: 1048576\r\n\r\n")
	// Push well past the threshold so the spool file exists on disk,
	// then vanish.
	conn.Write(keyio.EncodeUint64s(make([]uint64, 8192))) // 64KB of a promised 1MB
	time.Sleep(50 * time.Millisecond)
	conn.Close()

	waitForEmptyDir(t, spillDir)
}

// TestGovernorOversized413 rejects a resident job whose estimated
// footprint could never fit the governor budget.
func TestGovernorOversized413(t *testing.T) {
	_, ts := testServer(t, Config{
		GovernorBudget: residentJobBytes(1000),
		KeyTypes:       []dist.KeyType{dist.KeyUint64},
	})
	raw := keyio.EncodeUint64s(make([]uint64, 5000))
	resp, body := postBinary(t, ts.URL+"/v1/sort", raw)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-budget job: status %d: %s", resp.StatusCode, body)
	}
	_, exp := getBody(t, ts.URL+"/metrics")
	if v := metricValue(t, exp, "pgxsortd_mem_budget_bytes"); int64(v) != residentJobBytes(1000) {
		t.Fatalf("pgxsortd_mem_budget_bytes = %g", v)
	}
}

// TestGovernorLedger checks the reservation arithmetic directly:
// admission gating, peak tracking, and release.
func TestGovernorLedger(t *testing.T) {
	g := newGovernor(1000)
	if !g.reserve(600) {
		t.Fatal("first reservation refused")
	}
	if g.reserve(600) {
		t.Fatal("overcommitting reservation admitted")
	}
	if g.oversized(600) {
		t.Fatal("600 of 1000 reported oversized")
	}
	if !g.oversized(1001) {
		t.Fatal("1001 of 1000 not oversized")
	}
	if !g.reserve(400) {
		t.Fatal("exact-fit reservation refused")
	}
	g.release(600)
	g.notePeak(5000)
	inuse, peak, _, budget := g.stats()
	if inuse != 400 || peak != 5000 || budget != 1000 {
		t.Fatalf("stats inuse=%d peak=%d budget=%d", inuse, peak, budget)
	}

	// Unlimited governors admit everything but still track.
	u := newGovernor(0)
	if !u.reserve(1 << 40) {
		t.Fatal("unlimited governor refused a reservation")
	}
	if u.oversized(1 << 40) {
		t.Fatal("unlimited governor reported oversized")
	}
}

// TestCacheEntryCap checks one huge result cannot evict the whole cache
// to store itself: it is skipped and counted.
func TestCacheEntryCap(t *testing.T) {
	c := newResultCache(1024, 8) // per-entry cap: 128 bytes
	key := hashJob("uint64", 0, []byte("big"))
	c.put(key, make([]byte, 512), 64)
	if _, _, ok := c.get(key); ok {
		t.Fatal("oversized entry was cached")
	}
	_, _, _, skipped, bytes, entries, _ := c.stats()
	if skipped != 1 || bytes != 0 || entries != 0 {
		t.Fatalf("skipped=%d bytes=%d entries=%d, want 1/0/0", skipped, bytes, entries)
	}
	small := hashJob("uint64", 0, []byte("small"))
	c.put(small, make([]byte, 100), 12)
	if _, _, ok := c.get(small); !ok {
		t.Fatal("under-cap entry was not cached")
	}
}

// waitForEmptyDir polls until dir holds no entries — spool cleanup runs
// in the handler after the response, so a short grace period applies.
func waitForEmptyDir(t *testing.T, dir string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("ReadDir: %v", err)
		}
		if len(ents) == 0 {
			return
		}
		if time.Now().After(deadline) {
			names := make([]string, len(ents))
			for i, e := range ents {
				names[i] = filepath.Join(dir, e.Name())
			}
			t.Fatalf("orphaned spill-tier files: %v", names)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestEnvBudgetResolvesInServeConfig pins the env fallback at the serve
// layer: a daemon budgeted only via PGXSORT_MEM_BUDGET must size its
// upload spool blocks and clamp its spool threshold exactly as one
// budgeted through the flag, or uploads land in unbudgeted 128KB blocks
// and the spooled sort's decoded slabs blow the accounted peak.
func TestEnvBudgetResolvesInServeConfig(t *testing.T) {
	t.Setenv(core.MemBudgetEnv, "64k")
	cfg := Config{}.withDefaults()
	if cfg.MemoryBudget != 64<<10 {
		t.Fatalf("MemoryBudget = %d, want %d (from %s)", cfg.MemoryBudget, 64<<10, core.MemBudgetEnv)
	}
	if cfg.SpoolThreshold != 64<<10 {
		t.Fatalf("SpoolThreshold = %d, want clamped to the %d budget", cfg.SpoolThreshold, 64<<10)
	}
	if bb := uploadBlockBytes(cfg.MemoryBudget); bb != 4<<10 {
		t.Fatalf("uploadBlockBytes(%d) = %d, want %d", cfg.MemoryBudget, bb, 4<<10)
	}

	// An explicit budget still wins over the env.
	cfg = Config{MemoryBudget: 128 << 10}.withDefaults()
	if cfg.MemoryBudget != 128<<10 {
		t.Fatalf("explicit MemoryBudget = %d, want %d", cfg.MemoryBudget, 128<<10)
	}
}
