package serve

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"pgxsort/internal/core"
	"pgxsort/internal/dist"
	"pgxsort/internal/failpoint"
)

// The HTTP surface. Request and response schemas are documented in
// docs/API.md; this file is their single implementation.

// StatusClientClosedRequest is nginx's 499: the client went away before
// the answer existed. Distinguishing it from 504 keeps deadline alerts
// honest — a disconnecting client is not a slow server.
const StatusClientClosedRequest = 499

// The service-layer failpoint sites (see internal/failpoint): fpAdmission
// refuses a job at the front door exactly like a drain would, fpCachePut
// drops the result-cache insert after a successful sort. Both use
// HitNoPanic — an unwind inside an HTTP handler would be swallowed by
// net/http's recover and hide the injection.
const (
	fpAdmission = "serve/admission"
	fpCachePut  = "serve/cache-put"
)

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sort", s.handleSort)
	mux.HandleFunc("POST /v1/topk", s.handleTopK)
	mux.HandleFunc("POST /v1/rank", s.handleRank)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/jobs", s.handleJobs)
	return mux
}

// apiError carries an HTTP status with its message through the request
// pipeline; writeError renders it as the JSON error envelope.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// writeError emits the JSON error envelope, with Retry-After on the
// backpressure statuses (429 queue full, 503 draining).
func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// distSpec asks the server to synthesize a deterministic dataset instead
// of uploading one (see internal/dist).
type distSpec struct {
	Kind   string `json:"kind"`
	N      int    `json:"n"`
	Seed   uint64 `json:"seed"`
	Domain uint64 `json:"domain,omitempty"`
	Prefix string `json:"prefix,omitempty"` // string keys only
}

// sortRequest is the JSON body shared by /v1/sort, /v1/topk and
// /v1/rank. Exactly one of Keys, KeysB64 or Dist supplies the dataset.
type sortRequest struct {
	Tenant     string            `json:"tenant,omitempty"`
	KeyType    string            `json:"key_type,omitempty"`
	Keys       []json.RawMessage `json:"keys,omitempty"`
	KeysB64    string            `json:"keys_b64,omitempty"`
	Dist       *distSpec         `json:"dist,omitempty"`
	DeadlineMS int64             `json:"deadline_ms,omitempty"`
	RecBytes   int               `json:"recbytes,omitempty"`
	NoCache    bool              `json:"no_cache,omitempty"`

	K      int    `json:"k,omitempty"`      // /v1/topk
	Bottom bool   `json:"bottom,omitempty"` // /v1/topk
	Key    string `json:"key,omitempty"`    // /v1/rank
}

// reportSummary is the engine-facing slice of one sort's Report that
// rides in the JSON response.
type reportSummary struct {
	EngineMS      float64 `json:"engine_ms"`
	BytesSent     int64   `json:"bytes_sent"`
	MsgsSent      int64   `json:"msgs_sent"`
	LocalSortPath string  `json:"local_sort"`
	MergePath     string  `json:"merge"`
	AdmitWaitMS   float64 `json:"admit_wait_ms"`
}

type sortResponse struct {
	JobID     string         `json:"job_id"`
	KeyType   string         `json:"key_type"`
	N         int            `json:"n"`
	Cached    bool           `json:"cached"`
	Degraded  bool           `json:"degraded,omitempty"`
	ElapsedMS float64        `json:"elapsed_ms"`
	KeysB64   string         `json:"keys_b64"`
	Report    *reportSummary `json:"report,omitempty"`
}

type topkEntry struct {
	Key  string `json:"key"`
	Proc int    `json:"proc"`
}

type topkResponse struct {
	JobID     string      `json:"job_id"`
	KeyType   string      `json:"key_type"`
	N         int         `json:"n"`
	K         int         `json:"k"`
	Bottom    bool        `json:"bottom"`
	Entries   []topkEntry `json:"entries"`
	BytesSent int64       `json:"bytes_sent"`
	ElapsedMS float64     `json:"elapsed_ms"`
}

type rankResponse struct {
	JobID     string  `json:"job_id"`
	KeyType   string  `json:"key_type"`
	Key       string  `json:"key"`
	Rank      int     `json:"rank"`
	Count     int     `json:"count"`
	N         int     `json:"n"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// maxBody bounds request bodies: the canonical encodings spend at most
// 16 bytes per small key, plus slack for JSON framing.
func (s *Server) maxBody() int64 {
	return int64(s.cfg.MaxKeys)*24 + 1<<20
}

// decodeRequest parses the shared JSON body. A body over the byte limit
// is 413, not 400 — the JSON is not malformed, it is too big, and the
// client should hear the same status the binary shape answers.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*sortRequest, *apiError) {
	body := http.MaxBytesReader(w, r.Body, s.maxBody())
	var req sortRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, &apiError{http.StatusRequestEntityTooLarge,
				fmt.Sprintf("body exceeds the %d-byte limit", mbe.Limit)}
		}
		return nil, badRequest("invalid JSON body: %v", err)
	}
	return &req, nil
}

// resolveDataset turns the request's dataset source into canonical bytes.
func (s *Server) resolveDataset(b backend, req *sortRequest) (raw []byte, n int, apiErr *apiError) {
	sources := 0
	if req.Keys != nil {
		sources++
	}
	if req.KeysB64 != "" {
		sources++
	}
	if req.Dist != nil {
		sources++
	}
	if sources != 1 {
		return nil, 0, badRequest("supply exactly one of keys, keys_b64 or dist (got %d)", sources)
	}
	switch {
	case req.Keys != nil:
		var err error
		raw, err = b.canonJSON(req.Keys)
		if err != nil {
			return nil, 0, badRequest("%v", err)
		}
		n = len(req.Keys)
	case req.KeysB64 != "":
		var err error
		raw, err = base64.StdEncoding.DecodeString(req.KeysB64)
		if err != nil {
			return nil, 0, badRequest("keys_b64: %v", err)
		}
		n, err = b.count(raw)
		if err != nil {
			return nil, 0, badRequest("keys_b64: %v", err)
		}
	default:
		spec := req.Dist
		if spec.N <= 0 {
			return nil, 0, badRequest("dist.n must be positive")
		}
		if spec.N > s.cfg.MaxKeys {
			return nil, 0, &apiError{http.StatusRequestEntityTooLarge, fmt.Sprintf("dist.n %d exceeds the %d-key limit", spec.N, s.cfg.MaxKeys)}
		}
		kind := dist.Uniform
		if spec.Kind != "" {
			var err error
			kind, err = dist.ParseKind(spec.Kind)
			if err != nil {
				return nil, 0, badRequest("dist.kind: %v", err)
			}
		}
		raw = b.generate(dist.Gen{Kind: kind, Seed: spec.Seed, Domain: spec.Domain}, spec.N, spec.Prefix)
		n = spec.N
	}
	if n > s.cfg.MaxKeys {
		return nil, 0, &apiError{http.StatusRequestEntityTooLarge, fmt.Sprintf("%d keys exceeds the %d-key limit", n, s.cfg.MaxKeys)}
	}
	return raw, n, nil
}

// jobCtx applies the effective deadline: the request's deadline_ms,
// clamped to Config.JobTimeout.
func (s *Server) jobCtx(r *http.Request, deadlineMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.JobTimeout
	if deadlineMS > 0 && time.Duration(deadlineMS)*time.Millisecond < d {
		d = time.Duration(deadlineMS) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), d)
}

// handleSort runs one sort job. Two request shapes share the endpoint:
// JSON (sortRequest) and application/octet-stream, whose body is the
// canonical keyio encoding and whose options ride in query parameters.
// The octet-stream shape answers with the canonical sorted bytes —
// byte-identical to what `pgxsort sort` writes to disk.
func (s *Server) handleSort(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	binary := strings.HasPrefix(r.Header.Get("Content-Type"), "application/octet-stream")
	id := s.jobID()
	var req *sortRequest
	var b backend
	var raw []byte
	var n int
	var apiErr *apiError
	var spool string
	if binary {
		req, apiErr = s.binarySortRequest(r)
		if apiErr == nil {
			b, apiErr = s.lookupBackend(req.KeyType)
		}
		if apiErr == nil {
			// Streaming ingress: the body decodes as it arrives and never
			// accumulates whole — past the spool threshold it lands in a
			// spill-tier run file instead.
			var ing *ingestResult
			ing, apiErr = s.ingestBinary(w, r, b, req.RecBytes, id)
			if apiErr == nil {
				raw, n, spool = ing.resident, ing.n, ing.spool
				if spool != "" {
					defer os.Remove(spool)
				}
			}
		}
	} else {
		req, apiErr = s.decodeRequest(w, r)
		if apiErr == nil {
			b, apiErr = s.lookupBackend(req.KeyType)
		}
		if apiErr == nil {
			raw, n, apiErr = s.resolveDataset(b, req)
		}
	}
	if apiErr != nil {
		s.rejectRequest(w, "sort", apiErr, start)
		return
	}
	if req.RecBytes < 0 {
		s.rejectRequest(w, "sort", badRequest("recbytes must be non-negative"), start)
		return
	}

	log := func(status int, err error, cached bool, rep *core.Report) {
		s.jobs.add(newJobRecord(id, req.Tenant, "sort", b.keyType(), n, status, err, cached, time.Since(start), rep))
	}

	if spool != "" {
		s.runSortSpooled(w, r, id, b, req, spool, n, start, log)
		return
	}

	// Cache probe: hits bypass admission entirely — a cached answer
	// costs no engine capacity, so overload must not refuse it.
	ckey := hashJob(b.keyType(), req.RecBytes, raw)
	if !req.NoCache {
		if sorted, cn, ok := s.cache.get(ckey); ok {
			s.met.jobDone("sort", "200", time.Since(start))
			log(http.StatusOK, nil, true, nil)
			s.writeSorted(w, r, binary, id, b, sorted, cn, true, false, start, nil)
			return
		}
	}

	// Governor: a resident job holds its decoded keys, entry slabs and
	// re-encoded result in this process; reserve that footprint before
	// running, and shed load when the ledger is full.
	need := residentJobBytes(n)
	if s.gov.oversized(need) {
		s.rejectRequest(w, "sort", &apiError{http.StatusRequestEntityTooLarge,
			fmt.Sprintf("job needs ~%d bytes resident, over the %d-byte memory budget", need, s.cfg.GovernorBudget)}, start)
		return
	}
	if !s.gov.reserve(need) {
		memErr := errors.New("memory budget exhausted; retry later")
		s.met.jobDone("sort", strconv.Itoa(http.StatusTooManyRequests), time.Since(start))
		s.met.reject("mem_budget")
		log(http.StatusTooManyRequests, memErr, false, nil)
		s.writeError(w, http.StatusTooManyRequests, memErr.Error())
		return
	}
	defer s.gov.release(need)

	sorted, rep, degraded, status, runErr := s.runSort(r, b, req, raw, n)
	if runErr != nil {
		s.met.jobDone("sort", strconv.Itoa(status), time.Since(start))
		if status == http.StatusTooManyRequests {
			s.met.reject("queue_full")
		}
		log(status, runErr, false, nil)
		s.writeError(w, status, runErr.Error())
		return
	}
	s.gov.notePeak(rep.TempPeakBytes)
	if !req.NoCache {
		if ferr := failpoint.HitNoPanic(fpCachePut); ferr == nil {
			s.cache.put(ckey, sorted, n)
		}
	}
	s.met.jobDone("sort", "200", time.Since(start))
	log(http.StatusOK, nil, false, &rep)
	s.writeSorted(w, r, binary, id, b, sorted, n, false, degraded, start, &rep)
}

// runSortSpooled takes one spooled upload through admission and streams
// the sorted answer chunked, straight off the final-merge cursor. The
// spooled path never touches the mesh — run formation and merging read
// the spill tier on this node — so there is no breaker to consult and no
// single-node fallback to degrade to. The result cache is bypassed too:
// hashing the body would mean reading the spool twice, and an answer too
// big to hold resident is exactly the answer a byte-budgeted cache must
// not store.
func (s *Server) runSortSpooled(w http.ResponseWriter, r *http.Request, id string, b backend, req *sortRequest, spool string, n int, start time.Time, log func(int, error, bool, *core.Report)) {
	fail := func(status int, err error) {
		s.met.jobDone("sort", strconv.Itoa(status), time.Since(start))
		log(status, err, false, nil)
		s.writeError(w, status, err.Error())
	}

	s.gov.noteSpooled()
	need := spooledJobBytes(s.cfg.SpoolThreshold)
	if s.gov.oversized(need) {
		s.met.reject("too_large")
		fail(http.StatusRequestEntityTooLarge,
			fmt.Errorf("spooled job needs ~%d bytes resident, over the %d-byte memory budget", need, s.cfg.GovernorBudget))
		return
	}
	if !s.gov.reserve(need) {
		s.met.reject("mem_budget")
		fail(http.StatusTooManyRequests, errors.New("memory budget exhausted; retry later"))
		return
	}
	defer s.gov.release(need)

	s.jobsWG.Add(1)
	defer s.jobsWG.Done()
	if s.draining.Load() {
		fail(http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	}
	if ferr := failpoint.HitNoPanic(fpAdmission); ferr != nil {
		fail(http.StatusServiceUnavailable, fmt.Errorf("admission refused: %w", ferr))
		return
	}
	ctx, cancel := s.jobCtx(r, req.DeadlineMS)
	defer cancel()
	release, st := s.adm.begin(ctx, req.Tenant)
	switch st {
	case admitQueueFull:
		s.met.reject("queue_full")
		fail(http.StatusTooManyRequests, errors.New("admission queue is full; retry later"))
		return
	case admitDeadline:
		if errors.Is(ctx.Err(), context.Canceled) {
			fail(StatusClientClosedRequest, fmt.Errorf("client went away waiting for tenant slot: %w", ctx.Err()))
		} else {
			fail(http.StatusGatewayTimeout, fmt.Errorf("deadline expired waiting for tenant slot: %v", ctx.Err()))
		}
		return
	}
	defer release()
	s.met.jobStart()
	defer s.met.jobEnd()

	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("X-Pgxsortd-Job", id)
	h.Set("X-Pgxsortd-N", strconv.Itoa(n))
	h.Set("X-Pgxsortd-Cache", "bypass")
	h.Set("X-Pgxsortd-Spooled", "true")
	// The measured peak only exists after the stream ends, so it rides a
	// trailer; announce it before the first body write.
	h.Set("Trailer", "X-Pgxsortd-Temp-Peak")
	cw := &countingWriter{w: w}
	rep, err := b.sortSpooledTo(ctx, spool, n, cw)
	if err != nil {
		if cw.n == 0 {
			// Nothing on the wire yet: unstage the success headers and
			// answer with a real error status.
			for _, k := range []string{"Trailer", "X-Pgxsortd-Job", "X-Pgxsortd-N", "X-Pgxsortd-Cache", "X-Pgxsortd-Spooled"} {
				h.Del(k)
			}
			status, serr := sortStatus(err)
			fail(status, serr)
			return
		}
		// Mid-stream failure: 200 is already on the wire, so cutting the
		// connection is the only honest signal left to the client.
		s.met.jobDone("sort", strconv.Itoa(http.StatusInternalServerError), time.Since(start))
		log(http.StatusInternalServerError, err, false, nil)
		panic(http.ErrAbortHandler)
	}
	h.Set("X-Pgxsortd-Temp-Peak", strconv.FormatInt(rep.TempPeakBytes, 10))
	s.gov.notePeak(rep.TempPeakBytes)
	s.met.absorb(&rep)
	s.met.jobDone("sort", "200", time.Since(start))
	log(http.StatusOK, nil, false, &rep)
}

// runSort takes one resolved dataset through admission and the engine.
// degraded reports the job ran on the single-node fallback because the
// keytype's breaker considers the mesh dead (or it died under this very
// job and the fallback rescued the answer in-request).
func (s *Server) runSort(r *http.Request, b backend, req *sortRequest, raw []byte, n int) (sorted []byte, rep core.Report, degraded bool, status int, err error) {
	// Counting into jobsWG before re-checking draining closes the race
	// with Close: either Close sees our count and waits, or we see its
	// draining flag and refuse.
	s.jobsWG.Add(1)
	defer s.jobsWG.Done()
	if s.draining.Load() {
		return nil, rep, false, http.StatusServiceUnavailable, errors.New("server is draining")
	}
	if ferr := failpoint.HitNoPanic(fpAdmission); ferr != nil {
		return nil, rep, false, http.StatusServiceUnavailable, fmt.Errorf("admission refused: %w", ferr)
	}
	ctx, cancel := s.jobCtx(r, req.DeadlineMS)
	defer cancel()
	release, st := s.adm.begin(ctx, req.Tenant)
	switch st {
	case admitQueueFull:
		return nil, rep, false, http.StatusTooManyRequests, errors.New("admission queue is full; retry later")
	case admitDeadline:
		if errors.Is(ctx.Err(), context.Canceled) {
			return nil, rep, false, StatusClientClosedRequest, fmt.Errorf("client went away waiting for tenant slot: %w", ctx.Err())
		}
		return nil, rep, false, http.StatusGatewayTimeout, fmt.Errorf("deadline expired waiting for tenant slot: %v", ctx.Err())
	}
	defer release()
	s.met.jobStart()
	defer s.met.jobEnd()

	br := s.breakers[b.keyType()]
	canFallback := s.cfg.FallbackKeys >= 0 && n <= s.cfg.FallbackKeys
	route := br.route()
	if route == routeFallback && canFallback {
		sorted, rep, err = b.sortSingle(ctx, raw, req.RecBytes)
		if err != nil {
			status, err = sortStatus(err)
			return nil, rep, false, status, err
		}
		s.met.degradedJob()
		s.met.absorb(&rep)
		return sorted, rep, true, http.StatusOK, nil
	}

	// Mesh path: routeMesh, routeProbe — and routeFallback for a job too
	// large to degrade, which has nowhere to go but the mesh.
	sorted, rep, err = b.sort(ctx, raw, req.RecBytes)
	if err == nil {
		br.onSuccess()
		s.met.absorb(&rep)
		return sorted, rep, false, http.StatusOK, nil
	}
	class := core.Classify(err)
	s.met.failure(class)
	if class == core.FailFatal {
		br.onFatal()
		if canFallback && ctx.Err() == nil {
			// The mesh died under this job. Rescue it in-request on the
			// fallback instead of making the client eat a 500 and resubmit.
			if fsorted, frep, ferr := b.sortSingle(ctx, raw, req.RecBytes); ferr == nil {
				s.met.degradedJob()
				s.met.absorb(&frep)
				return fsorted, frep, true, http.StatusOK, nil
			}
		}
	} else if route == routeProbe {
		br.onOther()
	}
	status, err = sortStatus(err)
	return nil, rep, false, status, err
}

// sortStatus maps one engine failure onto its HTTP status.
func sortStatus(err error) (int, error) {
	switch {
	case errors.Is(err, context.Canceled):
		return StatusClientClosedRequest, fmt.Errorf("client closed request: %w", err)
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, fmt.Errorf("job deadline exceeded: %w", err)
	}
	return http.StatusInternalServerError, fmt.Errorf("sort failed: %w", err)
}

// writeSorted renders a finished sort in the shape the request used.
func (s *Server) writeSorted(w http.ResponseWriter, r *http.Request, binary bool, id string, b backend, sorted []byte, n int, cached, degraded bool, start time.Time, rep *core.Report) {
	if binary {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Pgxsortd-Job", id)
		w.Header().Set("X-Pgxsortd-N", strconv.Itoa(n))
		cacheHdr := "miss"
		if cached {
			cacheHdr = "hit"
		}
		w.Header().Set("X-Pgxsortd-Cache", cacheHdr)
		if degraded {
			w.Header().Set("X-Pgxsortd-Degraded", "true")
		}
		w.Write(sorted)
		return
	}
	resp := sortResponse{
		JobID:     id,
		KeyType:   string(b.keyType()),
		N:         n,
		Cached:    cached,
		Degraded:  degraded,
		ElapsedMS: ms(time.Since(start)),
		KeysB64:   base64.StdEncoding.EncodeToString(sorted),
	}
	if rep != nil {
		resp.Report = &reportSummary{
			EngineMS:      ms(rep.Total),
			BytesSent:     rep.BytesSent,
			MsgsSent:      rep.MsgsSent,
			LocalSortPath: rep.LocalSortPath,
			MergePath:     rep.MergePath,
			AdmitWaitMS:   ms(rep.Sched.AdmitWait),
		}
	}
	writeJSON(w, resp)
}

// binarySortRequest reads the octet-stream shape's query parameters.
func (s *Server) binarySortRequest(r *http.Request) (*sortRequest, *apiError) {
	q := r.URL.Query()
	req := &sortRequest{
		Tenant:  q.Get("tenant"),
		KeyType: q.Get("key_type"),
		NoCache: q.Get("no_cache") == "true",
	}
	if v := q.Get("deadline_ms"); v != "" {
		d, err := strconv.ParseInt(v, 10, 64)
		if err != nil || d < 0 {
			return nil, badRequest("deadline_ms: %q is not a non-negative integer", v)
		}
		req.DeadlineMS = d
	}
	if v := q.Get("recbytes"); v != "" {
		rb, err := strconv.Atoi(v)
		if err != nil || rb < 0 {
			return nil, badRequest("recbytes: %q is not a non-negative integer", v)
		}
		req.RecBytes = rb
	}
	return req, nil
}

func (s *Server) lookupBackend(keyType string) (backend, *apiError) {
	b, err := s.backendFor(keyType)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	return b, nil
}

// rejectRequest accounts and answers a request refused before running.
func (s *Server) rejectRequest(w http.ResponseWriter, endpoint string, apiErr *apiError, start time.Time) {
	s.met.jobDone(endpoint, strconv.Itoa(apiErr.status), time.Since(start))
	switch apiErr.status {
	case http.StatusBadRequest:
		s.met.reject("bad_request")
	case http.StatusRequestEntityTooLarge:
		s.met.reject("too_large")
	case http.StatusRequestTimeout:
		s.met.reject("slow_client")
	case http.StatusInsufficientStorage:
		s.met.reject("spool_disk_full")
	}
	s.writeError(w, apiErr.status, apiErr.msg)
}

// handleTopK answers top-k / bottom-k without a full merge: each node
// preselects k candidates with a bounded heap and only p*k entries
// travel (see core.Engine.TopK).
func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	req, apiErr := s.decodeRequest(w, r)
	var b backend
	if apiErr == nil {
		b, apiErr = s.lookupBackend(req.KeyType)
	}
	var raw []byte
	var n int
	if apiErr == nil {
		raw, n, apiErr = s.resolveDataset(b, req)
	}
	if apiErr == nil && req.K <= 0 {
		apiErr = badRequest("k must be positive")
	}
	if apiErr != nil {
		s.rejectRequest(w, "topk", apiErr, start)
		return
	}
	id := s.jobID()
	ans, status, err := runQuery(s, r, req, func() (*topkAnswer, error) {
		return b.topk(raw, req.K, req.Bottom)
	})
	s.met.jobDone("topk", strconv.Itoa(status), time.Since(start))
	if err != nil {
		if status == http.StatusTooManyRequests {
			s.met.reject("queue_full")
		}
		s.jobs.add(newJobRecord(id, req.Tenant, "topk", b.keyType(), n, status, err, false, time.Since(start), nil))
		s.writeError(w, status, err.Error())
		return
	}
	s.jobs.add(newJobRecord(id, req.Tenant, "topk", b.keyType(), n, status, nil, false, time.Since(start), nil))
	resp := topkResponse{
		JobID:     id,
		KeyType:   string(b.keyType()),
		N:         ans.N,
		K:         req.K,
		Bottom:    req.Bottom,
		Entries:   make([]topkEntry, len(ans.Keys)),
		BytesSent: ans.Bytes,
		ElapsedMS: ms(time.Since(start)),
	}
	for i := range ans.Keys {
		resp.Entries[i] = topkEntry{Key: ans.Keys[i], Proc: ans.Procs[i]}
	}
	writeJSON(w, resp)
}

// handleRank locates one key in the dataset's global sort order by
// parallelizable counting — no sort, no redistribution.
func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	req, apiErr := s.decodeRequest(w, r)
	var b backend
	if apiErr == nil {
		b, apiErr = s.lookupBackend(req.KeyType)
	}
	var raw []byte
	if apiErr == nil {
		raw, _, apiErr = s.resolveDataset(b, req)
	}
	if apiErr == nil && req.Key == "" && b.keyType() != dist.KeyString {
		apiErr = badRequest("key is required")
	}
	if apiErr != nil {
		s.rejectRequest(w, "rank", apiErr, start)
		return
	}
	id := s.jobID()
	ans, status, err := runQuery(s, r, req, func() (*rankAnswer, error) {
		return b.rank(raw, req.Key)
	})
	s.met.jobDone("rank", strconv.Itoa(status), time.Since(start))
	if err != nil {
		if status == http.StatusTooManyRequests {
			s.met.reject("queue_full")
		}
		s.jobs.add(newJobRecord(id, req.Tenant, "rank", b.keyType(), 0, status, err, false, time.Since(start), nil))
		s.writeError(w, status, err.Error())
		return
	}
	s.jobs.add(newJobRecord(id, req.Tenant, "rank", b.keyType(), ans.N, status, nil, false, time.Since(start), nil))
	writeJSON(w, rankResponse{
		JobID:     id,
		KeyType:   string(b.keyType()),
		Key:       req.Key,
		Rank:      ans.Rank,
		Count:     ans.Count,
		N:         ans.N,
		ElapsedMS: ms(time.Since(start)),
	})
}

// runQuery is the admission wrapper for the sort-free queries (top-k,
// rank): same front door as sorts — draining check, bounded queue,
// tenant cap — but no scheduler stage, since the queries never enter
// the sort pipeline.
func runQuery[T any](s *Server, r *http.Request, req *sortRequest, run func() (T, error)) (ans T, status int, err error) {
	var zero T
	s.jobsWG.Add(1)
	defer s.jobsWG.Done()
	if s.draining.Load() {
		return zero, http.StatusServiceUnavailable, errors.New("server is draining")
	}
	ctx, cancel := s.jobCtx(r, req.DeadlineMS)
	defer cancel()
	release, st := s.adm.begin(ctx, req.Tenant)
	switch st {
	case admitQueueFull:
		return zero, http.StatusTooManyRequests, errors.New("admission queue is full; retry later")
	case admitDeadline:
		if errors.Is(ctx.Err(), context.Canceled) {
			return zero, StatusClientClosedRequest, fmt.Errorf("client went away waiting for tenant slot: %w", ctx.Err())
		}
		return zero, http.StatusGatewayTimeout, fmt.Errorf("deadline expired waiting for tenant slot: %v", ctx.Err())
	}
	defer release()
	s.met.jobStart()
	defer s.met.jobEnd()
	ans, err = run()
	if err != nil {
		return zero, http.StatusInternalServerError, err
	}
	return ans, http.StatusOK, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Draining() {
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	if s.Degraded() {
		// Still 200: the service answers sorts (on the fallback), so a
		// load balancer should keep it in rotation — but operators and
		// probes can see the mesh is suspect.
		io.WriteString(w, "degraded\n")
		return
	}
	io.WriteString(w, "ready\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, s.met.render(s))
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"jobs": s.jobs.list()})
}
