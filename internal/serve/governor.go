package serve

import (
	"sync"
)

// governor is the process-wide memory ledger: every admitted job
// reserves an estimated resident footprint before it runs and releases
// it when its response is written, so the server's aggregate memory
// commitment — not just the per-engine temporary budget — stays under
// one knob (Config.GovernorBudget). Reservations are heuristic
// (decode buffers + entries + result bytes for resident jobs, a small
// fixed window for spooled jobs), while the peak gauge also folds in
// each job's tracker-accounted engine peak, so the exported numbers mix
// an upper-bound admission estimate with measured truth.
type governor struct {
	budget int64 // <= 0 means unlimited (ledger still tracks)

	mu      sync.Mutex
	inuse   int64
	peak    int64 // high-water mark of inuse
	jobPeak int64 // max tracker-accounted per-job engine temp peak
	spooled int64 // jobs that took the spool path (counter)
}

func newGovernor(budget int64) *governor {
	return &governor{budget: budget}
}

// residentJobBytes estimates the resident footprint of an n-key job
// that runs fully in memory: decoded keys, the engine's entry slabs
// (roughly 2x48 bytes per entry across sort and exchange), and the
// re-encoded result.
func residentJobBytes(n int) int64 {
	return int64(n)*112 + 1<<20
}

// spooledJobBytes estimates the resident footprint of a spooled job:
// the pre-threshold accumulation plus stream buffers. The engine-side
// working set is separately bounded by MemoryBudget.
func spooledJobBytes(threshold int64) int64 {
	return threshold + 1<<20
}

// reserve claims bytes for one job; false means admitting it would
// push the ledger past the budget. A reservation larger than the whole
// budget can never succeed — callers map that onto 413, not 429.
func (g *governor) reserve(bytes int64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.budget > 0 && g.inuse+bytes > g.budget {
		return false
	}
	g.inuse += bytes
	if g.inuse > g.peak {
		g.peak = g.inuse
	}
	return true
}

// release returns a reservation to the ledger.
func (g *governor) release(bytes int64) {
	g.mu.Lock()
	g.inuse -= bytes
	g.mu.Unlock()
}

// oversized reports whether a reservation could never fit: the 413 case.
func (g *governor) oversized(bytes int64) bool {
	return g.budget > 0 && bytes > g.budget
}

// noteSpooled counts one job landed in the spill tier.
func (g *governor) noteSpooled() {
	g.mu.Lock()
	g.spooled++
	g.mu.Unlock()
}

// notePeak folds one job's measured engine temp peak into the gauge.
func (g *governor) notePeak(p int64) {
	g.mu.Lock()
	if p > g.jobPeak {
		g.jobPeak = p
	}
	g.mu.Unlock()
}

// stats snapshots the ledger for /metrics. peak is the larger of the
// reservation high-water mark and the worst measured per-job engine
// peak.
func (g *governor) stats() (inuse, peak, spooled, budget int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	peak = g.peak
	if g.jobPeak > peak {
		peak = g.jobPeak
	}
	b := g.budget
	if b < 0 {
		b = 0
	}
	return g.inuse, peak, g.spooled, b
}
