package serve

import (
	"cmp"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"pgxsort/internal/comm"
	"pgxsort/internal/core"
	"pgxsort/internal/dist"
	"pgxsort/internal/failpoint"
	"pgxsort/internal/keyio"
	"pgxsort/internal/spill"
)

// backend is one key domain's sorting surface: an engine plus its
// scheduler behind the canonical byte format of internal/keyio. The
// HTTP handlers speak only bytes and strings; the generic machinery
// lives behind this interface so the handler code is written once.
type backend interface {
	keyType() dist.KeyType
	// count validates canonical bytes and returns the number of keys.
	count(raw []byte) (int, error)
	// canonJSON parses JSON key values into canonical bytes.
	canonJSON(vals []json.RawMessage) ([]byte, error)
	// generate renders a deterministic synthetic dataset canonically.
	generate(g dist.Gen, n int, prefix string) []byte
	// sort runs one dataset through the scheduler and returns the
	// canonical sorted bytes. recbytes > 0 attaches that much opaque
	// payload ballast per key and takes the record path.
	sort(ctx context.Context, raw []byte, recbytes int) ([]byte, core.Report, error)
	// sortSingle is the degraded path: the same dataset on a lazily
	// built single-node engine that touches no mesh. The breaker routes
	// here when the distributed engine's links are presumed dead.
	sortSingle(ctx context.Context, raw []byte, recbytes int) ([]byte, core.Report, error)
	// retries reports the lifetime transient-failure retries performed
	// by this backend's schedulers (mesh plus fallback).
	retries() int64
	// topk answers a top-k / bottom-k query without a full merge.
	topk(raw []byte, k int, bottom bool) (*topkAnswer, error)
	// rank counts keys below and equal to target (given as a string).
	rank(raw []byte, target string) (*rankAnswer, error)
	// ingest streams one octet-stream body through the incremental
	// decoder: bodies at most threshold raw bytes accumulate resident
	// (and re-encode byte-identically, so cache hashing still works),
	// larger ones land in a spill-tier run file at spoolPath. A
	// threshold < 0 disables spooling. blockBytes sizes the spool's
	// blocks (0 = spill default); attempts bounds in-place retries of
	// transient spool-write failures.
	ingest(r io.Reader, spoolPath string, threshold int64, blockBytes, maxKeys, attempts int) (*ingestResult, *apiError)
	// sortSpooledTo runs one spooled upload through the scheduler's
	// out-of-core path and streams the canonical sorted bytes straight
	// from the final-merge cursor to w — no whole-result buffer. The
	// returned report carries the tracker-accounted TempPeakBytes.
	sortSpooledTo(ctx context.Context, path string, n int, w io.Writer) (core.Report, error)
	close() error
}

// topkAnswer is a keytype-erased core.TopKResult.
type topkAnswer struct {
	Keys    []string // selected keys, formatted (descending for top-k)
	Procs   []int    // originating processor per key
	N       int      // dataset size
	Bytes   int64    // query traffic: p*k candidates, not the dataset
	Elapsed time.Duration
}

// rankAnswer locates a key in the dataset's sort order without sorting:
// Rank keys order strictly below Target, Count equal it.
type rankAnswer struct {
	Rank  int
	Count int
	N     int
}

// typedBackend implements backend for one ordered key type K via a
// handful of per-type closures (encode/decode/parse/format/generate).
type typedBackend[K cmp.Ordered] struct {
	kt    dist.KeyType
	cfg   Config
	eng   *core.Engine[K]
	sched *core.Scheduler[K]
	procs int
	// mk rebuilds an engine of this key type from fresh options — the
	// degraded path uses it to construct the single-node fallback with
	// the same codec the mesh engine got.
	mk func(core.Options) (*core.Engine[K], error)

	// The single-node fallback engine, built on first use (most servers
	// never see a fatal mesh failure, so it costs nothing until then).
	fbMu    sync.Mutex
	fbBuilt bool
	fb      *core.Engine[K]
	fbSched *core.Scheduler[K]
	fbErr   error

	enc    func([]K) []byte
	dec    func([]byte) ([]K, error)
	parse  func(string) (K, error)
	format func(K) string
	less   func(a, b K) bool // total order (floats: IEEE-754 total order)
	gen    func(g dist.Gen, n int, prefix string) []K
	fromJS func(json.RawMessage) (K, error)
	// scan is the incremental ScanFunc for streaming ingress; codec is
	// the same record codec the engine uses, so upload spool files are
	// readable by the engine's spooled-sort readers.
	scan  keyio.ScanFunc[K]
	codec comm.Codec[K]
}

// newBackend builds the engine, scheduler and codec for one key domain.
// Every engine gets a payload-carrying codec so the same backend serves
// both plain key sorts and recbytes record sorts; the engine unwraps the
// key codec for the radix fast path either way.
func newBackend(kt dist.KeyType, cfg Config) (backend, error) {
	switch kt {
	case dist.KeyUint64:
		b := &typedBackend[uint64]{
			kt: kt, cfg: cfg,
			mk: func(o core.Options) (*core.Engine[uint64], error) {
				return core.NewEngine[uint64](o, comm.NewRecordCodec[uint64](comm.U64Codec{}))
			},
			enc:    keyio.EncodeUint64s,
			dec:    keyio.DecodeUint64s,
			parse:  parseU64,
			format: func(k uint64) string { return strconv.FormatUint(k, 10) },
			less:   func(a, b uint64) bool { return a < b },
			gen:    func(g dist.Gen, n int, _ string) []uint64 { return g.Keys(n) },
			fromJS: jsonU64,
			scan:   keyio.ScanUint64s,
			codec:  comm.NewRecordCodec[uint64](comm.U64Codec{}),
		}
		return initBackend(b, cfg)
	case dist.KeyFloat64:
		b := &typedBackend[float64]{
			kt: kt, cfg: cfg,
			mk: func(o core.Options) (*core.Engine[float64], error) {
				return core.NewEngine[float64](o, comm.NewRecordCodec[float64](comm.F64Codec{}))
			},
			enc:    keyio.EncodeFloat64s,
			dec:    keyio.DecodeFloat64s,
			parse:  parseF64,
			format: func(k float64) string { return strconv.FormatFloat(k, 'g', -1, 64) },
			less:   keyio.F64TotalLess,
			gen:    func(g dist.Gen, n int, _ string) []float64 { return g.Floats(n) },
			fromJS: jsonF64,
			scan:   keyio.ScanFloat64s,
			codec:  comm.NewRecordCodec[float64](comm.F64Codec{}),
		}
		return initBackend(b, cfg)
	case dist.KeyString:
		b := &typedBackend[string]{
			kt: kt, cfg: cfg,
			mk: func(o core.Options) (*core.Engine[string], error) {
				return core.NewEngine[string](o, comm.NewRecordCodec[string](comm.StringCodec{}))
			},
			enc:    keyio.EncodeStrings,
			dec:    keyio.DecodeStrings,
			parse:  func(s string) (string, error) { return s, nil },
			format: func(k string) string { return k },
			less:   func(a, b string) bool { return a < b },
			gen:    func(g dist.Gen, n int, prefix string) []string { return g.Strings(n, prefix) },
			fromJS: jsonStr,
			scan:   keyio.ScanStrings,
			codec:  comm.NewRecordCodec[string](comm.StringCodec{}),
		}
		return initBackend(b, cfg)
	default:
		return nil, fmt.Errorf("serve: unknown key type %q", kt)
	}
}

// initBackend builds the mesh engine and scheduler common to every case.
func initBackend[K cmp.Ordered](b *typedBackend[K], cfg Config) (backend, error) {
	eng, err := b.mk(cfg.engineOptions())
	if err != nil {
		return nil, fmt.Errorf("serve: %s engine: %w", b.kt, err)
	}
	b.eng = eng
	b.sched = core.NewScheduler(eng, core.SortManyOpts{Retry: cfg.retryPolicy()})
	b.procs = eng.Options().Procs
	return b, nil
}

func (b *typedBackend[K]) keyType() dist.KeyType { return b.kt }

func (b *typedBackend[K]) count(raw []byte) (int, error) {
	keys, err := b.dec(raw)
	if err != nil {
		return 0, err
	}
	return len(keys), nil
}

func (b *typedBackend[K]) canonJSON(vals []json.RawMessage) ([]byte, error) {
	keys := make([]K, len(vals))
	for i, v := range vals {
		k, err := b.fromJS(v)
		if err != nil {
			return nil, fmt.Errorf("keys[%d]: %w", i, err)
		}
		keys[i] = k
	}
	return b.enc(keys), nil
}

func (b *typedBackend[K]) generate(g dist.Gen, n int, prefix string) []byte {
	return b.enc(b.gen(g, n, prefix))
}

func (b *typedBackend[K]) sort(ctx context.Context, raw []byte, recbytes int) ([]byte, core.Report, error) {
	return b.sortOn(ctx, b.sched, b.procs, raw, recbytes)
}

// sortSingle runs the dataset on the single-node fallback engine. Every
// dataset the daemon admits already lives in this process's memory, so
// "fits on one node" is a policy question (Config.FallbackKeys), decided
// by the caller — here we just run it.
func (b *typedBackend[K]) sortSingle(ctx context.Context, raw []byte, recbytes int) ([]byte, core.Report, error) {
	sched, err := b.fallback()
	if err != nil {
		return nil, core.Report{}, err
	}
	return b.sortOn(ctx, sched, 1, raw, recbytes)
}

// fallback lazily builds the degraded single-node engine: one proc, the
// in-process transport, no fault plan — nothing that can touch the
// (presumed dead) mesh. The mesh engine's whole worker budget moves onto
// the one node so local sort and merge keep their parallelism.
func (b *typedBackend[K]) fallback() (*core.Scheduler[K], error) {
	b.fbMu.Lock()
	defer b.fbMu.Unlock()
	if !b.fbBuilt {
		b.fbBuilt = true
		o := core.Options{
			Procs:       1,
			BufferBytes: b.cfg.BufferBytes,
			LocalSort:   b.cfg.LocalSort,
			Merge:       b.cfg.Merge,
			MaxInflight: b.cfg.MaxInflight,
		}
		if b.cfg.Workers > 0 {
			o.WorkersPerProc = b.cfg.Workers * b.procs
		}
		eng, err := b.mk(o)
		if err != nil {
			b.fbErr = fmt.Errorf("serve: %s fallback engine: %w", b.kt, err)
		} else {
			b.fb = eng
			b.fbSched = core.NewScheduler(eng, core.SortManyOpts{Retry: b.cfg.retryPolicy()})
		}
	}
	return b.fbSched, b.fbErr
}

func (b *typedBackend[K]) retries() int64 {
	n := b.sched.Retries()
	b.fbMu.Lock()
	if b.fbSched != nil {
		n += b.fbSched.Retries()
	}
	b.fbMu.Unlock()
	return n
}

// sortOn is the shared sort body: decode, split into procs blocks, run
// through the given scheduler, re-encode.
func (b *typedBackend[K]) sortOn(ctx context.Context, sched *core.Scheduler[K], procs int, raw []byte, recbytes int) ([]byte, core.Report, error) {
	keys, err := b.dec(raw)
	if err != nil {
		return nil, core.Report{}, err
	}
	var res *core.Result[K]
	if recbytes > 0 {
		// Record path: opaque zero-byte ballast rides each key through
		// exchange and merge, exercising the payload wire format and the
		// service's bandwidth cost without inventing a record schema.
		parts := blocks(keys, procs)
		recs := make([][]comm.Record[K], len(parts))
		for i, part := range parts {
			rp := make([]comm.Record[K], len(part))
			ballast := make([]byte, recbytes)
			for j, k := range part {
				rp[j] = comm.Record[K]{Key: k, Payload: ballast}
			}
			recs[i] = rp
		}
		res, err = sched.RunOneRecords(ctx, recs)
	} else {
		res, err = sched.RunOne(ctx, blocks(keys, procs))
	}
	if err != nil {
		return nil, core.Report{}, err
	}
	return b.enc(res.Keys()), res.Report.Snapshot(), nil
}

// ingest streams one canonical body. While the raw stream fits the
// threshold, decoded keys accumulate and re-encode byte-identically to
// the input (the canonical encodings are bijective), so the resident
// path feeds the same bytes to the cache hash that io.ReadAll used to.
// Past the threshold the accumulation replays into a spill run file and
// every further batch follows it — the body's resident footprint stays
// one decoder window plus one batch, however large the upload.
func (b *typedBackend[K]) ingest(r io.Reader, spoolPath string, threshold int64, blockBytes, maxKeys, attempts int) (*ingestResult, *apiError) {
	dec := keyio.NewStreamDecoder(r, b.scan, 0)
	var (
		keys []K
		w    *spill.Writer[K]
		ents []comm.Entry[K]
		n    int
	)
	fail := func(apiErr *apiError) (*ingestResult, *apiError) {
		if w != nil {
			w.Abort() // closes and removes the partial run file
		}
		return nil, apiErr
	}
	// spoolBatch appends one batch to the run file. An injected
	// spool-write failure is Transient and the batch is still resident,
	// so it retries in place instead of failing the whole upload.
	spoolBatch := func(batch []K) *apiError {
		ents = ents[:0]
		for _, k := range batch {
			ents = append(ents, comm.Entry[K]{Key: k})
		}
		for attempt := 1; ; attempt++ {
			err := failpoint.HitNoPanic(FpSpoolWrite)
			if err == nil {
				err = w.Append(ents)
			}
			if err == nil {
				return nil
			}
			if core.Classify(err) == core.FailTransient && attempt < attempts {
				continue
			}
			return uploadError(err, b.kt)
		}
	}
	batch := make([]K, 0, 4096)
	for {
		var err error
		batch, err = dec.Next(batch[:0])
		if len(batch) > 0 {
			n += len(batch)
			if n > maxKeys {
				return fail(&apiError{http.StatusRequestEntityTooLarge,
					fmt.Sprintf("%d keys exceeds the %d-key limit", n, maxKeys)})
			}
			if w == nil && threshold >= 0 && dec.BytesRead() > threshold {
				sw, werr := spill.NewWriter(spoolPath, b.codec, blockBytes)
				if werr != nil {
					return fail(uploadError(werr, b.kt))
				}
				w = sw
				if len(keys) > 0 {
					if apiErr := spoolBatch(keys); apiErr != nil {
						return fail(apiErr)
					}
					keys = nil
				}
			}
			if w != nil {
				if apiErr := spoolBatch(batch); apiErr != nil {
					return fail(apiErr)
				}
			} else {
				keys = append(keys, batch...)
			}
		}
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return fail(uploadError(err, b.kt))
		}
	}
	if w != nil {
		if err := w.Finish(); err != nil {
			w.Abort()
			return nil, uploadError(err, b.kt)
		}
		return &ingestResult{spool: spoolPath, n: n}, nil
	}
	return &ingestResult{resident: b.enc(keys), n: n}, nil
}

// sortSpooledTo runs one spooled upload out of core and streams the
// answer: each final-merge batch re-encodes and goes straight to w, so
// the response never exists whole in memory.
func (b *typedBackend[K]) sortSpooledTo(ctx context.Context, path string, n int, w io.Writer) (core.Report, error) {
	res, err := b.sched.RunOneSpooled(ctx, core.SpooledInput{Path: path, N: n, ReadSite: FpSpoolRead})
	if err != nil {
		return core.Report{}, err
	}
	keys := make([]K, 0, 4096)
	for {
		batch, berr := res.Next()
		if berr != nil {
			res.Close()
			return core.Report{}, berr
		}
		if len(batch) == 0 {
			break
		}
		keys = keys[:0]
		for _, e := range batch {
			keys = append(keys, e.Key)
		}
		if _, werr := w.Write(b.enc(keys)); werr != nil {
			res.Close()
			return core.Report{}, werr
		}
	}
	// Close settles TempPeakBytes and the spill counters in the report.
	if cerr := res.Close(); cerr != nil {
		return core.Report{}, cerr
	}
	return res.Report.Snapshot(), nil
}

func (b *typedBackend[K]) topk(raw []byte, k int, bottom bool) (*topkAnswer, error) {
	keys, err := b.dec(raw)
	if err != nil {
		return nil, err
	}
	parts := blocks(keys, b.procs)
	var res *core.TopKResult[K]
	if bottom {
		res, err = b.eng.BottomK(parts, k)
	} else {
		res, err = b.eng.TopK(parts, k)
	}
	if err != nil {
		return nil, err
	}
	ans := &topkAnswer{N: len(keys), Bytes: res.BytesSent, Elapsed: res.Duration}
	for _, e := range res.Entries {
		ans.Keys = append(ans.Keys, b.format(e.Key))
		ans.Procs = append(ans.Procs, int(e.Proc))
	}
	return ans, nil
}

func (b *typedBackend[K]) rank(raw []byte, target string) (*rankAnswer, error) {
	keys, err := b.dec(raw)
	if err != nil {
		return nil, err
	}
	t, err := b.parse(target)
	if err != nil {
		return nil, fmt.Errorf("key: %w", err)
	}
	ans := &rankAnswer{N: len(keys)}
	for _, k := range keys {
		switch {
		case b.less(k, t):
			ans.Rank++
		case !b.less(t, k):
			ans.Count++
		}
	}
	return ans, nil
}

func (b *typedBackend[K]) close() error {
	err := b.eng.Close()
	b.fbMu.Lock()
	defer b.fbMu.Unlock()
	if b.fb != nil {
		if ferr := b.fb.Close(); err == nil {
			err = ferr
		}
	}
	return err
}

// blocks splits data into p contiguous parts, sizes differing by at most
// one — the same block distribution the CLI and facade use.
func blocks[K any](data []K, p int) [][]K {
	parts := make([][]K, p)
	base, rem := len(data)/p, len(data)%p
	off := 0
	for i := range parts {
		n := base
		if i < rem {
			n++
		}
		parts[i] = data[off : off+n]
		off += n
	}
	return parts
}

// parseU64 accepts decimal uint64 text (the JSON-safe string form).
func parseU64(s string) (uint64, error) {
	return strconv.ParseUint(strings.TrimSpace(s), 10, 64)
}

// parseF64 accepts decimal float text plus NaN / ±Inf spellings.
func parseF64(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(s), 64)
}

// jsonU64 accepts a JSON number or a decimal string. Strings exist
// because JSON numbers lose precision above 2^53 in most clients;
// numbers are still parsed from the raw text, so integral values beyond
// 2^53 survive when the client emits them exactly.
func jsonU64(v json.RawMessage) (uint64, error) {
	s := strings.TrimSpace(string(v))
	if strings.HasPrefix(s, `"`) {
		var str string
		if err := json.Unmarshal(v, &str); err != nil {
			return 0, err
		}
		return parseU64(str)
	}
	return parseU64(s)
}

// jsonF64 accepts a JSON number or a string ("NaN", "+Inf", "-Inf",
// or any decimal float — strings are the only way to send non-finite
// values in JSON).
func jsonF64(v json.RawMessage) (float64, error) {
	s := strings.TrimSpace(string(v))
	if strings.HasPrefix(s, `"`) {
		var str string
		if err := json.Unmarshal(v, &str); err != nil {
			return 0, err
		}
		return parseF64(str)
	}
	return parseF64(s)
}

// jsonStr accepts a JSON string.
func jsonStr(v json.RawMessage) (string, error) {
	var s string
	if err := json.Unmarshal(v, &s); err != nil {
		return "", err
	}
	return s, nil
}
