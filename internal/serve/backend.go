package serve

import (
	"cmp"
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"pgxsort/internal/comm"
	"pgxsort/internal/core"
	"pgxsort/internal/dist"
	"pgxsort/internal/keyio"
)

// backend is one key domain's sorting surface: an engine plus its
// scheduler behind the canonical byte format of internal/keyio. The
// HTTP handlers speak only bytes and strings; the generic machinery
// lives behind this interface so the handler code is written once.
type backend interface {
	keyType() dist.KeyType
	// count validates canonical bytes and returns the number of keys.
	count(raw []byte) (int, error)
	// canonJSON parses JSON key values into canonical bytes.
	canonJSON(vals []json.RawMessage) ([]byte, error)
	// generate renders a deterministic synthetic dataset canonically.
	generate(g dist.Gen, n int, prefix string) []byte
	// sort runs one dataset through the scheduler and returns the
	// canonical sorted bytes. recbytes > 0 attaches that much opaque
	// payload ballast per key and takes the record path.
	sort(ctx context.Context, raw []byte, recbytes int) ([]byte, core.Report, error)
	// topk answers a top-k / bottom-k query without a full merge.
	topk(raw []byte, k int, bottom bool) (*topkAnswer, error)
	// rank counts keys below and equal to target (given as a string).
	rank(raw []byte, target string) (*rankAnswer, error)
	close() error
}

// topkAnswer is a keytype-erased core.TopKResult.
type topkAnswer struct {
	Keys    []string // selected keys, formatted (descending for top-k)
	Procs   []int    // originating processor per key
	N       int      // dataset size
	Bytes   int64    // query traffic: p*k candidates, not the dataset
	Elapsed time.Duration
}

// rankAnswer locates a key in the dataset's sort order without sorting:
// Rank keys order strictly below Target, Count equal it.
type rankAnswer struct {
	Rank  int
	Count int
	N     int
}

// typedBackend implements backend for one ordered key type K via a
// handful of per-type closures (encode/decode/parse/format/generate).
type typedBackend[K cmp.Ordered] struct {
	kt    dist.KeyType
	eng   *core.Engine[K]
	sched *core.Scheduler[K]
	procs int

	enc    func([]K) []byte
	dec    func([]byte) ([]K, error)
	parse  func(string) (K, error)
	format func(K) string
	less   func(a, b K) bool // total order (floats: IEEE-754 total order)
	gen    func(g dist.Gen, n int, prefix string) []K
	fromJS func(json.RawMessage) (K, error)
}

// newBackend builds the engine, scheduler and codec for one key domain.
// Every engine gets a payload-carrying codec so the same backend serves
// both plain key sorts and recbytes record sorts; the engine unwraps the
// key codec for the radix fast path either way.
func newBackend(kt dist.KeyType, cfg Config) (backend, error) {
	opts := cfg.engineOptions()
	switch kt {
	case dist.KeyUint64:
		eng, err := core.NewEngine[uint64](opts, comm.NewRecordCodec[uint64](comm.U64Codec{}))
		if err != nil {
			return nil, fmt.Errorf("serve: %s engine: %w", kt, err)
		}
		return &typedBackend[uint64]{
			kt: kt, eng: eng, sched: core.NewScheduler(eng, core.SortManyOpts{}),
			procs:  eng.Options().Procs,
			enc:    keyio.EncodeUint64s,
			dec:    keyio.DecodeUint64s,
			parse:  parseU64,
			format: func(k uint64) string { return strconv.FormatUint(k, 10) },
			less:   func(a, b uint64) bool { return a < b },
			gen:    func(g dist.Gen, n int, _ string) []uint64 { return g.Keys(n) },
			fromJS: jsonU64,
		}, nil
	case dist.KeyFloat64:
		eng, err := core.NewEngine[float64](opts, comm.NewRecordCodec[float64](comm.F64Codec{}))
		if err != nil {
			return nil, fmt.Errorf("serve: %s engine: %w", kt, err)
		}
		return &typedBackend[float64]{
			kt: kt, eng: eng, sched: core.NewScheduler(eng, core.SortManyOpts{}),
			procs:  eng.Options().Procs,
			enc:    keyio.EncodeFloat64s,
			dec:    keyio.DecodeFloat64s,
			parse:  parseF64,
			format: func(k float64) string { return strconv.FormatFloat(k, 'g', -1, 64) },
			less:   keyio.F64TotalLess,
			gen:    func(g dist.Gen, n int, _ string) []float64 { return g.Floats(n) },
			fromJS: jsonF64,
		}, nil
	case dist.KeyString:
		eng, err := core.NewEngine[string](opts, comm.NewRecordCodec[string](comm.StringCodec{}))
		if err != nil {
			return nil, fmt.Errorf("serve: %s engine: %w", kt, err)
		}
		return &typedBackend[string]{
			kt: kt, eng: eng, sched: core.NewScheduler(eng, core.SortManyOpts{}),
			procs:  eng.Options().Procs,
			enc:    keyio.EncodeStrings,
			dec:    keyio.DecodeStrings,
			parse:  func(s string) (string, error) { return s, nil },
			format: func(k string) string { return k },
			less:   func(a, b string) bool { return a < b },
			gen:    func(g dist.Gen, n int, prefix string) []string { return g.Strings(n, prefix) },
			fromJS: jsonStr,
		}, nil
	default:
		return nil, fmt.Errorf("serve: unknown key type %q", kt)
	}
}

func (b *typedBackend[K]) keyType() dist.KeyType { return b.kt }

func (b *typedBackend[K]) count(raw []byte) (int, error) {
	keys, err := b.dec(raw)
	if err != nil {
		return 0, err
	}
	return len(keys), nil
}

func (b *typedBackend[K]) canonJSON(vals []json.RawMessage) ([]byte, error) {
	keys := make([]K, len(vals))
	for i, v := range vals {
		k, err := b.fromJS(v)
		if err != nil {
			return nil, fmt.Errorf("keys[%d]: %w", i, err)
		}
		keys[i] = k
	}
	return b.enc(keys), nil
}

func (b *typedBackend[K]) generate(g dist.Gen, n int, prefix string) []byte {
	return b.enc(b.gen(g, n, prefix))
}

func (b *typedBackend[K]) sort(ctx context.Context, raw []byte, recbytes int) ([]byte, core.Report, error) {
	keys, err := b.dec(raw)
	if err != nil {
		return nil, core.Report{}, err
	}
	var res *core.Result[K]
	if recbytes > 0 {
		// Record path: opaque zero-byte ballast rides each key through
		// exchange and merge, exercising the payload wire format and the
		// service's bandwidth cost without inventing a record schema.
		parts := blocks(keys, b.procs)
		recs := make([][]comm.Record[K], len(parts))
		for i, part := range parts {
			rp := make([]comm.Record[K], len(part))
			ballast := make([]byte, recbytes)
			for j, k := range part {
				rp[j] = comm.Record[K]{Key: k, Payload: ballast}
			}
			recs[i] = rp
		}
		res, err = b.sched.RunOneRecords(ctx, recs)
	} else {
		res, err = b.sched.RunOne(ctx, blocks(keys, b.procs))
	}
	if err != nil {
		return nil, core.Report{}, err
	}
	return b.enc(res.Keys()), res.Report.Snapshot(), nil
}

func (b *typedBackend[K]) topk(raw []byte, k int, bottom bool) (*topkAnswer, error) {
	keys, err := b.dec(raw)
	if err != nil {
		return nil, err
	}
	parts := blocks(keys, b.procs)
	var res *core.TopKResult[K]
	if bottom {
		res, err = b.eng.BottomK(parts, k)
	} else {
		res, err = b.eng.TopK(parts, k)
	}
	if err != nil {
		return nil, err
	}
	ans := &topkAnswer{N: len(keys), Bytes: res.BytesSent, Elapsed: res.Duration}
	for _, e := range res.Entries {
		ans.Keys = append(ans.Keys, b.format(e.Key))
		ans.Procs = append(ans.Procs, int(e.Proc))
	}
	return ans, nil
}

func (b *typedBackend[K]) rank(raw []byte, target string) (*rankAnswer, error) {
	keys, err := b.dec(raw)
	if err != nil {
		return nil, err
	}
	t, err := b.parse(target)
	if err != nil {
		return nil, fmt.Errorf("key: %w", err)
	}
	ans := &rankAnswer{N: len(keys)}
	for _, k := range keys {
		switch {
		case b.less(k, t):
			ans.Rank++
		case !b.less(t, k):
			ans.Count++
		}
	}
	return ans, nil
}

func (b *typedBackend[K]) close() error { return b.eng.Close() }

// blocks splits data into p contiguous parts, sizes differing by at most
// one — the same block distribution the CLI and facade use.
func blocks[K any](data []K, p int) [][]K {
	parts := make([][]K, p)
	base, rem := len(data)/p, len(data)%p
	off := 0
	for i := range parts {
		n := base
		if i < rem {
			n++
		}
		parts[i] = data[off : off+n]
		off += n
	}
	return parts
}

// parseU64 accepts decimal uint64 text (the JSON-safe string form).
func parseU64(s string) (uint64, error) {
	return strconv.ParseUint(strings.TrimSpace(s), 10, 64)
}

// parseF64 accepts decimal float text plus NaN / ±Inf spellings.
func parseF64(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(s), 64)
}

// jsonU64 accepts a JSON number or a decimal string. Strings exist
// because JSON numbers lose precision above 2^53 in most clients;
// numbers are still parsed from the raw text, so integral values beyond
// 2^53 survive when the client emits them exactly.
func jsonU64(v json.RawMessage) (uint64, error) {
	s := strings.TrimSpace(string(v))
	if strings.HasPrefix(s, `"`) {
		var str string
		if err := json.Unmarshal(v, &str); err != nil {
			return 0, err
		}
		return parseU64(str)
	}
	return parseU64(s)
}

// jsonF64 accepts a JSON number or a string ("NaN", "+Inf", "-Inf",
// or any decimal float — strings are the only way to send non-finite
// values in JSON).
func jsonF64(v json.RawMessage) (float64, error) {
	s := strings.TrimSpace(string(v))
	if strings.HasPrefix(s, `"`) {
		var str string
		if err := json.Unmarshal(v, &str); err != nil {
			return 0, err
		}
		return parseF64(str)
	}
	return parseF64(s)
}

// jsonStr accepts a JSON string.
func jsonStr(v json.RawMessage) (string, error) {
	var s string
	if err := json.Unmarshal(v, &s); err != nil {
		return "", err
	}
	return s, nil
}
