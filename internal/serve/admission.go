package serve

import (
	"context"
	"sync"
)

// admission is the service's load front door, layered in front of each
// engine's scheduler:
//
//	queue   — one buffered channel bounding jobs in the building
//	          (waiting + running, all tenants). A full queue answers
//	          429 immediately instead of queueing unboundedly.
//	tenants — a semaphore per tenant name capping one tenant's admitted
//	          jobs, so a flood from one client waits behind its own cap
//	          while other tenants keep flowing. Acquisition blocks but
//	          honors the job's deadline context.
//
// Past admission, the engine's core.Scheduler enforces the global
// MaxInflight and the one-dataset-per-communication-stage rule.
type admission struct {
	queue     chan struct{}
	tenantCap int

	mu      sync.Mutex
	tenants map[string]*tenantSem
}

// tenantSem is one tenant's inflight semaphore, reference-counted so
// idle tenants do not accumulate in the map forever.
type tenantSem struct {
	slots chan struct{}
	refs  int
}

func newAdmission(queueDepth, tenantCap int) *admission {
	return &admission{
		queue:     make(chan struct{}, queueDepth),
		tenantCap: tenantCap,
		tenants:   make(map[string]*tenantSem),
	}
}

// admissionStatus says why begin refused a job.
type admissionStatus int

const (
	admitOK admissionStatus = iota
	admitQueueFull
	admitDeadline
)

// begin admits one job for tenant (empty means the anonymous tenant).
// On admitOK the caller must call the returned release exactly once.
func (a *admission) begin(ctx context.Context, tenant string) (release func(), st admissionStatus) {
	select {
	case a.queue <- struct{}{}:
	default:
		return nil, admitQueueFull
	}
	sem := a.retain(tenant)
	select {
	case sem.slots <- struct{}{}:
	case <-ctx.Done():
		a.release(tenant)
		<-a.queue
		return nil, admitDeadline
	}
	return func() {
		<-sem.slots
		a.release(tenant)
		<-a.queue
	}, admitOK
}

// Depth reports how many jobs currently hold queue slots, and the cap.
func (a *admission) depth() (held, capacity int) {
	return len(a.queue), cap(a.queue)
}

func (a *admission) retain(tenant string) *tenantSem {
	a.mu.Lock()
	defer a.mu.Unlock()
	sem := a.tenants[tenant]
	if sem == nil {
		sem = &tenantSem{slots: make(chan struct{}, a.tenantCap)}
		a.tenants[tenant] = sem
	}
	sem.refs++
	return sem
}

func (a *admission) release(tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	sem := a.tenants[tenant]
	sem.refs--
	if sem.refs == 0 {
		delete(a.tenants, tenant)
	}
}
