package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"pgxsort/internal/core"
	"pgxsort/internal/dist"
)

// metrics aggregates per-job engine reports into service-lifetime
// counters and renders them in the Prometheus text exposition format
// (hand-rolled — no client library, per the no-new-deps rule). Counters
// only ever grow; gauges (inflight, queue depth, cache bytes) are read
// from their owners at scrape time.
type metrics struct {
	start time.Time

	mu         sync.Mutex
	jobs       map[string]int64   // endpoint|status -> count
	rejected   map[string]int64   // reason -> count
	jobSeconds map[string]float64 // endpoint -> summed wall time
	inflight   int64

	keysSorted   int64
	stepSeconds  [core.NumSteps]float64
	admitWaitSec float64
	gateWaitSec  [core.NumSchedStages]float64

	commBytes, commMsgs      int64
	reconnects, framesResent int64
	sendStallSec             float64
	overlapSavedSec          float64
	spillBytes, spillReads   int64

	failures map[string]int64 // failure class -> engine sorts failed
	degraded int64            // jobs answered on the single-node fallback
}

func newMetrics() *metrics {
	return &metrics{
		start:      time.Now(),
		jobs:       make(map[string]int64),
		rejected:   make(map[string]int64),
		jobSeconds: make(map[string]float64),
		failures:   make(map[string]int64),
	}
}

// failure counts one engine sort that died, by failure class.
func (m *metrics) failure(class core.FailureClass) {
	m.mu.Lock()
	m.failures[class.String()]++
	m.mu.Unlock()
}

// degradedJob counts one sort answered on the single-node fallback.
func (m *metrics) degradedJob() {
	m.mu.Lock()
	m.degraded++
	m.mu.Unlock()
}

// jobStart / jobEnd bracket one executing job for the inflight gauge.
func (m *metrics) jobStart() {
	m.mu.Lock()
	m.inflight++
	m.mu.Unlock()
}

func (m *metrics) jobEnd() {
	m.mu.Lock()
	m.inflight--
	m.mu.Unlock()
}

// jobDone records one finished request — any outcome, executed or not.
func (m *metrics) jobDone(endpoint, status string, elapsed time.Duration) {
	m.mu.Lock()
	m.jobs[endpoint+"|"+status]++
	m.jobSeconds[endpoint] += elapsed.Seconds()
	m.mu.Unlock()
}

func (m *metrics) reject(reason string) {
	m.mu.Lock()
	m.rejected[reason]++
	m.mu.Unlock()
}

// absorb folds one sort's report snapshot into the lifetime counters.
func (m *metrics) absorb(rep *core.Report) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.keysSorted += int64(rep.N)
	for s := core.Step(0); s < core.NumSteps; s++ {
		m.stepSeconds[s] += rep.Steps[s].Seconds()
	}
	m.admitWaitSec += rep.Sched.AdmitWait.Seconds()
	for st := core.SchedStage(0); st < core.NumSchedStages; st++ {
		m.gateWaitSec[st] += rep.Sched.StageWait[st].Seconds()
	}
	m.commBytes += rep.BytesSent
	m.commMsgs += rep.MsgsSent
	m.reconnects += rep.Reconnects
	m.framesResent += rep.FramesResent
	m.sendStallSec += rep.SendStall.Seconds()
	m.overlapSavedSec += rep.MergeOverlapSaved.Seconds()
	m.spillBytes += rep.SpillBytes
	m.spillReads += rep.SpillReads
}

// render writes the whole exposition. Label sets are emitted in sorted
// order so consecutive scrapes diff cleanly.
func (m *metrics) render(s *Server) string {
	var b strings.Builder
	up := 1
	if s.Draining() {
		up = 0
	}
	fmt.Fprintf(&b, "# HELP pgxsortd_up 1 while serving, 0 while draining.\n# TYPE pgxsortd_up gauge\npgxsortd_up %d\n", up)
	fmt.Fprintf(&b, "# HELP pgxsortd_uptime_seconds Seconds since the server started.\n# TYPE pgxsortd_uptime_seconds gauge\npgxsortd_uptime_seconds %.3f\n", time.Since(m.start).Seconds())

	m.mu.Lock()
	fmt.Fprintf(&b, "# HELP pgxsortd_jobs_total Requests finished, by endpoint and status.\n# TYPE pgxsortd_jobs_total counter\n")
	for _, k := range sortedKeys(m.jobs) {
		ep, st, _ := strings.Cut(k, "|")
		fmt.Fprintf(&b, "pgxsortd_jobs_total{endpoint=%q,status=%q} %d\n", ep, st, m.jobs[k])
	}
	fmt.Fprintf(&b, "# HELP pgxsortd_jobs_inflight Jobs currently executing.\n# TYPE pgxsortd_jobs_inflight gauge\npgxsortd_jobs_inflight %d\n", m.inflight)
	held, capacity := s.adm.depth()
	fmt.Fprintf(&b, "# HELP pgxsortd_admission_queue_depth Jobs holding admission slots (waiting+running).\n# TYPE pgxsortd_admission_queue_depth gauge\npgxsortd_admission_queue_depth %d\n", held)
	fmt.Fprintf(&b, "# HELP pgxsortd_admission_queue_capacity Admission slot capacity (Config.QueueDepth).\n# TYPE pgxsortd_admission_queue_capacity gauge\npgxsortd_admission_queue_capacity %d\n", capacity)
	fmt.Fprintf(&b, "# HELP pgxsortd_rejected_total Requests refused before running, by reason.\n# TYPE pgxsortd_rejected_total counter\n")
	for _, k := range sortedKeys(m.rejected) {
		fmt.Fprintf(&b, "pgxsortd_rejected_total{reason=%q} %d\n", k, m.rejected[k])
	}
	fmt.Fprintf(&b, "# HELP pgxsortd_job_seconds_total Wall time summed over finished requests, by endpoint.\n# TYPE pgxsortd_job_seconds_total counter\n")
	for _, k := range sortedFloatKeys(m.jobSeconds) {
		fmt.Fprintf(&b, "pgxsortd_job_seconds_total{endpoint=%q} %.6f\n", k, m.jobSeconds[k])
	}
	fmt.Fprintf(&b, "# HELP pgxsortd_keys_sorted_total Keys sorted by completed engine runs (cache hits excluded).\n# TYPE pgxsortd_keys_sorted_total counter\npgxsortd_keys_sorted_total %d\n", m.keysSorted)
	fmt.Fprintf(&b, "# HELP pgxsortd_step_seconds_total Critical-path seconds per pipeline step, summed over sorts.\n# TYPE pgxsortd_step_seconds_total counter\n")
	for st := core.Step(0); st < core.NumSteps; st++ {
		fmt.Fprintf(&b, "pgxsortd_step_seconds_total{step=%q} %.6f\n", st.String(), m.stepSeconds[st])
	}
	fmt.Fprintf(&b, "# HELP pgxsortd_sched_admit_wait_seconds_total Seconds jobs waited for a scheduler admission slot.\n# TYPE pgxsortd_sched_admit_wait_seconds_total counter\npgxsortd_sched_admit_wait_seconds_total %.6f\n", m.admitWaitSec)
	fmt.Fprintf(&b, "# HELP pgxsortd_sched_gate_wait_seconds_total Seconds jobs waited at serialized stage gates, by stage.\n# TYPE pgxsortd_sched_gate_wait_seconds_total counter\n")
	for st := core.SchedStage(0); st < core.NumSchedStages; st++ {
		if !st.Serial() {
			continue
		}
		fmt.Fprintf(&b, "pgxsortd_sched_gate_wait_seconds_total{stage=%q} %.6f\n", st.String(), m.gateWaitSec[st])
	}
	fmt.Fprintf(&b, "# HELP pgxsortd_comm_bytes_total Logical payload bytes sent on the wire by completed sorts.\n# TYPE pgxsortd_comm_bytes_total counter\npgxsortd_comm_bytes_total %d\n", m.commBytes)
	fmt.Fprintf(&b, "# HELP pgxsortd_comm_msgs_total Messages sent by completed sorts.\n# TYPE pgxsortd_comm_msgs_total counter\npgxsortd_comm_msgs_total %d\n", m.commMsgs)
	fmt.Fprintf(&b, "# HELP pgxsortd_transport_reconnects_total Connections re-established during sorts.\n# TYPE pgxsortd_transport_reconnects_total counter\npgxsortd_transport_reconnects_total %d\n", m.reconnects)
	fmt.Fprintf(&b, "# HELP pgxsortd_transport_frames_resent_total Frames retransmitted after reconnects.\n# TYPE pgxsortd_transport_frames_resent_total counter\npgxsortd_transport_frames_resent_total %d\n", m.framesResent)
	fmt.Fprintf(&b, "# HELP pgxsortd_transport_send_stall_seconds_total Worst-node send stall seconds, summed over sorts.\n# TYPE pgxsortd_transport_send_stall_seconds_total counter\npgxsortd_transport_send_stall_seconds_total %.6f\n", m.sendStallSec)
	fmt.Fprintf(&b, "# HELP pgxsortd_merge_overlap_saved_seconds_total Merge seconds hidden inside the exchange window, summed over sorts.\n# TYPE pgxsortd_merge_overlap_saved_seconds_total counter\npgxsortd_merge_overlap_saved_seconds_total %.6f\n", m.overlapSavedSec)
	fmt.Fprintf(&b, "# HELP pgxsortd_spill_bytes_total Bytes written to spill run files under the memory budget.\n# TYPE pgxsortd_spill_bytes_total counter\npgxsortd_spill_bytes_total %d\n", m.spillBytes)
	fmt.Fprintf(&b, "# HELP pgxsortd_spill_read_bytes_total Spill bytes read back while merging out-of-core runs.\n# TYPE pgxsortd_spill_read_bytes_total counter\npgxsortd_spill_read_bytes_total %d\n", m.spillReads)
	fmt.Fprintf(&b, "# HELP pgxsortd_failures_total Engine sorts that failed, by failure class (see core.FailureClass).\n# TYPE pgxsortd_failures_total counter\n")
	for _, k := range sortedKeys(m.failures) {
		fmt.Fprintf(&b, "pgxsortd_failures_total{class=%q} %d\n", k, m.failures[k])
	}
	fmt.Fprintf(&b, "# HELP pgxsortd_degraded_jobs_total Sorts answered on the single-node fallback engine.\n# TYPE pgxsortd_degraded_jobs_total counter\npgxsortd_degraded_jobs_total %d\n", m.degraded)
	m.mu.Unlock()

	var retries int64
	for _, bk := range s.backends {
		retries += bk.retries()
	}
	fmt.Fprintf(&b, "# HELP pgxsortd_retries_total Transient engine failures retried by the schedulers.\n# TYPE pgxsortd_retries_total counter\npgxsortd_retries_total %d\n", retries)
	kts := make([]string, 0, len(s.breakers))
	for kt := range s.breakers {
		kts = append(kts, string(kt))
	}
	sort.Strings(kts)
	fmt.Fprintf(&b, "# HELP pgxsortd_breaker_state Mesh circuit-breaker state per key type: 0 closed, 1 open, 2 half-open.\n# TYPE pgxsortd_breaker_state gauge\n")
	for _, kt := range kts {
		st, _, _ := s.breakers[dist.KeyType(kt)].snapshot()
		fmt.Fprintf(&b, "pgxsortd_breaker_state{key_type=%q} %d\n", kt, st)
	}
	fmt.Fprintf(&b, "# HELP pgxsortd_breaker_opens_total Breaker open transitions per key type.\n# TYPE pgxsortd_breaker_opens_total counter\n")
	for _, kt := range kts {
		_, _, opens := s.breakers[dist.KeyType(kt)].snapshot()
		fmt.Fprintf(&b, "pgxsortd_breaker_opens_total{key_type=%q} %d\n", kt, opens)
	}

	hits, misses, evictions, skipped, bytes, entries, budget := s.cache.stats()
	fmt.Fprintf(&b, "# HELP pgxsortd_cache_hits_total Sort results served from the content-hash cache.\n# TYPE pgxsortd_cache_hits_total counter\npgxsortd_cache_hits_total %d\n", hits)
	fmt.Fprintf(&b, "# HELP pgxsortd_cache_misses_total Cache probes that went to the engine.\n# TYPE pgxsortd_cache_misses_total counter\npgxsortd_cache_misses_total %d\n", misses)
	fmt.Fprintf(&b, "# HELP pgxsortd_cache_evictions_total Entries evicted to stay under the byte budget.\n# TYPE pgxsortd_cache_evictions_total counter\npgxsortd_cache_evictions_total %d\n", evictions)
	fmt.Fprintf(&b, "# HELP pgxsortd_cache_skipped_total Results not cached because they exceed the per-entry size cap.\n# TYPE pgxsortd_cache_skipped_total counter\npgxsortd_cache_skipped_total %d\n", skipped)
	fmt.Fprintf(&b, "# HELP pgxsortd_cache_bytes Bytes currently held by cached results.\n# TYPE pgxsortd_cache_bytes gauge\npgxsortd_cache_bytes %d\n", bytes)
	fmt.Fprintf(&b, "# HELP pgxsortd_cache_entries Results currently cached.\n# TYPE pgxsortd_cache_entries gauge\npgxsortd_cache_entries %d\n", entries)
	fmt.Fprintf(&b, "# HELP pgxsortd_cache_budget_bytes Configured cache byte budget (0 when disabled).\n# TYPE pgxsortd_cache_budget_bytes gauge\npgxsortd_cache_budget_bytes %d\n", budget)

	inuse, peak, spooled, gbudget := s.gov.stats()
	fmt.Fprintf(&b, "# HELP pgxsortd_mem_inuse_bytes Memory-governor ledger: bytes reserved by admitted jobs right now.\n# TYPE pgxsortd_mem_inuse_bytes gauge\npgxsortd_mem_inuse_bytes %d\n", inuse)
	fmt.Fprintf(&b, "# HELP pgxsortd_mem_peak_bytes Worst of the reservation high-water mark and any job's tracker-accounted engine peak.\n# TYPE pgxsortd_mem_peak_bytes gauge\npgxsortd_mem_peak_bytes %d\n", peak)
	fmt.Fprintf(&b, "# HELP pgxsortd_mem_budget_bytes Configured governor budget (0 when admission gating is off).\n# TYPE pgxsortd_mem_budget_bytes gauge\npgxsortd_mem_budget_bytes %d\n", gbudget)
	fmt.Fprintf(&b, "# HELP pgxsortd_spooled_jobs_total Uploads that crossed the spool threshold and sorted out of core.\n# TYPE pgxsortd_spooled_jobs_total counter\npgxsortd_spooled_jobs_total %d\n", spooled)
	return b.String()
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedFloatKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
