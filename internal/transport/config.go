package transport

import (
	"fmt"
	"strings"
	"time"

	"pgxsort/internal/comm"
)

// SplitAddrs parses a comma-separated address list into the per-node
// slices Config.Listen/Peers take ("" -> nil). Entries are trimmed but
// empty entries are kept: an empty slot means "use the default" for
// that node, so "-listen ,:7402" intentionally defaults node 0.
func SplitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// Config shapes the TCP transport for real clusters. The zero value
// reproduces the historical loopback behaviour: every node listens on an
// ephemeral 127.0.0.1 port and dials its peers' actual bound addresses.
// All durations and sizes default when zero; explicit addresses make the
// mesh bindable to real interfaces.
type Config struct {
	// Listen[i] is the address node i binds its listener to (host:port).
	// Empty (or a missing entry) means "127.0.0.1:0". A ":0" port asks
	// the kernel for an ephemeral one.
	Listen []string
	// Peers[i] is the address other nodes dial to reach node i. Empty (or
	// a missing entry) means "whatever node i's listener actually bound",
	// which only works when every node lives in this process. On a real
	// cluster Peers carries the advertised per-host addresses.
	Peers []string
	// LocalNodes restricts which nodes this process materializes: only
	// their listeners, endpoints and outbound links exist; Endpoint(i)
	// returns nil for the others. Nil means all nodes are local (the
	// single-process default). The engine requires all nodes local; the
	// partial form is the seam for running one transport node per host.
	LocalNodes []int

	// ConnectTimeout bounds one dial plus its handshake. Default 5s.
	ConnectTimeout time.Duration
	// RetryBase / RetryMax shape the exponential backoff between
	// (re)connect attempts: base doubles per failure, capped at max, with
	// ±25% jitter so restarting peers do not reconnect in lockstep.
	// Defaults 50ms / 2s.
	RetryBase time.Duration
	RetryMax  time.Duration
	// DialAttempts is how many consecutive no-progress connection cycles
	// a link tolerates before it is declared broken (a cycle makes
	// progress when at least one frame is acknowledged). Default 20 —
	// with the default backoff that rides out ~30s of connection-level
	// downtime (resets, partitions, a peer that starts late). It does
	// NOT cover a peer process restarting after frames have flowed: the
	// restarted peer loses its receive-sequence state and cannot resync
	// mid-stream, so such links break deterministically.
	DialAttempts int

	// WriteTimeout bounds writing one frame to the socket. Default 30s.
	WriteTimeout time.Duration
	// ReadTimeout bounds reading a frame's payload once its header has
	// arrived (idle connections carry no deadline: a quiet peer is not a
	// dead peer, but a half-frame must complete promptly). Default 30s.
	ReadTimeout time.Duration
	// AckTimeout bounds how long a written frame may remain
	// unacknowledged before the link declares the connection dead and
	// redials. Default 30s.
	AckTimeout time.Duration

	// MaxFrameBytes rejects oversized frames on both sides of the wire:
	// senders fail fast with comm.ErrFrameTooLarge, receivers drop the
	// connection instead of trusting a corrupt header to size an
	// allocation. Default comm.DefaultMaxFrameBytes.
	MaxFrameBytes int
	// WindowFrames bounds each link's in-flight frames (queued plus
	// written-but-unacknowledged). A full window blocks Send — that is
	// the per-connection backpressure, and the blocked time is what
	// Report surfaces as slow-peer stall. Default 32.
	WindowFrames int
	// DrainTimeout bounds how long Close waits for in-flight frames to
	// be delivered and acknowledged before tearing the mesh down anyway.
	// Default 5s.
	DrainTimeout time.Duration
}

// withDefaults fills zero fields with the documented defaults.
func (c Config) withDefaults() Config {
	if c.ConnectTimeout <= 0 {
		c.ConnectTimeout = 5 * time.Second
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
	if c.DialAttempts <= 0 {
		c.DialAttempts = 20
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 30 * time.Second
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = comm.DefaultMaxFrameBytes
	}
	if c.WindowFrames <= 0 {
		c.WindowFrames = 32
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	return c
}

// validate rejects shapes that cannot form a p-node mesh.
func (c Config) validate(p int) error {
	if len(c.Listen) > p {
		return fmt.Errorf("transport: %d listen addresses for %d nodes", len(c.Listen), p)
	}
	if len(c.Peers) > p {
		return fmt.Errorf("transport: %d peer addresses for %d nodes", len(c.Peers), p)
	}
	seen := make(map[int]bool, len(c.LocalNodes))
	for _, i := range c.LocalNodes {
		if i < 0 || i >= p {
			return fmt.Errorf("transport: local node %d out of range [0,%d)", i, p)
		}
		if seen[i] {
			return fmt.Errorf("transport: local node %d listed twice", i)
		}
		seen[i] = true
	}
	// A node that is not local must be dialable through an explicit peer
	// address: its listener does not exist in this process.
	if len(c.LocalNodes) > 0 {
		for i := 0; i < p; i++ {
			if !seen[i] && (i >= len(c.Peers) || c.Peers[i] == "") {
				return fmt.Errorf("transport: remote node %d needs a Peers address", i)
			}
		}
	}
	return nil
}

// listenAddr returns the address node i should bind.
func (c Config) listenAddr(i int) string {
	if i < len(c.Listen) && c.Listen[i] != "" {
		return c.Listen[i]
	}
	return "127.0.0.1:0"
}

// peerAddr returns the configured dial address for node i ("" when the
// caller should fall back to the node's actual bound address).
func (c Config) peerAddr(i int) string {
	if i < len(c.Peers) && c.Peers[i] != "" {
		return c.Peers[i]
	}
	return ""
}

// localSet resolves LocalNodes into a membership table (all-true when
// LocalNodes is nil).
func (c Config) localSet(p int) []bool {
	local := make([]bool, p)
	if len(c.LocalNodes) == 0 {
		for i := range local {
			local[i] = true
		}
		return local
	}
	for _, i := range c.LocalNodes {
		local[i] = true
	}
	return local
}

// DeadlineError reports an expired transport deadline: a frame write, a
// payload read, or waiting for a frame's acknowledgement. It unwraps to
// the underlying cause; IsTimeout marks it as a timeout condition.
type DeadlineError struct {
	// Op is which deadline expired: "write", "read" or "await-ack".
	Op string
	// Src and Dst identify the link.
	Src, Dst int
	// Timeout is the configured deadline that expired.
	Timeout time.Duration
	// Err is the underlying error (may be nil for await-ack).
	Err error
}

func (e *DeadlineError) Error() string {
	msg := fmt.Sprintf("transport: %s deadline (%v) expired on link %d->%d", e.Op, e.Timeout, e.Src, e.Dst)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *DeadlineError) Unwrap() error { return e.Err }

// IsTimeout marks the error as a timeout for net.Error-style checks.
func (e *DeadlineError) IsTimeout() bool { return true }

// LinkError reports a link declared permanently broken after exhausting
// its reconnect budget. Send returns it for every subsequent message on
// the link, and the whole network fails fast (a sample-sort mesh cannot
// make progress with a missing edge).
type LinkError struct {
	Src, Dst int
	// Attempts is how many consecutive no-progress connection cycles ran.
	Attempts int
	// Err is the last underlying failure (dial, handshake, write or ack
	// deadline).
	Err error
}

func (e *LinkError) Error() string {
	return fmt.Sprintf("transport: link %d->%d broken after %d attempts: %v", e.Src, e.Dst, e.Attempts, e.Err)
}

func (e *LinkError) Unwrap() error { return e.Err }
