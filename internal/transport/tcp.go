package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"pgxsort/internal/alloc"
	"pgxsort/internal/comm"
)

// tcpNetwork is a full mesh of loopback TCP connections. Each ordered pair
// (i -> j) owns one simplex connection carrying framed messages; a
// dedicated reader goroutine per connection feeds the destination inbox.
type tcpNetwork[K any] struct {
	p     int
	codec comm.Codec[K]
	eps   []*tcpEndpoint[K]

	conns    [][]net.Conn // conns[i][j]: write side of i->j (nil when i==j)
	writers  [][]*bufio.Writer
	wmu      [][]*sync.Mutex
	payloads [][][]byte // payloads[i][j]: reusable encode buffer, guarded by wmu[i][j]

	// entryPool recycles the slabs readLoop decodes entry chunks into;
	// consumers hand them back through Message.Release once copied out.
	entryPool alloc.SlabPool[comm.Entry[K]]

	listeners []net.Listener
	readersWG sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

type tcpEndpoint[K any] struct {
	net   *tcpNetwork[K]
	id    int
	inbox chan comm.Message[K]
	stats comm.Stats
}

// frame header layout (little endian):
//
//	kind     uint8
//	src      int32
//	sortID   int32
//	nEntries int32
//	nKeys    int32
//	nInts    int32
const headerBytes = 1 + 4*5

// writeBufBytes matches the paper's 256KB communication buffer size.
const writeBufBytes = 256 * 1024

// NewTCP builds a loopback TCP network of p endpoints using codec for key
// serialization.
func NewTCP[K any](p int, codec comm.Codec[K]) (Network[K], error) {
	if codec == nil {
		return nil, fmt.Errorf("transport: tcp requires a codec")
	}
	n := &tcpNetwork[K]{p: p, codec: codec}
	n.eps = make([]*tcpEndpoint[K], p)
	for i := range n.eps {
		n.eps[i] = &tcpEndpoint[K]{net: n, id: i, inbox: make(chan comm.Message[K], inboxDepth)}
	}
	n.conns = make([][]net.Conn, p)
	n.writers = make([][]*bufio.Writer, p)
	n.wmu = make([][]*sync.Mutex, p)
	n.payloads = make([][][]byte, p)
	for i := 0; i < p; i++ {
		n.conns[i] = make([]net.Conn, p)
		n.writers[i] = make([]*bufio.Writer, p)
		n.wmu[i] = make([]*sync.Mutex, p)
		n.payloads[i] = make([][]byte, p)
		for j := 0; j < p; j++ {
			n.wmu[i][j] = &sync.Mutex{}
		}
	}

	n.listeners = make([]net.Listener, p)
	for i := 0; i < p; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			n.Close()
			return nil, fmt.Errorf("transport: listen node %d: %w", i, err)
		}
		n.listeners[i] = l
	}

	// Accept loops: each incoming connection announces its source id in a
	// 4-byte handshake, then feeds the local inbox.
	var acceptWG sync.WaitGroup
	acceptErr := make(chan error, p)
	for j := 0; j < p; j++ {
		acceptWG.Add(1)
		go func(j int) {
			defer acceptWG.Done()
			for k := 0; k < p-1; k++ {
				conn, err := n.listeners[j].Accept()
				if err != nil {
					acceptErr <- fmt.Errorf("transport: accept node %d: %w", j, err)
					return
				}
				var hs [4]byte
				if _, err := io.ReadFull(conn, hs[:]); err != nil {
					acceptErr <- fmt.Errorf("transport: handshake node %d: %w", j, err)
					return
				}
				src := int(binary.LittleEndian.Uint32(hs[:]))
				n.readersWG.Add(1)
				go n.readLoop(conn, src, j)
			}
		}(j)
	}

	// Dial the full mesh.
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if i == j {
				continue
			}
			conn, err := net.Dial("tcp", n.listeners[j].Addr().String())
			if err != nil {
				n.Close()
				return nil, fmt.Errorf("transport: dial %d->%d: %w", i, j, err)
			}
			var hs [4]byte
			binary.LittleEndian.PutUint32(hs[:], uint32(i))
			if _, err := conn.Write(hs[:]); err != nil {
				n.Close()
				return nil, fmt.Errorf("transport: handshake %d->%d: %w", i, j, err)
			}
			n.conns[i][j] = conn
			n.writers[i][j] = bufio.NewWriterSize(conn, writeBufBytes)
		}
	}
	acceptWG.Wait()
	select {
	case err := <-acceptErr:
		n.Close()
		return nil, err
	default:
	}
	return n, nil
}

func (n *tcpNetwork[K]) P() int                     { return n.p }
func (n *tcpNetwork[K]) Endpoint(i int) Endpoint[K] { return n.eps[i] }
func (n *tcpNetwork[K]) Name() string               { return KindTCP }

// Close shuts the mesh down: closing the write sides makes every reader
// hit EOF, after which the inboxes are closed.
func (n *tcpNetwork[K]) Close() error {
	n.closeOnce.Do(func() {
		for i := range n.conns {
			for j := range n.conns[i] {
				if c := n.conns[i][j]; c != nil {
					n.wmu[i][j].Lock()
					if w := n.writers[i][j]; w != nil {
						w.Flush()
					}
					c.Close()
					n.wmu[i][j].Unlock()
				}
			}
		}
		for _, l := range n.listeners {
			if l != nil {
				l.Close()
			}
		}
		n.readersWG.Wait()
		for _, ep := range n.eps {
			close(ep.inbox)
		}
	})
	return n.closeErr
}

// readLoop decodes frames arriving from src destined to endpoint dst.
func (n *tcpNetwork[K]) readLoop(conn net.Conn, src, dst int) {
	defer n.readersWG.Done()
	r := bufio.NewReaderSize(conn, writeBufBytes)
	ks := n.codec.KeySize()
	ep := n.eps[dst]
	var buf []byte
	for {
		var hdr [headerBytes]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return // EOF on shutdown
		}
		m := comm.Message[K]{
			Kind:   comm.Kind(hdr[0]),
			Src:    int(int32(binary.LittleEndian.Uint32(hdr[1:]))),
			SortID: int32(binary.LittleEndian.Uint32(hdr[5:])),
			Dst:    dst,
		}
		nEntries := int(int32(binary.LittleEndian.Uint32(hdr[9:])))
		nKeys := int(int32(binary.LittleEndian.Uint32(hdr[13:])))
		nInts := int(int32(binary.LittleEndian.Uint32(hdr[17:])))
		payload := nEntries*(ks+8) + nKeys*ks + nInts*8
		// The frame buffer is reused across iterations: every decode
		// below copies out of it before the next frame overwrites it.
		if cap(buf) < payload {
			buf = make([]byte, payload)
		}
		buf = buf[:payload]
		if _, err := io.ReadFull(r, buf); err != nil {
			return
		}
		rest := buf
		var err error
		if nEntries > 0 {
			var ents []comm.Entry[K]
			ents, rest, err = comm.DecodeEntriesSlab(rest, nEntries, n.codec, &n.entryPool)
			if err != nil {
				return
			}
			m.Entries = ents
			m.Release = func() { n.entryPool.Put(ents) }
		}
		if nKeys > 0 {
			m.Keys, rest, err = comm.DecodeKeys(rest, nKeys, n.codec)
			if err != nil {
				return
			}
		}
		if nInts > 0 {
			m.Ints, _, err = comm.DecodeInts(rest, nInts)
			if err != nil {
				return
			}
		}
		ep.stats.CountRecv(m.LogicalBytes(ks))
		ep.inbox <- m
	}
}

func (e *tcpEndpoint[K]) ID() int            { return e.id }
func (e *tcpEndpoint[K]) P() int             { return e.net.p }
func (e *tcpEndpoint[K]) Stats() *comm.Stats { return &e.stats }

func (e *tcpEndpoint[K]) Send(dst int, m comm.Message[K]) error {
	n := e.net
	if dst < 0 || dst >= n.p {
		return fmt.Errorf("transport: destination %d out of range", dst)
	}
	m.Src = e.id
	m.Dst = dst
	logical := m.LogicalBytes(n.codec.KeySize())
	if dst == e.id {
		// Loopback without a socket, as PGX.D keeps local writes local.
		e.stats.CountSend(m.Kind, logical)
		e.stats.CountRecv(logical)
		e.inbox <- m
		return nil
	}
	var hdr [headerBytes]byte
	hdr[0] = byte(m.Kind)
	binary.LittleEndian.PutUint32(hdr[1:], uint32(m.Src))
	binary.LittleEndian.PutUint32(hdr[5:], uint32(m.SortID))
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(m.Entries)))
	binary.LittleEndian.PutUint32(hdr[13:], uint32(len(m.Keys)))
	binary.LittleEndian.PutUint32(hdr[17:], uint32(len(m.Ints)))

	mu := n.wmu[e.id][dst]
	mu.Lock()
	defer mu.Unlock()
	w := n.writers[e.id][dst]
	if w == nil {
		return errClosed
	}
	// Encode into the per-connection buffer (guarded by wmu): one exact
	// allocation the first time a size class is hit, reused afterwards.
	payload := n.payloads[e.id][dst][:0]
	payload = comm.EncodeEntries(payload, m.Entries, n.codec)
	payload = comm.EncodeKeys(payload, m.Keys, n.codec)
	payload = comm.EncodeInts(payload, m.Ints)
	n.payloads[e.id][dst] = payload
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	e.stats.CountSend(m.Kind, logical)
	return nil
}

func (e *tcpEndpoint[K]) Recv() (comm.Message[K], bool) {
	m, ok := <-e.inbox
	return m, ok
}
