package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pgxsort/internal/alloc"
	"pgxsort/internal/comm"
)

// The TCP transport is a full mesh of simplex links: each ordered pair
// (i -> j) owns one connection carrying framed, sequence-numbered
// messages from i to j, with 8-byte cumulative acknowledgements flowing
// back on the same socket. Frames stay buffered at the sender until
// acknowledged, so a link survives connection loss: the writer redials
// with exponential backoff, the handshake tells it the receiver's next
// expected sequence number, and it retransmits exactly the suffix the
// receiver never delivered. Sequence checking on the receive side makes
// delivery exactly-once and per-link FIFO across any number of resets.
//
// Backpressure is a bounded per-link window (Config.WindowFrames) of
// frames that are queued or in flight; a full window blocks Send, and the
// blocked time is counted as slow-peer stall in the endpoint's Stats.

// frame header layout (little endian):
//
//	kind     uint8
//	flags    uint8
//	src      int32
//	sortID   int32
//	nEntries int32
//	nKeys    int32
//	nInts    int32
//	payload  uint32 (exact payload byte count)
//	seq      uint64
//
// The explicit payload size is what makes variable-width keys and record
// payloads framable: the receiver can no longer compute the payload size
// from the counts alone.
const headerBytes = 2 + 4*6 + 8

// handshake layout (little endian): magic, version, src, dst from the
// dialer; the acceptor replies with the 8-byte next expected sequence
// number for the (src -> dst) link, which doubles as a cumulative ack.
const (
	hsMagic   = "PGXS"
	hsVersion = 4 // v4 added the payload-size field to the frame header
	hsBytes   = 4 + 1 + 4 + 4
	ackBytes  = 8
)

// writeBufBytes matches the paper's 256KB communication buffer size.
const writeBufBytes = 256 * 1024

// frame is one message in wire form, retained until acknowledged.
type frame struct {
	seq      uint64
	kind     comm.Kind
	flags    uint8
	src      int32
	sortID   int32
	nEntries int32
	nKeys    int32
	nInts    int32
	payload  []byte // pooled; released when the frame is acked
	sentAt   time.Time
}

func (f *frame) putHeader(b []byte) {
	b[0] = byte(f.kind)
	b[1] = f.flags
	binary.LittleEndian.PutUint32(b[2:], uint32(f.src))
	binary.LittleEndian.PutUint32(b[6:], uint32(f.sortID))
	binary.LittleEndian.PutUint32(b[10:], uint32(f.nEntries))
	binary.LittleEndian.PutUint32(b[14:], uint32(f.nKeys))
	binary.LittleEndian.PutUint32(b[18:], uint32(f.nInts))
	binary.LittleEndian.PutUint32(b[22:], uint32(len(f.payload)))
	binary.LittleEndian.PutUint64(b[26:], f.seq)
}

type tcpNetwork[K any] struct {
	p     int
	cfg   Config
	codec comm.Codec[K]
	local []bool

	eps       []*tcpEndpoint[K] // nil for non-local nodes
	links     [][]*link[K]      // links[i][j] for local i, j != i
	listeners []net.Listener    // nil for non-local nodes
	peerAddrs []string          // resolved dial addresses, indexed by node

	// recv[src][dst] carries the receive-side link state (next expected
	// sequence number, current connection); it survives connection swaps,
	// which is what makes redelivery exactly-once.
	recvMu sync.Mutex
	recv   [][]*recvState

	// entryPool recycles the slabs readLoop decodes entry chunks into;
	// consumers hand them back through Message.Release once copied out.
	// bufPool recycles frame payload buffers (released on ack).
	entryPool alloc.SlabPool[comm.Entry[K]]
	bufPool   alloc.SlabPool[byte]

	wg sync.WaitGroup // accept loops, read loops, writers, ack readers

	down         chan struct{} // closed on Close or permanent failure
	teardownDone chan struct{}
	closing      atomic.Bool
	shutdownOnce sync.Once

	mu          sync.Mutex
	failErr     error // first permanent failure (link broken)
	acceptErr   error // first real accept failure (not clean shutdown)
	acceptFails int64 // total real accept failures (bounded storage)
	drainErr    error // drain timeout on Close
}

type tcpEndpoint[K any] struct {
	net   *tcpNetwork[K]
	id    int
	inbox chan comm.Message[K]
	stats comm.Stats
}

// recvState is the receive side of one (src -> dst) link.
type recvState struct {
	installMu sync.Mutex // serializes connection swaps for the link

	mu       sync.Mutex
	expected uint64
	conn     net.Conn
	loopDone chan struct{} // closed when the current read loop exits
}

// NewTCP builds a loopback TCP network of p endpoints using codec for key
// serialization, with the default Config.
func NewTCP[K any](p int, codec comm.Codec[K]) (Network[K], error) {
	return NewTCPWithConfig(p, codec, Config{})
}

// NewTCPWithConfig builds a TCP network of p endpoints shaped by cfg:
// real listen/dial addresses, connect retry with backoff, read/write/ack
// deadlines, frame-size limits and bounded per-link send windows. The
// constructor returns once every outbound link of every local node is
// established (peers may come up late: dialing retries with backoff), or
// fails once any link exhausts its budget.
func NewTCPWithConfig[K any](p int, codec comm.Codec[K], cfg Config) (Network[K], error) {
	if codec == nil {
		return nil, fmt.Errorf("transport: tcp requires a codec")
	}
	if p <= 0 {
		return nil, fmt.Errorf("transport: need at least one node, got %d", p)
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(p); err != nil {
		return nil, err
	}
	n := &tcpNetwork[K]{
		p:            p,
		cfg:          cfg,
		codec:        codec,
		local:        cfg.localSet(p),
		down:         make(chan struct{}),
		teardownDone: make(chan struct{}),
	}
	n.eps = make([]*tcpEndpoint[K], p)
	n.listeners = make([]net.Listener, p)
	n.peerAddrs = make([]string, p)
	n.recv = make([][]*recvState, p)
	for i := range n.recv {
		n.recv[i] = make([]*recvState, p)
	}
	for i := 0; i < p; i++ {
		if !n.local[i] {
			continue
		}
		n.eps[i] = &tcpEndpoint[K]{net: n, id: i, inbox: make(chan comm.Message[K], inboxDepth)}
		l, err := net.Listen("tcp", cfg.listenAddr(i))
		if err != nil {
			n.shutdown(nil)
			<-n.teardownDone
			return nil, fmt.Errorf("transport: listen node %d on %q: %w", i, cfg.listenAddr(i), err)
		}
		n.listeners[i] = l
	}
	for j := 0; j < p; j++ {
		if addr := cfg.peerAddr(j); addr != "" {
			n.peerAddrs[j] = addr
		} else {
			// validate() guarantees non-local nodes have explicit
			// peer addresses, so the listener exists here.
			n.peerAddrs[j] = n.listeners[j].Addr().String()
		}
	}
	for i := 0; i < p; i++ {
		if n.listeners[i] == nil {
			continue
		}
		n.wg.Add(1)
		go n.acceptLoop(i)
	}
	n.links = make([][]*link[K], p)
	var allLinks []*link[K]
	for i := 0; i < p; i++ {
		if !n.local[i] {
			continue
		}
		n.links[i] = make([]*link[K], p)
		for j := 0; j < p; j++ {
			if j == i {
				continue
			}
			l := newLink(n, i, j)
			n.links[i][j] = l
			allLinks = append(allLinks, l)
		}
	}
	for _, l := range allLinks {
		n.wg.Add(1)
		go l.run()
	}
	// Wait for the mesh: every outbound link connected, or any broken.
	for _, l := range allLinks {
		select {
		case <-l.ready:
		case <-n.down:
			err := n.Close()
			if err == nil {
				err = ErrClosed
			}
			return nil, err
		}
	}
	// A link that broke during the initial connect also closes ready;
	// re-check before handing out a doomed mesh.
	n.mu.Lock()
	failed := n.failErr
	n.mu.Unlock()
	if failed != nil {
		n.Close()
		return nil, failed
	}
	return n, nil
}

func (n *tcpNetwork[K]) P() int       { return n.p }
func (n *tcpNetwork[K]) Name() string { return KindTCP }

func (n *tcpNetwork[K]) isDown() bool {
	select {
	case <-n.down:
		return true
	default:
		return false
	}
}

// Endpoint returns node i's endpoint, or nil when i is not local to this
// process (Config.LocalNodes).
func (n *tcpNetwork[K]) Endpoint(i int) Endpoint[K] {
	if e := n.eps[i]; e != nil {
		return e
	}
	return nil
}

// Addrs reports the actual bound listener address of every local node
// ("" for non-local nodes) — useful when listening on ephemeral ports.
func (n *tcpNetwork[K]) Addrs() []string {
	out := make([]string, n.p)
	for i, l := range n.listeners {
		if l != nil {
			out[i] = l.Addr().String()
		}
	}
	return out
}

// ResetLink forcibly closes the live connection of the (src -> dst) link,
// simulating a network reset. The link's writer redials and retransmits;
// no data is lost. Returns false when the link does not exist locally or
// has no live connection. This is the fault-injection hook WithFaults
// uses.
func (n *tcpNetwork[K]) ResetLink(src, dst int) bool {
	if src < 0 || src >= n.p || dst < 0 || dst >= n.p || src == dst || n.links[src] == nil {
		return false
	}
	l := n.links[src][dst]
	if l == nil {
		return false
	}
	l.mu.Lock()
	c := l.conn
	l.mu.Unlock()
	if c == nil {
		return false
	}
	c.Close()
	return true
}

// fail records a permanent failure and tears the network down in the
// background (a mesh with a broken link cannot complete any sort, so
// failing fast beats hanging).
func (n *tcpNetwork[K]) fail(err error) {
	n.mu.Lock()
	if n.failErr == nil {
		n.failErr = err
	}
	n.mu.Unlock()
	go n.shutdown(err)
}

// Err reports the first permanent failure (a broken link) recorded on
// this mesh, or nil while it is healthy — or merely Closed. The engine
// uses it to attach the real cause (e.g. a *LinkError) to the generic
// "network closed" its blocked receives observe, so failure
// classification sees Fatal instead of Unknown.
func (n *tcpNetwork[K]) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.failErr
}

// closedErr is what Send/Close report once the network is down.
func (n *tcpNetwork[K]) closedErr() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failErr != nil {
		return n.failErr
	}
	return ErrClosed
}

// Close drains in-flight frames (bounded by Config.DrainTimeout), then
// tears the mesh down: connections and listeners close, every reader,
// writer and accept goroutine exits, and the inboxes close so pending
// Recv calls return ok=false. Close is idempotent and returns the first
// real failure observed over the network's lifetime: a broken link, an
// accept error that was not a clean shutdown, or a drain timeout.
func (n *tcpNetwork[K]) Close() error {
	n.shutdown(nil)
	<-n.teardownDone
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.failErr != nil {
		return n.failErr
	}
	if n.acceptErr != nil {
		if n.acceptFails > 1 {
			return fmt.Errorf("%w (and %d more accept failures)", n.acceptErr, n.acceptFails-1)
		}
		return n.acceptErr
	}
	return n.drainErr
}

// shutdown runs the teardown exactly once. cause nil means a graceful
// Close: in-flight frames get a drain window before connections drop.
func (n *tcpNetwork[K]) shutdown(cause error) {
	n.shutdownOnce.Do(func() {
		n.closing.Store(true)
		if cause == nil {
			n.drainLinks()
		}
		close(n.down)
		// Close everything: blocked reads/writes/dials error out.
		for _, row := range n.links {
			for _, l := range row {
				if l != nil {
					l.stop()
				}
			}
		}
		// installMu serializes this sweep against installConn: either the
		// install completed and its connection is closed here, or the
		// install observes the down signal (closed above) and aborts.
		for _, row := range n.recv {
			for _, st := range row {
				if st != nil {
					st.installMu.Lock()
					st.mu.Lock()
					if st.conn != nil {
						st.conn.Close()
					}
					st.mu.Unlock()
					st.installMu.Unlock()
				}
			}
		}
		for _, l := range n.listeners {
			if l != nil {
				l.Close()
			}
		}
		n.wg.Wait()
		close(n.teardownDone)
	})
}

// drainLinks waits until every link's window is empty (all frames
// delivered and acknowledged) or the drain budget expires. A broken
// link's frames can never drain, so a failed network aborts the wait
// immediately instead of burning the whole budget.
func (n *tcpNetwork[K]) drainLinks() {
	deadline := time.Now().Add(n.cfg.DrainTimeout)
	for {
		n.mu.Lock()
		failed := n.failErr != nil
		n.mu.Unlock()
		if failed {
			return
		}
		pending := 0
		for _, row := range n.links {
			for _, l := range row {
				if l == nil {
					continue
				}
				select {
				case <-l.brokenC:
					return
				default:
				}
				pending += len(l.window)
			}
		}
		if pending == 0 {
			return
		}
		if time.Now().After(deadline) {
			n.mu.Lock()
			n.drainErr = fmt.Errorf("transport: close drain timed out with %d frames in flight", pending)
			n.mu.Unlock()
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// acceptLoop accepts inbound connections for local node j until the
// listener closes. A clean shutdown (listener closed by Close) ends the
// loop silently; any other accept failure is recorded — and surfaced by
// Close, satisfying the "don't swallow real accept errors" contract —
// but the loop keeps accepting after a backoff: transient conditions
// (EMFILE during reconnect churn, ECONNABORTED) must not permanently
// deafen a node whose dialers would happily retry.
func (n *tcpNetwork[K]) acceptLoop(j int) {
	defer n.wg.Done()
	backoff := n.cfg.RetryBase
	for {
		conn, err := n.listeners[j].Accept()
		if err != nil {
			if n.closing.Load() || errors.Is(err, net.ErrClosed) {
				return // clean shutdown
			}
			// Only the first error is kept (Close surfaces one error);
			// the rest are counted, not stored — a persistent failure
			// must not grow the heap one error per backoff tick.
			n.mu.Lock()
			if n.acceptErr == nil {
				n.acceptErr = fmt.Errorf("transport: accept node %d: %w", j, err)
			}
			n.acceptFails++
			n.mu.Unlock()
			select {
			case <-time.After(backoff):
			case <-n.down:
				return
			}
			if backoff *= 2; backoff > n.cfg.RetryMax {
				backoff = n.cfg.RetryMax
			}
			continue
		}
		backoff = n.cfg.RetryBase
		n.wg.Add(1)
		go n.handleInbound(conn, j)
	}
}

// handleInbound validates a dialer's handshake, swaps the link's
// connection (waiting out the previous read loop so two readers never
// race on the same sequence state), replies with the next expected
// sequence number and runs the read loop.
func (n *tcpNetwork[K]) handleInbound(conn net.Conn, dst int) {
	defer n.wg.Done()
	conn.SetDeadline(time.Now().Add(n.cfg.ConnectTimeout))
	var hs [hsBytes]byte
	if _, err := io.ReadFull(conn, hs[:]); err != nil {
		conn.Close()
		return
	}
	if string(hs[:4]) != hsMagic || hs[4] != hsVersion {
		conn.Close()
		return
	}
	src := int(binary.LittleEndian.Uint32(hs[5:]))
	claimedDst := int(binary.LittleEndian.Uint32(hs[9:]))
	if src < 0 || src >= n.p || src == dst || claimedDst != dst {
		conn.Close()
		return
	}
	st := n.recvStateFor(src, dst)
	done, ok := n.installConn(conn, st)
	if !ok {
		conn.Close()
		return
	}
	n.readLoop(conn, src, dst, st, done)
}

// installConn swaps a fresh connection into the link's receive state:
// kill the previous connection, wait out its read loop (two readers must
// never race on the sequence state), reply to the handshake with the
// next expected sequence number, and record the new connection. The
// install mutex is held only for the swap, never across the read loop —
// a half-open predecessor is killed here, not waited on forever.
func (n *tcpNetwork[K]) installConn(conn net.Conn, st *recvState) (chan struct{}, bool) {
	st.installMu.Lock()
	defer st.installMu.Unlock()
	st.mu.Lock()
	old, oldDone := st.conn, st.loopDone
	st.mu.Unlock()
	if old != nil {
		old.Close()
	}
	if oldDone != nil {
		select {
		case <-oldDone:
		case <-time.After(n.cfg.ConnectTimeout):
			// The previous read loop is wedged (e.g. a full inbox with a
			// stalled consumer). Reject this connection; the dialer backs
			// off and retries, by which time the loop has unwound.
			return nil, false
		case <-n.down:
			return nil, false
		}
	}
	st.mu.Lock()
	expected := st.expected
	st.mu.Unlock()
	// Fresh deadline for the reply: the oldDone wait above may have
	// consumed the accept-time budget, and a healthy reconnection must
	// not be rejected by an already-expired deadline.
	conn.SetDeadline(time.Now().Add(n.cfg.ConnectTimeout))
	var rep [ackBytes]byte
	binary.LittleEndian.PutUint64(rep[:], expected)
	if _, err := conn.Write(rep[:]); err != nil {
		return nil, false
	}
	conn.SetDeadline(time.Time{})
	// Still under installMu: if the teardown sweep already ran (down is
	// closed), installing now would leave a connection it never saw.
	if n.isDown() {
		return nil, false
	}
	done := make(chan struct{})
	st.mu.Lock()
	st.conn, st.loopDone = conn, done
	st.mu.Unlock()
	return done, true
}

func (n *tcpNetwork[K]) recvStateFor(src, dst int) *recvState {
	n.recvMu.Lock()
	defer n.recvMu.Unlock()
	st := n.recv[src][dst]
	if st == nil {
		st = &recvState{}
		n.recv[src][dst] = st
	}
	return st
}

// readLoop decodes frames arriving from src destined to endpoint dst,
// enforcing the frame-size limit, sequence order and the payload read
// deadline, and acknowledging every delivered frame.
func (n *tcpNetwork[K]) readLoop(conn net.Conn, src, dst int, st *recvState, done chan struct{}) {
	defer func() {
		st.mu.Lock()
		if st.conn == conn {
			st.conn = nil
		}
		st.mu.Unlock()
		conn.Close()
		close(done)
	}()
	r := bufio.NewReaderSize(conn, writeBufBytes)
	ep := n.eps[dst]
	var buf []byte
	var ack [ackBytes]byte
	for {
		var hdr [headerBytes]byte
		// Header reads carry no deadline: an idle peer is healthy.
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		m := comm.Message[K]{
			Kind:   comm.Kind(hdr[0]),
			Flags:  hdr[1],
			Src:    int(int32(binary.LittleEndian.Uint32(hdr[2:]))),
			SortID: int32(binary.LittleEndian.Uint32(hdr[6:])),
			Dst:    dst,
		}
		nEntries := int(int32(binary.LittleEndian.Uint32(hdr[10:])))
		nKeys := int(int32(binary.LittleEndian.Uint32(hdr[14:])))
		nInts := int(int32(binary.LittleEndian.Uint32(hdr[18:])))
		payload := int(binary.LittleEndian.Uint32(hdr[22:]))
		seq := binary.LittleEndian.Uint64(hdr[26:])
		if nEntries < 0 || nKeys < 0 || nInts < 0 {
			return // corrupt header; drop the connection
		}
		if comm.CheckFrame(payload, n.cfg.MaxFrameBytes) != nil {
			// Never size an allocation from an oversized header: treat it
			// as a protocol violation and drop the connection.
			return
		}
		// Once a header has arrived the payload must follow promptly.
		conn.SetReadDeadline(time.Now().Add(n.cfg.ReadTimeout))
		if cap(buf) < payload {
			buf = make([]byte, payload)
		}
		buf = buf[:payload]
		if _, err := io.ReadFull(r, buf); err != nil {
			return
		}
		conn.SetReadDeadline(time.Time{})

		st.mu.Lock()
		expected := st.expected
		st.mu.Unlock()
		if seq < expected {
			// Duplicate after a reconnect race: discard, but re-ack so the
			// sender can prune its retransmit buffer.
			if !n.writeAck(conn, ack[:], expected) {
				return
			}
			continue
		}
		if seq > expected {
			return // gap: the sender will rewind via the next handshake
		}

		// The frame buffer is reused across iterations: every decode
		// below copies out of it before the next frame overwrites it.
		rest := buf
		var err error
		if nEntries > 0 {
			var ents []comm.Entry[K]
			ents, rest, err = comm.DecodeEntriesSlab(rest, nEntries, n.codec, &n.entryPool)
			if err != nil {
				return
			}
			m.Entries = ents
			m.Release = func() { n.entryPool.Put(ents) }
		}
		if nKeys > 0 {
			m.Keys, rest, err = comm.DecodeKeys(rest, nKeys, n.codec)
			if err != nil {
				return
			}
		}
		if nInts > 0 {
			m.Ints, rest, err = comm.DecodeInts(rest, nInts)
			if err != nil {
				return
			}
		}
		if len(rest) != 0 {
			// A count/size mismatch is a protocol violation (e.g. a header
			// whose payload size disagrees with its entry counts).
			return
		}
		ep.stats.CountRecv(payload)
		select {
		case ep.inbox <- m:
		case <-n.down:
			return
		}
		// Advance the sequence only after delivery: a frame that never
		// reached the inbox must be retransmitted, not acknowledged.
		st.mu.Lock()
		st.expected = seq + 1
		st.mu.Unlock()
		if !n.writeAck(conn, ack[:], seq+1) {
			return
		}
	}
}

// writeAck writes a cumulative acknowledgement on the receive connection.
func (n *tcpNetwork[K]) writeAck(conn net.Conn, buf []byte, next uint64) bool {
	binary.LittleEndian.PutUint64(buf, next)
	conn.SetWriteDeadline(time.Now().Add(n.cfg.WriteTimeout))
	_, err := conn.Write(buf)
	conn.SetWriteDeadline(time.Time{})
	return err == nil
}

func (e *tcpEndpoint[K]) ID() int            { return e.id }
func (e *tcpEndpoint[K]) P() int             { return e.net.p }
func (e *tcpEndpoint[K]) Stats() *comm.Stats { return &e.stats }

func (e *tcpEndpoint[K]) Send(dst int, m comm.Message[K]) error {
	n := e.net
	if dst < 0 || dst >= n.p {
		return fmt.Errorf("transport: destination %d out of range", dst)
	}
	m.Src = e.id
	m.Dst = dst
	if n.closing.Load() {
		return n.closedErr()
	}
	logical := m.WireBytes(n.codec)
	if err := comm.CheckFrame(logical, n.cfg.MaxFrameBytes); err != nil {
		return err
	}
	if dst == e.id {
		// Loopback without a socket, as PGX.D keeps local writes local.
		e.stats.CountSend(m.Kind, logical)
		e.stats.CountRecv(logical)
		select {
		case e.inbox <- m:
		case <-n.down:
			return n.closedErr()
		}
		return nil
	}
	l := n.links[e.id][dst]

	// Acquire a window slot: the bounded per-link backpressure. Blocked
	// time is the slow-peer stall the engine surfaces in its Report.
	select {
	case l.window <- struct{}{}:
	default:
		t0 := time.Now()
		select {
		case l.window <- struct{}{}:
			e.stats.CountStall(time.Since(t0))
		case <-l.brokenC:
			e.stats.CountStall(time.Since(t0))
			return l.brokenErr()
		case <-n.down:
			e.stats.CountStall(time.Since(t0))
			return n.closedErr()
		}
	}

	buf := n.bufPool.Get(logical)
	payload := buf[:0]
	payload = comm.EncodeEntries(payload, m.Entries, n.codec)
	payload = comm.EncodeKeys(payload, m.Keys, n.codec)
	payload = comm.EncodeInts(payload, m.Ints)
	f := &frame{
		kind:     m.Kind,
		flags:    m.Flags,
		src:      int32(m.Src),
		sortID:   m.SortID,
		nEntries: int32(len(m.Entries)),
		nKeys:    int32(len(m.Keys)),
		nInts:    int32(len(m.Ints)),
		payload:  payload,
	}
	// The queue has at least as much capacity as the window, so holding a
	// window token guarantees this send never blocks.
	l.queue <- f
	if err := l.brokenErrOrDown(); err != nil {
		// Fail fast: the frame cannot be delivered, the network is dead.
		return err
	}
	e.stats.CountSend(m.Kind, logical)
	return nil
}

// Recv blocks for the next message. After the network goes down the
// inbox still drains — the graceful Close ensures every in-flight frame
// was delivered before the down signal fires — and then reports ok=false.
// The inbox channel itself is never closed: the loopback Send path
// writes to it concurrently, and a close would race that write.
func (e *tcpEndpoint[K]) Recv() (comm.Message[K], bool) {
	select {
	case m := <-e.inbox:
		return m, true
	case <-e.net.down:
		select {
		case m := <-e.inbox:
			return m, true
		default:
			var zero comm.Message[K]
			return zero, false
		}
	}
}

// link is the send side of one (src -> dst) edge: a bounded queue feeding
// a writer goroutine that owns the connection, the retransmit buffer and
// the reconnect loop.
type link[K any] struct {
	n        *tcpNetwork[K]
	src, dst int

	queue   chan *frame   // Send -> writer
	window  chan struct{} // tokens held = frames queued or unacked
	connErr chan struct{} // cap 1: ack reader signals connection death
	ackSig  chan struct{} // cap 1: ack reader signals new acks to prune
	stopC   chan struct{} // closed at teardown
	ready   chan struct{} // closed after the first successful connect

	// ackNext is the cumulative acknowledgement horizon published by the
	// ack reader; the writer goroutine owns the retransmit buffer and is
	// the only one that prunes to it (so a payload slab is never recycled
	// while the writer may still be flushing it).
	ackNext atomic.Uint64

	mu        sync.Mutex
	conn      net.Conn
	bw        *bufio.Writer
	unacked   []*frame
	nextSeq   uint64
	progress  bool  // an ack arrived since the last connection drop
	cycles    int   // consecutive no-progress connection cycles
	broken    error // permanent failure, set once
	brokenC   chan struct{}
	readyOnce sync.Once
	stopOnce  sync.Once
}

func newLink[K any](n *tcpNetwork[K], src, dst int) *link[K] {
	return &link[K]{
		n:       n,
		src:     src,
		dst:     dst,
		queue:   make(chan *frame, n.cfg.WindowFrames),
		window:  make(chan struct{}, n.cfg.WindowFrames),
		connErr: make(chan struct{}, 1),
		ackSig:  make(chan struct{}, 1),
		stopC:   make(chan struct{}),
		ready:   make(chan struct{}),
		brokenC: make(chan struct{}),
	}
}

func (l *link[K]) stop() {
	l.stopOnce.Do(func() { close(l.stopC) })
	l.mu.Lock()
	if l.conn != nil {
		l.conn.Close()
	}
	l.mu.Unlock()
}

func (l *link[K]) brokenErr() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.broken
}

// brokenErrOrDown is Send's post-queue check. Checking closing (set
// before the drain begins) and not just down (closed after it ends)
// matters: a Send that slips its frame in while drainLinks is taking
// its final quiescent look would otherwise report success for a frame
// the teardown is about to drop.
func (l *link[K]) brokenErrOrDown() error {
	select {
	case <-l.brokenC:
		return l.brokenErr()
	default:
	}
	if l.n.closing.Load() || l.n.isDown() {
		return l.n.closedErr()
	}
	return nil
}

// run is the link's writer goroutine: (re)establish the connection, pump
// frames, repeat until stopped or the link breaks. The writer owns the
// connection, so it closes whatever is current on every exit path — a
// connection installed after the teardown sweep would otherwise leave
// its ack reader blocked forever and hang Close on wg.Wait.
func (l *link[K]) run() {
	defer l.n.wg.Done()
	defer func() {
		l.mu.Lock()
		if l.conn != nil {
			l.conn.Close()
		}
		l.mu.Unlock()
	}()
	var lastErr error
	for {
		if !l.ensureConn(lastErr) {
			return
		}
		err := l.pump()
		if err == nil {
			return // clean stop
		}
		lastErr = err
		l.dropConn()
		if l.n.isDown() {
			return
		}
	}
}

// ensureConn dials and handshakes until the link has a live connection,
// with exponential backoff plus jitter between attempts. Every failed
// attempt and every connection drop without acknowledgement progress
// (whose error arrives via lastErr) consumes one unit of the
// DialAttempts budget; an acknowledged frame refills it. Exhausting the
// budget declares the link broken and fails the network.
func (l *link[K]) ensureConn(lastErr error) bool {
	l.mu.Lock()
	if l.conn != nil {
		l.mu.Unlock()
		return true
	}
	exhausted := l.cycles >= l.n.cfg.DialAttempts
	cycles := l.cycles
	l.mu.Unlock()
	if exhausted {
		// Connections kept coming up but nothing got acknowledged (e.g. a
		// peer that accepts and then stalls past every deadline).
		l.declareBroken(&LinkError{Src: l.src, Dst: l.dst, Attempts: cycles, Err: lastErr})
		return false
	}

	backoff := l.n.cfg.RetryBase
	for {
		if l.n.isDown() {
			return false
		}
		select {
		case <-l.stopC:
			return false
		default:
		}
		err := l.dialOnce()
		if err == nil {
			l.readyOnce.Do(func() { close(l.ready) })
			return true
		}
		lastErr = err
		l.mu.Lock()
		l.cycles++
		exhausted := l.cycles >= l.n.cfg.DialAttempts
		cycles := l.cycles
		l.mu.Unlock()
		if exhausted {
			l.declareBroken(&LinkError{Src: l.src, Dst: l.dst, Attempts: cycles, Err: lastErr})
			return false
		}
		sleep := Jitter(backoff, uint64(time.Now().UnixNano()))
		select {
		case <-time.After(sleep):
		case <-l.stopC:
			return false
		case <-l.n.down:
			return false
		}
		if backoff *= 2; backoff > l.n.cfg.RetryMax {
			backoff = l.n.cfg.RetryMax
		}
	}
}

// dialOnce makes one connection attempt: dial, handshake, prune the
// acknowledged prefix, retransmit the rest.
func (l *link[K]) dialOnce() error {
	cfg := l.n.cfg
	d := net.Dialer{Timeout: cfg.ConnectTimeout}
	conn, err := d.Dial("tcp", l.n.peerAddrs[l.dst])
	if err != nil {
		return err
	}
	conn.SetDeadline(time.Now().Add(cfg.ConnectTimeout))
	var hs [hsBytes]byte
	copy(hs[:4], hsMagic)
	hs[4] = hsVersion
	binary.LittleEndian.PutUint32(hs[5:], uint32(l.src))
	binary.LittleEndian.PutUint32(hs[9:], uint32(l.dst))
	if _, err := conn.Write(hs[:]); err != nil {
		conn.Close()
		return fmt.Errorf("handshake write %d->%d: %w", l.src, l.dst, err)
	}
	var rep [ackBytes]byte
	if _, err := io.ReadFull(conn, rep[:]); err != nil {
		conn.Close()
		return fmt.Errorf("handshake read %d->%d: %w", l.src, l.dst, err)
	}
	conn.SetDeadline(time.Time{})
	expected := binary.LittleEndian.Uint64(rep[:])

	// A receiver expecting more than this link ever sent means the
	// sender lost its sequence state (a process restart on a link that
	// already carried traffic). Applying such a horizon would make
	// prune() discard every future frame as pre-acked while the
	// receiver drops them as duplicates: Sends succeeding, nothing
	// delivered. Fail loudly instead.
	l.mu.Lock()
	sent := l.nextSeq
	l.mu.Unlock()
	if expected > sent {
		conn.Close()
		err := fmt.Errorf("transport: peer expects seq %d on link %d->%d but only %d were ever sent: sender state lost (process restart?)",
			expected, l.src, l.dst, sent)
		l.declareBroken(&LinkError{Src: l.src, Dst: l.dst, Attempts: 1, Err: err})
		return err
	}

	// The handshake reply is a cumulative ack: everything below it was
	// delivered before the reset. Prune it, then retransmit the rest.
	l.advanceAck(expected)
	l.prune()
	l.mu.Lock()
	reconnect := l.nextSeq > 0
	resend := append([]*frame(nil), l.unacked...)
	l.conn = conn
	l.bw = bufio.NewWriterSize(conn, writeBufBytes)
	l.mu.Unlock()

	// Drain stale signals from the previous connection's reader.
	select {
	case <-l.connErr:
	default:
	}
	l.n.wg.Add(1)
	go l.ackReader(conn)

	for _, f := range resend {
		if err := l.writeFrame(f, false); err != nil {
			l.dropConn()
			return fmt.Errorf("retransmit %d->%d: %w", l.src, l.dst, err)
		}
	}
	if len(resend) > 0 {
		if err := l.flush(); err != nil {
			l.dropConn()
			return fmt.Errorf("retransmit %d->%d: %w", l.src, l.dst, err)
		}
	}
	if reconnect {
		if ep := l.n.eps[l.src]; ep != nil {
			ep.stats.CountReconnect()
			ep.stats.CountResent(len(resend))
		}
	}
	return nil
}

// pump moves frames from the queue onto the wire until the connection
// fails, an unacknowledged frame outlives the ack deadline, or the
// network stops.
func (l *link[K]) pump() error {
	for {
		l.prune()
		select {
		case f := <-l.queue:
			if err := l.writeFrame(f, true); err != nil {
				return err
			}
			continue
		default:
		}
		// Queue momentarily empty: push buffered frames to the kernel.
		if err := l.flush(); err != nil {
			return err
		}
		ackC, timer := l.ackDeadline()
		select {
		case f := <-l.queue:
			if timer != nil {
				timer.Stop()
			}
			if err := l.writeFrame(f, true); err != nil {
				return err
			}
		case <-l.ackSig:
			if timer != nil {
				timer.Stop()
			}
		case <-l.connErr:
			if timer != nil {
				timer.Stop()
			}
			return fmt.Errorf("transport: connection %d->%d lost", l.src, l.dst)
		case <-ackC:
			l.prune()
			if l.ackOverdue() {
				return &DeadlineError{Op: "await-ack", Src: l.src, Dst: l.dst, Timeout: l.n.cfg.AckTimeout}
			}
		case <-l.stopC:
			l.flush()
			return nil
		case <-l.n.down:
			l.flush()
			return nil
		}
	}
}

// ackDeadline arms a timer for the oldest unacknowledged frame (nil
// channel — never fires — when nothing is outstanding).
func (l *link[K]) ackDeadline() (<-chan time.Time, *time.Timer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.unacked) == 0 {
		return nil, nil
	}
	wait := time.Until(l.unacked[0].sentAt.Add(l.n.cfg.AckTimeout))
	if wait < 0 {
		wait = 0
	}
	t := time.NewTimer(wait)
	return t.C, t
}

func (l *link[K]) ackOverdue() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.unacked) > 0 && time.Since(l.unacked[0].sentAt) >= l.n.cfg.AckTimeout
}

// writeFrame writes one frame under the write deadline. first stamps a
// fresh sequence number and files the frame as unacknowledged;
// retransmissions keep their original sequence.
func (l *link[K]) writeFrame(f *frame, first bool) error {
	l.mu.Lock()
	if first {
		f.seq = l.nextSeq
		l.nextSeq++
		l.unacked = append(l.unacked, f)
	}
	conn, bw := l.conn, l.bw
	l.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("transport: connection %d->%d lost", l.src, l.dst)
	}
	f.sentAt = time.Now()
	var hdr [headerBytes]byte
	f.putHeader(hdr[:])
	conn.SetWriteDeadline(time.Now().Add(l.n.cfg.WriteTimeout))
	if _, err := bw.Write(hdr[:]); err != nil {
		return l.wrapWriteErr(err)
	}
	if _, err := bw.Write(f.payload); err != nil {
		return l.wrapWriteErr(err)
	}
	return nil
}

func (l *link[K]) flush() error {
	l.mu.Lock()
	conn, bw := l.conn, l.bw
	l.mu.Unlock()
	if bw == nil {
		return nil
	}
	conn.SetWriteDeadline(time.Now().Add(l.n.cfg.WriteTimeout))
	if err := bw.Flush(); err != nil {
		return l.wrapWriteErr(err)
	}
	conn.SetWriteDeadline(time.Time{})
	return nil
}

func (l *link[K]) wrapWriteErr(err error) error {
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return &DeadlineError{Op: "write", Src: l.src, Dst: l.dst, Timeout: l.n.cfg.WriteTimeout, Err: err}
	}
	return err
}

// ackReader consumes cumulative acknowledgements flowing back on the
// data connection. It only publishes the ack horizon and wakes the
// writer; the writer goroutine does the actual pruning, so payload slabs
// are never recycled while a write may still be flushing them.
func (l *link[K]) ackReader(conn net.Conn) {
	defer l.n.wg.Done()
	var buf [ackBytes]byte
	for {
		if _, err := io.ReadFull(conn, buf[:]); err != nil {
			l.mu.Lock()
			current := l.conn == conn
			l.mu.Unlock()
			if current {
				conn.Close()
				select {
				case l.connErr <- struct{}{}:
				default:
				}
			}
			return
		}
		next := binary.LittleEndian.Uint64(buf[:])
		l.advanceAck(next)
		l.mu.Lock()
		l.progress = true
		l.cycles = 0
		l.mu.Unlock()
		select {
		case l.ackSig <- struct{}{}:
		default:
		}
	}
}

// advanceAck raises the published ack horizon to next, never lowering
// it. The CAS loop matters: a stale reader from a replaced connection
// can race a newer handshake's larger horizon, and a plain
// compare-then-store could regress it.
func (l *link[K]) advanceAck(next uint64) {
	for {
		cur := l.ackNext.Load()
		if next <= cur || l.ackNext.CompareAndSwap(cur, next) {
			return
		}
	}
}

// prune (writer goroutine only) drops every frame below the published
// ack horizon from the retransmit buffer, releasing its payload slab and
// its window token.
func (l *link[K]) prune() {
	next := l.ackNext.Load()
	l.mu.Lock()
	k := 0
	for k < len(l.unacked) && l.unacked[k].seq < next {
		l.n.bufPool.Put(l.unacked[k].payload[:0])
		l.unacked[k] = nil
		k++
	}
	if k > 0 {
		l.unacked = append(l.unacked[:0], l.unacked[k:]...)
	}
	l.mu.Unlock()
	for i := 0; i < k; i++ {
		<-l.window
	}
}

// dropConn discards the current connection (after a write error, ack
// failure or injected reset), charging one no-progress cycle unless an
// acknowledgement arrived on it.
func (l *link[K]) dropConn() {
	l.mu.Lock()
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
		l.bw = nil
	}
	if l.progress {
		l.cycles = 0
		l.progress = false
	} else {
		l.cycles++
	}
	l.mu.Unlock()
	select {
	case <-l.connErr:
	default:
	}
}

// declareBroken marks the link permanently failed and fails the network.
func (l *link[K]) declareBroken(err *LinkError) {
	l.mu.Lock()
	if l.broken == nil {
		l.broken = err
		close(l.brokenC)
	}
	l.mu.Unlock()
	l.readyOnce.Do(func() { close(l.ready) })
	l.n.fail(err)
}
