package transport

import (
	"testing"
	"time"

	"pgxsort/internal/comm"
)

func TestJitterPreservesFIFOAndPayloads(t *testing.T) {
	inner := NewChan[uint64](2, comm.U64Codec{})
	net := WithJitter(inner, 500*time.Microsecond, 7)
	defer net.Close()
	if net.Name() != "chan+jitter" {
		t.Fatalf("name = %s", net.Name())
	}
	if net.P() != 2 {
		t.Fatalf("P = %d", net.P())
	}
	a, b := net.Endpoint(0), net.Endpoint(1)
	const msgs = 50
	go func() {
		for i := 0; i < msgs; i++ {
			a.Send(1, comm.Message[uint64]{Kind: comm.KData, Keys: []uint64{uint64(i)}})
		}
	}()
	for i := 0; i < msgs; i++ {
		m, ok := b.Recv()
		if !ok {
			t.Fatal("recv failed")
		}
		if m.Keys[0] != uint64(i) {
			t.Fatalf("FIFO violated under jitter: got %d want %d", m.Keys[0], i)
		}
	}
	if a.Stats().MsgsSent() != msgs {
		t.Fatalf("stats not forwarded: %d", a.Stats().MsgsSent())
	}
	if a.ID() != 0 || b.P() != 2 {
		t.Fatal("endpoint identity not forwarded")
	}
}

func TestJitterZeroDelayPassThrough(t *testing.T) {
	net := WithJitter(NewChan[uint64](2, comm.U64Codec{}), 0, 1)
	defer net.Close()
	if err := net.Endpoint(0).Send(1, comm.Message[uint64]{Kind: comm.KControl, Ints: []int64{1}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := net.Endpoint(1).Recv(); !ok {
		t.Fatal("recv failed")
	}
}
