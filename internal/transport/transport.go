// Package transport moves comm.Messages between the simulated processors.
//
// Two implementations share one contract:
//
//   - Chan: in-process channels, zero-copy. This is the analogue of
//     PGX.D's InfiniBand path, where buffers move without serialization.
//   - TCP: real sockets with framed, codec-serialized, sequence-numbered
//     messages. It is hardened for real clusters: configurable listen and
//     dial addresses (Config), connect retry with exponential backoff and
//     jitter, read/write/ack deadlines, frame-size limits, bounded
//     per-link send windows (backpressure with slow-peer stall
//     accounting), and reconnect-with-retransmit so a sort survives
//     connection resets mid-exchange.
//
// Both preserve per-(src,dst) FIFO order and count identical logical
// traffic, so experiments can switch transports without changing the
// measured communication volume (only its cost).
//
// Two wrappers inject adversity for tests: WithJitter perturbs send
// timing, and WithFaults (transport.Faulty) injects connection resets,
// delays, drops and duplicates on a deterministic schedule.
package transport

import (
	"fmt"

	"pgxsort/internal/comm"
)

// Endpoint is one processor's attachment to the network.
type Endpoint[K any] interface {
	// ID returns this endpoint's processor id in [0, P).
	ID() int
	// P returns the number of processors on the network.
	P() int
	// Send delivers m to processor dst. It may block for backpressure.
	// The message's Src/Dst fields are stamped by the transport.
	Send(dst int, m comm.Message[K]) error
	// Recv blocks until a message arrives; ok is false once the network
	// is closed and the inbox is drained.
	Recv() (m comm.Message[K], ok bool)
	// Stats returns this endpoint's traffic counters.
	Stats() *comm.Stats
}

// Network is a closed group of P endpoints.
type Network[K any] interface {
	P() int
	Endpoint(i int) Endpoint[K]
	// Close tears the network down. Pending Recv calls unblock with
	// ok=false after the inbox drains.
	Close() error
	// Name identifies the implementation ("chan" or "tcp").
	Name() string
}

// KindChan and KindTCP select a Network implementation.
const (
	KindChan = "chan"
	KindTCP  = "tcp"
)

// TerminalErr reports a network's recorded permanent failure when the
// implementation exposes one (TCP's broken-link *LinkError); nil for
// implementations that cannot fail permanently (chan) or that merely
// closed. Wrapper networks forward it so the cause survives layering.
func TerminalErr[K any](n Network[K]) error {
	if te, ok := n.(interface{ Err() error }); ok {
		return te.Err()
	}
	return nil
}

// New builds a network of p endpoints with the default Config. codec is
// required for tcp and used only for byte accounting by chan.
func New[K any](kind string, p int, codec comm.Codec[K]) (Network[K], error) {
	return NewWithConfig[K](kind, p, codec, Config{})
}

// NewWithConfig builds a network of p endpoints. cfg shapes the TCP
// transport (addresses, timeouts, retry, window sizes) and is ignored by
// the in-process transport, which has none of those concerns.
func NewWithConfig[K any](kind string, p int, codec comm.Codec[K], cfg Config) (Network[K], error) {
	switch kind {
	case KindChan, "":
		return NewChan[K](p, codec), nil
	case KindTCP:
		return NewTCPWithConfig[K](p, codec, cfg)
	default:
		return nil, fmt.Errorf("transport: unknown kind %q", kind)
	}
}
