package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"pgxsort/internal/comm"
)

// fastCfg keeps reconnect/backoff timings test-sized.
func fastCfg() Config {
	return Config{
		ConnectTimeout: 2 * time.Second,
		RetryBase:      5 * time.Millisecond,
		RetryMax:       50 * time.Millisecond,
		DrainTimeout:   2 * time.Second,
	}
}

// TestReconnectAfterReset streams frames across one link while the
// connection is repeatedly killed out from under it; every frame must
// arrive exactly once, in order.
func TestReconnectAfterReset(t *testing.T) {
	cfg := fastCfg()
	cfg.WindowFrames = 8
	netw, err := NewTCPWithConfig[uint64](2, comm.U64Codec{}, cfg)
	if err != nil {
		t.Fatalf("NewTCPWithConfig: %v", err)
	}
	defer netw.Close()
	tn := netw.(*tcpNetwork[uint64])

	const msgs = 400
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ep := netw.Endpoint(0)
		for i := 0; i < msgs; i++ {
			m := comm.Message[uint64]{Kind: comm.KData,
				Entries: []comm.Entry[uint64]{{Key: uint64(i), Proc: 0, Index: uint32(i)}}}
			if err := ep.Send(1, m); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			if i%23 == 7 {
				tn.ResetLink(0, 1)
			}
		}
	}()

	rx := netw.Endpoint(1)
	for i := 0; i < msgs; i++ {
		m, ok := rx.Recv()
		if !ok {
			t.Fatalf("network closed after %d/%d messages", i, msgs)
		}
		if got := m.Entries[0].Key; got != uint64(i) {
			t.Fatalf("message %d: got key %d (lost or duplicated frames)", i, got)
		}
		if m.Release != nil {
			m.Release()
		}
	}
	wg.Wait()
	if rec := netw.Endpoint(0).Stats().Reconnects(); rec == 0 {
		t.Error("expected at least one recorded reconnect")
	}
}

// TestFaultyResetSchedule drives the same recovery through the WithFaults
// wrapper, the way engine chaos tests use it.
func TestFaultyResetSchedule(t *testing.T) {
	cfg := fastCfg()
	inner, err := NewTCPWithConfig[uint64](2, comm.U64Codec{}, cfg)
	if err != nil {
		t.Fatalf("NewTCPWithConfig: %v", err)
	}
	netw := WithFaults(inner, FaultPlan{ResetEvery: 10})
	defer netw.Close()

	const msgs = 100
	go func() {
		ep := netw.Endpoint(0)
		for i := 0; i < msgs; i++ {
			m := comm.Message[uint64]{Kind: comm.KData,
				Entries: []comm.Entry[uint64]{{Key: uint64(i)}}}
			if err := ep.Send(1, m); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	rx := netw.Endpoint(1)
	for i := 0; i < msgs; i++ {
		m, ok := rx.Recv()
		if !ok {
			t.Fatalf("network closed after %d/%d", i, msgs)
		}
		if got := m.Entries[0].Key; got != uint64(i) {
			t.Fatalf("message %d: got key %d", i, got)
		}
		if m.Release != nil {
			m.Release()
		}
	}
	if got := netw.Injected().Resets; got == 0 {
		t.Error("fault plan injected no resets")
	}
	if name := netw.Name(); name != "tcp+faults" {
		t.Errorf("Name() = %q", name)
	}
}

// stubbornPeer accepts connections and completes the transport handshake
// but never acknowledges a frame: the picture of a peer that is up yet
// wedged. It returns the address to dial.
func stubbornPeer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("stub listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				var hs [hsBytes]byte
				if _, err := io.ReadFull(c, hs[:]); err != nil {
					return
				}
				var rep [ackBytes]byte
				binary.LittleEndian.PutUint64(rep[:], 0)
				if _, err := c.Write(rep[:]); err != nil {
					return
				}
				io.Copy(io.Discard, c) // swallow frames, never ack
			}(conn)
		}
	}()
	return l.Addr().String()
}

// TestAckDeadlineSurfacesTypedError points a link at a peer that accepts
// and handshakes but never acknowledges: the ack deadline must expire,
// the reconnect budget must exhaust, and Send must surface a LinkError
// wrapping a DeadlineError.
func TestAckDeadlineSurfacesTypedError(t *testing.T) {
	cfg := fastCfg()
	cfg.AckTimeout = 30 * time.Millisecond
	cfg.DialAttempts = 3
	cfg.WindowFrames = 2
	cfg.Peers = []string{"", stubbornPeer(t)}
	netw, err := NewTCPWithConfig[uint64](2, comm.U64Codec{}, cfg)
	if err != nil {
		t.Fatalf("NewTCPWithConfig: %v", err)
	}
	defer netw.Close()

	ep := netw.Endpoint(0)
	var sendErr error
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		m := comm.Message[uint64]{Kind: comm.KControl, Ints: []int64{1}}
		if sendErr = ep.Send(1, m); sendErr != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if sendErr == nil {
		t.Fatal("sends kept succeeding against a peer that never acks")
	}
	var le *LinkError
	if !errors.As(sendErr, &le) {
		t.Fatalf("send error %v (%T) is not a *LinkError", sendErr, sendErr)
	}
	var de *DeadlineError
	if !errors.As(sendErr, &de) {
		t.Fatalf("link error %v does not wrap a *DeadlineError", sendErr)
	}
	if de.Op != "await-ack" {
		t.Errorf("deadline op = %q, want await-ack", de.Op)
	}
}

// TestFrameTooLarge checks both that oversized sends fail fast with the
// typed error and that normal-size frames still pass.
func TestFrameTooLarge(t *testing.T) {
	cfg := fastCfg()
	cfg.MaxFrameBytes = 1024
	netw, err := NewTCPWithConfig[uint64](2, comm.U64Codec{}, cfg)
	if err != nil {
		t.Fatalf("NewTCPWithConfig: %v", err)
	}
	defer netw.Close()
	ep := netw.Endpoint(0)
	big := comm.Message[uint64]{Kind: comm.KData, Entries: make([]comm.Entry[uint64], 100)}
	if err := ep.Send(1, big); !errors.Is(err, comm.ErrFrameTooLarge) {
		t.Fatalf("oversized send error = %v, want ErrFrameTooLarge", err)
	}
	small := comm.Message[uint64]{Kind: comm.KControl, Ints: []int64{7}}
	if err := ep.Send(1, small); err != nil {
		t.Fatalf("small send: %v", err)
	}
	if m, ok := netw.Endpoint(1).Recv(); !ok || m.Ints[0] != 7 {
		t.Fatalf("small recv = %+v, %v", m, ok)
	}
}

// TestCloseDrainsInFlight fires a burst and closes immediately: the
// graceful drain must deliver every frame before tearing down.
func TestCloseDrainsInFlight(t *testing.T) {
	cfg := fastCfg()
	netw, err := NewTCPWithConfig[uint64](2, comm.U64Codec{}, cfg)
	if err != nil {
		t.Fatalf("NewTCPWithConfig: %v", err)
	}
	const msgs = 200
	ep := netw.Endpoint(0)
	for i := 0; i < msgs; i++ {
		if err := ep.Send(1, comm.Message[uint64]{Kind: comm.KControl, Ints: []int64{int64(i)}}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := netw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rx := netw.Endpoint(1)
	for i := 0; i < msgs; i++ {
		m, ok := rx.Recv()
		if !ok {
			t.Fatalf("drained only %d/%d frames before close", i, msgs)
		}
		if m.Ints[0] != int64(i) {
			t.Fatalf("frame %d out of order: %d", i, m.Ints[0])
		}
	}
	if _, ok := rx.Recv(); ok {
		t.Fatal("Recv reported ok on a closed, drained network")
	}
}

// TestCloseLeaksNoGoroutines runs traffic with injected resets, closes,
// and requires the goroutine count to return to its baseline.
func TestCloseLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		cfg := fastCfg()
		netw, err := NewTCPWithConfig[uint64](4, comm.U64Codec{}, cfg)
		if err != nil {
			t.Fatalf("NewTCPWithConfig: %v", err)
		}
		tn := netw.(*tcpNetwork[uint64])
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(2)
			go func(i int) {
				defer wg.Done()
				ep := netw.Endpoint(i)
				for k := 0; k < 50; k++ {
					ep.Send((i+1)%4, comm.Message[uint64]{Kind: comm.KControl, Ints: []int64{int64(k)}})
					if k == 25 {
						tn.ResetLink(i, (i+1)%4)
					}
				}
			}(i)
			go func(i int) {
				defer wg.Done()
				ep := netw.Endpoint(i)
				for k := 0; k < 50; k++ {
					if _, ok := ep.Recv(); !ok {
						return
					}
				}
			}(i)
		}
		wg.Wait()
		if err := netw.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 { // tolerate runtime helpers
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPartialMeshTwoProcesses simulates the two-host deployment inside
// one test: two networks, each materializing only its own node, wired
// together by explicit peer addresses.
func TestPartialMeshTwoProcesses(t *testing.T) {
	portA, portB := freePort(t), freePort(t)
	addrA := fmt.Sprintf("127.0.0.1:%d", portA)
	addrB := fmt.Sprintf("127.0.0.1:%d", portB)
	peers := []string{addrA, addrB}

	mk := func(self int, listen string) (Network[uint64], error) {
		cfg := fastCfg()
		cfg.Listen = make([]string, 2)
		cfg.Listen[self] = listen
		cfg.Peers = peers
		cfg.LocalNodes = []int{self}
		return NewTCPWithConfig[uint64](2, comm.U64Codec{}, cfg)
	}

	// "Host A" comes up first and retries its dial until "host B" exists.
	type res struct {
		n   Network[uint64]
		err error
	}
	aC := make(chan res, 1)
	go func() {
		n, err := mk(0, addrA)
		aC <- res{n, err}
	}()
	time.Sleep(30 * time.Millisecond)
	netB, err := mk(1, addrB)
	if err != nil {
		t.Fatalf("host B: %v", err)
	}
	defer netB.Close()
	ra := <-aC
	if ra.err != nil {
		t.Fatalf("host A: %v", ra.err)
	}
	netA := ra.n
	defer netA.Close()

	if netA.Endpoint(1) != nil || netB.Endpoint(0) != nil {
		t.Fatal("non-local endpoints must be nil on a partial mesh")
	}
	addrs := netA.(*tcpNetwork[uint64]).Addrs()
	if addrs[0] == "" || addrs[1] != "" {
		t.Fatalf("partial-mesh Addrs = %v: want only the local node bound", addrs)
	}
	if err := netA.Endpoint(0).Send(1, comm.Message[uint64]{Kind: comm.KControl, Ints: []int64{41}}); err != nil {
		t.Fatalf("A->B send: %v", err)
	}
	m, ok := netB.Endpoint(1).Recv()
	if !ok || m.Ints[0] != 41 || m.Src != 0 {
		t.Fatalf("B recv = %+v, %v", m, ok)
	}
	if err := netB.Endpoint(1).Send(0, comm.Message[uint64]{Kind: comm.KControl, Ints: []int64{42}}); err != nil {
		t.Fatalf("B->A send: %v", err)
	}
	m, ok = netA.Endpoint(0).Recv()
	if !ok || m.Ints[0] != 42 || m.Src != 1 {
		t.Fatalf("A recv = %+v, %v", m, ok)
	}
}

// freePort reserves an ephemeral port and releases it for reuse. Tiny
// race window, acceptable in tests.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("freePort: %v", err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// TestFaultyDropDup exercises the unrecoverable schedules at the
// transport level (the engine refuses them, tests may not).
func TestFaultyDropDup(t *testing.T) {
	inner := NewChan[uint64](2, comm.U64Codec{})
	netw := WithFaults(inner, FaultPlan{DropEvery: 5, DupEvery: 7})
	defer netw.Close()
	if netw.Injected() != (FaultCounts{}) {
		t.Fatal("faults injected before any send")
	}
	ep := netw.Endpoint(0)
	const msgs = 35
	for i := 0; i < msgs; i++ {
		if err := ep.Send(1, comm.Message[uint64]{Kind: comm.KControl, Ints: []int64{int64(i)}}); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	got := netw.Injected()
	if got.Drops != msgs/5 {
		t.Errorf("drops = %d, want %d", got.Drops, msgs/5)
	}
	// Multiples of 35 hit both schedules; the drop wins (checked first),
	// so those dups never fire.
	wantDups := int64(msgs/7 - msgs/35)
	if got.Dups != wantDups {
		t.Errorf("dups = %d, want %d", got.Dups, wantDups)
	}
	want := msgs - msgs/5 + int(wantDups)
	rx := netw.Endpoint(1)
	for i := 0; i < want; i++ {
		if _, ok := rx.Recv(); !ok {
			t.Fatalf("received only %d/%d", i, want)
		}
	}
	if plan := (FaultPlan{ResetEvery: 3}); !plan.Recoverable() {
		t.Error("reset-only plan should be recoverable")
	}
	if plan := (FaultPlan{DropEvery: 3}); plan.Recoverable() {
		t.Error("drop plan must not be recoverable")
	}
}

// TestConfigValidate covers the config shapes that cannot form a mesh.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"too many listen", Config{Listen: []string{"a", "b", "c"}}},
		{"too many peers", Config{Peers: []string{"a", "b", "c"}}},
		{"local out of range", Config{LocalNodes: []int{2}}},
		{"local duplicate", Config{LocalNodes: []int{0, 0}}},
		{"remote without peer addr", Config{LocalNodes: []int{0}}},
	}
	for _, tc := range cases {
		if err := tc.cfg.validate(2); err == nil {
			t.Errorf("%s: validate accepted %+v", tc.name, tc.cfg)
		}
	}
	good := Config{LocalNodes: []int{0}, Peers: []string{"", "host:1"}}
	if err := good.validate(2); err != nil {
		t.Errorf("valid partial config rejected: %v", err)
	}
}
