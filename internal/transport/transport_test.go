package transport

import (
	"fmt"
	"sync"
	"testing"

	"pgxsort/internal/comm"
)

// entryEq compares entries field-wise (Entry holds a slice, so == is out).
func entryEq(a, b comm.Entry[uint64]) bool {
	return a.Key == b.Key && a.Proc == b.Proc && a.Index == b.Index &&
		string(a.Payload) == string(b.Payload)
}

// newNets builds one network per implementation for conformance tests.
func newNets(t *testing.T, p int) map[string]Network[uint64] {
	t.Helper()
	nets := map[string]Network[uint64]{}
	nets[KindChan] = NewChan[uint64](p, comm.U64Codec{})
	tcp, err := NewTCP[uint64](p, comm.U64Codec{})
	if err != nil {
		t.Fatalf("NewTCP: %v", err)
	}
	nets[KindTCP] = tcp
	return nets
}

func TestNewSelectsImplementation(t *testing.T) {
	n, err := New[uint64](KindChan, 2, comm.U64Codec{})
	if err != nil || n.Name() != KindChan {
		t.Fatalf("New(chan) = %v, %v", n, err)
	}
	n.Close()
	n, err = New[uint64]("", 2, comm.U64Codec{})
	if err != nil || n.Name() != KindChan {
		t.Fatalf("New(default) = %v, %v", n, err)
	}
	n.Close()
	n, err = New[uint64](KindTCP, 2, comm.U64Codec{})
	if err != nil || n.Name() != KindTCP {
		t.Fatalf("New(tcp) = %v, %v", n, err)
	}
	n.Close()
	if _, err := New[uint64]("bogus", 2, comm.U64Codec{}); err == nil {
		t.Fatal("New accepted bogus kind")
	}
}

func TestPointToPoint(t *testing.T) {
	for name, net := range newNets(t, 2) {
		t.Run(name, func(t *testing.T) {
			defer net.Close()
			a, b := net.Endpoint(0), net.Endpoint(1)
			want := comm.Message[uint64]{
				Kind:    comm.KData,
				SortID:  7,
				Entries: []comm.Entry[uint64]{{Key: 10, Proc: 1, Index: 2}, {Key: 20, Proc: 3, Index: 4}},
			}
			if err := a.Send(1, want); err != nil {
				t.Fatalf("Send: %v", err)
			}
			got, ok := b.Recv()
			if !ok {
				t.Fatal("Recv failed")
			}
			if got.Src != 0 || got.Dst != 1 || got.Kind != comm.KData || got.SortID != 7 {
				t.Fatalf("header mismatch: %+v", got)
			}
			if len(got.Entries) != 2 || !entryEq(got.Entries[0], want.Entries[0]) || !entryEq(got.Entries[1], want.Entries[1]) {
				t.Fatalf("entries mismatch: %+v", got.Entries)
			}
		})
	}
}

func TestAllPayloadKinds(t *testing.T) {
	for name, net := range newNets(t, 2) {
		t.Run(name, func(t *testing.T) {
			defer net.Close()
			a, b := net.Endpoint(0), net.Endpoint(1)
			msgs := []comm.Message[uint64]{
				{Kind: comm.KSamples, Keys: []uint64{1, 2, 3}},
				{Kind: comm.KSplitters, Keys: []uint64{9}},
				{Kind: comm.KRangeMeta, Ints: []int64{4, -5, 6}},
				{Kind: comm.KControl, Ints: []int64{1}},
				{Kind: comm.KData, Entries: []comm.Entry[uint64]{{Key: 42, Proc: 0, Index: 9}}},
			}
			for _, m := range msgs {
				if err := a.Send(1, m); err != nil {
					t.Fatalf("Send(%v): %v", m.Kind, err)
				}
			}
			for _, want := range msgs {
				got, ok := b.Recv()
				if !ok {
					t.Fatalf("Recv(%v) failed", want.Kind)
				}
				if got.Kind != want.Kind {
					t.Fatalf("kind order violated: got %v want %v", got.Kind, want.Kind)
				}
				if len(got.Keys) != len(want.Keys) || len(got.Ints) != len(want.Ints) ||
					len(got.Entries) != len(want.Entries) {
					t.Fatalf("payload shape mismatch: %+v vs %+v", got, want)
				}
				for i := range want.Keys {
					if got.Keys[i] != want.Keys[i] {
						t.Fatalf("keys mismatch")
					}
				}
				for i := range want.Ints {
					if got.Ints[i] != want.Ints[i] {
						t.Fatalf("ints mismatch")
					}
				}
			}
		})
	}
}

func TestFIFOPerPair(t *testing.T) {
	const msgs = 500
	for name, net := range newNets(t, 3) {
		t.Run(name, func(t *testing.T) {
			defer net.Close()
			var wg sync.WaitGroup
			// Senders 0 and 1 both stream to 2; per-sender order must hold.
			for src := 0; src < 2; src++ {
				wg.Add(1)
				go func(src int) {
					defer wg.Done()
					ep := net.Endpoint(src)
					for i := 0; i < msgs; i++ {
						m := comm.Message[uint64]{Kind: comm.KData,
							Entries: []comm.Entry[uint64]{{Key: uint64(i), Proc: uint32(src)}}}
						if err := ep.Send(2, m); err != nil {
							t.Errorf("send: %v", err)
							return
						}
					}
				}(src)
			}
			next := map[int]uint64{0: 0, 1: 0}
			rx := net.Endpoint(2)
			for got := 0; got < 2*msgs; got++ {
				m, ok := rx.Recv()
				if !ok {
					t.Fatal("Recv failed early")
				}
				key := m.Entries[0].Key
				if key != next[m.Src] {
					t.Fatalf("FIFO violated for src %d: got %d want %d", m.Src, key, next[m.Src])
				}
				next[m.Src]++
			}
			wg.Wait()
		})
	}
}

func TestAllToAll(t *testing.T) {
	const p = 4
	const per = 100
	for name, net := range newNets(t, p) {
		t.Run(name, func(t *testing.T) {
			defer net.Close()
			var wg sync.WaitGroup
			recvCounts := make([]map[int]int, p)
			for i := 0; i < p; i++ {
				recvCounts[i] = map[int]int{}
			}
			for i := 0; i < p; i++ {
				wg.Add(2)
				go func(i int) { // sender
					defer wg.Done()
					ep := net.Endpoint(i)
					for j := 0; j < p; j++ {
						if j == i {
							continue
						}
						for k := 0; k < per; k++ {
							m := comm.Message[uint64]{Kind: comm.KData,
								Entries: []comm.Entry[uint64]{{Key: uint64(k)}}}
							if err := ep.Send(j, m); err != nil {
								t.Errorf("send %d->%d: %v", i, j, err)
								return
							}
						}
					}
				}(i)
				go func(i int) { // receiver
					defer wg.Done()
					ep := net.Endpoint(i)
					for n := 0; n < (p-1)*per; n++ {
						m, ok := ep.Recv()
						if !ok {
							t.Errorf("recv %d failed early", i)
							return
						}
						recvCounts[i][m.Src]++
					}
				}(i)
			}
			wg.Wait()
			for i := 0; i < p; i++ {
				for j := 0; j < p; j++ {
					if i == j {
						continue
					}
					if recvCounts[i][j] != per {
						t.Errorf("node %d received %d from %d, want %d", i, recvCounts[i][j], j, per)
					}
				}
			}
		})
	}
}

func TestStatsParityAcrossTransports(t *testing.T) {
	counts := map[string][2]int64{}
	for name, net := range newNets(t, 2) {
		a, b := net.Endpoint(0), net.Endpoint(1)
		m := comm.Message[uint64]{Kind: comm.KData,
			Entries: make([]comm.Entry[uint64], 100)}
		if err := a.Send(1, m); err != nil {
			t.Fatalf("%s send: %v", name, err)
		}
		if _, ok := b.Recv(); !ok {
			t.Fatalf("%s recv", name)
		}
		counts[name] = [2]int64{a.Stats().BytesSent(), b.Stats().BytesRecv()}
		net.Close()
	}
	if counts[KindChan] != counts[KindTCP] {
		t.Fatalf("logical byte accounting differs: chan=%v tcp=%v",
			counts[KindChan], counts[KindTCP])
	}
	// 100 entries * (8-byte key + 8-byte origin) = 1600 bytes.
	if counts[KindChan][0] != 1600 {
		t.Fatalf("bytes sent = %d, want 1600", counts[KindChan][0])
	}
}

func TestSelfSend(t *testing.T) {
	for name, net := range newNets(t, 2) {
		t.Run(name, func(t *testing.T) {
			defer net.Close()
			a := net.Endpoint(0)
			if err := a.Send(0, comm.Message[uint64]{Kind: comm.KControl, Ints: []int64{9}}); err != nil {
				t.Fatalf("self send: %v", err)
			}
			m, ok := a.Recv()
			if !ok || m.Ints[0] != 9 || m.Src != 0 {
				t.Fatalf("self recv = %+v, %v", m, ok)
			}
		})
	}
}

func TestSendOutOfRange(t *testing.T) {
	for name, net := range newNets(t, 2) {
		if err := net.Endpoint(0).Send(5, comm.Message[uint64]{}); err == nil {
			t.Errorf("%s: out-of-range send accepted", name)
		}
		if err := net.Endpoint(0).Send(-1, comm.Message[uint64]{}); err == nil {
			t.Errorf("%s: negative send accepted", name)
		}
		net.Close()
	}
}

func TestRecvAfterClose(t *testing.T) {
	for name, net := range newNets(t, 2) {
		t.Run(name, func(t *testing.T) {
			net.Close()
			done := make(chan bool, 1)
			go func() {
				_, ok := net.Endpoint(1).Recv()
				done <- ok
			}()
			if ok := <-done; ok {
				t.Fatal("Recv returned ok after close with empty inbox")
			}
		})
	}
}

func TestLargeMessages(t *testing.T) {
	// Larger than the 256KB write buffer to exercise flushing and
	// multi-read framing on TCP.
	const entries = 100000 // 1.6MB payload
	for name, net := range newNets(t, 2) {
		t.Run(name, func(t *testing.T) {
			defer net.Close()
			in := make([]comm.Entry[uint64], entries)
			for i := range in {
				in[i] = comm.Entry[uint64]{Key: uint64(i), Proc: 1, Index: uint32(i)}
			}
			go func() {
				net.Endpoint(0).Send(1, comm.Message[uint64]{Kind: comm.KData, Entries: in})
			}()
			m, ok := net.Endpoint(1).Recv()
			if !ok || len(m.Entries) != entries {
				t.Fatalf("large recv: ok=%v len=%d", ok, len(m.Entries))
			}
			for i := 0; i < entries; i += 9973 {
				if m.Entries[i].Key != uint64(i) {
					t.Fatalf("payload corrupted at %d", i)
				}
			}
		})
	}
}

func TestManyNodesTCP(t *testing.T) {
	// Mesh construction at a non-trivial node count.
	net, err := NewTCP[uint64](10, comm.U64Codec{})
	if err != nil {
		t.Fatalf("NewTCP(10): %v", err)
	}
	defer net.Close()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep := net.Endpoint(i)
			ep.Send((i+1)%10, comm.Message[uint64]{Kind: comm.KControl, Ints: []int64{int64(i)}})
			m, ok := ep.Recv()
			if !ok {
				t.Errorf("node %d recv failed", i)
				return
			}
			if want := (i + 9) % 10; m.Src != want {
				t.Errorf("node %d got message from %d, want %d", i, m.Src, want)
			}
		}(i)
	}
	wg.Wait()
}

func BenchmarkSendRecv(b *testing.B) {
	for _, kind := range []string{KindChan, KindTCP} {
		for _, sz := range []int{16, 1024, 16384} {
			b.Run(fmt.Sprintf("%s/entries=%d", kind, sz), func(b *testing.B) {
				net, err := New[uint64](kind, 2, comm.U64Codec{})
				if err != nil {
					b.Fatal(err)
				}
				defer net.Close()
				entries := make([]comm.Entry[uint64], sz)
				done := make(chan struct{})
				go func() {
					defer close(done)
					ep := net.Endpoint(1)
					for i := 0; i < b.N; i++ {
						ep.Recv()
					}
				}()
				ep := net.Endpoint(0)
				b.SetBytes(int64(sz * 16))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ep.Send(1, comm.Message[uint64]{Kind: comm.KData, Entries: entries})
				}
				<-done
			})
		}
	}
}
