package transport

import (
	"sync"
	"time"

	"pgxsort/internal/comm"
	"pgxsort/internal/dist"
)

// Jitter spreads one backoff interval: the result lies in [3d/4, 5d/4),
// drawn from rnd — any random word; callers pass a clock sample or an
// RNG draw. Precision does not matter, de-synchronization does: the TCP
// redialer and the scheduler's retry backoff share this helper so every
// backoff in the stack desynchronizes restarting peers the same way.
func Jitter(d time.Duration, rnd uint64) time.Duration {
	if d <= 0 {
		return 0
	}
	sleep := d - d/4
	if half := d / 2; half > 0 {
		sleep += time.Duration(rnd % uint64(half))
	}
	return sleep
}

// WithJitter wraps a network so every Send is delayed by a pseudo-random
// duration in [0, maxDelay). Per-pair FIFO order is preserved (the delay
// happens in the sender's goroutine before the inner send), but the global
// interleaving of messages across pairs becomes adversarial. The engine
// must tolerate any such schedule — this wrapper exists to prove it in
// tests (failure injection for timing assumptions).
func WithJitter[K any](inner Network[K], maxDelay time.Duration, seed uint64) Network[K] {
	n := &jitterNetwork[K]{inner: inner, maxDelay: maxDelay}
	n.eps = make([]*jitterEndpoint[K], inner.P())
	for i := range n.eps {
		n.eps[i] = &jitterEndpoint[K]{
			inner: inner.Endpoint(i),
			net:   n,
			rng:   dist.NewRNG(seed + uint64(i)*1000003),
		}
	}
	return n
}

type jitterNetwork[K any] struct {
	inner    Network[K]
	maxDelay time.Duration
	eps      []*jitterEndpoint[K]
}

func (n *jitterNetwork[K]) P() int                     { return n.inner.P() }
func (n *jitterNetwork[K]) Endpoint(i int) Endpoint[K] { return n.eps[i] }
func (n *jitterNetwork[K]) Close() error               { return n.inner.Close() }

// Err forwards the inner network's terminal failure (see TerminalErr).
func (n *jitterNetwork[K]) Err() error   { return TerminalErr[K](n.inner) }
func (n *jitterNetwork[K]) Name() string { return n.inner.Name() + "+jitter" }

type jitterEndpoint[K any] struct {
	inner Endpoint[K]
	net   *jitterNetwork[K]
	mu    sync.Mutex
	rng   *dist.RNG
}

func (e *jitterEndpoint[K]) ID() int            { return e.inner.ID() }
func (e *jitterEndpoint[K]) P() int             { return e.inner.P() }
func (e *jitterEndpoint[K]) Stats() *comm.Stats { return e.inner.Stats() }

func (e *jitterEndpoint[K]) Send(dst int, m comm.Message[K]) error {
	if d := e.net.maxDelay; d > 0 {
		e.mu.Lock()
		delay := time.Duration(e.rng.Uint64n(uint64(d)))
		e.mu.Unlock()
		time.Sleep(delay)
	}
	return e.inner.Send(dst, m)
}

func (e *jitterEndpoint[K]) Recv() (comm.Message[K], bool) {
	return e.inner.Recv()
}
