package transport

import (
	"errors"
	"sync"

	"pgxsort/internal/comm"
)

// inboxDepth bounds each endpoint's queued messages. A full inbox blocks
// the sender, which is the same backpressure the TCP transport gets from
// socket buffers; the engine's concurrent send/receive design (paper
// §IV-C) keeps this from deadlocking.
const inboxDepth = 1024

// chanNetwork is the in-process, zero-copy transport.
type chanNetwork[K any] struct {
	p       int
	codec   comm.Codec[K]
	eps     []*chanEndpoint[K]
	done    chan struct{}
	closeMu sync.Once
}

type chanEndpoint[K any] struct {
	net   *chanNetwork[K]
	id    int
	inbox chan comm.Message[K]
	stats comm.Stats
}

// NewChan builds an in-process network of p endpoints. codec is used only
// for traffic accounting: nothing is serialized, but both transports must
// report identical byte counts for identical workloads (Figure 9).
func NewChan[K any](p int, codec comm.Codec[K]) Network[K] {
	n := &chanNetwork[K]{p: p, codec: codec, done: make(chan struct{})}
	n.eps = make([]*chanEndpoint[K], p)
	for i := range n.eps {
		n.eps[i] = &chanEndpoint[K]{
			net:   n,
			id:    i,
			inbox: make(chan comm.Message[K], inboxDepth),
		}
	}
	return n
}

func (n *chanNetwork[K]) P() int                     { return n.p }
func (n *chanNetwork[K]) Endpoint(i int) Endpoint[K] { return n.eps[i] }
func (n *chanNetwork[K]) Name() string               { return KindChan }

func (n *chanNetwork[K]) Close() error {
	n.closeMu.Do(func() { close(n.done) })
	return nil
}

func (e *chanEndpoint[K]) ID() int            { return e.id }
func (e *chanEndpoint[K]) P() int             { return e.net.p }
func (e *chanEndpoint[K]) Stats() *comm.Stats { return &e.stats }

// ErrClosed reports a send or receive on a network that has been closed.
var ErrClosed = errors.New("transport: network closed")

func (e *chanEndpoint[K]) Send(dst int, m comm.Message[K]) error {
	if dst < 0 || dst >= e.net.p {
		return errors.New("transport: destination out of range")
	}
	m.Src = e.id
	m.Dst = dst
	bytes := m.WireBytes(e.net.codec)
	target := e.net.eps[dst]
	select {
	case target.inbox <- m:
		e.stats.CountSend(m.Kind, bytes)
		target.stats.CountRecv(bytes)
		return nil
	case <-e.net.done:
		return ErrClosed
	}
}

func (e *chanEndpoint[K]) Recv() (comm.Message[K], bool) {
	select {
	case m := <-e.inbox:
		return m, true
	case <-e.net.done:
		// Drain anything that was already queued before shutdown.
		select {
		case m := <-e.inbox:
			return m, true
		default:
			var zero comm.Message[K]
			return zero, false
		}
	}
}
