package transport

import (
	"sync"
	"sync/atomic"
	"time"

	"pgxsort/internal/comm"
)

// Resetter is implemented by transports whose live connections can be
// forcibly killed for fault injection (the TCP transport). ResetLink
// closes the (src -> dst) connection as if the network dropped it; a
// hardened transport reconnects and retransmits.
type Resetter interface {
	ResetLink(src, dst int) bool
}

// FaultPlan schedules deterministic fault injection on a wrapped
// network. Counters are per (src, dst) pair, so schedules are stable no
// matter how sends interleave across links.
//
// Resets and delays are recoverable: a hardened transport delivers every
// message anyway, so they are safe to inject under a full engine sort
// (that is the point of the chaos tests). Drops and duplicates are NOT
// recovered — they model software faults above the reliable layer — so
// they are only usable in transport-level tests; the engine refuses
// them.
type FaultPlan struct {
	// ResetEvery kills the underlying connection before every Nth send
	// on a link (0 disables). Requires the inner network to implement
	// Resetter; otherwise it is a no-op.
	ResetEvery int
	// MaxResets bounds the total injected resets across the network
	// (0 = unlimited).
	MaxResets int
	// DelayEvery sleeps Delay before every Nth send on a link.
	DelayEvery int
	Delay      time.Duration
	// DropEvery silently discards every Nth send on a link (transport
	// tests only; breaks engine sorts by design).
	DropEvery int
	// DupEvery sends every Nth message twice (transport tests only).
	DupEvery int
}

// Recoverable reports whether the plan only injects faults a hardened
// transport recovers from (resets and delays, not drops or duplicates).
func (p FaultPlan) Recoverable() bool {
	return p.DropEvery == 0 && p.DupEvery == 0
}

// active reports whether the plan injects anything at all.
func (p FaultPlan) active() bool {
	return p.ResetEvery > 0 || p.DelayEvery > 0 || p.DropEvery > 0 || p.DupEvery > 0
}

// FaultCounts totals the faults a Faulty network actually injected.
type FaultCounts struct {
	Resets int64
	Delays int64
	Drops  int64
	Dups   int64
}

// Faulty wraps a Network and injects the faults its plan schedules. Use
// Injected to read how many fired.
type Faulty[K any] struct {
	inner    Network[K]
	plan     FaultPlan
	resetter Resetter
	eps      []*faultyEndpoint[K]

	resets atomic.Int64
	delays atomic.Int64
	drops  atomic.Int64
	dups   atomic.Int64
}

// WithFaults wraps inner with plan. Reset injection probes inner for the
// Resetter interface (the TCP transport implements it; the in-process
// transport has no connections to reset, so resets become no-ops there).
// Wrap the base network directly — an interposed wrapper such as
// WithJitter hides the Resetter.
func WithFaults[K any](inner Network[K], plan FaultPlan) *Faulty[K] {
	f := &Faulty[K]{inner: inner, plan: plan}
	f.resetter, _ = inner.(Resetter)
	f.eps = make([]*faultyEndpoint[K], inner.P())
	for i := range f.eps {
		if ep := inner.Endpoint(i); ep != nil {
			f.eps[i] = &faultyEndpoint[K]{net: f, inner: ep, sends: make([]int64, inner.P())}
		}
	}
	return f
}

func (f *Faulty[K]) P() int       { return f.inner.P() }
func (f *Faulty[K]) Close() error { return f.inner.Close() }

// Err forwards the inner network's terminal failure (see TerminalErr).
func (f *Faulty[K]) Err() error { return TerminalErr[K](f.inner) }
func (f *Faulty[K]) Name() string {
	if f.plan.active() {
		return f.inner.Name() + "+faults"
	}
	return f.inner.Name()
}

func (f *Faulty[K]) Endpoint(i int) Endpoint[K] {
	if ep := f.eps[i]; ep != nil {
		return ep
	}
	return nil
}

// Injected reports how many faults have fired so far.
func (f *Faulty[K]) Injected() FaultCounts {
	return FaultCounts{
		Resets: f.resets.Load(),
		Delays: f.delays.Load(),
		Drops:  f.drops.Load(),
		Dups:   f.dups.Load(),
	}
}

type faultyEndpoint[K any] struct {
	net   *Faulty[K]
	inner Endpoint[K]

	mu    sync.Mutex
	sends []int64 // per-destination send counter driving the schedules
}

func (e *faultyEndpoint[K]) ID() int            { return e.inner.ID() }
func (e *faultyEndpoint[K]) P() int             { return e.inner.P() }
func (e *faultyEndpoint[K]) Stats() *comm.Stats { return e.inner.Stats() }

func (e *faultyEndpoint[K]) Recv() (comm.Message[K], bool) { return e.inner.Recv() }

func (e *faultyEndpoint[K]) Send(dst int, m comm.Message[K]) error {
	f := e.net
	plan := f.plan
	if !plan.active() || dst < 0 || dst >= len(e.sends) || dst == e.inner.ID() {
		return e.inner.Send(dst, m)
	}
	e.mu.Lock()
	e.sends[dst]++
	nth := e.sends[dst]
	e.mu.Unlock()

	if plan.DelayEvery > 0 && nth%int64(plan.DelayEvery) == 0 {
		f.delays.Add(1)
		time.Sleep(plan.Delay)
	}
	if plan.ResetEvery > 0 && f.resetter != nil && nth%int64(plan.ResetEvery) == 0 {
		if plan.MaxResets > 0 {
			// Reserve the slot atomically so concurrent senders cannot
			// overshoot MaxResets with a check-then-act race; a slot
			// whose reset did not land is returned.
			if f.resets.Add(1) > int64(plan.MaxResets) {
				f.resets.Add(-1)
			} else if !f.resetter.ResetLink(e.inner.ID(), dst) {
				f.resets.Add(-1)
			}
		} else if f.resetter.ResetLink(e.inner.ID(), dst) {
			f.resets.Add(1)
		}
	}
	if plan.DropEvery > 0 && nth%int64(plan.DropEvery) == 0 {
		f.drops.Add(1)
		return nil
	}
	if plan.DupEvery > 0 && nth%int64(plan.DupEvery) == 0 {
		if err := e.inner.Send(dst, m); err != nil {
			return err
		}
		f.dups.Add(1)
	}
	return e.inner.Send(dst, m)
}
