package lsort

import (
	"errors"
	"math/rand"
	"slices"
	"testing"
)

// chunkCursor yields a run in fixed-size batches, the shape a spill
// RunReader produces.
type chunkCursor struct {
	run   []int
	chunk int
}

func (c *chunkCursor) Next() ([]int, error) {
	if len(c.run) == 0 {
		return nil, nil
	}
	n := min(c.chunk, len(c.run))
	batch := c.run[:n]
	c.run = c.run[n:]
	return batch, nil
}

// TestMergeCursorDifferential checks MergeCursor emits the exact element
// sequence MergeCursors fills, across run counts, run shapes and batch
// sizes — including empty runs and ties (the cursor-index rule).
func TestMergeCursorDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(7)
		runs := make([][]int, k)
		total := 0
		for i := range runs {
			n := rng.Intn(40)
			runs[i] = make([]int, n)
			for j := range runs[i] {
				runs[i][j] = rng.Intn(10) // heavy ties
			}
			slices.Sort(runs[i])
			total += n
		}
		less := func(a, b int) bool { return a < b }

		mk := func() []Cursor[int] {
			cs := make([]Cursor[int], k)
			for i := range cs {
				cs[i] = &chunkCursor{run: slices.Clone(runs[i]), chunk: 1 + rng.Intn(5)}
			}
			return cs
		}
		want := make([]int, total)
		n, err := MergeCursors(want, mk(), less)
		if err != nil || n != total {
			t.Fatalf("MergeCursors: n=%d err=%v", n, err)
		}

		mc, err := NewMergeCursor(mk(), less, make([]int, 1+rng.Intn(9)))
		if err != nil {
			t.Fatalf("NewMergeCursor: %v", err)
		}
		var got []int
		for {
			batch, err := mc.Next()
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			if len(batch) == 0 {
				break
			}
			got = append(got, batch...)
		}
		if !slices.Equal(got, want) {
			t.Fatalf("trial %d: MergeCursor diverged from MergeCursors\ngot  %v\nwant %v", trial, got, want)
		}
	}
}

// errCursor fails after yielding its run.
type errCursor struct {
	run  []int
	sent bool
}

func (c *errCursor) Next() ([]int, error) {
	if !c.sent {
		c.sent = true
		return c.run, nil
	}
	return nil, errors.New("disk gone")
}

func TestMergeCursorError(t *testing.T) {
	cs := []Cursor[int]{
		&errCursor{run: []int{1, 3}},
		&chunkCursor{run: []int{2, 4}, chunk: 2},
	}
	mc, err := NewMergeCursor(cs, func(a, b int) bool { return a < b }, make([]int, 8))
	if err != nil {
		t.Fatalf("NewMergeCursor: %v", err)
	}
	var got []int
	var lastErr error
	for {
		batch, err := mc.Next()
		got = append(got, batch...)
		if err != nil {
			lastErr = err
			break
		}
		if len(batch) == 0 {
			break
		}
	}
	if lastErr == nil {
		t.Fatal("error cursor's failure never surfaced")
	}
	// Elements popped before the failure must have arrived in order.
	if !slices.IsSorted(got) {
		t.Fatalf("pre-error output out of order: %v", got)
	}
}
