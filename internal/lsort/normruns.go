package lsort

// SortEqualNormRuns finishes a radix sort whose key image is monotone but
// not injective (e.g. an 8-byte string prefix): after the radix passes the
// data is sorted by norm, but entries sharing a norm value may still be
// out of order under the real comparison. This pass walks the maximal
// equal-norm runs and comparison-sorts each one in place with a stable
// sort, so entries that compare equal under less keep the order the
// (stable) radix passes left them in — the same within-run determinism an
// injective norm gets for free.
//
// Cost is proportional to the collided fraction: inputs whose norms are
// all distinct pay one linear scan and no sort.
func SortEqualNormRuns[E any](s []E, key func(E) uint64, less func(x, y E) bool) {
	for i := 0; i < len(s); {
		j := i + 1
		k := key(s[i])
		for j < len(s) && key(s[j]) == k {
			j++
		}
		if j-i > 1 {
			TimSort(s[i:j], less)
		}
		i = j
	}
}
