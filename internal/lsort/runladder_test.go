package lsort

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// ladderPool counts outstanding buffers so the tests can prove the ladder
// returns every owned slab exactly once and never puts a borrowed one.
type ladderPool struct {
	t           *testing.T
	outstanding int
	issued      map[*int]bool // set of buffers handed out, keyed by &s[0:1] trick
}

func newLadderPool(t *testing.T) *ladderPool {
	return &ladderPool{t: t, issued: map[*int]bool{}}
}

func (p *ladderPool) get(n int) []int {
	s := make([]int, n)
	p.outstanding++
	if n > 0 {
		p.issued[&s[0]] = true
	}
	return s
}

func (p *ladderPool) put(s []int) {
	p.outstanding--
	if p.outstanding < 0 {
		p.t.Fatal("ladder put more buffers than it got")
	}
	if len(s) > 0 && !p.issued[&s[0]] {
		p.t.Fatal("ladder put a buffer it did not get (borrowed run leaked into put)")
	}
}

// randomRuns builds k sorted runs with distinct values (so the merged
// order is unique) and the flat sorted reference.
func randomRuns(rng *rand.Rand, k, maxLen int) (runs [][]int, want []int) {
	next := 0
	for i := 0; i < k; i++ {
		n := rng.Intn(maxLen + 1)
		run := make([]int, n)
		for j := range run {
			next += 1 + rng.Intn(3)
			run[j] = next
		}
		// Distinct values but runs interleave: shift half the runs down.
		if i%2 == 1 {
			for j := range run {
				run[j] -= maxLen
			}
			sort.Ints(run)
		}
		runs = append(runs, run)
		want = append(want, run...)
	}
	sort.Ints(want)
	return runs, want
}

func TestRunLadderMatchesSortedConcat(t *testing.T) {
	less := func(a, b int) bool { return a < b }
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{1, 2, 3, 5, 8, 13, 52} {
		for _, ways := range []int{1, 4} {
			pool := newLadderPool(t)
			l := NewRunLadder(less, pool.get, pool.put, ways, nil)
			runs, want := randomRuns(rng, k, 700)
			for _, idx := range rng.Perm(len(runs)) {
				l.Push(runs[idx], false) // borrowed: the ladder must not put these
			}
			if got := l.Len(); got != len(want) {
				t.Fatalf("k=%d: ladder holds %d entries, want %d", k, got, len(want))
			}
			out, owned := l.Finish()
			if len(out) != len(want) {
				t.Fatalf("k=%d: merged %d entries, want %d", k, len(out), len(want))
			}
			for i := range want {
				if out[i] != want[i] {
					t.Fatalf("k=%d ways=%d: merged order wrong at %d: %d != %d",
						k, ways, i, out[i], want[i])
				}
			}
			wantOutstanding := 0
			if owned {
				wantOutstanding = 1 // the result itself; everything else returned
			}
			if pool.outstanding != wantOutstanding {
				t.Fatalf("k=%d: %d buffers outstanding after Finish, want %d",
					k, pool.outstanding, wantOutstanding)
			}
		}
	}
}

func TestRunLadderSingleRunStaysBorrowed(t *testing.T) {
	pool := newLadderPool(t)
	l := NewRunLadder(func(a, b int) bool { return a < b }, pool.get, pool.put, 1, nil)
	run := []int{1, 2, 3}
	l.Push(run, false)
	out, owned := l.Finish()
	if owned {
		t.Fatal("single borrowed run reported as owned")
	}
	if len(out) != 3 || &out[0] != &run[0] {
		t.Fatal("single run should be returned as-is")
	}
	if pool.outstanding != 0 {
		t.Fatalf("outstanding = %d, want 0", pool.outstanding)
	}
}

func TestRunLadderEmpty(t *testing.T) {
	pool := newLadderPool(t)
	l := NewRunLadder(func(a, b int) bool { return a < b }, pool.get, pool.put, 1, nil)
	l.Push(nil, false)
	l.Push([]int{}, false)
	out, owned := l.Finish()
	if out != nil || owned {
		t.Fatalf("empty ladder Finish = (%v, %v), want (nil, false)", out, owned)
	}
	// An empty owned run is returned to the pool immediately.
	l.Push(pool.get(0), true)
	if pool.outstanding != 0 {
		t.Fatalf("empty owned run not returned: outstanding = %d", pool.outstanding)
	}
}

func TestRunLadderAbortReturnsEverything(t *testing.T) {
	pool := newLadderPool(t)
	l := NewRunLadder(func(a, b int) bool { return a < b }, pool.get, pool.put, 2, nil)
	rng := rand.New(rand.NewSource(3))
	runs, _ := randomRuns(rng, 9, 400)
	for _, r := range runs {
		l.Push(r, false)
	}
	l.Abort()
	if pool.outstanding != 0 {
		t.Fatalf("abort left %d buffers outstanding", pool.outstanding)
	}
	if l.Runs() != 0 {
		t.Fatalf("abort left %d runs in the ladder", l.Runs())
	}
}

func TestRunLadderNoteObservesMerges(t *testing.T) {
	merges, total := 0, 0
	l := NewRunLadder(func(a, b int) bool { return a < b }, nil, nil, 1,
		func(n int, start, end time.Time) {
			merges++
			total = n
			if end.Before(start) {
				t.Error("merge span ends before it starts")
			}
		})
	for i := 0; i < 4; i++ {
		run := []int{i, i + 10, i + 20}
		l.Push(run, false)
	}
	out, _ := l.Finish()
	if merges != 3 {
		t.Fatalf("4 runs should take 3 merges, observed %d", merges)
	}
	if total != len(out) || len(out) != 12 {
		t.Fatalf("final merge span reports %d entries, result has %d", total, len(out))
	}
}

func TestMergeAdjacentRunsOwnedOwnership(t *testing.T) {
	less := func(a, b int) bool { return a < b }
	rng := rand.New(rand.NewSource(11))
	for _, k := range []int{1, 2, 3, 4, 5, 7, 8} {
		data := []int{}
		bounds := []int{0}
		for i := 0; i < k; i++ {
			n := rng.Intn(50)
			run := make([]int, n)
			for j := range run {
				run[j] = rng.Intn(1000)
			}
			sort.Ints(run)
			data = append(data, run...)
			bounds = append(bounds, len(data))
		}
		want := append([]int(nil), data...)
		sort.Ints(want)
		buf := append([]int(nil), data...)
		scratch := make([]int, len(buf))
		out, fromScratch := MergeAdjacentRunsOwned(buf, scratch, bounds, less, true)
		if len(out) != len(want) {
			t.Fatalf("k=%d: merged %d entries, want %d", k, len(out), len(want))
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("k=%d: wrong at %d", k, i)
			}
		}
		// Cross-check the ownership bit against the base pointers — the
		// very check that is only valid when the result is non-empty.
		if len(out) > 0 {
			actualScratch := &out[0] == &scratch[0]
			if actualScratch != fromScratch {
				t.Fatalf("k=%d: fromScratch=%v but result backed by scratch=%v",
					k, fromScratch, actualScratch)
			}
		}
	}
	// Zero-length inputs: the old base-pointer compare had nothing to
	// address here; the ownership bit must still be well defined.
	out, fromScratch := MergeAdjacentRunsOwned([]int{}, []int{}, []int{0, 0, 0}, less, false)
	if len(out) != 0 {
		t.Fatalf("empty merge produced %d entries", len(out))
	}
	_ = fromScratch // any value is fine; it must simply not panic
}
