package lsort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sortedRandom(r *rand.Rand, n, domain int) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = uint64(r.Intn(domain))
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

func TestCoRankSplitsAreValid(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		a := sortedRandom(r, r.Intn(500), 100)
		b := sortedRandom(r, r.Intn(500), 100)
		total := len(a) + len(b)
		if total == 0 {
			continue
		}
		d := r.Intn(total + 1)
		i, j := CoRank(d, a, b, lessU64)
		if i+j != d {
			t.Fatalf("CoRank(%d) = (%d,%d), sum != d", d, i, j)
		}
		if i < 0 || i > len(a) || j < 0 || j > len(b) {
			t.Fatalf("CoRank out of range: (%d,%d)", i, j)
		}
		// Everything left of the split must be <= everything right of it.
		if i > 0 && j < len(b) && a[i-1] > b[j] {
			t.Fatalf("invalid split: a[%d-1]=%d > b[%d]=%d", i, a[i-1], j, b[j])
		}
		if j > 0 && i < len(a) && b[j-1] > a[i] {
			t.Fatalf("invalid split: b[%d-1]=%d > a[%d]=%d", j, b[j-1], i, a[i])
		}
	}
}

func TestCoRankExtremes(t *testing.T) {
	a := []uint64{1, 2, 3}
	b := []uint64{4, 5}
	if i, j := CoRank(0, a, b, lessU64); i != 0 || j != 0 {
		t.Fatalf("CoRank(0) = (%d,%d)", i, j)
	}
	if i, j := CoRank(5, a, b, lessU64); i != 3 || j != 2 {
		t.Fatalf("CoRank(total) = (%d,%d)", i, j)
	}
	// All of a below all of b: diagonal 3 must split exactly between.
	if i, j := CoRank(3, a, b, lessU64); i != 3 || j != 0 {
		t.Fatalf("CoRank(3) = (%d,%d), want (3,0)", i, j)
	}
}

func TestParallelMergeIntoMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		a := sortedRandom(r, r.Intn(8000), 500)
		b := sortedRandom(r, r.Intn(8000), 500)
		want := make([]uint64, len(a)+len(b))
		mergeInto(want, a, b, lessU64)
		for _, ways := range []int{1, 2, 3, 4, 7, 16} {
			got := make([]uint64, len(a)+len(b))
			ParallelMergeInto(got, a, b, lessU64, ways)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d ways %d: mismatch at %d: %d != %d",
						trial, ways, i, got[i], want[i])
				}
			}
		}
	}
}

// TestParallelMergeIntoStable: with duplicate keys spanning CoRank
// diagonals, the parallel merge must emit ties exactly as mergeInto does
// (all of a's before all of b's). The spill tier's byte-identity proof
// rests on this; tagged elements make a violated tie order visible where
// plain uint64 values could not.
func TestParallelMergeIntoStable(t *testing.T) {
	type tagged struct {
		key uint64
		src int
		seq int
	}
	r := rand.New(rand.NewSource(31))
	less := func(x, y tagged) bool { return x.key < y.key }
	for trial := 0; trial < 30; trial++ {
		mk := func(src, n, domain int) []tagged {
			s := make([]tagged, n)
			for i := range s {
				s[i].key = uint64(r.Intn(domain))
			}
			sort.Slice(s, func(i, j int) bool { return s[i].key < s[j].key })
			for i := range s {
				s[i].src, s[i].seq = src, i
			}
			return s
		}
		// Tiny domains force long tie runs across every split diagonal.
		a := mk(0, 3000+r.Intn(6000), 1+r.Intn(8))
		b := mk(1, 3000+r.Intn(6000), 1+r.Intn(8))
		want := make([]tagged, len(a)+len(b))
		mergeInto(want, a, b, less)
		for _, ways := range []int{2, 3, 4, 7, 16} {
			got := make([]tagged, len(a)+len(b))
			ParallelMergeInto(got, a, b, less, ways)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d ways %d: tie order diverges at %d: %+v != %+v",
						trial, ways, i, got[i], want[i])
				}
			}
		}
	}
}

func TestParallelMergeIntoEdgeCases(t *testing.T) {
	// Empty operands.
	got := make([]uint64, 3)
	ParallelMergeInto(got, []uint64{1, 2, 3}, nil, lessU64, 4)
	for i, v := range []uint64{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("empty b: %v", got)
		}
	}
	ParallelMergeInto(got, nil, []uint64{4, 5, 6}, lessU64, 4)
	for i, v := range []uint64{4, 5, 6} {
		if got[i] != v {
			t.Fatalf("empty a: %v", got)
		}
	}
	// All-equal keys (duplicated splitter territory).
	a := make([]uint64, 5000)
	b := make([]uint64, 5000)
	out := make([]uint64, 10000)
	ParallelMergeInto(out, a, b, lessU64, 8)
	for _, v := range out {
		if v != 0 {
			t.Fatal("all-equal merge corrupted")
		}
	}
	// ways > total.
	small := make([]uint64, 2)
	ParallelMergeInto(small, []uint64{2}, []uint64{1}, lessU64, 100)
	if small[0] != 1 || small[1] != 2 {
		t.Fatalf("tiny merge = %v", small)
	}
}

func TestParallelMergeIntoPanicsOnShortDst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short dst accepted")
		}
	}()
	ParallelMergeInto(make([]uint64, 1), []uint64{1}, []uint64{2}, lessU64, 2)
}

// Property: ParallelMergeInto is a sorted permutation for arbitrary
// sorted inputs and way counts.
func TestPropertyParallelMerge(t *testing.T) {
	f := func(ra, rb []uint64, waysRaw uint8) bool {
		sort.Slice(ra, func(i, j int) bool { return ra[i] < ra[j] })
		sort.Slice(rb, func(i, j int) bool { return rb[i] < rb[j] })
		ways := int(waysRaw)%8 + 1
		out := make([]uint64, len(ra)+len(rb))
		ParallelMergeInto(out, ra, rb, lessU64, ways)
		if !IsSorted(out, lessU64) {
			return false
		}
		counts := map[uint64]int{}
		for _, v := range ra {
			counts[v]++
		}
		for _, v := range rb {
			counts[v]++
		}
		for _, v := range out {
			counts[v]--
			if counts[v] < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The balanced handler with intra-merge parallelism must still agree with
// the sequential handler on key sequences.
func TestMergeAdjacentRunsWithSplitMerges(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	// Two large runs: the single final merge triggers the merge-path split.
	a := sortedRandom(r, 40000, 1000)
	b := sortedRandom(r, 40000, 1000)
	data := append(append([]uint64{}, a...), b...)
	in := append([]uint64(nil), data...)
	out := MergeAdjacentRuns(data, make([]uint64, len(data)), []int{0, len(a), len(data)}, lessU64, true)
	checkSortedPermutation(t, in, out)
}

func BenchmarkParallelMergeInto(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := sortedRandom(r, 1<<20, 1<<30)
	c := sortedRandom(r, 1<<20, 1<<30)
	dst := make([]uint64, len(a)+len(c))
	for _, ways := range []int{1, 2, 4, 8} {
		b.Run(benchName(ways), func(b *testing.B) {
			b.SetBytes(int64(len(dst)) * 8)
			for i := 0; i < b.N; i++ {
				ParallelMergeInto(dst, a, c, lessU64, ways)
			}
		})
	}
}

func benchName(ways int) string {
	return "ways=" + string(rune('0'+ways))
}
