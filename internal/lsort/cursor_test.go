package lsort

import (
	"errors"
	"math/rand"
	"testing"
)

// chunkedCursor yields a run in batches of varying sizes, reusing one
// backing buffer across Next calls to police the "batch valid until the
// next Next" contract in consumers.
type chunkedCursor struct {
	run   []uint64
	sizes []int
	call  int
	buf   []uint64
}

func (c *chunkedCursor) Next() ([]uint64, error) {
	if len(c.run) == 0 {
		return nil, nil
	}
	n := c.sizes[c.call%len(c.sizes)]
	c.call++
	if n > len(c.run) {
		n = len(c.run)
	}
	c.buf = append(c.buf[:0], c.run[:n]...)
	c.run = c.run[n:]
	return c.buf, nil
}

// TestMergeCursorsMatchesKWay: streaming the same runs through batching
// cursors must reproduce KWayMerge byte for byte — including tie order,
// which both break by run/cursor index. This is the equivalence the
// spill tier's final merge is built on.
func TestMergeCursorsMatchesKWay(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		k := 1 + r.Intn(9)
		runs := make([][]uint64, k)
		total := 0
		for i := range runs {
			runs[i] = sortedRandom(r, r.Intn(3000), 1+r.Intn(50))
			total += len(runs[i])
		}
		want := KWayMerge(runs, lessU64)
		cursors := make([]Cursor[uint64], k)
		for i := range runs {
			cursors[i] = &chunkedCursor{run: runs[i], sizes: []int{1 + r.Intn(7), 1 + r.Intn(500), 97}}
		}
		dst := make([]uint64, total)
		n, err := MergeCursors(dst, cursors, lessU64)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if n != len(want) {
			t.Fatalf("trial %d: merged %d of %d", trial, n, len(want))
		}
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("trial %d: mismatch at %d: %d != %d", trial, i, dst[i], want[i])
			}
		}
	}
}

// TestMergeCursorsMixedSlices: resident runs via SliceCursor interleave
// with batching cursors and still match KWayMerge.
func TestMergeCursorsMixedSlices(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	runs := [][]uint64{
		sortedRandom(r, 500, 20),
		sortedRandom(r, 0, 5),
		sortedRandom(r, 1200, 20),
		sortedRandom(r, 3, 2),
	}
	want := KWayMerge(runs, lessU64)
	cursors := []Cursor[uint64]{
		NewSliceCursor(runs[0]),
		&chunkedCursor{run: runs[1], sizes: []int{4}},
		&chunkedCursor{run: runs[2], sizes: []int{11, 3}},
		NewSliceCursor(runs[3]),
	}
	dst := make([]uint64, len(want))
	n, err := MergeCursors(dst, cursors, lessU64)
	if err != nil || n != len(want) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

type failingCursor struct {
	left int
	err  error
}

func (c *failingCursor) Next() ([]uint64, error) {
	if c.left == 0 {
		return nil, c.err
	}
	c.left--
	return []uint64{1}, nil
}

// TestMergeCursorsError: a cursor error surfaces instead of being
// swallowed, with the prefix emitted so far reported.
func TestMergeCursorsError(t *testing.T) {
	boom := errors.New("boom")
	dst := make([]uint64, 16)
	n, err := MergeCursors(dst, []Cursor[uint64]{
		&failingCursor{left: 2, err: boom},
		NewSliceCursor([]uint64{0, 2}),
	}, lessU64)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n == 0 || n > 4 {
		t.Fatalf("n = %d", n)
	}
	// Single-cursor path must also propagate the error.
	if _, err := MergeCursors(dst, []Cursor[uint64]{&failingCursor{err: boom}}, lessU64); !errors.Is(err, boom) {
		t.Fatalf("single-cursor err = %v", err)
	}
}
