package lsort

import (
	"runtime"
	"sync"
)

// CoRank finds a split point (i, j) with i+j = d such that merging
// a[:i] with b[:j] and a[i:] with b[j:] separately yields the same sorted
// multiset as one merge of a and b (the "merge path" diagonal
// intersection). It runs in O(log min(len(a), len(b), d)).
func CoRank[E any](d int, a, b []E, less func(x, y E) bool) (i, j int) {
	lo := d - len(b)
	if lo < 0 {
		lo = 0
	}
	hi := d
	if hi > len(a) {
		hi = len(a)
	}
	for {
		i = int(uint(lo+hi) >> 1)
		j = d - i
		if i > 0 && j < len(b) && less(b[j], a[i-1]) {
			// a[i-1] belongs after b[j]: too many taken from a.
			hi = i - 1
			continue
		}
		if j > 0 && i < len(a) && less(a[i], b[j-1]) {
			// b[j-1] belongs after a[i]: too few taken from a.
			lo = i + 1
			continue
		}
		return i, j
	}
}

// ParallelMergeInto merges the sorted runs a and b into dst (which must
// have length len(a)+len(b)) using `ways` concurrent segment merges split
// along merge-path diagonals. It extends the paper's balanced merging
// handler to the last rounds of Figure 2, where there are fewer pending
// merges than worker threads and pairwise parallelism alone runs dry.
//
// Unlike mergeInto, the result is sorted but ties between a and b may be
// emitted in either order (the engine's entries are unordered on ties
// anyway; use mergeInto where stability matters).
func ParallelMergeInto[E any](dst, a, b []E, less func(x, y E) bool, ways int) {
	total := len(a) + len(b)
	if len(dst) < total {
		panic("lsort: ParallelMergeInto dst too small")
	}
	if ways < 1 {
		ways = 1
	}
	if ways > total {
		ways = total
	}
	if ways == 1 || total < 4096 {
		mergeInto(dst, a, b, less)
		return
	}
	var wg sync.WaitGroup
	prevI, prevJ := 0, 0
	for k := 1; k <= ways; k++ {
		var i, j int
		if k == ways {
			i, j = len(a), len(b)
		} else {
			i, j = CoRank(k*total/ways, a, b, less)
		}
		segA := a[prevI:i]
		segB := b[prevJ:j]
		segDst := dst[prevI+prevJ : i+j]
		wg.Add(1)
		go func() {
			defer wg.Done()
			mergeInto(segDst, segA, segB, less)
		}()
		prevI, prevJ = i, j
	}
	wg.Wait()
}

// mergeWays is the segment count used when the balanced handler falls back
// to intra-merge parallelism in its last rounds.
func mergeWays() int {
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		return 2
	}
	return w
}
