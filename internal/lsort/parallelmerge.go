package lsort

import (
	"runtime"
	"sync"
)

// CoRank finds the split point (i, j) with i+j = d where the *stable*
// merge path of a and b (the one mergeInto walks: on ties the element
// from a is emitted first) crosses diagonal d, so merging a[:i] with
// b[:j] and a[i:] with b[j:] separately reproduces mergeInto's output
// exactly — tie groups included. It runs in O(log min(len(a), len(b), d)).
func CoRank[E any](d int, a, b []E, less func(x, y E) bool) (i, j int) {
	lo := d - len(b)
	if lo < 0 {
		lo = 0
	}
	hi := d
	if hi > len(a) {
		hi = len(a)
	}
	for {
		i = int(uint(lo+hi) >> 1)
		j = d - i
		if i > 0 && j < len(b) && less(b[j], a[i-1]) {
			// a[i-1] belongs after b[j]: too many taken from a.
			hi = i - 1
			continue
		}
		if j > 0 && i < len(a) && !less(b[j-1], a[i]) {
			// b[j-1] does not precede a[i], so the stable path emits
			// a[i] before it: too few taken from a. (A plain
			// less(a[i], b[j-1]) test here would tolerate ties on the
			// boundary and let equal elements of b jump ahead of a's.)
			lo = i + 1
			continue
		}
		return i, j
	}
}

// ParallelMergeInto merges the sorted runs a and b into dst (which must
// have length len(a)+len(b)) using `ways` concurrent segment merges split
// along merge-path diagonals. It extends the paper's balanced merging
// handler to the last rounds of Figure 2, where there are fewer pending
// merges than worker threads and pairwise parallelism alone runs dry.
//
// The merge is stable like mergeInto — on ties the element from a is
// emitted first — because CoRank splits along the stable merge path, so
// the output is byte-identical to mergeInto regardless of ways. The
// spill tier depends on this: a budget-chunked sort followed by a stable
// streaming merge must reproduce the in-memory order exactly.
func ParallelMergeInto[E any](dst, a, b []E, less func(x, y E) bool, ways int) {
	total := len(a) + len(b)
	if len(dst) < total {
		panic("lsort: ParallelMergeInto dst too small")
	}
	if ways < 1 {
		ways = 1
	}
	if ways > total {
		ways = total
	}
	if ways == 1 || total < 4096 {
		mergeInto(dst, a, b, less)
		return
	}
	var wg sync.WaitGroup
	prevI, prevJ := 0, 0
	for k := 1; k <= ways; k++ {
		var i, j int
		if k == ways {
			i, j = len(a), len(b)
		} else {
			i, j = CoRank(k*total/ways, a, b, less)
		}
		segA := a[prevI:i]
		segB := b[prevJ:j]
		segDst := dst[prevI+prevJ : i+j]
		wg.Add(1)
		go func() {
			defer wg.Done()
			mergeInto(segDst, segA, segB, less)
		}()
		prevI, prevJ = i, j
	}
	wg.Wait()
}

// mergeWays is the segment count used when the balanced handler falls back
// to intra-merge parallelism in its last rounds.
func mergeWays() int {
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		return 2
	}
	return w
}
