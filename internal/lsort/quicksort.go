package lsort

import (
	"sync"

	"pgxsort/internal/alloc"
)

// insertionCutoff is the subarray size below which quicksort switches to
// insertion sort. 12-24 is the classic sweet spot; 16 benchmarks best here.
const insertionCutoff = 16

// insertionSort sorts s in place. It is stable.
func insertionSort[E any](s []E, less func(x, y E) bool) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && less(v, s[j]) {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// medianOfThree orders s[a], s[b], s[c] so that s[b] holds the median.
func medianOfThree[E any](s []E, a, b, c int, less func(x, y E) bool) {
	if less(s[b], s[a]) {
		s[a], s[b] = s[b], s[a]
	}
	if less(s[c], s[b]) {
		s[b], s[c] = s[c], s[b]
		if less(s[b], s[a]) {
			s[a], s[b] = s[b], s[a]
		}
	}
}

// Quicksort sorts s in place with a three-way (Dutch national flag)
// partition quicksort. Three-way partitioning matters here because the
// paper's hard inputs contain long runs of duplicated keys, which would
// drive a two-way quicksort quadratic.
func Quicksort[E any](s []E, less func(x, y E) bool) {
	for len(s) > insertionCutoff {
		mid := len(s) / 2
		hi := len(s) - 1
		if len(s) > 64 {
			// Ninther: median of three medians for large slices.
			eighth := len(s) / 8
			medianOfThree(s, 0, eighth, 2*eighth, less)
			medianOfThree(s, mid-eighth, mid, mid+eighth, less)
			medianOfThree(s, hi-2*eighth, hi-eighth, hi, less)
			medianOfThree(s, eighth, mid, hi-eighth, less)
		} else {
			medianOfThree(s, 0, mid, hi, less)
		}
		pivot := s[mid]
		// Three-way partition: s[:lt] < pivot, s[lt:gt+1] == pivot,
		// s[gt+1:] > pivot.
		lt, i, gt := 0, 0, hi
		for i <= gt {
			switch {
			case less(s[i], pivot):
				s[lt], s[i] = s[i], s[lt]
				lt++
				i++
			case less(pivot, s[i]):
				s[i], s[gt] = s[gt], s[i]
				gt--
			default:
				i++
			}
		}
		// Recurse into the smaller side, loop on the larger, bounding
		// stack depth at O(log n).
		if lt < len(s)-gt-1 {
			Quicksort(s[:lt], less)
			s = s[gt+1:]
		} else {
			Quicksort(s[gt+1:], less)
			s = s[:lt]
		}
	}
	insertionSort(s, less)
}

// ParallelSort implements step (1) of the paper's pipeline: data is divided
// equally among `workers` worker threads, each thread quicksorts its chunk,
// and the sorted chunks are combined with the balanced merging handler of
// Figure 2 (each round's merges run in parallel).
//
// The merge scratch buffer (len(s) elements) is the sort's only temporary
// allocation and is reported to tr, matching the paper's Figure 11 memory
// accounting. The sorted result is written back into s.
func ParallelSort[E any](s []E, less func(x, y E) bool, workers int, tr *alloc.Tracker) {
	n := len(s)
	if workers < 1 {
		workers = 1
	}
	if workers == 1 || n <= 2*insertionCutoff {
		Quicksort(s, less)
		return
	}
	var esize int64 = int64(elemSize[E]())
	scratch := make([]E, n)
	tr.Alloc(int64(n) * esize)
	defer tr.Free(int64(n) * esize)
	ParallelSortScratch(s, scratch, less, workers)
}

// ParallelSortScratch is ParallelSort with a caller-provided merge
// scratch buffer (at least len(s) elements), so repeated sorts can
// recycle the buffer through an alloc.SlabPool instead of reallocating.
// The sorted result always ends in s; the caller owns the accounting of
// scratch against its temporary-memory tracker.
func ParallelSortScratch[E any](s, scratch []E, less func(x, y E) bool, workers int) {
	n := len(s)
	if workers < 1 {
		workers = 1
	}
	if workers == 1 || n <= 2*insertionCutoff {
		Quicksort(s, less)
		return
	}
	if workers > n {
		workers = n
	}
	if len(scratch) < n {
		panic("lsort: merge scratch smaller than data")
	}
	// Equal chunking, as in the paper: thread i owns chunk i.
	bounds := chunkBounds(n, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		lo, hi := bounds[i], bounds[i+1]
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(chunk []E) {
			defer wg.Done()
			Quicksort(chunk, less)
		}(s[lo:hi])
	}
	wg.Wait()

	out := MergeAdjacentRuns(s, scratch, bounds, less, true)
	if &out[0] != &s[0] {
		copy(s, out)
	}
}
