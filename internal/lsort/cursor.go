package lsort

import "errors"

// Cursor is a pull source of sorted elements, batch at a time — the
// streaming counterpart of an in-memory run. Next returns the next batch
// in sorted order; a zero-length batch means the stream is exhausted.
// The returned slice is only valid until the following Next call, so
// consumers must finish (or copy) a batch before pulling the next one.
// Spill run readers implement Cursor over decoded block slabs.
type Cursor[E any] interface {
	Next() ([]E, error)
}

// SliceCursor adapts an in-memory run to the Cursor interface: the whole
// run is handed out as one batch. It lets MergeCursors mix resident and
// spilled runs in a single merge.
type SliceCursor[E any] struct {
	run  []E
	done bool
}

// NewSliceCursor returns a Cursor yielding run as a single batch.
func NewSliceCursor[E any](run []E) *SliceCursor[E] {
	return &SliceCursor[E]{run: run}
}

func (c *SliceCursor[E]) Next() ([]E, error) {
	if c.done {
		return nil, nil
	}
	c.done = true
	return c.run, nil
}

// MergeCursors merges k sorted cursor streams into dst using the same
// loser tree as KWayMerge, pulling batches on demand so only one batch
// per cursor is resident at a time. dst must have capacity for the full
// merged output; the filled prefix length is returned.
//
// The merge is stable: ties are broken by cursor index, exactly like
// KWayMerge breaks ties by run index. The spill tier depends on this
// equivalence — merging per-source RunReaders by source order must be
// byte-identical to KWayMerge over the same runs held in memory.
//
// On a cursor error the merge stops and returns the elements emitted so
// far along with the error; remaining cursors are left unread.
func MergeCursors[E any](dst []E, cursors []Cursor[E], less func(x, y E) bool) (int, error) {
	k := len(cursors)
	switch k {
	case 0:
		return 0, nil
	case 1:
		n := 0
		for {
			batch, err := cursors[0].Next()
			if err != nil {
				return n, err
			}
			if len(batch) == 0 {
				return n, nil
			}
			n += copy(dst[n:], batch)
		}
	}
	t, err := newCursorTree(cursors, less)
	if err != nil {
		return 0, err
	}
	return t.pop(dst)
}

// MergeCursor is MergeCursors as a pull source: the same loser tree and
// cursor-index tie rule, but yielding the merged stream batch by batch
// instead of filling one destination slice. It is the egress side of a
// fully out-of-core sort — the final merge of spilled runs can stream
// straight into an HTTP response without a whole-result buffer.
type MergeCursor[E any] struct {
	t     *cursorTree[E]
	one   Cursor[E] // k==1 fast path: batches pass through untouched
	batch []E
	err   error
	done  bool
}

// NewMergeCursor merges cursors under less into a Cursor. batch is the
// caller-owned output buffer: each Next fills up to len(batch) elements
// and hands it back, so the caller controls the merge's resident
// granularity. Priming the tree pulls one batch per cursor, which can
// return a cursor error immediately.
func NewMergeCursor[E any](cursors []Cursor[E], less func(x, y E) bool, batch []E) (*MergeCursor[E], error) {
	switch len(cursors) {
	case 0:
		return &MergeCursor[E]{done: true}, nil
	case 1:
		return &MergeCursor[E]{one: cursors[0]}, nil
	}
	if len(batch) == 0 {
		return nil, errEmptyMergeBatch
	}
	t, err := newCursorTree(cursors, less)
	if err != nil {
		return nil, err
	}
	return &MergeCursor[E]{t: t, batch: batch}, nil
}

var errEmptyMergeBatch = errors.New("lsort: MergeCursor needs a non-empty batch buffer")

// Next implements Cursor. A cursor error surfaces after the elements
// popped before it; the following Next returns the error itself.
func (c *MergeCursor[E]) Next() ([]E, error) {
	if c.err != nil {
		return nil, c.err
	}
	if c.done {
		return nil, nil
	}
	if c.one != nil {
		return c.one.Next()
	}
	n, err := c.t.pop(c.batch)
	if err != nil {
		c.err = err
		if n == 0 {
			return nil, err
		}
		return c.batch[:n], nil
	}
	if n < len(c.batch) {
		c.done = true
	}
	if n == 0 {
		return nil, nil
	}
	return c.batch[:n], nil
}

// newCursorTree primes a loser tree over the cursors: every cursor
// contributes its first batch, and exhausted streams enter the
// tournament as -1 (compares as +infinity).
func newCursorTree[E any](cursors []Cursor[E], less func(x, y E) bool) (*cursorTree[E], error) {
	k := len(cursors)
	t := &cursorTree[E]{
		less: less,
		cur:  cursors,
		buf:  make([][]E, k),
		pos:  make([]int, k),
		tree: make([]int, k),
		k:    k,
	}
	winners := make([]int, 2*k)
	for i := 0; i < k; i++ {
		winners[k+i] = i
		if err := t.fill(i); err != nil {
			return nil, err
		}
		if len(t.buf[i]) == 0 {
			winners[k+i] = -1
		}
	}
	for j := k - 1; j >= 1; j-- {
		a, b := winners[2*j], winners[2*j+1]
		if t.beats(a, b) {
			winners[j], t.tree[j] = a, b
		} else {
			winners[j], t.tree[j] = b, a
		}
	}
	t.tree[0] = winners[1]
	return t, nil
}

// pop drains winners into dst until dst is full or every stream is
// exhausted, returning the count filled. A fill error surfaces with the
// elements popped before it.
func (t *cursorTree[E]) pop(dst []E) (int, error) {
	n := 0
	for n < len(dst) {
		w := t.tree[0]
		if w == -1 {
			return n, nil
		}
		dst[n] = t.buf[w][t.pos[w]]
		n++
		t.pos[w]++
		cand := w
		if t.pos[w] >= len(t.buf[w]) {
			if err := t.fill(w); err != nil {
				return n, err
			}
			if len(t.buf[w]) == 0 {
				cand = -1 // stream exhausted
			}
		}
		for node := (w + t.k) / 2; node >= 1; node /= 2 {
			if t.beats(t.tree[node], cand) {
				t.tree[node], cand = cand, t.tree[node]
			}
		}
		t.tree[0] = cand
	}
	return n, nil
}

// cursorTree is loserTree's batch-pulling sibling: leaves are cursor
// streams instead of resident runs, with buf/pos holding the live batch
// per cursor. Refills happen in the pop path the moment a batch drains,
// so tie-break order (lower cursor index first) is identical to
// loserTree's run-index rule.
type cursorTree[E any] struct {
	less func(x, y E) bool
	cur  []Cursor[E]
	buf  [][]E
	pos  []int
	tree []int
	k    int
}

// fill pulls the next batch for cursor i and resets pos; a zero-length
// batch marks the stream exhausted per the Cursor contract.
func (t *cursorTree[E]) fill(i int) error {
	batch, err := t.cur[i].Next()
	if err != nil {
		return err
	}
	t.buf[i] = batch
	t.pos[i] = 0
	return nil
}

func (t *cursorTree[E]) beats(a, b int) bool {
	if a == -1 {
		return false
	}
	if b == -1 {
		return true
	}
	ea := t.buf[a][t.pos[a]]
	eb := t.buf[b][t.pos[b]]
	if t.less(ea, eb) {
		return true
	}
	if t.less(eb, ea) {
		return false
	}
	return a < b
}
