package lsort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pgxsort/internal/alloc"
	"pgxsort/internal/dist"
)

func lessU64(a, b uint64) bool { return a < b }

// checkSortedPermutation verifies out is sorted and is a permutation of in.
func checkSortedPermutation(t *testing.T, in, out []uint64) {
	t.Helper()
	if len(in) != len(out) {
		t.Fatalf("length changed: %d -> %d", len(in), len(out))
	}
	if !IsSorted(out, lessU64) {
		t.Fatal("output not sorted")
	}
	counts := make(map[uint64]int, len(in))
	for _, v := range in {
		counts[v]++
	}
	for _, v := range out {
		counts[v]--
		if counts[v] < 0 {
			t.Fatalf("output contains %d more often than input", v)
		}
	}
}

func testInputs() map[string][]uint64 {
	inputs := map[string][]uint64{
		"empty":     {},
		"single":    {42},
		"pair":      {2, 1},
		"allEqual":  make([]uint64, 1000),
		"organPipe": {},
	}
	for i := range inputs["allEqual"] {
		inputs["allEqual"][i] = 7
	}
	var organ []uint64
	for i := 0; i < 500; i++ {
		organ = append(organ, uint64(i))
	}
	for i := 500; i > 0; i-- {
		organ = append(organ, uint64(i))
	}
	inputs["organPipe"] = organ
	for _, k := range []dist.Kind{dist.Uniform, dist.Normal, dist.RightSkewed,
		dist.Exponential, dist.Sorted, dist.ReverseSorted, dist.FewDistinct} {
		inputs[k.String()] = dist.Gen{Kind: k, Seed: 77}.Keys(5000)
	}
	return inputs
}

func TestQuicksort(t *testing.T) {
	for name, in := range testInputs() {
		in := in
		t.Run(name, func(t *testing.T) {
			got := append([]uint64(nil), in...)
			Quicksort(got, lessU64)
			checkSortedPermutation(t, in, got)
		})
	}
}

func TestTimSort(t *testing.T) {
	for name, in := range testInputs() {
		in := in
		t.Run(name, func(t *testing.T) {
			got := append([]uint64(nil), in...)
			TimSort(got, lessU64)
			checkSortedPermutation(t, in, got)
		})
	}
}

func TestParallelSort(t *testing.T) {
	for name, in := range testInputs() {
		for _, workers := range []int{1, 2, 3, 4, 7, 8} {
			in := in
			t.Run(name, func(t *testing.T) {
				var tr alloc.Tracker
				got := append([]uint64(nil), in...)
				ParallelSort(got, lessU64, workers, &tr)
				checkSortedPermutation(t, in, got)
				if tr.Live() != 0 {
					t.Errorf("temporary memory leaked: %d bytes live", tr.Live())
				}
			})
		}
	}
}

func TestParallelSortTracksScratch(t *testing.T) {
	var tr alloc.Tracker
	in := dist.Gen{Kind: dist.Uniform, Seed: 1}.Keys(10000)
	ParallelSort(in, lessU64, 4, &tr)
	want := int64(10000 * 8)
	if tr.Peak() != want {
		t.Errorf("peak temp memory = %d, want %d (one scratch buffer)", tr.Peak(), want)
	}
}

// TimSort must be stable: equal keys keep their input order.
func TestTimSortStability(t *testing.T) {
	type pair struct {
		key uint64
		seq int
	}
	r := rand.New(rand.NewSource(42))
	in := make([]pair, 20000)
	for i := range in {
		in[i] = pair{key: uint64(r.Intn(50)), seq: i}
	}
	got := append([]pair(nil), in...)
	TimSort(got, func(a, b pair) bool { return a.key < b.key })

	want := append([]pair(nil), in...)
	sort.SliceStable(want, func(i, j int) bool { return want[i].key < want[j].key })
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("stability violated at %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestTimSortMatchesStdlibOnManyShapes(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(3000)
		in := make([]uint64, n)
		switch trial % 5 {
		case 0: // random
			for i := range in {
				in[i] = uint64(r.Intn(1000))
			}
		case 1: // sorted with noise
			for i := range in {
				in[i] = uint64(i)
			}
			for k := 0; k < n/20; k++ {
				i, j := r.Intn(max(n, 1)), r.Intn(max(n, 1))
				if n > 0 {
					in[i], in[j] = in[j], in[i]
				}
			}
		case 2: // descending
			for i := range in {
				in[i] = uint64(n - i)
			}
		case 3: // runs of equal values
			for i := range in {
				in[i] = uint64(i / 50)
			}
		case 4: // saw-tooth
			for i := range in {
				in[i] = uint64(i % 17)
			}
		}
		got := append([]uint64(nil), in...)
		TimSort(got, lessU64)
		want := append([]uint64(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: mismatch at %d", trial, i)
			}
		}
	}
}

func TestMergeInto(t *testing.T) {
	a := []uint64{1, 3, 5, 7}
	b := []uint64{2, 3, 6}
	dst := make([]uint64, 7)
	mergeInto(dst, a, b, lessU64)
	want := []uint64{1, 2, 3, 3, 5, 6, 7}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("mergeInto = %v, want %v", dst, want)
		}
	}
}

func TestMergeAdjacentRuns(t *testing.T) {
	for _, runs := range []int{1, 2, 3, 4, 5, 7, 8, 16, 31} {
		for _, parallel := range []bool{false, true} {
			const per = 257
			data := make([]uint64, 0, runs*per)
			bounds := []int{0}
			r := rand.New(rand.NewSource(int64(runs)))
			for i := 0; i < runs; i++ {
				run := make([]uint64, per)
				for j := range run {
					run[j] = uint64(r.Intn(10000))
				}
				sort.Slice(run, func(a, b int) bool { return run[a] < run[b] })
				data = append(data, run...)
				bounds = append(bounds, len(data))
			}
			in := append([]uint64(nil), data...)
			scratch := make([]uint64, len(data))
			out := MergeAdjacentRuns(data, scratch, bounds, lessU64, parallel)
			checkSortedPermutation(t, in, out)
		}
	}
}

func TestMergeAdjacentRunsUnequalSizes(t *testing.T) {
	// Runs of wildly different sizes, including empty runs.
	sizes := []int{0, 1, 100, 0, 3, 999, 2, 0}
	data := []uint64{}
	bounds := []int{0}
	r := rand.New(rand.NewSource(3))
	for _, sz := range sizes {
		run := make([]uint64, sz)
		for j := range run {
			run[j] = uint64(r.Intn(500))
		}
		sort.Slice(run, func(a, b int) bool { return run[a] < run[b] })
		data = append(data, run...)
		bounds = append(bounds, len(data))
	}
	in := append([]uint64(nil), data...)
	out := MergeAdjacentRuns(data, make([]uint64, len(data)), bounds, lessU64, true)
	checkSortedPermutation(t, in, out)
}

func TestMergeRuns(t *testing.T) {
	runs := [][]uint64{
		{5, 10, 15},
		{1, 2, 3},
		{},
		{7},
		{0, 20},
	}
	var all []uint64
	for _, r := range runs {
		all = append(all, r...)
	}
	out := MergeRuns(runs, lessU64, true)
	checkSortedPermutation(t, all, out)
	if MergeRuns[uint64](nil, lessU64, false) != nil {
		t.Error("merging no runs should return nil")
	}
}

// The balanced handler's defining property (Figure 2): in every round the
// two operands of each merge differ by at most the size of one original
// chunk, i.e. merges stay balanced.
func TestRoundSizesBalanced(t *testing.T) {
	n := 8 * 1000
	bounds := make([]int, 9)
	for i := range bounds {
		bounds[i] = i * n / 8
	}
	rounds := RoundSizes(bounds)
	if len(rounds) != 3 {
		t.Fatalf("8 runs need 3 rounds, got %d", len(rounds))
	}
	wantMerges := []int{4, 2, 1}
	for r, merges := range rounds {
		if len(merges) != wantMerges[r] {
			t.Errorf("round %d: %d merges, want %d", r, len(merges), wantMerges[r])
		}
		for _, m := range merges {
			if m[0] != m[1] {
				t.Errorf("round %d: unbalanced merge %v", r, m)
			}
		}
	}
}

func TestKWayMerge(t *testing.T) {
	for _, k := range []int{0, 1, 2, 3, 4, 5, 8, 17} {
		r := rand.New(rand.NewSource(int64(k)))
		runs := make([][]uint64, k)
		var all []uint64
		for i := range runs {
			sz := r.Intn(200)
			run := make([]uint64, sz)
			for j := range run {
				run[j] = uint64(r.Intn(1000))
			}
			sort.Slice(run, func(a, b int) bool { return run[a] < run[b] })
			runs[i] = run
			all = append(all, run...)
		}
		out := KWayMerge(runs, lessU64)
		checkSortedPermutation(t, all, out)
	}
}

func TestKWayMergeStability(t *testing.T) {
	type pair struct {
		key uint64
		run int
	}
	runs := [][]pair{
		{{1, 0}, {5, 0}, {5, 0}},
		{{1, 1}, {5, 1}},
		{{1, 2}, {2, 2}, {5, 2}},
	}
	out := KWayMerge(runs, func(a, b pair) bool { return a.key < b.key })
	// Equal keys must appear ordered by run index.
	for i := 1; i < len(out); i++ {
		if out[i].key == out[i-1].key && out[i].run < out[i-1].run {
			t.Fatalf("stability violated at %d: %+v after %+v", i, out[i], out[i-1])
		}
	}
}

func TestKWayMergeMatchesBalancedMerge(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		k := 1 + r.Intn(9)
		runs := make([][]uint64, k)
		for i := range runs {
			run := make([]uint64, r.Intn(300))
			for j := range run {
				run[j] = uint64(r.Intn(100))
			}
			sort.Slice(run, func(a, b int) bool { return run[a] < run[b] })
			runs[i] = run
		}
		a := KWayMerge(runs, lessU64)
		b := MergeRuns(runs, lessU64, false)
		if len(a) != len(b) {
			t.Fatalf("length mismatch %d != %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: outputs differ at %d", trial, i)
			}
		}
	}
}

func TestLowerUpperBound(t *testing.T) {
	s := []uint64{1, 3, 3, 3, 5, 9}
	lessEK := func(e uint64, k uint64) bool { return e < k }
	greaterEK := func(e uint64, k uint64) bool { return e > k }
	cases := []struct {
		key    uint64
		lo, hi int
	}{
		{0, 0, 0}, {1, 0, 1}, {2, 1, 1}, {3, 1, 4}, {4, 4, 4}, {5, 4, 5}, {9, 5, 6}, {10, 6, 6},
	}
	for _, c := range cases {
		if got := LowerBound(s, c.key, lessEK); got != c.lo {
			t.Errorf("LowerBound(%d) = %d, want %d", c.key, got, c.lo)
		}
		if got := UpperBound(s, c.key, greaterEK); got != c.hi {
			t.Errorf("UpperBound(%d) = %d, want %d", c.key, got, c.hi)
		}
	}
}

func TestInsertionSortStable(t *testing.T) {
	type pair struct{ k, seq int }
	in := []pair{{3, 0}, {1, 1}, {3, 2}, {1, 3}, {2, 4}}
	insertionSort(in, func(a, b pair) bool { return a.k < b.k })
	want := []pair{{1, 1}, {1, 3}, {2, 4}, {3, 0}, {3, 2}}
	for i := range want {
		if in[i] != want[i] {
			t.Fatalf("insertionSort = %v, want %v", in, want)
		}
	}
}

func TestMinRunLength(t *testing.T) {
	for _, c := range []struct{ n, want int }{
		{31, 31}, {32, 16}, {33, 17}, {64, 16}, {65, 17},
		{1 << 20, 16}, {1<<20 + 1, 17},
	} {
		if got := minRunLength(c.n); got != c.want {
			t.Errorf("minRunLength(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestCountRunAndMakeAscending(t *testing.T) {
	a := []uint64{1, 2, 3, 2, 1}
	if got := countRunAndMakeAscending(a, lessU64); got != 3 {
		t.Errorf("ascending run = %d, want 3", got)
	}
	b := []uint64{5, 4, 3, 10}
	if got := countRunAndMakeAscending(b, lessU64); got != 3 {
		t.Errorf("descending run = %d, want 3", got)
	}
	if b[0] != 3 || b[1] != 4 || b[2] != 5 {
		t.Errorf("descending run not reversed: %v", b)
	}
}

// Property: Quicksort output equals stdlib sort for arbitrary inputs.
func TestPropertyQuicksortMatchesStdlib(t *testing.T) {
	f := func(in []uint64) bool {
		got := append([]uint64(nil), in...)
		Quicksort(got, lessU64)
		want := append([]uint64(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: TimSort output equals stdlib sort for arbitrary inputs.
func TestPropertyTimSortMatchesStdlib(t *testing.T) {
	f := func(in []uint64) bool {
		got := append([]uint64(nil), in...)
		TimSort(got, lessU64)
		want := append([]uint64(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging sorted halves with the balanced handler equals sorting.
func TestPropertyMergePreservesMultiset(t *testing.T) {
	f := func(a, b []uint64) bool {
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		out := MergeRuns([][]uint64{a, b}, lessU64, false)
		if !IsSorted(out, lessU64) {
			return false
		}
		return len(out) == len(a)+len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]uint64{}, lessU64) || !IsSorted([]uint64{1}, lessU64) ||
		!IsSorted([]uint64{1, 1, 2}, lessU64) {
		t.Error("IsSorted false negative")
	}
	if IsSorted([]uint64{2, 1}, lessU64) {
		t.Error("IsSorted false positive")
	}
}

func TestTopKSelection(t *testing.T) {
	in := []uint64{5, 1, 9, 3, 9, 2, 8}
	top := TopK(in, 3, lessU64)
	want := []uint64{9, 9, 8}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", top, want)
		}
	}
	if TopK(in, 0, lessU64) != nil {
		t.Error("TopK(0) should be nil")
	}
	if TopK([]uint64{}, 3, lessU64) != nil {
		t.Error("TopK of empty should be nil")
	}
	if got := TopK(in, 100, lessU64); len(got) != len(in) {
		t.Errorf("TopK(k>n) = %d elements", len(got))
	}
	bottom := BottomK(in, 3, lessU64)
	want = []uint64{1, 2, 3}
	for i := range want {
		if bottom[i] != want[i] {
			t.Fatalf("BottomK = %v, want %v", bottom, want)
		}
	}
}

func TestTopKDoesNotMutateInput(t *testing.T) {
	in := []uint64{5, 1, 9, 3}
	orig := append([]uint64(nil), in...)
	TopK(in, 2, lessU64)
	for i := range orig {
		if in[i] != orig[i] {
			t.Fatalf("TopK mutated input: %v", in)
		}
	}
}

// Property: TopK equals sorting then truncating, for any input and k.
func TestPropertyTopKMatchesSort(t *testing.T) {
	f := func(in []uint64, kRaw uint8) bool {
		k := int(kRaw % 64)
		got := TopK(in, k, lessU64)
		want := append([]uint64(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] > want[j] })
		if k > len(want) {
			k = len(want)
		}
		want = want[:k]
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
