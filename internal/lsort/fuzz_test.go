package lsort

import (
	"encoding/binary"
	"sort"
	"testing"
)

// bytesToKeys reinterprets fuzz bytes as uint64 keys.
func bytesToKeys(data []byte) []uint64 {
	keys := make([]uint64, len(data)/8)
	for i := range keys {
		keys[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	return keys
}

func FuzzQuicksort(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(make([]byte, 256))
	f.Fuzz(func(t *testing.T, data []byte) {
		in := bytesToKeys(data)
		got := append([]uint64(nil), in...)
		Quicksort(got, lessU64)
		want := append([]uint64(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("mismatch at %d", i)
			}
		}
	})
}

func FuzzTimSort(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		in := bytesToKeys(data)
		got := append([]uint64(nil), in...)
		TimSort(got, lessU64)
		want := append([]uint64(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("mismatch at %d", i)
			}
		}
	})
}

func FuzzTopK(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, kRaw uint8) {
		in := bytesToKeys(data)
		k := int(kRaw % 32)
		got := TopK(in, k, lessU64)
		want := append([]uint64(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] > want[j] })
		if k > len(want) {
			k = len(want)
		}
		for i := 0; i < k; i++ {
			if got[i] != want[i] {
				t.Fatalf("mismatch at %d", i)
			}
		}
	})
}
