package lsort

// KWayMerge merges k sorted runs into a newly allocated slice using a
// loser tree (tournament tree). It performs one root-to-leaf replay of
// length ceil(log2 k) per emitted element, which makes it the natural
// baseline to ablate against the paper's balanced pairwise merging handler
// (Figure 2): the loser tree does fewer total element moves but is
// strictly sequential, while the balanced handler parallelizes every
// round.
//
// The merge is stable: ties are broken by run index.
func KWayMerge[E any](runs [][]E, less func(x, y E) bool) []E {
	nonEmpty := make([][]E, 0, len(runs))
	total := 0
	for _, r := range runs {
		if len(r) > 0 {
			nonEmpty = append(nonEmpty, r)
			total += len(r)
		}
	}
	out := make([]E, 0, total)
	switch len(nonEmpty) {
	case 0:
		return out
	case 1:
		return append(out, nonEmpty[0]...)
	case 2:
		out = out[:total]
		mergeInto(out, nonEmpty[0], nonEmpty[1], less)
		return out
	}
	t := newLoserTree(nonEmpty, less)
	for {
		e, ok := t.pop()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

// loserTree is a tournament tree over k runs, stored as a complete binary
// tree in an array: leaves occupy positions k..2k-1 (leaf i at k+i),
// internal node j has children 2j and 2j+1, and tree[j] records the run
// index of the *loser* of the match played at node j. tree[0] holds the
// overall winner. Run index -1 denotes an exhausted run and compares as
// +infinity.
type loserTree[E any] struct {
	less func(x, y E) bool
	runs [][]E
	pos  []int // next unconsumed index per run; -1 len means exhausted
	tree []int // tree[0] = winner, tree[1..k-1] = losers
	k    int
}

func newLoserTree[E any](runs [][]E, less func(x, y E) bool) *loserTree[E] {
	k := len(runs)
	t := &loserTree[E]{
		less: less,
		runs: runs,
		pos:  make([]int, k),
		tree: make([]int, k),
		k:    k,
	}
	// Bottom-up build: winners[j] is the run winning the subtree at node
	// j; the loser of each match is parked in tree[j].
	winners := make([]int, 2*k)
	for i := 0; i < k; i++ {
		winners[k+i] = i
	}
	for j := k - 1; j >= 1; j-- {
		a, b := winners[2*j], winners[2*j+1]
		if t.beats(a, b) {
			winners[j], t.tree[j] = a, b
		} else {
			winners[j], t.tree[j] = b, a
		}
	}
	t.tree[0] = winners[1]
	return t
}

// beats reports whether run a's current head should be emitted before run
// b's (stable: lower run index wins ties). An exhausted run never beats
// anything.
func (t *loserTree[E]) beats(a, b int) bool {
	if a == -1 {
		return false
	}
	if b == -1 {
		return true
	}
	ea := t.runs[a][t.pos[a]]
	eb := t.runs[b][t.pos[b]]
	if t.less(ea, eb) {
		return true
	}
	if t.less(eb, ea) {
		return false
	}
	return a < b
}

// pop removes and returns the smallest remaining element, then replays the
// matches on the winner's root-to-leaf path.
func (t *loserTree[E]) pop() (E, bool) {
	var zero E
	w := t.tree[0]
	if w == -1 {
		return zero, false
	}
	e := t.runs[w][t.pos[w]]
	t.pos[w]++
	cand := w
	if t.pos[w] >= len(t.runs[w]) {
		cand = -1 // run exhausted
	}
	for node := (w + t.k) / 2; node >= 1; node /= 2 {
		if t.beats(t.tree[node], cand) {
			t.tree[node], cand = cand, t.tree[node]
		}
	}
	t.tree[0] = cand
	return e, true
}
