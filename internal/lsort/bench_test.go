package lsort

import (
	"fmt"
	"sort"
	"testing"

	"pgxsort/internal/alloc"
	"pgxsort/internal/dist"
)

const benchN = 1 << 18

func benchKeys(kind dist.Kind) []uint64 {
	return dist.Gen{Kind: kind, Seed: 42}.Keys(benchN)
}

func BenchmarkQuicksort(b *testing.B) {
	for _, kind := range []dist.Kind{dist.Uniform, dist.Sorted, dist.FewDistinct} {
		b.Run(kind.String(), func(b *testing.B) {
			keys := benchKeys(kind)
			buf := make([]uint64, len(keys))
			b.SetBytes(benchN * 8)
			for i := 0; i < b.N; i++ {
				copy(buf, keys)
				Quicksort(buf, lessU64)
			}
		})
	}
}

func BenchmarkTimSort(b *testing.B) {
	for _, kind := range []dist.Kind{dist.Uniform, dist.Sorted, dist.FewDistinct} {
		b.Run(kind.String(), func(b *testing.B) {
			keys := benchKeys(kind)
			buf := make([]uint64, len(keys))
			b.SetBytes(benchN * 8)
			for i := 0; i < b.N; i++ {
				copy(buf, keys)
				TimSort(buf, lessU64)
			}
		})
	}
}

// BenchmarkRadixSort times the non-comparison fast path across all eight
// distribution kinds; the counting-skip passes make the low-entropy kinds
// (sorted over a narrow domain, few-distinct, constant) dramatically
// cheaper than the full eight passes.
func BenchmarkRadixSort(b *testing.B) {
	for _, kind := range dist.AllKinds {
		b.Run(kind.String(), func(b *testing.B) {
			keys := benchKeys(kind)
			buf := make([]uint64, len(keys))
			scratch := make([]uint64, len(keys))
			b.SetBytes(benchN * 8)
			for i := 0; i < b.N; i++ {
				copy(buf, keys)
				RadixSort(buf, scratch, idU64, 64)
			}
		})
	}
}

func BenchmarkParallelRadixSort(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			keys := benchKeys(dist.Uniform)
			buf := make([]uint64, len(keys))
			scratch := make([]uint64, len(keys))
			b.SetBytes(benchN * 8)
			for i := 0; i < b.N; i++ {
				copy(buf, keys)
				ParallelRadixSort(buf, scratch, idU64, 64, lessU64, workers)
			}
		})
	}
}

func BenchmarkStdlibSort(b *testing.B) {
	keys := benchKeys(dist.Uniform)
	buf := make([]uint64, len(keys))
	b.SetBytes(benchN * 8)
	for i := 0; i < b.N; i++ {
		copy(buf, keys)
		sort.Slice(buf, func(x, y int) bool { return buf[x] < buf[y] })
	}
}

func BenchmarkParallelSort(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			keys := benchKeys(dist.Uniform)
			buf := make([]uint64, len(keys))
			var tr alloc.Tracker
			b.SetBytes(benchN * 8)
			for i := 0; i < b.N; i++ {
				copy(buf, keys)
				ParallelSort(buf, lessU64, workers, &tr)
			}
		})
	}
}

func BenchmarkBalancedMergeVsKWay(b *testing.B) {
	const runs = 8
	keys := benchKeys(dist.Uniform)
	bounds := make([]int, runs+1)
	for i := 0; i <= runs; i++ {
		bounds[i] = i * len(keys) / runs
	}
	for i := 0; i < runs; i++ {
		seg := keys[bounds[i]:bounds[i+1]]
		sort.Slice(seg, func(x, y int) bool { return seg[x] < seg[y] })
	}
	runSlices := make([][]uint64, runs)
	for i := range runSlices {
		runSlices[i] = keys[bounds[i]:bounds[i+1]]
	}
	b.Run("balanced-parallel", func(b *testing.B) {
		data := make([]uint64, len(keys))
		scratch := make([]uint64, len(keys))
		b.SetBytes(benchN * 8)
		for i := 0; i < b.N; i++ {
			copy(data, keys)
			MergeAdjacentRuns(data, scratch, bounds, lessU64, true)
		}
	})
	b.Run("balanced-sequential", func(b *testing.B) {
		data := make([]uint64, len(keys))
		scratch := make([]uint64, len(keys))
		b.SetBytes(benchN * 8)
		for i := 0; i < b.N; i++ {
			copy(data, keys)
			MergeAdjacentRuns(data, scratch, bounds, lessU64, false)
		}
	})
	b.Run("kway-losertree", func(b *testing.B) {
		b.SetBytes(benchN * 8)
		for i := 0; i < b.N; i++ {
			KWayMerge(runSlices, lessU64)
		}
	})
}

func BenchmarkTopKSelection(b *testing.B) {
	keys := benchKeys(dist.Uniform)
	for _, k := range []int{10, 1000} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.SetBytes(benchN * 8)
			for i := 0; i < b.N; i++ {
				TopK(keys, k, lessU64)
			}
		})
	}
}
