package lsort

import "sync"

// radixBits is the digit width of the LSD radix passes: one byte per
// pass, 256 counting buckets.
const radixBits = 8

// maxRadixPasses bounds the pass count (64-bit keys, 8-bit digits).
const maxRadixPasses = 64 / radixBits

// RadixSort sorts s by the uint64 image key(e), least-significant byte
// first. It is the engine's non-comparison fast path: where Quicksort
// pays a less-closure call per comparison (~n log n of them), radix pays
// a fixed number of counting passes — and skips every pass whose byte
// column is constant across the data, so small-domain, few-distinct and
// constant inputs finish in one or two passes instead of eight.
//
// key must be an order-preserving map onto uint64 (see comm.KeyNormalizer)
// and keyBits its significant width (bits above it are assumed zero; pass
// 64 when unsure). scratch must have at least len(s) elements; the sorted
// result always ends in s. RadixSort is stable: entries with equal keys
// keep their input order.
func RadixSort[E any](s, scratch []E, key func(E) uint64, keyBits int) {
	n := len(s)
	if n < 2 {
		return
	}
	if len(scratch) < n {
		panic("lsort: radix scratch smaller than data")
	}
	if keyBits <= 0 || keyBits > 64 {
		keyBits = 64
	}
	passes := (keyBits + radixBits - 1) / radixBits

	// Cheap pre-pass: find which byte columns actually vary. Constant
	// columns (the whole upper half of a narrow-domain key, every column
	// of a constant input) are skipped before any bucket is counted.
	first := key(s[0])
	var diff uint64
	for i := 1; i < n; i++ {
		diff |= key(s[i]) ^ first
	}
	var varying [maxRadixPasses]int
	nv := 0
	for d := 0; d < passes; d++ {
		if byte(diff>>(radixBits*d)) != 0 {
			varying[nv] = d
			nv++
		}
	}
	if nv == 0 {
		return // all keys equal
	}

	// One histogram pass counts every varying column's digits at once;
	// the distribution passes then run without re-counting.
	var counts [maxRadixPasses][1 << radixBits]int
	for i := 0; i < n; i++ {
		k := key(s[i])
		for vi := 0; vi < nv; vi++ {
			counts[vi][byte(k>>(radixBits*varying[vi]))]++
		}
	}

	src, dst := s, scratch
	for vi := 0; vi < nv; vi++ {
		shift := uint(radixBits * varying[vi])
		c := &counts[vi]
		var starts [1 << radixBits]int
		pos := 0
		for v := range starts {
			starts[v] = pos
			pos += c[v]
		}
		for i := 0; i < n; i++ {
			e := src[i]
			v := byte(key(e) >> shift)
			dst[starts[v]] = e
			starts[v]++
		}
		src, dst = dst, src
	}
	if &src[0] != &s[0] {
		copy(s, src[:n])
	}
}

// ParallelRadixSort is the chunked-parallel radix sort used by step 1's
// fast path: data is divided equally among workers (the same chunking as
// ParallelSort), each worker radix-sorts its chunk against its slice of
// the shared scratch buffer, and the sorted chunks are combined with the
// balanced merging handler of Figure 2. less must order exactly as key
// does (e.g. compare key images); it drives the merges.
//
// scratch must have at least len(s) elements; the result always ends in
// s. Like sequential RadixSort the sort is stable: chunk sorts are
// stable and both the pairwise merges and the intra-merge CoRank splits
// preserve left-run-first tie order, so the output is independent of the
// worker count and chunk boundaries. The spill tier's differential
// guarantee relies on this.
func ParallelRadixSort[E any](s, scratch []E, key func(E) uint64, keyBits int, less func(x, y E) bool, workers int) {
	n := len(s)
	if workers < 1 {
		workers = 1
	}
	if workers == 1 || n <= 2*insertionCutoff {
		RadixSort(s, scratch, key, keyBits)
		return
	}
	if workers > n {
		workers = n
	}
	if len(scratch) < n {
		panic("lsort: radix scratch smaller than data")
	}
	bounds := chunkBounds(n, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		lo, hi := bounds[i], bounds[i+1]
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(chunk, chunkScratch []E) {
			defer wg.Done()
			RadixSort(chunk, chunkScratch, key, keyBits)
		}(s[lo:hi], scratch[lo:hi])
	}
	wg.Wait()

	out := MergeAdjacentRuns(s, scratch, bounds, less, true)
	if len(out) > 0 && &out[0] != &s[0] {
		copy(s, out)
	}
}

// chunkBounds returns workers+1 boundaries splitting n elements into
// equal chunks, as in the paper: thread i owns chunk i.
func chunkBounds(n, workers int) []int {
	bounds := make([]int, workers+1)
	for i := 0; i <= workers; i++ {
		bounds[i] = i * n / workers
	}
	return bounds
}
