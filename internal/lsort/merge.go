// Package lsort implements the local (single-node) sorting machinery the
// paper builds on: sequential and chunked-parallel quicksort, the balanced
// pairwise merging handler of Figure 2, TimSort (the algorithm Spark's
// sortByKey uses per partition), and a loser-tree k-way merge used as the
// ablation counterpart of the balanced handler.
//
// All algorithms are generic over the element type with an explicit less
// function, mirroring the paper's claim that the sorting library "is
// generic and works with any data type".
package lsort

import "sync"

// mergeInto merges the two sorted runs a and b into dst, which must have
// length len(a)+len(b). The merge is stable: on equal elements the one
// from a is emitted first.
func mergeInto[E any](dst, a, b []E, less func(x, y E) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}

// MergeAdjacentRuns merges sorted runs laid out back-to-back in data using
// the paper's balanced merging handler (Figure 2): in round r, the run
// owned by position i (i divisible by 2^(r+1)) merges with the run at
// i+2^r, so operand sizes stay near-equal in every round and all merges of
// a round can run in parallel.
//
// bounds holds the k+1 run boundaries: run j is data[bounds[j]:bounds[j+1]].
// scratch must be a buffer of len(data); rounds ping-pong between data and
// scratch. The returned slice (either data or scratch) holds the fully
// merged result. If parallel is true the merges of each round execute
// concurrently.
func MergeAdjacentRuns[E any](data, scratch []E, bounds []int, less func(x, y E) bool, parallel bool) []E {
	out, _ := MergeAdjacentRunsOwned(data, scratch, bounds, less, parallel)
	return out
}

// MergeAdjacentRunsOwned is MergeAdjacentRuns reporting which buffer backs
// the result: fromScratch is true when the merged slice is carved from
// scratch and false when it is carved from data. Callers recycling both
// buffers through a pool need this ownership bit explicitly — comparing
// base pointers misfires for zero-length results (no element to take the
// address of) and is fragile against sub-slice offsets.
func MergeAdjacentRunsOwned[E any](data, scratch []E, bounds []int, less func(x, y E) bool, parallel bool) (out []E, fromScratch bool) {
	if len(bounds) < 2 {
		return data[:0], false
	}
	if len(scratch) < len(data) {
		panic("lsort: scratch smaller than data")
	}
	runs := len(bounds) - 1
	src, dst := data, scratch
	b := make([]int, len(bounds))
	copy(b, bounds)
	for step := 1; step < runs; step *= 2 {
		// When the round has fewer merges than workers (the tail of
		// Figure 2's tree), split each merge along merge-path diagonals
		// so the idle workers help (intra-merge parallelism extension).
		mergesThisRound := (runs + 2*step - 1) / (2 * step)
		ways := 1
		if parallel && mergesThisRound < mergeWays() {
			ways = (mergeWays() + mergesThisRound - 1) / mergesThisRound
		}
		var wg sync.WaitGroup
		for i := 0; i < runs; i += 2 * step {
			j := i + step
			lo := b[i]
			if j >= runs {
				// No partner this round: carry the run over unchanged.
				hi := b[min(i+step, runs)]
				copy(dst[lo:hi], src[lo:hi])
				continue
			}
			mid := b[j]
			hi := b[min(j+step, runs)]
			if parallel {
				wg.Add(1)
				go func(lo, mid, hi, ways int) {
					defer wg.Done()
					if ways > 1 {
						ParallelMergeInto(dst[lo:hi], src[lo:mid], src[mid:hi], less, ways)
					} else {
						mergeInto(dst[lo:hi], src[lo:mid], src[mid:hi], less)
					}
				}(lo, mid, hi, ways)
			} else {
				mergeInto(dst[lo:hi], src[lo:mid], src[mid:hi], less)
			}
		}
		wg.Wait()
		src, dst = dst, src
		fromScratch = !fromScratch
	}
	return src[:b[runs]], fromScratch
}

// MergeRuns merges separately allocated sorted runs with the balanced
// handler by first laying them out back-to-back in a fresh buffer.
// It returns a newly allocated sorted slice; runs are not modified.
func MergeRuns[E any](runs [][]E, less func(x, y E) bool, parallel bool) []E {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	if total == 0 {
		return nil
	}
	data := make([]E, total)
	bounds := make([]int, 0, len(runs)+1)
	bounds = append(bounds, 0)
	off := 0
	for _, r := range runs {
		off += copy(data[off:], r)
		bounds = append(bounds, off)
	}
	scratch := make([]E, total)
	out := MergeAdjacentRuns(data, scratch, bounds, less, parallel)
	return out
}

// RoundSizes reports, for diagnostics and tests, the operand sizes of each
// balanced-merge round for the given run boundaries. Round x contains one
// [leftLen, rightLen] pair per merge executed in that round.
func RoundSizes(bounds []int) [][][2]int {
	if len(bounds) < 2 {
		return nil
	}
	runs := len(bounds) - 1
	var rounds [][][2]int
	for step := 1; step < runs; step *= 2 {
		var merges [][2]int
		for i := 0; i < runs; i += 2 * step {
			j := i + step
			if j >= runs {
				continue
			}
			lo := bounds[i]
			mid := bounds[j]
			hi := bounds[min(j+step, runs)]
			merges = append(merges, [2]int{mid - lo, hi - mid})
		}
		rounds = append(rounds, merges)
	}
	return rounds
}
