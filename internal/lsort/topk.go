package lsort

// TopK returns the k largest elements of s in descending order without
// sorting s (bounded min-heap selection, O(n log k)). It supports the
// library's top-values API: each processor preselects its local top-k so
// only p*k candidates ever travel to the master.
func TopK[E any](s []E, k int, less func(x, y E) bool) []E {
	if k <= 0 || len(s) == 0 {
		return nil
	}
	if k > len(s) {
		k = len(s)
	}
	// heap[0] is the smallest of the current top-k (min-heap by less).
	heap := make([]E, k)
	copy(heap, s[:k])
	for i := k / 2; i >= 0; i-- {
		siftDown(heap, i, less)
	}
	for _, e := range s[k:] {
		if less(heap[0], e) {
			heap[0] = e
			siftDown(heap, 0, less)
		}
	}
	// Heap-sort the survivors into descending order.
	out := heap
	for end := len(out) - 1; end > 0; end-- {
		out[0], out[end] = out[end], out[0]
		siftDown(out[:end], 0, less)
	}
	return out
}

// BottomK returns the k smallest elements of s in ascending order.
func BottomK[E any](s []E, k int, less func(x, y E) bool) []E {
	out := TopK(s, k, func(x, y E) bool { return less(y, x) })
	return out
}

// siftDown restores the min-heap property at index i.
func siftDown[E any](heap []E, i int, less func(x, y E) bool) {
	n := len(heap)
	for {
		smallest := i
		if l := 2*i + 1; l < n && less(heap[l], heap[smallest]) {
			smallest = l
		}
		if r := 2*i + 2; r < n && less(heap[r], heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		heap[i], heap[smallest] = heap[smallest], heap[i]
		i = smallest
	}
}
