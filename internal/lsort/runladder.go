package lsort

import "time"

// RunLadder is an incremental k-way merger: it accepts sorted runs one at
// a time — in any order, as they become available — and merges them
// eagerly under a binary-counter discipline, so that by the time the last
// run arrives most of the merge work is already done. It is the
// receive-side half of the streaming exchange–merge overlap: the engine
// pushes each peer's run the moment its assembly region completes, and
// the ladder burns merge CPU during network idle time instead of after
// the exchange barrier (cf. Axtmann et al., "Practical Massively Parallel
// Sorting", which overlaps merging with the data exchange).
//
// The ladder keeps a stack of pending runs ordered largest-at-the-bottom.
// After each Push it merges the top two runs while the newest is at least
// as large as the one beneath it — the same invariant as a binary counter
// — which bounds total element moves to O(n log k) for k roughly equal
// runs, matching the balanced merging handler's total work. Finish
// collapses whatever remains (smallest pairs first) with the
// splitter-partitioned parallel merge and returns the single sorted run.
//
// A RunLadder is not safe for concurrent use: one goroutine owns it.
type RunLadder[E any] struct {
	less func(a, b E) bool
	// Get/Put provide merge output buffers (e.g. an alloc.SlabPool bound
	// to a temp-memory tracker). Get must return a slice of length n; Put
	// receives exactly the slices Get returned. Either may be nil, in
	// which case the ladder allocates fresh buffers and drops consumed
	// ones for the GC.
	get func(n int) []E
	put func(s []E)
	// Ways is the segment count ParallelMergeInto splits each merge into
	// (<= 1 means sequential).
	ways int
	// Note, when non-nil, observes every merge operation: the output
	// length and its wall-clock span. The engine uses it to attribute
	// merge time to the exchange window (Report.MergeOverlapSaved) and to
	// record per-merge spans in SchedTrace.
	note func(entries int, start, end time.Time)

	stack []ladderRun[E]
}

// ladderRun is one pending run: its data and whether the ladder owns the
// backing buffer (obtained from get, returned through put when consumed).
// Borrowed runs — pushed with owned=false — are never passed to put; the
// caller keeps their backing alive until Finish or Abort returns.
type ladderRun[E any] struct {
	data  []E
	owned bool
}

// NewRunLadder builds a ladder merging under less. See RunLadder for the
// get/put/ways/note contracts.
func NewRunLadder[E any](less func(a, b E) bool, get func(n int) []E, put func(s []E), ways int, note func(entries int, start, end time.Time)) *RunLadder[E] {
	if get == nil {
		get = func(n int) []E { return make([]E, n) }
	}
	if ways < 1 {
		ways = 1
	}
	return &RunLadder[E]{less: less, get: get, put: put, ways: ways, note: note}
}

// Push adds one sorted run and merges eagerly while the binary-counter
// invariant is violated. An empty owned run is returned to put
// immediately; an empty borrowed run is dropped.
func (l *RunLadder[E]) Push(run []E, owned bool) {
	if len(run) == 0 {
		if owned && l.put != nil {
			l.put(run)
		}
		return
	}
	l.stack = append(l.stack, ladderRun[E]{data: run, owned: owned})
	for len(l.stack) >= 2 {
		a := l.stack[len(l.stack)-2]
		b := l.stack[len(l.stack)-1]
		if len(b.data) < len(a.data) {
			break
		}
		l.mergeTop2()
	}
}

// mergeTop2 merges the two topmost runs into a fresh buffer from get and
// replaces them with the result, releasing consumed owned inputs.
func (l *RunLadder[E]) mergeTop2() {
	n := len(l.stack)
	a, b := l.stack[n-2], l.stack[n-1]
	start := time.Now()
	out := l.get(len(a.data) + len(b.data))
	ParallelMergeInto(out, a.data, b.data, l.less, l.ways)
	if l.note != nil {
		l.note(len(out), start, time.Now())
	}
	if l.put != nil {
		if a.owned {
			l.put(a.data)
		}
		if b.owned {
			l.put(b.data)
		}
	}
	l.stack = l.stack[:n-2]
	l.stack = append(l.stack, ladderRun[E]{data: out, owned: true})
}

// Runs reports how many pending runs the ladder currently holds.
func (l *RunLadder[E]) Runs() int { return len(l.stack) }

// Len reports the total number of entries currently held.
func (l *RunLadder[E]) Len() int {
	n := 0
	for _, r := range l.stack {
		n += len(r.data)
	}
	return n
}

// Finish merges every remaining run — smallest pairs first, so operand
// sizes stay balanced — and returns the fully merged result plus whether
// its backing came from get (owned=false means the single pushed run was
// borrowed and still aliases the caller's buffer). An empty ladder
// returns (nil, false). The ladder is empty afterwards and may be reused.
func (l *RunLadder[E]) Finish() (out []E, owned bool) {
	for len(l.stack) >= 2 {
		l.mergeTop2()
	}
	if len(l.stack) == 0 {
		return nil, false
	}
	r := l.stack[0]
	l.stack = l.stack[:0]
	return r.data, r.owned
}

// Abort returns every owned buffer to put and empties the ladder, for
// error paths where the merged result will never be consumed.
func (l *RunLadder[E]) Abort() {
	for _, r := range l.stack {
		if r.owned && l.put != nil {
			l.put(r.data)
		}
	}
	l.stack = l.stack[:0]
}
