package lsort

import "unsafe"

// elemSize reports the in-memory size of one element of type E, used for
// temporary-memory accounting (Figure 11).
func elemSize[E any]() uintptr {
	var e E
	return unsafe.Sizeof(e)
}

// IsSorted reports whether s is non-decreasing under less.
func IsSorted[E any](s []E, less func(x, y E) bool) bool {
	for i := 1; i < len(s); i++ {
		if less(s[i], s[i-1]) {
			return false
		}
	}
	return true
}

// LowerBound returns the smallest index i in the sorted slice s such that
// !less(s[i], key), i.e. the leftmost insertion point for key.
func LowerBound[E, K any](s []E, key K, less func(e E, k K) bool) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(s[mid], key) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// UpperBound returns the smallest index i in the sorted slice s such that
// greater(s[i], key), i.e. the rightmost insertion point for key.
func UpperBound[E, K any](s []E, key K, greater func(e E, k K) bool) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if greater(s[mid], key) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
