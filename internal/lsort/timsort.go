package lsort

// TimSort is the adaptive, stable merge sort used by Spark (via the JVM)
// for the per-partition sort in sortByKey; the paper picks it as the local
// sort of the Spark baseline and borrows its "balanced merges on natural
// runs" idea. This is a faithful port of the classic algorithm: natural
// run detection, binary-insertion extension to minrun, the (corrected)
// merge-collapse stack invariants, and galloping-mode merges.

const (
	// tsMinMerge: arrays shorter than this are sorted with one binary
	// insertion pass (Java's MIN_MERGE).
	tsMinMerge = 32
	// tsMinGallop: initial threshold of consecutive wins that switches a
	// merge into galloping mode.
	tsMinGallop = 7
)

// TimSort sorts a stably in place.
func TimSort[E any](a []E, less func(x, y E) bool) {
	n := len(a)
	if n < 2 {
		return
	}
	if n < tsMinMerge {
		initLen := countRunAndMakeAscending(a, less)
		binaryInsertionSort(a, initLen, less)
		return
	}
	ts := &timState[E]{a: a, less: less, minGallop: tsMinGallop}
	minRun := minRunLength(n)
	lo := 0
	for lo < n {
		runLen := countRunAndMakeAscending(a[lo:], less)
		if runLen < minRun {
			force := min(minRun, n-lo)
			binaryInsertionSort(a[lo:lo+force], runLen, less)
			runLen = force
		}
		ts.pushRun(lo, runLen)
		ts.mergeCollapse()
		lo += runLen
	}
	ts.mergeForceCollapse()
}

// minRunLength computes the minimum run length for TimSort: a number k,
// tsMinMerge/2 <= k <= tsMinMerge, such that n/k is close to, but strictly
// less than, an exact power of 2 (or equal to it when n is).
func minRunLength(n int) int {
	r := 0
	for n >= tsMinMerge {
		r |= n & 1
		n >>= 1
	}
	return n + r
}

// countRunAndMakeAscending finds the length of the natural run beginning
// at a[0] and reverses it in place if it is strictly descending (strictness
// preserves stability).
func countRunAndMakeAscending[E any](a []E, less func(x, y E) bool) int {
	n := len(a)
	if n <= 1 {
		return n
	}
	i := 1
	if less(a[1], a[0]) { // strictly descending
		for i++; i < n && less(a[i], a[i-1]); i++ {
		}
		reverseRange(a[:i])
	} else { // non-decreasing
		for i++; i < n && !less(a[i], a[i-1]); i++ {
		}
	}
	return i
}

func reverseRange[E any](a []E) {
	for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
}

// binaryInsertionSort sorts a, whose prefix a[:sortedLen] is already
// sorted, using binary search to find insertion points.
func binaryInsertionSort[E any](a []E, sortedLen int, less func(x, y E) bool) {
	if sortedLen == 0 {
		sortedLen = 1
	}
	for i := sortedLen; i < len(a); i++ {
		pivot := a[i]
		// Rightmost insertion point keeps the sort stable.
		pos := UpperBound(a[:i], pivot, func(e, k E) bool { return less(k, e) })
		copy(a[pos+1:i+1], a[pos:i])
		a[pos] = pivot
	}
}

type timState[E any] struct {
	a         []E
	less      func(x, y E) bool
	minGallop int
	tmp       []E
	runBase   []int
	runLen    []int
}

func (ts *timState[E]) pushRun(base, length int) {
	ts.runBase = append(ts.runBase, base)
	ts.runLen = append(ts.runLen, length)
}

// mergeCollapse restores the stack invariants, merging adjacent runs until
//
//	runLen[i-3] > runLen[i-2] + runLen[i-1]
//	runLen[i-2] > runLen[i-1]
//
// hold. This is the corrected version (checking one entry deeper) that
// fixes the original TimSort invariant bug found by de Gouw et al.
func (ts *timState[E]) mergeCollapse() {
	for len(ts.runLen) > 1 {
		n := len(ts.runLen) - 2
		switch {
		case (n > 0 && ts.runLen[n-1] <= ts.runLen[n]+ts.runLen[n+1]) ||
			(n > 1 && ts.runLen[n-2] <= ts.runLen[n-1]+ts.runLen[n]):
			if ts.runLen[n-1] < ts.runLen[n+1] {
				n--
			}
			ts.mergeAt(n)
		case ts.runLen[n] <= ts.runLen[n+1]:
			ts.mergeAt(n)
		default:
			return
		}
	}
}

func (ts *timState[E]) mergeForceCollapse() {
	for len(ts.runLen) > 1 {
		n := len(ts.runLen) - 2
		if n > 0 && ts.runLen[n-1] < ts.runLen[n+1] {
			n--
		}
		ts.mergeAt(n)
	}
}

// mergeAt merges the stack runs at i and i+1 (i must be len-2 or len-3).
func (ts *timState[E]) mergeAt(i int) {
	base1, len1 := ts.runBase[i], ts.runLen[i]
	base2, len2 := ts.runBase[i+1], ts.runLen[i+1]
	ts.runLen[i] = len1 + len2
	if i == len(ts.runLen)-3 {
		ts.runBase[i+1] = ts.runBase[i+2]
		ts.runLen[i+1] = ts.runLen[i+2]
	}
	ts.runBase = ts.runBase[:len(ts.runBase)-1]
	ts.runLen = ts.runLen[:len(ts.runLen)-1]

	a, less := ts.a, ts.less
	// Elements of run1 already <= first of run2 stay put.
	k := gallopRight(a[base2], a[base1:base1+len1], 0, less)
	base1 += k
	len1 -= k
	if len1 == 0 {
		return
	}
	// Elements of run2 already >= last of run1 stay put.
	len2 = gallopLeft(a[base1+len1-1], a[base2:base2+len2], len2-1, less)
	if len2 == 0 {
		return
	}
	if len1 <= len2 {
		ts.mergeLo(base1, len1, base2, len2)
	} else {
		ts.mergeHi(base1, len1, base2, len2)
	}
}

// gallopLeft locates the leftmost insertion point of key in the sorted
// slice a, galloping outward from hint. Returns i such that
// a[i-1] < key <= a[i].
func gallopLeft[E any](key E, a []E, hint int, less func(x, y E) bool) int {
	n := len(a)
	lastOfs, ofs := 0, 1
	if less(a[hint], key) {
		// Gallop right until a[hint+lastOfs] < key <= a[hint+ofs].
		maxOfs := n - hint
		for ofs < maxOfs && less(a[hint+ofs], key) {
			lastOfs = ofs
			ofs = ofs*2 + 1
			if ofs <= 0 {
				ofs = maxOfs
			}
		}
		if ofs > maxOfs {
			ofs = maxOfs
		}
		lastOfs += hint
		ofs += hint
	} else {
		// Gallop left until a[hint-ofs] < key <= a[hint-lastOfs].
		maxOfs := hint + 1
		for ofs < maxOfs && !less(a[hint-ofs], key) {
			lastOfs = ofs
			ofs = ofs*2 + 1
			if ofs <= 0 {
				ofs = maxOfs
			}
		}
		if ofs > maxOfs {
			ofs = maxOfs
		}
		lastOfs, ofs = hint-ofs, hint-lastOfs
	}
	// Binary search in (lastOfs, ofs].
	lastOfs++
	for lastOfs < ofs {
		m := lastOfs + (ofs-lastOfs)/2
		if less(a[m], key) {
			lastOfs = m + 1
		} else {
			ofs = m
		}
	}
	return ofs
}

// gallopRight locates the rightmost insertion point of key in the sorted
// slice a, galloping outward from hint. Returns i such that
// a[i-1] <= key < a[i].
func gallopRight[E any](key E, a []E, hint int, less func(x, y E) bool) int {
	n := len(a)
	lastOfs, ofs := 0, 1
	if less(key, a[hint]) {
		// Gallop left until a[hint-ofs] <= key < a[hint-lastOfs].
		maxOfs := hint + 1
		for ofs < maxOfs && less(key, a[hint-ofs]) {
			lastOfs = ofs
			ofs = ofs*2 + 1
			if ofs <= 0 {
				ofs = maxOfs
			}
		}
		if ofs > maxOfs {
			ofs = maxOfs
		}
		lastOfs, ofs = hint-ofs, hint-lastOfs
	} else {
		// Gallop right until a[hint+lastOfs] <= key < a[hint+ofs].
		maxOfs := n - hint
		for ofs < maxOfs && !less(key, a[hint+ofs]) {
			lastOfs = ofs
			ofs = ofs*2 + 1
			if ofs <= 0 {
				ofs = maxOfs
			}
		}
		if ofs > maxOfs {
			ofs = maxOfs
		}
		lastOfs += hint
		ofs += hint
	}
	lastOfs++
	for lastOfs < ofs {
		m := lastOfs + (ofs-lastOfs)/2
		if less(key, a[m]) {
			ofs = m
		} else {
			lastOfs = m + 1
		}
	}
	return ofs
}

func (ts *timState[E]) ensureTmp(n int) []E {
	if cap(ts.tmp) < n {
		ts.tmp = make([]E, n)
	}
	return ts.tmp[:n]
}

// mergeLo merges two adjacent runs where len1 <= len2, copying run1 aside.
func (ts *timState[E]) mergeLo(base1, len1, base2, len2 int) {
	a, less := ts.a, ts.less
	tmp := ts.ensureTmp(len1)
	copy(tmp, a[base1:base1+len1])

	cursor1, cursor2, dest := 0, base2, base1
	a[dest] = a[cursor2]
	dest++
	cursor2++
	len2--
	if len2 == 0 {
		copy(a[dest:], tmp[cursor1:len1])
		return
	}
	if len1 == 1 {
		copy(a[dest:dest+len2], a[cursor2:cursor2+len2])
		a[dest+len2] = tmp[cursor1]
		return
	}

	minGallop := ts.minGallop
outer:
	for {
		count1, count2 := 0, 0 // consecutive wins
		for {
			if less(a[cursor2], tmp[cursor1]) {
				a[dest] = a[cursor2]
				dest++
				cursor2++
				count2++
				count1 = 0
				len2--
				if len2 == 0 {
					break outer
				}
			} else {
				a[dest] = tmp[cursor1]
				dest++
				cursor1++
				count1++
				count2 = 0
				len1--
				if len1 == 1 {
					break outer
				}
			}
			if count1|count2 >= minGallop {
				break
			}
		}
		// Galloping mode.
		for {
			count1 = gallopRight(a[cursor2], tmp[cursor1:cursor1+len1], 0, less)
			if count1 != 0 {
				copy(a[dest:dest+count1], tmp[cursor1:cursor1+count1])
				dest += count1
				cursor1 += count1
				len1 -= count1
				if len1 <= 1 {
					break outer
				}
			}
			a[dest] = a[cursor2]
			dest++
			cursor2++
			len2--
			if len2 == 0 {
				break outer
			}
			count2 = gallopLeft(tmp[cursor1], a[cursor2:cursor2+len2], 0, less)
			if count2 != 0 {
				copy(a[dest:dest+count2], a[cursor2:cursor2+count2])
				dest += count2
				cursor2 += count2
				len2 -= count2
				if len2 == 0 {
					break outer
				}
			}
			a[dest] = tmp[cursor1]
			dest++
			cursor1++
			len1--
			if len1 == 1 {
				break outer
			}
			minGallop--
			if count1 < tsMinGallop && count2 < tsMinGallop {
				break
			}
		}
		if minGallop < 0 {
			minGallop = 0
		}
		minGallop += 2 // penalize leaving gallop mode
	}
	ts.minGallop = max(minGallop, 1)

	switch {
	case len1 == 1:
		copy(a[dest:dest+len2], a[cursor2:cursor2+len2])
		a[dest+len2] = tmp[cursor1]
	case len1 == 0:
		panic("lsort: timsort comparison violates its contract")
	default:
		copy(a[dest:dest+len1], tmp[cursor1:cursor1+len1])
	}
}

// mergeHi merges two adjacent runs where len1 > len2, copying run2 aside
// and merging from the right.
func (ts *timState[E]) mergeHi(base1, len1, base2, len2 int) {
	a, less := ts.a, ts.less
	tmp := ts.ensureTmp(len2)
	copy(tmp, a[base2:base2+len2])

	cursor1 := base1 + len1 - 1
	cursor2 := len2 - 1
	dest := base2 + len2 - 1
	a[dest] = a[cursor1]
	dest--
	cursor1--
	len1--
	if len1 == 0 {
		copy(a[dest-(len2-1):dest+1], tmp[:len2])
		return
	}
	if len2 == 1 {
		dest -= len1
		cursor1 -= len1
		copy(a[dest+1:dest+1+len1], a[cursor1+1:cursor1+1+len1])
		a[dest] = tmp[cursor2]
		return
	}

	minGallop := ts.minGallop
outer:
	for {
		count1, count2 := 0, 0
		for {
			if less(tmp[cursor2], a[cursor1]) {
				a[dest] = a[cursor1]
				dest--
				cursor1--
				count1++
				count2 = 0
				len1--
				if len1 == 0 {
					break outer
				}
			} else {
				a[dest] = tmp[cursor2]
				dest--
				cursor2--
				count2++
				count1 = 0
				len2--
				if len2 == 1 {
					break outer
				}
			}
			if count1|count2 >= minGallop {
				break
			}
		}
		for {
			count1 = len1 - gallopRight(tmp[cursor2], a[base1:base1+len1], len1-1, less)
			if count1 != 0 {
				dest -= count1
				cursor1 -= count1
				len1 -= count1
				copy(a[dest+1:dest+1+count1], a[cursor1+1:cursor1+1+count1])
				if len1 == 0 {
					break outer
				}
			}
			a[dest] = tmp[cursor2]
			dest--
			cursor2--
			len2--
			if len2 == 1 {
				break outer
			}
			count2 = len2 - gallopLeft(a[cursor1], tmp[:len2], len2-1, less)
			if count2 != 0 {
				dest -= count2
				cursor2 -= count2
				len2 -= count2
				copy(a[dest+1:dest+1+count2], tmp[cursor2+1:cursor2+1+count2])
				if len2 <= 1 {
					break outer
				}
			}
			a[dest] = a[cursor1]
			dest--
			cursor1--
			len1--
			if len1 == 0 {
				break outer
			}
			minGallop--
			if count1 < tsMinGallop && count2 < tsMinGallop {
				break
			}
		}
		if minGallop < 0 {
			minGallop = 0
		}
		minGallop += 2
	}
	ts.minGallop = max(minGallop, 1)

	switch {
	case len2 == 1:
		dest -= len1
		cursor1 -= len1
		copy(a[dest+1:dest+1+len1], a[cursor1+1:cursor1+1+len1])
		a[dest] = tmp[cursor2]
	case len2 == 0:
		panic("lsort: timsort comparison violates its contract")
	default:
		copy(a[dest-(len2-1):dest+1], tmp[:len2])
	}
}
