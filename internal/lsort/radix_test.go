package lsort

import (
	"math"
	"sort"
	"testing"

	"pgxsort/internal/comm"
	"pgxsort/internal/dist"
)

func idU64(k uint64) uint64 { return k }

// TestRadixSortKinds checks RadixSort against sort.Slice on every
// distribution kind, including the ones that exercise the counting-skip
// passes (sorted, few-distinct, constant).
func TestRadixSortKinds(t *testing.T) {
	for _, kind := range dist.AllKinds {
		t.Run(kind.String(), func(t *testing.T) {
			keys := dist.Gen{Kind: kind, Seed: 7}.Keys(5000)
			want := append([]uint64(nil), keys...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

			got := append([]uint64(nil), keys...)
			scratch := make([]uint64, len(got))
			RadixSort(got, scratch, idU64, 64)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("mismatch at %d: got %d want %d", i, got[i], want[i])
				}
			}
		})
	}
}

// TestParallelRadixSortKinds checks the chunked-parallel variant across
// worker counts and kinds.
func TestParallelRadixSortKinds(t *testing.T) {
	for _, kind := range dist.AllKinds {
		for _, workers := range []int{1, 2, 3, 8} {
			keys := dist.Gen{Kind: kind, Seed: 11}.Keys(4097)
			want := append([]uint64(nil), keys...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

			got := append([]uint64(nil), keys...)
			scratch := make([]uint64, len(got))
			ParallelRadixSort(got, scratch, idU64, 64,
				func(a, b uint64) bool { return a < b }, workers)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: mismatch at %d", kind, workers, i)
				}
			}
		}
	}
}

// TestRadixSortStable: sequential LSD radix must keep the input order of
// equal keys (the property the engine relies on for deterministic origin
// order on the sequential path).
func TestRadixSortStable(t *testing.T) {
	type rec struct {
		key uint64
		seq int
	}
	var s []rec
	g := dist.Gen{Kind: dist.FewDistinct, Seed: 3}
	for i, k := range g.Keys(2000) {
		s = append(s, rec{key: k, seq: i})
	}
	scratch := make([]rec, len(s))
	RadixSort(s, scratch, func(r rec) uint64 { return r.key }, 64)
	for i := 1; i < len(s); i++ {
		if s[i-1].key > s[i].key {
			t.Fatalf("unsorted at %d", i)
		}
		if s[i-1].key == s[i].key && s[i-1].seq > s[i].seq {
			t.Fatalf("stability violated at %d: seq %d before %d", i, s[i-1].seq, s[i].seq)
		}
	}
}

// TestParallelRadixSortStable: the chunked-parallel radix sort must be
// stable for every worker count — equal keys keep input order across
// chunk boundaries because the balanced merges and CoRank splits are
// tie-stable. This pins the property the spill tier's budget-chunked
// local sort relies on: the output is independent of chunking.
func TestParallelRadixSortStable(t *testing.T) {
	type rec struct {
		key uint64
		seq int
	}
	var s []rec
	g := dist.Gen{Kind: dist.FewDistinct, Seed: 7}
	for i, k := range g.Keys(60000) {
		s = append(s, rec{key: k, seq: i})
	}
	want := append([]rec(nil), s...)
	sort.SliceStable(want, func(i, j int) bool { return want[i].key < want[j].key })
	for _, workers := range []int{1, 2, 3, 4, 8} {
		got := append([]rec(nil), s...)
		scratch := make([]rec, len(got))
		ParallelRadixSort(got, scratch, func(r rec) uint64 { return r.key }, 64,
			func(x, y rec) bool { return x.key < y.key }, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: mismatch at %d: %+v != %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestRadixSortKeyTypes runs the differential check over every codec key
// type through its KeyNorm, including the float64 specials whose order
// only the norm defines.
func TestRadixSortKeyTypes(t *testing.T) {
	raw := dist.Gen{Kind: dist.Uniform, Seed: 13, Domain: 0}.Keys(3000)

	t.Run("uint64", func(t *testing.T) {
		checkRadixNorm(t, raw, comm.U64Codec{}.Norm, 64)
	})
	t.Run("uint32", func(t *testing.T) {
		vals := make([]uint32, len(raw))
		for i, k := range raw {
			vals[i] = uint32(k)
		}
		checkRadixNorm(t, vals, comm.U32Codec{}.Norm, 32)
	})
	t.Run("int64", func(t *testing.T) {
		vals := make([]int64, len(raw))
		for i, k := range raw {
			vals[i] = int64(k ^ (k << 31)) // mix signs
		}
		checkRadixNorm(t, vals, comm.I64Codec{}.Norm, 64)
	})
	t.Run("float64", func(t *testing.T) {
		vals := make([]float64, 0, len(raw)+8)
		for i, k := range raw {
			f := float64(int64(k)) / 1e3
			if i%2 == 0 {
				f = -f
			}
			vals = append(vals, f)
		}
		vals = append(vals, math.Inf(1), math.Inf(-1), math.NaN(),
			math.Float64frombits(math.Float64bits(math.NaN())|1<<63),
			math.Copysign(0, -1), 0, math.MaxFloat64, -math.MaxFloat64)
		checkRadixNorm(t, vals, comm.F64Codec{}.Norm, 64)
	})
}

// checkRadixNorm sorts vals with RadixSort over norm and with
// sort.SliceStable over norm-compare, and requires identical key
// sequences (compared by norm image, so NaN payloads stay comparable).
func checkRadixNorm[K any](t *testing.T, vals []K, norm func(K) uint64, bits int) {
	t.Helper()
	want := append([]K(nil), vals...)
	sort.SliceStable(want, func(i, j int) bool { return norm(want[i]) < norm(want[j]) })

	got := append([]K(nil), vals...)
	scratch := make([]K, len(got))
	RadixSort(got, scratch, norm, bits)
	for i := range want {
		if norm(got[i]) != norm(want[i]) {
			t.Fatalf("mismatch at %d: got %v want %v", i, got[i], want[i])
		}
	}
}

// TestRadixSortNarrowBits: passes above keyBits must be skippable without
// affecting the result when the image honors the declared width.
func TestRadixSortNarrowBits(t *testing.T) {
	keys := dist.Gen{Kind: dist.Uniform, Seed: 29}.Keys(2000) // domain 2^20
	want := append([]uint64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := append([]uint64(nil), keys...)
	RadixSort(got, make([]uint64, len(got)), idU64, 20)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestRadixSortEdgeCases(t *testing.T) {
	// Empty and single-element inputs.
	RadixSort(nil, nil, idU64, 64)
	one := []uint64{9}
	RadixSort(one, nil, idU64, 64)
	if one[0] != 9 {
		t.Fatal("single element changed")
	}
	// Two elements out of order.
	two := []uint64{5, 1}
	RadixSort(two, make([]uint64, 2), idU64, 64)
	if two[0] != 1 || two[1] != 5 {
		t.Fatalf("two-element sort wrong: %v", two)
	}
	// Undersized scratch must panic loudly, not corrupt.
	defer func() {
		if recover() == nil {
			t.Fatal("undersized scratch did not panic")
		}
	}()
	RadixSort([]uint64{3, 2, 1}, make([]uint64, 1), idU64, 64)
}

// FuzzRadixSort differentially fuzzes RadixSort against sort.Slice on
// uint64 keys derived from the fuzzer's bytes.
func FuzzRadixSort(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint8(64))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint8(8))
	f.Add([]byte{255, 254, 253}, uint8(16))
	f.Fuzz(func(t *testing.T, data []byte, bits uint8) {
		keyBits := int(bits%64) + 1
		mask := uint64(1)<<keyBits - 1
		if keyBits == 64 {
			mask = ^uint64(0)
		}
		var keys []uint64
		for i := 0; i+8 <= len(data); i += 8 {
			var k uint64
			for j := 0; j < 8; j++ {
				k = k<<8 | uint64(data[i+j])
			}
			keys = append(keys, k&mask)
		}
		want := append([]uint64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := append([]uint64(nil), keys...)
		RadixSort(got, make([]uint64, len(got)), idU64, keyBits)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("mismatch at %d: got %d want %d (keyBits %d)", i, got[i], want[i], keyBits)
			}
		}
	})
}
