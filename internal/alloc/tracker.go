// Package alloc provides explicit accounting of temporary buffer memory.
//
// The paper's Figure 11 separates resident memory (the data being sorted)
// from temporary memory that is allocated during the sort and freed at the
// end (merge scratch space, staging buffers, sample buffers). Go's runtime
// does not attribute allocations to subsystems, so modules in this repo
// report their temporary allocations to a Tracker and the harness reads the
// high-water mark per node.
package alloc

import "sync/atomic"

// Tracker accounts bytes of live temporary memory and remembers the
// high-water mark. All methods are safe for concurrent use. The zero value
// is ready to use.
type Tracker struct {
	live int64
	peak int64
}

// Alloc records that n bytes of temporary memory were allocated.
// It returns n so callers can wrap allocation sites.
func (t *Tracker) Alloc(n int64) int64 {
	if t == nil || n <= 0 {
		return n
	}
	live := atomic.AddInt64(&t.live, n)
	for {
		peak := atomic.LoadInt64(&t.peak)
		if live <= peak || atomic.CompareAndSwapInt64(&t.peak, peak, live) {
			return n
		}
	}
}

// Free records that n bytes of temporary memory were released.
func (t *Tracker) Free(n int64) {
	if t == nil || n <= 0 {
		return
	}
	atomic.AddInt64(&t.live, -n)
}

// Live reports the bytes of temporary memory currently accounted live.
func (t *Tracker) Live() int64 {
	if t == nil {
		return 0
	}
	return atomic.LoadInt64(&t.live)
}

// Peak reports the high-water mark of live temporary memory.
func (t *Tracker) Peak() int64 {
	if t == nil {
		return 0
	}
	return atomic.LoadInt64(&t.peak)
}

// Reset clears the live counter and high-water mark.
func (t *Tracker) Reset() {
	if t == nil {
		return
	}
	atomic.StoreInt64(&t.live, 0)
	atomic.StoreInt64(&t.peak, 0)
}
