package alloc

import (
	"sync"
	"testing"
)

func TestTrackerBasics(t *testing.T) {
	var tr Tracker
	if tr.Live() != 0 || tr.Peak() != 0 {
		t.Fatal("zero value not zeroed")
	}
	tr.Alloc(100)
	if tr.Live() != 100 || tr.Peak() != 100 {
		t.Fatalf("after alloc: live=%d peak=%d", tr.Live(), tr.Peak())
	}
	tr.Alloc(50)
	tr.Free(100)
	if tr.Live() != 50 {
		t.Fatalf("live = %d, want 50", tr.Live())
	}
	if tr.Peak() != 150 {
		t.Fatalf("peak = %d, want 150", tr.Peak())
	}
	tr.Free(50)
	if tr.Live() != 0 {
		t.Fatalf("live = %d, want 0", tr.Live())
	}
	tr.Reset()
	if tr.Peak() != 0 {
		t.Fatalf("peak after reset = %d", tr.Peak())
	}
}

func TestTrackerIgnoresNonPositive(t *testing.T) {
	var tr Tracker
	tr.Alloc(0)
	tr.Alloc(-5)
	tr.Free(0)
	tr.Free(-5)
	if tr.Live() != 0 || tr.Peak() != 0 {
		t.Fatalf("non-positive sizes changed state: live=%d peak=%d", tr.Live(), tr.Peak())
	}
}

func TestTrackerNilSafe(t *testing.T) {
	var tr *Tracker
	if tr.Alloc(10) != 10 {
		t.Fatal("nil Alloc should pass through n")
	}
	tr.Free(10)
	tr.Reset()
	if tr.Live() != 0 || tr.Peak() != 0 {
		t.Fatal("nil tracker should report zeros")
	}
}

func TestTrackerConcurrentPeak(t *testing.T) {
	var tr Tracker
	const workers = 8
	const rounds = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tr.Alloc(10)
				tr.Free(10)
			}
		}()
	}
	wg.Wait()
	if tr.Live() != 0 {
		t.Fatalf("live = %d after balanced ops", tr.Live())
	}
	peak := tr.Peak()
	if peak < 10 || peak > workers*10 {
		t.Fatalf("peak = %d outside [10, %d]", peak, workers*10)
	}
}

func TestTrackerAllocReturnsN(t *testing.T) {
	var tr Tracker
	if got := tr.Alloc(42); got != 42 {
		t.Fatalf("Alloc returned %d", got)
	}
}
