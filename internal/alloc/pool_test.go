package alloc

import (
	"sync"
	"testing"
)

func TestSlabPoolReuses(t *testing.T) {
	var p SlabPool[uint64]
	s := p.Get(100)
	if len(s) != 100 {
		t.Fatalf("Get(100) len = %d", len(s))
	}
	if cap(s) != 128 {
		t.Fatalf("Get(100) cap = %d, want the 2^7 class", cap(s))
	}
	first := &s[0]
	p.Put(s)

	// Any request the slab's class covers gets the same backing array.
	for _, n := range []int{100, 65, 128} {
		r := p.Get(n)
		if len(r) != n {
			t.Fatalf("Get(%d) len = %d", n, len(r))
		}
		if &r[0] != first {
			t.Fatalf("Get(%d) did not reuse the pooled slab", n)
		}
		p.Put(r)
	}
	gets, hits := p.Stats()
	if gets != 4 || hits != 3 {
		t.Fatalf("stats = (%d gets, %d hits), want (4, 3)", gets, hits)
	}
}

func TestSlabPoolClassIsolation(t *testing.T) {
	var p SlabPool[int]
	small := p.Get(10) // class 4 (cap 16)
	p.Put(small)
	big := p.Get(1000) // class 10: must not be served by the cap-16 slab
	if cap(big) < 1000 {
		t.Fatalf("Get(1000) cap = %d", cap(big))
	}
	if len(big) != 1000 {
		t.Fatalf("Get(1000) len = %d", len(big))
	}
}

func TestSlabPoolOddCapacity(t *testing.T) {
	var p SlabPool[byte]
	// A slab whose capacity is not a power of two (e.g. allocated outside
	// the pool) files under the largest class it fully covers.
	odd := make([]byte, 0, 100) // covers class 6 (<= 64)
	p.Put(odd)
	got := p.Get(60)
	if cap(got) != 100 {
		t.Fatalf("Get(60) cap = %d, want the odd slab reused", cap(got))
	}
	if len(got) != 60 {
		t.Fatalf("Get(60) len = %d", len(got))
	}
}

func TestSlabPoolBoundedRetention(t *testing.T) {
	var p SlabPool[int]
	slabs := make([][]int, slabsPerClass+3)
	for i := range slabs {
		slabs[i] = make([]int, 64)
	}
	for _, s := range slabs {
		p.Put(s)
	}
	kept := 0
	seen := map[*int]bool{}
	for i := 0; i < len(slabs); i++ {
		g := p.Get(64)
		if !seen[&g[0]] {
			for _, s := range slabs {
				if &s[0] == &g[0] {
					kept++
				}
			}
		}
		seen[&g[0]] = true
	}
	if kept != slabsPerClass {
		t.Fatalf("retained %d slabs, want %d", kept, slabsPerClass)
	}
}

func TestSlabPoolNilAndZero(t *testing.T) {
	var p *SlabPool[int]
	if s := p.Get(5); len(s) != 5 {
		t.Fatalf("nil pool Get(5) len = %d", len(s))
	}
	p.Put(make([]int, 3)) // must not panic
	if gets, hits := p.Stats(); gets != 0 || hits != 0 {
		t.Fatalf("nil pool stats = (%d, %d)", gets, hits)
	}

	var q SlabPool[int]
	if s := q.Get(0); s != nil {
		t.Fatalf("Get(0) = %v, want nil", s)
	}
	q.Put(nil) // must not panic
}

func TestSlabPoolConcurrent(t *testing.T) {
	var p SlabPool[uint64]
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := p.Get(64 + g)
				for j := range s {
					s[j] = uint64(g)
				}
				for j := range s {
					if s[j] != uint64(g) {
						t.Errorf("slab shared between goroutines")
						return
					}
				}
				p.Put(s)
			}
		}(g)
	}
	wg.Wait()
}
