package alloc

import (
	"math/bits"
	"sync"
)

// slabClasses bounds the power-of-two capacity classes a SlabPool keeps
// (class c holds slabs with capacity in [2^c, 2^(c+1))). 2^47 elements is
// far beyond any slab this repo allocates.
const slabClasses = 48

// slabsPerClass bounds how many idle slabs a class retains. Retention is
// deliberately small and deterministic (unlike sync.Pool, nothing is
// dropped by GC pressure), so a pipelined SortMany run keeps exactly the
// working set of its deepest overlap and no more.
const slabsPerClass = 4

// SlabPool recycles slices of E by power-of-two capacity class, so
// repeated sorts reuse their entry and scratch buffers instead of
// churning the allocator. The zero value is ready to use; a nil *SlabPool
// is also valid and falls back to plain allocation, which is how the
// DisablePooling ablation runs the unpooled baseline.
//
// Get returns a slice of length n whose contents are unspecified (slabs
// are not cleared); every caller fully overwrites what it reads. Put
// recycles a slab for a later Get; the caller must not retain or read the
// slice after Put. SlabPool does not touch the temporary-memory Tracker:
// call sites keep their explicit Alloc/Free bracketing around the window
// a buffer is live, so the Figure 11 accounting reflects use, not caching,
// and still balances to zero after every sort.
//
// All methods are safe for concurrent use.
type SlabPool[E any] struct {
	mu      sync.Mutex
	classes [slabClasses][][]E
	gets    int64
	hits    int64
}

// slabClass returns the class whose slabs satisfy a request for n
// elements: the smallest c with 2^c >= n.
func slabClass(n int) int {
	return bits.Len(uint(n - 1))
}

// Get returns a slice of length n, reusing an idle slab when one fits.
func (p *SlabPool[E]) Get(n int) []E {
	if n <= 0 {
		return nil
	}
	if p == nil {
		return make([]E, n)
	}
	c := slabClass(n)
	if c >= slabClasses {
		return make([]E, n)
	}
	p.mu.Lock()
	p.gets++
	if l := len(p.classes[c]); l > 0 {
		s := p.classes[c][l-1]
		p.classes[c][l-1] = nil
		p.classes[c] = p.classes[c][:l-1]
		p.hits++
		p.mu.Unlock()
		return s[:n]
	}
	p.mu.Unlock()
	return make([]E, n, 1<<c)
}

// Put offers a slab back to the pool. Slabs of any capacity are accepted
// (they are filed under the largest class their capacity fully covers);
// classes that are already full drop the slab for the GC.
func (p *SlabPool[E]) Put(s []E) {
	if p == nil || cap(s) == 0 {
		return
	}
	c := bits.Len(uint(cap(s))) - 1 // floor: every Get from class c needs <= 2^c <= cap(s)
	if c >= slabClasses {
		return
	}
	p.mu.Lock()
	if len(p.classes[c]) < slabsPerClass {
		p.classes[c] = append(p.classes[c], s[:0])
	}
	p.mu.Unlock()
}

// Stats reports how many Gets the pool served and how many of them reused
// an idle slab.
func (p *SlabPool[E]) Stats() (gets, hits int64) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gets, p.hits
}
