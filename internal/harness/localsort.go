package harness

import (
	"fmt"

	"pgxsort/internal/core"
	"pgxsort/internal/dist"
)

// LocalSortPaths compares the two step-1 paths — the paper's comparison
// sort (chunked quicksort + balanced merge) and the radix fast path over
// normalized keys — across every distribution kind. The sortpath column
// records the path the engine actually resolved (from
// Report.LocalSortPath), so the CI trajectory CSV captures
// comparison-vs-radix per commit; the final row checks that LocalSortAuto
// resolves to radix for the uint64 workload.
func LocalSortPaths(c Config) ([]Table, error) {
	c = c.WithDefaults()
	p := c.Procs[len(c.Procs)/2]
	t := Table{
		ID:    "localsort",
		Title: fmt.Sprintf("Local-sort paths per distribution, p=%d (ms)", p),
		Header: []string{"kind", "sortpath", "comparison_ms", "radix_ms",
			"radix_vs_comparison", "localsort_ms_comparison", "localsort_ms_radix"},
	}
	for _, kind := range dist.AllKinds {
		parts := c.parts(kind, p)
		comparison, err := c.runPGXD(parts, core.Options{LocalSort: core.LocalSortComparison})
		if err != nil {
			return nil, err
		}
		radix, err := c.runPGXD(parts, core.Options{LocalSort: core.LocalSortRadix})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			kind.String(),
			radix.LocalSortPath,
			ms(comparison.Total),
			ms(radix.Total),
			fmt.Sprintf("%.2fx", float64(comparison.Total)/float64(radix.Total)),
			ms(comparison.Steps[core.StepLocalSort]),
			ms(radix.Steps[core.StepLocalSort]),
		})
	}
	// Auto-resolution row: the default mode must pick radix for uint64.
	// Run it against a genuinely-Auto config — a -localsort override on
	// the sweep (Config.LocalSort) must not leak into this row.
	cAuto := c
	cAuto.LocalSort = core.LocalSortAuto
	auto, err := cAuto.runPGXD(c.parts(dist.Uniform, p), core.Options{})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"uniform(auto)", auto.LocalSortPath,
		"-", ms(auto.Total), "-", "-", ms(auto.Steps[core.StepLocalSort])})
	t.Notes = append(t.Notes,
		fmt.Sprintf("N=%d keys, %d workers/proc, transport=%s", c.N, c.Workers, c.Transport),
		"radix skips constant byte columns, so narrow-domain and duplicate-heavy kinds run few passes;",
		"sortpath is the engine-resolved path (Report.LocalSortPath) under the forced-radix run")
	return []Table{t}, nil
}
