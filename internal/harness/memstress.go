package harness

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"slices"
	"strconv"
	"time"

	"pgxsort/internal/dist"
	"pgxsort/internal/keyio"
	"pgxsort/internal/serve"
)

// MemStressExp proves the bounded-memory service end to end (ISSUE 10):
// one pgxsortd server under a deliberately tiny per-node memory budget
// answers a sweep of octet-stream uploads from well under the spool
// threshold to ~20x the budget. Every answer must be byte-identical to a
// local reference sort, every body past the threshold must report
// X-Pgxsortd-Spooled, and every spooled job's trailer-borne
// tracker-accounted temp peak must stay under the fixed ceiling
// (2 x procs x budget + 1 MiB slack) — and, for the bodies at >= 10x the
// budget, under the body size itself, the out-of-core proof. The CSV
// charts peak bytes against body size so a regression that quietly
// buffers uploads again shows up as a diverging curve, not a green run.
func MemStressExp(c Config) ([]Table, error) {
	c = c.WithDefaults()
	procs := c.Procs[0]
	const (
		budget    = int64(64 << 10) // per-node engine budget
		threshold = int64(16 << 10) // spool past this many raw body bytes
	)
	// The honest accounting ceiling: phase-1 run formation tracks up to
	// two chunk slabs per node, plus fixed decoder/merge slack.
	ceiling := int64(2*procs)*budget + 1<<20

	srv, err := serve.New(serve.Config{
		Procs:          procs,
		Workers:        c.Workers,
		Transport:      c.Transport,
		LocalSort:      c.LocalSort,
		Merge:          c.Merge,
		MaxInflight:    c.Inflight,
		MemoryBudget:   budget,
		SpoolThreshold: threshold,
		SpillDir:       c.SpillDir,
	})
	if err != nil {
		return nil, fmt.Errorf("memstress: %w", err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()
	client := &http.Client{Timeout: 2 * time.Minute}

	t := Table{
		ID: "memstress",
		Title: fmt.Sprintf("bounded-memory service: body size vs a %d-byte budget, p=%d",
			budget, procs),
		Header: []string{"point", "keys", "body_bytes", "body_over_budget",
			"spooled", "total_ms", "temp_peak_bytes", "peak_ceiling", "identical"},
	}

	// Key counts sized off ~8 wire bytes/key so the spooled bodies land
	// at or above their nominal budget multiples (uniform uint64 keys
	// varint-encode to ~9.5 bytes).
	points := []struct {
		label string
		keys  int
	}{
		{"under-threshold", 1000},
		{"2x-budget", int(2 * budget / 8)},
		{"10x-budget", int(10 * budget / 8)},
		{"20x-budget", int(20 * budget / 8)},
	}
	var maxPeak int64
	spooledJobs := 0
	for i, pt := range points {
		keys := dist.Gen{Kind: dist.Uniform, Seed: c.Seed + uint64(i+1)*104729}.Keys(pt.keys)
		raw := keyio.EncodeUint64s(keys)
		want := slices.Clone(keys)
		slices.Sort(want)
		wantRaw := keyio.EncodeUint64s(want)

		start := time.Now()
		resp, err := client.Post(ts.URL+"/v1/sort?key_type=uint64",
			"application/octet-stream", bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("memstress %s: %w", pt.label, err)
		}
		// The whole chunked body must be consumed before resp.Trailer
		// is populated.
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		elapsed := time.Since(start)
		if rerr != nil {
			return nil, fmt.Errorf("memstress %s: reading response: %w", pt.label, rerr)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("memstress %s: status %s: %s", pt.label, resp.Status, body)
		}
		if !bytes.Equal(body, wantRaw) {
			return nil, fmt.Errorf("memstress %s: %d-byte answer is not byte-identical to the reference sort",
				pt.label, len(body))
		}
		spooled := resp.Header.Get("X-Pgxsortd-Spooled") == "true"
		if wantSpool := int64(len(raw)) > threshold; spooled != wantSpool {
			return nil, fmt.Errorf("memstress %s: spooled=%v for a %d-byte body against a %d-byte threshold",
				pt.label, spooled, len(raw), threshold)
		}

		peakCell := "-"
		if spooled {
			spooledJobs++
			// The trailer arrives after the chunked body: the server only
			// knows its peak once the final merge has streamed out.
			peak, perr := strconv.ParseInt(resp.Trailer.Get("X-Pgxsortd-Temp-Peak"), 10, 64)
			if perr != nil || peak <= 0 {
				return nil, fmt.Errorf("memstress %s: missing X-Pgxsortd-Temp-Peak trailer (%q)",
					pt.label, resp.Trailer.Get("X-Pgxsortd-Temp-Peak"))
			}
			if peak > ceiling {
				return nil, fmt.Errorf("memstress %s: temp peak %d exceeds the %d-byte ceiling",
					pt.label, peak, ceiling)
			}
			if int64(len(raw)) >= 10*budget && peak >= int64(len(raw)) {
				return nil, fmt.Errorf("memstress %s: temp peak %d is not out of core against a %d-byte body",
					pt.label, peak, len(raw))
			}
			maxPeak = max(maxPeak, peak)
			peakCell = strconv.FormatInt(peak, 10)
		}

		t.Rows = append(t.Rows, []string{
			pt.label,
			strconv.Itoa(pt.keys),
			strconv.Itoa(len(raw)),
			fmt.Sprintf("%.1f", float64(len(raw))/float64(budget)),
			fmt.Sprintf("%v", spooled),
			ms(elapsed),
			peakCell,
			strconv.FormatInt(ceiling, 10),
			"yes", // the equality check above would have errored otherwise
		})
	}

	// Cross-check the governor's exported view against what the trailers
	// claimed: the process-wide peak gauge must cover the worst job, and
	// every spooled job must be counted.
	gaugePeak, err := scrapeCounter(client, ts.URL, "pgxsortd_mem_peak_bytes")
	if err != nil {
		return nil, fmt.Errorf("memstress: %w", err)
	}
	if gaugePeak < maxPeak {
		return nil, fmt.Errorf("memstress: mem_peak_bytes gauge %d below the worst job peak %d",
			gaugePeak, maxPeak)
	}
	spooledTotal, err := scrapeCounter(client, ts.URL, "pgxsortd_spooled_jobs_total")
	if err != nil {
		return nil, fmt.Errorf("memstress: %w", err)
	}
	if spooledTotal < int64(spooledJobs) {
		return nil, fmt.Errorf("memstress: spooled_jobs_total %d below the %d spooled uploads",
			spooledTotal, spooledJobs)
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("transport=%s, %d workers/proc, mem-budget=%d, spool-threshold=%d, uniform uint64 keys",
			c.Transport, c.Workers, budget, threshold),
		"every 200 is verified byte-identical to a local reference sort; bodies past the threshold",
		"must answer with X-Pgxsortd-Spooled and a trailer-borne tracker peak at most the",
		fmt.Sprintf("2 x procs x budget + 1MiB ceiling (%d); bodies at >= 10x the budget must also peak", ceiling),
		"below their own body size — the out-of-core proof the governor's gauges are checked against")
	return []Table{t}, nil
}
