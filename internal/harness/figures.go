package harness

import (
	"fmt"
	"runtime"

	"pgxsort/internal/core"
	"pgxsort/internal/dist"
)

// Fig4 renders the four input distributions as bucketed percentages
// (paper Figure 4).
func Fig4(c Config) ([]Table, error) {
	c = c.WithDefaults()
	const buckets = 16
	t := Table{
		ID:     "fig4",
		Title:  "Input data distributions (bucket share of keys)",
		Header: []string{"bucket"},
	}
	n := c.N
	if n > 1<<20 {
		n = 1 << 20 // histograms converge long before that
	}
	hists := make([]*dist.Histogram, len(dist.Kinds))
	for i, kind := range dist.Kinds {
		t.Header = append(t.Header, kind.String())
		keys := dist.Gen{Kind: kind, Seed: c.Seed}.Keys(n)
		hists[i] = dist.NewHistogram(keys, dist.DefaultDomain, buckets)
	}
	for b := 0; b < buckets; b++ {
		row := []string{fmt.Sprintf("%2d", b)}
		for _, h := range hists {
			row = append(row, pct(h.Buckets[b], h.Total))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d keys per distribution, domain [0, 2^20)", n))
	return []Table{t}, nil
}

// Fig5 measures PGX.D total sort time per distribution across the
// processor sweep (paper Figure 5).
func Fig5(c Config) ([]Table, error) {
	c = c.WithDefaults()
	t := Table{
		ID:     "fig5",
		Title:  "PGX.D distributed sorting: total execution time (ms)",
		Header: []string{"procs"},
	}
	for _, kind := range dist.Kinds {
		t.Header = append(t.Header, kind.String())
	}
	for _, p := range c.Procs {
		row := []string{fmt.Sprintf("%d", p)}
		for _, kind := range dist.Kinds {
			rep, err := c.runPGXD(c.parts(kind, p), core.Options{})
			if err != nil {
				return nil, err
			}
			row = append(row, ms(rep.Total))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("N=%d keys total, %d workers/proc, transport=%s", c.N, c.Workers, c.Transport),
		"paper shape: times are close across distributions (balance holds for all four)")
	return []Table{t}, nil
}

// Fig6 compares strong scaling of PGX.D and Spark per distribution
// (paper Figure 6).
func Fig6(c Config) ([]Table, error) {
	c = c.WithDefaults()
	var tables []Table
	for _, kind := range dist.Kinds {
		t := Table{
			ID:    "fig6",
			Title: fmt.Sprintf("Strong scaling, %s distribution", kind),
			Header: []string{"procs", "pgxd_ms", "pgxd_speedup",
				"spark_ms", "spark_speedup", "pgxd_vs_spark"},
		}
		var pgxdBase, sparkBase float64
		for i, p := range c.Procs {
			parts := c.parts(kind, p)
			pgxd, err := c.runPGXD(parts, core.Options{})
			if err != nil {
				return nil, err
			}
			spark, err := c.runSpark(parts)
			if err != nil {
				return nil, err
			}
			pg := float64(pgxd.Total.Microseconds())
			sp := float64(spark.Total.Microseconds())
			if i == 0 {
				pgxdBase, sparkBase = pg, sp
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", p),
				ms(pgxd.Total),
				fmt.Sprintf("%.2fx", pgxdBase/pg),
				ms(spark.Total),
				fmt.Sprintf("%.2fx", sparkBase/sp),
				fmt.Sprintf("%.2fx", sp/pg),
			})
		}
		t.Notes = append(t.Notes, "speedups are relative to the smallest processor count",
			"paper shape: PGX.D is ~2x-3x faster than Spark and scales better")
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig7 breaks the execution time into the six pipeline steps for the
// normal and right-skewed distributions (paper Figure 7).
func Fig7(c Config) ([]Table, error) {
	c = c.WithDefaults()
	var tables []Table
	for _, kind := range []dist.Kind{dist.Normal, dist.RightSkewed} {
		t := Table{
			ID:     "fig7",
			Title:  fmt.Sprintf("Per-step execution time (ms), %s distribution", kind),
			Header: []string{"step"},
		}
		reports := make([]*core.Report, len(c.Procs))
		for i, p := range c.Procs {
			t.Header = append(t.Header, fmt.Sprintf("p=%d", p))
			rep, err := c.runPGXD(c.parts(kind, p), core.Options{})
			if err != nil {
				return nil, err
			}
			reports[i] = rep
		}
		for s := core.Step(0); s < core.NumSteps; s++ {
			row := []string{s.String()}
			for _, rep := range reports {
				row = append(row, ms(rep.Steps[s]))
			}
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes,
			"paper shape: send/recv costs less than the compute steps (bandwidth-efficient, asynchronous exchange)")
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig8 compares PGX.D and Spark on the Twitter-like graph degree dataset
// (paper Figure 8).
func Fig8(c Config) ([]Table, error) {
	c = c.WithDefaults()
	degrees := c.twitterDegrees()
	t := Table{
		ID:     "fig8",
		Title:  "Twitter-like graph degree sort: PGX.D vs Spark",
		Header: []string{"procs", "pgxd_ms", "spark_ms", "pgxd_vs_spark", "pgxd_imbalance", "spark_imbalance"},
	}
	for _, p := range c.Procs {
		parts := distribute(degrees, p)
		pgxd, err := c.runPGXD(parts, core.Options{})
		if err != nil {
			return nil, err
		}
		spark, err := c.runSpark(parts)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			ms(pgxd.Total),
			ms(spark.Total),
			fmt.Sprintf("%.2fx", float64(spark.Total)/float64(pgxd.Total)),
			fmt.Sprintf("%.3f", pgxd.LoadImbalance()),
			fmt.Sprintf("%.3f", spark.LoadImbalance()),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("RMAT scale %d: %d vertices, degree keys are duplicate-heavy", c.TwitterScale, len(degrees)),
		"paper shape: ~2.6x over Spark at the top of the sweep; PGX.D stays balanced on duplicates")
	return []Table{t}, nil
}

// Fig9 sweeps the sample-size factor and reports communication overhead
// and total time (paper Figure 9).
func Fig9(c Config) ([]Table, error) {
	c = c.WithDefaults()
	degrees := c.twitterDegrees()
	p := c.Procs[len(c.Procs)/2]
	parts := distribute(degrees, p)
	factors := []float64{0.004, 0.04, 0.4, 1.0, 1.004, 1.04, 1.4}
	t := Table{
		ID:    "fig9",
		Title: fmt.Sprintf("Sample-size sweep on Twitter-like degrees, p=%d (X = 256KB/p)", p),
		Header: []string{"factor", "samples/proc", "comm_bytes", "comm_ms",
			"total_ms", "imbalance"},
	}
	for _, f := range factors {
		rep, err := c.runPGXD(parts, core.Options{SampleFactor: f})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3fX", f),
			fmt.Sprintf("%d", rep.SamplesPerProc),
			fmt.Sprintf("%d", rep.BytesSent),
			ms(rep.CommTime),
			ms(rep.Total),
			fmt.Sprintf("%.3f", rep.LoadImbalance()),
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: tiny samples raise both imbalance and communication overhead;",
		"X (factor 1.0) gives balance at low overhead; oversampling only adds master-side cost")
	return []Table{t}, nil
}

// Fig10 reports the min and max per-processor loads for three sample-size
// factors across the processor sweep (paper Figure 10).
func Fig10(c Config) ([]Table, error) {
	c = c.WithDefaults()
	degrees := c.twitterDegrees()
	factors := []float64{0.004, 1.0, 1.4}
	t := Table{
		ID:     "fig10",
		Title:  "Per-processor load (min/max entries) vs sample size, Twitter-like degrees",
		Header: []string{"procs"},
	}
	for _, f := range factors {
		t.Header = append(t.Header,
			fmt.Sprintf("min@%.3fX", f), fmt.Sprintf("max@%.3fX", f))
	}
	for _, p := range c.Procs {
		parts := distribute(degrees, p)
		row := []string{fmt.Sprintf("%d", p)}
		for _, f := range factors {
			rep, err := c.runPGXD(parts, core.Options{SampleFactor: f})
			if err != nil {
				return nil, err
			}
			minPart, maxPart := rep.MinMaxPart()
			row = append(row, fmt.Sprintf("%d", minPart), fmt.Sprintf("%d", maxPart))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper shape: 0.004X leaves large min/max gaps; X and 1.4X stay balanced everywhere")
	return []Table{t}, nil
}

// Fig11 reports memory use versus processor count on the Twitter-like
// dataset (paper Figure 11): resident entry storage (the RSS analogue) and
// the peak of temporary allocations.
func Fig11(c Config) ([]Table, error) {
	c = c.WithDefaults()
	degrees := c.twitterDegrees()
	t := Table{
		ID:    "fig11",
		Title: "Memory per processor on Twitter-like degrees (MB)",
		Header: []string{"procs", "resident_total", "resident_per_proc",
			"temp_peak_per_proc", "go_heap"},
	}
	mb := func(b int64) string { return fmt.Sprintf("%.2f", float64(b)/(1<<20)) }
	for _, p := range c.Procs {
		parts := distribute(degrees, p)
		var msBefore runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		rep, err := c.runPGXD(parts, core.Options{})
		if err != nil {
			return nil, err
		}
		var msAfter runtime.MemStats
		runtime.ReadMemStats(&msAfter)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			mb(rep.ResidentBytes),
			mb(rep.ResidentBytes / int64(p)),
			mb(rep.TempPeakBytes),
			mb(int64(msAfter.HeapAlloc)),
		})
	}
	t.Notes = append(t.Notes,
		"resident = entry storage (key + origin per entry, the paper's RSS);",
		"temp peak = merge scratch + receive assembly, freed at the end (the paper's light-blue bars)",
		fmt.Sprintf("dataset: %d degree keys", len(degrees)))
	return []Table{t}, nil
}
