package harness

import (
	"fmt"
	"time"

	"pgxsort/internal/core"
	"pgxsort/internal/dist"
	"pgxsort/internal/transport"
)

// Chaos measures the hardened TCP transport under injected connection
// resets: a clean TCP run against runs with ever more aggressive reset
// schedules. Every run must still produce a correct sort — the table
// reports what the robustness costs (reconnects, retransmitted frames,
// stall, wall time), which is the transport-layer half of the paper's
// claim that communication handling, not the sort kernel, decides
// cluster performance.
func Chaos(c Config) ([]Table, error) {
	c = c.WithDefaults()
	// The experiment manages its own loopback mesh (its reset schedules
	// assume it); refuse explicit addresses rather than silently ignore
	// them — same contract as runPGXD.
	if len(c.ListenAddrs) > 0 || len(c.PeerAddrs) > 0 {
		return nil, fmt.Errorf("harness: the chaos experiment manages its own loopback mesh; -listen/-peers are not supported")
	}
	p := c.Procs[0]
	parts := c.parts(dist.Uniform, p)
	t := Table{
		ID:    "chaos",
		Title: fmt.Sprintf("TCP transport under injected connection resets (p=%d)", p),
		Header: []string{"reset_every", "total_ms", "exchange_ms",
			"reconnects", "frames_resent", "worst_stall_ms", "sorted"},
	}
	// Small buffers split the exchange into many frames so the reset
	// schedules actually land mid-exchange.
	const bufferBytes = 8192
	tcpCfg := transport.Config{
		RetryBase:    2 * time.Millisecond,
		RetryMax:     50 * time.Millisecond,
		WindowFrames: 8,
	}
	for _, resetEvery := range []int{0, 10, 3} {
		opts := core.Options{
			Procs:          p,
			WorkersPerProc: c.Workers,
			BufferBytes:    bufferBytes,
			Transport:      transport.KindTCP,
			TCP:            tcpCfg,
		}
		var faults *transport.FaultPlan
		if resetEvery > 0 {
			faults = &transport.FaultPlan{ResetEvery: resetEvery}
			opts.Faults = faults
		}
		eng, err := newU64Engine(opts)
		if err != nil {
			return nil, err
		}
		res, err := eng.Sort(parts)
		eng.Close()
		if err != nil {
			return nil, fmt.Errorf("chaos reset_every=%d: %w", resetEvery, err)
		}
		sorted := "yes"
		if err := res.Verify(parts); err != nil {
			sorted = "NO: " + err.Error()
		}
		rep := res.Report
		label := "none"
		if resetEvery > 0 {
			label = fmt.Sprintf("%d", resetEvery)
		}
		t.Rows = append(t.Rows, []string{
			label,
			ms(rep.Total), ms(rep.Steps[core.StepExchange]),
			fmt.Sprintf("%d", rep.Reconnects),
			fmt.Sprintf("%d", rep.FramesResent),
			ms(rep.SendStall),
			sorted,
		})
	}
	t.Notes = append(t.Notes,
		"every row must say sorted=yes: resets are recovered by reconnect + retransmit, not tolerated as data loss",
		fmt.Sprintf("buffer=%dB so the exchange spans many frames per link", bufferBytes))
	return []Table{t}, nil
}
