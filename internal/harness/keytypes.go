package harness

import (
	"fmt"

	"pgxsort/internal/comm"
	"pgxsort/internal/core"
	"pgxsort/internal/dist"
)

// KeyTypesExp sweeps the generalized key/record stack: every key domain
// (uint64, float64, string — or just Config.KeyType when set) sorted
// key-only and with per-key payloads attached (record path), on the
// duplicate-heavy right-skewed distribution so the investigator stays in
// play. Each key type is the order-preserving image of the same uint64
// draws, so the distribution shape is held constant while only the key
// representation and record size vary; the keytype/recbytes columns land
// in the CI trajectory CSV.
func KeyTypesExp(c Config) ([]Table, error) {
	c = c.WithDefaults()
	p := c.Procs[0]
	kinds := []dist.KeyType{c.KeyType}
	if c.KeyType == "" {
		kinds = dist.KeyTypes
	}
	recSweep := []int{0, 64}
	if c.RecBytes > 0 {
		recSweep = []int{0, c.RecBytes}
	}
	t := Table{
		ID:    "keytypes",
		Title: fmt.Sprintf("Key domains and record sizes, right-skewed, p=%d (ms)", p),
		Header: []string{"keytype", "recbytes", "sortpath", "total_ms",
			"localsort_ms", "exchange_ms", "bytes_sent", "imbalance"},
	}
	for _, kt := range kinds {
		for _, rb := range recSweep {
			rep, err := c.runKeyType(kt, p, rb)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				string(kt),
				fmt.Sprintf("%d", rb),
				rep.LocalSortPath,
				ms(rep.Total),
				ms(rep.Steps[core.StepLocalSort]),
				ms(rep.Steps[core.StepExchange]),
				fmt.Sprintf("%d", rep.BytesSent),
				fmt.Sprintf("%.3f", rep.LoadImbalance()),
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("N=%d keys, %d workers/proc, transport=%s", c.N, c.Workers, c.Transport),
		"each key type is the order-preserving image of the same uint64 draws (same duplicates, same skew);",
		"string keys radix-sort on their 8-byte prefix norm with a comparison fallback over prefix-equal runs;",
		"recbytes > 0 routes through the record path: payloads ride the exchange and count in bytes_sent")
	return []Table{t}, nil
}

// runKeyType sorts one (keytype, recbytes) point: the right-skewed parts
// mapped into the key domain, with payloads attached when recBytes > 0.
func (c Config) runKeyType(kt dist.KeyType, procs, recBytes int) (*core.Report, error) {
	var payloads [][][]byte
	if recBytes > 0 {
		payloads = make([][][]byte, procs)
		per := c.N / procs
		for i := range payloads {
			payloads[i] = dist.Gen{Seed: c.Seed + uint64(i)*7919}.Payloads(per, recBytes)
		}
	}
	u64parts := c.parts(dist.RightSkewed, procs)
	switch kt {
	case dist.KeyUint64:
		return runKeyed(c, u64parts, comm.U64Codec{}, payloads, core.Options{})
	case dist.KeyFloat64:
		parts := make([][]float64, len(u64parts))
		for i, up := range u64parts {
			parts[i] = make([]float64, len(up))
			for j, u := range up {
				parts[i][j] = dist.FloatKey(u)
			}
		}
		return runKeyed(c, parts, comm.F64Codec{}, payloads, core.Options{})
	case dist.KeyString:
		// The shared prefix collapses the radix norms' top bytes, keeping
		// the prefix-collision fallback pass honest in the measurement.
		parts := make([][]string, len(u64parts))
		for i, up := range u64parts {
			parts[i] = make([]string, len(up))
			for j, u := range up {
				parts[i][j] = dist.StringKey("sk/", u, 64)
			}
		}
		return runKeyed(c, parts, comm.StringCodec{}, payloads, core.Options{})
	}
	return nil, fmt.Errorf("harness: unknown key type %q", kt)
}
