package harness

import (
	"fmt"

	"pgxsort/internal/baselines"
	"pgxsort/internal/comm"
	"pgxsort/internal/core"
	"pgxsort/internal/dist"
	"pgxsort/internal/transport"
)

// AblationInvestigator times and balance-checks the investigator on the
// duplicate-heavy distributions (DESIGN.md ablation #1).
func AblationInvestigator(c Config) ([]Table, error) {
	c = c.WithDefaults()
	p := c.Procs[0]
	t := Table{
		ID:    "ablation-investigator",
		Title: fmt.Sprintf("Investigator on/off, p=%d", p),
		Header: []string{"distribution", "investigator", "total_ms",
			"imbalance", "max_part", "min_part"},
	}
	for _, kind := range []dist.Kind{dist.RightSkewed, dist.Exponential, dist.Constant} {
		parts := c.parts(kind, p)
		for _, disable := range []bool{false, true} {
			rep, err := c.runPGXD(parts, core.Options{DisableInvestigator: disable})
			if err != nil {
				return nil, err
			}
			minPart, maxPart := rep.MinMaxPart()
			label := "on"
			if disable {
				label = "off"
			}
			t.Rows = append(t.Rows, []string{
				kind.String(), label, ms(rep.Total),
				fmt.Sprintf("%.3f", rep.LoadImbalance()),
				fmt.Sprintf("%d", maxPart), fmt.Sprintf("%d", minPart),
			})
		}
	}
	t.Notes = append(t.Notes, "off = Figure 3b naive binary search; on = Figure 3c")
	return []Table{t}, nil
}

// AblationMerge compares the balanced pairwise handler against the
// loser-tree k-way merge in step 6 (DESIGN.md ablation #2).
func AblationMerge(c Config) ([]Table, error) {
	c = c.WithDefaults()
	t := Table{
		ID:     "ablation-merge",
		Title:  "Step-6 merge strategy: balanced pairwise (Fig 2) vs k-way loser tree",
		Header: []string{"procs", "balanced_ms", "kway_ms", "balanced_merge_step_ms", "kway_merge_step_ms"},
	}
	for _, p := range c.Procs {
		parts := c.parts(dist.Uniform, p)
		bal, err := c.runPGXD(parts, core.Options{Merge: core.MergeBalanced})
		if err != nil {
			return nil, err
		}
		kway, err := c.runPGXD(parts, core.Options{Merge: core.MergeKWay})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			ms(bal.Total), ms(kway.Total),
			ms(bal.Steps[core.StepFinalMerge]), ms(kway.Steps[core.StepFinalMerge]),
		})
	}
	t.Notes = append(t.Notes, "the balanced handler parallelizes each round; the loser tree is sequential")
	return []Table{t}, nil
}

// AblationAsync compares the asynchronous overlapped exchange against the
// bulk-synchronous send-barrier-receive schedule (DESIGN.md ablation #3).
func AblationAsync(c Config) ([]Table, error) {
	c = c.WithDefaults()
	t := Table{
		ID:     "ablation-async",
		Title:  "Exchange schedule: asynchronous overlap vs bulk-synchronous barrier",
		Header: []string{"procs", "async_ms", "sync_ms", "async_exchange_ms", "sync_exchange_ms"},
	}
	for _, p := range c.Procs {
		parts := c.parts(dist.Uniform, p)
		as, err := c.runPGXD(parts, core.Options{})
		if err != nil {
			return nil, err
		}
		sy, err := c.runPGXD(parts, core.Options{SyncExchange: true})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			ms(as.Total), ms(sy.Total),
			ms(as.Steps[core.StepExchange]), ms(sy.Steps[core.StepExchange]),
		})
	}
	return []Table{t}, nil
}

// AblationTransport compares the zero-copy channel transport against real
// TCP loopback sockets (DESIGN.md ablation #4).
func AblationTransport(c Config) ([]Table, error) {
	c = c.WithDefaults()
	t := Table{
		ID:     "ablation-transport",
		Title:  "Transport: in-process channels (RDMA-like) vs TCP loopback",
		Header: []string{"procs", "chan_ms", "tcp_ms", "tcp_penalty"},
	}
	for _, p := range c.Procs {
		parts := c.parts(dist.Uniform, p)
		ch, err := c.runPGXD(parts, core.Options{Transport: transport.KindChan})
		if err != nil {
			return nil, err
		}
		tc, err := c.runPGXD(parts, core.Options{Transport: transport.KindTCP})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			ms(ch.Total), ms(tc.Total),
			fmt.Sprintf("%.2fx", float64(tc.Total)/float64(ch.Total)),
		})
	}
	t.Notes = append(t.Notes, "tcp serializes every entry and crosses the kernel; chan moves slices")
	return []Table{t}, nil
}

// Baselines compares all four sorting systems on a uniform dataset:
// PGX.D sample sort, Spark sortByKey, distributed bitonic, radix.
func Baselines(c Config) ([]Table, error) {
	c = c.WithDefaults()
	// Bitonic needs a power-of-two processor count.
	p := 1
	for p*2 <= c.Procs[0] {
		p *= 2
	}
	keys := dist.Gen{Kind: dist.Uniform, Seed: c.Seed}.Keys(c.N - c.N%p)
	// Radix buckets use the top bits; spread the domain across them.
	spread := make([]uint64, len(keys))
	for i, k := range keys {
		spread[i] = k << 43
	}
	parts := distribute(spread, p)
	t := Table{
		ID:     "baselines",
		Title:  fmt.Sprintf("All sorters, uniform keys, p=%d", p),
		Header: []string{"system", "total_ms", "bytes_sent", "imbalance"},
	}

	pgxd, err := c.runPGXD(parts, core.Options{})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"pgxd-samplesort", ms(pgxd.Total),
		fmt.Sprintf("%d", pgxd.BytesSent), fmt.Sprintf("%.3f", pgxd.LoadImbalance())})

	sp, err := c.runSpark(parts)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"spark-sortByKey", ms(sp.Total),
		fmt.Sprintf("%d", sp.ShuffleBytes), fmt.Sprintf("%.3f", sp.LoadImbalance())})

	_, bit, err := baselines.BitonicSort(parts, comm.U64Codec{}, c.Transport)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"bitonic", ms(bit.Total),
		fmt.Sprintf("%d", bit.BytesSent), imbalanceOf(bit.PartSizes, bit.N)})

	_, rad, err := baselines.RadixSort(parts, c.Transport)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"radix", ms(rad.Total),
		fmt.Sprintf("%d", rad.BytesSent), imbalanceOf(rad.PartSizes, rad.N)})

	t.Notes = append(t.Notes,
		"bitonic ships entire local arrays every compare-split (paper §II);",
		"radix balance depends on key-bit entropy (paper §II)")
	return []Table{t}, nil
}

func imbalanceOf(sizes []int, n int) string {
	if n == 0 || len(sizes) == 0 {
		return "1.000"
	}
	maxPart := 0
	for _, s := range sizes {
		if s > maxPart {
			maxPart = s
		}
	}
	return fmt.Sprintf("%.3f", float64(maxPart)/(float64(n)/float64(len(sizes))))
}
