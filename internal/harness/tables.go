package harness

import (
	"fmt"
	"runtime"

	"pgxsort/internal/core"
	"pgxsort/internal/dist"
)

// Table1 prints the experimental environment (paper Table I lists the
// authors' cluster; we report the host this reproduction runs on).
func Table1(c Config) ([]Table, error) {
	c = c.WithDefaults()
	t := Table{
		ID:     "table1",
		Title:  "Experimental environment",
		Header: []string{"item", "detail"},
		Rows: [][]string{
			{"os/arch", runtime.GOOS + "/" + runtime.GOARCH},
			{"go", runtime.Version()},
			{"cpus", fmt.Sprintf("%d", runtime.NumCPU())},
			{"gomaxprocs", fmt.Sprintf("%d", runtime.GOMAXPROCS(0))},
			{"transport", c.Transport},
			{"workers/proc", fmt.Sprintf("%d", c.Workers)},
			{"buffer", "256KB (paper's read-buffer size)"},
		},
		Notes: []string{
			"paper Table I: 32x Xeon E5-2660, 256GB DDR3, Mellanox 56Gb/s IB;",
			"this reproduction simulates the cluster in one process (see DESIGN.md)",
		},
	}
	return []Table{t}, nil
}

// Table2 reports the share of data on each processor after sorting with
// p=10 across the four distributions (paper Table II) — the load-balance
// headline result for duplicate-heavy inputs.
func Table2(c Config) ([]Table, error) {
	c = c.WithDefaults()
	const procs = 10
	t := Table{
		ID:     "table2",
		Title:  "Data share per processor after sorting, p=10",
		Header: []string{"distribution"},
	}
	for i := 0; i < procs; i++ {
		t.Header = append(t.Header, fmt.Sprintf("proc%d", i))
	}
	for _, kind := range dist.Kinds {
		// The paper's duplicate-heavy cases quantize into few distinct
		// values; narrow the domain for the skewed kinds the way Figure 4
		// describes them ("many duplicated data entries").
		parts := c.parts(kind, procs)
		rep, err := c.runPGXD(parts, core.Options{})
		if err != nil {
			return nil, err
		}
		row := []string{kind.String()}
		for _, sz := range rep.PartSizes() {
			row = append(row, pct(sz, rep.N))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("N=%d keys; paper shape: every processor holds ~10%% for all four distributions", c.N))

	// Companion table: the same inputs with the investigator disabled,
	// demonstrating what Table II would look like without the paper's
	// contribution.
	t2 := Table{
		ID:     "table2",
		Title:  "Same inputs with the investigator DISABLED (ablation)",
		Header: t.Header,
	}
	for _, kind := range []dist.Kind{dist.RightSkewed, dist.Exponential} {
		parts := c.parts(kind, procs)
		rep, err := c.runPGXD(parts, core.Options{DisableInvestigator: true})
		if err != nil {
			return nil, err
		}
		row := []string{kind.String()}
		for _, sz := range rep.PartSizes() {
			row = append(row, pct(sz, rep.N))
		}
		t2.Rows = append(t2.Rows, row)
	}
	t2.Notes = append(t2.Notes, "duplicated splitters all land on one processor without the investigator (Figure 3b)")
	return []Table{t, t2}, nil
}

// Table3 reports each processor's key range after sorting the
// Twitter-like degrees with 8, 12 and 16 processors (paper Table III).
func Table3(c Config) ([]Table, error) {
	c = c.WithDefaults()
	degrees := c.twitterDegrees()
	sweeps := []int{8, 12, 16}
	t := Table{
		ID:     "table3",
		Title:  "Key range per processor after sorting Twitter-like degrees",
		Header: []string{"proc"},
	}
	for _, p := range sweeps {
		t.Header = append(t.Header, fmt.Sprintf("p=%d", p))
	}
	ranges := make([][]string, 16)
	for i := range ranges {
		ranges[i] = make([]string, len(sweeps))
		for j := range ranges[i] {
			ranges[i][j] = "-"
		}
	}
	for j, p := range sweeps {
		eng, err := c.runPGXDResult(distribute(degrees, p), core.Options{})
		if err != nil {
			return nil, err
		}
		for _, pr := range eng.PartRanges() {
			if pr.Count == 0 {
				ranges[pr.Proc][j] = "(empty)"
				continue
			}
			ranges[pr.Proc][j] = fmt.Sprintf("%d - %d", pr.Min, pr.Max)
		}
	}
	for i := 0; i < 16; i++ {
		row := append([]string{fmt.Sprintf("proc%d", i)}, ranges[i]...)
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper shape: ranges are non-overlapping and increase with processor id",
		"(smaller keys gather on smaller ids, §IV-C)")
	return []Table{t}, nil
}

// runPGXDResult is runPGXD but returns the full result (for range tables).
func (c Config) runPGXDResult(parts [][]uint64, opts core.Options) (*core.Result[uint64], error) {
	opts.Procs = len(parts)
	if opts.WorkersPerProc == 0 {
		opts.WorkersPerProc = c.Workers
	}
	if opts.Transport == "" {
		opts.Transport = c.Transport
	}
	eng, err := newU64Engine(opts)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	return eng.Sort(parts)
}
