// Package harness regenerates every table and figure of the paper's
// evaluation section (§V) from the engines in this repository. Each
// experiment returns text tables whose rows/series match what the paper
// plots; the CLI in cmd/pgxsort-bench renders them and can export CSV.
package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Table is a rendered experiment result: the rows/series of one figure or
// table from the paper.
type Table struct {
	ID     string // experiment id, e.g. "fig5"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// WriteCSV saves the table as <dir>/<id>[-<n>].csv and returns the path.
func (t *Table) WriteCSV(dir string, n int) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := t.ID
	if n > 0 {
		name = fmt.Sprintf("%s-%d", t.ID, n)
	}
	path := filepath.Join(dir, name+".csv")
	return path, os.WriteFile(path, []byte(t.CSV()), 0o644)
}
