package harness

import (
	"fmt"
	"sort"
	"strings"
)

// Experiment regenerates one or more paper tables/figures.
type Experiment struct {
	ID   string
	Desc string
	Run  func(Config) ([]Table, error)
}

// registry maps experiment ids to runners, one per paper table/figure plus
// the DESIGN.md ablations.
var registry = []Experiment{
	{"table1", "experimental environment (paper Table I)", Table1},
	{"fig4", "input data distributions (paper Figure 4)", Fig4},
	{"fig5", "PGX.D total sort times per distribution (paper Figure 5)", Fig5},
	{"fig6", "strong scaling vs Spark (paper Figure 6)", Fig6},
	{"fig7", "per-step time breakdown (paper Figure 7)", Fig7},
	{"table2", "load balance at p=10 (paper Table II)", Table2},
	{"fig8", "Twitter-like degree sort vs Spark (paper Figure 8)", Fig8},
	{"table3", "per-processor key ranges (paper Table III)", Table3},
	{"fig9", "sample-size sweep (paper Figure 9)", Fig9},
	{"fig10", "min/max load vs sample size (paper Figure 10)", Fig10},
	{"fig11", "memory consumption (paper Figure 11)", Fig11},
	{"pipeline", "SortMany schedules: sequential vs naive vs pipelined (ISSUE 2)", Fig56Pipeline},
	{"localsort", "local-sort paths: comparison vs radix fast path (ISSUE 3)", LocalSortPaths},
	{"chaos", "TCP transport under injected connection resets (ISSUE 4)", Chaos},
	{"mergeoverlap", "streaming exchange–merge overlap vs barriered merge (ISSUE 5)", MergeOverlap},
	{"keytypes", "key domains and record sizes: uint64/float64/string ± payloads (ISSUE 6)", KeyTypesExp},
	{"service", "sorting-as-a-service: concurrent clients vs pgxsortd (ISSUE 7)", ServiceExp},
	{"soak", "self-healing soak: jobs under a randomized failpoint storm (ISSUE 8)", SoakExp},
	{"spill", "out-of-core spill tier: memory budget vs throughput, byte-identity enforced (ISSUE 9)", SpillExp},
	{"memstress", "bounded-memory service: body size vs budget, byte-identity and peak ceiling enforced (ISSUE 10)", MemStressExp},
	{"ablation-investigator", "investigator on/off (DESIGN.md)", AblationInvestigator},
	{"ablation-merge", "balanced vs k-way merge (DESIGN.md)", AblationMerge},
	{"ablation-async", "async vs bulk-synchronous exchange (DESIGN.md)", AblationAsync},
	{"ablation-transport", "chan vs tcp transport (DESIGN.md)", AblationTransport},
	{"baselines", "all four sorters side by side (DESIGN.md)", Baselines},
}

// Experiments lists all registered experiments in registration order.
func Experiments() []Experiment {
	return append([]Experiment(nil), registry...)
}

// Lookup resolves an experiment id (exact match).
func Lookup(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (known: %s)",
		id, strings.Join(ids, ", "))
}

// Run executes the named experiments ("all" runs the full registry) and
// returns the produced tables in order.
func Run(ids []string, c Config) ([]Table, error) {
	var selected []Experiment
	if len(ids) == 1 && ids[0] == "all" {
		selected = Experiments()
	} else {
		for _, id := range ids {
			e, err := Lookup(id)
			if err != nil {
				return nil, err
			}
			selected = append(selected, e)
		}
	}
	var tables []Table
	for _, e := range selected {
		ts, err := e.Run(c)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", e.ID, err)
		}
		tables = append(tables, ts...)
	}
	return tables, nil
}
