package harness

import (
	"fmt"

	"pgxsort/internal/comm"
	"pgxsort/internal/core"
	"pgxsort/internal/dist"
)

// SpillExp sweeps the out-of-core tier (ISSUE 9): the same dataset sorts
// under per-node memory budgets of unlimited, 1/2, 1/10 and 1/20 of one
// node's resident entry bytes, and every budgeted run must be
// byte-identical to the unbudgeted reference while reporting how much it
// spilled. The CSV rows chart the budget/throughput trade: total_ms
// against spill_bytes and read_amp (spill bytes read back per byte
// written — 1.00 means every spilled byte was fetched exactly once, the
// block-file format's designed amplification).
func SpillExp(c Config) ([]Table, error) {
	c = c.WithDefaults()
	p := c.Procs[0]
	parts := c.parts(dist.Uniform, p)

	// MergeKWay on every point: the budgeted runs' stream merge is
	// byte-identical to the loser tree (same source-order tie-break),
	// so the differential check below can demand exact equality.
	opts, err := c.engineOpts(p, core.Options{Merge: core.MergeKWay, MemoryBudget: -1})
	if err != nil {
		return nil, err
	}
	ref, refRep, err := spillRun(opts, parts)
	if err != nil {
		return nil, err
	}
	if refRep.SpillBytes != 0 {
		return nil, fmt.Errorf("unbudgeted reference spilled %d bytes", refRep.SpillBytes)
	}
	perNode := refRep.ResidentBytes / int64(p)

	t := Table{
		ID: "spill",
		Title: fmt.Sprintf("Out-of-core spill tier: memory budget vs throughput, p=%d, %d keys/node",
			p, len(parts[0])),
		Header: []string{"budget", "budget_bytes", "total_ms", "spill_bytes",
			"spill_reads", "read_amp", "temp_peak_bytes", "identical"},
	}
	points := []struct {
		label string
		denom int64 // 0 = unlimited
	}{
		{"unlimited", 0}, {"1/2", 2}, {"1/10", 10}, {"1/20", 20},
	}
	for _, pt := range points {
		o := opts
		o.MemoryBudget = -1
		if pt.denom > 0 {
			o.MemoryBudget = perNode / pt.denom
		}
		got, rep, err := spillRun(o, parts)
		if err != nil {
			return nil, fmt.Errorf("budget %s: %w", pt.label, err)
		}
		if err := sameEntries(ref, got); err != nil {
			return nil, fmt.Errorf("budget %s not byte-identical to unbudgeted run: %w", pt.label, err)
		}
		if pt.denom >= 10 && rep.SpillBytes == 0 {
			return nil, fmt.Errorf("budget %s (%d bytes) did not spill", pt.label, o.MemoryBudget)
		}
		readAmp := "-"
		if rep.SpillBytes > 0 {
			readAmp = fmt.Sprintf("%.2f", float64(rep.SpillReads)/float64(rep.SpillBytes))
		}
		budgetBytes := int64(0)
		if pt.denom > 0 {
			budgetBytes = o.MemoryBudget
		}
		t.Rows = append(t.Rows, []string{
			pt.label,
			fmt.Sprintf("%d", budgetBytes),
			ms(rep.Total),
			fmt.Sprintf("%d", rep.SpillBytes),
			fmt.Sprintf("%d", rep.SpillReads),
			readAmp,
			fmt.Sprintf("%d", rep.TempPeakBytes),
			"yes", // sameEntries above would have errored otherwise
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("N=%d keys, %d workers/proc, merge=kway, uniform keys", c.N, c.Workers),
		fmt.Sprintf("budgets are fractions of one node's resident entry bytes (%d)", perNode),
		"every budgeted run is verified byte-identical (key, origin, index) to the",
		"unbudgeted reference; read_amp is spill bytes read back per byte written")
	return []Table{t}, nil
}

// spillRun sorts parts on a fresh engine and returns the flattened
// output with its report (single rep: the differential check needs the
// entries, not just the fastest timing).
func spillRun(opts core.Options, parts [][]uint64) ([]comm.Entry[uint64], *core.Report, error) {
	eng, err := newU64Engine(opts)
	if err != nil {
		return nil, nil, err
	}
	defer eng.Close()
	res, err := eng.Sort(parts)
	if err != nil {
		return nil, nil, err
	}
	var flat []comm.Entry[uint64]
	for _, part := range res.Parts {
		flat = append(flat, part...)
	}
	return flat, &res.Report, nil
}

// sameEntries demands exact (key, origin, index) equality.
func sameEntries(a, b []comm.Entry[uint64]) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d entries vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Proc != b[i].Proc || a[i].Index != b[i].Index {
			return fmt.Errorf("entry %d: %+v != %+v", i, a[i], b[i])
		}
	}
	return nil
}
