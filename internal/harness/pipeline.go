package harness

import (
	"context"
	"fmt"
	"time"

	"pgxsort/internal/core"
	"pgxsort/internal/dist"
)

// PipelineMode is one SortMany schedule under comparison.
type PipelineMode struct {
	Name string
	Opts core.SortManyOpts
}

// PipelineModes returns the SortMany schedules the pipeline sweep and
// the root BenchmarkSortManyPipeline both compare, in table-column
// order: sequential, naive-concurrent, pipelined with the given cap.
func PipelineModes(inflight int) []PipelineMode {
	return []PipelineMode{
		{"sequential", core.SortManyOpts{MaxInflight: 1}},
		{"naive", core.SortManyOpts{Naive: true}},
		{"pipelined", core.SortManyOpts{MaxInflight: inflight}},
	}
}

// Fig56Pipeline measures multi-dataset SortMany throughput on the Figure
// 5/6 dataset mix (one dataset per input distribution) across the
// processor sweep, comparing three schedules over one engine: strictly
// sequential, naive-concurrent (every dataset fired at once, the
// pre-scheduler behaviour), and the pipelined scheduler that overlaps one
// dataset's exchange with another's local compute.
func Fig56Pipeline(c Config) ([]Table, error) {
	c = c.WithDefaults()
	modes := PipelineModes(c.Inflight)
	t := Table{
		ID:    "pipeline",
		Title: fmt.Sprintf("SortMany schedules on the Figure 5/6 mix (%d datasets, ms)", len(dist.Kinds)),
		Header: []string{"procs", "seq_ms", "naive_ms", "pipe_ms",
			"pipe_vs_seq", "pipe_vs_naive", "pipe_exch_wait_ms"},
	}
	for _, p := range c.Procs {
		datasets := c.datasetMix(p)
		times := make([]time.Duration, len(modes))
		var exchWait time.Duration
		for m, mode := range modes {
			best := time.Duration(0)
			for r := 0; r < c.Reps; r++ {
				eng, err := newU64Engine(core.Options{
					Procs:          p,
					WorkersPerProc: c.Workers,
					Transport:      c.Transport,
				})
				if err != nil {
					return nil, err
				}
				start := time.Now()
				results, err := eng.SortManyWith(context.Background(), mode.Opts, datasets...)
				elapsed := time.Since(start)
				eng.Close()
				if err != nil {
					return nil, err
				}
				if best == 0 || elapsed < best {
					best = elapsed
					if mode.Name == "pipelined" {
						exchWait = 0
						for _, res := range results {
							exchWait += res.Report.Sched.StageWait[core.StageExchange]
						}
					}
				}
			}
			times[m] = best
		}
		seq, naive, pipe := times[0], times[1], times[2]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			ms(seq),
			ms(naive),
			ms(pipe),
			fmt.Sprintf("%.2fx", float64(seq)/float64(pipe)),
			fmt.Sprintf("%.2fx", float64(naive)/float64(pipe)),
			ms(exchWait),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("N=%d keys per dataset, inflight cap %d, %d workers/proc, transport=%s",
			c.N, c.Inflight, c.Workers, c.Transport),
		"pipelined admits <=cap datasets and serializes the communication stages,",
		"so one dataset's exchange overlaps another's local sort/merge instead of contending")
	return []Table{t}, nil
}

// datasetMix builds the Figure 5/6 multi-dataset batch: one dataset per
// input distribution, each of c.N keys distributed over p processors.
func (c Config) datasetMix(p int) [][][]uint64 {
	datasets := make([][][]uint64, len(dist.Kinds))
	for d, kind := range dist.Kinds {
		datasets[d] = c.parts(kind, p)
	}
	return datasets
}
