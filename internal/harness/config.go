package harness

import (
	"cmp"
	"fmt"
	"time"

	"pgxsort/internal/comm"
	"pgxsort/internal/core"
	"pgxsort/internal/dist"
	"pgxsort/internal/graph"
	"pgxsort/internal/spark"
	"pgxsort/internal/transport"
)

// Config scales the experiments. The paper ran 1 billion keys on a
// 32-machine cluster; the defaults here are laptop-scale but preserve the
// figures' shapes (see EXPERIMENTS.md).
type Config struct {
	// N is the total key count for the Figure 4-7 / Table II datasets.
	N int
	// Procs is the processor sweep (paper: 8..52).
	Procs []int
	// Workers is the per-processor worker count (paper: 32).
	Workers int
	// Seed drives all generators.
	Seed uint64
	// Transport selects chan or tcp.
	Transport string
	// TwitterScale is the RMAT scale of the Twitter stand-in (2^scale
	// vertices, 16x edges).
	TwitterScale int
	// Reps repeats each timed point, keeping the fastest run.
	Reps int
	// Inflight is the SortMany scheduler's admission cap for the
	// pipeline experiment (default 2).
	Inflight int
	// LocalSort forces a step-1 path for every experiment that does not
	// sweep paths itself (default core.LocalSortAuto).
	LocalSort core.LocalSortMode
	// Merge forces a step-6 strategy for every experiment that does not
	// sweep strategies itself (default core.MergeAuto — the engine picks
	// the streaming overlap at p >= 4).
	Merge core.MergeStrategy
	// ListenAddrs / PeerAddrs bind the TCP transport to explicit
	// addresses (the CLIs' -listen/-peers flags). They only apply when a
	// sweep point's processor count matches their length; other points
	// error out rather than silently fall back to loopback.
	ListenAddrs []string
	PeerAddrs   []string
	// KeyType restricts the keytypes experiment to one key domain
	// (empty = sweep uint64, float64 and string). The calibrated
	// uint64-space experiments ignore it.
	KeyType dist.KeyType
	// RecBytes is the payload size the keytypes experiment attaches per
	// key on its record-path points (0 = the experiment's default sweep).
	RecBytes int
	// MemBudget applies core.Options.MemoryBudget to every experiment
	// engine that does not set a budget itself (the spill experiment
	// sweeps its own). Zero = unlimited (subject to PGXSORT_MEM_BUDGET);
	// negative = explicitly unlimited.
	MemBudget int64
	// SpillDir is where budgeted engines place their spill run files
	// (empty = system temp dir).
	SpillDir string
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.N <= 0 {
		c.N = 1 << 20
	}
	if len(c.Procs) == 0 {
		c.Procs = []int{8, 16, 32, 52}
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Seed == 0 {
		c.Seed = 20170529 // IPDPS'17 venue date
	}
	if c.Transport == "" {
		c.Transport = transport.KindChan
	}
	if c.TwitterScale <= 0 {
		c.TwitterScale = 16
	}
	if c.Reps <= 0 {
		c.Reps = 1
	}
	if c.Inflight <= 0 {
		c.Inflight = core.DefaultMaxInflight
	}
	return c
}

// parts generates the per-processor input for one distribution. The
// right-skewed and exponential datasets use a value domain that scales
// with N so they contain "many duplicated data entries" at any experiment
// size, as the paper describes them (§V, Figure 4c/4d).
func (c Config) parts(kind dist.Kind, procs int) [][]uint64 {
	var domain uint64 // 0 means the generator default
	switch kind {
	case dist.RightSkewed:
		// The modal value holds ~44% of all keys: it spans several
		// splitters, as in the paper's Table II where the duplicated
		// value covers most of the ten processors.
		domain = 64
	case dist.Exponential:
		// ~63% of keys share the modal value (the investigator needs a
		// value's share to exceed 2/p before splitters duplicate).
		domain = 12
	}
	parts := make([][]uint64, procs)
	per := c.N / procs
	for i := range parts {
		parts[i] = dist.Gen{Kind: kind, Seed: c.Seed + uint64(i)*7919, Domain: domain}.Keys(per)
	}
	return parts
}

// twitterDegrees builds the Twitter stand-in and extracts its degree keys.
func (c Config) twitterDegrees() []uint64 {
	g := graph.TwitterLike(graph.RMATConfig{Scale: c.TwitterScale, EdgeFactor: 16, Seed: c.Seed})
	return g.Degrees(nil)
}

// distribute splits one key slice into equal per-processor parts.
func distribute(keys []uint64, procs int) [][]uint64 {
	parts := make([][]uint64, procs)
	for i := 0; i < procs; i++ {
		lo := i * len(keys) / procs
		hi := (i + 1) * len(keys) / procs
		parts[i] = keys[lo:hi]
	}
	return parts
}

// newU64Engine builds a uint64-keyed engine.
func newU64Engine(opts core.Options) (*core.Engine[uint64], error) {
	return core.NewEngine[uint64](opts, comm.U64Codec{})
}

// engineOpts resolves the per-measurement engine options from the sweep
// config: worker/transport/path defaults and the explicit TCP addresses
// (validated against the point's processor count).
func (c Config) engineOpts(procs int, opts core.Options) (core.Options, error) {
	opts.Procs = procs
	if opts.WorkersPerProc == 0 {
		opts.WorkersPerProc = c.Workers
	}
	if opts.Transport == "" {
		opts.Transport = c.Transport
	}
	if opts.LocalSort == core.LocalSortAuto {
		opts.LocalSort = c.LocalSort
	}
	if opts.Merge == core.MergeAuto {
		opts.Merge = c.Merge
	}
	if opts.MemoryBudget == 0 {
		opts.MemoryBudget = c.MemBudget
	}
	if opts.SpillDir == "" {
		opts.SpillDir = c.SpillDir
	}
	if len(c.ListenAddrs) > 0 || len(c.PeerAddrs) > 0 {
		if len(c.ListenAddrs) > 0 && len(c.ListenAddrs) != opts.Procs {
			return opts, fmt.Errorf("harness: %d listen addresses for a %d-processor point", len(c.ListenAddrs), opts.Procs)
		}
		if len(c.PeerAddrs) > 0 && len(c.PeerAddrs) != opts.Procs {
			return opts, fmt.Errorf("harness: %d peer addresses for a %d-processor point", len(c.PeerAddrs), opts.Procs)
		}
		opts.TCP.Listen = c.ListenAddrs
		opts.TCP.Peers = c.PeerAddrs
	}
	return opts, nil
}

// runPGXD sorts parts on a fresh engine and returns the best-of-Reps
// report. Engines are per-measurement so memory accounting starts clean.
func (c Config) runPGXD(parts [][]uint64, opts core.Options) (*core.Report, error) {
	return runKeyed(c, parts, comm.U64Codec{}, nil, opts)
}

// runKeyed is runPGXD generalized over the key domain: it sorts parts with
// the given codec on a fresh engine per rep and keeps the fastest report.
// When payloads is non-nil (indexed like parts), the keys travel as records
// through a payload-carrying codec instead.
func runKeyed[K cmp.Ordered](c Config, parts [][]K, codec comm.Codec[K],
	payloads [][][]byte, opts core.Options) (*core.Report, error) {
	opts, err := c.engineOpts(len(parts), opts)
	if err != nil {
		return nil, err
	}
	var recs [][]comm.Record[K]
	if payloads != nil {
		codec = comm.NewRecordCodec[K](codec)
		recs = make([][]comm.Record[K], len(parts))
		for i, part := range parts {
			recs[i] = make([]comm.Record[K], len(part))
			for j, k := range part {
				recs[i][j] = comm.Record[K]{Key: k, Payload: payloads[i][j]}
			}
		}
	}
	var best *core.Report
	for r := 0; r < c.Reps; r++ {
		eng, err := core.NewEngine[K](opts, codec)
		if err != nil {
			return nil, err
		}
		var res *core.Result[K]
		if recs != nil {
			res, err = eng.SortRecords(recs)
		} else {
			res, err = eng.Sort(parts)
		}
		eng.Close()
		if err != nil {
			return nil, err
		}
		if best == nil || res.Report.Total < best.Total {
			rep := res.Report
			best = &rep
		}
	}
	return best, nil
}

// runSpark sorts parts with the Spark baseline, cores matched to the PGX.D
// engine's total worker count.
func (c Config) runSpark(parts [][]uint64) (*spark.Report, error) {
	var best *spark.Report
	for r := 0; r < c.Reps; r++ {
		sc := spark.NewContext(spark.Config{
			Partitions: len(parts),
			TotalCores: len(parts) * c.Workers,
			Seed:       c.Seed,
		})
		rdd, err := spark.FromParts(sc, parts)
		if err != nil {
			sc.Close()
			return nil, err
		}
		_, rep := spark.SortByKey(rdd, comm.U64Codec{})
		sc.Close()
		if best == nil || rep.Total < best.Total {
			best = rep
		}
	}
	return best, nil
}

// ms formats a duration in milliseconds with 2 decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

// pct formats a ratio as a percentage with 3 decimals (Table II style).
func pct(part, total int) string {
	if total == 0 {
		return "0.000%"
	}
	return fmt.Sprintf("%.3f%%", 100*float64(part)/float64(total))
}
