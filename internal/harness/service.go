package harness

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"pgxsort/internal/dist"
	"pgxsort/internal/keyio"
	"pgxsort/internal/serve"
)

// ServiceExp measures sorting-as-a-service: a resident pgxsortd server
// (in-process, over httptest) under N concurrent clients streaming sort
// jobs at it. Each client submits mostly-distinct datasets plus one
// dataset shared by every client — the shared one exercises the
// content-hash result cache. The table reports client-observed p50/p99
// latency, cache hits, 429 rejections and errors per processor count:
// the service-level view of every engine-level win.
func ServiceExp(c Config) ([]Table, error) {
	c = c.WithDefaults()
	const clients = 8
	const jobsPerClient = 3
	keysPerJob := c.N / (clients * jobsPerClient)
	if keysPerJob < 1000 {
		keysPerJob = 1000
	}
	t := Table{
		ID:    "service",
		Title: fmt.Sprintf("pgxsortd under %d concurrent clients (uint64 keys)", clients),
		Header: []string{"procs", "clients", "jobs", "keys_per_job",
			"p50_ms", "p99_ms", "cache_hits", "http_429", "errors"},
	}
	for _, p := range c.Procs {
		row, err := c.serviceRound(p, clients, jobsPerClient, keysPerJob)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("transport=%s, %d workers/proc, scheduler inflight=%d", c.Transport, c.Workers, c.Inflight),
		"each client's last job is a dataset every client submits: submits arriving after the first",
		"completes hit the result cache (in-flight duplicates are not coalesced, so hits vary with timing);",
		"latency is client-observed wall time per job (octet-stream POST /v1/sort), p50/p99 over all jobs")
	return []Table{t}, nil
}

// serviceRound runs one processor-count point: start a server, unleash
// the clients, tear it down.
func (c Config) serviceRound(procs, clients, jobsPerClient, keysPerJob int) ([]string, error) {
	srv, err := serve.New(serve.Config{
		Procs:       procs,
		Workers:     c.Workers,
		Transport:   c.Transport,
		LocalSort:   c.LocalSort,
		Merge:       c.Merge,
		MaxInflight: c.Inflight,
	})
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()

	type outcome struct {
		latency time.Duration
		status  int
		cached  bool
		err     error
	}
	results := make([][]outcome, clients)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			client := &http.Client{Timeout: 2 * time.Minute}
			for j := 0; j < jobsPerClient; j++ {
				// Per-client seeds for the distinct jobs (offset so none
				// collides with the shared seed); the final job uses one
				// shared seed so every client submits the same bytes and
				// later arrivals hit the cache.
				seed := c.Seed + uint64(cl*jobsPerClient+j+1)*7919
				if j == jobsPerClient-1 {
					seed = c.Seed
				}
				kind := dist.Kinds[(cl+j)%len(dist.Kinds)]
				raw := keyio.EncodeUint64s(dist.Gen{Kind: kind, Seed: seed}.Keys(keysPerJob))
				if j == jobsPerClient-1 {
					raw = keyio.EncodeUint64s(dist.Gen{Kind: dist.Uniform, Seed: seed}.Keys(keysPerJob))
				}
				start := time.Now()
				o := outcome{}
				resp, err := client.Post(
					ts.URL+fmt.Sprintf("/v1/sort?key_type=uint64&tenant=client-%d", cl),
					"application/octet-stream", bytes.NewReader(raw))
				if err != nil {
					o.err = err
				} else {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					o.status = resp.StatusCode
					o.cached = resp.Header.Get("X-Pgxsortd-Cache") == "hit"
				}
				o.latency = time.Since(start)
				results[cl] = append(results[cl], o)
			}
		}(cl)
	}
	wg.Wait()

	var latencies []time.Duration
	cacheHits, rejected, failures := 0, 0, 0
	for _, rs := range results {
		for _, o := range rs {
			switch {
			case o.err != nil:
				failures++
			case o.status == http.StatusTooManyRequests:
				rejected++
			case o.status != http.StatusOK:
				failures++
			default:
				latencies = append(latencies, o.latency)
				if o.cached {
					cacheHits++
				}
			}
		}
	}
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	return []string{
		fmt.Sprintf("%d", procs),
		fmt.Sprintf("%d", clients),
		fmt.Sprintf("%d", clients*jobsPerClient),
		fmt.Sprintf("%d", keysPerJob),
		ms(percentile(latencies, 0.50)),
		ms(percentile(latencies, 0.99)),
		fmt.Sprintf("%d", cacheHits),
		fmt.Sprintf("%d", rejected),
		fmt.Sprintf("%d", failures),
	}, nil
}

// percentile picks the nearest-rank percentile from sorted latencies.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted)-1) + 0.5)
	return sorted[idx]
}
