package harness

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"slices"
	"strconv"
	"strings"
	"time"

	"pgxsort/internal/dist"
	"pgxsort/internal/failpoint"
	"pgxsort/internal/keyio"
	"pgxsort/internal/serve"
	"pgxsort/internal/spill"
)

// soakSites are the failpoint sites the storm draws from; "" is the
// no-injection control arm.
var soakSites = []string{
	"",
	"core/local-sort",
	"core/splitters",
	"core/exchange",
	"core/merge",
	"datamgr/assembly-write",
	"serve/admission",
	"serve/cache-put",
	serve.FpSpoolWrite,
	serve.FpSpoolRead,
	spill.FpWriteBlock,
	spill.FpReadBlock,
}

// SoakExp is the self-healing soak: a resident pgxsortd server answering
// a stream of sort jobs while a seeded storm arms a random failpoint
// (site, mode, nth) before each one. The invariants the run enforces —
// not just reports — are the tentpole's acceptance bar: zero wrong
// bytes (every 200 is byte-identical to a local reference sort),
// bounded retries (no retry storm past the per-job attempt cap), and a
// live daemon afterwards. The table shows how many injections actually
// fired, how many jobs the scheduler healed invisibly, and what the
// clients paid in latency.
func SoakExp(c Config) ([]Table, error) {
	c = c.WithDefaults()
	const jobs = 24
	keysPerJob := c.N / jobs
	if keysPerJob < 1000 {
		keysPerJob = 1000
	}
	t := Table{
		ID:    "soak",
		Title: fmt.Sprintf("self-healing soak: %d jobs under a randomized failpoint storm (uint64 keys)", jobs),
		Header: []string{"procs", "jobs", "keys_per_job", "armed", "fired", "retries",
			"refused_503", "degraded", "errors", "wrong_bytes", "p50_ms", "p99_ms"},
	}
	for _, p := range c.Procs {
		row, err := c.soakRound(p, jobs, keysPerJob)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("transport=%s, %d workers/proc, scheduler retry cap 4 attempts/job", c.Transport, c.Workers),
		"each job first picks a failpoint (engine stage, datamgr assembly, spill block I/O, serve",
		"admission/cache-put/spool-write/spool-read, or none) with a seeded mode (error/delay/panic)",
		"and hit number; a tiny memory budget forces every job out of core so the spill arms hit real",
		"block reads and writes, and a spool threshold under the full-range bodies makes those uploads",
		"stream through the spill tier so the spool arms fire against real upload run files;",
		"armed counts jobs with an injection configured, fired those whose schedule actually triggered;",
		"wrong_bytes compares every",
		"200 against a local reference sort and MUST be 0; refused_503 is the admission site answering",
		"like a drain (an honest refusal, not a wrong answer); the run fails if the daemon is not live",
		"afterwards or retries exceed the attempt budget (bounded retries, no storm)")
	return []Table{t}, nil
}

// soakRound runs one processor-count point of the storm.
func (c Config) soakRound(procs, jobs, keysPerJob int) ([]string, error) {
	failpoint.Reset()
	defer failpoint.Reset()
	const retryAttempts = 4
	srv, err := serve.New(serve.Config{
		Procs:       procs,
		Workers:     c.Workers,
		Transport:   c.Transport,
		LocalSort:   c.LocalSort,
		Merge:       c.Merge,
		MaxInflight: c.Inflight,
		// A budget of a fraction of each job's footprint forces jobs out
		// of core, so the storm's spill/write-block and spill/read-block
		// arms have real block I/O to fail (and the healed retries prove
		// the spill tier unwinds cleanly mid-batch).
		MemoryBudget: int64(keysPerJob), // ~1/10 of keysPerJob entries x ~10 wire bytes
		// ~4 wire bytes/key: the full-range distributions (~9.5 bytes/key)
		// cross it and spool their uploads — arming serve/spool-write and
		// serve/spool-read against real run files — while the small-domain
		// ones stay resident and keep the cache-put arm live.
		SpoolThreshold: int64(keysPerJob * 4),
		SpillDir:       c.SpillDir,
		RetryAttempts:  retryAttempts,
	})
	if err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}
	ts := httptest.NewServer(srv)
	defer func() {
		ts.Close()
		srv.Close()
	}()

	modes := []failpoint.Mode{failpoint.ModeError, failpoint.ModeDelay, failpoint.ModePanic}
	rng := dist.NewRNG(c.Seed ^ 0x50AC_50AC_50AC_50AC)
	client := &http.Client{Timeout: 2 * time.Minute}

	var latencies []time.Duration
	armed, fired, refused, degraded, wrong, errs := 0, 0, 0, 0, 0, 0
	for j := 0; j < jobs; j++ {
		kind := dist.Kinds[j%len(dist.Kinds)]
		keys := dist.Gen{Kind: kind, Seed: c.Seed + uint64(j+1)*104729}.Keys(keysPerJob)
		raw := keyio.EncodeUint64s(keys)
		want := append([]uint64(nil), keys...)
		slices.Sort(want)
		wantRaw := keyio.EncodeUint64s(want)

		site := soakSites[rng.Uint64()%uint64(len(soakSites))]
		if site != "" {
			armed++
			failpoint.Set(site, failpoint.Schedule{
				Mode:  modes[rng.Uint64()%uint64(len(modes))],
				Nth:   1 + int(rng.Uint64()%3),
				Delay: 2 * time.Millisecond,
			})
		}
		start := time.Now()
		resp, err := client.Post(ts.URL+"/v1/sort?key_type=uint64",
			"application/octet-stream", bytes.NewReader(raw))
		if site != "" && failpoint.Fired(site) > 0 {
			fired++
		}
		if site != "" {
			failpoint.Clear(site)
		}
		if err != nil {
			errs++
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		latencies = append(latencies, time.Since(start))
		switch {
		case rerr != nil:
			errs++
		case resp.StatusCode == http.StatusServiceUnavailable && site == "serve/admission":
			refused++ // the injected front-door refusal: honest, not wrong
		case resp.StatusCode != http.StatusOK:
			errs++
		case !bytes.Equal(body, wantRaw):
			wrong++
		default:
			if resp.Header.Get("X-Pgxsortd-Degraded") == "true" {
				degraded++
			}
		}
	}

	retries, err := scrapeCounter(client, ts.URL, "pgxsortd_retries_total")
	if err != nil {
		return nil, fmt.Errorf("soak: %w", err)
	}

	// The acceptance invariants are enforced, not merely reported.
	if wrong > 0 {
		return nil, fmt.Errorf("soak: %d of %d jobs returned wrong bytes", wrong, jobs)
	}
	if maxRetries := int64(armed) * (retryAttempts - 1); retries > maxRetries {
		return nil, fmt.Errorf("soak: %d retries exceed the %d budget (%d armed jobs x %d)",
			retries, maxRetries, armed, retryAttempts-1)
	}
	if resp, err := client.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("soak: daemon not live after the storm (err=%v)", err)
	} else {
		resp.Body.Close()
	}

	slices.Sort(latencies)
	return []string{
		strconv.Itoa(procs),
		strconv.Itoa(jobs),
		strconv.Itoa(keysPerJob),
		strconv.Itoa(armed),
		strconv.Itoa(fired),
		strconv.FormatInt(retries, 10),
		strconv.Itoa(refused),
		strconv.Itoa(degraded),
		strconv.Itoa(errs),
		strconv.Itoa(wrong),
		ms(percentile(latencies, 0.50)),
		ms(percentile(latencies, 0.99)),
	}, nil
}

// scrapeCounter reads one unlabeled counter from /metrics.
func scrapeCounter(client *http.Client, base, name string) (int64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(body), "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			return strconv.ParseInt(strings.TrimSpace(v), 10, 64)
		}
	}
	return 0, fmt.Errorf("metric %s not in exposition", name)
}
