package harness

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"pgxsort/internal/dist"
)

// tinyConfig keeps harness tests fast.
func tinyConfig() Config {
	return Config{
		N:            40000,
		Procs:        []int{4, 8},
		Workers:      2,
		Seed:         7,
		TwitterScale: 12,
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tb := Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "hello, world"}, {"2", `quote"inside`}},
		Notes:  []string{"note line"},
	}
	out := tb.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "note line") {
		t.Fatalf("render missing pieces:\n%s", out)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, `"hello, world"`) {
		t.Fatalf("comma cell not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"quote""inside"`) {
		t.Fatalf("quote cell not escaped: %s", csv)
	}
	dir := t.TempDir()
	path, err := tb.WriteCSV(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "x-1.csv" {
		t.Fatalf("csv path = %s", path)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig5"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(Experiments()) < 12 {
		t.Fatalf("registry too small: %d", len(Experiments()))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.N == 0 || len(c.Procs) == 0 || c.Workers == 0 || c.Seed == 0 ||
		c.Transport == "" || c.TwitterScale == 0 || c.Reps == 0 || c.Inflight == 0 {
		t.Fatalf("defaults missing: %+v", c)
	}
}

func TestFig56PipelineRuns(t *testing.T) {
	tabs, err := Fig56Pipeline(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if tb.ID != "pipeline" {
		t.Fatalf("id = %q", tb.ID)
	}
	if len(tb.Rows) != 2 || len(tb.Header) != 7 {
		t.Fatalf("pipeline shape: %d rows x %d cols", len(tb.Rows), len(tb.Header))
	}
	for _, row := range tb.Rows {
		for col := 1; col <= 3; col++ {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil || v <= 0 {
				t.Fatalf("cell %q not a positive time: %v", row[col], err)
			}
		}
	}
}

func TestFig4Shares(t *testing.T) {
	tabs, err := Fig4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if len(tb.Rows) != 16 || len(tb.Header) != 5 {
		t.Fatalf("fig4 shape: %d rows x %d cols", len(tb.Rows), len(tb.Header))
	}
	// Percentages per distribution must sum to ~100.
	for col := 1; col < 5; col++ {
		var sum float64
		for _, row := range tb.Rows {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[col], "%"), 64)
			if err != nil {
				t.Fatalf("cell %q: %v", row[col], err)
			}
			sum += v
		}
		if sum < 99.5 || sum > 100.5 {
			t.Errorf("column %d sums to %.2f%%", col, sum)
		}
	}
}

func TestFig5Runs(t *testing.T) {
	tabs, err := Fig5(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if len(tb.Rows) != 2 {
		t.Fatalf("fig5 rows = %d, want one per procs value", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		for col := 1; col < len(row); col++ {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil || v <= 0 {
				t.Fatalf("fig5 cell %q not a positive time", row[col])
			}
		}
	}
}

func TestFig6Runs(t *testing.T) {
	c := tinyConfig()
	c.Procs = []int{4}
	tabs, err := Fig6(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 4 {
		t.Fatalf("fig6 should produce one table per distribution, got %d", len(tabs))
	}
	for _, tb := range tabs {
		if len(tb.Rows) != 1 {
			t.Fatalf("fig6 rows = %d", len(tb.Rows))
		}
	}
}

func TestFig7StepRows(t *testing.T) {
	c := tinyConfig()
	c.Procs = []int{4}
	tabs, err := Fig7(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("fig7 tables = %d, want 2 (normal, right-skewed)", len(tabs))
	}
	for _, tb := range tabs {
		if len(tb.Rows) != 6 {
			t.Fatalf("fig7 should have 6 step rows, got %d", len(tb.Rows))
		}
	}
}

func TestTable2LoadShares(t *testing.T) {
	c := tinyConfig()
	tabs, err := Table2(c)
	if err != nil {
		t.Fatal(err)
	}
	balanced := tabs[0]
	if len(balanced.Rows) != 4 {
		t.Fatalf("table2 rows = %d", len(balanced.Rows))
	}
	for _, row := range balanced.Rows {
		for col := 1; col < len(row); col++ {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[col], "%"), 64)
			if err != nil {
				t.Fatal(err)
			}
			// Paper shape: every processor holds ~10%. The binding
			// constraint is the maximum share (stragglers); the
			// quantized tail may leave the last processor light.
			if v < 4 || v > 16 {
				t.Errorf("%s %s: share %.2f%% far from 10%%", row[0], balanced.Header[col], v)
			}
		}
	}
	// The ablation table must show gross imbalance somewhere.
	ablation := tabs[1]
	sawSkew := false
	for _, row := range ablation.Rows {
		for col := 1; col < len(row); col++ {
			v, _ := strconv.ParseFloat(strings.TrimSuffix(row[col], "%"), 64)
			if v > 25 {
				sawSkew = true
			}
		}
	}
	if !sawSkew {
		t.Error("investigator-off table shows no imbalance; expected one processor far above 10%")
	}
}

func TestTable3RangesMonotone(t *testing.T) {
	c := tinyConfig()
	tabs, err := Table3(c)
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if len(tb.Rows) != 16 {
		t.Fatalf("table3 rows = %d", len(tb.Rows))
	}
	// Each column's ranges must be non-overlapping and increasing.
	for col := 1; col < len(tb.Header); col++ {
		prevMax := -1
		for _, row := range tb.Rows {
			cell := row[col]
			if cell == "-" || cell == "(empty)" {
				continue
			}
			parts := strings.Split(cell, " - ")
			if len(parts) != 2 {
				t.Fatalf("bad range cell %q", cell)
			}
			lo, err1 := strconv.Atoi(parts[0])
			hi, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil || hi < lo {
				t.Fatalf("bad range cell %q", cell)
			}
			if lo < prevMax {
				t.Errorf("column %s ranges overlap: %d < %d", tb.Header[col], lo, prevMax)
			}
			prevMax = hi
		}
	}
}

func TestFig9FactorSweep(t *testing.T) {
	c := tinyConfig()
	c.Procs = []int{8}
	tabs, err := Fig9(c)
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	if len(tb.Rows) != 7 {
		t.Fatalf("fig9 rows = %d, want 7 factors", len(tb.Rows))
	}
	// Samples per proc must grow with the factor.
	first, _ := strconv.Atoi(tb.Rows[0][1])
	last, _ := strconv.Atoi(tb.Rows[6][1])
	if first >= last {
		t.Errorf("samples/proc not increasing: %d .. %d", first, last)
	}
}

func TestFig10MinMax(t *testing.T) {
	c := tinyConfig()
	c.Procs = []int{4}
	tabs, err := Fig10(c)
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	for _, row := range tb.Rows {
		for i := 1; i < len(row); i += 2 {
			minV, _ := strconv.Atoi(row[i])
			maxV, _ := strconv.Atoi(row[i+1])
			if minV > maxV {
				t.Errorf("min %d > max %d in row %v", minV, maxV, row)
			}
		}
	}
}

func TestFig11Memory(t *testing.T) {
	c := tinyConfig()
	c.Procs = []int{4}
	tabs, err := Fig11(c)
	if err != nil {
		t.Fatal(err)
	}
	tb := tabs[0]
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil || v <= 0 {
			t.Fatalf("resident memory cell %q invalid", row[1])
		}
	}
}

func TestFig8AndBaselines(t *testing.T) {
	c := tinyConfig()
	c.Procs = []int{4}
	tabs, err := Fig8(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs[0].Rows) != 1 {
		t.Fatalf("fig8 rows = %d", len(tabs[0].Rows))
	}
	bt, err := Baselines(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(bt[0].Rows) != 4 {
		t.Fatalf("baselines rows = %d, want 4 systems", len(bt[0].Rows))
	}
}

func TestAblationsRun(t *testing.T) {
	c := tinyConfig()
	c.Procs = []int{4}
	for _, run := range []func(Config) ([]Table, error){
		AblationInvestigator, AblationMerge, AblationAsync, AblationTransport,
	} {
		tabs, err := run(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(tabs) == 0 || len(tabs[0].Rows) == 0 {
			t.Fatal("ablation produced no rows")
		}
	}
}

func TestChaosRuns(t *testing.T) {
	c := tinyConfig()
	c.Procs = []int{3}
	tabs, err := Chaos(c)
	if err != nil {
		t.Fatal(err)
	}
	rows := tabs[0].Rows
	if len(rows) != 3 {
		t.Fatalf("chaos rows = %d, want 3 schedules", len(rows))
	}
	for _, row := range rows {
		if row[len(row)-1] != "yes" {
			t.Fatalf("chaos row %v not sorted: resets must be recovered", row)
		}
	}
	// The aggressive schedule must actually have injected something:
	// column 3 is the reconnect count.
	if rows[2][3] == "0" {
		t.Errorf("reset_every=%s row recorded zero reconnects", rows[2][0])
	}
}

func TestRunAllIDs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := tinyConfig()
	c.Procs = []int{4}
	c.N = 20000
	c.TwitterScale = 10
	tables, err := Run([]string{"table1", "fig4"}, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("Run produced %d tables", len(tables))
	}
	if _, err := Run([]string{"nope"}, c); err == nil {
		t.Fatal("Run accepted unknown id")
	}
}

func TestDistributeCoversAll(t *testing.T) {
	keys := dist.Gen{Kind: dist.Uniform, Seed: 1}.Keys(103)
	parts := distribute(keys, 4)
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 103 {
		t.Fatalf("distribute lost keys: %d", total)
	}
}
