package harness

import (
	"fmt"
	"time"

	"pgxsort/internal/core"
	"pgxsort/internal/dist"
)

// MergeOverlap measures the streaming exchange–merge overlap (ISSUE 5)
// against the barriered balanced baseline on the Figure 5/6 distribution
// mix, at the largest sweep point (where both the exchange and the merge
// are nontrivial, so there is latency worth hiding). Each row compares
// end-to-end time, the visible final-merge step, and overlap_saved_ms —
// the merge CPU time the overlap buried inside the exchange window
// (Report.MergeOverlapSaved). The trailing "total" row sums the mix; the
// CI bench gate fails the job when the overlap total regresses more than
// 10% against the barriered total.
func MergeOverlap(c Config) ([]Table, error) {
	c = c.WithDefaults()
	p := c.Procs[len(c.Procs)-1]
	t := Table{
		ID:    "mergeoverlap",
		Title: fmt.Sprintf("Exchange–merge overlap vs barriered merge, p=%d (ms)", p),
		Header: []string{"kind", "barriered_ms", "overlap_ms", "overlap_vs_barriered",
			"overlap_saved_ms", "merge_step_barriered_ms", "merge_step_overlap_ms"},
	}
	var totBar, totOv, totSaved time.Duration
	for _, kind := range dist.Kinds {
		parts := c.parts(kind, p)
		bar, err := c.runPGXD(parts, core.Options{Merge: core.MergeBalanced})
		if err != nil {
			return nil, err
		}
		ov, err := c.runPGXD(parts, core.Options{Merge: core.MergeOverlap})
		if err != nil {
			return nil, err
		}
		totBar += bar.Total
		totOv += ov.Total
		totSaved += ov.MergeOverlapSaved
		t.Rows = append(t.Rows, []string{
			kind.String(),
			ms(bar.Total),
			ms(ov.Total),
			fmt.Sprintf("%.2fx", float64(bar.Total)/float64(ov.Total)),
			ms(ov.MergeOverlapSaved),
			ms(bar.Steps[core.StepFinalMerge]),
			ms(ov.Steps[core.StepFinalMerge]),
		})
	}
	t.Rows = append(t.Rows, []string{
		"total",
		ms(totBar),
		ms(totOv),
		fmt.Sprintf("%.2fx", float64(totBar)/float64(totOv)),
		ms(totSaved),
		"-", "-",
	})
	t.Notes = append(t.Notes,
		fmt.Sprintf("N=%d keys, %d workers/proc, transport=%s", c.N, c.Workers, c.Transport),
		"overlap merges each received run as its assembly completes, so merge CPU",
		"burns during step-5 network idle time; overlap_saved_ms is the merge time",
		"hidden inside the exchange window (max across nodes, best-of-reps run)")
	return []Table{t}, nil
}
