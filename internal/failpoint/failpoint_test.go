package failpoint

import (
	"errors"
	"testing"
	"time"
)

func TestUnarmedSiteIsSilent(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Hit("nowhere"); err != nil {
		t.Fatalf("unarmed Hit returned %v", err)
	}
	if Active() {
		t.Fatal("Active with nothing armed")
	}
}

func TestErrorScheduleFiresAtNthForCount(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("a", Schedule{Mode: ModeError, Nth: 3, Count: 2})
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, Hit("a") != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: fired=%v want %v (all %v)", i+1, got[i], want[i], got)
		}
	}
	if Fired("a") != 2 {
		t.Fatalf("Fired = %d, want 2", Fired("a"))
	}
	if Active() {
		t.Fatal("spent schedule should disarm the site")
	}
}

func TestInjectedErrorWrapsSentinel(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("b", Schedule{Mode: ModeError})
	err := Hit("b")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error %v does not wrap ErrInjected", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Site != "b" {
		t.Fatalf("injected error %v does not carry its site", err)
	}
}

func TestPanicModeAndNoPanicDowngrade(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("p", Schedule{Mode: ModePanic})
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("ModePanic did not panic")
			}
			if fe, ok := r.(*Error); !ok || fe.Site != "p" {
				t.Fatalf("panic value %v is not the site's *Error", r)
			}
		}()
		Hit("p")
	}()
	Set("p", Schedule{Mode: ModePanic})
	if err := HitNoPanic("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("HitNoPanic should downgrade panic to error, got %v", err)
	}
}

func TestDelayMode(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("d", Schedule{Mode: ModeDelay, Delay: 10 * time.Millisecond})
	start := time.Now()
	if err := Hit("d"); err != nil {
		t.Fatalf("delay mode returned error %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("delay mode slept %v, want >= 10ms", d)
	}
}

func TestConfigureSpec(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := Configure("x:error:2, y:delay , z:panic:1:3"); err != nil {
		t.Fatalf("Configure: %v", err)
	}
	want := []string{"x", "y", "z"}
	got := Sites()
	if len(got) != len(want) {
		t.Fatalf("Sites = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sites = %v, want %v", got, want)
		}
	}
	if err := Hit("x"); err != nil {
		t.Fatalf("x should not fire on hit 1: %v", err)
	}
	if err := Hit("x"); err == nil {
		t.Fatal("x should fire on hit 2")
	}
}

func TestConfigureRejectsBadSpecs(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	for _, spec := range []string{"x", "x:frob", "x:error:zero", "x:error:0", "x:error:1:0", "x:error:1:2:3"} {
		if err := Configure(spec); err == nil {
			t.Fatalf("Configure(%q) accepted a bad spec", spec)
		}
	}
}

func TestClearAndReset(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("c", Schedule{Mode: ModeError, Count: -1})
	if Hit("c") == nil {
		t.Fatal("armed site did not fire")
	}
	Clear("c")
	if Hit("c") != nil {
		t.Fatal("cleared site still fires")
	}
	if Fired("c") != 1 {
		t.Fatalf("Clear should keep the fired counter, got %d", Fired("c"))
	}
	Reset()
	if Fired("c") != 0 {
		t.Fatalf("Reset should zero counters, got %d", Fired("c"))
	}
}

func TestUnlimitedCount(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("u", Schedule{Mode: ModeError, Count: -1})
	for i := 0; i < 5; i++ {
		if Hit("u") == nil {
			t.Fatalf("unlimited schedule stopped firing at hit %d", i+1)
		}
	}
	if FiredTotal() != 5 {
		t.Fatalf("FiredTotal = %d, want 5", FiredTotal())
	}
}
