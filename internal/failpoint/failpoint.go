// Package failpoint is the engine-wide chaos surface: a registry of
// named failure sites planted through the stack (engine stages, datamgr
// assembly, serve cache/admission) that deterministic trigger schedules
// can arm to inject an error, a delay, or a panic. PR 4's transport
// faults exercise only the wire; failpoints exercise everything above
// it, so the retry scheduler and the degraded-mode service have a whole
// pipeline worth of failures to recover from.
//
// A schedule arms one site: the site fires starting at its Nth hit
// (1-based) and keeps firing for Count consecutive hits, then disarms.
// Sites are configured programmatically (Set, for tests and the soak
// harness) or from the environment:
//
//	PGXSORT_FAILPOINTS=core/exchange:error:2,serve/cache-put:error:1
//
// where each clause is site:mode:nth[:count] and mode is error, delay
// or panic. Hit sites are deliberately cheap when nothing is armed: one
// atomic load on the hot path.
package failpoint

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvVar names the environment variable parsed at process start.
const EnvVar = "PGXSORT_FAILPOINTS"

// Mode is what an armed site does when its schedule fires.
type Mode int

const (
	// ModeOff leaves the site inert.
	ModeOff Mode = iota
	// ModeError makes Hit return an injected *Error.
	ModeError
	// ModeDelay makes Hit sleep for the schedule's Delay.
	ModeDelay
	// ModePanic makes Hit panic with an injected *Error; the engine
	// recovers it into a Transient failure. Sites that cannot unwind
	// safely (concurrent senders in flight) use HitNoPanic, which
	// downgrades this mode to ModeError.
	ModePanic
)

// String names the mode as it appears in schedule specs.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeError:
		return "error"
	case ModeDelay:
		return "delay"
	case ModePanic:
		return "panic"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// parseMode reads a schedule spec's mode token.
func parseMode(s string) (Mode, error) {
	switch s {
	case "error":
		return ModeError, nil
	case "delay":
		return ModeDelay, nil
	case "panic":
		return ModePanic, nil
	default:
		return ModeOff, fmt.Errorf("failpoint: unknown mode %q (want error, delay or panic)", s)
	}
}

// DefaultDelay is how long ModeDelay sleeps when the schedule does not
// say otherwise.
const DefaultDelay = 5 * time.Millisecond

// Schedule arms one site. The zero Nth and Count mean "first hit" and
// "once": Set normalizes them.
type Schedule struct {
	Mode Mode
	// Nth is the 1-based hit index at which the site starts firing.
	Nth int
	// Count is how many consecutive hits fire; <0 fires forever.
	Count int
	// Delay is the ModeDelay sleep duration.
	Delay time.Duration
}

func (s Schedule) withDefaults() Schedule {
	if s.Nth <= 0 {
		s.Nth = 1
	}
	if s.Count == 0 {
		s.Count = 1
	}
	if s.Delay <= 0 {
		s.Delay = DefaultDelay
	}
	return s
}

// ErrInjected is the sentinel every injected failure wraps, so any layer
// can ask errors.Is(err, failpoint.ErrInjected) — the taxonomy classes
// injected failures as Transient on the strength of it.
var ErrInjected = errors.New("failpoint: injected failure")

// Error is an injected failure carrying its site; it wraps ErrInjected.
type Error struct {
	Site string
}

func (e *Error) Error() string { return fmt.Sprintf("failpoint %s: injected failure", e.Site) }
func (e *Error) Unwrap() error { return ErrInjected }

// site is the armed state plus lifetime counters of one name.
type site struct {
	sched Schedule
	armed bool
	hits  int64
	fired int64
}

var (
	mu    sync.Mutex
	sites = map[string]*site{}
	// armedCount gates the hot path: Hit is a single atomic load while
	// no site is armed.
	armedCount atomic.Int32
)

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := Configure(spec); err != nil {
			fmt.Fprintf(os.Stderr, "failpoint: ignoring %s: %v\n", EnvVar, err)
		}
	}
}

// Configure parses and arms a comma-separated schedule spec
// (site:mode:nth[:count] per clause). Earlier clauses survive a later
// clause's parse error; callers wanting all-or-nothing should Reset on
// error.
func Configure(spec string) error {
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		if len(parts) < 2 || len(parts) > 4 {
			return fmt.Errorf("failpoint: bad clause %q (want site:mode:nth[:count])", clause)
		}
		mode, err := parseMode(parts[1])
		if err != nil {
			return err
		}
		sched := Schedule{Mode: mode}
		if len(parts) >= 3 {
			if sched.Nth, err = strconv.Atoi(parts[2]); err != nil || sched.Nth < 1 {
				return fmt.Errorf("failpoint: bad nth in %q", clause)
			}
		}
		if len(parts) == 4 {
			if sched.Count, err = strconv.Atoi(parts[3]); err != nil || sched.Count == 0 {
				return fmt.Errorf("failpoint: bad count in %q", clause)
			}
		}
		Set(parts[0], sched)
	}
	return nil
}

// Set arms one site with a schedule, replacing any previous one. The
// site's hit counter keeps running across re-arms; the schedule's Nth
// counts hits from this arming.
func Set(name string, sched Schedule) {
	sched = sched.withDefaults()
	mu.Lock()
	defer mu.Unlock()
	st := sites[name]
	if st == nil {
		st = &site{}
		sites[name] = st
	}
	if !st.armed {
		armedCount.Add(1)
	}
	st.armed = true
	st.sched = sched
	st.hits = 0 // Nth counts from this arming
}

// Clear disarms one site, keeping its lifetime fired counter.
func Clear(name string) {
	mu.Lock()
	defer mu.Unlock()
	if st := sites[name]; st != nil && st.armed {
		st.armed = false
		armedCount.Add(-1)
	}
}

// Reset disarms every site and zeroes all counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for _, st := range sites {
		if st.armed {
			armedCount.Add(-1)
		}
	}
	sites = map[string]*site{}
}

// Active reports whether any site is currently armed.
func Active() bool { return armedCount.Load() > 0 }

// Fired returns how many times a site has injected a failure (over the
// process lifetime, surviving Clear but not Reset).
func Fired(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if st := sites[name]; st != nil {
		return st.fired
	}
	return 0
}

// FiredTotal sums Fired over every site.
func FiredTotal() int64 {
	mu.Lock()
	defer mu.Unlock()
	var n int64
	for _, st := range sites {
		n += st.fired
	}
	return n
}

// Sites lists every armed site, sorted.
func Sites() []string {
	mu.Lock()
	defer mu.Unlock()
	var names []string
	for name, st := range sites {
		if st.armed {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Hit marks one pass through a named site. It returns an injected error,
// sleeps, or panics according to the site's armed schedule — or does
// (almost) nothing when the site is not armed.
func Hit(name string) error { return hit(name, true) }

// HitNoPanic is Hit for sites that cannot unwind safely — a panic there
// would strand concurrent senders or an HTTP response mid-write — so
// ModePanic is downgraded to an injected error.
func HitNoPanic(name string) error { return hit(name, false) }

func hit(name string, allowPanic bool) error {
	if armedCount.Load() == 0 {
		return nil
	}
	mu.Lock()
	st := sites[name]
	if st == nil || !st.armed {
		mu.Unlock()
		return nil
	}
	st.hits++
	n := st.hits
	fire := n >= int64(st.sched.Nth)
	if st.sched.Count > 0 {
		last := int64(st.sched.Nth) + int64(st.sched.Count) - 1
		if n > last {
			fire = false
		}
		if n >= last {
			// The schedule is spent after this hit; disarm so the site
			// goes back to the one-atomic-load fast path.
			st.armed = false
			armedCount.Add(-1)
		}
	}
	if fire {
		st.fired++
	}
	sched := st.sched
	mu.Unlock()
	if !fire {
		return nil
	}
	switch sched.Mode {
	case ModeDelay:
		time.Sleep(sched.Delay)
		return nil
	case ModePanic:
		if allowPanic {
			panic(&Error{Site: name})
		}
		return &Error{Site: name}
	default:
		return &Error{Site: name}
	}
}
