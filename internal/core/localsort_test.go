package core

import (
	"math"
	"testing"

	"pgxsort/internal/comm"
	"pgxsort/internal/dist"
)

// stringCodec is a fixed-width stand-in codec for a key type with no
// uint64 normalization; the channel transport never serializes, so only
// KeySize matters.
type stringCodec struct{}

func (stringCodec) KeySize() int { return 8 }
func (stringCodec) PutKey(b []byte, k string) {
	copy(b[:8], k)
}
func (stringCodec) Key(b []byte) string { return string(b[:8]) }

func sortKeysWith[K interface {
	~uint64 | ~int64 | ~float64 | ~uint32 | ~string
}](t *testing.T, codec comm.Codec[K], opts Options, keys []K) (*Result[K], *Engine[K]) {
	t.Helper()
	if opts.Procs == 0 {
		opts.Procs = 4
	}
	eng, err := NewEngine[K](opts, codec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	parts := make([][]K, opts.Procs)
	for i := range parts {
		lo := i * len(keys) / opts.Procs
		hi := (i + 1) * len(keys) / opts.Procs
		parts[i] = keys[lo:hi]
	}
	res, err := eng.Sort(parts)
	if err != nil {
		t.Fatal(err)
	}
	return res, eng
}

// TestLocalSortAutoPicksRadix: Auto must take the radix path for a key
// type with a built-in norm, and both forced modes must be honored.
func TestLocalSortAutoPicksRadix(t *testing.T) {
	keys := dist.Gen{Kind: dist.Uniform, Seed: 5}.Keys(4000)
	cases := []struct {
		mode LocalSortMode
		want string
	}{
		{LocalSortAuto, "radix"},
		{LocalSortRadix, "radix"},
		{LocalSortComparison, "comparison"},
	}
	for _, tc := range cases {
		res, _ := sortKeysWith[uint64](t, comm.U64Codec{}, Options{LocalSort: tc.mode}, keys)
		if res.Report.LocalSortPath != tc.want {
			t.Fatalf("mode %v: LocalSortPath = %q, want %q", tc.mode, res.Report.LocalSortPath, tc.want)
		}
		for _, nr := range res.Report.PerNode {
			if nr.LocalSortPath != tc.want {
				t.Fatalf("mode %v: node path = %q, want %q", tc.mode, nr.LocalSortPath, tc.want)
			}
		}
		got := res.Keys()
		if len(got) != len(keys) {
			t.Fatalf("mode %v: %d keys out, want %d", tc.mode, len(got), len(keys))
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] > got[i] {
				t.Fatalf("mode %v: unsorted at %d", tc.mode, i)
			}
		}
	}
}

// TestLocalSortAutoFallsBackForUnnormalizableKey: a key type without a
// norm must stay on the comparison path even when radix is requested.
func TestLocalSortAutoFallsBackForUnnormalizableKey(t *testing.T) {
	keys := []string{"pear", "apple", "fig", "kiwi", "plum", "date", "lime", "mango"}
	for _, mode := range []LocalSortMode{LocalSortAuto, LocalSortRadix} {
		res, _ := sortKeysWith[string](t, stringCodec{}, Options{LocalSort: mode}, keys)
		if res.Report.LocalSortPath != "comparison" {
			t.Fatalf("mode %v: LocalSortPath = %q, want comparison", mode, res.Report.LocalSortPath)
		}
		got := res.Keys()
		for i := 1; i < len(got); i++ {
			if got[i-1] > got[i] {
				t.Fatalf("unsorted at %d: %v", i, got)
			}
		}
	}
}

// TestRadixPathFloat64TotalOrder: with float keys the radix path must
// produce the norm's IEEE-754 total order end to end, NaNs pinned after
// +Inf and -0 before +0, with no keys lost.
func TestRadixPathFloat64TotalOrder(t *testing.T) {
	keys := []float64{
		3.5, math.NaN(), -1, math.Inf(-1), 0, math.Copysign(0, -1),
		math.Inf(1), -2.25, 7, math.NaN(), -0.5, 1e300, -1e300, 2, 11, -7,
	}
	res, eng := sortKeysWith[float64](t, comm.F64Codec{}, Options{}, keys)
	if res.Report.LocalSortPath != "radix" {
		t.Fatalf("LocalSortPath = %q, want radix", res.Report.LocalSortPath)
	}
	got := res.Keys()
	if len(got) != len(keys) {
		t.Fatalf("%d keys out, want %d", len(got), len(keys))
	}
	norm := comm.F64Codec{}.Norm
	for i := 1; i < len(got); i++ {
		if norm(got[i-1]) > norm(got[i]) {
			t.Fatalf("total order violated at %d: %v after %v", i, got[i], got[i-1])
		}
	}
	// The two NaNs sort last, after +Inf.
	if !math.IsNaN(got[len(got)-1]) || !math.IsNaN(got[len(got)-2]) {
		t.Fatalf("NaNs not pinned at the end: %v", got[len(got)-4:])
	}
	if !math.IsInf(got[len(got)-3], 1) {
		t.Fatalf("+Inf not immediately before the NaNs: %v", got[len(got)-4:])
	}
	// -0 strictly before +0.
	zeroAt := -1
	for i, k := range got {
		if k == 0 {
			zeroAt = i
			break
		}
	}
	if math.Copysign(1, got[zeroAt]) != -1 || math.Copysign(1, got[zeroAt+1]) != 1 {
		t.Fatalf("-0/+0 not ordered by sign at %d", zeroAt)
	}
	_ = eng
}

// TestPoolingBalancesAndReuses: the Figure-11 temp-memory accounting
// must balance to zero after every sort with pooling on, and a second
// sort on the same engine must actually reuse pooled slabs.
func TestPoolingBalancesAndReuses(t *testing.T) {
	keys := dist.Gen{Kind: dist.Normal, Seed: 9}.Keys(8000)
	eng, err := NewEngine[uint64](Options{Procs: 4, WorkersPerProc: 2}, comm.U64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	parts := make([][]uint64, 4)
	for i := range parts {
		parts[i] = keys[i*len(keys)/4 : (i+1)*len(keys)/4]
	}
	for round := 0; round < 3; round++ {
		res, err := eng.Sort(parts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Report.TempPeakBytes <= 0 {
			t.Fatalf("round %d: no temporary memory accounted", round)
		}
		for i, n := range eng.nodes {
			if live := n.tracker.Live(); live != 0 {
				t.Fatalf("round %d: node %d temp accounting unbalanced: %d live bytes", round, i, live)
			}
		}
	}
	for i, n := range eng.nodes {
		gets, hits := n.entryPool.Stats()
		if gets == 0 {
			t.Fatalf("node %d: pool unused", i)
		}
		if hits == 0 {
			t.Fatalf("node %d: pool never reused a slab across 3 sorts (%d gets)", i, gets)
		}
	}
}

// TestDisablePooling: the unpooled ablation must leave the nodes without
// pools and still sort correctly with balanced accounting.
func TestDisablePooling(t *testing.T) {
	keys := dist.Gen{Kind: dist.Uniform, Seed: 4}.Keys(3000)
	res, eng := sortKeysWith[uint64](t, comm.U64Codec{}, Options{DisablePooling: true}, keys)
	for i, n := range eng.nodes {
		if n.entryPool != nil {
			t.Fatalf("node %d: pool present despite DisablePooling", i)
		}
		if live := n.tracker.Live(); live != 0 {
			t.Fatalf("node %d: unbalanced accounting: %d", i, live)
		}
	}
	got := res.Keys()
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("unsorted at %d", i)
		}
	}
}

// TestRadixMatchesComparisonOrder: on every distribution kind the radix
// and comparison paths must produce identical key sequences.
func TestRadixMatchesComparisonOrder(t *testing.T) {
	for _, kind := range []dist.Kind{dist.Uniform, dist.RightSkewed, dist.Constant, dist.ReverseSorted} {
		keys := dist.Gen{Kind: kind, Seed: 21, Domain: 64}.Keys(5000)
		radix, _ := sortKeysWith[uint64](t, comm.U64Codec{}, Options{LocalSort: LocalSortRadix}, keys)
		comparison, _ := sortKeysWith[uint64](t, comm.U64Codec{}, Options{LocalSort: LocalSortComparison}, keys)
		rk, ck := radix.Keys(), comparison.Keys()
		if len(rk) != len(ck) {
			t.Fatalf("%s: length mismatch %d vs %d", kind, len(rk), len(ck))
		}
		for i := range rk {
			if rk[i] != ck[i] {
				t.Fatalf("%s: paths diverge at %d: %d vs %d", kind, i, rk[i], ck[i])
			}
		}
	}
}
