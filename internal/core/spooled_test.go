package core

import (
	"bytes"
	"cmp"
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	"pgxsort/internal/comm"
	"pgxsort/internal/dist"
	"pgxsort/internal/failpoint"
	"pgxsort/internal/spill"
)

// appendKeyBytes appends k's exact canonical wire form: the VarCodec
// framing for variable-width keys, the fixed KeySize form otherwise.
// Equal keys encode identically, so concatenations compare sorted key
// sequences byte for byte.
func appendKeyBytes[K cmp.Ordered](codec comm.Codec[K], dst []byte, k K) []byte {
	if vc, ok := codec.(comm.VarCodec[K]); ok {
		return vc.AppendKey(dst, k)
	}
	n := len(dst)
	dst = append(dst, make([]byte, codec.KeySize())...)
	codec.PutKey(dst[n:], k)
	return dst
}

// writeSpool lands keys in a run file in arrival order, the way the
// streaming ingress does, and returns the path.
func writeSpool[K cmp.Ordered](t *testing.T, codec comm.Codec[K], dir string, keys []K) string {
	t.Helper()
	path := filepath.Join(dir, "upload.spool")
	w, err := spill.NewWriter(path, codec, 4<<10)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	entries := make([]comm.Entry[K], len(keys))
	for i, k := range keys {
		entries[i] = comm.Entry[K]{Key: k}
	}
	if err := w.Append(entries); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return path
}

// drainSpooled drains the stream into the canonical concatenated key
// encoding.
func drainSpooled[K cmp.Ordered](t *testing.T, codec comm.Codec[K], res *SpooledResult[K]) []byte {
	t.Helper()
	var out []byte
	n := 0
	for {
		batch, err := res.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if len(batch) == 0 {
			break
		}
		for _, e := range batch {
			out = appendKeyBytes(codec, out, e.Key)
		}
		n += len(batch)
	}
	if n != res.N {
		t.Fatalf("stream yielded %d entries, result promised %d", n, res.N)
	}
	return out
}

// residentKeyBytes sorts keys through the resident pipeline and encodes
// the globally sorted key sequence — the byte-identity reference.
func residentKeyBytes[K cmp.Ordered](t *testing.T, codec comm.Codec[K], keys []K, procs int) []byte {
	t.Helper()
	e, err := NewEngine[K](Options{Procs: procs, WorkersPerProc: 2}, codec)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	parts := make([][]K, procs)
	per := (len(keys) + procs - 1) / procs
	for i := range parts {
		lo := min(i*per, len(keys))
		hi := min(lo+per, len(keys))
		parts[i] = keys[lo:hi]
	}
	res, err := e.Sort(parts)
	if err != nil {
		t.Fatalf("Sort: %v", err)
	}
	var out []byte
	for _, p := range res.Parts {
		for _, en := range p {
			out = appendKeyBytes(codec, out, en.Key)
		}
	}
	return out
}

// spooledCase runs one SortSpooled end to end under a tiny budget and
// checks byte-identity, the tracker-accounted peak bound, and scratch
// cleanup.
func spooledCase[K cmp.Ordered](t *testing.T, codec comm.Codec[K], keys []K) {
	t.Helper()
	const procs = 3
	spillDir := t.TempDir()
	spoolDir := t.TempDir()
	path := writeSpool(t, codec, spoolDir, keys)

	eb := int64(entryBytes[K]())
	// A budget around a tenth of the dataset forces multi-run externals.
	budget := int64(len(keys)) * eb / 10
	if budget < 2*minSpoolChunkEntries*eb {
		budget = 2 * minSpoolChunkEntries * eb
	}
	e, err := NewEngine[K](Options{
		Procs: procs, WorkersPerProc: 2,
		MemoryBudget: budget, SpillDir: spillDir,
	}, codec)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()

	res, err := e.SortSpooled(context.Background(), SpooledInput{Path: path, N: len(keys)})
	if err != nil {
		t.Fatalf("SortSpooled: %v", err)
	}
	got := drainSpooled(t, codec, res)
	if err := res.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	want := residentKeyBytes(t, codec, keys, procs)
	if !bytes.Equal(got, want) {
		t.Fatalf("spooled output diverges from resident sort (%d vs %d bytes)", len(got), len(want))
	}

	// The whole point: temp peak scales with p x budget (chunk + scratch
	// per node, plus decoded block slabs and the merge batch as fixed
	// slack), and stays strictly under the dataset's resident size.
	peak := res.Report.TempPeakBytes
	ceiling := 2*int64(procs)*budget + 1<<20
	dataset := int64(len(keys)) * eb
	if peak == 0 || peak > ceiling {
		t.Fatalf("TempPeakBytes = %d, want in (0, %d] (dataset is %d bytes)",
			peak, ceiling, dataset)
	}
	if peak >= dataset {
		t.Fatalf("TempPeakBytes = %d not under the %d-byte dataset — nothing was out of core",
			peak, dataset)
	}
	if res.Report.SpillBytes == 0 || res.Report.SpillReads == 0 {
		t.Fatalf("spooled sort reports SpillBytes=%d SpillReads=%d, want both > 0",
			res.Report.SpillBytes, res.Report.SpillReads)
	}
	if res.Report.MergePath != "spooled-kway+spill" {
		t.Fatalf("MergePath = %q", res.Report.MergePath)
	}

	// Scratch is gone; the caller-owned spool file is not.
	left, err := filepath.Glob(filepath.Join(spillDir, "pgxsort-spool-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("scratch dirs left behind after Close: %v", left)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("spool input should remain caller-owned: %v", err)
	}
}

// TestSortSpooled checks the out-of-core spooled path against the
// resident pipeline for every key type, including the float64 total
// order's hard cases.
func TestSortSpooled(t *testing.T) {
	const n = 50000
	rng := dist.NewRNG(7)
	t.Run("uint64", func(t *testing.T) {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64() % 5000 // heavy ties
		}
		spooledCase[uint64](t, comm.U64Codec{}, keys)
	})
	t.Run("float64", func(t *testing.T) {
		keys := make([]float64, n)
		for i := range keys {
			switch i % 97 {
			case 0:
				keys[i] = math.NaN()
			case 1:
				keys[i] = math.Inf(1)
			case 2:
				keys[i] = math.Copysign(0, -1)
			default:
				keys[i] = float64(int64(rng.Uint64()%2000) - 1000)
			}
		}
		spooledCase[float64](t, comm.F64Codec{}, keys)
	})
	t.Run("string", func(t *testing.T) {
		keys := make([]string, n)
		alpha := "abcdefgh"
		for i := range keys {
			// Shared 8-byte prefixes exercise the inexact-norm fallback.
			b := []byte("prefixxx____")
			for j := 8; j < len(b); j++ {
				b[j] = alpha[rng.Uint64()%8]
			}
			keys[i] = string(b)
		}
		spooledCase[string](t, comm.StringCodec{}, keys)
	})
}

// TestSortSpooledEmpty covers the zero-entry upload.
func TestSortSpooledEmpty(t *testing.T) {
	dir := t.TempDir()
	path := writeSpool[uint64](t, comm.U64Codec{}, dir, nil)
	e, err := NewEngine[uint64](Options{Procs: 2}, comm.U64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res, err := e.SortSpooled(context.Background(), SpooledInput{Path: path, N: 0})
	if err != nil {
		t.Fatalf("SortSpooled: %v", err)
	}
	batch, err := res.Next()
	if err != nil || len(batch) != 0 {
		t.Fatalf("empty spool yielded %d entries, err %v", len(batch), err)
	}
	if err := res.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRunOneSpooledRetry arms the spool-read failpoint: the first attempt
// dies mid-run-formation, the scheduler classifies it Transient and
// re-runs it against the still-on-disk spool file, and the second attempt
// streams the correct bytes.
func TestRunOneSpooledRetry(t *testing.T) {
	failpoint.Reset()
	t.Cleanup(failpoint.Reset)
	const site = "serve/spool-read"
	failpoint.Set(site, failpoint.Schedule{Mode: failpoint.ModeError})

	const n = 5000
	rng := dist.NewRNG(11)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	dir := t.TempDir()
	path := writeSpool[uint64](t, comm.U64Codec{}, dir, keys)

	e, err := NewEngine[uint64](Options{
		Procs: 2, WorkersPerProc: 2,
		MemoryBudget: 64 << 10, SpillDir: t.TempDir(),
	}, comm.U64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	s := NewScheduler(e, SortManyOpts{Retry: RetryPolicy{MaxAttempts: 3}})

	res, err := s.RunOneSpooled(context.Background(), SpooledInput{Path: path, N: n, ReadSite: site})
	if err != nil {
		t.Fatalf("RunOneSpooled: %v", err)
	}
	got := drainSpooled[uint64](t, comm.U64Codec{}, res)
	if err := res.Close(); err != nil {
		t.Fatal(err)
	}
	if res.Report.Attempts < 2 {
		t.Fatalf("Attempts = %d, want >= 2 (failpoint should have fired)", res.Report.Attempts)
	}
	if fired := failpoint.Fired(site); fired < 1 {
		t.Fatalf("failpoint fired %d times", fired)
	}
	want := residentKeyBytes[uint64](t, comm.U64Codec{}, keys, 2)
	if !bytes.Equal(got, want) {
		t.Fatal("retried spooled sort diverges from resident sort")
	}

	// The admission slot must be free again after Close: a second run
	// through the same scheduler completes.
	res2, err := s.RunOneSpooled(context.Background(), SpooledInput{Path: path, N: n})
	if err != nil {
		t.Fatalf("second RunOneSpooled: %v", err)
	}
	drainSpooled[uint64](t, comm.U64Codec{}, res2)
	if err := res2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestResultCursor checks the resident result's egress cursor yields the
// parts in global order.
func TestResultCursor(t *testing.T) {
	e, err := NewEngine[uint64](Options{Procs: 3}, comm.U64Codec{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := dist.NewRNG(3)
	parts := make([][]uint64, 3)
	for i := range parts {
		parts[i] = make([]uint64, 500)
		for j := range parts[i] {
			parts[i][j] = rng.Uint64() % 1000
		}
	}
	res, err := e.Sort(parts)
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	cur := res.Cursor()
	for {
		batch, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 {
			break
		}
		for _, en := range batch {
			got = append(got, en.Key)
		}
	}
	want := res.Keys()
	if len(got) != len(want) {
		t.Fatalf("cursor yielded %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cursor key %d = %d, want %d", i, got[i], want[i])
		}
	}
}
