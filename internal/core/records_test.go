package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"pgxsort/internal/comm"
	"pgxsort/internal/transport"
)

func TestStringSortBothTransports(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const p = 4
	parts := make([][]string, p)
	var all []string
	for i := range parts {
		for j := 0; j < 500; j++ {
			s := fmt.Sprintf("prefix-shared-%c%d", 'a'+rng.Intn(3), rng.Intn(50))
			parts[i] = append(parts[i], s)
			all = append(all, s)
		}
	}
	for _, tr := range []string{transport.KindChan, transport.KindTCP} {
		e, err := NewEngine[string](Options{Procs: p, Transport: tr}, comm.StringCodec{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Sort(parts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Report.LocalSortPath != "radix" {
			t.Fatalf("path = %s", res.Report.LocalSortPath)
		}
		got := res.Keys()
		want := append([]string(nil), all...)
		sort.Strings(want)
		if len(got) != len(want) {
			t.Fatalf("%s: len %d != %d", tr, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: idx %d: %q != %q", tr, i, got[i], want[i])
			}
		}
		e.Close()
	}
}

func TestRecordSortBothTransports(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const p = 4
	recs := make([][]comm.Record[uint64], p)
	for i := range recs {
		for j := 0; j < 300; j++ {
			k := uint64(rng.Intn(100))
			pay := []byte(fmt.Sprintf("payload-%d-%d-%d", i, j, k))
			recs[i] = append(recs[i], comm.Record[uint64]{Key: k, Payload: pay})
		}
	}
	for _, tr := range []string{transport.KindChan, transport.KindTCP} {
		e, err := NewEngine[uint64](Options{Procs: p, Transport: tr}, comm.NewRecordCodec[uint64](comm.U64Codec{}))
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.SortRecords(recs)
		if err != nil {
			t.Fatal(err)
		}
		// Every entry must carry exactly the payload its origin attached.
		for _, part := range res.Parts {
			for _, en := range part {
				want := string(recs[en.Proc][en.Index].Payload)
				if string(en.Payload) != want {
					t.Fatalf("%s: entry key=%d origin(%d,%d): payload %q != %q",
						tr, en.Key, en.Proc, en.Index, en.Payload, want)
				}
				if en.Key != recs[en.Proc][en.Index].Key {
					t.Fatalf("key/origin mismatch")
				}
			}
		}
		prev := uint64(0)
		for _, k := range res.Keys() {
			if k < prev {
				t.Fatalf("%s: unsorted", tr)
			}
			prev = k
		}
		e.Close()
	}
}
