package core

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pgxsort/internal/alloc"
	"pgxsort/internal/comm"
	"pgxsort/internal/datamgr"
	"pgxsort/internal/taskmgr"
	"pgxsort/internal/transport"
)

// Engine is a simulated PGX.D cluster that sorts datasets distributed
// across Procs processors. An engine may run many sorts, sequentially or
// simultaneously; Close releases its workers and network.
type Engine[K cmp.Ordered] struct {
	opts       Options
	codec      comm.Codec[K]
	net        transport.Network[K]
	nodes      []*node[K]
	nextSortID atomic.Int32
	closeOnce  sync.Once
	closeErr   error
	dispatchWG sync.WaitGroup

	// norm is the order-preserving uint64 normalization of K (nil when K
	// has none); normBits its significant width. A non-nil norm opens the
	// radix local-sort fast path (Options.LocalSort). normInexact marks a
	// monotone but non-injective norm (comm.InexactNormalizer): the radix
	// path stays open, but every comparator becomes a two-level compare
	// and each radix sort is finished by a comparison pass over equal-norm
	// runs.
	norm        func(K) uint64
	normBits    int
	normInexact bool
}

// node is one simulated processor: an endpoint on the network, a worker
// pool (task manager), a buffer policy (data manager), a temp-memory
// tracker and a dispatcher routing inbound messages to per-sort mailboxes.
type node[K cmp.Ordered] struct {
	id      int
	eng     *Engine[K]
	ep      transport.Endpoint[K]
	pool    *taskmgr.Pool
	dm      *datamgr.Manager
	tracker alloc.Tracker
	// entryPool recycles this processor's entry and scratch slabs across
	// sorts (nil when Options.DisablePooling), so a pipelined SortMany
	// run reuses buffers instead of reallocating per dataset.
	entryPool *alloc.SlabPool[comm.Entry[K]]

	mbMu      sync.Mutex
	mbs       map[mbKey]*mailbox[comm.Message[K]]
	closed    bool               // network gone; new mailboxes are born closed
	cancelled map[int32]struct{} // sorts cancelled mid-flight: their mailboxes are born closed
}

type mbKey struct {
	sortID int32
	kind   comm.Kind
}

// NewEngine builds an engine with the given options; codec serializes keys
// on the TCP transport and sizes them for traffic accounting everywhere.
func NewEngine[K cmp.Ordered](opts Options, codec comm.Codec[K]) (*Engine[K], error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	net, err := transport.NewWithConfig(opts.Transport, opts.Procs, codec, opts.TCP)
	if err != nil {
		return nil, err
	}
	// Faults wrap the base network directly (they need its Resetter);
	// jitter layers on top, so delayed sends still hit the faulty path.
	if opts.Faults != nil {
		net = transport.WithFaults(net, *opts.Faults)
	}
	if opts.JitterMaxDelay > 0 {
		net = transport.WithJitter(net, opts.JitterMaxDelay, opts.JitterSeed)
	}
	e := &Engine[K]{opts: opts, codec: codec, net: net}
	// A codec advertising its own normalization (comm.KeyNormalizer)
	// takes precedence over the built-in per-type table, so custom key
	// types can opt into the radix path. A payload-carrying wrapper
	// (comm.RecordCodec) is unwrapped first: the key codec decides the
	// normalization.
	kc := codec
	if u, ok := codec.(interface{ KeyCodec() comm.Codec[K] }); ok {
		kc = u.KeyCodec()
	}
	if kn, ok := kc.(comm.KeyNormalizer[K]); ok {
		e.norm, e.normBits = kn.Norm, kn.NormBits()
		if ix, ok := kc.(comm.InexactNormalizer); ok && ix.NormInexact() {
			e.normInexact = true
		}
	} else if norm, bits, ok := comm.NormFor[K](); ok {
		e.norm, e.normBits = norm, bits
	}
	e.nodes = make([]*node[K], opts.Procs)
	for i := range e.nodes {
		n := &node[K]{
			id:   i,
			eng:  e,
			ep:   net.Endpoint(i),
			pool: taskmgr.NewPool(opts.WorkersPerProc),
			mbs:  make(map[mbKey]*mailbox[comm.Message[K]]),
		}
		if !opts.DisablePooling {
			n.entryPool = &alloc.SlabPool[comm.Entry[K]]{}
		}
		n.dm = &datamgr.Manager{BufferBytes: opts.BufferBytes, Tracker: &n.tracker}
		e.nodes[i] = n
		e.dispatchWG.Add(1)
		go n.dispatch()
	}
	return e, nil
}

// Options returns the resolved engine configuration.
func (e *Engine[K]) Options() Options { return e.opts }

// Close shuts the cluster down: the transport drains in-flight frames
// (bounded by Options.TCP.DrainTimeout on TCP), listeners and
// connections close, and the workers stop. In-flight sorts fail; Close
// is idempotent and returns the first real transport failure it observed
// (a broken link, a non-shutdown accept error, or a drain timeout).
func (e *Engine[K]) Close() error {
	e.closeOnce.Do(func() {
		e.closeErr = e.net.Close()
		e.dispatchWG.Wait()
		for _, n := range e.nodes {
			n.pool.Close()
		}
	})
	return e.closeErr
}

// dispatch routes inbound messages into (sortID, kind) mailboxes until the
// network closes, then closes every mailbox so blocked steps unblock.
func (n *node[K]) dispatch() {
	defer n.eng.dispatchWG.Done()
	for {
		m, ok := n.ep.Recv()
		if !ok {
			n.mbMu.Lock()
			for _, mb := range n.mbs {
				mb.close()
			}
			n.closed = true
			n.mbMu.Unlock()
			return
		}
		n.mb(m.SortID, m.Kind).push(m)
	}
}

// mb returns (creating if needed) the mailbox for one sort and kind.
func (n *node[K]) mb(sortID int32, kind comm.Kind) *mailbox[comm.Message[K]] {
	key := mbKey{sortID, kind}
	n.mbMu.Lock()
	defer n.mbMu.Unlock()
	mb, ok := n.mbs[key]
	if !ok {
		mb = newMailbox[comm.Message[K]]()
		if n.closed {
			mb.close()
		}
		if _, dead := n.cancelled[sortID]; dead {
			mb.close()
		}
		n.mbs[key] = mb
	}
	return mb
}

// cancelSort fails every blocked recv of one sort on this node: existing
// mailboxes close, and mailboxes created later for the sort are born
// closed. Other sorts multiplexed on the node are untouched.
func (n *node[K]) cancelSort(sortID int32) {
	n.mbMu.Lock()
	defer n.mbMu.Unlock()
	if n.cancelled == nil {
		n.cancelled = make(map[int32]struct{})
	}
	n.cancelled[sortID] = struct{}{}
	for key, mb := range n.mbs {
		if key.sortID == sortID {
			mb.close()
		}
	}
}

// isCancelled reports whether cancelSort has been called for sortID on
// this node — recv uses it to tell a deliberate teardown from a dead
// network.
func (n *node[K]) isCancelled(sortID int32) bool {
	n.mbMu.Lock()
	defer n.mbMu.Unlock()
	_, ok := n.cancelled[sortID]
	return ok
}

// dropSort releases the mailboxes (and cancellation marker) of a
// finished sort.
func (n *node[K]) dropSort(sortID int32) {
	n.mbMu.Lock()
	defer n.mbMu.Unlock()
	delete(n.cancelled, sortID)
	for key := range n.mbs {
		if key.sortID == sortID {
			delete(n.mbs, key)
		}
	}
}

// job is one dataset in engine-internal form: exactly one of parts (bare
// keys) or recs (key+payload records) is set. Threading jobs instead of
// [][]K through sortOne and the scheduler lets record datasets ride the
// same staged pipeline as key datasets.
type job[K cmp.Ordered] struct {
	parts [][]K
	recs  [][]comm.Record[K]
}

func (j job[K]) nparts() int {
	if j.recs != nil {
		return len(j.recs)
	}
	return len(j.parts)
}

func (j job[K]) partLen(i int) int {
	if j.recs != nil {
		return len(j.recs[i])
	}
	return len(j.parts[i])
}

func (j job[K]) size() int {
	n := 0
	for i := 0; i < j.nparts(); i++ {
		n += j.partLen(i)
	}
	return n
}

// checkJob validates the shape of one distributed dataset.
func (e *Engine[K]) checkJob(j job[K]) error {
	if j.nparts() != e.opts.Procs {
		return fmt.Errorf("core: got %d parts for %d processors", j.nparts(), e.opts.Procs)
	}
	for i := 0; i < j.nparts(); i++ {
		if j.partLen(i) > 1<<31-1 {
			return fmt.Errorf("core: local part of %d entries exceeds the 2^31-1 origin-index limit", j.partLen(i))
		}
	}
	return nil
}

// checkParts validates the shape of one distributed key dataset.
func (e *Engine[K]) checkParts(parts [][]K) error {
	return e.checkJob(job[K]{parts: parts})
}

// checkRecordCodec gates the record-sorting APIs: without a
// payload-carrying codec (comm.NewRecordCodec) the TCP transport would
// silently drop payloads mid-exchange, and the two transports would
// account different traffic for the same workload.
func (e *Engine[K]) checkRecordCodec() error {
	if pc, ok := e.codec.(comm.PayloadCarrier); ok && pc.CarriesPayload() {
		return nil
	}
	return fmt.Errorf("core: record sorts need a payload-carrying codec (comm.NewRecordCodec); engine has %T", e.codec)
}

// Sort sorts a dataset that is already distributed: parts[i] is processor
// i's local input. len(parts) must equal Procs. The input slices are not
// modified.
func (e *Engine[K]) Sort(parts [][]K) (*Result[K], error) {
	return e.SortCtx(context.Background(), parts)
}

// SortCtx is Sort with cancellation: when ctx is cancelled mid-flight the
// sort's blocked receives fail and SortCtx returns ctx's error. The
// engine stays usable for subsequent sorts — only this sort's mailboxes
// are torn down.
func (e *Engine[K]) SortCtx(ctx context.Context, parts [][]K) (*Result[K], error) {
	if err := e.checkParts(parts); err != nil {
		return nil, err
	}
	return e.sortOne(ctx, job[K]{parts: parts}, nil)
}

// SortRecords sorts a distributed dataset of key+payload records:
// recs[i] is processor i's local input. Payloads are opaque — they never
// influence the order — and travel with their keys through the whole
// pipeline, so every entry of the result carries its record body. The
// engine's codec must carry payloads (comm.NewRecordCodec).
func (e *Engine[K]) SortRecords(recs [][]comm.Record[K]) (*Result[K], error) {
	return e.SortRecordsCtx(context.Background(), recs)
}

// SortRecordsCtx is SortRecords with cancellation.
func (e *Engine[K]) SortRecordsCtx(ctx context.Context, recs [][]comm.Record[K]) (*Result[K], error) {
	if err := e.checkRecordCodec(); err != nil {
		return nil, err
	}
	j := job[K]{recs: recs}
	if err := e.checkJob(j); err != nil {
		return nil, err
	}
	return e.sortOne(ctx, j, nil)
}

// SortSlice block-distributes one slice across the processors and sorts it.
func (e *Engine[K]) SortSlice(data []K) (*Result[K], error) {
	p := e.opts.Procs
	parts := make([][]K, p)
	for i := 0; i < p; i++ {
		lo := i * len(data) / p
		hi := (i + 1) * len(data) / p
		parts[i] = data[lo:hi]
	}
	return e.Sort(parts)
}

// SortMany runs several sorts over the same engine, multiplexed by sort
// id — the paper's "sort multiple different data simultaneously" — using
// the pipelined scheduler with the engine's default knobs: at most
// Options.MaxInflight datasets in flight and one dataset per
// communication stage at a time. Results are returned in input order;
// every failure is joined into the returned error (see Scheduler.Run).
func (e *Engine[K]) SortMany(datasets ...[][]K) ([]*Result[K], error) {
	return e.SortManyWith(context.Background(), SortManyOpts{}, datasets...)
}

// SortManyWith is SortMany with cancellation and explicit scheduling
// knobs (inflight cap, admission order, or the naive unbounded baseline).
func (e *Engine[K]) SortManyWith(ctx context.Context, opts SortManyOpts, datasets ...[][]K) ([]*Result[K], error) {
	return NewScheduler(e, opts).Run(ctx, datasets)
}

// SortManyRecords pipelines several record datasets through the scheduler,
// exactly as SortMany does for key datasets.
func (e *Engine[K]) SortManyRecords(datasets ...[][]comm.Record[K]) ([]*Result[K], error) {
	return e.SortManyRecordsWith(context.Background(), SortManyOpts{}, datasets...)
}

// SortManyRecordsWith is SortManyRecords with cancellation and explicit
// scheduling knobs.
func (e *Engine[K]) SortManyRecordsWith(ctx context.Context, opts SortManyOpts, datasets ...[][]comm.Record[K]) ([]*Result[K], error) {
	if err := e.checkRecordCodec(); err != nil {
		return nil, err
	}
	return NewScheduler(e, opts).RunRecords(ctx, datasets)
}

// sortOne runs the staged pipeline on every node for one dataset. ctrl is
// non-nil only under the SortMany scheduler; ctx cancellation tears down
// this sort's mailboxes without touching other sorts on the engine.
func (e *Engine[K]) sortOne(ctx context.Context, j job[K], ctrl *stageCtrl) (*Result[K], error) {
	sortID := e.nextSortID.Add(1)
	p := e.opts.Procs

	// The watcher must be fully stopped before dropSort below, or a late
	// cancellation could re-mark a sort id whose marker dropSort already
	// deleted, leaking it (and, after int32 wraparound, poisoning a
	// reused id).
	stopWatcher := func() {}
	if ctx != nil && ctx.Done() != nil {
		stop := make(chan struct{})
		watcherDone := make(chan struct{})
		go func() {
			defer close(watcherDone)
			select {
			case <-ctx.Done():
				for _, n := range e.nodes {
					n.cancelSort(sortID)
				}
			case <-stop:
			}
		}()
		stopWatcher = func() {
			close(stop)
			<-watcherDone
		}
	}

	type nodeOut struct {
		entries []comm.Entry[K]
		report  NodeReport
		err     error
	}
	outs := make([]nodeOut, p)
	cmps := e.comparators()
	runs := make([]*sortRun[K], p)
	start := time.Now()
	// abort tears the whole sort down the moment any node fails: peers
	// blocked on messages the failed node will never send observe
	// errSortAborted instead of hanging until engine close. The same
	// mechanism ctx cancellation uses, so other sorts multiplexed on the
	// engine are untouched.
	var abortOnce sync.Once
	abort := func() {
		abortOnce.Do(func() {
			for _, n := range e.nodes {
				n.cancelSort(sortID)
			}
		})
	}
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := &sortRun[K]{
				node:   e.nodes[i],
				sortID: sortID,
				opts:   e.opts,
				codec:  e.codec,
				ctx:    ctx,
				ctrl:   ctrl,
				cmps:   cmps,
			}
			if j.recs != nil {
				s.inputRec = j.recs[i]
			} else {
				s.input = j.parts[i]
			}
			runs[i] = s
			outs[i].entries, outs[i].err = s.run()
			outs[i].report = s.report
			if outs[i].err != nil {
				abort()
			}
		}(i)
	}
	wg.Wait()
	total := time.Since(start)
	stopWatcher()
	for i := 0; i < p; i++ {
		e.nodes[i].dropSort(sortID)
		// All nodes have joined: no exchange message aliases a retired
		// buffer any more, so the input-entry slabs can be recycled.
		runs[i].recycleRetired()
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	// Root-cause selection: abort echoes (errSortAborted) are teardown
	// noise, and among real errors the most actionable class wins — a
	// Fatal link death outranks the Transient "network closed" it causes
	// on other nodes. The winner is wrapped as a classified *Failure.
	rootIdx := -1
	for i, o := range outs {
		if o.err == nil || errors.Is(o.err, errSortAborted) {
			continue
		}
		if rootIdx == -1 || classPriority(Classify(o.err)) > classPriority(Classify(outs[rootIdx].err)) {
			rootIdx = i
		}
	}
	if rootIdx == -1 {
		for i, o := range outs {
			if o.err != nil { // abort echoes only: keep the first
				rootIdx = i
				break
			}
		}
	}
	if rootIdx >= 0 {
		o := outs[rootIdx]
		return nil, &Failure{Class: Classify(o.err), Stage: runs[rootIdx].curStage, Node: rootIdx, Err: o.err}
	}

	rep := Report{
		Procs:   p,
		Workers: e.opts.WorkersPerProc,
		Total:   total,
		PerNode: make([]NodeReport, p),
	}
	for i, o := range outs {
		nr := o.report
		rep.PerNode[i] = nr
		rep.N += j.partLen(i)
		for s := Step(0); s < NumSteps; s++ {
			if nr.Steps[s] > rep.Steps[s] {
				rep.Steps[s] = nr.Steps[s]
			}
		}
		rep.BytesSent += nr.BytesSent
		rep.MsgsSent += nr.MsgsSent
		rep.SampleBytes += nr.SampleBytes
		rep.MetaBytes += nr.MetaBytes
		rep.DataBytes += nr.DataBytes
		if nr.TempPeakBytes > rep.TempPeakBytes {
			rep.TempPeakBytes = nr.TempPeakBytes
		}
		rep.ResidentBytes += nr.ResidentBytes
		rep.SpillBytes += nr.SpillBytes
		rep.SpillReads += nr.SpillReads
		if nr.SamplesSent > rep.SamplesPerProc {
			rep.SamplesPerProc = nr.SamplesSent
		}
		if nr.SendStall > rep.SendStall {
			rep.SendStall = nr.SendStall
		}
		rep.Reconnects += nr.Reconnects
		rep.FramesResent += nr.FramesResent
		if nr.MergeOverlapSaved > rep.MergeOverlapSaved {
			rep.MergeOverlapSaved = nr.MergeOverlapSaved
		}
	}
	rep.CommTime = rep.Steps[StepSampling] + rep.Steps[StepSplitters] + rep.Steps[StepExchange]
	rep.LocalSortPath = cmps.path
	rep.MergePath = e.opts.Merge.String()
	if rep.SpillBytes > 0 {
		// At least one node ran out-of-core under Options.MemoryBudget;
		// flag it next to the configured strategy.
		rep.MergePath += "+spill"
	}
	rep.Sched = ctrl.snapshot()

	parts2 := make([][]comm.Entry[K], p)
	for i, o := range outs {
		parts2[i] = o.entries
	}
	return &Result[K]{Parts: parts2, Report: rep}, nil
}
