package core

import (
	"cmp"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pgxsort/internal/alloc"
	"pgxsort/internal/comm"
	"pgxsort/internal/datamgr"
	"pgxsort/internal/taskmgr"
	"pgxsort/internal/transport"
)

// Engine is a simulated PGX.D cluster that sorts datasets distributed
// across Procs processors. An engine may run many sorts, sequentially or
// simultaneously; Close releases its workers and network.
type Engine[K cmp.Ordered] struct {
	opts       Options
	codec      comm.Codec[K]
	net        transport.Network[K]
	nodes      []*node[K]
	nextSortID atomic.Int32
	closeOnce  sync.Once
	dispatchWG sync.WaitGroup
}

// node is one simulated processor: an endpoint on the network, a worker
// pool (task manager), a buffer policy (data manager), a temp-memory
// tracker and a dispatcher routing inbound messages to per-sort mailboxes.
type node[K cmp.Ordered] struct {
	id      int
	eng     *Engine[K]
	ep      transport.Endpoint[K]
	pool    *taskmgr.Pool
	dm      *datamgr.Manager
	tracker alloc.Tracker

	mbMu   sync.Mutex
	mbs    map[mbKey]*mailbox[comm.Message[K]]
	closed bool // network gone; new mailboxes are born closed
}

type mbKey struct {
	sortID int32
	kind   comm.Kind
}

// NewEngine builds an engine with the given options; codec serializes keys
// on the TCP transport and sizes them for traffic accounting everywhere.
func NewEngine[K cmp.Ordered](opts Options, codec comm.Codec[K]) (*Engine[K], error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	net, err := transport.New(opts.Transport, opts.Procs, codec)
	if err != nil {
		return nil, err
	}
	if opts.JitterMaxDelay > 0 {
		net = transport.WithJitter(net, opts.JitterMaxDelay, opts.JitterSeed)
	}
	e := &Engine[K]{opts: opts, codec: codec, net: net}
	e.nodes = make([]*node[K], opts.Procs)
	for i := range e.nodes {
		n := &node[K]{
			id:   i,
			eng:  e,
			ep:   net.Endpoint(i),
			pool: taskmgr.NewPool(opts.WorkersPerProc),
			mbs:  make(map[mbKey]*mailbox[comm.Message[K]]),
		}
		n.dm = &datamgr.Manager{BufferBytes: opts.BufferBytes, Tracker: &n.tracker}
		e.nodes[i] = n
		e.dispatchWG.Add(1)
		go n.dispatch()
	}
	return e, nil
}

// Options returns the resolved engine configuration.
func (e *Engine[K]) Options() Options { return e.opts }

// Close shuts the cluster down. In-flight sorts fail; Close is idempotent.
func (e *Engine[K]) Close() {
	e.closeOnce.Do(func() {
		e.net.Close()
		e.dispatchWG.Wait()
		for _, n := range e.nodes {
			n.pool.Close()
		}
	})
}

// dispatch routes inbound messages into (sortID, kind) mailboxes until the
// network closes, then closes every mailbox so blocked steps unblock.
func (n *node[K]) dispatch() {
	defer n.eng.dispatchWG.Done()
	for {
		m, ok := n.ep.Recv()
		if !ok {
			n.mbMu.Lock()
			for _, mb := range n.mbs {
				mb.close()
			}
			n.closed = true
			n.mbMu.Unlock()
			return
		}
		n.mb(m.SortID, m.Kind).push(m)
	}
}

// mb returns (creating if needed) the mailbox for one sort and kind.
func (n *node[K]) mb(sortID int32, kind comm.Kind) *mailbox[comm.Message[K]] {
	key := mbKey{sortID, kind}
	n.mbMu.Lock()
	defer n.mbMu.Unlock()
	mb, ok := n.mbs[key]
	if !ok {
		mb = newMailbox[comm.Message[K]]()
		if n.closed {
			mb.close()
		}
		n.mbs[key] = mb
	}
	return mb
}

// dropSort releases the mailboxes of a finished sort.
func (n *node[K]) dropSort(sortID int32) {
	n.mbMu.Lock()
	defer n.mbMu.Unlock()
	for key := range n.mbs {
		if key.sortID == sortID {
			delete(n.mbs, key)
		}
	}
}

// Sort sorts a dataset that is already distributed: parts[i] is processor
// i's local input. len(parts) must equal Procs. The input slices are not
// modified.
func (e *Engine[K]) Sort(parts [][]K) (*Result[K], error) {
	if len(parts) != e.opts.Procs {
		return nil, fmt.Errorf("core: got %d parts for %d processors", len(parts), e.opts.Procs)
	}
	for _, part := range parts {
		if len(part) > 1<<31-1 {
			return nil, fmt.Errorf("core: local part of %d entries exceeds the 2^31-1 origin-index limit", len(part))
		}
	}
	return e.sortOne(parts)
}

// SortSlice block-distributes one slice across the processors and sorts it.
func (e *Engine[K]) SortSlice(data []K) (*Result[K], error) {
	p := e.opts.Procs
	parts := make([][]K, p)
	for i := 0; i < p; i++ {
		lo := i * len(data) / p
		hi := (i + 1) * len(data) / p
		parts[i] = data[lo:hi]
	}
	return e.Sort(parts)
}

// SortMany runs several sorts simultaneously over the same engine,
// multiplexed by sort id — the paper's "sort multiple different data
// simultaneously". Results are returned in input order; the first error
// (if any) is reported after all sorts finish.
func (e *Engine[K]) SortMany(datasets ...[][]K) ([]*Result[K], error) {
	results := make([]*Result[K], len(datasets))
	errs := make([]error, len(datasets))
	var wg sync.WaitGroup
	for i, ds := range datasets {
		wg.Add(1)
		go func(i int, ds [][]K) {
			defer wg.Done()
			results[i], errs[i] = e.Sort(ds)
		}(i, ds)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// sortOne runs the six-step pipeline on every node for one dataset.
func (e *Engine[K]) sortOne(parts [][]K) (*Result[K], error) {
	sortID := e.nextSortID.Add(1)
	p := e.opts.Procs

	type nodeOut struct {
		entries []comm.Entry[K]
		report  NodeReport
		err     error
	}
	outs := make([]nodeOut, p)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := &sortRun[K]{
				node:   e.nodes[i],
				sortID: sortID,
				opts:   e.opts,
				codec:  e.codec,
				input:  parts[i],
			}
			outs[i].entries, outs[i].err = s.run()
			outs[i].report = s.report
		}(i)
	}
	wg.Wait()
	total := time.Since(start)
	for i := 0; i < p; i++ {
		e.nodes[i].dropSort(sortID)
	}
	for i, o := range outs {
		if o.err != nil {
			return nil, fmt.Errorf("core: node %d: %w", i, o.err)
		}
	}

	rep := Report{
		Procs:   p,
		Workers: e.opts.WorkersPerProc,
		Total:   total,
		PerNode: make([]NodeReport, p),
	}
	for i, o := range outs {
		nr := o.report
		rep.PerNode[i] = nr
		rep.N += len(parts[i])
		for s := Step(0); s < NumSteps; s++ {
			if nr.Steps[s] > rep.Steps[s] {
				rep.Steps[s] = nr.Steps[s]
			}
		}
		rep.BytesSent += nr.BytesSent
		rep.MsgsSent += nr.MsgsSent
		rep.SampleBytes += nr.SampleBytes
		rep.MetaBytes += nr.MetaBytes
		rep.DataBytes += nr.DataBytes
		if nr.TempPeakBytes > rep.TempPeakBytes {
			rep.TempPeakBytes = nr.TempPeakBytes
		}
		rep.ResidentBytes += nr.ResidentBytes
		if nr.SamplesSent > rep.SamplesPerProc {
			rep.SamplesPerProc = nr.SamplesSent
		}
	}
	rep.CommTime = rep.Steps[StepSampling] + rep.Steps[StepSplitters] + rep.Steps[StepExchange]

	parts2 := make([][]comm.Entry[K], p)
	for i, o := range outs {
		parts2[i] = o.entries
	}
	return &Result[K]{Parts: parts2, Report: rep}, nil
}
