// Package core implements the paper's primary contribution: the PGX.D
// distributed sample sort (§IV). An Engine simulates p processors, each
// with its own worker pool (task manager), buffer policy (data manager)
// and network endpoint (communication manager), and runs the six-step
// pipeline:
//
//  1. parallel local quicksort with the balanced merging handler (Fig 2)
//  2. regular sampling, one 256KB/p buffer of samples to the master
//  3. master selects p-1 splitters and broadcasts them
//  4. binary-search range partitioning with the investigator (Fig 3)
//  5. asynchronous all-to-all exchange with precomputed write offsets
//  6. merge of the received runs — streamed into step 5 by default, each
//     run merging incrementally as it finishes arriving (Options.Merge),
//     with the paper's barriered balanced handler as the ablation
//
// Every entry keeps its provenance (origin processor and index), the
// result supports binary search and top-k retrieval, and several datasets
// can be sorted simultaneously over one engine — the API surface the
// paper describes in §III-IV.
package core

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"pgxsort/internal/sample"
	"pgxsort/internal/transport"
)

// MergeStrategy selects how step 6 combines the received sorted runs.
type MergeStrategy int

const (
	// MergeAuto (the default) resolves at engine construction: the
	// streaming exchange–merge overlap (MergeOverlap) when the processor
	// count is at least overlapAutoMinProcs — where both the exchange and
	// the merge are nontrivial, so hiding one behind the other pays — and
	// the runtime has at least overlapAutoMinCPUs CPUs to hide it in, and
	// the barriered balanced handler otherwise. The OverlapEnv environment
	// variable overrides the choice for ablation runs (see ParseOverlapFlag
	// for the on/off vocabulary).
	MergeAuto MergeStrategy = iota
	// MergeBalanced is the paper's balanced pairwise handler (Figure 2),
	// parallelized across each round, run after an exchange barrier. It is
	// the barriered baseline the overlap ablates against.
	MergeBalanced
	// MergeKWay is the loser-tree k-way merge ablation: fewer element
	// moves, but strictly sequential (also barriered).
	MergeKWay
	// MergeOverlap streams the merge into the exchange: each peer's run is
	// handed to an incremental merger the moment it finishes assembling,
	// so merge CPU burns during step-5 network idle time and only a final
	// parallel pass remains after the exchange. Output order is
	// deterministic — ties break by origin processor — and identical to
	// MergeKWay's, independent of arrival order.
	MergeOverlap
)

func (m MergeStrategy) String() string {
	switch m {
	case MergeAuto:
		return "auto"
	case MergeBalanced:
		return "balanced"
	case MergeKWay:
		return "kway"
	case MergeOverlap:
		return "overlap"
	default:
		return fmt.Sprintf("MergeStrategy(%d)", int(m))
	}
}

// OverlapEnv is the environment variable the ablation CI lane uses to
// force MergeAuto's resolution: "off" pins the barriered balanced path,
// "on" pins the streaming overlap. Explicit Options.Merge settings always
// win; the variable only steers Auto.
const OverlapEnv = "PGXSORT_OVERLAP"

// overlapAutoMinProcs is the processor count from which MergeAuto picks
// the streaming overlap: below it the exchange is too small to hide
// meaningful merge work behind.
const overlapAutoMinProcs = 4

// overlapAutoMinCPUs is the GOMAXPROCS floor for MergeAuto to pick the
// overlap. Hiding merge CPU inside the exchange window needs spare
// hardware parallelism; on a single-CPU runtime wall time equals total
// CPU work, so streaming the merge only adds coordination overhead and
// the barriered balanced handler wins.
const overlapAutoMinCPUs = 2

// ParseOverlapFlag maps the CLIs' -overlap flag to a merge strategy:
// "auto" (default) lets the engine resolve per run, "on" forces the
// streaming overlap, "off" forces the barriered balanced baseline (the
// ablation).
func ParseOverlapFlag(s string) (MergeStrategy, error) {
	switch s {
	case "auto", "":
		return MergeAuto, nil
	case "on":
		return MergeOverlap, nil
	case "off":
		return MergeBalanced, nil
	default:
		return 0, fmt.Errorf("core: unknown overlap mode %q (want auto, on or off)", s)
	}
}

// resolveAutoMerge picks MergeAuto's concrete strategy for a p-processor
// engine, honouring the OverlapEnv override.
func resolveAutoMerge(procs int) MergeStrategy {
	switch os.Getenv(OverlapEnv) {
	case "off":
		return MergeBalanced
	case "on":
		return MergeOverlap
	}
	if procs >= overlapAutoMinProcs && runtime.GOMAXPROCS(0) >= overlapAutoMinCPUs {
		return MergeOverlap
	}
	return MergeBalanced
}

// LocalSortMode selects how step 1 sorts each processor's local data.
type LocalSortMode int

const (
	// LocalSortAuto picks the radix fast path when the key type (or the
	// codec, via comm.KeyNormalizer) advertises an order-preserving
	// uint64 normalization, and the comparison path otherwise. The
	// default.
	LocalSortAuto LocalSortMode = iota
	// LocalSortComparison forces the paper's comparison path (parallel
	// quicksort + balanced merge) even for radix-able keys.
	LocalSortComparison
	// LocalSortRadix requests the chunked-parallel LSD radix sort over
	// normalized keys. Keys without a normalization fall back to the
	// comparison path (reported in Report.LocalSortPath).
	LocalSortRadix
)

func (m LocalSortMode) String() string {
	switch m {
	case LocalSortAuto:
		return "auto"
	case LocalSortComparison:
		return "comparison"
	case LocalSortRadix:
		return "radix"
	default:
		return fmt.Sprintf("LocalSortMode(%d)", int(m))
	}
}

// ParseLocalSortMode maps a mode name (as printed by String) back to its
// LocalSortMode.
func ParseLocalSortMode(s string) (LocalSortMode, error) {
	switch s {
	case "auto", "":
		return LocalSortAuto, nil
	case "comparison":
		return LocalSortComparison, nil
	case "radix":
		return LocalSortRadix, nil
	default:
		return 0, fmt.Errorf("core: unknown local sort mode %q (want auto, comparison or radix)", s)
	}
}

// Options configures an Engine. The zero value (after applying defaults)
// reproduces the paper's configuration; the Disable*/Sync* knobs exist for
// the ablation experiments.
type Options struct {
	// Procs is the number of simulated processors p. Default 4.
	Procs int
	// WorkersPerProc is the number of worker threads per processor
	// (the paper uses 32 on real machines). Default 2.
	WorkersPerProc int
	// BufferBytes is the read/request buffer size that drives both the
	// sample count and data chunking. Default 256KB (the paper's value).
	BufferBytes int
	// SampleFactor scales the paper's sample count X = BufferBytes/p.
	// Default 1.0; Figure 9 sweeps 0.004 .. 1.4.
	SampleFactor float64
	// DisableInvestigator turns off the duplicated-splitter investigator
	// (Figure 3c), reverting to the naive binary search of Figure 3b.
	DisableInvestigator bool
	// Merge selects the step-6 strategy. The default, MergeAuto, resolves
	// to the streaming exchange–merge overlap when Procs >=
	// overlapAutoMinProcs and GOMAXPROCS >= overlapAutoMinCPUs, and to
	// the barriered balanced handler otherwise (override with the
	// PGXSORT_OVERLAP env var or an explicit strategy). The resolved
	// strategy is visible in Options() and Report.MergePath.
	Merge MergeStrategy
	// LocalSort selects the step-1 path: LocalSortAuto (default) uses the
	// non-comparison radix fast path whenever the key normalizes to
	// uint64, LocalSortComparison/LocalSortRadix force a path. The path
	// actually taken is reported in Report.LocalSortPath.
	LocalSort LocalSortMode
	// DisablePooling turns off the per-node scratch-buffer pools, so
	// every sort allocates its entry buffers, merge scratch and exchange
	// assembly fresh (the unpooled baseline for allocation benchmarks).
	DisablePooling bool
	// SyncExchange replaces the asynchronous overlap of step 5 with a
	// bulk-synchronous send-barrier-receive schedule (ablation).
	SyncExchange bool
	// Transport selects the network: transport.KindChan (default) or
	// transport.KindTCP.
	Transport string
	// TCP shapes the TCP transport for real clusters: listen/dial
	// addresses per node, connect timeout and retry backoff, read/write/
	// ack deadlines, frame-size limit and per-link send windows. The zero
	// value is the loopback default. Ignored by the chan transport.
	TCP transport.Config
	// Faults, when non-nil, wraps the network with the fault-injection
	// harness (transport.WithFaults): connection resets and delays on a
	// deterministic schedule, used by the chaos tests to prove a sort
	// survives mid-exchange connection loss. The plan must be
	// recoverable (no drops or duplicates): the engine requires reliable
	// delivery.
	Faults *transport.FaultPlan
	// Master is the processor that selects splitters. Default 0.
	Master int
	// JitterMaxDelay injects a pseudo-random delay in [0, JitterMaxDelay)
	// before every send (failure injection for timing assumptions; used
	// by chaos tests, zero in production).
	JitterMaxDelay time.Duration
	// JitterSeed seeds the injected delays.
	JitterSeed uint64
	// MaxInflight is the default admission cap of the SortMany scheduler:
	// how many datasets may be in flight at once (one of them in a
	// communication stage). Default 2. SortManyOpts.MaxInflight overrides
	// it per call.
	MaxInflight int
	// MemoryBudget caps each node's *temporary* entry memory (the merge
	// scratch, exchange assembly and other tracker-accounted staging —
	// the TempPeakBytes column, not the resident input/result). When a
	// stage would allocate past the budget it spills sorted runs to
	// block files under SpillDir instead (internal/spill) and streams
	// them back through the merge, byte-identical to the in-memory run.
	// Zero reads the MemBudgetEnv environment variable (unset or
	// unparsable means unlimited); negative is explicitly unlimited,
	// ignoring the environment.
	MemoryBudget int64
	// SpillDir is where spilled run files live; each sort creates (and
	// removes) its own temporary directory underneath. Empty uses the
	// system temp dir. Put it on the fastest disk available: spill I/O
	// sits on the local-sort and merge critical paths.
	SpillDir string
}

// MemBudgetEnv is the environment variable the tier-1 spill ablation
// lane uses to force a per-node memory budget onto every sort that does
// not set one explicitly: the same K/M/G vocabulary as the CLIs'
// -mem-budget flag (see ParseMemBudget). Explicit Options.MemoryBudget
// settings — including negative for explicitly unlimited — always win.
const MemBudgetEnv = "PGXSORT_MEM_BUDGET"

// ParseMemBudget parses a human-friendly byte count for -mem-budget
// flags: a plain integer, or one with a K/M/G suffix (binary multiples,
// case-insensitive). Empty and "0" mean no budget.
func ParseMemBudget(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult = 1 << 10
		s = s[:len(s)-1]
	case 'm', 'M':
		mult = 1 << 20
		s = s[:len(s)-1]
	case 'g', 'G':
		mult = 1 << 30
		s = s[:len(s)-1]
	}
	var n int64
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil || fmt.Sprint(n) != s {
		return 0, fmt.Errorf("core: bad memory budget %q (want e.g. 64M, 2G, 1048576)", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("core: negative memory budget %q", s)
	}
	return n * mult, nil
}

// withDefaults returns a copy of o with defaults filled in.
func (o Options) withDefaults() Options {
	if o.Procs <= 0 {
		o.Procs = 4
	}
	if o.WorkersPerProc <= 0 {
		o.WorkersPerProc = 2
	}
	if o.BufferBytes <= 0 {
		o.BufferBytes = sample.DefaultBufferBytes
	}
	if o.SampleFactor <= 0 {
		o.SampleFactor = 1.0
	}
	if o.Transport == "" {
		o.Transport = transport.KindChan
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = DefaultMaxInflight
	}
	if o.Merge == MergeAuto {
		o.Merge = resolveAutoMerge(o.Procs)
	}
	if o.MemoryBudget == 0 {
		if b, err := ParseMemBudget(os.Getenv(MemBudgetEnv)); err == nil {
			o.MemoryBudget = b
		}
	}
	return o
}

// validate reports configuration errors not fixable by defaulting.
func (o Options) validate() error {
	if o.Master < 0 || o.Master >= o.Procs {
		return fmt.Errorf("core: master %d out of range [0,%d)", o.Master, o.Procs)
	}
	if o.Merge < MergeAuto || o.Merge > MergeOverlap {
		return fmt.Errorf("core: unknown merge strategy %d", o.Merge)
	}
	if o.LocalSort != LocalSortAuto && o.LocalSort != LocalSortComparison && o.LocalSort != LocalSortRadix {
		return fmt.Errorf("core: unknown local sort mode %d", o.LocalSort)
	}
	if o.Transport != transport.KindChan && o.Transport != transport.KindTCP {
		return fmt.Errorf("core: unknown transport %q", o.Transport)
	}
	if len(o.TCP.LocalNodes) > 0 {
		return fmt.Errorf("core: the engine hosts every node; TCP.LocalNodes is only for transport-level partial meshes")
	}
	if o.Faults != nil && !o.Faults.Recoverable() {
		return fmt.Errorf("core: fault plan drops or duplicates messages; the engine requires reliable delivery (use resets/delays)")
	}
	return nil
}
