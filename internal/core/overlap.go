package core

import (
	"cmp"
	"runtime"
	"time"

	"pgxsort/internal/comm"
	"pgxsort/internal/datamgr"
	"pgxsort/internal/lsort"
)

// overlapMerger is the receive side of the streaming exchange–merge
// overlap (Options.Merge == MergeOverlap). Instead of waiting for the
// whole assembly barrier and then merging (steps 5 then 6, strictly
// ordered), the node hands each peer's run to this merger the moment its
// assembly region completes; a dedicated goroutine folds the runs into an
// incremental ladder (lsort.RunLadder), so merge CPU burns during step-5
// network idle time. After the exchange only the ladder's final
// splitter-partitioned parallel pass remains — the merge latency a
// barriered schedule would serialize after the exchange is hidden inside
// it, and surfaces as Report.MergeOverlapSaved.
//
// Output determinism: the ladder merges under tieLess, which refines the
// sort order with the origin processor on equal keys. Entries of one
// source are never split across ladder runs and stable merges preserve
// their relative order, so the merged sequence is the unique linear
// extension of (key, origin, within-run order) — independent of run
// arrival order, transport, and merge-tree shape, and byte-identical to
// the barriered MergeKWay output. The differential fuzz tests hold the
// engine to exactly that.
//
// Concurrency: offer is only called from the node goroutine's assembly
// writes (the self write and the receive loop), so sends on the runs
// channel never race its close; the channel's capacity of p guarantees
// offer never blocks. The ladder is touched only by the merger goroutine
// until stop() returns, after which the node goroutine owns it.
type overlapMerger[K cmp.Ordered] struct {
	s   *sortRun[K]
	asm *datamgr.Assembly[K]

	ladder *lsort.RunLadder[comm.Entry[K]]
	get    func(n int) []comm.Entry[K]
	put    func(buf []comm.Entry[K])

	runs   chan int
	done   chan struct{}
	closed bool

	start   time.Time
	exchEnd time.Time // set by markExchangeDone, read by finish (node goroutine)
	spans   []mergeOp
}

// mergeOp is one merge operation's wall-clock span, recorded by the
// ladder's note hook.
type mergeOp struct {
	start, end time.Time
	entries    int
}

// newOverlapMerger starts the merger goroutine for one node's sort. The
// intermediate buffers come from the node's slab pool and are accounted as
// temporary memory for the Figure 11 bookkeeping (the accounting balances:
// every get is freed by a put, and the final result's allocation converts
// to resident storage in finish).
func newOverlapMerger[K cmp.Ordered](s *sortRun[K], asm *datamgr.Assembly[K]) *overlapMerger[K] {
	n := s.node
	eb := int64(entryBytes[K]())
	m := &overlapMerger[K]{
		s:     s,
		asm:   asm,
		runs:  make(chan int, s.opts.Procs),
		done:  make(chan struct{}),
		start: time.Now(),
	}
	m.get = func(sz int) []comm.Entry[K] {
		buf := n.entryPool.Get(sz)
		n.tracker.Alloc(int64(sz) * eb)
		return buf
	}
	m.put = func(buf []comm.Entry[K]) {
		n.tracker.Free(int64(len(buf)) * eb)
		n.entryPool.Put(buf)
	}
	// Intra-merge parallelism is bounded by real CPUs: splitting a merge
	// across goroutines on a single-CPU runtime only buys co-rank and
	// scheduling overhead.
	ways := s.opts.WorkersPerProc
	if g := runtime.GOMAXPROCS(0); ways > g {
		ways = g
	}
	m.ladder = lsort.NewRunLadder(s.cmps.tieLess, m.get, m.put, ways, m.note)
	go m.loop()
	return m
}

// note records one ladder merge span. It runs on whichever goroutine owns
// the ladder at the time (merger goroutine during the exchange, node
// goroutine during the final pass) — never both at once.
func (m *overlapMerger[K]) note(entries int, start, end time.Time) {
	m.spans = append(m.spans, mergeOp{start: start, end: end, entries: entries})
}

// loop consumes completed runs until the channel closes. Runs stay
// borrowed: they alias the assembly buffer, which the node recycles as a
// whole after the final merge.
func (m *overlapMerger[K]) loop() {
	defer close(m.done)
	for src := range m.runs {
		m.ladder.Push(m.asm.Run(src), false)
	}
}

// offer is the datamgr.Assembly run-completion callback.
func (m *overlapMerger[K]) offer(src int) { m.runs <- src }

// markExchangeDone timestamps the end of the exchange window; merge time
// before this instant counts as hidden latency.
func (m *overlapMerger[K]) markExchangeDone() { m.exchEnd = time.Now() }

// stop closes the run feed and joins the merger goroutine. Idempotent.
func (m *overlapMerger[K]) stop() {
	if !m.closed {
		m.closed = true
		close(m.runs)
	}
	<-m.done
}

// finish joins the merger, runs the final splitter-partitioned parallel
// pass and returns the fully merged result. The result never aliases the
// assembly buffer (a lone borrowed run is copied out), so the caller can
// recycle the assembly slab unconditionally. It also folds the overlap
// accounting into the node report and, under the SortMany scheduler, the
// trace's MergeSpans.
func (m *overlapMerger[K]) finish() []comm.Entry[K] {
	m.stop()
	merged, owned := m.ladder.Finish()
	if !owned && len(merged) > 0 {
		out := m.get(len(merged))
		copy(out, merged)
		merged = out
	}
	if len(merged) > 0 {
		// The result leaves the pool for good: temporary no more, it
		// becomes the node's resident result storage.
		m.s.node.tracker.Free(int64(len(merged)) * int64(entryBytes[K]()))
	}

	var saved time.Duration
	for _, op := range m.spans {
		if m.exchEnd.IsZero() || !op.start.Before(m.exchEnd) {
			continue
		}
		end := op.end
		if end.After(m.exchEnd) {
			end = m.exchEnd
		}
		saved += end.Sub(op.start)
	}
	m.s.report.MergeOverlapSaved = saved
	if ctrl := m.s.ctrl; ctrl != nil {
		for _, op := range m.spans {
			ctrl.noteMergeSpan(MergeSpan{
				Node:       m.s.node.id,
				Start:      op.start.Sub(ctrl.epoch),
				End:        op.end.Sub(ctrl.epoch),
				Entries:    op.entries,
				Overlapped: !m.exchEnd.IsZero() && op.start.Before(m.exchEnd),
			})
		}
	}
	return merged
}

// abort joins the merger goroutine and returns every pooled intermediate
// buffer, for error paths where the merge result will never be consumed.
// The assembly buffer stays with the caller.
func (m *overlapMerger[K]) abort() {
	m.stop()
	m.ladder.Abort()
}
