package core

import (
	"cmp"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pgxsort/internal/comm"
	"pgxsort/internal/dist"
	"pgxsort/internal/transport"
)

// DefaultMaxInflight is how many datasets the scheduler admits at once
// when neither Options.MaxInflight nor SortManyOpts.MaxInflight is set:
// one dataset in a communication stage while a second computes.
const DefaultMaxInflight = 2

// AdmitOrder selects the order in which SortMany admits datasets into the
// pipeline. Results are always returned in input order regardless.
type AdmitOrder int

const (
	// OrderInput admits datasets in the order they were passed (default).
	OrderInput AdmitOrder = iota
	// OrderSmallestFirst admits smaller datasets first, which lowers the
	// mean completion latency of a mixed batch (shortest-job-first).
	OrderSmallestFirst
)

func (o AdmitOrder) String() string {
	switch o {
	case OrderInput:
		return "input"
	case OrderSmallestFirst:
		return "smallest-first"
	default:
		return fmt.Sprintf("AdmitOrder(%d)", int(o))
	}
}

// SortManyOpts configures the pipelined multi-dataset scheduler.
type SortManyOpts struct {
	// MaxInflight caps how many datasets are admitted at once. 0 uses
	// the engine's Options.MaxInflight (default 2); 1 degenerates to
	// strictly sequential execution.
	MaxInflight int
	// Order selects the admission order (see AdmitOrder).
	Order AdmitOrder
	// Naive disables the staged scheduler and fires every dataset at
	// once with unbounded concurrency — the pre-scheduler behaviour,
	// kept as the benchmark baseline.
	Naive bool
	// Retry re-runs Transient-classed failures (see RetryPolicy). The
	// zero value disables retries.
	Retry RetryPolicy
}

// RetryPolicy makes the scheduler re-run jobs whose failure classifies
// as FailTransient: an I/O deadline, an injected failpoint, a recovered
// stage panic. Fatal and DataDependent failures never retry (they would
// fail identically), and neither does a job whose context is already
// dead. A retried job holds its admission slot across attempts — the
// pipeline sees one long job, not a re-queued one — and each attempt
// runs with a fresh stage controller, with the previous attempt's
// pooled slabs already recycled by the engine's error path.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per job, including
	// the first. <= 1 disables retries.
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; each further
	// retry doubles it up to MaxBackoff. Both sleeps are jittered with
	// the transport's backoff jitter (transport.Jitter), so a burst of
	// failed jobs does not retry in lockstep. Defaults: 5ms base,
	// 500ms max.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterSeed seeds the backoff jitter (0 = a fixed default, fine
	// for anything but tests wanting distinct schedules).
	JitterSeed uint64
	// Budget caps the total number of retries across the scheduler's
	// lifetime, so a pathological batch cannot retry without bound.
	// 0 means unlimited.
	Budget int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 5 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 500 * time.Millisecond
	}
	if p.JitterSeed == 0 {
		p.JitterSeed = 0x9E3779B97F4A7C15
	}
	return p
}

// stageGates is the shared admission state of one scheduler: an admission
// semaphore plus a one-slot gate per serialized (communication) stage.
type stageGates struct {
	admit chan struct{}
	gates [NumSchedStages]chan struct{}
}

func newStageGates(maxInflight int) *stageGates {
	g := &stageGates{admit: make(chan struct{}, maxInflight)}
	for st := SchedStage(0); st < NumSchedStages; st++ {
		if st.Serial() {
			g.gates[st] = make(chan struct{}, 1)
		}
	}
	return g
}

// Scheduler pipelines several sorts over one engine. It admits at most
// MaxInflight datasets and at most one dataset per communication stage at
// a time, so dataset d+1's CPU-bound stages overlap dataset d's exchange
// instead of competing with it — the deliberate version of the paper's
// "sort multiple different data simultaneously".
//
// A Scheduler is safe for concurrent use; overlapping Run calls share the
// same admission slots and stage gates.
type Scheduler[K cmp.Ordered] struct {
	eng   *Engine[K]
	opts  SortManyOpts
	gates *stageGates

	mu       sync.Mutex
	inflight int
	peak     int

	retries     atomic.Int64
	budgetSpent atomic.Int64
}

// NewScheduler builds a scheduler over e. Zero fields of opts fall back
// to the engine's Options.
func NewScheduler[K cmp.Ordered](e *Engine[K], opts SortManyOpts) *Scheduler[K] {
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = e.opts.MaxInflight
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = DefaultMaxInflight
	}
	return &Scheduler[K]{eng: e, opts: opts, gates: newStageGates(opts.MaxInflight)}
}

// PeakInflight reports the most datasets that were ever in flight at
// once across this scheduler's Run calls.
func (s *Scheduler[K]) PeakInflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak
}

// Retries reports how many retry attempts this scheduler has launched
// over its lifetime (the pgxsortd_retries_total metric).
func (s *Scheduler[K]) Retries() int64 { return s.retries.Load() }

// takeRetryBudget claims one retry against the policy's lifetime
// budget; false means the budget is exhausted.
func (s *Scheduler[K]) takeRetryBudget(pol RetryPolicy) bool {
	if pol.Budget <= 0 {
		return true
	}
	for {
		spent := s.budgetSpent.Load()
		if spent >= pol.Budget {
			return false
		}
		if s.budgetSpent.CompareAndSwap(spent, spent+1) {
			return true
		}
	}
}

// runAttempts runs one job to completion under the retry policy: the
// first attempt plus up to MaxAttempts-1 re-runs of Transient-classed
// failures, with jittered exponential backoff between attempts. Every
// attempt gets a fresh stage controller — the failed attempt's ctrl has
// forfeited all its stages and must not be reused — while the caller's
// admission slot is held throughout.
func (s *Scheduler[K]) runAttempts(ctx context.Context, j job[K], idx int, gated bool, epoch time.Time, admitWait time.Duration) (*Result[K], error) {
	pol := s.opts.Retry.withDefaults()
	backoff := pol.BaseBackoff
	// Per-job RNG stream: concurrent jobs retrying at once must not
	// share a jitter sequence, or they back off in lockstep.
	rng := dist.NewRNG(pol.JitterSeed + uint64(idx)*1000003)
	for attempt := 1; ; attempt++ {
		var ctrl *stageCtrl
		if gated {
			ctrl = newStageCtrl(ctx, s.gates, s.eng.opts.Procs, epoch, admitWait)
		}
		res, err := s.eng.sortOne(ctx, j, ctrl)
		if err == nil {
			res.Report.Attempts = attempt
			return res, nil
		}
		if attempt >= pol.MaxAttempts || Classify(err) != FailTransient || ctx.Err() != nil {
			return nil, err
		}
		if !s.takeRetryBudget(pol) {
			return nil, fmt.Errorf("core: retry budget exhausted after %d attempts: %w", attempt, err)
		}
		select {
		case <-time.After(transport.Jitter(backoff, rng.Uint64())):
		case <-ctx.Done():
			return nil, err
		}
		if backoff *= 2; backoff > pol.MaxBackoff {
			backoff = pol.MaxBackoff
		}
		s.retries.Add(1)
	}
}

func (s *Scheduler[K]) noteAdmit(delta int) {
	s.mu.Lock()
	s.inflight += delta
	if s.inflight > s.peak {
		s.peak = s.inflight
	}
	s.mu.Unlock()
}

// admitOrder returns job indices in admission order.
func (s *Scheduler[K]) admitOrder(jobs []job[K]) []int {
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	if s.opts.Order == OrderSmallestFirst {
		sort.SliceStable(order, func(a, b int) bool {
			return jobs[order[a]].size() < jobs[order[b]].size()
		})
	}
	return order
}

// Run sorts every key dataset, returning results indexed by input
// position. Failed datasets leave a nil slot and their errors — wrapped
// with the dataset index — are joined into the returned error, so one
// failure neither hides the others nor discards the sorts that succeeded.
// Cancelling ctx cancels admitted sorts and skips unadmitted ones.
func (s *Scheduler[K]) Run(ctx context.Context, datasets [][][]K) ([]*Result[K], error) {
	jobs := make([]job[K], len(datasets))
	for i, ds := range datasets {
		jobs[i] = job[K]{parts: ds}
	}
	return s.runJobs(ctx, jobs)
}

// RunOne admits a single dataset through this scheduler's shared gates —
// the multi-tenant admission path the pgxsortd service uses: every job
// submitted over HTTP shares one scheduler per engine, so the inflight
// cap and the one-dataset-per-communication-stage rule hold across
// tenants exactly as they do within one SortMany batch.
func (s *Scheduler[K]) RunOne(ctx context.Context, parts [][]K) (*Result[K], error) {
	results, err := s.runJobs(ctx, []job[K]{{parts: parts}})
	return results[0], unwrapSingle(err)
}

// RunOneRecords is RunOne for one key+payload record dataset.
func (s *Scheduler[K]) RunOneRecords(ctx context.Context, recs [][]comm.Record[K]) (*Result[K], error) {
	if err := s.eng.checkRecordCodec(); err != nil {
		return nil, err
	}
	results, err := s.runJobs(ctx, []job[K]{{recs: recs}})
	return results[0], unwrapSingle(err)
}

// unwrapSingle strips the "dataset 0:" wrapper runJobs puts on a
// single-job batch, so RunOne callers see the engine's own error.
func unwrapSingle(err error) error {
	j, ok := err.(interface{ Unwrap() []error })
	if !ok {
		return err
	}
	es := j.Unwrap()
	if len(es) != 1 {
		return err
	}
	if inner := errors.Unwrap(es[0]); inner != nil {
		return inner
	}
	return es[0]
}

// RunRecords is Run for key+payload record datasets; the engine's codec
// must carry payloads (see Engine.SortRecords).
func (s *Scheduler[K]) RunRecords(ctx context.Context, datasets [][][]comm.Record[K]) ([]*Result[K], error) {
	if err := s.eng.checkRecordCodec(); err != nil {
		return nil, err
	}
	jobs := make([]job[K], len(datasets))
	for i, ds := range datasets {
		jobs[i] = job[K]{recs: ds}
	}
	return s.runJobs(ctx, jobs)
}

// runJobs is the shared scheduling loop behind Run and RunRecords.
func (s *Scheduler[K]) runJobs(ctx context.Context, jobs []job[K]) ([]*Result[K], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]*Result[K], len(jobs))
	errs := make([]error, len(jobs))
	epoch := time.Now()
	var wg sync.WaitGroup
	launch := func(idx int, admitWait time.Duration, gated bool) {
		wg.Add(1)
		s.noteAdmit(1)
		go func() {
			defer wg.Done()
			defer func() {
				s.noteAdmit(-1)
				if gated {
					<-s.gates.admit
				}
			}()
			res, err := s.runAttempts(ctx, jobs[idx], idx, gated, epoch, admitWait)
			if err != nil {
				errs[idx] = fmt.Errorf("dataset %d: %w", idx, err)
				return
			}
			results[idx] = res
		}()
	}
	for _, idx := range s.admitOrder(jobs) {
		if err := s.eng.checkJob(jobs[idx]); err != nil {
			errs[idx] = fmt.Errorf("dataset %d: %w", idx, err)
			continue
		}
		if s.opts.Naive {
			launch(idx, 0, false)
			continue
		}
		// Blocking on the admission semaphore here — not inside the
		// goroutine — fixes the admission order and bounds the number of
		// live sort goroutine trees to MaxInflight. The Err pre-check
		// makes a cancelled batch skip deterministically: with a free
		// slot AND a done ctx the select below would pick at random.
		if err := ctx.Err(); err != nil {
			errs[idx] = fmt.Errorf("dataset %d: %w", idx, err)
			continue
		}
		select {
		case s.gates.admit <- struct{}{}:
		case <-ctx.Done():
			errs[idx] = fmt.Errorf("dataset %d: %w", idx, ctx.Err())
			continue
		}
		launch(idx, time.Since(epoch), true)
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// stageCtrl coordinates one sort's p node goroutines with the scheduler's
// stage gates. A serialized stage is barrier-then-acquire: nodes wait
// until all p have arrived, the last arrival triggers the gate
// acquisition, and the last node to leave releases it. Acquiring only
// once everyone is ready keeps intra-sort skew (one node still busy in a
// CPU stage) from inflating the gate hold time, and means a sort holds at
// most one serial gate at a time. CPU stages have no gate and only feed
// the trace.
type stageCtrl struct {
	ctx   context.Context
	gates *stageGates
	procs int
	epoch time.Time

	ready [NumSchedStages]chan struct{}

	mu       sync.Mutex
	arrived  [NumSchedStages]int
	entered  [NumSchedStages]int
	left     [NumSchedStages]int
	acquired [NumSchedStages]bool
	finished [NumSchedStages]bool
	trace    SchedTrace
}

func newStageCtrl(ctx context.Context, gates *stageGates, procs int, epoch time.Time, admitWait time.Duration) *stageCtrl {
	c := &stageCtrl{ctx: ctx, gates: gates, procs: procs, epoch: epoch}
	c.trace.Pipelined = true
	c.trace.AdmitWait = admitWait
	for st := SchedStage(0); st < NumSchedStages; st++ {
		c.ready[st] = make(chan struct{})
		if gates.gates[st] == nil {
			close(c.ready[st]) // ungated stage: always open
		}
	}
	return c
}

// enter blocks the calling node until its sort holds stage st, returning
// how long it waited. A nil ctrl (plain Sort) admits immediately.
func (c *stageCtrl) enter(st SchedStage) (time.Duration, error) {
	if c == nil {
		return 0, nil
	}
	start := time.Now()
	if gate := c.gates.gates[st]; gate != nil {
		c.mu.Lock()
		c.arrived[st]++
		last := c.arrived[st] == c.procs
		c.mu.Unlock()
		if last {
			// Acquire on a separate goroutine so that a node blocked at
			// the barrier can still be cancelled.
			go c.acquire(st, gate)
		}
	}
	select {
	case <-c.ready[st]:
	case <-c.ctx.Done():
		return time.Since(start), c.ctx.Err()
	}
	c.mu.Lock()
	c.entered[st]++
	if c.entered[st] == 1 {
		c.trace.StageStart[st] = time.Since(c.epoch)
	}
	c.mu.Unlock()
	return time.Since(start), nil
}

// acquire takes a serialized stage's gate once every node has arrived,
// then opens the stage. If the sort was abandoned in the meantime the
// slot is handed straight back.
func (c *stageCtrl) acquire(st SchedStage, gate chan struct{}) {
	t0 := time.Now()
	select {
	case gate <- struct{}{}:
	case <-c.ctx.Done():
		return // enter unblocks via ctx
	}
	c.mu.Lock()
	c.trace.StageWait[st] = time.Since(t0)
	c.acquired[st] = true
	fin := c.finished[st]
	if fin {
		// Every node already abandoned this stage (an earlier stage
		// failed); hand the slot straight back.
		c.acquired[st] = false
	}
	c.mu.Unlock()
	close(c.ready[st])
	if fin {
		<-gate
	}
}

// forfeit counts an abandoning node as arrived at a stage it will never
// enter, so the barrier still completes and nodes already waiting at it
// are released to observe the failure instead of blocking forever.
func (c *stageCtrl) forfeit(st SchedStage) {
	if c == nil {
		return
	}
	gate := c.gates.gates[st]
	if gate == nil {
		return
	}
	c.mu.Lock()
	c.arrived[st]++
	last := c.arrived[st] == c.procs
	c.mu.Unlock()
	if last {
		go c.acquire(st, gate)
	}
}

// leave records that one node is done with stage st; the last node out
// releases the stage's gate. It must be called exactly once per node per
// stage (sortRun.leaveStage deduplicates, including on error exits).
func (c *stageCtrl) leave(st SchedStage) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.left[st]++
	release := false
	if c.left[st] == c.procs {
		c.trace.StageEnd[st] = time.Since(c.epoch)
		c.finished[st] = true
		if c.acquired[st] {
			c.acquired[st] = false
			release = true
		}
	}
	c.mu.Unlock()
	if release {
		<-c.gates.gates[st]
	}
}

// noteMergeSpan records one streaming-merge operation in the trace. It is
// called from the per-node merger goroutines while the sort is running, so
// it takes the trace lock; spans are sorted into the snapshot as-is
// (arrival order).
func (c *stageCtrl) noteMergeSpan(sp MergeSpan) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.trace.MergeSpans = append(c.trace.MergeSpans, sp)
	c.mu.Unlock()
}

// snapshot returns the trace once the sort is done.
func (c *stageCtrl) snapshot() SchedTrace {
	if c == nil {
		return SchedTrace{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.trace
}
