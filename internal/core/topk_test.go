package core

import (
	"testing"
	"testing/quick"

	"pgxsort/internal/dist"
	"pgxsort/internal/transport"
)

func TestTopKMatchesFullSort(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 2})
	parts := mkParts(dist.Normal, 4, 5000, 17)
	res, err := e.Sort(parts)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 5, 100, 1000} {
		top, err := e.TopK(parts, k)
		if err != nil {
			t.Fatalf("TopK(%d): %v", k, err)
		}
		want := res.Top(k)
		if len(top.Entries) != len(want) {
			t.Fatalf("TopK(%d) = %d entries, want %d", k, len(top.Entries), len(want))
		}
		for i := range want {
			if top.Entries[i].Key != want[i].Key {
				t.Fatalf("TopK(%d)[%d] = %d, full sort says %d",
					k, i, top.Entries[i].Key, want[i].Key)
			}
		}
	}
}

func TestBottomKMatchesFullSort(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 3, WorkersPerProc: 2})
	parts := mkParts(dist.Exponential, 3, 4000, 23)
	res, err := e.Sort(parts)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 7, 500} {
		bottom, err := e.BottomK(parts, k)
		if err != nil {
			t.Fatalf("BottomK(%d): %v", k, err)
		}
		want := res.Bottom(k)
		for i := range want {
			if bottom.Entries[i].Key != want[i].Key {
				t.Fatalf("BottomK(%d)[%d] = %d, full sort says %d",
					k, i, bottom.Entries[i].Key, want[i].Key)
			}
		}
	}
}

func TestTopKOrigins(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 2, WorkersPerProc: 1})
	parts := [][]uint64{{5, 900, 3}, {42, 7}}
	top, err := e.TopK(parts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if top.Entries[0].Key != 900 || top.Entries[0].Proc != 0 || top.Entries[0].Index != 1 {
		t.Fatalf("top[0] = %+v, want key 900 from (0,1)", top.Entries[0])
	}
	if top.Entries[1].Key != 42 || top.Entries[1].Proc != 1 || top.Entries[1].Index != 0 {
		t.Fatalf("top[1] = %+v, want key 42 from (1,0)", top.Entries[1])
	}
}

func TestTopKEdgeCases(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 3, WorkersPerProc: 1})
	parts := [][]uint64{{1, 2}, {}, {3}}
	// k = 0.
	top, err := e.TopK(parts, 0)
	if err != nil || len(top.Entries) != 0 {
		t.Fatalf("TopK(0) = %v, %v", top, err)
	}
	// k > total.
	top, err = e.TopK(parts, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Entries) != 3 {
		t.Fatalf("TopK(100) = %d entries, want 3", len(top.Entries))
	}
	// Negative k rejected.
	if _, err := e.TopK(parts, -1); err == nil {
		t.Fatal("negative k accepted")
	}
	// Wrong part count rejected.
	if _, err := e.TopK([][]uint64{{1}}, 1); err == nil {
		t.Fatal("wrong part count accepted")
	}
}

func TestTopKMovesFewBytes(t *testing.T) {
	const perProc = 20000
	e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 2})
	parts := mkParts(dist.Uniform, 4, perProc, 3)
	top, err := e.TopK(parts, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Each non-master node ships at most k entries of 16 bytes.
	if top.BytesSent > 3*10*16 {
		t.Fatalf("top-k moved %d bytes, expected <= %d", top.BytesSent, 3*10*16)
	}
	if top.Duration <= 0 {
		t.Fatal("duration not measured")
	}
}

func TestTopKOverTCP(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 2, WorkersPerProc: 1, Transport: transport.KindTCP})
	parts := mkParts(dist.Uniform, 2, 2000, 5)
	top, err := e.TopK(parts, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(top.Entries); i++ {
		if top.Entries[i].Key > top.Entries[i-1].Key {
			t.Fatal("top-k not descending")
		}
	}
}

func TestQuantiles(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 1})
	data := make([]uint64, 1001)
	for i := range data {
		data[i] = uint64(i)
	}
	res, err := e.SortSlice(data)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := res.Quantiles(4)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 250, 500, 750, 1000}
	for i := range want {
		if qs[i] != want[i] {
			t.Fatalf("quantiles = %v, want %v", qs, want)
		}
	}
	// Median only.
	qs, err = res.Quantiles(1)
	if err != nil || len(qs) != 2 || qs[0] != 0 || qs[1] != 1000 {
		t.Fatalf("Quantiles(1) = %v, %v", qs, err)
	}
	// Errors.
	if _, err := res.Quantiles(0); err == nil {
		t.Fatal("Quantiles(0) accepted")
	}
	empty, err := e.Sort([][]uint64{{}, {}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.Quantiles(2); err == nil {
		t.Fatal("quantiles of empty result accepted")
	}
}

// Property: distributed top-k equals the reference selection for random
// inputs and k.
func TestPropertyTopK(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 3, WorkersPerProc: 1})
	f := func(a, b, c []uint64, kRaw uint8) bool {
		parts := [][]uint64{a, b, c}
		k := int(kRaw % 32)
		top, err := e.TopK(parts, k)
		if err != nil {
			return false
		}
		var all []uint64
		for _, part := range parts {
			all = append(all, part...)
		}
		want := k
		if want > len(all) {
			want = len(all)
		}
		if len(top.Entries) != want {
			return false
		}
		// Descending and matching the k largest of the multiset.
		res, err := e.Sort(parts)
		if err != nil {
			return false
		}
		ref := res.Top(k)
		for i := range ref {
			if top.Entries[i].Key != ref[i].Key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
