package core

import (
	"cmp"
	"fmt"
	"sync"
	"time"

	"pgxsort/internal/comm"
	"pgxsort/internal/lsort"
)

// TopKResult is the outcome of a distributed top-k / bottom-k query.
type TopKResult[K cmp.Ordered] struct {
	// Entries holds the k selected entries (descending for TopK,
	// ascending for BottomK), with their origins.
	Entries []comm.Entry[K]
	// BytesSent is the total traffic of the query — p*k candidate
	// entries rather than the whole dataset.
	BytesSent int64
	// Duration is the wall time of the query.
	Duration time.Duration
}

// TopK answers the paper's "retrieving top values from their graph data"
// use case (§III) without a full distributed sort: every processor
// preselects its local k largest entries with a bounded heap (O(n log k),
// no data redistribution), ships only those candidates to the master, and
// the master reduces p*k candidates to the global top k. Entries are
// returned in descending key order.
func (e *Engine[K]) TopK(parts [][]K, k int) (*TopKResult[K], error) {
	return e.selectK(parts, k, entryLess[K])
}

// BottomK returns the k globally smallest entries in ascending order,
// symmetric to TopK.
func (e *Engine[K]) BottomK(parts [][]K, k int) (*TopKResult[K], error) {
	return e.selectK(parts, k, func(a, b comm.Entry[K]) bool { return b.Key < a.Key })
}

// selectK gathers each node's local k extremes under `worse` (the element
// that loses a comparison is evicted from the bounded heap first) and
// reduces them at the master.
func (e *Engine[K]) selectK(parts [][]K, k int, worse func(a, b comm.Entry[K]) bool) (*TopKResult[K], error) {
	p := e.opts.Procs
	if len(parts) != p {
		return nil, fmt.Errorf("core: got %d parts for %d processors", len(parts), p)
	}
	if k < 0 {
		return nil, fmt.Errorf("core: negative k")
	}
	sortID := e.nextSortID.Add(1)
	master := e.opts.Master
	start := time.Now()

	errs := make([]error, p)
	var masterEntries []comm.Entry[K]
	var bytesSent int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := e.nodes[i]
			local := parts[i]
			// Local candidate selection in parallel chunks on the node's
			// worker pool, then a node-level reduction.
			var partials [][]comm.Entry[K]
			var pmu sync.Mutex
			n.pool.ParallelFor(len(local), func(lo, hi int) {
				chunk := make([]comm.Entry[K], hi-lo)
				for j := lo; j < hi; j++ {
					chunk[j-lo] = comm.Entry[K]{Key: local[j], Proc: uint32(i), Index: uint32(j)}
				}
				top := lsort.TopK(chunk, k, worse)
				pmu.Lock()
				partials = append(partials, top)
				pmu.Unlock()
			})
			var flat []comm.Entry[K]
			for _, part := range partials {
				flat = append(flat, part...)
			}
			candidates := lsort.TopK(flat, k, worse)

			if i == master {
				mu.Lock()
				masterEntries = append(masterEntries, candidates...)
				mu.Unlock()
				return
			}
			m := comm.Message[K]{Kind: comm.KData, SortID: sortID, Entries: candidates}
			if err := n.ep.Send(master, m); err != nil {
				errs[i] = err
				return
			}
			mu.Lock()
			bytesSent += int64(m.WireBytes(e.codec))
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: node %d: %w", i, err)
		}
	}

	// Master-side reduction of the gathered candidates.
	mnode := e.nodes[master]
	for i := 0; i < p-1; i++ {
		m, ok := mnode.mb(sortID, comm.KData).pop()
		if !ok {
			return nil, fmt.Errorf("core: network closed during top-k gather")
		}
		masterEntries = append(masterEntries, m.Entries...)
	}
	for i := 0; i < p; i++ {
		e.nodes[i].dropSort(sortID)
	}
	return &TopKResult[K]{
		Entries:   lsort.TopK(masterEntries, k, worse),
		BytesSent: bytesSent,
		Duration:  time.Since(start),
	}, nil
}
