package core

import (
	"testing"
	"testing/quick"
	"time"

	"pgxsort/internal/comm"
	"pgxsort/internal/dist"
	"pgxsort/internal/transport"
)

// mkParts deterministically generates per-processor inputs.
func mkParts(kind dist.Kind, procs, perProc int, seed uint64) [][]uint64 {
	parts := make([][]uint64, procs)
	for i := range parts {
		parts[i] = dist.Gen{Kind: kind, Seed: seed + uint64(i)*7919}.Keys(perProc)
	}
	return parts
}

func newTestEngine(t testing.TB, opts Options) *Engine[uint64] {
	t.Helper()
	e, err := NewEngine[uint64](opts, comm.U64Codec{})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestSortAllDistributions(t *testing.T) {
	for _, kind := range dist.Kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 2})
			parts := mkParts(kind, 4, 5000, 42)
			res, err := e.Sort(parts)
			if err != nil {
				t.Fatalf("Sort: %v", err)
			}
			if err := res.Verify(parts); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSortOverTCP(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 3, WorkersPerProc: 2, Transport: transport.KindTCP})
	parts := mkParts(dist.Exponential, 3, 4000, 7)
	res, err := e.Sort(parts)
	if err != nil {
		t.Fatalf("Sort: %v", err)
	}
	if err := res.Verify(parts); err != nil {
		t.Fatal(err)
	}
}

func TestSortSingleProc(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 1, WorkersPerProc: 2})
	parts := mkParts(dist.Uniform, 1, 3000, 3)
	res, err := e.Sort(parts)
	if err != nil {
		t.Fatalf("Sort: %v", err)
	}
	if err := res.Verify(parts); err != nil {
		t.Fatal(err)
	}
}

func TestSortEmptyAndTiny(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 1})
	// Entirely empty.
	res, err := e.Sort([][]uint64{{}, {}, {}, {}})
	if err != nil {
		t.Fatalf("empty sort: %v", err)
	}
	if res.Len() != 0 {
		t.Fatalf("empty sort produced %d entries", res.Len())
	}
	// Fewer keys than processors, unevenly placed.
	parts := [][]uint64{{5}, {}, {3, 1}, {}}
	res, err = e.Sort(parts)
	if err != nil {
		t.Fatalf("tiny sort: %v", err)
	}
	if err := res.Verify(parts); err != nil {
		t.Fatal(err)
	}
	keys := res.Keys()
	want := []uint64{1, 3, 5}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

func TestSortSlice(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 2})
	data := dist.Gen{Kind: dist.Normal, Seed: 5}.Keys(10001)
	res, err := e.SortSlice(data)
	if err != nil {
		t.Fatalf("SortSlice: %v", err)
	}
	if res.Len() != len(data) {
		t.Fatalf("lost entries: %d != %d", res.Len(), len(data))
	}
	keys := res.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestSortWrongPartCount(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 4})
	if _, err := e.Sort([][]uint64{{1}}); err == nil {
		t.Fatal("Sort accepted mismatched part count")
	}
}

func TestRepeatedSortsOnOneEngine(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 3, WorkersPerProc: 2})
	for round := 0; round < 5; round++ {
		parts := mkParts(dist.RightSkewed, 3, 2000, uint64(round))
		res, err := e.Sort(parts)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := res.Verify(parts); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestSortMany(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 2})
	datasets := make([][][]uint64, 3)
	for d := range datasets {
		datasets[d] = mkParts(dist.Kinds[d%len(dist.Kinds)], 4, 3000, uint64(1000*d))
	}
	results, err := e.SortMany(datasets...)
	if err != nil {
		t.Fatalf("SortMany: %v", err)
	}
	for d, res := range results {
		if err := res.Verify(datasets[d]); err != nil {
			t.Fatalf("dataset %d: %v", d, err)
		}
	}
}

func TestGlobalOrderAcrossParts(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 8, WorkersPerProc: 1})
	parts := mkParts(dist.Uniform, 8, 4000, 11)
	res, err := e.Sort(parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Parts); i++ {
		a, b := res.Parts[i-1], res.Parts[i]
		if len(a) == 0 || len(b) == 0 {
			continue
		}
		if a[len(a)-1].Key > b[0].Key {
			t.Fatalf("part %d max %d > part %d min %d",
				i-1, a[len(a)-1].Key, i, b[0].Key)
		}
	}
}

// The paper's Table II claim: with the investigator the load stays
// balanced on duplicate-heavy inputs, and without it the distribution is
// grossly skewed.
func TestInvestigatorLoadBalance(t *testing.T) {
	const procs = 10
	const perProc = 10000
	parts := make([][]uint64, procs)
	for i := range parts {
		parts[i] = dist.Gen{Kind: dist.RightSkewed, Seed: uint64(i), Domain: 64}.Keys(perProc)
	}

	e := newTestEngine(t, Options{Procs: procs, WorkersPerProc: 1})
	res, err := e.Sort(parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(parts); err != nil {
		t.Fatal(err)
	}
	if imb := res.Report.LoadImbalance(); imb > 1.2 {
		t.Errorf("investigator imbalance = %.3f, want <= 1.2", imb)
	}

	e2 := newTestEngine(t, Options{Procs: procs, WorkersPerProc: 1, DisableInvestigator: true})
	res2, err := e2.Sort(parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res2.Verify(parts); err != nil {
		t.Fatal(err)
	}
	if imb := res2.Report.LoadImbalance(); imb < 2 {
		t.Errorf("naive imbalance = %.3f, expected gross imbalance (>= 2)", imb)
	}
}

func TestMergeStrategiesAgree(t *testing.T) {
	parts := mkParts(dist.Normal, 4, 3000, 99)
	var keysByStrategy [][]uint64
	for _, m := range []MergeStrategy{MergeBalanced, MergeKWay} {
		e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 2, Merge: m})
		res, err := e.Sort(parts)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := res.Verify(parts); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		keysByStrategy = append(keysByStrategy, res.Keys())
	}
	a, b := keysByStrategy[0], keysByStrategy[1]
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("strategies disagree at %d: %d != %d", i, a[i], b[i])
		}
	}
}

func TestSyncExchangeAblation(t *testing.T) {
	parts := mkParts(dist.Exponential, 4, 3000, 123)
	e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 2, SyncExchange: true})
	res, err := e.Sort(parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(parts); err != nil {
		t.Fatal(err)
	}
	// Barrier tokens ride KControl, so meta traffic must include them.
	if res.Report.MetaBytes == 0 {
		t.Error("sync exchange should produce control traffic")
	}
}

func TestNonZeroMaster(t *testing.T) {
	parts := mkParts(dist.Uniform, 3, 2000, 5)
	e := newTestEngine(t, Options{Procs: 3, WorkersPerProc: 1, Master: 2})
	res, err := e.Sort(parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(parts); err != nil {
		t.Fatal(err)
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := NewEngine[uint64](Options{Procs: 2, Master: 5}, comm.U64Codec{}); err == nil {
		t.Error("master out of range accepted")
	}
	if _, err := NewEngine[uint64](Options{Procs: 2, Merge: MergeStrategy(9)}, comm.U64Codec{}); err == nil {
		t.Error("bad merge strategy accepted")
	}
	if _, err := NewEngine[uint64](Options{Procs: 2, Transport: "pigeon"}, comm.U64Codec{}); err == nil {
		t.Error("bad transport accepted")
	}
}

func TestReportContents(t *testing.T) {
	const procs = 4
	const perProc = 4000
	e := newTestEngine(t, Options{Procs: procs, WorkersPerProc: 2})
	parts := mkParts(dist.Uniform, procs, perProc, 77)
	res, err := e.Sort(parts)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.N != procs*perProc {
		t.Errorf("N = %d, want %d", rep.N, procs*perProc)
	}
	if rep.Procs != procs || rep.Workers != 2 {
		t.Errorf("procs/workers = %d/%d", rep.Procs, rep.Workers)
	}
	if rep.Total <= 0 {
		t.Error("total duration not measured")
	}
	if rep.Steps[StepLocalSort] <= 0 || rep.Steps[StepExchange] <= 0 {
		t.Errorf("step durations missing: %v", rep.Steps)
	}
	if rep.MsgsSent == 0 || rep.BytesSent == 0 {
		t.Error("no traffic recorded")
	}
	if rep.DataBytes == 0 || rep.SampleBytes == 0 || rep.MetaBytes == 0 {
		t.Errorf("traffic split missing: data=%d sample=%d meta=%d",
			rep.DataBytes, rep.SampleBytes, rep.MetaBytes)
	}
	if rep.TempPeakBytes == 0 {
		t.Error("temporary memory not tracked")
	}
	if rep.ResidentBytes == 0 {
		t.Error("resident memory not tracked")
	}
	if rep.SamplesPerProc <= 0 {
		t.Error("sample count missing")
	}
	sum := 0
	for _, sz := range rep.PartSizes() {
		sum += sz
	}
	if sum != rep.N {
		t.Errorf("part sizes sum to %d, want %d", sum, rep.N)
	}
	if s := rep.String(); len(s) == 0 {
		t.Error("report String empty")
	}
	if min, max := rep.MinMaxPart(); min > max {
		t.Errorf("MinMaxPart = %d > %d", min, max)
	}
}

func TestSampleFactorChangesSampleCount(t *testing.T) {
	parts := mkParts(dist.Uniform, 4, 20000, 9)
	eSmall := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 1, SampleFactor: 0.004})
	eFull := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 1, SampleFactor: 1})
	rSmall, err := eSmall.Sort(parts)
	if err != nil {
		t.Fatal(err)
	}
	rFull, err := eFull.Sort(parts)
	if err != nil {
		t.Fatal(err)
	}
	if rSmall.Report.SamplesPerProc >= rFull.Report.SamplesPerProc {
		t.Errorf("sample counts: small=%d full=%d", rSmall.Report.SamplesPerProc,
			rFull.Report.SamplesPerProc)
	}
	if rSmall.Report.SampleBytes >= rFull.Report.SampleBytes {
		t.Errorf("sample bytes: small=%d full=%d", rSmall.Report.SampleBytes,
			rFull.Report.SampleBytes)
	}
}

func TestResultAPI(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 2})
	parts := [][]uint64{
		{10, 20, 30},
		{15, 25, 25},
		{5, 40},
		{1},
	}
	res, err := e.Sort(parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(parts); err != nil {
		t.Fatal(err)
	}
	// Search present keys.
	for _, key := range []uint64{1, 5, 25, 40} {
		_, _, global, found := res.Search(key)
		if !found {
			t.Errorf("Search(%d) not found", key)
		}
		if e2, err := res.At(global); err != nil || e2.Key != key {
			t.Errorf("At(Search(%d)) = %v, %v", key, e2, err)
		}
	}
	// First occurrence semantics for duplicates.
	_, _, g25, _ := res.Search(25)
	if e2, _ := res.At(g25); e2.Key != 25 {
		t.Errorf("Search(25) global index wrong")
	}
	if g25 > 0 {
		if prev, _ := res.At(g25 - 1); prev.Key >= 25 {
			t.Errorf("Search(25) is not the first occurrence")
		}
	}
	// Absent key.
	if _, _, _, found := res.Search(23); found {
		t.Error("Search(23) found a missing key")
	}
	// Count duplicates.
	if c := res.Count(25); c != 2 {
		t.Errorf("Count(25) = %d, want 2", c)
	}
	if c := res.Count(99); c != 0 {
		t.Errorf("Count(99) = %d, want 0", c)
	}
	// Top / Bottom.
	top := res.Top(3)
	if len(top) != 3 || top[0].Key != 40 || top[1].Key != 30 || top[2].Key != 25 {
		t.Errorf("Top(3) = %v", top)
	}
	bottom := res.Bottom(2)
	if len(bottom) != 2 || bottom[0].Key != 1 || bottom[1].Key != 5 {
		t.Errorf("Bottom(2) = %v", bottom)
	}
	if got := res.Top(100); len(got) != res.Len() {
		t.Errorf("Top(100) = %d entries, want %d", len(got), res.Len())
	}
	// PartRanges are ordered and non-overlapping.
	ranges := res.PartRanges()
	var prevMax uint64
	seenNonEmpty := false
	for _, pr := range ranges {
		if pr.Count == 0 {
			continue
		}
		if seenNonEmpty && pr.Min < prevMax {
			t.Errorf("part ranges overlap: %v", ranges)
		}
		prevMax = pr.Max
		seenNonEmpty = true
	}
	// At out of range.
	if _, err := res.At(-1); err == nil {
		t.Error("At(-1) accepted")
	}
	if _, err := res.At(res.Len()); err == nil {
		t.Error("At(Len()) accepted")
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 2, WorkersPerProc: 1})
	parts := [][]uint64{{3, 1}, {2, 4}}
	res, err := e.Sort(parts)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a key.
	orig := res.Parts[0][0]
	res.Parts[0][0].Key += 1000
	if err := res.Verify(parts); err == nil {
		t.Error("Verify missed corrupted key")
	}
	res.Parts[0][0] = orig
	// Duplicate an origin.
	res.Parts[1][0] = res.Parts[0][0]
	if err := res.Verify(parts); err == nil {
		t.Error("Verify missed duplicated origin")
	}
}

func TestManyProcessors(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// The paper's upper sweep point: 52 processors.
	e := newTestEngine(t, Options{Procs: 52, WorkersPerProc: 1})
	parts := mkParts(dist.Uniform, 52, 500, 4)
	res, err := e.Sort(parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(parts); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary small datasets sort correctly with provenance intact.
func TestPropertySortVerifies(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 3, WorkersPerProc: 1})
	f := func(a, b, c []uint64) bool {
		parts := [][]uint64{a, b, c}
		res, err := e.Sort(parts)
		if err != nil {
			return false
		}
		return res.Verify(parts) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMailbox(t *testing.T) {
	mb := newMailbox[int]()
	mb.push(1)
	mb.push(2)
	if v, ok := mb.pop(); !ok || v != 1 {
		t.Fatalf("pop = %d, %v", v, ok)
	}
	if mb.len() != 1 {
		t.Fatalf("len = %d, want 1", mb.len())
	}
	if v, ok := mb.pop(); !ok || v != 2 {
		t.Fatalf("pop = %d, %v", v, ok)
	}
	done := make(chan struct{})
	go func() {
		if _, ok := mb.pop(); ok {
			t.Error("pop after close returned ok")
		}
		close(done)
	}()
	mb.close()
	<-done
}

// Chaos test: adversarial message timing must not change the result. The
// jitter wrapper delays every send by a random amount, exercising every
// interleaving the dispatcher and mailboxes must tolerate.
func TestSortUnderNetworkJitter(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		e := newTestEngine(t, Options{
			Procs:          5,
			WorkersPerProc: 2,
			JitterMaxDelay: 2 * time.Millisecond,
			JitterSeed:     seed,
		})
		parts := mkParts(dist.RightSkewed, 5, 1500, seed)
		res, err := e.Sort(parts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Verify(parts); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// Jitter with simultaneous sorts: messages of interleaved pipelines with
// random delays must still demultiplex cleanly by sort id.
func TestSortManyUnderJitter(t *testing.T) {
	e := newTestEngine(t, Options{
		Procs:          3,
		WorkersPerProc: 1,
		JitterMaxDelay: time.Millisecond,
		JitterSeed:     9,
	})
	datasets := [][][]uint64{
		mkParts(dist.Uniform, 3, 800, 1),
		mkParts(dist.Exponential, 3, 800, 2),
		mkParts(dist.Constant, 3, 800, 3),
	}
	results, err := e.SortMany(datasets...)
	if err != nil {
		t.Fatal(err)
	}
	for d, res := range results {
		if err := res.Verify(datasets[d]); err != nil {
			t.Fatalf("dataset %d: %v", d, err)
		}
	}
}
