package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"pgxsort/internal/comm"
	"pgxsort/internal/failpoint"
	"pgxsort/internal/spill"
	"pgxsort/internal/transport"
)

// FailureClass is the retry-worthiness of a sort failure: every layer —
// scheduler, service, CLI — asks the same question ("is this worth
// retrying?") and the taxonomy answers it once, by classifying the
// error chain instead of string-matching messages.
type FailureClass int

const (
	// FailUnknown marks errors outside the taxonomy: context
	// cancellation, engine shutdown, programming errors. Not retried,
	// not counted against the service's circuit breaker.
	FailUnknown FailureClass = iota
	// FailTransient marks failures a retry can plausibly clear: an I/O
	// deadline, an injected failpoint, a recovered stage panic. The
	// scheduler's RetryPolicy re-runs these.
	FailTransient
	// FailFatal marks a dead mesh: a transport link exhausted its dial
	// budget. Retrying on the same engine will fail the same way; the
	// service's circuit breaker counts these and falls back to
	// single-node execution.
	FailFatal
	// FailDataDependent marks failures the input itself causes (an
	// entry larger than the frame limit, a malformed dataset shape).
	// Retrying the same bytes reproduces them, so nobody should.
	FailDataDependent
)

// String names the class as it appears in metrics labels and logs.
func (c FailureClass) String() string {
	switch c {
	case FailTransient:
		return "transient"
	case FailFatal:
		return "fatal"
	case FailDataDependent:
		return "data-dependent"
	default:
		return "unknown"
	}
}

// Failure wraps the root cause of a failed sort with its class, the
// node it surfaced on and the scheduler stage it surfaced in. sortOne
// returns one for every node failure, so errors.As(err, *Failure) works
// from any layer above the engine; context errors pass through bare so
// errors.Is(err, context.DeadlineExceeded) keeps working too.
type Failure struct {
	Class FailureClass
	Stage SchedStage
	Node  int
	Err   error
}

func (f *Failure) Error() string {
	return fmt.Sprintf("core: node %d failed in %v (%v): %v", f.Node, f.Stage, f.Class, f.Err)
}

func (f *Failure) Unwrap() error { return f.Err }

// Classify walks err's chain and returns its failure class. Unwrapped
// and nil errors are FailUnknown.
func Classify(err error) FailureClass {
	if err == nil {
		return FailUnknown
	}
	var f *Failure
	if errors.As(err, &f) {
		return f.Class
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return FailUnknown
	}
	var le *transport.LinkError
	if errors.As(err, &le) {
		return FailFatal
	}
	var de *transport.DeadlineError
	if errors.As(err, &de) {
		return FailTransient
	}
	if errors.Is(err, failpoint.ErrInjected) {
		return FailTransient
	}
	var pe *panicError
	if errors.As(err, &pe) {
		return FailTransient
	}
	if errors.Is(err, comm.ErrFrameTooLarge) {
		return FailDataDependent
	}
	if errors.Is(err, spill.ErrCorrupt) {
		// A spill run file failed its checksum or structural validation:
		// the bytes on disk are wrong and re-reading them reproduces the
		// failure. (A retry that re-spills from memory may clear it, but
		// the taxonomy is about the error as observed — same bytes, same
		// failure — and silent rereads must never mask corruption.)
		return FailDataDependent
	}
	return FailUnknown
}

// Failpoint sites planted at the engine's stage boundaries: every node
// of a sort passes each site once per run, so a site:error:1 schedule
// fails exactly one node of the next sort and a count>p schedule fails
// them all. The merge site fires after the exchange completes, which is
// the hardest error exit: the assembled slabs and the streaming merger
// must unwind without leaking (see sortRun.discardMerge).
const (
	fpLocalSort = "core/local-sort"
	fpSplitters = "core/splitters"
	fpExchange  = "core/exchange"
	fpMerge     = "core/merge"
)

// errSortAborted is the secondary error nodes observe when sortOne tears
// a sort down because a peer node already failed: their blocked receives
// fail with this instead of a misleading "network closed". It is never
// the root cause — sortOne reports the peer's error, not this one.
var errSortAborted = errors.New("core: sort aborted after a peer node failed")

// panicError is a recovered stage panic (an injected failpoint panic or
// a real bug) converted into an error so one poisoned stage fails the
// job, not the process. It classifies as Transient: an injected panic
// is transient by construction, and a data-dependent crash will simply
// fail again and exhaust its retry budget.
type panicError struct {
	val   any
	stack []byte
}

func (p *panicError) Error() string {
	return fmt.Sprintf("core: recovered panic: %v", p.val)
}

// Stack returns the goroutine stack captured at recovery, for logs.
func (p *panicError) Stack() string { return string(p.stack) }

// recoverPanic converts a recover() value into a *panicError. An
// injected failpoint panic keeps its error chain (so it still classifies
// via ErrInjected); anything else captures the stack.
func recoverPanic(r any) error {
	if fe, ok := r.(*failpoint.Error); ok {
		return fmt.Errorf("core: recovered panic: %w", fe)
	}
	return &panicError{val: r, stack: debug.Stack()}
}

// classPriority ranks classes for root-cause selection when several
// nodes fail at once: the most actionable class wins (a Fatal link loss
// explains the Transient "network closed" noise around it, never the
// other way).
func classPriority(c FailureClass) int {
	switch c {
	case FailFatal:
		return 3
	case FailDataDependent:
		return 2
	case FailTransient:
		return 1
	default:
		return 0
	}
}
