package core

import (
	"fmt"
	"strings"
	"time"
)

// Step identifies one of the six pipeline steps for per-step timing
// (Figure 7).
type Step int

const (
	// StepLocalSort is step 1: parallel local quicksort + balanced merge.
	StepLocalSort Step = iota
	// StepSampling is step 2: regular sampling and sending to the master.
	StepSampling
	// StepSplitters is step 3: master-side splitter selection and
	// broadcast (non-masters: waiting for the broadcast).
	StepSplitters
	// StepPartition is step 4: binary-search range determination plus the
	// range-metadata broadcast.
	StepPartition
	// StepExchange is step 5: the simultaneous send/receive of data.
	StepExchange
	// StepFinalMerge is step 6: merging received runs.
	StepFinalMerge

	// NumSteps is the number of pipeline steps.
	NumSteps = 6
)

// String returns the step label used in figures.
func (s Step) String() string {
	switch s {
	case StepLocalSort:
		return "local-sort"
	case StepSampling:
		return "sampling"
	case StepSplitters:
		return "splitters"
	case StepPartition:
		return "partition"
	case StepExchange:
		return "send/recv"
	case StepFinalMerge:
		return "final-merge"
	default:
		return fmt.Sprintf("Step(%d)", int(s))
	}
}

// SchedStage identifies one of the scheduler's pipeline stages. Stages
// group the six steps by resource: two CPU-bound stages the scheduler runs
// freely, and two communication stages it serializes across datasets so
// one dataset's exchange overlaps another's compute instead of contending
// with it.
type SchedStage int

const (
	// StageLocalSort is the CPU-bound local sort (step 1).
	StageLocalSort SchedStage = iota
	// StageSplitters is the sample/splitter agreement (steps 2-3): small
	// messages, latency-bound, serialized across datasets.
	StageSplitters
	// StageExchange is the partition + all-to-all exchange (steps 4-5):
	// the communication-heavy stage, serialized across datasets.
	StageExchange
	// StageMerge is the CPU-bound merge of the received runs (step 6).
	StageMerge

	// NumSchedStages is the number of scheduler stages.
	NumSchedStages = 4
)

// String returns the stage label used in traces and tables.
func (s SchedStage) String() string {
	switch s {
	case StageLocalSort:
		return "local-sort"
	case StageSplitters:
		return "splitters"
	case StageExchange:
		return "exchange"
	case StageMerge:
		return "merge"
	default:
		return fmt.Sprintf("SchedStage(%d)", int(s))
	}
}

// Serial reports whether the scheduler admits only one dataset at a time
// into this stage (the communication stages).
func (s SchedStage) Serial() bool {
	return s == StageSplitters || s == StageExchange
}

// MergeSpan records one merge operation of the streaming exchange–merge
// overlap: which node ran it, when (offsets from the batch epoch), how
// many entries it produced, and whether it executed inside that node's
// exchange window (the overlap working) or in the post-exchange tail.
type MergeSpan struct {
	Node       int
	Start, End time.Duration
	Entries    int
	Overlapped bool
}

// SchedTrace describes one sort's passage through the SortMany scheduler.
// It is the zero value for plain Sort calls. All offsets are relative to
// the batch epoch (the SortMany call), so overlap between datasets is
// directly readable: dataset d's StageExchange span sitting inside
// dataset d+1's StageLocalSort span is the pipelining working.
type SchedTrace struct {
	// Pipelined is true when the staged scheduler ran this sort.
	Pipelined bool
	// AdmitWait is how long the dataset waited for an admission slot.
	AdmitWait time.Duration
	// StageWait is how long the sort waited at each serialized stage's
	// gate (zero for the CPU stages, which have no gate).
	StageWait [NumSchedStages]time.Duration
	// StageStart/StageEnd bracket each stage: offset from the batch epoch
	// when the first node entered and when the last node left.
	StageStart [NumSchedStages]time.Duration
	StageEnd   [NumSchedStages]time.Duration
	// MergeSpans lists the streaming merger's per-run merge operations
	// across all nodes (empty outside MergeOverlap). Spans flagged
	// Overlapped ran inside the exchange window — merge latency the
	// overlap hid behind network time.
	MergeSpans []MergeSpan
}

// String renders the trace as one line per stage.
func (t *SchedTrace) String() string {
	if !t.Pipelined {
		return "unscheduled"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "admit-wait %v\n", t.AdmitWait)
	for s := SchedStage(0); s < NumSchedStages; s++ {
		fmt.Fprintf(&b, "  %-10s [%8v .. %8v]", s, t.StageStart[s], t.StageEnd[s])
		if s.Serial() {
			fmt.Fprintf(&b, " gate-wait %v", t.StageWait[s])
		}
		b.WriteByte('\n')
	}
	if len(t.MergeSpans) > 0 {
		overlapped := 0
		for _, sp := range t.MergeSpans {
			if sp.Overlapped {
				overlapped++
			}
		}
		fmt.Fprintf(&b, "  merge-spans %d (%d inside the exchange window)\n",
			len(t.MergeSpans), overlapped)
	}
	return b.String()
}

// NodeReport holds one processor's measurements for one sort.
type NodeReport struct {
	// Steps holds the wall time this node spent in each pipeline step.
	Steps [NumSteps]time.Duration
	// PartSize is the number of entries this node holds after the sort.
	PartSize int
	// SamplesSent is the number of samples this node sent to the master.
	SamplesSent int
	// BytesSent / MsgsSent count this sort's outgoing traffic from this
	// node (logical payload bytes).
	BytesSent int64
	MsgsSent  int64
	// SampleBytes / MetaBytes / DataBytes split BytesSent by message kind.
	SampleBytes int64
	MetaBytes   int64
	DataBytes   int64
	// TempPeakBytes is the high-water mark of temporary allocations
	// (merge scratch, assembly staging) on this node during the sort.
	TempPeakBytes int64
	// ResidentBytes is the entry storage this node holds (input entries +
	// result), the analogue of RSS in Figure 11.
	ResidentBytes int64
	// SpillBytes / SpillReads count the bytes this node wrote to and read
	// back from spill run files while honouring Options.MemoryBudget.
	// Zero when the whole sort fit the budget. SpillReads/SpillBytes is
	// the node's spill read amplification: 1.0 means every spilled byte
	// was read back exactly once.
	SpillBytes int64
	SpillReads int64
	// StageWait is the time this node spent blocked at each scheduler
	// stage boundary waiting to be admitted (zero outside SortMany's
	// pipelined scheduler).
	StageWait [NumSchedStages]time.Duration
	// SendStall is the time this node's sends spent blocked on full
	// per-peer windows during this sort — the slow-peer backpressure
	// signal. Zero on the in-process transport. The counters are
	// per-endpoint deltas over the sort's lifetime, so when sorts overlap
	// on one engine (pipelined SortMany) trouble that accrues during the
	// overlap is counted by every sort in flight; sum per-sort values
	// with that in mind.
	SendStall time.Duration
	// Reconnects / FramesResent count connections this node's outbound
	// links re-established (and frames they retransmitted) during this
	// sort. Zero outside fault injection and real network trouble.
	Reconnects   int64
	FramesResent int64
	// LocalSortPath is the step-1 path this node took: "radix" (the
	// non-comparison fast path over normalized keys) or "comparison".
	LocalSortPath string
	// MergeOverlapSaved is the merge CPU time this node's streaming merger
	// spent inside the step-5 exchange window under MergeOverlap — merge
	// latency hidden behind network time that the barriered paths would
	// serialize after it. Zero on the barriered strategies.
	MergeOverlapSaved time.Duration
}

// Report aggregates a distributed sort run, providing every measurement
// the paper's figures need.
type Report struct {
	Procs   int
	Workers int
	N       int
	// Steps is the per-step critical path: max across nodes (Figure 7).
	Steps [NumSteps]time.Duration
	// Total is the wall time of the whole sort (Figures 5, 6, 8, 9).
	Total time.Duration
	// PerNode holds each processor's measurements (Table II, Figure 10).
	PerNode []NodeReport
	// BytesSent etc. total the per-node traffic (Figure 9).
	BytesSent   int64
	MsgsSent    int64
	SampleBytes int64
	MetaBytes   int64
	DataBytes   int64
	// CommTime is the critical-path duration of the exchange step plus
	// sampling/broadcast waits — the paper's "communication overhead".
	CommTime time.Duration
	// TempPeakBytes is the max per-node temporary-memory peak; Resident
	// totals per-node entry storage (Figure 11).
	TempPeakBytes int64
	ResidentBytes int64
	// SpillBytes / SpillReads total the spill-file traffic across nodes
	// (bytes written to and read back from block-file runs under
	// Options.MemoryBudget). Zero means the sort ran entirely in memory.
	SpillBytes int64
	SpillReads int64
	// SamplesPerProc is the per-processor sample count used (Figure 9/10).
	SamplesPerProc int
	// Attempts is how many times the scheduler ran this job before it
	// succeeded: 1 is a clean run, 2+ means RetryPolicy re-ran Transient
	// failures, 0 means the sort ran outside a scheduler (plain Sort).
	Attempts int
	// SendStall is the worst per-node slow-peer stall (time sends spent
	// blocked on full transport windows); Reconnects and FramesResent
	// total the connections re-established and frames retransmitted
	// across nodes. All zero on a healthy in-process run. Overlapping
	// SortMany sorts each count trouble that accrues while they are in
	// flight (see NodeReport.SendStall).
	SendStall    time.Duration
	Reconnects   int64
	FramesResent int64
	// LocalSortPath is the step-1 path the engine resolved for this sort:
	// "radix" or "comparison" (same on every node; see Options.LocalSort).
	LocalSortPath string
	// MergePath is the step-6 strategy the engine resolved for this sort:
	// "overlap", "balanced" or "kway" (see Options.Merge).
	MergePath string
	// MergeOverlapSaved is the largest per-node merge time hidden inside
	// the exchange window (max of NodeReport.MergeOverlapSaved): the
	// critical-path latency the streaming overlap removed relative to a
	// barriered merge. Zero on the barriered strategies.
	MergeOverlapSaved time.Duration
	// Sched describes this sort's passage through the SortMany scheduler
	// (zero value for plain Sort calls).
	Sched SchedTrace
}

// Snapshot returns a deep copy of the report — PerNode and the trace's
// MergeSpans are the only reference fields — so long-lived aggregators
// (the pgxsortd metrics and /debug/jobs scrapes) can hold reports without
// aliasing slices owned by a Result that may still be in a handler's
// hands.
func (r *Report) Snapshot() Report {
	cp := *r
	cp.PerNode = append([]NodeReport(nil), r.PerNode...)
	cp.Sched.MergeSpans = append([]MergeSpan(nil), r.Sched.MergeSpans...)
	return cp
}

// PartSizes returns the per-processor result sizes (Table II).
func (r *Report) PartSizes() []int {
	out := make([]int, len(r.PerNode))
	for i, n := range r.PerNode {
		out[i] = n.PartSize
	}
	return out
}

// LoadImbalance returns max/avg part size, 1.0 meaning perfectly balanced.
func (r *Report) LoadImbalance() float64 {
	if len(r.PerNode) == 0 || r.N == 0 {
		return 1
	}
	maxPart := 0
	for _, n := range r.PerNode {
		if n.PartSize > maxPart {
			maxPart = n.PartSize
		}
	}
	avg := float64(r.N) / float64(len(r.PerNode))
	if avg == 0 {
		return 1
	}
	return float64(maxPart) / avg
}

// MinMaxPart returns the smallest and largest per-processor result sizes
// (Figure 10).
func (r *Report) MinMaxPart() (minSize, maxSize int) {
	if len(r.PerNode) == 0 {
		return 0, 0
	}
	minSize, maxSize = r.PerNode[0].PartSize, r.PerNode[0].PartSize
	for _, n := range r.PerNode[1:] {
		if n.PartSize < minSize {
			minSize = n.PartSize
		}
		if n.PartSize > maxSize {
			maxSize = n.PartSize
		}
	}
	return minSize, maxSize
}

// String renders a compact human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sorted %d entries on %d procs x %d workers in %v", r.N, r.Procs, r.Workers, r.Total)
	if r.LocalSortPath != "" {
		fmt.Fprintf(&b, " (local sort: %s)", r.LocalSortPath)
	}
	if r.MergePath != "" {
		fmt.Fprintf(&b, " (merge: %s)", r.MergePath)
	}
	b.WriteByte('\n')
	for s := Step(0); s < NumSteps; s++ {
		fmt.Fprintf(&b, "  %-12s %v\n", s.String(), r.Steps[s])
	}
	fmt.Fprintf(&b, "  comm: %d msgs, %d bytes (samples %d, meta %d, data %d)\n",
		r.MsgsSent, r.BytesSent, r.SampleBytes, r.MetaBytes, r.DataBytes)
	fmt.Fprintf(&b, "  memory: %d resident, %d temp peak\n", r.ResidentBytes, r.TempPeakBytes)
	if r.SpillBytes > 0 {
		fmt.Fprintf(&b, "  spill: %d bytes written, %d read back (%.2fx read amplification)\n",
			r.SpillBytes, r.SpillReads, float64(r.SpillReads)/float64(r.SpillBytes))
	}
	if r.MergeOverlapSaved > 0 {
		fmt.Fprintf(&b, "  overlap: %v of merge time hidden inside the exchange\n", r.MergeOverlapSaved)
	}
	if r.SendStall > 0 || r.Reconnects > 0 {
		fmt.Fprintf(&b, "  transport: %v worst send stall, %d reconnects, %d frames resent\n",
			r.SendStall, r.Reconnects, r.FramesResent)
	}
	fmt.Fprintf(&b, "  balance: %.3f (max/avg), parts %v\n", r.LoadImbalance(), r.PartSizes())
	if r.Sched.Pipelined {
		fmt.Fprintf(&b, "  sched: %s", r.Sched.String())
	}
	return b.String()
}
