package core

import (
	"fmt"
	"strings"
	"time"
)

// Step identifies one of the six pipeline steps for per-step timing
// (Figure 7).
type Step int

const (
	// StepLocalSort is step 1: parallel local quicksort + balanced merge.
	StepLocalSort Step = iota
	// StepSampling is step 2: regular sampling and sending to the master.
	StepSampling
	// StepSplitters is step 3: master-side splitter selection and
	// broadcast (non-masters: waiting for the broadcast).
	StepSplitters
	// StepPartition is step 4: binary-search range determination plus the
	// range-metadata broadcast.
	StepPartition
	// StepExchange is step 5: the simultaneous send/receive of data.
	StepExchange
	// StepFinalMerge is step 6: merging received runs.
	StepFinalMerge

	// NumSteps is the number of pipeline steps.
	NumSteps = 6
)

// String returns the step label used in figures.
func (s Step) String() string {
	switch s {
	case StepLocalSort:
		return "local-sort"
	case StepSampling:
		return "sampling"
	case StepSplitters:
		return "splitters"
	case StepPartition:
		return "partition"
	case StepExchange:
		return "send/recv"
	case StepFinalMerge:
		return "final-merge"
	default:
		return fmt.Sprintf("Step(%d)", int(s))
	}
}

// NodeReport holds one processor's measurements for one sort.
type NodeReport struct {
	// Steps holds the wall time this node spent in each pipeline step.
	Steps [NumSteps]time.Duration
	// PartSize is the number of entries this node holds after the sort.
	PartSize int
	// SamplesSent is the number of samples this node sent to the master.
	SamplesSent int
	// BytesSent / MsgsSent count this sort's outgoing traffic from this
	// node (logical payload bytes).
	BytesSent int64
	MsgsSent  int64
	// SampleBytes / MetaBytes / DataBytes split BytesSent by message kind.
	SampleBytes int64
	MetaBytes   int64
	DataBytes   int64
	// TempPeakBytes is the high-water mark of temporary allocations
	// (merge scratch, assembly staging) on this node during the sort.
	TempPeakBytes int64
	// ResidentBytes is the entry storage this node holds (input entries +
	// result), the analogue of RSS in Figure 11.
	ResidentBytes int64
}

// Report aggregates a distributed sort run, providing every measurement
// the paper's figures need.
type Report struct {
	Procs   int
	Workers int
	N       int
	// Steps is the per-step critical path: max across nodes (Figure 7).
	Steps [NumSteps]time.Duration
	// Total is the wall time of the whole sort (Figures 5, 6, 8, 9).
	Total time.Duration
	// PerNode holds each processor's measurements (Table II, Figure 10).
	PerNode []NodeReport
	// BytesSent etc. total the per-node traffic (Figure 9).
	BytesSent   int64
	MsgsSent    int64
	SampleBytes int64
	MetaBytes   int64
	DataBytes   int64
	// CommTime is the critical-path duration of the exchange step plus
	// sampling/broadcast waits — the paper's "communication overhead".
	CommTime time.Duration
	// TempPeakBytes is the max per-node temporary-memory peak; Resident
	// totals per-node entry storage (Figure 11).
	TempPeakBytes int64
	ResidentBytes int64
	// SamplesPerProc is the per-processor sample count used (Figure 9/10).
	SamplesPerProc int
}

// PartSizes returns the per-processor result sizes (Table II).
func (r *Report) PartSizes() []int {
	out := make([]int, len(r.PerNode))
	for i, n := range r.PerNode {
		out[i] = n.PartSize
	}
	return out
}

// LoadImbalance returns max/avg part size, 1.0 meaning perfectly balanced.
func (r *Report) LoadImbalance() float64 {
	if len(r.PerNode) == 0 || r.N == 0 {
		return 1
	}
	maxPart := 0
	for _, n := range r.PerNode {
		if n.PartSize > maxPart {
			maxPart = n.PartSize
		}
	}
	avg := float64(r.N) / float64(len(r.PerNode))
	if avg == 0 {
		return 1
	}
	return float64(maxPart) / avg
}

// MinMaxPart returns the smallest and largest per-processor result sizes
// (Figure 10).
func (r *Report) MinMaxPart() (minSize, maxSize int) {
	if len(r.PerNode) == 0 {
		return 0, 0
	}
	minSize, maxSize = r.PerNode[0].PartSize, r.PerNode[0].PartSize
	for _, n := range r.PerNode[1:] {
		if n.PartSize < minSize {
			minSize = n.PartSize
		}
		if n.PartSize > maxSize {
			maxSize = n.PartSize
		}
	}
	return minSize, maxSize
}

// String renders a compact human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sorted %d entries on %d procs x %d workers in %v\n",
		r.N, r.Procs, r.Workers, r.Total)
	for s := Step(0); s < NumSteps; s++ {
		fmt.Fprintf(&b, "  %-12s %v\n", s.String(), r.Steps[s])
	}
	fmt.Fprintf(&b, "  comm: %d msgs, %d bytes (samples %d, meta %d, data %d)\n",
		r.MsgsSent, r.BytesSent, r.SampleBytes, r.MetaBytes, r.DataBytes)
	fmt.Fprintf(&b, "  memory: %d resident, %d temp peak\n", r.ResidentBytes, r.TempPeakBytes)
	fmt.Fprintf(&b, "  balance: %.3f (max/avg), parts %v\n", r.LoadImbalance(), r.PartSizes())
	return b.String()
}
