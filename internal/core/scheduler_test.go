package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"pgxsort/internal/dist"
)

// mkDatasets builds one distributed dataset per distribution kind, the
// Figure 5/6 mix the scheduler benchmarks use.
func mkDatasets(procs, perProc int, seed uint64) [][][]uint64 {
	datasets := make([][][]uint64, len(dist.Kinds))
	for d, kind := range dist.Kinds {
		datasets[d] = mkParts(kind, procs, perProc, seed+uint64(d)*101)
	}
	return datasets
}

func verifyAll(t *testing.T, results []*Result[uint64], datasets [][][]uint64) {
	t.Helper()
	if len(results) != len(datasets) {
		t.Fatalf("got %d results for %d datasets", len(results), len(datasets))
	}
	for d, res := range results {
		if res == nil {
			t.Fatalf("dataset %d: nil result", d)
		}
		if err := res.Verify(datasets[d]); err != nil {
			t.Fatalf("dataset %d: %v", d, err)
		}
	}
}

func TestSortManyPipelinedVerifies(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 2})
	datasets := mkDatasets(4, 4000, 7)
	results, err := e.SortManyWith(context.Background(), SortManyOpts{MaxInflight: 2}, datasets...)
	if err != nil {
		t.Fatalf("SortManyWith: %v", err)
	}
	verifyAll(t, results, datasets)
	for d, res := range results {
		if !res.Report.Sched.Pipelined {
			t.Errorf("dataset %d: Sched.Pipelined not set", d)
		}
		for st := SchedStage(0); st < NumSchedStages; st++ {
			if res.Report.Sched.StageEnd[st] < res.Report.Sched.StageStart[st] {
				t.Errorf("dataset %d stage %v: end %v before start %v",
					d, st, res.Report.Sched.StageEnd[st], res.Report.Sched.StageStart[st])
			}
		}
	}
}

// TestSchedulerInflightCap checks both admission invariants: never more
// than MaxInflight datasets in flight, and serialized stages occupied by
// one dataset at a time (their spans cannot overlap).
func TestSchedulerInflightCap(t *testing.T) {
	for _, cap := range []int{1, 2} {
		e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 2})
		datasets := mkDatasets(4, 4000, 11)
		sched := NewScheduler(e, SortManyOpts{MaxInflight: cap})
		results, err := sched.Run(context.Background(), datasets)
		if err != nil {
			t.Fatalf("cap %d: %v", cap, err)
		}
		verifyAll(t, results, datasets)
		if got := sched.PeakInflight(); got > cap {
			t.Errorf("cap %d: peak inflight %d", cap, got)
		}
		for st := SchedStage(0); st < NumSchedStages; st++ {
			if !st.Serial() {
				continue
			}
			type span struct {
				d          int
				start, end time.Duration
			}
			var spans []span
			for d, res := range results {
				spans = append(spans, span{d, res.Report.Sched.StageStart[st], res.Report.Sched.StageEnd[st]})
			}
			for i := range spans {
				for j := i + 1; j < len(spans); j++ {
					a, b := spans[i], spans[j]
					if a.start < b.end && b.start < a.end {
						t.Errorf("cap %d: datasets %d and %d overlap in %v: [%v,%v] vs [%v,%v]",
							cap, a.d, b.d, st, a.start, a.end, b.start, b.end)
					}
				}
			}
		}
	}
}

// TestSortManyInputOrder checks results stay addressable by input index
// even when admission reorders the datasets.
func TestSortManyInputOrder(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 2})
	// Distinguishable datasets: dataset d holds only the key d.
	datasets := make([][][]uint64, 3)
	sizes := []int{30000, 100, 8000}
	for d := range datasets {
		parts := make([][]uint64, 4)
		for i := range parts {
			keys := make([]uint64, sizes[d]/4)
			for j := range keys {
				keys[j] = uint64(d)
			}
			parts[i] = keys
		}
		datasets[d] = parts
	}
	results, err := e.SortManyWith(context.Background(),
		SortManyOpts{MaxInflight: 1, Order: OrderSmallestFirst}, datasets...)
	if err != nil {
		t.Fatalf("SortManyWith: %v", err)
	}
	for d, res := range results {
		keys := res.Keys()
		if len(keys) == 0 || keys[0] != uint64(d) || keys[len(keys)-1] != uint64(d) {
			t.Fatalf("result %d does not hold dataset %d's keys", d, d)
		}
	}
	// Smallest-first under a sequential cap: dataset 1 (the smallest) is
	// admitted before dataset 0, so dataset 0 waits at least dataset 1's
	// sort time while dataset 1 waits for nothing.
	if w0, w1 := results[0].Report.Sched.AdmitWait, results[1].Report.Sched.AdmitWait; w0 <= w1 {
		t.Errorf("smallest-first admission: big dataset waited %v, small %v", w0, w1)
	}
}

// TestSortManyJoinsErrors checks the errors.Join behaviour: a malformed
// dataset fails with its index, the others still sort and stay
// addressable at their input positions.
func TestSortManyJoinsErrors(t *testing.T) {
	for _, naive := range []bool{false, true} {
		e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 2})
		good := mkParts(dist.Uniform, 4, 2000, 3)
		bad := mkParts(dist.Uniform, 3, 2000, 4) // wrong part count
		bad2 := mkParts(dist.Uniform, 5, 2000, 5)
		results, err := e.SortManyWith(context.Background(),
			SortManyOpts{Naive: naive}, good, bad, bad2)
		if err == nil {
			t.Fatalf("naive=%v: malformed datasets sorted without error", naive)
		}
		for _, want := range []string{"dataset 1", "dataset 2"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("naive=%v: error %q does not mention %s", naive, err, want)
			}
		}
		if results[0] == nil {
			t.Fatalf("naive=%v: healthy dataset dropped", naive)
		}
		if err := results[0].Verify(good); err != nil {
			t.Errorf("naive=%v: healthy result corrupt: %v", naive, err)
		}
		if results[1] != nil || results[2] != nil {
			t.Errorf("naive=%v: failed datasets produced results", naive)
		}
	}
}

// TestSortCancelDoesNotPoisonEngine cancels one sort mid-flight and then
// reuses the engine: the cancellation must tear down only that sort's
// mailboxes.
func TestSortCancelDoesNotPoisonEngine(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 2})
	parts := mkParts(dist.Uniform, 4, 200000, 9)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.SortCtx(ctx, parts)
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	err := <-done
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sort failed with a non-ctx error: %v", err)
	}
	// Whether or not the cancel raced with completion, the engine must
	// still sort correctly afterwards — several times, to cross old ids.
	for round := 0; round < 3; round++ {
		after := mkParts(dist.Normal, 4, 3000, uint64(20+round))
		res, err := e.Sort(after)
		if err != nil {
			t.Fatalf("round %d after cancel: %v", round, err)
		}
		if err := res.Verify(after); err != nil {
			t.Fatalf("round %d after cancel: %v", round, err)
		}
	}
}

// TestCancelReleasesTempMemory checks a cancelled sort returns its
// exchange-assembly accounting: the per-node temp-memory trackers must
// drop back to zero live bytes, or every later sort on the reused engine
// reports inflated Figure-11 temp peaks. Cancels are spread across the
// whole measured sort duration so some land after the exchange assembly
// exists (the leak-prone window).
func TestCancelReleasesTempMemory(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 2})
	big := mkParts(dist.Uniform, 4, 100000, 33)

	start := time.Now()
	if _, err := e.Sort(big); err != nil {
		t.Fatal(err)
	}
	duration := time.Since(start)

	const tries = 16
	for i := 0; i < tries; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			_, _ = e.SortCtx(ctx, big)
		}()
		time.Sleep(duration * time.Duration(i) / tries)
		cancel()
		<-done
		for n := 0; n < 4; n++ {
			if live := e.nodes[n].tracker.Live(); live != 0 {
				t.Fatalf("cancel at %d/%d of sort: node %d has %d temp bytes still live",
					i, tries, n, live)
			}
		}
	}
}

// TestSortManyCancelledContext checks a pre-cancelled batch fails fast
// without admitting anything, and the engine survives.
func TestSortManyCancelledContext(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	datasets := mkDatasets(4, 1000, 13)
	results, err := e.SortManyWith(ctx, SortManyOpts{}, datasets...)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	for d, res := range results {
		if res != nil {
			t.Errorf("dataset %d produced a result under a cancelled ctx", d)
		}
	}
	res, err := e.Sort(datasets[0])
	if err != nil {
		t.Fatalf("engine poisoned after cancelled batch: %v", err)
	}
	if err := res.Verify(datasets[0]); err != nil {
		t.Fatal(err)
	}
}

// TestSortManyPipelinedUnderJitter runs the scheduler on the jittery
// transport (and under -race in CI) to shake out timing assumptions.
func TestSortManyPipelinedUnderJitter(t *testing.T) {
	e := newTestEngine(t, Options{
		Procs:          4,
		WorkersPerProc: 2,
		JitterMaxDelay: 200 * time.Microsecond,
		JitterSeed:     42,
	})
	datasets := mkDatasets(4, 2500, 17)
	results, err := e.SortManyWith(context.Background(), SortManyOpts{MaxInflight: 3}, datasets...)
	if err != nil {
		t.Fatalf("SortManyWith: %v", err)
	}
	verifyAll(t, results, datasets)
}

// TestCloseDuringPipelinedSortMany closes the engine while a pipelined
// batch is in flight: every sort must fail (or finish) promptly instead
// of deadlocking on a stage barrier whose members already bailed out.
func TestCloseDuringPipelinedSortMany(t *testing.T) {
	e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 2})
	datasets := mkDatasets(4, 100000, 29)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Errors are expected; the point is that Run returns at all.
		_, _ = e.SortManyWith(context.Background(), SortManyOpts{MaxInflight: 2}, datasets...)
	}()
	time.Sleep(2 * time.Millisecond)
	e.Close()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("SortManyWith deadlocked after engine Close")
	}
}

// TestSortManySequentialMatchesPipelined checks all three schedules agree
// on the sorted output.
func TestSortManySchedulesAgree(t *testing.T) {
	datasets := mkDatasets(4, 2000, 23)
	var kinds = []SortManyOpts{
		{MaxInflight: 1},
		{MaxInflight: 2},
		{Naive: true},
	}
	var want [][]uint64
	for _, opts := range kinds {
		e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 2})
		results, err := e.SortManyWith(context.Background(), opts, datasets...)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		verifyAll(t, results, datasets)
		keys := make([][]uint64, len(results))
		for d, res := range results {
			keys[d] = res.Keys()
		}
		if want == nil {
			want = keys
			continue
		}
		for d := range keys {
			if len(keys[d]) != len(want[d]) {
				t.Fatalf("%+v: dataset %d length mismatch", opts, d)
			}
			for i := range keys[d] {
				if keys[d][i] != want[d][i] {
					t.Fatalf("%+v: dataset %d differs at %d", opts, d, i)
				}
			}
		}
	}
}
