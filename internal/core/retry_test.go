package core

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"pgxsort/internal/comm"
	"pgxsort/internal/dist"
	"pgxsort/internal/failpoint"
	"pgxsort/internal/transport"
)

// flatKeys flattens a result into one key sequence for byte-identity
// comparison (keys plus origin stamps: the full observable output).
func flatKeys(res *Result[uint64]) []comm.Entry[uint64] {
	var out []comm.Entry[uint64]
	for _, part := range res.Parts {
		out = append(out, part...)
	}
	return out
}

func sameOutput(t *testing.T, clean, retried *Result[uint64]) {
	t.Helper()
	if len(clean.Parts) != len(retried.Parts) {
		t.Fatalf("part count differs: clean %d, retried %d", len(clean.Parts), len(retried.Parts))
	}
	for i := range clean.Parts {
		if len(clean.Parts[i]) != len(retried.Parts[i]) {
			t.Fatalf("part %d length differs: clean %d, retried %d", i, len(clean.Parts[i]), len(retried.Parts[i]))
		}
	}
	a, b := flatKeys(clean), flatKeys(retried)
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Proc != b[i].Proc || a[i].Index != b[i].Index {
			t.Fatalf("entry %d differs: clean %+v, retried %+v", i, a[i], b[i])
		}
	}
}

// checkNoLeak asserts the Fig-11 balance: every node's temporary-memory
// tracker is back to zero, so the failed attempt leaked no slab
// accounting.
func checkNoLeak(t *testing.T, e *Engine[uint64]) {
	t.Helper()
	for i, n := range e.nodes {
		if live := n.tracker.Live(); live != 0 {
			t.Fatalf("node %d tracker.Live = %d after retried sort, want 0", i, live)
		}
	}
}

// TestRetryDifferentialPerStage is the tentpole's differential test: a
// job failing at each engine-stage failpoint (error and panic modes,
// plus the datamgr assembly site) is retried by the scheduler and must
// return output byte-identical to an uninjected run, with zero live
// temp-memory on every node afterwards.
func TestRetryDifferentialPerStage(t *testing.T) {
	sites := []string{
		"core/local-sort", "core/splitters", "core/exchange", "core/merge",
		"datamgr/assembly-write",
	}
	modes := []failpoint.Mode{failpoint.ModeError, failpoint.ModePanic}
	for _, site := range sites {
		for _, mode := range modes {
			t.Run(fmt.Sprintf("%s/%s", site, mode), func(t *testing.T) {
				failpoint.Reset()
				t.Cleanup(failpoint.Reset)
				e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 2})
				parts := mkParts(dist.RightSkewed, 4, 3000, 99)

				sched := NewScheduler(e, SortManyOpts{
					Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond},
				})
				clean, err := sched.RunOne(context.Background(), parts)
				if err != nil {
					t.Fatalf("clean run: %v", err)
				}

				failpoint.Set(site, failpoint.Schedule{Mode: mode})
				retried, err := sched.RunOne(context.Background(), parts)
				if err != nil {
					t.Fatalf("retried run: %v", err)
				}
				if fired := failpoint.Fired(site); fired != 1 {
					t.Fatalf("failpoint fired %d times, want 1", fired)
				}
				if retried.Report.Attempts != 2 {
					t.Fatalf("Attempts = %d, want 2", retried.Report.Attempts)
				}
				if sched.Retries() < 1 {
					t.Fatalf("scheduler Retries = %d, want >= 1", sched.Retries())
				}
				sameOutput(t, clean, retried)
				checkNoLeak(t, e)
			})
		}
	}
}

// TestRetryDifferentialOverlapMerge pins the hardest unwind: a failure
// at the merge boundary with the streaming overlap merger mid-flight —
// its goroutine must join, its slabs must return, and the retry must
// still be byte-identical.
func TestRetryDifferentialOverlapMerge(t *testing.T) {
	for _, mode := range []failpoint.Mode{failpoint.ModeError, failpoint.ModePanic} {
		t.Run(mode.String(), func(t *testing.T) {
			failpoint.Reset()
			t.Cleanup(failpoint.Reset)
			e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 2, Merge: MergeOverlap})
			parts := mkParts(dist.Exponential, 4, 4000, 5)
			sched := NewScheduler(e, SortManyOpts{
				Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond},
			})
			clean, err := sched.RunOne(context.Background(), parts)
			if err != nil {
				t.Fatalf("clean run: %v", err)
			}
			failpoint.Set("core/merge", failpoint.Schedule{Mode: mode})
			retried, err := sched.RunOne(context.Background(), parts)
			if err != nil {
				t.Fatalf("retried run: %v", err)
			}
			sameOutput(t, clean, retried)
			checkNoLeak(t, e)
		})
	}
}

// TestFailpointAbortsWholeSortQuickly proves abort-on-first-error: one
// node's injected failure must fail the whole plain Sort promptly (peers
// blocked on its messages are torn down, not hung), classify Transient,
// and leave the engine usable.
func TestFailpointAbortsWholeSortQuickly(t *testing.T) {
	failpoint.Reset()
	t.Cleanup(failpoint.Reset)
	e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 1})
	parts := mkParts(dist.Uniform, 4, 2000, 11)

	failpoint.Set("core/splitters", failpoint.Schedule{Mode: failpoint.ModeError})
	done := make(chan error, 1)
	go func() {
		_, err := e.Sort(parts)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("injected sort succeeded")
		}
		var f *Failure
		if !errors.As(err, &f) {
			t.Fatalf("error %v is not a *Failure", err)
		}
		if f.Class != FailTransient || f.Stage != StageSplitters {
			t.Fatalf("Failure class=%v stage=%v, want transient/splitters", f.Class, f.Stage)
		}
		if !errors.Is(err, failpoint.ErrInjected) {
			t.Fatalf("error %v does not unwrap to the injected sentinel", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("injected failure hung the sort instead of aborting it")
	}

	// The engine survives: an uninjected sort still works.
	res, err := e.Sort(parts)
	if err != nil {
		t.Fatalf("follow-up sort: %v", err)
	}
	if err := res.Verify(parts); err != nil {
		t.Fatal(err)
	}
	checkNoLeak(t, e)
}

// TestRetryBudgetExhausts caps runaway retries: with the failpoint
// firing forever and a lifetime budget of 1, the job must fail with the
// budget error after exactly one retry.
func TestRetryBudgetExhausts(t *testing.T) {
	failpoint.Reset()
	t.Cleanup(failpoint.Reset)
	e := newTestEngine(t, Options{Procs: 2, WorkersPerProc: 1})
	parts := mkParts(dist.Uniform, 2, 500, 3)
	sched := NewScheduler(e, SortManyOpts{
		Retry: RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Millisecond, Budget: 1},
	})
	failpoint.Set("core/local-sort", failpoint.Schedule{Mode: failpoint.ModeError, Count: -1})
	_, err := sched.RunOne(context.Background(), parts)
	if err == nil {
		t.Fatal("unlimited injection with budget 1 should fail")
	}
	if sched.Retries() != 1 {
		t.Fatalf("Retries = %d, want exactly 1 (budget)", sched.Retries())
	}
	checkNoLeak(t, e)
}

// TestNoRetryOnCancel: a job whose context dies mid-run must not be
// retried, and the context error must surface unwrapped so callers can
// errors.Is on it.
func TestNoRetryOnCancel(t *testing.T) {
	failpoint.Reset()
	t.Cleanup(failpoint.Reset)
	e := newTestEngine(t, Options{Procs: 2, WorkersPerProc: 1})
	parts := mkParts(dist.Uniform, 2, 500, 3)
	sched := NewScheduler(e, SortManyOpts{
		Retry: RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond},
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sched.RunOne(ctx, parts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sched.Retries() != 0 {
		t.Fatalf("cancelled job was retried %d times", sched.Retries())
	}
}

// TestClassify pins the failure taxonomy's classification table.
func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want FailureClass
	}{
		{"nil", nil, FailUnknown},
		{"plain", errors.New("boom"), FailUnknown},
		{"canceled", context.Canceled, FailUnknown},
		{"deadline", fmt.Errorf("dataset 0: %w", context.DeadlineExceeded), FailUnknown},
		{"link", &transport.LinkError{Src: 0, Dst: 1, Attempts: 3, Err: errors.New("refused")}, FailFatal},
		{"link-wrapped", fmt.Errorf("core: %w", &transport.LinkError{Src: 1, Dst: 2}), FailFatal},
		{"io-deadline", &transport.DeadlineError{Op: "write", Src: 0, Dst: 1}, FailTransient},
		{"injected", &failpoint.Error{Site: "x"}, FailTransient},
		{"panic", &panicError{val: "boom"}, FailTransient},
		{"frame", fmt.Errorf("send: %w", comm.ErrFrameTooLarge), FailDataDependent},
		{"failure-passthrough", &Failure{Class: FailFatal, Err: errors.New("inner")}, FailFatal},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestRetryDeterministicUnderSortMany: retries inside a pipelined batch
// keep every dataset's result correct (the retried job holds its
// admission slot, fresh stage controllers per attempt).
func TestRetryUnderSortManyBatch(t *testing.T) {
	failpoint.Reset()
	t.Cleanup(failpoint.Reset)
	e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 1})
	var datasets [][][]uint64
	for d := 0; d < 4; d++ {
		datasets = append(datasets, mkParts(dist.Uniform, 4, 1500, uint64(100+d)))
	}
	// Fire twice somewhere in the middle of the batch's exchange hits.
	failpoint.Set("core/exchange", failpoint.Schedule{Mode: failpoint.ModeError, Nth: 3, Count: 2})
	sched := NewScheduler(e, SortManyOpts{
		MaxInflight: 2,
		Retry:       RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond},
	})
	results, err := sched.Run(context.Background(), datasets)
	if err != nil {
		t.Fatalf("batch with retries failed: %v", err)
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("dataset %d has no result", i)
		}
		if err := res.Verify(datasets[i]); err != nil {
			t.Fatalf("dataset %d: %v", i, err)
		}
	}
	checkNoLeak(t, e)
}
