package core

import (
	"bytes"
	"cmp"
	"math"
	"runtime"
	"strings"
	"testing"

	"pgxsort/internal/comm"
	"pgxsort/internal/dist"
	"pgxsort/internal/transport"
)

// sortWith builds an engine with opts, sorts parts and returns the result.
func sortWith[K cmp.Ordered](t *testing.T, codec comm.Codec[K], opts Options, parts [][]K) *Result[K] {
	t.Helper()
	e, err := NewEngine[K](opts, codec)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	res, err := e.Sort(parts)
	if err != nil {
		t.Fatalf("Sort(%s): %v", opts.Merge, err)
	}
	if err := res.Verify(parts); err != nil {
		t.Fatalf("Verify(%s): %v", opts.Merge, err)
	}
	return res
}

// requireEntriesIdentical asserts two results are byte-identical entry for
// entry: same partition sizes, same origins, and byte-equal keys under the
// codec (plain == would treat NaN keys as unequal to themselves).
func requireEntriesIdentical[K cmp.Ordered](t *testing.T, codec comm.Codec[K], got, want *Result[K], label string) {
	t.Helper()
	if len(got.Parts) != len(want.Parts) {
		t.Fatalf("%s: %d parts vs %d", label, len(got.Parts), len(want.Parts))
	}
	ka := make([]byte, codec.KeySize())
	kb := make([]byte, codec.KeySize())
	for pi := range got.Parts {
		if len(got.Parts[pi]) != len(want.Parts[pi]) {
			t.Fatalf("%s: part %d has %d entries, want %d",
				label, pi, len(got.Parts[pi]), len(want.Parts[pi]))
		}
		for i := range got.Parts[pi] {
			g, w := got.Parts[pi][i], want.Parts[pi][i]
			codec.PutKey(ka, g.Key)
			codec.PutKey(kb, w.Key)
			if g.Proc != w.Proc || g.Index != w.Index || !bytes.Equal(ka, kb) {
				t.Fatalf("%s: part %d entry %d: %+v != %+v", label, pi, i, g, w)
			}
		}
	}
}

// diffOverlapVsBarriered is the differential core: the streaming overlap
// must produce output byte-identical to the barriered loser-tree merge
// (whose tie order — by origin processor, within-source run order
// preserved — is exactly the unique total order the overlap's tie-refined
// comparator pins down), and key-identical to the barriered balanced
// handler.
func diffOverlapVsBarriered[K cmp.Ordered](t *testing.T, codec comm.Codec[K], parts [][]K, opts Options, label string) {
	t.Helper()
	opts.Procs = len(parts)
	// These differentials validate the *resident* overlap merger, which
	// stands down whenever the exchange spills; pin the explicit in-memory
	// opt-out so a PGXSORT_MEM_BUDGET ablation run doesn't replace the
	// machinery under test (budgeted overlap convergence is spill_test.go's
	// TestSpillAllStrategiesConverge).
	opts.MemoryBudget = -1
	kway := opts
	kway.Merge = MergeKWay
	overlap := opts
	overlap.Merge = MergeOverlap
	balanced := opts
	balanced.Merge = MergeBalanced

	want := sortWith(t, codec, kway, parts)
	got := sortWith(t, codec, overlap, parts)
	requireEntriesIdentical(t, codec, got, want, label)
	if got.Report.MergePath != "overlap" {
		t.Fatalf("%s: MergePath = %q, want overlap", label, got.Report.MergePath)
	}

	bal := sortWith(t, codec, balanced, parts)
	gk, bk := got.Keys(), bal.Keys()
	ka := make([]byte, codec.KeySize())
	kb := make([]byte, codec.KeySize())
	for i := range gk {
		codec.PutKey(ka, gk[i])
		codec.PutKey(kb, bk[i])
		if !bytes.Equal(ka, kb) {
			t.Fatalf("%s: overlap and balanced keys disagree at %d", label, i)
		}
	}
}

// TestOverlapDifferentialAllKinds: byte-identical output on every
// generator kind, including the adversarial sorted/constant/few-distinct
// shapes whose duplicate ties stress the origin tie-break.
func TestOverlapDifferentialAllKinds(t *testing.T) {
	for _, kind := range dist.AllKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			parts := mkParts(kind, 5, 4000, 17)
			diffOverlapVsBarriered(t, comm.U64Codec{}, parts,
				Options{WorkersPerProc: 2}, kind.String())
		})
	}
}

// TestOverlapDifferentialKeyTypes: the overlap is key-type agnostic; the
// int64 sign flip, the float64 IEEE-754 total order (NaNs, infinities and
// signed zeros included) and the narrow uint32 codec all stay
// byte-identical to the barriered merge — on both local-sort paths.
func TestOverlapDifferentialKeyTypes(t *testing.T) {
	const procs, per = 4, 3000
	base := mkParts(dist.Normal, procs, per, 23)
	for _, mode := range []LocalSortMode{LocalSortAuto, LocalSortComparison} {
		opts := Options{WorkersPerProc: 2, LocalSort: mode}
		t.Run("int64/"+mode.String(), func(t *testing.T) {
			parts := make([][]int64, procs)
			for i, p := range base {
				parts[i] = make([]int64, len(p))
				for j, k := range p {
					parts[i][j] = int64(k) - int64(len(p))*500 // mix signs
				}
			}
			diffOverlapVsBarriered(t, comm.I64Codec{}, parts, opts, "int64")
		})
		t.Run("float64/"+mode.String(), func(t *testing.T) {
			// NaNs are only orderable on the normalized (radix/auto) path,
			// whose IEEE-754 total order pins their positions; under the
			// forced comparison path raw < is not a strict weak ordering
			// with NaNs present and no merge schedule has defined output,
			// so that case sticks to non-NaN specials.
			specials := []float64{math.Inf(1), math.Inf(-1), 0.0,
				math.Copysign(0, -1), math.MaxFloat64, -math.SmallestNonzeroFloat64}
			if mode == LocalSortAuto {
				specials = append(specials, math.NaN(), -math.NaN())
			}
			parts := make([][]float64, procs)
			for i, p := range base {
				parts[i] = make([]float64, len(p))
				for j, k := range p {
					if j < len(specials) {
						parts[i][j] = specials[(i+j)%len(specials)]
						continue
					}
					// Raw bit reinterpretation: wild exponents, negatives,
					// and (on the auto path) NaN payload patterns.
					v := math.Float64frombits(k * 0x9e3779b97f4a7c15)
					if mode != LocalSortAuto && math.IsNaN(v) {
						v = float64(k) // keep the comparison path NaN-free
					}
					parts[i][j] = v
				}
			}
			diffOverlapVsBarriered(t, comm.F64Codec{}, parts, opts, "float64")
		})
		t.Run("uint32/"+mode.String(), func(t *testing.T) {
			parts := make([][]uint32, procs)
			for i, p := range base {
				parts[i] = make([]uint32, len(p))
				for j, k := range p {
					parts[i][j] = uint32(k)
				}
			}
			diffOverlapVsBarriered(t, comm.U32Codec{}, parts, opts, "uint32")
		})
	}
}

// TestOverlapDifferentialDegenerate: empty datasets, single processors,
// fewer keys than processors — the copy-out path for a lone borrowed run
// and the all-empty ladder.
func TestOverlapDifferentialDegenerate(t *testing.T) {
	cases := map[string][][]uint64{
		"all-empty":    {{}, {}, {}},
		"single-proc":  {{5, 3, 9, 1}},
		"sparse":       {{7}, {}, {2, 2, 2}, {}},
		"one-key-each": {{4}, {1}, {3}, {2}},
	}
	for name, parts := range cases {
		parts := parts
		t.Run(name, func(t *testing.T) {
			diffOverlapVsBarriered(t, comm.U64Codec{}, parts,
				Options{WorkersPerProc: 1}, name)
		})
	}
}

// TestOverlapSurvivesResetsIdentical is the chaos half of the
// differential suite: the streaming merge runs over the TCP transport
// with connections reset on a schedule throughout the exchange, and must
// still produce output byte-identical to a fault-free barriered reference
// — a reconnect mid-run must not corrupt an in-progress incremental
// merge.
func TestOverlapSurvivesResetsIdentical(t *testing.T) {
	const procs = 4
	for _, kind := range []dist.Kind{dist.Uniform, dist.RightSkewed} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			parts := mkParts(kind, procs, 6000, 4321)
			// BufferBytes must match across engines: it drives the sample
			// count, so splitters (and thus partitions) agree.
			ref := sortWith(t, comm.U64Codec{}, Options{
				Procs: procs, WorkersPerProc: 2, BufferBytes: 4096, Merge: MergeKWay,
			}, parts)
			e, err := NewEngine[uint64](Options{
				Procs:          procs,
				WorkersPerProc: 2,
				BufferBytes:    4096,
				Merge:          MergeOverlap,
				Transport:      transport.KindTCP,
				TCP:            chaosTCP(),
				Faults:         &transport.FaultPlan{ResetEvery: 3},
			}, comm.U64Codec{})
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			defer e.Close()
			got, err := e.Sort(parts)
			if err != nil {
				t.Fatalf("chaos overlap sort: %v", err)
			}
			if err := got.Verify(parts); err != nil {
				t.Fatal(err)
			}
			requireEntriesIdentical(t, comm.U64Codec{}, got, ref, kind.String())
			if got.Report.Reconnects == 0 {
				t.Error("chaos overlap sort reported no reconnects; the faults did not bite")
			}
		})
	}
}

// FuzzOverlapDifferential fuzzes generator kind, seed, shape and
// processor count: overlap output must match the barriered loser-tree
// merge entry for entry.
func FuzzOverlapDifferential(f *testing.F) {
	f.Add(uint8(0), uint64(1), uint8(4), uint16(800))
	f.Add(uint8(2), uint64(99), uint8(7), uint16(333))
	f.Add(uint8(7), uint64(5), uint8(1), uint16(50))
	f.Add(uint8(5), uint64(12345), uint8(3), uint16(0))
	f.Fuzz(func(t *testing.T, kindB uint8, seed uint64, procsB uint8, perB uint16) {
		kind := dist.AllKinds[int(kindB)%len(dist.AllKinds)]
		procs := 1 + int(procsB%8)
		per := int(perB % 2048)
		parts := mkParts(kind, procs, per, seed)
		diffOverlapVsBarriered(t, comm.U64Codec{}, parts,
			Options{WorkersPerProc: 2}, kind.String())
	})
}

// TestOverlapReportAndTrace: the overlap surfaces its accounting — the
// resolved merge path, a non-negative hidden-latency figure that is
// positive on a workload with real merge work, and per-merge spans in the
// scheduler trace.
func TestOverlapReportAndTrace(t *testing.T) {
	const procs = 8
	parts := mkParts(dist.Uniform, procs, 30000, 55)
	// Timing-dependent: merge work must land inside the exchange window.
	// Retry a few times before declaring the overlap dead.
	saved := false
	for attempt := 0; attempt < 3 && !saved; attempt++ {
		// MemoryBudget -1: the trace needs the resident overlap, which a
		// PGXSORT_MEM_BUDGET ablation run would otherwise spill away.
		e := newTestEngine(t, Options{Procs: procs, WorkersPerProc: 2, Merge: MergeOverlap, MemoryBudget: -1})
		res, err := e.Sort(parts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Report.MergePath != "overlap" {
			t.Fatalf("MergePath = %q", res.Report.MergePath)
		}
		if res.Report.MergeOverlapSaved < 0 {
			t.Fatalf("MergeOverlapSaved negative: %v", res.Report.MergeOverlapSaved)
		}
		saved = res.Report.MergeOverlapSaved > 0
	}
	if !saved {
		t.Error("MergeOverlapSaved stayed zero across attempts: no merge work overlapped the exchange")
	}

	// Under the pipelined scheduler the trace carries the merge spans.
	e := newTestEngine(t, Options{Procs: 4, WorkersPerProc: 2, Merge: MergeOverlap, MemoryBudget: -1})
	datasets := [][][]uint64{
		mkParts(dist.Uniform, 4, 5000, 1),
		mkParts(dist.Normal, 4, 5000, 2),
	}
	results, err := e.SortMany(datasets...)
	if err != nil {
		t.Fatal(err)
	}
	for d, res := range results {
		if err := res.Verify(datasets[d]); err != nil {
			t.Fatalf("dataset %d: %v", d, err)
		}
		if len(res.Report.Sched.MergeSpans) == 0 {
			t.Errorf("dataset %d: no merge spans in the scheduler trace", d)
		}
		for _, sp := range res.Report.Sched.MergeSpans {
			if sp.End < sp.Start || sp.Entries <= 0 || sp.Node < 0 || sp.Node >= 4 {
				t.Errorf("dataset %d: malformed span %+v", d, sp)
			}
		}
		if !strings.Contains(res.Report.Sched.String(), "merge-spans") {
			t.Errorf("dataset %d: trace String does not mention merge spans", d)
		}
	}
}

// TestMergeAutoResolution: the default strategy resolves by processor
// count and hardware parallelism, and honours the PGXSORT_OVERLAP
// ablation env var.
func TestMergeAutoResolution(t *testing.T) {
	t.Setenv(OverlapEnv, "")
	wantWide := MergeBalanced
	if runtime.GOMAXPROCS(0) >= overlapAutoMinCPUs {
		// Overlap needs spare CPUs to hide merge work behind the exchange;
		// a single-CPU runtime correctly falls back to the barriered path.
		wantWide = MergeOverlap
	}
	if m := (Options{Procs: 8}).withDefaults().Merge; m != wantWide {
		t.Errorf("auto at p=8 resolved to %v, want %v", m, wantWide)
	}
	if m := (Options{Procs: 2}).withDefaults().Merge; m != MergeBalanced {
		t.Errorf("auto at p=2 resolved to %v, want balanced", m)
	}
	if m := (Options{Procs: 8, Merge: MergeKWay}).withDefaults().Merge; m != MergeKWay {
		t.Errorf("explicit kway overridden to %v", m)
	}
	t.Setenv(OverlapEnv, "off")
	if m := (Options{Procs: 8}).withDefaults().Merge; m != MergeBalanced {
		t.Errorf("auto with env off resolved to %v, want balanced", m)
	}
	if m := (Options{Procs: 8, Merge: MergeOverlap}).withDefaults().Merge; m != MergeOverlap {
		t.Errorf("env off overrode an explicit overlap to %v", m)
	}
	t.Setenv(OverlapEnv, "on")
	if m := (Options{Procs: 2}).withDefaults().Merge; m != MergeOverlap {
		t.Errorf("auto with env on resolved to %v, want overlap", m)
	}
}

func TestParseOverlapFlag(t *testing.T) {
	cases := map[string]MergeStrategy{"auto": MergeAuto, "": MergeAuto,
		"on": MergeOverlap, "off": MergeBalanced}
	for in, want := range cases {
		got, err := ParseOverlapFlag(in)
		if err != nil || got != want {
			t.Errorf("ParseOverlapFlag(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseOverlapFlag("sideways"); err == nil {
		t.Error("bad overlap mode accepted")
	}
}
