package core

import (
	"cmp"
	"context"
	"fmt"
	"sync/atomic"
	"time"
	"unsafe"

	"pgxsort/internal/comm"
	"pgxsort/internal/datamgr"
	"pgxsort/internal/lsort"
	"pgxsort/internal/sample"
)

// sortRun is the per-node state of one sort: the node it runs on, the
// sort id multiplexing its traffic, and its measurements.
type sortRun[K cmp.Ordered] struct {
	node   *node[K]
	sortID int32
	opts   Options
	codec  comm.Codec[K]
	input  []K
	ctx    context.Context // nil means uncancellable
	ctrl   *stageCtrl      // nil outside the SortMany scheduler
	cmps   sortCmps[K]
	report NodeReport

	// Traffic counters are atomics, not a mutex: sends to different
	// destinations run concurrently on the worker pool, and the exchange
	// hot path must not serialize them. They fold into the report once
	// the run finishes.
	bytesSent   atomic.Int64
	msgsSent    atomic.Int64
	sampleBytes atomic.Int64
	metaBytes   atomic.Int64
	dataBytes   atomic.Int64

	// retired collects pooled entry slabs whose subslices may still be
	// aliased by in-flight exchange messages; sortOne recycles them only
	// after every node has joined.
	retired [][]comm.Entry[K]

	// Transport-health baselines captured when the run starts; the
	// endpoint counters are cumulative over the engine's lifetime, so
	// the report carries the delta accrued during this sort.
	stall0      time.Duration
	reconnects0 int64
	resent0     int64

	stageArrived [NumSchedStages]bool
	stageLeft    [NumSchedStages]bool
}

func entryLess[K cmp.Ordered](a, b comm.Entry[K]) bool { return a.Key < b.Key }

// sortCmps bundles one sort's ordering machinery: the resolved step-1
// path, the comparators driving sampling, partitioning and merging, and
// the key normalization feeding the radix passes. When the radix path is
// active every comparison goes through the normalized image, so the whole
// pipeline produces one consistent total order — for float64 that is the
// IEEE-754 total order, which pins the NaN positions `<` cannot order.
type sortCmps[K cmp.Ordered] struct {
	path      string // "radix" or "comparison"
	useRadix  bool
	norm      func(K) uint64
	normBits  int
	entryLess func(a, b comm.Entry[K]) bool
	keyLess   func(a, b K) bool
	keyAbove  func(e comm.Entry[K], sp K) bool // e.Key strictly above the splitter
}

// comparators resolves Options.LocalSort against the engine's key
// normalization (LocalSortRadix without a norm degrades to comparison).
func (e *Engine[K]) comparators() sortCmps[K] {
	c := sortCmps[K]{norm: e.norm, normBits: e.normBits}
	c.useRadix = e.norm != nil && e.opts.LocalSort != LocalSortComparison
	if c.useRadix {
		c.path = "radix"
		norm := e.norm
		c.entryLess = func(a, b comm.Entry[K]) bool { return norm(a.Key) < norm(b.Key) }
		c.keyLess = func(a, b K) bool { return norm(a) < norm(b) }
		c.keyAbove = func(en comm.Entry[K], sp K) bool { return norm(en.Key) > norm(sp) }
	} else {
		c.path = "comparison"
		c.entryLess = entryLess[K]
		c.keyLess = func(a, b K) bool { return a < b }
		c.keyAbove = func(en comm.Entry[K], sp K) bool { return en.Key > sp }
	}
	return c
}

// retire schedules a pooled slab for recycling once the whole sort has
// joined (sortOne calls recycleRetired after the last node finishes).
func (s *sortRun[K]) retire(buf []comm.Entry[K]) {
	if s.node.entryPool != nil {
		s.retired = append(s.retired, buf)
	}
}

// recycleRetired returns the retired slabs to the node's pool. Only safe
// once no exchange message can alias them: after every node of the sort
// has joined.
func (s *sortRun[K]) recycleRetired() {
	if s == nil {
		return
	}
	for _, buf := range s.retired {
		s.node.entryPool.Put(buf)
	}
	s.retired = nil
}

// foldTraffic moves the atomic traffic counters into the report, along
// with the transport-health deltas accrued since the run started.
func (s *sortRun[K]) foldTraffic() {
	s.report.BytesSent = s.bytesSent.Load()
	s.report.MsgsSent = s.msgsSent.Load()
	s.report.SampleBytes = s.sampleBytes.Load()
	s.report.MetaBytes = s.metaBytes.Load()
	s.report.DataBytes = s.dataBytes.Load()
	st := s.node.ep.Stats()
	s.report.SendStall = st.SendStall() - s.stall0
	s.report.Reconnects = st.Reconnects() - s.reconnects0
	s.report.FramesResent = st.FramesResent() - s.resent0
}

// markTransportBaseline snapshots the endpoint's cumulative health
// counters so foldTraffic can report per-sort deltas.
func (s *sortRun[K]) markTransportBaseline() {
	st := s.node.ep.Stats()
	s.stall0 = st.SendStall()
	s.reconnects0 = st.Reconnects()
	s.resent0 = st.FramesResent()
}

// entryBytes is the in-memory size of one entry, used for the resident /
// temporary memory accounting of Figure 11.
func entryBytes[K cmp.Ordered]() int {
	var e comm.Entry[K]
	return int(unsafe.Sizeof(e))
}

// send stamps the sort id, forwards to the transport and accounts the
// traffic against this sort (lock-free: sends to different destinations
// run concurrently).
func (s *sortRun[K]) send(dst int, m comm.Message[K]) error {
	m.SortID = s.sortID
	if err := s.node.ep.Send(dst, m); err != nil {
		return err
	}
	bytes := int64(m.LogicalBytes(s.codec.KeySize()))
	s.bytesSent.Add(bytes)
	s.msgsSent.Add(1)
	switch m.Kind {
	case comm.KSamples, comm.KSplitters:
		s.sampleBytes.Add(bytes)
	case comm.KRangeMeta, comm.KControl:
		s.metaBytes.Add(bytes)
	case comm.KData:
		s.dataBytes.Add(bytes)
	}
	return nil
}

// recv pops the next message of the given kind for this sort.
func (s *sortRun[K]) recv(kind comm.Kind) (comm.Message[K], error) {
	m, ok := s.node.mb(s.sortID, kind).pop()
	if !ok {
		if s.ctx != nil && s.ctx.Err() != nil {
			return m, s.ctx.Err()
		}
		return m, fmt.Errorf("network closed while waiting for %v", kind)
	}
	return m, nil
}

// enterStage blocks until the scheduler admits this sort into st,
// recording how long this node waited at the boundary.
func (s *sortRun[K]) enterStage(st SchedStage) error {
	s.stageArrived[st] = true
	wait, err := s.ctrl.enter(st)
	s.report.StageWait[st] = wait
	if err != nil {
		return err
	}
	if s.ctx != nil {
		return s.ctx.Err()
	}
	return nil
}

// leaveStage marks this node done with st, at most once per stage.
func (s *sortRun[K]) leaveStage(st SchedStage) {
	if s.stageLeft[st] {
		return
	}
	s.stageLeft[st] = true
	s.ctrl.leave(st)
}

// leaveAllStages credits this node's arrival at and departure from every
// stage it has not passed through, so an error exit can never strand a
// stage barrier or gate.
func (s *sortRun[K]) leaveAllStages() {
	for st := SchedStage(0); st < NumSchedStages; st++ {
		if !s.stageArrived[st] {
			s.stageArrived[st] = true
			s.ctrl.forfeit(st)
		}
		s.leaveStage(st)
	}
}

// run executes the staged pipeline and returns this node's sorted part.
// The six paper steps map onto four scheduler stages: local sort (CPU),
// sample/splitter agreement (comm), partition+exchange (comm-heavy),
// final merge (CPU).
func (s *sortRun[K]) run() ([]comm.Entry[K], error) {
	s.markTransportBaseline()
	defer s.leaveAllStages()
	defer s.foldTraffic()

	if err := s.enterStage(StageLocalSort); err != nil {
		return nil, err
	}
	entries := s.localSort()
	s.leaveStage(StageLocalSort)

	if err := s.enterStage(StageSplitters); err != nil {
		return nil, err
	}
	splitters, err := s.splitterAgreement(entries)
	if err != nil {
		return nil, err
	}
	s.leaveStage(StageSplitters)

	if err := s.enterStage(StageExchange); err != nil {
		return nil, err
	}
	asm, err := s.partitionExchange(entries, splitters)
	if err != nil {
		return nil, err
	}
	s.leaveStage(StageExchange)

	if err := s.enterStage(StageMerge); err != nil {
		asm.Release()
		s.node.entryPool.Put(asm.Entries())
		return nil, err
	}
	merged := s.finalMerge(asm)
	s.leaveStage(StageMerge)

	s.report.PartSize = len(merged)
	s.report.ResidentBytes += int64(len(merged)) * int64(entryBytes[K]())
	s.report.TempPeakBytes = s.node.tracker.Peak()
	return merged, nil
}

// localSort is step 1: the parallel local sort. The comparison path is
// the paper's chunked quicksort + balanced merge; the radix path (taken
// when the key normalizes to uint64, see Options.LocalSort) replaces the
// per-chunk quicksort with an LSD byte-radix sort over normalized keys.
// Both paths draw the entry buffer and merge scratch from the node's
// slab pool: scratch returns to the pool immediately, the entry buffer
// once the whole sort joins (its subslices travel through the exchange).
func (s *sortRun[K]) localSort() []comm.Entry[K] {
	n := s.node
	t0 := time.Now()
	entries := n.entryPool.Get(len(s.input))
	for i, k := range s.input {
		entries[i] = comm.Entry[K]{Key: k, Proc: uint32(n.id), Index: uint32(i)}
	}
	s.retire(entries)
	eb := int64(entryBytes[K]())
	s.report.ResidentBytes = int64(len(entries)) * eb
	s.report.LocalSortPath = s.cmps.path
	if len(entries) > 1 {
		workers := s.opts.WorkersPerProc
		if s.cmps.useRadix || workers > 1 {
			scratch := n.entryPool.Get(len(entries))
			n.tracker.Alloc(int64(len(scratch)) * eb)
			if s.cmps.useRadix {
				norm := s.cmps.norm
				lsort.ParallelRadixSort(entries, scratch,
					func(e comm.Entry[K]) uint64 { return norm(e.Key) },
					s.cmps.normBits, s.cmps.entryLess, workers)
			} else {
				lsort.ParallelSortScratch(entries, scratch, s.cmps.entryLess, workers)
			}
			n.tracker.Free(int64(len(scratch)) * eb)
			n.entryPool.Put(scratch)
		} else {
			lsort.Quicksort(entries, s.cmps.entryLess)
		}
	}
	s.report.Steps[StepLocalSort] = time.Since(t0)
	return entries
}

// splitterAgreement is steps 2-3: regular sampling, one buffer of samples
// to the master, master-side splitter selection and broadcast.
func (s *sortRun[K]) splitterAgreement(entries []comm.Entry[K]) ([]K, error) {
	p := s.opts.Procs
	self := s.node.id
	master := s.opts.Master

	// ---- Step 2: regular sampling, one buffer of samples to master ----
	t0 := time.Now()
	nsamples := sample.Count(s.opts.BufferBytes, p, s.codec.KeySize(), s.opts.SampleFactor, len(entries))
	sampled := sample.Regular(entries, nsamples)
	keys := make([]K, len(sampled))
	for i, e := range sampled {
		keys[i] = e.Key
	}
	s.report.SamplesSent = len(keys)
	if p > 1 && self != master {
		if err := s.send(master, comm.Message[K]{Kind: comm.KSamples, Keys: keys}); err != nil {
			return nil, err
		}
	}
	s.report.Steps[StepSampling] = time.Since(t0)

	// ---- Step 3: master selects splitters and broadcasts them ----
	t0 = time.Now()
	var splitters []K
	if p > 1 {
		if self == master {
			runs := make([][]K, 0, p)
			runs = append(runs, keys) // master's own samples stay local
			for i := 0; i < p-1; i++ {
				m, err := s.recv(comm.KSamples)
				if err != nil {
					return nil, err
				}
				runs = append(runs, m.Keys)
			}
			splitters = sample.SelectSplitters(runs, p, s.cmps.keyLess)
			for dst := 0; dst < p; dst++ {
				if dst == master {
					continue
				}
				if err := s.send(dst, comm.Message[K]{Kind: comm.KSplitters, Keys: splitters}); err != nil {
					return nil, err
				}
			}
		} else {
			m, err := s.recv(comm.KSplitters)
			if err != nil {
				return nil, err
			}
			splitters = m.Keys
		}
		if len(splitters) == 0 {
			// Every processor was empty, so no samples exist anywhere.
			// Any splitters partition nothing correctly; use zero keys.
			splitters = make([]K, p-1)
		}
	}
	s.report.Steps[StepSplitters] = time.Since(t0)
	return splitters, nil
}

// partitionExchange is steps 4-5: binary-search range partitioning, the
// range-metadata broadcast, and the simultaneous all-to-all exchange at
// precomputed offsets. On error the assembly's temporary memory is
// released, so a cancelled sort cannot inflate the node's tracker for
// later sorts on the same engine.
func (s *sortRun[K]) partitionExchange(entries []comm.Entry[K], splitters []K) (_ *datamgr.Assembly[K], err error) {
	n := s.node
	p := s.opts.Procs
	self := n.id
	eb := entryBytes[K]()

	// ---- Step 4: binary-search range partitioning + metadata bcast ----
	t0 := time.Now()
	ranges := sample.Partition(entries, splitters,
		s.cmps.keyLess, s.cmps.keyAbove,
		!s.opts.DisableInvestigator)
	counts := ranges.Counts()
	meta := make([]int64, p)
	for i, c := range counts {
		meta[i] = int64(c)
	}
	// Broadcast the counts so every receiver can precompute offsets.
	for dst := 0; dst < p; dst++ {
		if dst == self {
			continue
		}
		if err := s.send(dst, comm.Message[K]{Kind: comm.KRangeMeta, Ints: meta}); err != nil {
			return nil, err
		}
	}
	// Collect everyone's counts; perSrc[i] is what source i sends me.
	perSrc := make([]int, p)
	perSrc[self] = counts[self]
	for i := 0; i < p-1; i++ {
		m, err := s.recv(comm.KRangeMeta)
		if err != nil {
			return nil, err
		}
		if len(m.Ints) != p {
			return nil, fmt.Errorf("range metadata from %d has %d counts, want %d", m.Src, len(m.Ints), p)
		}
		perSrc[m.Src] = int(m.Ints[self])
	}
	s.report.Steps[StepPartition] = time.Since(t0)

	// ---- Step 5: simultaneous send and receive at precomputed offsets ----
	t0 = time.Now()
	total := 0
	for _, c := range perSrc {
		total += c
	}
	asm := datamgr.NewAssemblyBuf[K](n.dm, perSrc, eb, n.entryPool.Get(total))
	defer func() {
		if err != nil {
			asm.Release()
			n.entryPool.Put(asm.Entries())
		}
	}()
	// The local range never touches the network.
	lo, hi := ranges.Range(self)
	if err := asm.Write(self, entries[lo:hi]); err != nil {
		return nil, err
	}
	expectRemote := 0
	for src, c := range perSrc {
		if src != self {
			expectRemote += c
		}
	}

	sendAll := func() error {
		// One send task per destination on the worker pool: the task
		// manager schedules chunked request buffers per peer.
		errs := make([]error, p)
		tasks := make([]func(), 0, p-1)
		for dst := 0; dst < p; dst++ {
			if dst == self {
				continue
			}
			dst := dst
			dlo, dhi := ranges.Range(dst)
			tasks = append(tasks, func() {
				errs[dst] = datamgr.Chunks(n.dm, entries[dlo:dhi], s.codec.KeySize(),
					func(chunk []comm.Entry[K]) error {
						return s.send(dst, comm.Message[K]{Kind: comm.KData, Entries: chunk})
					})
			})
		}
		n.pool.RunAll(tasks...)
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	recvAll := func() error {
		got := 0
		for got < expectRemote {
			m, err := s.recv(comm.KData)
			if err != nil {
				return err
			}
			if err := asm.Write(m.Src, m.Entries); err != nil {
				return err
			}
			got += len(m.Entries)
			if m.Release != nil {
				// The entries were decoded into a transport-owned slab
				// (TCP path) and are copied out now; recycle it.
				m.Release()
			}
		}
		return nil
	}

	if s.opts.SyncExchange {
		// Bulk-synchronous ablation: finish all sends, exchange barrier
		// tokens, then drain the receive queue.
		if err := sendAll(); err != nil {
			return nil, err
		}
		for dst := 0; dst < p; dst++ {
			if dst == self {
				continue
			}
			if err := s.send(dst, comm.Message[K]{Kind: comm.KControl, Ints: []int64{1}}); err != nil {
				return nil, err
			}
		}
		for i := 0; i < p-1; i++ {
			if _, err := s.recv(comm.KControl); err != nil {
				return nil, err
			}
		}
		if err := recvAll(); err != nil {
			return nil, err
		}
	} else {
		// Paper behaviour: send while receiving, no barrier in between.
		sendErr := make(chan error, 1)
		go func() { sendErr <- sendAll() }()
		if err := recvAll(); err != nil {
			<-sendErr
			return nil, err
		}
		if err := <-sendErr; err != nil {
			return nil, err
		}
	}
	s.report.Steps[StepExchange] = time.Since(t0)
	return asm, nil
}

// finalMerge is step 6: merge the received sorted runs. The merge
// scratch comes from the node's slab pool; whichever of the assembly
// buffer and the scratch does not end up backing the result is recycled
// immediately (the result itself becomes resident storage and leaves the
// pool for good).
func (s *sortRun[K]) finalMerge(asm *datamgr.Assembly[K]) []comm.Entry[K] {
	n := s.node
	p := s.opts.Procs
	eb := entryBytes[K]()

	t0 := time.Now()
	var merged []comm.Entry[K]
	buf := asm.Entries()
	switch s.opts.Merge {
	case MergeKWay:
		bounds := asm.Bounds()
		runs := make([][]comm.Entry[K], 0, p)
		for i := 0; i+1 < len(bounds); i++ {
			runs = append(runs, buf[bounds[i]:bounds[i+1]])
		}
		n.tracker.Alloc(int64(len(buf)) * int64(eb))
		merged = lsort.KWayMerge(runs, s.cmps.entryLess)
		n.tracker.Free(int64(len(buf)) * int64(eb))
		asm.Release()
		n.entryPool.Put(buf) // k-way merged into fresh storage; buf is free
	default:
		scratch := n.entryPool.Get(len(buf))
		n.tracker.Alloc(int64(len(buf)) * int64(eb))
		merged = lsort.MergeAdjacentRuns(buf, scratch, asm.Bounds(), s.cmps.entryLess, true)
		n.tracker.Free(int64(len(buf)) * int64(eb))
		asm.Release()
		if len(merged) > 0 && &merged[0] == &scratch[0] {
			n.entryPool.Put(buf)
		} else {
			n.entryPool.Put(scratch)
		}
	}
	s.report.Steps[StepFinalMerge] = time.Since(t0)
	return merged
}
