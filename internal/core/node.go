package core

import (
	"cmp"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
	"unsafe"

	"pgxsort/internal/comm"
	"pgxsort/internal/datamgr"
	"pgxsort/internal/failpoint"
	"pgxsort/internal/lsort"
	"pgxsort/internal/sample"
	"pgxsort/internal/spill"
	"pgxsort/internal/transport"
)

// sortRun is the per-node state of one sort: the node it runs on, the
// sort id multiplexing its traffic, and its measurements.
type sortRun[K cmp.Ordered] struct {
	node   *node[K]
	sortID int32
	opts   Options
	codec  comm.Codec[K]
	// Exactly one of input (bare keys) and inputRec (key+payload records)
	// is set; they differ only in how localSort builds the entry buffer.
	input    []K
	inputRec []comm.Record[K]
	ctx      context.Context // nil means uncancellable
	ctrl     *stageCtrl      // nil outside the SortMany scheduler
	cmps     sortCmps[K]
	report   NodeReport

	// curStage is the last stage this node entered; a failure surfacing
	// from run is attributed to it (core.Failure.Stage).
	curStage SchedStage
	// pendingAsm/pendingSp/pendingOv hold the completed exchange between
	// partitionExchange returning and finalMerge consuming it, so run's
	// panic recovery can discard them (slabs back to the pool, merger
	// goroutine joined, spill files removed) when the merge stage never
	// runs. Exactly one of pendingAsm/pendingSp is set after a
	// successful exchange.
	pendingAsm *datamgr.Assembly[K]
	pendingSp  *datamgr.SpillAssembly[K]
	pendingOv  *overlapMerger[K]
	// spillDir is this run's private directory for spill run files,
	// created lazily by spillScratchDir the first time a stage exceeds
	// Options.MemoryBudget and removed when the run exits either way.
	spillDir string

	// Traffic counters are atomics, not a mutex: sends to different
	// destinations run concurrently on the worker pool, and the exchange
	// hot path must not serialize them. They fold into the report once
	// the run finishes.
	bytesSent   atomic.Int64
	msgsSent    atomic.Int64
	sampleBytes atomic.Int64
	metaBytes   atomic.Int64
	dataBytes   atomic.Int64

	// retired collects pooled entry slabs whose subslices may still be
	// aliased by in-flight exchange messages; sortOne recycles them only
	// after every node has joined.
	retired [][]comm.Entry[K]

	// Transport-health baselines captured when the run starts; the
	// endpoint counters are cumulative over the engine's lifetime, so
	// the report carries the delta accrued during this sort.
	stall0      time.Duration
	reconnects0 int64
	resent0     int64

	stageArrived [NumSchedStages]bool
	stageLeft    [NumSchedStages]bool
}

func entryLess[K cmp.Ordered](a, b comm.Entry[K]) bool { return a.Key < b.Key }

// sortCmps bundles one sort's ordering machinery: the resolved step-1
// path, the comparators driving sampling, partitioning and merging, and
// the key normalization feeding the radix passes. When the radix path is
// active every comparison goes through the normalized image, so the whole
// pipeline produces one consistent total order — for float64 that is the
// IEEE-754 total order, which pins the NaN positions `<` cannot order.
type sortCmps[K cmp.Ordered] struct {
	path     string // "radix" or "comparison"
	useRadix bool
	// fallback marks an inexact norm (monotone, non-injective): the radix
	// sort leaves equal-norm runs unordered, so localSort finishes with a
	// comparison pass over them (lsort.SortEqualNormRuns) and every
	// comparator below is two-level (norm first, real key order on ties).
	fallback  bool
	norm      func(K) uint64
	normBits  int
	entryLess func(a, b comm.Entry[K]) bool
	keyLess   func(a, b K) bool
	keyAbove  func(e comm.Entry[K], sp K) bool // e.Key strictly above the splitter
	keyBelow  func(e comm.Entry[K], sp K) bool // e.Key strictly below the splitter
	// tieLess refines entryLess with the origin processor on equal keys.
	// The streaming overlap merger orders under it so its output is the
	// unique linear extension of (key, origin, within-run order) — a total
	// order independent of run arrival timing, matching the barriered
	// MergeKWay output byte for byte.
	tieLess func(a, b comm.Entry[K]) bool
}

// comparators resolves Options.LocalSort against the engine's key
// normalization (LocalSortRadix without a norm degrades to comparison).
func (e *Engine[K]) comparators() sortCmps[K] {
	c := sortCmps[K]{norm: e.norm, normBits: e.normBits}
	c.useRadix = e.norm != nil && e.opts.LocalSort != LocalSortComparison
	if c.useRadix && e.normInexact {
		// Inexact norm (e.g. StringCodec's 8-byte prefix): the norm is a
		// cheap first discriminator, but equal norms can hide unequal keys,
		// so every comparator falls through to the real key order. The
		// radix passes still do the bulk of the work; SortEqualNormRuns
		// finishes the collided runs (see localSort).
		c.path = "radix"
		c.fallback = true
		norm := e.norm
		c.entryLess = func(a, b comm.Entry[K]) bool {
			na, nb := norm(a.Key), norm(b.Key)
			if na != nb {
				return na < nb
			}
			return a.Key < b.Key
		}
		c.keyLess = func(a, b K) bool {
			na, nb := norm(a), norm(b)
			if na != nb {
				return na < nb
			}
			return a < b
		}
		c.keyAbove = func(en comm.Entry[K], sp K) bool {
			na, nb := norm(en.Key), norm(sp)
			if na != nb {
				return na > nb
			}
			return en.Key > sp
		}
		c.keyBelow = func(en comm.Entry[K], sp K) bool {
			na, nb := norm(en.Key), norm(sp)
			if na != nb {
				return na < nb
			}
			return en.Key < sp
		}
		c.tieLess = func(a, b comm.Entry[K]) bool {
			na, nb := norm(a.Key), norm(b.Key)
			if na != nb {
				return na < nb
			}
			if a.Key != b.Key {
				return a.Key < b.Key
			}
			return a.Proc < b.Proc
		}
	} else if c.useRadix {
		c.path = "radix"
		norm := e.norm
		c.entryLess = func(a, b comm.Entry[K]) bool { return norm(a.Key) < norm(b.Key) }
		c.keyLess = func(a, b K) bool { return norm(a) < norm(b) }
		c.keyAbove = func(en comm.Entry[K], sp K) bool { return norm(en.Key) > norm(sp) }
		c.keyBelow = func(en comm.Entry[K], sp K) bool { return norm(en.Key) < norm(sp) }
		// Specialized rather than layered over entryLess: the streaming
		// merger runs this on the hot path, and one norm per operand beats
		// the two entryLess probes of a generic tie-break wrapper.
		c.tieLess = func(a, b comm.Entry[K]) bool {
			na, nb := norm(a.Key), norm(b.Key)
			if na != nb {
				return na < nb
			}
			return a.Proc < b.Proc
		}
	} else {
		c.path = "comparison"
		c.entryLess = entryLess[K]
		c.keyLess = func(a, b K) bool { return a < b }
		c.keyAbove = func(en comm.Entry[K], sp K) bool { return en.Key > sp }
		c.keyBelow = func(en comm.Entry[K], sp K) bool { return en.Key < sp }
		c.tieLess = func(a, b comm.Entry[K]) bool {
			if a.Key < b.Key {
				return true
			}
			if b.Key < a.Key {
				return false
			}
			return a.Proc < b.Proc
		}
	}
	return c
}

// retire schedules a pooled slab for recycling once the whole sort has
// joined (sortOne calls recycleRetired after the last node finishes).
func (s *sortRun[K]) retire(buf []comm.Entry[K]) {
	if s.node.entryPool != nil {
		s.retired = append(s.retired, buf)
	}
}

// recycleRetired returns the retired slabs to the node's pool. Only safe
// once no exchange message can alias them: after every node of the sort
// has joined.
func (s *sortRun[K]) recycleRetired() {
	if s == nil {
		return
	}
	for _, buf := range s.retired {
		s.node.entryPool.Put(buf)
	}
	s.retired = nil
}

// foldTraffic moves the atomic traffic counters into the report, along
// with the transport-health deltas accrued since the run started.
func (s *sortRun[K]) foldTraffic() {
	s.report.BytesSent = s.bytesSent.Load()
	s.report.MsgsSent = s.msgsSent.Load()
	s.report.SampleBytes = s.sampleBytes.Load()
	s.report.MetaBytes = s.metaBytes.Load()
	s.report.DataBytes = s.dataBytes.Load()
	st := s.node.ep.Stats()
	s.report.SendStall = st.SendStall() - s.stall0
	s.report.Reconnects = st.Reconnects() - s.reconnects0
	s.report.FramesResent = st.FramesResent() - s.resent0
}

// markTransportBaseline snapshots the endpoint's cumulative health
// counters so foldTraffic can report per-sort deltas.
func (s *sortRun[K]) markTransportBaseline() {
	st := s.node.ep.Stats()
	s.stall0 = st.SendStall()
	s.reconnects0 = st.Reconnects()
	s.resent0 = st.FramesResent()
}

// entryBytes is the in-memory size of one entry, used for the resident /
// temporary memory accounting of Figure 11.
func entryBytes[K cmp.Ordered]() int {
	var e comm.Entry[K]
	return int(unsafe.Sizeof(e))
}

// send stamps the sort id, forwards to the transport and accounts the
// traffic against this sort (lock-free: sends to different destinations
// run concurrently).
func (s *sortRun[K]) send(dst int, m comm.Message[K]) error {
	m.SortID = s.sortID
	if err := s.node.ep.Send(dst, m); err != nil {
		return err
	}
	bytes := int64(m.WireBytes(s.codec))
	s.bytesSent.Add(bytes)
	s.msgsSent.Add(1)
	switch m.Kind {
	case comm.KSamples, comm.KSplitters:
		s.sampleBytes.Add(bytes)
	case comm.KRangeMeta, comm.KControl:
		s.metaBytes.Add(bytes)
	case comm.KData:
		s.dataBytes.Add(bytes)
	}
	return nil
}

// recv pops the next message of the given kind for this sort.
func (s *sortRun[K]) recv(kind comm.Kind) (comm.Message[K], error) {
	m, ok := s.node.mb(s.sortID, kind).pop()
	if !ok {
		if s.ctx != nil && s.ctx.Err() != nil {
			return m, s.ctx.Err()
		}
		if s.node.isCancelled(s.sortID) {
			// A peer node already failed and sortOne tore this sort
			// down; report the teardown, not a fake network death, so
			// root-cause selection can tell noise from cause.
			return m, errSortAborted
		}
		if te := transport.TerminalErr(s.node.eng.net); te != nil {
			// The mesh recorded why it died (e.g. a broken link); chain
			// it so Classify sees Fatal, not an anonymous closure.
			return m, fmt.Errorf("network closed while waiting for %v: %w", kind, te)
		}
		return m, fmt.Errorf("network closed while waiting for %v", kind)
	}
	return m, nil
}

// enterStage blocks until the scheduler admits this sort into st,
// recording how long this node waited at the boundary.
func (s *sortRun[K]) enterStage(st SchedStage) error {
	s.curStage = st
	s.stageArrived[st] = true
	wait, err := s.ctrl.enter(st)
	s.report.StageWait[st] = wait
	if err != nil {
		return err
	}
	if s.ctx != nil {
		return s.ctx.Err()
	}
	return nil
}

// leaveStage marks this node done with st, at most once per stage.
func (s *sortRun[K]) leaveStage(st SchedStage) {
	if s.stageLeft[st] {
		return
	}
	s.stageLeft[st] = true
	s.ctrl.leave(st)
}

// leaveAllStages credits this node's arrival at and departure from every
// stage it has not passed through, so an error exit can never strand a
// stage barrier or gate.
func (s *sortRun[K]) leaveAllStages() {
	for st := SchedStage(0); st < NumSchedStages; st++ {
		if !s.stageArrived[st] {
			s.stageArrived[st] = true
			s.ctrl.forfeit(st)
		}
		s.leaveStage(st)
	}
}

// run executes the staged pipeline and returns this node's sorted part.
// The six paper steps map onto four scheduler stages: local sort (CPU),
// sample/splitter agreement (comm), partition+exchange (comm-heavy),
// final merge (CPU). Under MergeOverlap the last two stages overlap on
// this node — received runs merge incrementally while the exchange is
// still in flight — but the stage boundaries stay: the scheduler's
// exchange gate is released the moment this sort's communication is done,
// so pipelined SortMany still serializes only the comm-heavy part while
// the merge tail proceeds ungated.
func (s *sortRun[K]) run() (_ []comm.Entry[K], err error) {
	s.markTransportBaseline()
	defer s.leaveAllStages()
	defer s.foldTraffic()
	defer s.removeSpillDir()
	// Innermost defer, so recovery runs before the traffic fold and the
	// stage forfeits: a stage panic (an injected failpoint or a real
	// bug) becomes this node's error instead of killing the process,
	// and a completed-but-unmerged exchange gives its slabs back.
	defer func() {
		if r := recover(); r != nil {
			if s.pendingAsm != nil || s.pendingSp != nil {
				s.discardMerge(s.pendingAsm, s.pendingSp, s.pendingOv)
				s.pendingAsm, s.pendingSp, s.pendingOv = nil, nil, nil
			}
			err = recoverPanic(r)
		}
	}()

	if err := s.enterStage(StageLocalSort); err != nil {
		return nil, err
	}
	entries, err := s.localSort()
	if err != nil {
		return nil, err
	}
	if err := failpoint.Hit(fpLocalSort); err != nil {
		return nil, err
	}
	s.leaveStage(StageLocalSort)

	if err := s.enterStage(StageSplitters); err != nil {
		return nil, err
	}
	if err := failpoint.Hit(fpSplitters); err != nil {
		return nil, err
	}
	splitters, err := s.splitterAgreement(entries)
	if err != nil {
		return nil, err
	}
	s.leaveStage(StageSplitters)

	if err := s.enterStage(StageExchange); err != nil {
		return nil, err
	}
	if err := failpoint.Hit(fpExchange); err != nil {
		return nil, err
	}
	asm, sp, ov, err := s.partitionExchange(entries, splitters)
	if err != nil {
		return nil, err
	}
	s.leaveStage(StageExchange)
	s.pendingAsm, s.pendingSp, s.pendingOv = asm, sp, ov

	if err := s.enterStage(StageMerge); err != nil {
		s.pendingAsm, s.pendingSp, s.pendingOv = nil, nil, nil
		s.discardMerge(asm, sp, ov)
		return nil, err
	}
	if err := failpoint.Hit(fpMerge); err != nil {
		s.pendingAsm, s.pendingSp, s.pendingOv = nil, nil, nil
		s.discardMerge(asm, sp, ov)
		return nil, err
	}
	merged, err := s.finalMerge(asm, sp, ov)
	s.pendingAsm, s.pendingSp, s.pendingOv = nil, nil, nil
	if err != nil {
		return nil, err
	}
	s.leaveStage(StageMerge)

	s.report.PartSize = len(merged)
	s.report.ResidentBytes += int64(len(merged)) * int64(entryBytes[K]())
	s.report.TempPeakBytes = s.node.tracker.Peak()
	return merged, nil
}

// discardMerge abandons a completed exchange whose merge will never run
// (an error at the merge-stage boundary), on every strategy: under
// MergeOverlap the streaming merger joins and returns its intermediate
// slabs; on all paths — k-way included — the assembly's entry buffer goes
// back to the pool so an error exit never strands a slab. A spilled
// exchange has no resident buffer; closing it removes its run files.
func (s *sortRun[K]) discardMerge(asm *datamgr.Assembly[K], sp *datamgr.SpillAssembly[K], ov *overlapMerger[K]) {
	if ov != nil {
		ov.abort()
	}
	if sp != nil {
		sp.Close()
		return
	}
	asm.Release()
	s.node.entryPool.Put(asm.Entries())
}

// spillScratchDir lazily creates this run's private spill directory
// under Options.SpillDir (system temp dir when empty). removeSpillDir
// deletes it — and every run file inside — when the run exits.
func (s *sortRun[K]) spillScratchDir() (string, error) {
	if s.spillDir != "" {
		return s.spillDir, nil
	}
	dir, err := os.MkdirTemp(s.opts.SpillDir, "pgxsort-spill-*")
	if err != nil {
		return "", fmt.Errorf("core: create spill dir: %w", err)
	}
	s.spillDir = dir
	return dir, nil
}

func (s *sortRun[K]) removeSpillDir() {
	if s.spillDir != "" {
		os.RemoveAll(s.spillDir)
		s.spillDir = ""
	}
}

// localSort is step 1: the parallel local sort. The comparison path is
// the paper's chunked quicksort + balanced merge; the radix path (taken
// when the key normalizes to uint64, see Options.LocalSort) replaces the
// per-chunk quicksort with an LSD byte-radix sort over normalized keys.
// Both paths draw the entry buffer and merge scratch from the node's
// slab pool: scratch returns to the pool immediately, the entry buffer
// once the whole sort joins (its subslices travel through the exchange).
// On the exact-norm radix path a full-size scratch that would blow
// Options.MemoryBudget is replaced by spillSort: budget-sized chunks
// sort in memory, spill to block files, and stream-merge back — the
// same bytes, a fraction of the temporary memory.
func (s *sortRun[K]) localSort() ([]comm.Entry[K], error) {
	n := s.node
	t0 := time.Now()
	var entries []comm.Entry[K]
	if s.inputRec != nil {
		entries = n.entryPool.Get(len(s.inputRec))
		for i, r := range s.inputRec {
			entries[i] = comm.Entry[K]{Key: r.Key, Payload: r.Payload, Proc: uint32(n.id), Index: uint32(i)}
		}
	} else {
		entries = n.entryPool.Get(len(s.input))
		for i, k := range s.input {
			entries[i] = comm.Entry[K]{Key: k, Proc: uint32(n.id), Index: uint32(i)}
		}
	}
	s.retire(entries)
	eb := int64(entryBytes[K]())
	s.report.ResidentBytes = int64(len(entries)) * eb
	s.report.LocalSortPath = s.cmps.path
	if len(entries) > 1 {
		workers := s.opts.WorkersPerProc
		budget := s.opts.MemoryBudget
		switch {
		case budget > 0 && s.cmps.useRadix && !s.cmps.fallback &&
			int64(len(entries))*eb > budget:
			// A full scratch buffer alone would exceed the budget. Only
			// the exact-norm radix path spills here: its chunk sorts and
			// the streaming merge are both stable, so the chunked result
			// is byte-identical to the one-pass sort at any chunk size.
			// (Inexact norms and the comparison path keep their in-memory
			// sort; the exchange stage still spills for them.)
			if err := s.spillSort(entries, eb); err != nil {
				return nil, err
			}
		case s.cmps.useRadix || workers > 1:
			scratch := n.entryPool.Get(len(entries))
			n.tracker.Alloc(int64(len(scratch)) * eb)
			if s.cmps.useRadix {
				norm := s.cmps.norm
				lsort.ParallelRadixSort(entries, scratch,
					func(e comm.Entry[K]) uint64 { return norm(e.Key) },
					s.cmps.normBits, s.cmps.entryLess, workers)
				if s.cmps.fallback {
					// Inexact norm: the radix passes ordered by norm only;
					// finish the equal-norm runs under the real comparison.
					lsort.SortEqualNormRuns(entries,
						func(e comm.Entry[K]) uint64 { return norm(e.Key) },
						s.cmps.entryLess)
				}
			} else {
				lsort.ParallelSortScratch(entries, scratch, s.cmps.entryLess, workers)
			}
			n.tracker.Free(int64(len(scratch)) * eb)
			n.entryPool.Put(scratch)
		default:
			lsort.Quicksort(entries, s.cmps.entryLess)
		}
	}
	s.report.Steps[StepLocalSort] = time.Since(t0)
	return entries, nil
}

// spillSort sorts entries in place using at most ~MemoryBudget bytes of
// temporary memory: it radix-sorts budget-sized chunks (chunk + scratch
// together fit the budget), spills each sorted chunk to a block file,
// then stream-merges the chunk runs back into the entries buffer. Every
// stage is stable, so the result is byte-identical to the in-memory
// ParallelRadixSort whatever the chunk size. Run files are removed as
// soon as the merge drains them; the run's spill dir cleanup catches
// any left behind by an error exit.
func (s *sortRun[K]) spillSort(entries []comm.Entry[K], eb int64) error {
	n := s.node
	chunk := int(s.opts.MemoryBudget / (2 * eb))
	if chunk < 1 {
		chunk = 1
	}
	if chunk > len(entries) {
		chunk = len(entries)
	}
	dir, err := s.spillScratchDir()
	if err != nil {
		return err
	}
	norm := s.cmps.norm
	normOf := func(e comm.Entry[K]) uint64 { return norm(e.Key) }
	workers := s.opts.WorkersPerProc

	scratch := n.entryPool.Get(chunk)
	n.tracker.Alloc(int64(chunk) * eb)
	var paths []string
	for lo := 0; lo < len(entries); lo += chunk {
		hi := lo + chunk
		if hi > len(entries) {
			hi = len(entries)
		}
		part := entries[lo:hi]
		lsort.ParallelRadixSort(part, scratch[:len(part)], normOf,
			s.cmps.normBits, s.cmps.entryLess, workers)
		w, werr := spill.NewWriter(filepath.Join(dir, fmt.Sprintf("lsort-%d.spill", len(paths))), s.codec, 0)
		if werr == nil {
			if werr = w.Append(part); werr == nil {
				werr = w.Finish()
			}
		}
		if werr != nil {
			n.tracker.Free(int64(chunk) * eb)
			n.entryPool.Put(scratch)
			return werr
		}
		s.report.SpillBytes += w.BytesWritten()
		paths = append(paths, w.Path())
	}
	n.tracker.Free(int64(chunk) * eb)
	n.entryPool.Put(scratch)

	// Stream the chunk runs back. The decoded batches are fresh slabs
	// (never aliasing entries), so merging into the buffer the chunks
	// were read from is safe.
	readers := make([]*spill.RunReader[K], len(paths))
	cursors := make([]lsort.Cursor[comm.Entry[K]], len(paths))
	ropts := spill.ReaderOpts[K]{Pool: n.entryPool, Tracker: &n.tracker, EntryBytes: eb}
	for i, p := range paths {
		r, rerr := spill.NewRunReader(p, s.codec, ropts)
		if rerr != nil {
			for _, open := range readers[:i] {
				open.Close()
			}
			return rerr
		}
		readers[i] = r
		cursors[i] = r
	}
	filled, merr := lsort.MergeCursors(entries, cursors, s.cmps.entryLess)
	for i, r := range readers {
		s.report.SpillReads += r.BytesRead()
		r.Close()
		os.Remove(paths[i])
	}
	if merr != nil {
		return merr
	}
	if filled != len(entries) {
		return fmt.Errorf("core: spill merge produced %d of %d entries: %w",
			filled, len(entries), spill.ErrCorrupt)
	}
	return nil
}

// splitterAgreement is steps 2-3: regular sampling, one buffer of samples
// to the master, master-side splitter selection and broadcast.
func (s *sortRun[K]) splitterAgreement(entries []comm.Entry[K]) ([]K, error) {
	p := s.opts.Procs
	self := s.node.id
	master := s.opts.Master

	// ---- Step 2: regular sampling, one buffer of samples to master ----
	t0 := time.Now()
	nsamples := sample.Count(s.opts.BufferBytes, p, s.codec.KeySize(), s.opts.SampleFactor, len(entries))
	sampled := sample.Regular(entries, nsamples)
	keys := make([]K, len(sampled))
	for i, e := range sampled {
		keys[i] = e.Key
	}
	s.report.SamplesSent = len(keys)
	if p > 1 && self != master {
		if err := s.send(master, comm.Message[K]{Kind: comm.KSamples, Keys: keys}); err != nil {
			return nil, err
		}
	}
	s.report.Steps[StepSampling] = time.Since(t0)

	// ---- Step 3: master selects splitters and broadcasts them ----
	t0 = time.Now()
	var splitters []K
	if p > 1 {
		if self == master {
			runs := make([][]K, 0, p)
			runs = append(runs, keys) // master's own samples stay local
			for i := 0; i < p-1; i++ {
				m, err := s.recv(comm.KSamples)
				if err != nil {
					return nil, err
				}
				runs = append(runs, m.Keys)
			}
			splitters = sample.SelectSplitters(runs, p, s.cmps.keyLess)
			for dst := 0; dst < p; dst++ {
				if dst == master {
					continue
				}
				if err := s.send(dst, comm.Message[K]{Kind: comm.KSplitters, Keys: splitters}); err != nil {
					return nil, err
				}
			}
		} else {
			m, err := s.recv(comm.KSplitters)
			if err != nil {
				return nil, err
			}
			splitters = m.Keys
		}
		if len(splitters) == 0 {
			// Every processor was empty, so no samples exist anywhere.
			// Any splitters partition nothing correctly; use zero keys.
			splitters = make([]K, p-1)
		}
	}
	s.report.Steps[StepSplitters] = time.Since(t0)
	return splitters, nil
}

// exchangeSink is the part of the assembly contract the exchange loop
// needs, satisfied by both the resident datamgr.Assembly and the
// out-of-core datamgr.SpillAssembly.
type exchangeSink[K any] interface {
	Write(src int, chunk []comm.Entry[K]) error
	RunComplete(src int) bool
}

// partitionExchange is steps 4-5: binary-search range partitioning, the
// range-metadata broadcast, and the simultaneous all-to-all exchange at
// precomputed offsets. Under MergeOverlap it also starts the streaming
// merger and feeds it each source's run as the assembly completes it, so
// step-6 work overlaps the exchange. When the assembled total would
// exceed Options.MemoryBudget the runs land in a SpillAssembly's block
// files instead of a resident buffer (and the overlap merger, which
// needs resident runs, stands down for this sort). On error the
// assembly's temporary memory is released, the merger (if any) is
// aborted and spill files are removed, so a cancelled sort cannot
// inflate the node's tracker or leak slabs for later sorts on the same
// engine.
func (s *sortRun[K]) partitionExchange(entries []comm.Entry[K], splitters []K) (_ *datamgr.Assembly[K], _ *datamgr.SpillAssembly[K], _ *overlapMerger[K], err error) {
	n := s.node
	p := s.opts.Procs
	self := n.id
	eb := entryBytes[K]()

	// ---- Step 4: binary-search range partitioning + metadata bcast ----
	t0 := time.Now()
	ranges := sample.Partition(entries, splitters,
		s.cmps.keyLess, s.cmps.keyAbove, s.cmps.keyBelow,
		!s.opts.DisableInvestigator)
	counts := ranges.Counts()
	meta := make([]int64, p)
	for i, c := range counts {
		meta[i] = int64(c)
	}
	// Broadcast the counts so every receiver can precompute offsets.
	for dst := 0; dst < p; dst++ {
		if dst == self {
			continue
		}
		if err := s.send(dst, comm.Message[K]{Kind: comm.KRangeMeta, Ints: meta}); err != nil {
			return nil, nil, nil, err
		}
	}
	// Collect everyone's counts; perSrc[i] is what source i sends me.
	perSrc := make([]int, p)
	perSrc[self] = counts[self]
	for i := 0; i < p-1; i++ {
		m, err := s.recv(comm.KRangeMeta)
		if err != nil {
			return nil, nil, nil, err
		}
		if len(m.Ints) != p {
			return nil, nil, nil, fmt.Errorf("range metadata from %d has %d counts, want %d", m.Src, len(m.Ints), p)
		}
		perSrc[m.Src] = int(m.Ints[self])
	}
	s.report.Steps[StepPartition] = time.Since(t0)

	// ---- Step 5: simultaneous send and receive at precomputed offsets ----
	t0 = time.Now()
	total := 0
	for _, c := range perSrc {
		total += c
	}
	var (
		asm  *datamgr.Assembly[K]
		sp   *datamgr.SpillAssembly[K]
		sink exchangeSink[K]
		ov   *overlapMerger[K]
	)
	if budget := s.opts.MemoryBudget; budget > 0 && int64(total)*int64(eb) > budget {
		// The assembled runs would not fit the budget: land them in
		// block files. The streaming overlap merger needs resident runs,
		// so it stands down and the final merge streams from disk.
		dir, derr := s.spillScratchDir()
		if derr != nil {
			return nil, nil, nil, derr
		}
		sp, err = datamgr.NewSpillAssembly(n.dm, perSrc, s.codec, dir)
		if err != nil {
			return nil, nil, nil, err
		}
		sink = sp
	} else {
		asm = datamgr.NewAssemblyBuf[K](n.dm, perSrc, eb, n.entryPool.Get(total))
		sink = asm
		// The streaming merger must exist before the first assembly write
		// so no run-completion — the self range included — can slip past it.
		if s.opts.Merge == MergeOverlap {
			ov = newOverlapMerger(s, asm)
			asm.OnRunComplete(ov.offer)
		}
	}
	// sendDone carries the concurrent sender's result; the cleanup defer
	// drains it if still outstanding, because recycling the assembly
	// while sends are in flight would alias live exchange buffers.
	var sendDone chan error
	defer func() {
		if r := recover(); r != nil {
			err = recoverPanic(r)
		}
		if err != nil {
			if sendDone != nil {
				<-sendDone
			}
			if ov != nil {
				ov.abort()
			}
			if sp != nil {
				sp.Close()
			} else {
				asm.Release()
				n.entryPool.Put(asm.Entries())
			}
		}
	}()
	// The local range never touches the network.
	lo, hi := ranges.Range(self)
	if err := sink.Write(self, entries[lo:hi]); err != nil {
		return nil, nil, nil, err
	}
	expectRemote := 0
	for src, c := range perSrc {
		if src != self {
			expectRemote += c
		}
	}

	sendAll := func() error {
		// One send task per destination on the worker pool: the task
		// manager schedules chunked request buffers per peer.
		errs := make([]error, p)
		tasks := make([]func(), 0, p-1)
		for dst := 0; dst < p; dst++ {
			if dst == self {
				continue
			}
			dst := dst
			dlo, dhi := ranges.Range(dst)
			// Chunk by measured wire size, not the nominal KeySize: with
			// variable-width keys or payloads the estimate keeps chunks
			// near the buffer budget instead of overshooting it.
			estBytes := comm.EntryWireEstimate(entries[dlo:dhi], s.codec)
			tasks = append(tasks, func() {
				errs[dst] = datamgr.Chunks(n.dm, entries[dlo:dhi], estBytes,
					func(chunk []comm.Entry[K], last bool) error {
						m := comm.Message[K]{Kind: comm.KData, Entries: chunk}
						if last {
							// Per-source run-complete signal riding the
							// existing framing; the receiver cross-checks
							// it against the metadata-derived counts.
							m.Flags |= comm.FlagRunComplete
						}
						return s.send(dst, m)
					})
			})
		}
		n.pool.RunAll(tasks...)
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	recvAll := func() error {
		got := 0
		for got < expectRemote {
			m, err := s.recv(comm.KData)
			if err != nil {
				return err
			}
			if err := sink.Write(m.Src, m.Entries); err != nil {
				return err
			}
			if m.Flags&comm.FlagRunComplete != 0 && !sink.RunComplete(m.Src) {
				// The sender says its run ends here but the metadata
				// counts expect more: a framing/metadata mismatch that
				// must fail loudly, not feed a short run to the merger.
				return fmt.Errorf("source %d signaled run-complete before its %d expected entries arrived",
					m.Src, perSrc[m.Src])
			}
			got += len(m.Entries)
			if m.Release != nil {
				// The entries were decoded into a transport-owned slab
				// (TCP path) and are copied out now; recycle it.
				m.Release()
			}
		}
		return nil
	}

	if s.opts.SyncExchange {
		// Bulk-synchronous ablation: finish all sends, exchange barrier
		// tokens, then drain the receive queue.
		if err := sendAll(); err != nil {
			return nil, nil, nil, err
		}
		for dst := 0; dst < p; dst++ {
			if dst == self {
				continue
			}
			if err := s.send(dst, comm.Message[K]{Kind: comm.KControl, Ints: []int64{1}}); err != nil {
				return nil, nil, nil, err
			}
		}
		for i := 0; i < p-1; i++ {
			if _, err := s.recv(comm.KControl); err != nil {
				return nil, nil, nil, err
			}
		}
		if err := recvAll(); err != nil {
			return nil, nil, nil, err
		}
	} else {
		// Paper behaviour: send while receiving, no barrier in between.
		sendDone = make(chan error, 1)
		go func() { sendDone <- sendAll() }()
		if err := recvAll(); err != nil {
			return nil, nil, nil, err // cleanup defer drains sendDone
		}
		sendErr := <-sendDone
		sendDone = nil // drained; the cleanup defer must not block on it
		if sendErr != nil {
			return nil, nil, nil, sendErr
		}
	}
	if ov != nil {
		ov.markExchangeDone()
	}
	if sp != nil {
		s.report.SpillBytes += sp.SpillBytes()
	}
	s.report.Steps[StepExchange] = time.Since(t0)
	return asm, sp, ov, nil
}

// finalMerge is step 6: merge the received sorted runs. The merge
// scratch comes from the node's slab pool; whichever of the assembly
// buffer and the scratch does not end up backing the result is recycled
// immediately (the result itself becomes resident storage and leaves the
// pool for good). Under MergeOverlap most of the work already happened
// inside the exchange; only the streaming merger's final pass runs here,
// and StepFinalMerge times just that visible tail. A spilled exchange
// streams its block-file runs through the same loser tree MergeKWay
// uses (tie-broken by source order), so its output is byte-identical to
// the in-memory k-way and overlap paths.
func (s *sortRun[K]) finalMerge(asm *datamgr.Assembly[K], sp *datamgr.SpillAssembly[K], ov *overlapMerger[K]) ([]comm.Entry[K], error) {
	n := s.node
	p := s.opts.Procs
	eb := entryBytes[K]()

	t0 := time.Now()
	if sp != nil {
		merged, err := s.spillMerge(sp, int64(eb))
		s.report.Steps[StepFinalMerge] = time.Since(t0)
		return merged, err
	}
	var merged []comm.Entry[K]
	buf := asm.Entries()
	switch {
	case ov != nil:
		// Streaming overlap: drain the merger and run its final
		// splitter-partitioned parallel pass. The result never aliases
		// the assembly buffer, so the slab is unconditionally free.
		merged = ov.finish()
		asm.Release()
		n.entryPool.Put(buf)
	case s.opts.Merge == MergeKWay:
		bounds := asm.Bounds()
		runs := make([][]comm.Entry[K], 0, p)
		for i := 0; i+1 < len(bounds); i++ {
			runs = append(runs, buf[bounds[i]:bounds[i+1]])
		}
		n.tracker.Alloc(int64(len(buf)) * int64(eb))
		merged = lsort.KWayMerge(runs, s.cmps.entryLess)
		n.tracker.Free(int64(len(buf)) * int64(eb))
		asm.Release()
		n.entryPool.Put(buf) // k-way merged into fresh storage; buf is free
	default:
		scratch := n.entryPool.Get(len(buf))
		n.tracker.Alloc(int64(len(buf)) * int64(eb))
		var fromScratch bool
		merged, fromScratch = lsort.MergeAdjacentRunsOwned(buf, scratch, asm.Bounds(), s.cmps.entryLess, true)
		n.tracker.Free(int64(len(buf)) * int64(eb))
		asm.Release()
		// Explicit ownership from the merge, not a base-pointer compare
		// (which has no element to address on empty results): exactly one
		// of buf/scratch backs the result and the other is recycled — and
		// an empty result frees both, since nothing aliases either.
		switch {
		case len(merged) == 0:
			n.entryPool.Put(buf)
			n.entryPool.Put(scratch)
			merged = nil
		case fromScratch:
			n.entryPool.Put(buf)
		default:
			n.entryPool.Put(scratch)
		}
	}
	s.report.Steps[StepFinalMerge] = time.Since(t0)
	return merged, nil
}

// spillMerge drains a spilled exchange: one streaming cursor per source
// run (an empty cursor for sources that sent nothing, so tie-breaking
// by cursor index matches KWayMerge's run order exactly) feeds a loser
// tree that fills the result buffer directly. Temporary memory is just
// the decoded-ahead blocks — two slabs per non-empty source — however
// large the runs are. The run files are removed before returning.
func (s *sortRun[K]) spillMerge(sp *datamgr.SpillAssembly[K], eb int64) ([]comm.Entry[K], error) {
	n := s.node
	defer sp.Close()
	readers, err := sp.Readers(spill.ReaderOpts[K]{Pool: n.entryPool, Tracker: &n.tracker, EntryBytes: eb})
	if err != nil {
		return nil, err
	}
	cursors := make([]lsort.Cursor[comm.Entry[K]], len(readers))
	for i, r := range readers {
		if r == nil {
			cursors[i] = lsort.NewSliceCursor[comm.Entry[K]](nil)
		} else {
			cursors[i] = r
		}
	}
	total := sp.Total()
	merged := n.entryPool.Get(total)
	filled, merr := lsort.MergeCursors(merged, cursors, s.cmps.entryLess)
	for _, r := range readers {
		if r != nil {
			s.report.SpillReads += r.BytesRead()
			r.Close()
		}
	}
	if merr == nil && filled != total {
		merr = fmt.Errorf("core: spill merge produced %d of %d entries: %w",
			filled, total, spill.ErrCorrupt)
	}
	if merr != nil {
		n.entryPool.Put(merged)
		return nil, merr
	}
	return merged, nil
}
