package core

import "sync"

// mailbox is an unbounded FIFO queue connecting the per-node dispatcher to
// the pipeline steps. Unboundedness is deliberate: PGX.D "delays
// unnecessary computations until the end of the current step", i.e. a
// processor may receive messages for a later step (or another concurrent
// sort) while still working on an earlier one, and those messages must not
// block the network. Backpressure still exists end-to-end through the
// transport inboxes.
type mailbox[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []T
	head   int
	closed bool
}

func newMailbox[T any]() *mailbox[T] {
	m := &mailbox[T]{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push appends an item; it never blocks.
func (m *mailbox[T]) push(item T) {
	m.mu.Lock()
	m.items = append(m.items, item)
	m.mu.Unlock()
	m.cond.Signal()
}

// pop removes the oldest item, blocking until one is available or the
// mailbox is closed. ok is false only when closed and drained.
func (m *mailbox[T]) pop() (item T, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.head >= len(m.items) && !m.closed {
		m.cond.Wait()
	}
	if m.head >= len(m.items) {
		var zero T
		return zero, false
	}
	item = m.items[m.head]
	// Release the reference so the GC can reclaim consumed payloads.
	var zero T
	m.items[m.head] = zero
	m.head++
	if m.head == len(m.items) {
		m.items = m.items[:0]
		m.head = 0
	}
	return item, true
}

// close unblocks all pending and future pops.
func (m *mailbox[T]) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// len reports the number of queued items.
func (m *mailbox[T]) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items) - m.head
}
