package core

import (
	"cmp"
	"fmt"

	"pgxsort/internal/comm"
	"pgxsort/internal/lsort"
)

// Result is a globally sorted, distributed dataset: Parts[i] is processor
// i's sorted slice, and max(Parts[i]) <= min(Parts[i+1]) — "smaller data
// entries are gathered in the processor with the smaller ID" (§IV-C).
// Every entry carries its origin, and the result offers the paper's
// user-facing API: binary search, top-k retrieval and origin lookup.
type Result[K cmp.Ordered] struct {
	Parts  [][]comm.Entry[K]
	Report Report
}

// Len returns the total number of entries.
func (r *Result[K]) Len() int {
	n := 0
	for _, p := range r.Parts {
		n += len(p)
	}
	return n
}

// Keys flattens the sorted keys into one slice (intended for small results
// and tests; it allocates Len() keys).
func (r *Result[K]) Keys() []K {
	out := make([]K, 0, r.Len())
	for _, p := range r.Parts {
		for _, e := range p {
			out = append(out, e.Key)
		}
	}
	return out
}

// Cursor returns a pull source over the sorted entries, part by part in
// global order — the streaming egress view of a resident result. It lets
// the serve layer write a result to the wire with the same cursor-driven
// loop it uses for spooled results, without flattening Parts.
func (r *Result[K]) Cursor() lsort.Cursor[comm.Entry[K]] {
	return &partsCursor[K]{parts: r.Parts}
}

// partsCursor yields each non-empty part as one batch.
type partsCursor[K cmp.Ordered] struct {
	parts [][]comm.Entry[K]
}

func (c *partsCursor[K]) Next() ([]comm.Entry[K], error) {
	for len(c.parts) > 0 {
		part := c.parts[0]
		c.parts = c.parts[1:]
		if len(part) > 0 {
			return part, nil
		}
	}
	return nil, nil
}

// Records flattens the sorted dataset into key+payload records (intended
// for small results and tests; it allocates Len() records). Payloads are
// the ones carried by each entry, nil for key-only sorts.
func (r *Result[K]) Records() []comm.Record[K] {
	out := make([]comm.Record[K], 0, r.Len())
	for _, p := range r.Parts {
		for _, e := range p {
			out = append(out, comm.Record[K]{Key: e.Key, Payload: e.Payload})
		}
	}
	return out
}

// At returns the entry at global index i.
func (r *Result[K]) At(i int) (comm.Entry[K], error) {
	if i < 0 {
		return comm.Entry[K]{}, fmt.Errorf("core: index %d out of range", i)
	}
	for _, p := range r.Parts {
		if i < len(p) {
			return p[i], nil
		}
		i -= len(p)
	}
	return comm.Entry[K]{}, fmt.Errorf("core: index out of range")
}

// Search performs the distributed binary search the paper's API exposes:
// it locates the first occurrence of key, returning the owning processor,
// the local index, and the global rank. found is false when key is absent
// (proc/local/global then describe the insertion point).
func (r *Result[K]) Search(key K) (proc, local, global int, found bool) {
	base := 0
	for pi, part := range r.Parts {
		if len(part) == 0 {
			continue
		}
		if part[len(part)-1].Key < key {
			base += len(part)
			continue
		}
		idx := lsort.LowerBound(part, key, func(e comm.Entry[K], k K) bool { return e.Key < k })
		if idx < len(part) && part[idx].Key == key {
			return pi, idx, base + idx, true
		}
		return pi, idx, base + idx, false
	}
	return len(r.Parts), 0, base, false
}

// Count returns how many entries equal key.
func (r *Result[K]) Count(key K) int {
	total := 0
	for _, part := range r.Parts {
		lo := lsort.LowerBound(part, key, func(e comm.Entry[K], k K) bool { return e.Key < k })
		hi := lsort.UpperBound(part, key, func(e comm.Entry[K], k K) bool { return e.Key > k })
		total += hi - lo
	}
	return total
}

// Top returns the k largest entries in descending order ("retrieving top
// values from their graph data", §III).
func (r *Result[K]) Top(k int) []comm.Entry[K] {
	if k < 0 {
		k = 0
	}
	out := make([]comm.Entry[K], 0, k)
	for pi := len(r.Parts) - 1; pi >= 0 && len(out) < k; pi-- {
		part := r.Parts[pi]
		for i := len(part) - 1; i >= 0 && len(out) < k; i-- {
			out = append(out, part[i])
		}
	}
	return out
}

// Bottom returns the k smallest entries in ascending order.
func (r *Result[K]) Bottom(k int) []comm.Entry[K] {
	if k < 0 {
		k = 0
	}
	out := make([]comm.Entry[K], 0, k)
	for _, part := range r.Parts {
		for _, e := range part {
			if len(out) >= k {
				return out
			}
			out = append(out, e)
		}
	}
	return out
}

// Quantiles returns m+1 keys summarizing the sorted distribution: the
// minimum, the m-1 internal quantile boundaries, and the maximum. It uses
// the distributed result in place (no flattening).
func (r *Result[K]) Quantiles(m int) ([]K, error) {
	if m < 1 {
		return nil, fmt.Errorf("core: quantile count must be >= 1")
	}
	n := r.Len()
	if n == 0 {
		return nil, fmt.Errorf("core: empty result has no quantiles")
	}
	out := make([]K, m+1)
	for q := 0; q <= m; q++ {
		idx := q * (n - 1) / m
		e, err := r.At(idx)
		if err != nil {
			return nil, err
		}
		out[q] = e.Key
	}
	return out, nil
}

// PartRange describes one processor's key range after sorting (Table III).
type PartRange[K cmp.Ordered] struct {
	Proc  int
	Count int
	Min   K
	Max   K
}

// PartRanges reports each non-empty processor's [min, max] key range.
func (r *Result[K]) PartRanges() []PartRange[K] {
	out := make([]PartRange[K], 0, len(r.Parts))
	for pi, part := range r.Parts {
		pr := PartRange[K]{Proc: pi, Count: len(part)}
		if len(part) > 0 {
			pr.Min = part[0].Key
			pr.Max = part[len(part)-1].Key
		}
		out = append(out, pr)
	}
	return out
}

// Verify checks the full contract of the distributed sort against the
// original inputs: every part is sorted, parts are globally ordered,
// and the origin fields describe a perfect permutation of the input
// (every (proc,index) appears exactly once and carries its input key).
func (r *Result[K]) Verify(inputs [][]K) error {
	if len(inputs) != len(r.Parts) && len(inputs) != 0 {
		// A different processor count is fine as long as provenance holds;
		// only the origin bounds check below needs inputs indexed by proc.
	}
	total := 0
	for _, in := range inputs {
		total += len(in)
	}
	if got := r.Len(); got != total {
		return fmt.Errorf("core: result has %d entries, input had %d", got, total)
	}
	seen := make([]bool, total)
	// offsets into the seen bitmap per origin proc
	offsets := make([]int, len(inputs)+1)
	for i, in := range inputs {
		offsets[i+1] = offsets[i] + len(in)
	}
	var prev K
	havePrev := false
	for pi, part := range r.Parts {
		for i, e := range part {
			if i > 0 && part[i-1].Key > e.Key {
				return fmt.Errorf("core: part %d not sorted at %d", pi, i)
			}
			if havePrev && prev > e.Key {
				return fmt.Errorf("core: global order violated entering part %d", pi)
			}
			op := int(e.Proc)
			oi := int(e.Index)
			if op >= len(inputs) || oi >= len(inputs[op]) {
				return fmt.Errorf("core: entry in part %d has origin (%d,%d) out of range", pi, op, oi)
			}
			// NaN float keys are unequal to themselves under ==; an entry
			// whose key and input are both NaN still matches.
			if in := inputs[op][oi]; in != e.Key && !(in != in && e.Key != e.Key) {
				return fmt.Errorf("core: entry key %v does not match input[%d][%d]=%v",
					e.Key, op, oi, in)
			}
			flat := offsets[op] + oi
			if seen[flat] {
				return fmt.Errorf("core: origin (%d,%d) appears twice", op, oi)
			}
			seen[flat] = true
		}
		if len(part) > 0 {
			prev = part[len(part)-1].Key
			havePrev = true
		}
	}
	return nil
}
