package core

import (
	"strings"
	"testing"
	"time"

	"pgxsort/internal/comm"
	"pgxsort/internal/dist"
	"pgxsort/internal/transport"
)

// chaosTCP is a test-sized transport config: fast reconnects, small
// windows so resets land mid-window, short drain.
func chaosTCP() transport.Config {
	return transport.Config{
		ConnectTimeout: 2 * time.Second,
		RetryBase:      2 * time.Millisecond,
		RetryMax:       20 * time.Millisecond,
		WindowFrames:   8,
		DrainTimeout:   2 * time.Second,
	}
}

// TestSortSurvivesConnectionResets is the acceptance test for the
// hardened transport: a full distributed sort over TCP with connections
// killed on a schedule throughout the exchange must produce output
// identical to the in-process transport, entry for entry (keys AND
// origins), while actually reconnecting.
func TestSortSurvivesConnectionResets(t *testing.T) {
	const procs = 4
	for _, kind := range []dist.Kind{dist.Uniform, dist.RightSkewed} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			parts := mkParts(kind, procs, 6000, 1234)

			// BufferBytes matches the chaos engine below: it drives the
			// sample count, so both engines must agree on splitters for
			// the outputs to be comparable entry for entry.
			ref := newTestEngine(t, Options{Procs: procs, WorkersPerProc: 2, BufferBytes: 4096})
			want, err := ref.Sort(parts)
			if err != nil {
				t.Fatalf("reference sort: %v", err)
			}

			// Small buffers split the exchange into many frames per
			// link, and ResetEvery=3 kills connections throughout the
			// sampling, metadata and data steps.
			faults := &transport.FaultPlan{ResetEvery: 3}
			e := newTestEngine(t, Options{
				Procs:          procs,
				WorkersPerProc: 2,
				BufferBytes:    4096,
				Transport:      transport.KindTCP,
				TCP:            chaosTCP(),
				Faults:         faults,
			})
			got, err := e.Sort(parts)
			if err != nil {
				t.Fatalf("chaos sort: %v", err)
			}
			if err := got.Verify(parts); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < procs; i++ {
				if len(got.Parts[i]) != len(want.Parts[i]) {
					t.Fatalf("node %d: %d entries under chaos, %d on chan",
						i, len(got.Parts[i]), len(want.Parts[i]))
				}
				for j := range got.Parts[i] {
					g, w := got.Parts[i][j], want.Parts[i][j]
					if g.Key != w.Key || g.Proc != w.Proc || g.Index != w.Index {
						t.Fatalf("node %d entry %d: chaos %+v != chan %+v", i, j, g, w)
					}
				}
			}
			if got.Report.Reconnects == 0 {
				t.Error("chaos sort reported no reconnects; the faults did not bite")
			}
			if !strings.Contains(got.Report.String(), "reconnects") {
				t.Error("Report.String does not surface transport health under faults")
			}
		})
	}
}

// TestSortManySurvivesResets runs the pipelined multi-dataset scheduler
// over the faulty TCP transport: reconnect state is per-link and shared
// across multiplexed sorts, which this exercises.
func TestSortManySurvivesResets(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-dataset chaos run")
	}
	const procs = 3
	e := newTestEngine(t, Options{
		Procs:          procs,
		WorkersPerProc: 2,
		Transport:      transport.KindTCP,
		TCP:            chaosTCP(),
		Faults:         &transport.FaultPlan{ResetEvery: 11},
	})
	datasets := [][][]uint64{
		mkParts(dist.Uniform, procs, 3000, 1),
		mkParts(dist.Exponential, procs, 3000, 2),
		mkParts(dist.Normal, procs, 3000, 3),
	}
	results, err := e.SortMany(datasets...)
	if err != nil {
		t.Fatalf("SortMany: %v", err)
	}
	for d, res := range results {
		if err := res.Verify(datasets[d]); err != nil {
			t.Fatalf("dataset %d: %v", d, err)
		}
	}
}

// TestEngineRejectsUnrecoverablePlans: drops and duplicates break the
// reliable-delivery contract the engine is built on.
func TestEngineRejectsUnrecoverablePlans(t *testing.T) {
	for _, plan := range []transport.FaultPlan{{DropEvery: 2}, {DupEvery: 2}} {
		plan := plan
		_, err := NewEngine[uint64](Options{Faults: &plan}, comm.U64Codec{})
		if err == nil {
			t.Errorf("engine accepted unrecoverable plan %+v", plan)
		}
	}
	_, err := NewEngine[uint64](Options{TCP: transport.Config{LocalNodes: []int{0}}}, comm.U64Codec{})
	if err == nil {
		t.Error("engine accepted a partial-mesh transport config")
	}
}

// TestSendStallSurfacesInReport squeezes the exchange through one-frame
// windows: backpressure must show up as SendStall in the report.
func TestSendStallSurfacesInReport(t *testing.T) {
	cfg := chaosTCP()
	cfg.WindowFrames = 1
	e := newTestEngine(t, Options{
		Procs:          3,
		WorkersPerProc: 2,
		Transport:      transport.KindTCP,
		TCP:            cfg,
		// Small buffers force many frames per destination.
		BufferBytes: 4096,
	})
	parts := mkParts(dist.Uniform, 3, 20000, 99)
	res, err := e.Sort(parts)
	if err != nil {
		t.Fatalf("Sort: %v", err)
	}
	if err := res.Verify(parts); err != nil {
		t.Fatal(err)
	}
	if res.Report.SendStall == 0 {
		t.Error("one-frame windows produced zero recorded send stall")
	}
}
