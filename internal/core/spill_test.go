package core

import (
	"bytes"
	"cmp"
	"context"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"pgxsort/internal/comm"
	"pgxsort/internal/dist"
	"pgxsort/internal/failpoint"
	"pgxsort/internal/spill"
)

// spillBudget is a per-node memory budget of a tenth of one node's
// entry storage — small enough to force both the local sort and the
// exchange assembly out of core.
func spillBudget[K cmp.Ordered](perProc int) int64 {
	b := int64(perProc) * int64(entryBytes[K]()) / 10
	if b < 1 {
		b = 1
	}
	return b
}

// diffSpill is the spill tier's differential core: a sort forced out of
// core by a tiny memory budget must produce output byte-identical to an
// explicitly unbudgeted run (MemoryBudget < 0, immune to the
// PGXSORT_MEM_BUDGET ablation lane) and must actually have spilled.
// Both runs pin MergeKWay: the spill merge's source-order tie-break
// matches the loser tree's run order exactly, while the balanced
// handler is only key-identical on ties.
func diffSpill[K cmp.Ordered](t *testing.T, codec comm.Codec[K], parts [][]K, opts Options, label string) {
	t.Helper()
	opts.Procs = len(parts)
	opts.Merge = MergeKWay
	unbudgeted := opts
	unbudgeted.MemoryBudget = -1
	budgeted := opts
	budgeted.MemoryBudget = spillBudget[K](len(parts[0]))
	budgeted.SpillDir = t.TempDir()

	want := sortWith(t, codec, unbudgeted, parts)
	got := sortWith(t, codec, budgeted, parts)
	requireEntriesIdentical(t, codec, got, want, label)
	if want.Report.SpillBytes != 0 || want.Report.SpillReads != 0 {
		t.Fatalf("%s: unbudgeted run spilled %d/%d bytes",
			label, want.Report.SpillBytes, want.Report.SpillReads)
	}
	if got.Report.SpillBytes == 0 || got.Report.SpillReads == 0 {
		t.Fatalf("%s: budgeted run reports SpillBytes=%d SpillReads=%d, want both > 0",
			label, got.Report.SpillBytes, got.Report.SpillReads)
	}
	if got.Report.MergePath != "kway+spill" {
		t.Fatalf("%s: MergePath = %q, want kway+spill", label, got.Report.MergePath)
	}
}

// TestSpillDifferentialAllKinds: byte-identity under a tenth-of-the-data
// budget on every generator kind, including the duplicate-heavy shapes
// whose ties exercise the stream merge's source-order tie-break.
func TestSpillDifferentialAllKinds(t *testing.T) {
	const procs, per = 4, 4000
	for _, kind := range dist.AllKinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			parts := mkParts(kind, procs, per, 31)
			diffSpill(t, comm.U64Codec{}, parts,
				Options{WorkersPerProc: 2}, kind.String())
		})
	}
}

// TestSpillDifferentialKeyTypes: the block-file round trip is
// codec-mediated, so every key type must survive it bit-exactly — the
// int64 sign flip, float64 specials under the IEEE-754 total order
// (NaNs included on the radix path), and variable-width strings whose
// inexact norm keeps the local sort resident while the exchange spills.
func TestSpillDifferentialKeyTypes(t *testing.T) {
	const procs, per = 4, 3000
	base := mkParts(dist.Normal, procs, per, 23)
	t.Run("int64", func(t *testing.T) {
		parts := make([][]int64, procs)
		for i, p := range base {
			parts[i] = make([]int64, len(p))
			for j, k := range p {
				parts[i][j] = int64(k) - int64(len(p))*500
			}
		}
		diffSpill(t, comm.I64Codec{}, parts, Options{WorkersPerProc: 2}, "int64")
	})
	t.Run("float64", func(t *testing.T) {
		specials := []float64{math.Inf(1), math.Inf(-1), 0.0,
			math.Copysign(0, -1), math.MaxFloat64, -math.SmallestNonzeroFloat64,
			math.NaN(), -math.NaN()}
		parts := make([][]float64, procs)
		for i, p := range base {
			parts[i] = make([]float64, len(p))
			for j, k := range p {
				if j < len(specials) {
					parts[i][j] = specials[(i+j)%len(specials)]
					continue
				}
				parts[i][j] = math.Float64frombits(k * 0x9e3779b97f4a7c15)
			}
		}
		diffSpill(t, comm.F64Codec{}, parts, Options{WorkersPerProc: 2}, "float64")
	})
	t.Run("string", func(t *testing.T) {
		parts := make([][]string, procs)
		for i := range parts {
			parts[i] = dist.Gen{Kind: dist.RightSkewed, Seed: 23 + uint64(i)*7919}.Strings(per, "shared-prefix-")
		}
		// Strings have no fixed-width PutKey for requireEntriesIdentical;
		// == is exact for them, so compare the entries directly.
		opts := Options{Procs: procs, WorkersPerProc: 2, Merge: MergeKWay}
		unbudgeted := opts
		unbudgeted.MemoryBudget = -1
		budgeted := opts
		// Budget against the serialized footprint, not unsafe.Sizeof's
		// 16-byte string header: a tenth of the real key bytes.
		budgeted.MemoryBudget = spillBudget[uint64](per)
		budgeted.SpillDir = t.TempDir()
		want := sortWith(t, comm.StringCodec{}, unbudgeted, parts)
		got := sortWith(t, comm.StringCodec{}, budgeted, parts)
		if got.Report.SpillBytes == 0 || got.Report.SpillReads == 0 {
			t.Fatalf("budgeted string sort reports SpillBytes=%d SpillReads=%d",
				got.Report.SpillBytes, got.Report.SpillReads)
		}
		if len(got.Parts) != len(want.Parts) {
			t.Fatalf("%d parts vs %d", len(got.Parts), len(want.Parts))
		}
		for pi := range got.Parts {
			if len(got.Parts[pi]) != len(want.Parts[pi]) {
				t.Fatalf("part %d has %d entries, want %d", pi, len(got.Parts[pi]), len(want.Parts[pi]))
			}
			for i := range got.Parts[pi] {
				g, w := got.Parts[pi][i], want.Parts[pi][i]
				if g.Key != w.Key || g.Proc != w.Proc || g.Index != w.Index {
					t.Fatalf("part %d entry %d: %+v != %+v", pi, i, g, w)
				}
			}
		}
	})
}

// TestSpillDifferentialRecords: payloads ride the spill files too —
// every record's payload must come back byte-equal after the block-file
// round trip, against a duplicate-heavy key set that forces tie-breaks.
func TestSpillDifferentialRecords(t *testing.T) {
	const procs, per = 4, 2000
	codec := comm.NewRecordCodec[uint64](comm.U64Codec{})
	recs := make([][]comm.Record[uint64], procs)
	for i := range recs {
		keys := dist.Gen{Kind: dist.FewDistinct, Seed: 71 + uint64(i)}.Keys(per)
		pays := dist.Gen{Kind: dist.Uniform, Seed: 171 + uint64(i)}.Payloads(per, 40)
		recs[i] = make([]comm.Record[uint64], per)
		for j := range recs[i] {
			recs[i][j] = comm.Record[uint64]{Key: keys[j], Payload: pays[j]}
		}
	}
	sortRecs := func(budget int64) *Result[uint64] {
		e, err := NewEngine[uint64](Options{
			Procs: procs, WorkersPerProc: 2, Merge: MergeKWay,
			MemoryBudget: budget, SpillDir: t.TempDir(),
		}, codec)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		defer e.Close()
		res, err := e.SortRecords(recs)
		if err != nil {
			t.Fatalf("SortRecords: %v", err)
		}
		return res
	}
	want := sortRecs(-1)
	// Records are wider than bare entries; a tenth of the bare-entry
	// footprint is far below the record footprint, guaranteeing spilling.
	got := sortRecs(spillBudget[uint64](per))
	if got.Report.SpillBytes == 0 {
		t.Fatal("budgeted record sort did not spill")
	}
	requireEntriesIdentical(t, comm.U64Codec{}, got, want, "records")
	for pi := range got.Parts {
		for i := range got.Parts[pi] {
			g, w := got.Parts[pi][i], want.Parts[pi][i]
			if !bytes.Equal(g.Payload, w.Payload) {
				t.Fatalf("part %d entry %d: payload %q != %q", pi, i, g.Payload, w.Payload)
			}
			if !bytes.Equal(g.Payload, recs[g.Proc][g.Index].Payload) {
				t.Fatalf("part %d entry %d: payload does not match origin record", pi, i)
			}
		}
	}
}

// TestSpillAllStrategiesConverge: once the exchange spills, every merge
// strategy drains the same block files through the same stream merge, so
// overlap and balanced — normally only key-identical on ties — become
// byte-identical to the unbudgeted k-way reference.
func TestSpillAllStrategiesConverge(t *testing.T) {
	const procs, per = 4, 4000
	parts := mkParts(dist.FewDistinct, procs, per, 77)
	want := sortWith(t, comm.U64Codec{},
		Options{Procs: procs, WorkersPerProc: 2, Merge: MergeKWay, MemoryBudget: -1}, parts)
	for _, m := range []MergeStrategy{MergeKWay, MergeOverlap, MergeBalanced} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			opts := Options{Procs: procs, WorkersPerProc: 2, Merge: m,
				MemoryBudget: spillBudget[uint64](per), SpillDir: t.TempDir()}
			got := sortWith(t, comm.U64Codec{}, opts, parts)
			requireEntriesIdentical(t, comm.U64Codec{}, got, want, m.String())
			if got.Report.SpillBytes == 0 {
				t.Fatalf("%s: did not spill", m)
			}
			if want := m.String() + "+spill"; got.Report.MergePath != want {
				t.Fatalf("MergePath = %q, want %q", got.Report.MergePath, want)
			}
		})
	}
}

// TestSpillSlabBalance: repeated budgeted sorts on one engine must leave
// every node's temporary-memory tracker at zero — the spill writers,
// the decode-ahead block slabs and the stream merge all balance their
// retire/recycle accounting even though runs spill mid-batch.
func TestSpillSlabBalance(t *testing.T) {
	const procs, per = 4, 3000
	e := newTestEngine(t, Options{Procs: procs, WorkersPerProc: 2, Merge: MergeKWay,
		MemoryBudget: spillBudget[uint64](per), SpillDir: t.TempDir()})
	for i := 0; i < 3; i++ {
		parts := mkParts(dist.Uniform, procs, per, uint64(100+i))
		res, err := e.Sort(parts)
		if err != nil {
			t.Fatalf("sort %d: %v", i, err)
		}
		if res.Report.SpillBytes == 0 {
			t.Fatalf("sort %d did not spill", i)
		}
		checkNoLeak(t, e)
	}
}

// TestSpillRetryDifferential wires the spill failpoint sites into the
// PR 8 retry battery: an injected I/O failure at a write-block or
// read-block site mid-spill fails that attempt, the scheduler retries,
// and the retried output must be byte-identical to a clean run with no
// slab accounting left behind by the aborted spill.
func TestSpillRetryDifferential(t *testing.T) {
	const procs, per = 4, 3000
	for _, site := range []string{spill.FpWriteBlock, spill.FpReadBlock} {
		site := site
		t.Run(strings.ReplaceAll(site, "/", "-"), func(t *testing.T) {
			failpoint.Reset()
			t.Cleanup(failpoint.Reset)
			e := newTestEngine(t, Options{Procs: procs, WorkersPerProc: 2, Merge: MergeKWay,
				MemoryBudget: spillBudget[uint64](per), SpillDir: t.TempDir()})
			parts := mkParts(dist.RightSkewed, procs, per, 99)
			sched := NewScheduler(e, SortManyOpts{
				Retry: RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond},
			})
			clean, err := sched.RunOne(context.Background(), parts)
			if err != nil {
				t.Fatalf("clean run: %v", err)
			}
			if clean.Report.SpillBytes == 0 {
				t.Fatal("clean run did not spill; the failpoint would never fire")
			}
			// Nth: 5 lands the failure mid-run — several blocks already
			// written (or read back) when the site trips, so the abort
			// path has real partial state to unwind.
			failpoint.Set(site, failpoint.Schedule{Mode: failpoint.ModeError, Nth: 5})
			retried, err := sched.RunOne(context.Background(), parts)
			if err != nil {
				t.Fatalf("retried run: %v", err)
			}
			if fired := failpoint.Fired(site); fired != 1 {
				t.Fatalf("failpoint fired %d times, want 1", fired)
			}
			if retried.Report.Attempts != 2 {
				t.Fatalf("Attempts = %d, want 2", retried.Report.Attempts)
			}
			sameOutput(t, clean, retried)
			checkNoLeak(t, e)
		})
	}
}

// TestClassifySpillCorrupt: checksum and structural failures in spill
// files are the input-bytes-are-wrong kind — DataDependent, never
// retried as if transient, and never silently rereadable.
func TestClassifySpillCorrupt(t *testing.T) {
	err := fmt.Errorf("core: spill merge failed: %w", spill.ErrCorrupt)
	if c := Classify(err); c != FailDataDependent {
		t.Fatalf("Classify(ErrCorrupt chain) = %v, want %v", c, FailDataDependent)
	}
	wrapped := &Failure{Class: FailDataDependent, Err: err}
	if c := Classify(fmt.Errorf("outer: %w", error(wrapped))); c != FailDataDependent {
		t.Fatalf("Classify(wrapped Failure) = %v, want %v", c, FailDataDependent)
	}
}

// TestParseMemBudget pins the -mem-budget vocabulary shared by the
// CLIs, the service and the PGXSORT_MEM_BUDGET ablation lane.
func TestParseMemBudget(t *testing.T) {
	good := map[string]int64{
		"":        0,
		"0":       0,
		"1048576": 1 << 20,
		"64k":     64 << 10,
		"64K":     64 << 10,
		"8M":      8 << 20,
		"2g":      2 << 30,
	}
	for in, want := range good {
		got, err := ParseMemBudget(in)
		if err != nil || got != want {
			t.Fatalf("ParseMemBudget(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, in := range []string{"-1", "64KB", "x", "1.5G", "k"} {
		if _, err := ParseMemBudget(in); err == nil {
			t.Fatalf("ParseMemBudget(%q) succeeded, want error", in)
		}
	}
}
