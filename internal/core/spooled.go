package core

import (
	"cmp"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"pgxsort/internal/alloc"
	"pgxsort/internal/comm"
	"pgxsort/internal/dist"
	"pgxsort/internal/failpoint"
	"pgxsort/internal/lsort"
	"pgxsort/internal/spill"
	"pgxsort/internal/transport"
)

// This file is the fully out-of-core sort path: the input arrives as a
// spill run file (a streaming ingress landed it there) and the output
// leaves as a cursor (streaming egress), so neither the input nor the
// result is ever resident. The pipeline keeps the paper's step-1 shape —
// each of the p nodes sorts its contiguous section of the input, here
// into budget-sized sorted chunk runs on disk — and collapses the
// exchange: instead of moving data to p owners and merging per owner,
// one bounded fan-in k-way merge streams all runs straight to the
// consumer. The exchange exists to move data between real machines; when
// the dataset lives on disk and the answer is leaving over a socket
// anyway, merging at egress is the classic external-merge-sort final
// pass and saves a full write+read of the dataset. The keys come out in
// the same total order every other path sorts under, so the canonical
// encoded bytes are identical to the resident pipeline's for the same
// key multiset.

const (
	// spoolMergeFanIn bounds how many runs one merge pass reads at once.
	// A k-way merge holds a couple of decoded block slabs per run, so
	// bounding k makes the merge's working set a fixed slack independent
	// of how many chunk runs the dataset produced; extra passes show up
	// honestly in SpillBytes/SpillReads.
	spoolMergeFanIn = 8
	// defaultSpoolChunkBytes sizes a node's sort chunk when no
	// MemoryBudget is set: spooled inputs still sort chunk at a time —
	// the point of the path is never holding the dataset.
	defaultSpoolChunkBytes = 32 << 20
	// minSpoolChunkEntries keeps pathological budgets from degenerating
	// into per-entry runs.
	minSpoolChunkEntries = 256
)

// spoolBlockBytes picks the block size for spooled run files: small
// enough that a fan-in's worth of decoded block slabs stays a fraction
// of the budget, large enough to compress and batch I/O.
func spoolBlockBytes(budget int64) int {
	if budget <= 0 {
		return spill.DefaultBlockBytes
	}
	bb := budget / (4 * spoolMergeFanIn)
	if bb < 4<<10 {
		bb = 4 << 10
	}
	if bb > spill.DefaultBlockBytes {
		bb = spill.DefaultBlockBytes
	}
	return int(bb)
}

// spoolChunkEntries sizes one node's sort chunk: half the budget for the
// chunk, half for the sort scratch, floored so tiny budgets still make
// progress.
func spoolChunkEntries(budget, eb int64) int {
	chunk := int(defaultSpoolChunkBytes / (2 * eb))
	if budget > 0 {
		chunk = int(budget / (2 * eb))
	}
	if chunk < minSpoolChunkEntries {
		chunk = minSpoolChunkEntries
	}
	return chunk
}

// SpooledInput describes a dataset landed in a spill run file by a
// streaming ingress: entries in arrival order, any key order. The file
// must be a finished run holding at least N entries; it stays on disk
// (owned by the caller) across attempts, which is what makes spool-read
// failures retryable.
type SpooledInput struct {
	// Path is the finished spill run file.
	Path string
	// N is the entry count to sort (the ingress counted entries as they
	// streamed in).
	N int
	// ReadSite, when non-empty, names a failpoint hit before every input
	// batch read during run formation — the serve layer's
	// serve/spool-read fault-injection arm. Injected errors wrap
	// failpoint.ErrInjected and classify Transient: the spool file
	// persists, so a scheduler retry re-reads it cleanly.
	ReadSite string
}

// SpooledResult streams a spooled sort's output in sorted batches. It
// holds open run readers and a scratch directory until Close, which also
// folds the final I/O counters into Report. Batches follow the
// lsort.Cursor contract: valid only until the following Next.
type SpooledResult[K cmp.Ordered] struct {
	// N is the entry count the stream will yield.
	N int
	// Report carries the run's measurements. SpillReads and
	// TempPeakBytes settle at Close, once the stream has drained.
	Report Report

	cur      lsort.Cursor[comm.Entry[K]]
	tracker  *alloc.Tracker
	closers  []func() error
	once     sync.Once
	closeErr error
}

// Next yields the next sorted batch; a zero-length batch means the
// stream is exhausted.
func (r *SpooledResult[K]) Next() ([]comm.Entry[K], error) {
	return r.cur.Next()
}

// TempPeakBytes reports the job's tracker-accounted temporary-memory
// high-water mark so far — chunk slabs, sort scratch and decoded block
// slabs. It can still grow until the stream is drained.
func (r *SpooledResult[K]) TempPeakBytes() int64 { return r.tracker.Peak() }

// Close releases readers, slabs and the scratch directory, and settles
// Report. Idempotent.
func (r *SpooledResult[K]) Close() error {
	r.once.Do(func() {
		for _, c := range r.closers {
			if err := c(); err != nil && r.closeErr == nil {
				r.closeErr = err
			}
		}
		r.Report.TempPeakBytes = r.tracker.Peak()
		if len(r.Report.PerNode) > 0 {
			r.Report.PerNode[0].TempPeakBytes = r.tracker.Peak()
		}
	})
	return r.closeErr
}

// addCloser appends a release hook run (in order) at Close.
func (r *SpooledResult[K]) addCloser(f func() error) {
	r.closers = append(r.closers, f)
}

// RunOneSpooled admits one spooled dataset through the scheduler's
// shared gates and runs it under the retry policy. The admission slot is
// held until the returned result is Closed — the stream holds engine
// scratch until then, and releasing early would let unbounded spooled
// streams pile up past the inflight cap. Retries cover failures during
// run formation and merge priming, before any output byte exists; an
// error mid-stream (from Next) is not retried, because output already
// left.
func (s *Scheduler[K]) RunOneSpooled(ctx context.Context, in SpooledInput) (*SpooledResult[K], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case s.gates.admit <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	s.noteAdmit(1)
	release := func() error {
		s.noteAdmit(-1)
		<-s.gates.admit
		return nil
	}
	pol := s.opts.Retry.withDefaults()
	backoff := pol.BaseBackoff
	// Distinct RNG stream from the resident jobs' (see runAttempts).
	rng := dist.NewRNG(pol.JitterSeed ^ 0x5B007ED50127AB1E)
	for attempt := 1; ; attempt++ {
		res, err := s.eng.SortSpooled(ctx, in)
		if err == nil {
			res.Report.Attempts = attempt
			res.addCloser(release)
			return res, nil
		}
		if attempt >= pol.MaxAttempts || Classify(err) != FailTransient || ctx.Err() != nil {
			release()
			return nil, err
		}
		if !s.takeRetryBudget(pol) {
			release()
			return nil, fmt.Errorf("core: retry budget exhausted after %d attempts: %w", attempt, err)
		}
		select {
		case <-time.After(transport.Jitter(backoff, rng.Uint64())):
		case <-ctx.Done():
			release()
			return nil, err
		}
		if backoff *= 2; backoff > pol.MaxBackoff {
			backoff = pol.MaxBackoff
		}
		s.retries.Add(1)
	}
}

// SortSpooled externally sorts a spooled input under the engine's memory
// budget, returning a streaming result. Temporary memory — chunk slabs,
// sort scratch, decoded block slabs — is tracker-accounted per job; the
// working set is O(chunk + fanIn·block) per node, independent of N.
func (e *Engine[K]) SortSpooled(ctx context.Context, in SpooledInput) (res *SpooledResult[K], err error) {
	if in.Path == "" || in.N < 0 {
		return nil, fmt.Errorf("core: bad spooled input (path %q, n %d)", in.Path, in.N)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	p := e.opts.Procs
	cmps := e.comparators()
	eb := int64(entryBytes[K]())
	budget := e.opts.MemoryBudget
	blockBytes := spoolBlockBytes(budget)
	chunk := spoolChunkEntries(budget, eb)

	// Job-local tracker and pool: spooled jobs are rare and large, and a
	// job-local tracker gives an honest per-job TempPeakBytes (the node
	// trackers are engine-lifetime and shared across concurrent jobs).
	tracker := &alloc.Tracker{}
	var pool *alloc.SlabPool[comm.Entry[K]]
	if !e.opts.DisablePooling {
		pool = &alloc.SlabPool[comm.Entry[K]]{}
	}
	ropts := spill.ReaderOpts[K]{Pool: pool, Tracker: tracker, EntryBytes: eb}

	parent := e.opts.SpillDir
	if parent == "" {
		parent = os.TempDir()
	}
	dir, err := os.MkdirTemp(parent, "pgxsort-spool-*")
	if err != nil {
		return nil, fmt.Errorf("core: spool scratch dir: %w", err)
	}
	defer func() {
		if err != nil {
			os.RemoveAll(dir)
		}
	}()

	start := time.Now()
	var spillBytes, spillReads atomic.Int64

	// Phase 1: run formation. Node i reads its contiguous section of the
	// spool and writes sorted chunk runs that fit the budget.
	type nodeOut struct {
		runs []string
		err  error
	}
	outs := make([]nodeOut, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		lo := uint64(i) * uint64(in.N) / uint64(p)
		hi := uint64(i+1) * uint64(in.N) / uint64(p)
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(node int, lo, hi uint64) {
			defer wg.Done()
			runs, rerr := e.formRuns(ctx, in, cmps, node, lo, hi, chunk, blockBytes,
				dir, pool, tracker, eb, &spillBytes, &spillReads)
			outs[node] = nodeOut{runs: runs, err: rerr}
		}(i, lo, hi)
	}
	wg.Wait()
	var runs []string
	for _, o := range outs {
		if o.err != nil {
			err = o.err
			return nil, err
		}
		runs = append(runs, o.runs...)
	}
	localSortDur := time.Since(start)

	// Phase 2: bounded fan-in merge. While more than fanIn runs remain,
	// merge groups of fanIn into intermediate runs; the survivors feed
	// the streaming final merge.
	pass := 0
	for len(runs) > spoolMergeFanIn {
		var next []string
		for g := 0; g < len(runs); g += spoolMergeFanIn {
			end := min(g+spoolMergeFanIn, len(runs))
			if end-g == 1 {
				next = append(next, runs[g])
				continue
			}
			out := filepath.Join(dir, fmt.Sprintf("merge-%d-%d.spill", pass, g))
			if err = e.mergeRunsTo(ctx, cmps, runs[g:end], out, blockBytes, chunk,
				pool, tracker, ropts, eb, &spillBytes, &spillReads); err != nil {
				return nil, err
			}
			for _, r := range runs[g:end] {
				os.Remove(r)
			}
			next = append(next, out)
		}
		runs = next
		pass++
	}

	// Final merge: prime a streaming cursor over the surviving runs.
	readers := make([]lsort.Cursor[comm.Entry[K]], 0, len(runs))
	var open []*spill.RunReader[K]
	closeAll := func() {
		for _, r := range open {
			r.Close()
		}
	}
	for _, path := range runs {
		rr, oerr := spill.NewRunReader(path, e.codec, ropts)
		if oerr != nil {
			closeAll()
			err = oerr
			return nil, err
		}
		open = append(open, rr)
		readers = append(readers, rr)
	}
	batch := pool.Get(spoolBatchEntries(chunk))
	tracker.Alloc(int64(len(batch)) * eb)
	mc, merr := lsort.NewMergeCursor(readers, cmps.entryLess, batch)
	if merr != nil {
		tracker.Free(int64(len(batch)) * eb)
		pool.Put(batch)
		closeAll()
		err = merr
		return nil, err
	}

	res = &SpooledResult[K]{
		N:       in.N,
		cur:     mc,
		tracker: tracker,
	}
	res.Report = Report{
		Procs:         p,
		Workers:       e.opts.WorkersPerProc,
		N:             in.N,
		LocalSortPath: cmps.path,
		MergePath:     "spooled-kway+spill",
		SpillBytes:    spillBytes.Load(),
		SpillReads:    spillReads.Load(),
		PerNode:       make([]NodeReport, 1),
	}
	res.Report.Steps[StepLocalSort] = localSortDur
	res.addCloser(func() error {
		tracker.Free(int64(len(batch)) * eb)
		pool.Put(batch)
		var first error
		for _, r := range open {
			spillReads.Add(r.BytesRead())
			if cerr := r.Close(); cerr != nil && first == nil {
				first = cerr
			}
		}
		open = nil
		res.Report.SpillReads = spillReads.Load()
		res.Report.SpillBytes = spillBytes.Load()
		res.Report.Total = time.Since(start)
		if rerr := os.RemoveAll(dir); rerr != nil && first == nil {
			first = rerr
		}
		return first
	})
	return res, nil
}

// spoolBatchEntries sizes the merge output batch: a fraction of the
// chunk so the stream's granularity scales with the budget.
func spoolBatchEntries(chunk int) int {
	b := chunk / 4
	if b < minSpoolChunkEntries {
		b = minSpoolChunkEntries
	}
	return b
}

// formRuns is phase 1 for one node: stream the section, sort chunks
// under the budget, spill each as a sorted run.
func (e *Engine[K]) formRuns(ctx context.Context, in SpooledInput, cmps sortCmps[K],
	node int, lo, hi uint64, chunk, blockBytes int, dir string,
	pool *alloc.SlabPool[comm.Entry[K]], tracker *alloc.Tracker, eb int64,
	spillBytes, spillReads *atomic.Int64) (runs []string, err error) {

	sec, err := spill.NewRunReaderSection(in.Path, e.codec,
		spill.ReaderOpts[K]{Pool: pool, Tracker: tracker, EntryBytes: eb}, lo, hi-lo)
	if err != nil {
		return nil, err
	}
	defer func() {
		spillReads.Add(sec.BytesRead())
		sec.Close()
		if err != nil {
			for _, r := range runs {
				os.Remove(r)
			}
		}
	}()

	buf := pool.Get(chunk)
	scratch := pool.Get(chunk)
	tracker.Alloc(2 * int64(chunk) * eb)
	defer func() {
		tracker.Free(2 * int64(chunk) * eb)
		pool.Put(buf)
		pool.Put(scratch)
	}()

	var (
		pending []comm.Entry[K] // unconsumed tail of the current batch
		seq     uint32
		done    bool
	)
	for !done {
		if err = ctx.Err(); err != nil {
			return nil, err
		}
		// Fill one chunk from the section cursor.
		fill := 0
		for fill < chunk {
			if len(pending) == 0 {
				if in.ReadSite != "" {
					if err = failpoint.HitNoPanic(in.ReadSite); err != nil {
						return nil, err
					}
				}
				if pending, err = sec.Next(); err != nil {
					return nil, err
				}
				if len(pending) == 0 {
					done = true
					break
				}
			}
			n := copy(buf[fill:chunk], pending)
			// Restamp provenance: the spool holds arrival order from one
			// ingress stream, but the sorted output's tie-break provenance
			// is (section, position-in-section), matching the resident
			// path's (node, index).
			for j := fill; j < fill+n; j++ {
				buf[j].Proc = uint32(node)
				buf[j].Index = seq
				seq++
			}
			fill += n
			pending = pending[n:]
		}
		if fill == 0 {
			break
		}
		entries := buf[:fill]
		workers := e.opts.WorkersPerProc
		if cmps.useRadix {
			key := func(en comm.Entry[K]) uint64 { return cmps.norm(en.Key) }
			lsort.ParallelRadixSort(entries, scratch[:fill], key, cmps.normBits, cmps.entryLess, workers)
			if cmps.fallback {
				lsort.SortEqualNormRuns(entries, key, cmps.entryLess)
			}
		} else {
			lsort.ParallelSortScratch(entries, scratch[:fill], cmps.entryLess, workers)
		}
		path := filepath.Join(dir, fmt.Sprintf("run-%d-%d.spill", node, len(runs)))
		w, werr := spill.NewWriter(path, e.codec, blockBytes)
		if werr != nil {
			err = werr
			return nil, err
		}
		if err = w.Append(entries); err != nil {
			w.Abort()
			return nil, err
		}
		if err = w.Finish(); err != nil {
			return nil, err
		}
		spillBytes.Add(w.BytesWritten())
		runs = append(runs, path)
	}
	return runs, nil
}

// mergeRunsTo streams one bounded fan-in merge pass: the group's runs
// merge through a MergeCursor into a fresh run file.
func (e *Engine[K]) mergeRunsTo(ctx context.Context, cmps sortCmps[K], group []string,
	out string, blockBytes, chunk int, pool *alloc.SlabPool[comm.Entry[K]],
	tracker *alloc.Tracker, ropts spill.ReaderOpts[K], eb int64,
	spillBytes, spillReads *atomic.Int64) (err error) {

	readers := make([]lsort.Cursor[comm.Entry[K]], 0, len(group))
	var open []*spill.RunReader[K]
	defer func() {
		for _, r := range open {
			spillReads.Add(r.BytesRead())
			r.Close()
		}
	}()
	for _, path := range group {
		rr, oerr := spill.NewRunReader(path, e.codec, ropts)
		if oerr != nil {
			return oerr
		}
		open = append(open, rr)
		readers = append(readers, rr)
	}
	batch := pool.Get(spoolBatchEntries(chunk))
	tracker.Alloc(int64(len(batch)) * eb)
	defer func() {
		tracker.Free(int64(len(batch)) * eb)
		pool.Put(batch)
	}()
	mc, err := lsort.NewMergeCursor(readers, cmps.entryLess, batch)
	if err != nil {
		return err
	}
	w, err := spill.NewWriter(out, e.codec, blockBytes)
	if err != nil {
		return err
	}
	for {
		if err = ctx.Err(); err != nil {
			w.Abort()
			return err
		}
		part, merr := mc.Next()
		if merr != nil {
			w.Abort()
			return merr
		}
		if len(part) == 0 {
			break
		}
		if err = w.Append(part); err != nil {
			w.Abort()
			return err
		}
	}
	if err = w.Finish(); err != nil {
		return err
	}
	spillBytes.Add(w.BytesWritten())
	return nil
}
