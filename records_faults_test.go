package pgxsort

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"pgxsort/internal/dist"
)

// String sorts over the hardened TCP transport under scheduled connection
// resets: variable-width frames must survive retransmission bit-exactly.
func TestStringSortUnderTCPResets(t *testing.T) {
	const procs = 3
	parts := make([][]string, procs)
	for i := range parts {
		parts[i] = dist.Gen{Kind: dist.RightSkewed, Seed: uint64(20 + i), Domain: 500}.
			Strings(4000, "fault-prefix/")
	}
	c, err := NewCluster[string](Options{
		Procs: procs, WorkersPerProc: 2,
		Transport:   TransportTCP,
		BufferBytes: 8192,
		TCP:         TransportConfig{WindowFrames: 4},
		Faults:      &FaultPlan{ResetEvery: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Sort(parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(parts); err != nil {
		t.Fatal(err)
	}
	if res.Report.Reconnects == 0 {
		t.Error("expected reconnects under the reset schedule")
	}
	var oracle []string
	for _, p := range parts {
		oracle = append(oracle, p...)
	}
	sort.Strings(oracle)
	got := res.Keys()
	for i := range oracle {
		if got[i] != oracle[i] {
			t.Fatalf("index %d: %q != oracle %q", i, got[i], oracle[i])
		}
	}
}

// Record sorts (key + payload) over TCP under resets: payloads must stay
// attached to their keys across reconnects and frame retransmissions.
func TestRecordSortUnderTCPResets(t *testing.T) {
	const procs = 3
	recs := make([][]Record[uint64], procs)
	for i := range recs {
		keys := dist.Gen{Kind: dist.Exponential, Seed: uint64(30 + i), Domain: 40}.Keys(4000)
		part := make([]Record[uint64], len(keys))
		for j, k := range keys {
			part[j] = Record[uint64]{
				Key:     k,
				Payload: []byte(fmt.Sprintf("payload-%d-%d", i, j)),
			}
		}
		recs[i] = part
	}
	c, err := NewRecordCluster[uint64](Options{
		Procs: procs, WorkersPerProc: 2,
		Transport:   TransportTCP,
		BufferBytes: 8192,
		TCP:         TransportConfig{WindowFrames: 4},
		Faults:      &FaultPlan{ResetEvery: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.SortRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Reconnects == 0 {
		t.Error("expected reconnects under the reset schedule")
	}
	var prev uint64
	n := 0
	for _, part := range res.Parts {
		for _, e := range part {
			if e.Key < prev {
				t.Fatal("output not sorted")
			}
			prev = e.Key
			// Provenance: the payload must be the one its origin carried.
			want := recs[e.Proc][e.Index].Payload
			if !bytes.Equal(e.Payload, want) {
				t.Fatalf("entry origin (%d,%d): payload %q, want %q", e.Proc, e.Index, e.Payload, want)
			}
			n++
		}
	}
	if n != procs*4000 {
		t.Fatalf("got %d entries, want %d", n, procs*4000)
	}
}
