package pgxsort

import (
	"context"
	"testing"

	"pgxsort/internal/dist"
)

func TestSortOneShot(t *testing.T) {
	keys := dist.Gen{Kind: dist.Normal, Seed: 1}.Keys(20000)
	sorted, report, err := Sort(keys, Options{Procs: 4, WorkersPerProc: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sorted) != len(keys) {
		t.Fatalf("lost keys: %d != %d", len(sorted), len(keys))
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			t.Fatalf("not sorted at %d", i)
		}
	}
	if report.N != len(keys) || report.Total <= 0 {
		t.Fatalf("report = %+v", report)
	}
}

func TestSortZeroOptions(t *testing.T) {
	sorted, _, err := Sort([]uint64{3, 1, 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sorted[0] != 1 || sorted[1] != 2 || sorted[2] != 3 {
		t.Fatalf("sorted = %v", sorted)
	}
}

func TestSortOverHardenedTCP(t *testing.T) {
	// The public wiring of the hardened transport: explicit (loopback)
	// addresses, tight windows and reset injection, all through Options.
	keys := dist.Gen{Kind: dist.Uniform, Seed: 9}.Keys(30000)
	sorted, report, err := Sort(keys, Options{
		Procs:       3,
		Transport:   TransportTCP,
		BufferBytes: 8192,
		TCP: TransportConfig{
			Listen:       []string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"},
			WindowFrames: 4,
		},
		Faults: &FaultPlan{ResetEvery: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			t.Fatalf("not sorted at %d", i)
		}
	}
	if report.Reconnects == 0 {
		t.Error("expected reconnects under the reset schedule")
	}
}

func TestSortDistributed(t *testing.T) {
	parts := [][]uint64{{5, 1}, {4, 4}, {2}}
	res, err := SortDistributed(parts, Options{WorkersPerProc: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(parts); err != nil {
		t.Fatal(err)
	}
	if res.Report.Procs != 3 {
		t.Fatalf("procs = %d, want 3 (from part count)", res.Report.Procs)
	}
}

func TestClusterReuse(t *testing.T) {
	c, err := NewCluster[uint64](Options{Procs: 4, WorkersPerProc: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		keys := dist.Gen{Kind: dist.Uniform, Seed: uint64(i)}.Keys(5000)
		res, err := c.SortSlice(keys)
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != 5000 {
			t.Fatalf("round %d: len = %d", i, res.Len())
		}
	}
}

func TestSortManyWithFacade(t *testing.T) {
	c, err := NewCluster[uint64](Options{Procs: 4, WorkersPerProc: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	datasets := make([][][]uint64, 3)
	for d := range datasets {
		parts := make([][]uint64, 4)
		for i := range parts {
			parts[i] = dist.Gen{Kind: dist.Kinds[d], Seed: uint64(10*d + i)}.Keys(2000)
		}
		datasets[d] = parts
	}
	results, err := c.SortManyWith(context.Background(),
		SortManyOpts{MaxInflight: 2, Order: OrderSmallestFirst}, datasets...)
	if err != nil {
		t.Fatal(err)
	}
	for d, res := range results {
		if err := res.Verify(datasets[d]); err != nil {
			t.Fatalf("dataset %d: %v", d, err)
		}
		if !res.Report.Sched.Pipelined {
			t.Fatalf("dataset %d: scheduler trace missing", d)
		}
		if res.Report.Sched.StageEnd[StageExchange] == 0 {
			t.Fatalf("dataset %d: exchange span not recorded", d)
		}
	}
}

func TestInt64AndFloat64Keys(t *testing.T) {
	ci, err := NewCluster[int64](Options{Procs: 2, WorkersPerProc: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ci.Close()
	res, err := ci.SortSlice([]int64{5, -3, 0, -100, 42})
	if err != nil {
		t.Fatal(err)
	}
	keys := res.Keys()
	want := []int64{-100, -3, 0, 5, 42}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("int64 sorted = %v", keys)
		}
	}

	cf, err := NewCluster[float64](Options{Procs: 2, WorkersPerProc: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	resF, err := cf.SortSlice([]float64{2.5, -1.25, 0.0, 3.75})
	if err != nil {
		t.Fatal(err)
	}
	fkeys := resF.Keys()
	wantF := []float64{-1.25, 0.0, 2.5, 3.75}
	for i := range wantF {
		if fkeys[i] != wantF[i] {
			t.Fatalf("float64 sorted = %v", fkeys)
		}
	}
}

func TestCodecForUnsupported(t *testing.T) {
	if _, err := CodecFor[int32](); err == nil {
		t.Fatal("CodecFor[int32] should require an explicit codec")
	}
	if _, err := NewCluster[int32](Options{Procs: 2}); err == nil {
		t.Fatal("NewCluster[int32] without codec should fail")
	}
}

func TestTCPCluster(t *testing.T) {
	c, err := NewCluster[uint64](Options{Procs: 2, WorkersPerProc: 1, Transport: TransportTCP})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.SortSlice(dist.Gen{Kind: dist.Exponential, Seed: 2}.Keys(3000))
	if err != nil {
		t.Fatal(err)
	}
	keys := res.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			t.Fatal("tcp sort not sorted")
		}
	}
}

func TestResultAPIViaFacade(t *testing.T) {
	parts := [][]uint64{{10, 30}, {20, 20}}
	res, err := SortDistributed(parts, Options{WorkersPerProc: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, found := res.Search(20); !found {
		t.Error("Search(20) failed")
	}
	if top := res.Top(1); len(top) != 1 || top[0].Key != 30 {
		t.Errorf("Top(1) = %v", top)
	}
	if c := res.Count(20); c != 2 {
		t.Errorf("Count(20) = %d", c)
	}
	// Origin of the largest key: input part 0, index 1.
	top := res.Top(1)[0]
	if top.Proc != 0 || top.Index != 1 {
		t.Errorf("Top origin = (%d,%d), want (0,1)", top.Proc, top.Index)
	}
}

func TestTopKFacade(t *testing.T) {
	keys := dist.Gen{Kind: dist.Uniform, Seed: 8}.Keys(10000)
	top, err := TopK(keys, 5, Options{Procs: 4, WorkersPerProc: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(top.Entries) != 5 {
		t.Fatalf("got %d entries", len(top.Entries))
	}
	sorted, _, err := Sort(keys, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if top.Entries[i].Key != sorted[len(sorted)-1-i] {
			t.Fatalf("TopK[%d] = %d, want %d", i, top.Entries[i].Key, sorted[len(sorted)-1-i])
		}
	}
}

func TestQuantilesFacade(t *testing.T) {
	res, err := SortDistributed([][]uint64{{4, 2}, {3, 1}}, Options{WorkersPerProc: 1})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := res.Quantiles(2)
	if err != nil {
		t.Fatal(err)
	}
	if qs[0] != 1 || qs[2] != 4 {
		t.Fatalf("quantiles = %v", qs)
	}
}
