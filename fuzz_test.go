package pgxsort

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

// fuzzKeys interprets raw fuzz data as length-delimited string keys: one
// length byte, then that many key bytes, repeated (a short tail becomes a
// final shorter key). The encoding lets the fuzzer build duplicate keys,
// empty keys, shared prefixes and arbitrary bytes from flat input.
func fuzzKeys(data []byte) []string {
	var keys []string
	for len(data) > 0 {
		n := int(data[0])
		data = data[1:]
		if n > len(data) {
			n = len(data)
		}
		keys = append(keys, string(data[:n]))
		data = data[n:]
	}
	return keys
}

// FuzzStringSortDifferential drives the full distributed pipeline —
// variable-width codec, 8-byte-prefix radix norm with the prefix-collision
// fallback pass, partition, exchange, merge — with fuzzer-built string
// keys, and checks the output against sort.Strings plus full provenance
// via Result.Verify.
func FuzzStringSortDifferential(f *testing.F) {
	f.Add([]byte("\x03abc\x00\x03abd\x03abc"))                 // duplicates + empty
	f.Add([]byte("\x08prefixAA\x09prefixAAB\x0aprefixAABC"))   // nested prefixes
	f.Add([]byte("\x02\xff\xfe\x02\x00\x01\x04z\xc3\xbcg"))    // non-ASCII, NULs
	f.Add([]byte(strings.Repeat("\x0cshared-pref-", 40)))      // norm collisions
	f.Add([]byte("\xff" + strings.Repeat("k", 255) + "\x01a")) // long key
	f.Add(bytes.Repeat([]byte{0x00}, 32))                      // all empty keys
	f.Fuzz(func(t *testing.T, data []byte) {
		keys := fuzzKeys(data)
		if len(keys) > 4096 {
			keys = keys[:4096]
		}
		parts := make([][]string, 3)
		for i := range parts {
			lo, hi := i*len(keys)/3, (i+1)*len(keys)/3
			parts[i] = keys[lo:hi]
		}
		res, err := SortDistributed(parts, Options{WorkersPerProc: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Verify(parts); err != nil {
			t.Fatal(err)
		}
		oracle := append([]string(nil), keys...)
		sort.Strings(oracle)
		got := res.Keys()
		for i := range oracle {
			if got[i] != oracle[i] {
				t.Fatalf("index %d: %q != oracle %q", i, got[i], oracle[i])
			}
		}
	})
}
