// Package pgxsort is a load-balanced parallel and distributed sorting
// library, a from-scratch Go reproduction of "A Load-Balanced Parallel and
// Distributed Sorting Algorithm Implemented with PGX.D" (Khatami et al.,
// IPDPS workshops 2017, arXiv:1611.00463).
//
// The library simulates a PGX.D-style cluster in one process: p
// processors, each with its own worker pool, 256KB communication buffers
// and a network endpoint (in-process channels or real TCP loopback), and
// sorts distributed data with the paper's six-step sample sort:
//
//  1. parallel local quicksort, merged with the balanced merging handler
//  2. regular sampling (one 256KB/p buffer of samples to the master)
//  3. master splitter selection and broadcast
//  4. binary-search range partitioning with the duplicate-splitter
//     investigator that keeps skewed data balanced
//  5. asynchronous all-to-all exchange at precomputed offsets
//  6. merge of the received runs — streamed into step 5 by default (each
//     run merges incrementally the moment it finishes arriving, hiding
//     merge latency behind network time; see Options.Merge), with the
//     paper's barriered balanced handler as the ablation baseline
//
// Every sorted entry carries its origin (processor, index); results
// support distributed binary search, top-k retrieval and origin lookup;
// and several datasets can be sorted simultaneously on one cluster.
//
// Quickstart:
//
//	keys := []uint64{9, 3, 7, 1}
//	sorted, report, err := pgxsort.Sort(keys, pgxsort.Options{Procs: 4})
//
// For repeated sorts, keep a Cluster:
//
//	c, err := pgxsort.NewCluster[uint64](pgxsort.Options{Procs: 8})
//	defer c.Close()
//	res, err := c.SortSlice(keys)
package pgxsort

import (
	"cmp"
	"fmt"

	"pgxsort/internal/comm"
	"pgxsort/internal/core"
	"pgxsort/internal/transport"
)

// Re-exported configuration and result types. See the internal/core docs
// for field-level details.
type (
	// Options configures a Cluster; the zero value reproduces the
	// paper's configuration (256KB buffers, sample factor X, balanced
	// merging, investigator on, asynchronous exchange).
	Options = core.Options
	// MergeStrategy selects the step-6 merge implementation.
	MergeStrategy = core.MergeStrategy
	// LocalSortMode selects the step-1 local sort path: automatic
	// fast-path detection, or forced comparison/radix.
	LocalSortMode = core.LocalSortMode
	// Report holds the measurements of one distributed sort.
	Report = core.Report
	// NodeReport holds one processor's measurements.
	NodeReport = core.NodeReport
	// Step identifies a pipeline step in Report.Steps.
	Step = core.Step
	// SortManyOpts configures the pipelined multi-dataset scheduler
	// behind SortMany/SortManyWith: inflight cap, admission order, or
	// the naive unbounded baseline.
	SortManyOpts = core.SortManyOpts
	// AdmitOrder selects the scheduler's admission order.
	AdmitOrder = core.AdmitOrder
	// SchedStage identifies a scheduler stage in SchedTrace/StageWait.
	SchedStage = core.SchedStage
	// SchedTrace records one sort's passage through the scheduler
	// (Report.Sched): admission wait, per-stage gate waits, and stage
	// spans relative to the batch epoch, so dataset overlap is readable.
	SchedTrace = core.SchedTrace
	// MergeSpan is one streaming-merge operation in SchedTrace.MergeSpans:
	// node, wall-clock span relative to the batch epoch, output size, and
	// whether it ran inside the exchange window (the overlap working).
	MergeSpan = core.MergeSpan
	// TransportConfig shapes the TCP transport for real clusters
	// (Options.TCP): per-node listen/dial addresses, connect timeout,
	// retry backoff, read/write/ack deadlines, max frame size and the
	// bounded per-link send window. The zero value is the loopback
	// default.
	TransportConfig = transport.Config
	// FaultPlan schedules fault injection on the transport
	// (Options.Faults): connection resets and delays for chaos testing.
	// Engine sorts only accept recoverable plans (no drops/dups).
	FaultPlan = transport.FaultPlan

	// Entry is a sorted record: key plus origin processor and index (and,
	// for record sorts, the opaque payload that travelled with the key).
	Entry[K cmp.Ordered] = comm.Entry[K]
	// Record is one key+payload input row for the record-sorting APIs
	// (Cluster.SortRecords / SortManyRecords). The payload is opaque: it
	// never influences the order and rides with its key end to end.
	Record[K cmp.Ordered] = comm.Record[K]
	// Result is a globally sorted distributed dataset.
	Result[K cmp.Ordered] = core.Result[K]
	// PartRange describes one processor's key range after sorting.
	PartRange[K cmp.Ordered] = core.PartRange[K]
	// Codec serializes keys for the TCP transport.
	Codec[K any] = comm.Codec[K]
	// TopKResult is the outcome of a distributed top-k/bottom-k query.
	TopKResult[K cmp.Ordered] = core.TopKResult[K]
)

// Merge strategies (Options.Merge). MergeAuto (the default) resolves to
// the streaming exchange–merge overlap when Procs >= 4 and the runtime
// has at least two CPUs (GOMAXPROCS >= 2; hiding merge work inside the
// exchange needs spare hardware parallelism) — each peer's run merges
// incrementally while the all-to-all exchange is still in flight, hiding
// step-6 latency behind step-5 network time — and to the paper's
// barriered balanced handler otherwise. MergeBalanced and MergeKWay are
// the barriered ablations; the PGXSORT_OVERLAP env var ("on"/"off")
// overrides MergeAuto's resolution. The strategy a sort actually used is
// in Report.MergePath, and the merge latency the overlap hid inside the
// exchange is in Report.MergeOverlapSaved.
const (
	MergeAuto     = core.MergeAuto
	MergeBalanced = core.MergeBalanced
	MergeKWay     = core.MergeKWay
	MergeOverlap  = core.MergeOverlap
)

// ParseOverlapFlag parses the CLIs' -overlap flag: "auto", "on" or "off".
func ParseOverlapFlag(s string) (MergeStrategy, error) { return core.ParseOverlapFlag(s) }

// Local sort paths (Options.LocalSort). LocalSortAuto (the default)
// takes the non-comparison radix fast path whenever the key type — or
// the codec, by implementing comm.KeyNormalizer — provides an
// order-preserving uint64 normalization (uint64, int64, float64, uint32
// are built in), and the paper's comparison path otherwise. The path a
// sort actually took is in Report.LocalSortPath.
const (
	LocalSortAuto       = core.LocalSortAuto
	LocalSortComparison = core.LocalSortComparison
	LocalSortRadix      = core.LocalSortRadix
)

// ParseLocalSortMode parses "auto", "comparison" or "radix".
func ParseLocalSortMode(s string) (LocalSortMode, error) { return core.ParseLocalSortMode(s) }

// ParseMemBudget parses the CLIs' -mem-budget flag: a byte count with an
// optional K/M/G suffix ("64M", "2G", "1048576"; empty or "0" = no
// budget). The parsed value goes into Options.MemoryBudget, which caps
// each node's temporary memory and spills sorted runs to block files
// (internal/spill) once exceeded — see Report.SpillBytes/SpillReads.
func ParseMemBudget(s string) (int64, error) { return core.ParseMemBudget(s) }

// Transports.
const (
	TransportChan = transport.KindChan
	TransportTCP  = transport.KindTCP
)

// Pipeline steps (Report.Steps indices).
const (
	StepLocalSort  = core.StepLocalSort
	StepSampling   = core.StepSampling
	StepSplitters  = core.StepSplitters
	StepPartition  = core.StepPartition
	StepExchange   = core.StepExchange
	StepFinalMerge = core.StepFinalMerge
	NumSteps       = core.NumSteps
)

// Scheduler stages (SchedTrace / NodeReport.StageWait indices).
const (
	StageLocalSort = core.StageLocalSort
	StageSplitters = core.StageSplitters
	StageExchange  = core.StageExchange
	StageMerge     = core.StageMerge
	NumSchedStages = core.NumSchedStages
)

// SortMany admission orders.
const (
	OrderInput         = core.OrderInput
	OrderSmallestFirst = core.OrderSmallestFirst
)

// DefaultMaxInflight is the scheduler's default admission cap.
const DefaultMaxInflight = core.DefaultMaxInflight

// Built-in key codecs for the TCP transport. StringCodec is
// variable-width (length-prefixed) and radix-eligible through its 8-byte
// prefix normalization; see comm.StringCodec.
var (
	Uint64Codec  = comm.U64Codec{}
	Int64Codec   = comm.I64Codec{}
	Float64Codec = comm.F64Codec{}
	Uint32Codec  = comm.U32Codec{}
	StringCodec  = comm.StringCodec{}
)

// NewRecordCodec wraps a key codec so entries carry their payloads on the
// wire — required for SortRecords/SortManyRecords (on every transport, so
// both transports account identical traffic).
func NewRecordCodec[K cmp.Ordered](key Codec[K]) Codec[K] {
	return comm.NewRecordCodec[K](key)
}

// CodecFor returns the built-in codec for K (uint64, int64, float64,
// uint32, string). Other key types need an explicit codec for the TCP
// transport; on the channel transport any fixed estimate works because
// nothing is serialized.
func CodecFor[K cmp.Ordered]() (Codec[K], error) {
	var k K
	switch any(k).(type) {
	case uint64:
		return any(comm.U64Codec{}).(Codec[K]), nil
	case int64:
		return any(comm.I64Codec{}).(Codec[K]), nil
	case float64:
		return any(comm.F64Codec{}).(Codec[K]), nil
	case uint32:
		return any(comm.U32Codec{}).(Codec[K]), nil
	case string:
		return any(comm.StringCodec{}).(Codec[K]), nil
	default:
		return nil, fmt.Errorf("pgxsort: no built-in codec for %T; provide one with NewClusterWithCodec", k)
	}
}

// Cluster is a simulated PGX.D cluster ready to sort distributed data.
// It embeds the engine; see Sort, SortCtx, SortSlice, SortMany,
// SortManyWith and Close. SortMany pipelines its datasets through a
// staged scheduler: at most Options.MaxInflight datasets in flight and
// one dataset per communication stage at a time, so one dataset's
// exchange overlaps another's local compute.
type Cluster[K cmp.Ordered] struct {
	*core.Engine[K]
}

// NewCluster builds a cluster using the built-in codec for K.
func NewCluster[K cmp.Ordered](opts Options) (*Cluster[K], error) {
	codec, err := CodecFor[K]()
	if err != nil {
		return nil, err
	}
	return NewClusterWithCodec[K](opts, codec)
}

// NewRecordCluster builds a cluster for key+payload record sorts: the
// built-in codec for K wrapped so payloads ride the wire. Use
// SortRecords/SortManyRecords on the result; plain key sorts work too.
func NewRecordCluster[K cmp.Ordered](opts Options) (*Cluster[K], error) {
	codec, err := CodecFor[K]()
	if err != nil {
		return nil, err
	}
	return NewClusterWithCodec[K](opts, NewRecordCodec[K](codec))
}

// NewClusterWithCodec builds a cluster with an explicit key codec
// (required for custom key types on the TCP transport).
func NewClusterWithCodec[K cmp.Ordered](opts Options, codec Codec[K]) (*Cluster[K], error) {
	eng, err := core.NewEngine[K](opts, codec)
	if err != nil {
		return nil, err
	}
	return &Cluster[K]{Engine: eng}, nil
}

// Sort is the one-shot convenience API: it block-distributes data across
// Options.Procs simulated processors, sorts, and returns the globally
// sorted keys plus the run's report. For repeated sorts build a Cluster.
func Sort[K cmp.Ordered](data []K, opts Options) ([]K, *Report, error) {
	res, err := SortDistributed(distributeSlice(data, resolvedProcs(opts)), opts)
	if err != nil {
		return nil, nil, err
	}
	return res.Keys(), &res.Report, nil
}

// SortDistributed sorts data that is already distributed: parts[i] is
// processor i's local input (len(parts) fixes the processor count,
// overriding Options.Procs). The full Result exposes origins, search and
// top-k.
func SortDistributed[K cmp.Ordered](parts [][]K, opts Options) (*Result[K], error) {
	opts.Procs = len(parts)
	c, err := NewCluster[K](opts)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Sort(parts)
}

// TopK returns the k largest keys of data (descending, with origins)
// using the distributed top-k query — each simulated processor ships only
// k candidates, not its whole shard.
func TopK[K cmp.Ordered](data []K, k int, opts Options) (*TopKResult[K], error) {
	p := resolvedProcs(opts)
	opts.Procs = p
	c, err := NewCluster[K](opts)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return c.Engine.TopK(distributeSlice(data, p), k)
}

func resolvedProcs(opts Options) int {
	if opts.Procs > 0 {
		return opts.Procs
	}
	return 4 // core's default
}

func distributeSlice[K cmp.Ordered](data []K, p int) [][]K {
	parts := make([][]K, p)
	for i := 0; i < p; i++ {
		lo := i * len(data) / p
		hi := (i + 1) * len(data) / p
		parts[i] = data[lo:hi]
	}
	return parts
}
