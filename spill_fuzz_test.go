package pgxsort

import (
	"bytes"
	"strings"
	"testing"
)

// sortStringsWithBudget runs fuzzer-built string keys through the full
// distributed pipeline with the given memory budget (negative = explicitly
// in-memory) and pinned k-way merge, so the budgeted and unbudgeted runs
// resolve ties identically and must agree entry for entry.
func sortStringsWithBudget(t *testing.T, keys []string, budget int64, dir string) *Result[string] {
	t.Helper()
	parts := make([][]string, 3)
	for i := range parts {
		lo, hi := i*len(keys)/3, (i+1)*len(keys)/3
		parts[i] = keys[lo:hi]
	}
	res, err := SortDistributed(parts, Options{
		WorkersPerProc: 1,
		Merge:          MergeKWay,
		MemoryBudget:   budget,
		SpillDir:       dir,
	})
	if err != nil {
		t.Fatalf("budget=%d: %v", budget, err)
	}
	if err := res.Verify(parts); err != nil {
		t.Fatalf("budget=%d: %v", budget, err)
	}
	return res
}

// requireSameStringResult asserts two results are byte-identical: same
// partition shape and, entry for entry, the same key, origin processor and
// origin index.
func requireSameStringResult(t *testing.T, want, got *Result[string]) {
	t.Helper()
	if len(want.Parts) != len(got.Parts) {
		t.Fatalf("partition count %d != %d", len(got.Parts), len(want.Parts))
	}
	for p := range want.Parts {
		w, g := want.Parts[p], got.Parts[p]
		if len(w) != len(g) {
			t.Fatalf("part %d: %d entries != %d", p, len(g), len(w))
		}
		for i := range w {
			if g[i].Key != w[i].Key || g[i].Proc != w[i].Proc || g[i].Index != w[i].Index {
				t.Fatalf("part %d entry %d: got (%q, proc %d, idx %d), want (%q, proc %d, idx %d)",
					p, i, g[i].Key, g[i].Proc, g[i].Index, w[i].Key, w[i].Proc, w[i].Index)
			}
		}
	}
}

// FuzzSpillDifferential is the out-of-core differential oracle: every
// fuzzer-built dataset is sorted twice through the public API — once fully
// in memory, once under a one-byte memory budget that forces the exchange
// out of core through the internal/spill block-file tier — and the two
// results must be byte-identical (key, origin processor, origin index).
// The seeds cover duplicates, empty keys, shared prefixes (radix-norm
// collisions), non-ASCII bytes and enough volume to span several spill
// blocks.
func FuzzSpillDifferential(f *testing.F) {
	f.Add([]byte("\x03abc\x00\x03abd\x03abc"))                    // duplicates + empty
	f.Add([]byte("\x08prefixAA\x09prefixAAB\x0aprefixAABC"))      // nested prefixes
	f.Add([]byte("\x02\xff\xfe\x02\x00\x01\x04z\xc3\xbcg"))       // non-ASCII, NULs
	f.Add([]byte(strings.Repeat("\x0cshared-pref-", 40)))         // norm collisions
	f.Add([]byte("\xff" + strings.Repeat("k", 255) + "\x01a"))    // long key
	f.Add(bytes.Repeat([]byte{0x00}, 32))                         // all empty keys
	f.Add([]byte(strings.Repeat("\x08aaaabbbb\x08ccccdddd", 96))) // multi-block volume
	f.Fuzz(func(t *testing.T, data []byte) {
		keys := fuzzKeys(data)
		if len(keys) > 4096 {
			keys = keys[:4096]
		}
		ref := sortStringsWithBudget(t, keys, -1, "")
		got := sortStringsWithBudget(t, keys, 1, t.TempDir())
		requireSameStringResult(t, ref, got)
		if ref.Report.SpillBytes != 0 {
			t.Fatalf("unbudgeted run spilled %d bytes", ref.Report.SpillBytes)
		}
		if len(keys) > 0 && got.Report.SpillBytes == 0 {
			t.Fatalf("one-byte budget did not spill (%d keys)", len(keys))
		}
	})
}

// TestSpillDifferentialSeeds replays the fuzz seed corpus as a plain test,
// so `go test` exercises the public-API spill differential without -fuzz.
func TestSpillDifferentialSeeds(t *testing.T) {
	seeds := [][]byte{
		[]byte("\x03abc\x00\x03abd\x03abc"),
		[]byte(strings.Repeat("\x0cshared-pref-", 40)),
		[]byte(strings.Repeat("\x08aaaabbbb\x08ccccdddd", 96)),
	}
	for _, data := range seeds {
		keys := fuzzKeys(data)
		ref := sortStringsWithBudget(t, keys, -1, "")
		got := sortStringsWithBudget(t, keys, 1, t.TempDir())
		requireSameStringResult(t, ref, got)
		if got.Report.SpillBytes == 0 {
			t.Fatalf("one-byte budget did not spill (%d keys)", len(keys))
		}
		if got.Report.SpillReads == 0 {
			t.Fatalf("spilled run read nothing back")
		}
	}
}
