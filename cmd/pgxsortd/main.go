// Command pgxsortd is the resident sorting service: a long-lived HTTP
// server fronting the distributed sorting engine, so sorts arrive as
// jobs over the network instead of one-shot CLI runs.
//
//	pgxsortd -addr :7421 -procs 8 -workers 4
//
// Endpoints (full reference in docs/API.md):
//
//	POST /v1/sort    — sort uploaded or synthetic keys
//	POST /v1/topk    — top-k / bottom-k without a full sort
//	POST /v1/rank    — one key's global rank without a full sort
//	GET  /healthz    — liveness
//	GET  /readyz     — readiness (503 while draining)
//	GET  /metrics    — Prometheus text exposition
//	GET  /debug/jobs — recent job traces
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, readyz
// flips to 503, in-flight jobs finish, then the engines shut down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pgxsort"
	"pgxsort/internal/dist"
	"pgxsort/internal/failpoint"
	"pgxsort/internal/serve"
	tp "pgxsort/internal/transport"
)

// drainTimeout bounds the graceful shutdown: how long in-flight jobs
// get to finish once a signal arrives.
const drainTimeout = 30 * time.Second

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pgxsortd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	addr, cfg, err := buildConfig(args)
	if err != nil {
		return err
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	keytypes := cfg.KeyTypes
	if len(keytypes) == 0 {
		keytypes = dist.KeyTypes
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("pgxsortd: listening on %s (procs=%d workers=%d transport=%s keytypes=%v)",
			addr, cfg.Procs, cfg.Workers, transportName(cfg.Transport), keytypes)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("pgxsortd: %v — draining (up to %v)", sig, drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("pgxsortd: shutdown: %v", err)
		}
		if err := srv.Close(); err != nil {
			return fmt.Errorf("closing engines: %w", err)
		}
		log.Print("pgxsortd: drained")
		return nil
	case err := <-errCh:
		srv.Close()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// buildConfig turns the flag set into the listen address and the serve
// config; split out of run so tests can exercise flag validation.
func buildConfig(args []string) (addr string, cfg serve.Config, err error) {
	fs := flag.NewFlagSet("pgxsortd", flag.ContinueOnError)
	fs.StringVar(&addr, "addr", ":7421", "HTTP listen address")
	procs := fs.Int("procs", 8, "simulated processors per engine")
	workers := fs.Int("workers", 2, "workers per processor")
	keytypes := fs.String("keytypes", "", "comma-separated key domains to serve (default uint64,float64,string)")
	transport := fs.String("transport", "chan", "transport: chan or tcp")
	listen := fs.String("listen", "", "comma-separated per-node TCP listen addresses (tcp transport)")
	peers := fs.String("peers", "", "comma-separated per-node TCP dial addresses (tcp transport)")
	inflight := fs.Int("inflight", 0, "global scheduler admission cap (0 = engine default)")
	tenantInflight := fs.Int("tenant-inflight", 0, "per-tenant inflight cap (0 = default 2)")
	queue := fs.Int("queue", 0, "admission queue depth before 429 (0 = default 16)")
	cacheMB := fs.Int("cache-mb", 0, "result cache budget in MiB (0 = default 64, negative disables)")
	jobTimeout := fs.Duration("job-timeout", 0, "default per-job deadline (0 = 60s)")
	maxKeys := fs.Int("max-keys", 0, "largest accepted dataset (0 = default 50M keys)")
	localSort := fs.String("localsort", "auto", "local sort path: auto, comparison or radix")
	overlap := fs.String("overlap", "auto", "exchange–merge overlap: auto, on, or off")
	retryAttempts := fs.Int("retry-attempts", 0, "scheduler attempts per job before the failure surfaces (0 = default 3)")
	brThreshold := fs.Int("breaker-threshold", 0, "consecutive fatal mesh failures that open the circuit breaker (0 = default 1)")
	brCooldown := fs.Duration("breaker-cooldown", 0, "how long an open breaker waits before probing the mesh again (0 = default 30s)")
	fallbackKeys := fs.Int("fallback-keys", 0, "largest job the degraded single-node fallback accepts (0 = max-keys, negative disables)")
	memBudget := fs.String("mem-budget", "", "per-node temporary-memory budget (e.g. 64M, 2G); sorts spill block-file runs to -spill-dir beyond it")
	spillDir := fs.String("spill-dir", "", "directory for spill run files (default: system temp dir)")
	spoolThreshold := fs.String("spool-threshold", "", "octet-stream upload size past which the body spools to the spill tier (e.g. 8M; empty = 8M clamped to -mem-budget, 'off' keeps every upload resident)")
	uploadTimeout := fs.Duration("upload-timeout", 0, "per-read idle deadline on streamed uploads; stalled clients get 408 (0 = 30s, negative disables)")
	govBudget := fs.String("gov-budget", "", "process-wide memory governor budget (e.g. 256M); jobs that would exceed it answer 429/413 (empty disables gating)")
	cacheEntryFrac := fs.Int("cache-entry-frac", 0, "cap single result-cache entries at cache budget divided by this (0 = default 8, 1 = any size that fits)")
	failpoints := fs.String("failpoints", "", "failpoint spec site:mode[:nth[:count]][,...] for fault drills (also via "+failpoint.EnvVar+")")
	if err = fs.Parse(args); err != nil {
		return "", cfg, err
	}
	if fs.NArg() > 0 {
		return "", cfg, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *failpoints != "" {
		if err = failpoint.Configure(*failpoints); err != nil {
			return "", cfg, err
		}
	}

	cfg.Procs = *procs
	cfg.Workers = *workers
	cfg.Transport = *transport
	cfg.MaxInflight = *inflight
	cfg.TenantInflight = *tenantInflight
	cfg.QueueDepth = *queue
	cfg.CacheBytes = int64(*cacheMB) << 20
	cfg.JobTimeout = *jobTimeout
	cfg.MaxKeys = *maxKeys
	cfg.RetryAttempts = *retryAttempts
	cfg.BreakerThreshold = *brThreshold
	cfg.BreakerCooldown = *brCooldown
	cfg.FallbackKeys = *fallbackKeys
	cfg.SpillDir = *spillDir
	cfg.UploadTimeout = *uploadTimeout
	cfg.CacheEntryFrac = *cacheEntryFrac

	if cfg.MemoryBudget, err = pgxsort.ParseMemBudget(*memBudget); err != nil {
		return "", cfg, err
	}
	if *spoolThreshold == "off" {
		cfg.SpoolThreshold = -1
	} else if cfg.SpoolThreshold, err = pgxsort.ParseMemBudget(*spoolThreshold); err != nil {
		return "", cfg, err
	}
	if cfg.GovernorBudget, err = pgxsort.ParseMemBudget(*govBudget); err != nil {
		return "", cfg, err
	}
	if cfg.LocalSort, err = pgxsort.ParseLocalSortMode(*localSort); err != nil {
		return "", cfg, err
	}
	if cfg.Merge, err = pgxsort.ParseOverlapFlag(*overlap); err != nil {
		return "", cfg, err
	}
	if *keytypes != "" {
		for _, name := range tp.SplitAddrs(*keytypes) {
			kt, err := dist.ParseKeyType(name)
			if err != nil {
				return "", cfg, err
			}
			cfg.KeyTypes = append(cfg.KeyTypes, kt)
		}
	}
	if *listen != "" || *peers != "" {
		if *transport != pgxsort.TransportTCP {
			return "", cfg, fmt.Errorf("-listen/-peers require -transport tcp")
		}
		cfg.TCP.Listen = tp.SplitAddrs(*listen)
		cfg.TCP.Peers = tp.SplitAddrs(*peers)
		if len(cfg.TCP.Listen) > 0 && len(cfg.TCP.Listen) != *procs {
			return "", cfg, fmt.Errorf("-listen names %d addresses for %d processors", len(cfg.TCP.Listen), *procs)
		}
		if len(cfg.TCP.Peers) > 0 && len(cfg.TCP.Peers) != *procs {
			return "", cfg, fmt.Errorf("-peers names %d addresses for %d processors", len(cfg.TCP.Peers), *procs)
		}
		if len(cfg.KeyTypes) != 1 {
			return "", cfg, fmt.Errorf("-listen/-peers bind one TCP mesh: name exactly one domain with -keytypes (e.g. -keytypes uint64)")
		}
	}
	return addr, cfg, nil
}

func transportName(t string) string {
	if t == "" {
		return "chan"
	}
	return t
}
